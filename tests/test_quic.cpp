// The QUIC-like transport: delivery, loss detection accuracy, recovery.
#include <gtest/gtest.h>

#include <memory>

#include "netsim/link.hpp"
#include "netsim/queue.hpp"
#include "netsim/simulator.hpp"
#include "transport/quic.hpp"

namespace wehey::transport {
namespace {

using netsim::Demux;
using netsim::FifoDisc;
using netsim::Link;
using netsim::Pipe;
using netsim::PacketIdSource;
using netsim::RateLimiterDisc;
using netsim::Simulator;
using netsim::TbfDisc;

struct Harness {
  Simulator sim;
  PacketIdSource ids;
  Demux demux;
  std::unique_ptr<Link> link;
  std::unique_ptr<Pipe> ack_pipe;
  std::unique_ptr<QuicSender> sender;
  std::unique_ptr<QuicReceiver> receiver;

  Harness(Rate bw, Time one_way, std::unique_ptr<netsim::QueueDisc> disc,
          QuicConfig cfg = {}, std::uint8_t dscp = 0) {
    link = std::make_unique<Link>(sim, bw, one_way, std::move(disc), &demux);
    ack_pipe = std::make_unique<Pipe>(sim, one_way);
    sender = std::make_unique<QuicSender>(sim, ids, cfg, 1, dscp,
                                          link.get());
    receiver =
        std::make_unique<QuicReceiver>(sim, ids, cfg, 1, ack_pipe.get());
    ack_pipe->set_next(sender.get());
    demux.add_route(1, receiver.get());
  }
};

TEST(Quic, BulkTransferCompletes) {
  Harness h(mbps(10), milliseconds(15),
            std::make_unique<FifoDisc>(125000));
  Time done = -1;
  h.sender->set_on_complete([&] { done = h.sim.now(); });
  h.sender->supply(5'000'000);
  h.sim.run(seconds(60));
  ASSERT_GT(done, 0);
  EXPECT_GT(5e6 * 8.0 / to_seconds(done), mbps(5.5));
  EXPECT_EQ(h.receiver->received_stream_bytes(), 5'000'000);
}

TEST(Quic, NoLossOnCleanPath) {
  Harness h(mbps(100), milliseconds(10),
            std::make_unique<FifoDisc>(0));
  h.sender->supply(500'000);
  h.sim.run(seconds(10));
  EXPECT_TRUE(h.sender->complete());
  EXPECT_EQ(h.sender->packets_declared_lost(), 0u);
}

TEST(Quic, LossCountMatchesActualDrops) {
  // QUIC's packet-number space gives the sender an exact count of lost
  // packets (up to spurious time-threshold declarations) — unlike TCP's
  // retransmission-based over-count.
  auto fifo = std::make_unique<FifoDisc>(0);
  auto tbf = std::make_unique<TbfDisc>(mbps(2), 15000, 15000);
  auto disc =
      std::make_unique<RateLimiterDisc>(std::move(fifo), std::move(tbf));
  auto* disc_raw = disc.get();
  Harness h(mbps(50), milliseconds(15), std::move(disc), QuicConfig{},
            netsim::kDscpDifferentiated);
  h.sender->supply(6'000'000);
  h.sim.run(seconds(40));
  const auto actual_drops = disc_raw->throttled_drops();
  ASSERT_GT(actual_drops, 10u);
  const double ratio =
      static_cast<double>(h.sender->packets_declared_lost()) /
      static_cast<double>(actual_drops);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.2);
}

TEST(Quic, RecoversNearPolicedRate) {
  auto fifo = std::make_unique<FifoDisc>(0);
  auto tbf = std::make_unique<TbfDisc>(mbps(2), 15000, 15000);
  Harness h(mbps(50), milliseconds(15),
            std::make_unique<RateLimiterDisc>(std::move(fifo), std::move(tbf)),
            QuicConfig{}, netsim::kDscpDifferentiated);
  h.sender->supply(20'000'000);
  h.sim.run(seconds(30));
  const double rate = h.receiver->received_stream_bytes() * 8.0 /
                      to_seconds(h.sim.now());
  EXPECT_GT(rate, mbps(1.3));
  EXPECT_LE(rate, mbps(2.3));
}

TEST(Quic, StreamReassemblyDeduplicates) {
  Harness h(mbps(10), milliseconds(10),
            std::make_unique<FifoDisc>(60000));
  h.sender->supply(2'000'000);
  h.sim.run(seconds(30));
  // Whatever was retransmitted, the stream byte count never exceeds the
  // supplied payload.
  EXPECT_EQ(h.receiver->received_stream_bytes(), 2'000'000);
}

TEST(Quic, RttEstimateTracksPath) {
  Harness h(mbps(100), milliseconds(20),
            std::make_unique<FifoDisc>(0));
  h.sender->supply(300'000);
  h.sim.run(seconds(5));
  EXPECT_NEAR(to_milliseconds(h.sender->srtt()), 40.0, 6.0);
}

}  // namespace
}  // namespace wehey::transport
