#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"

namespace wehey {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "wehey_csv_test1.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.header({"a", "b", "c"});
    csv.row({"1", "2", "3"});
    csv.row({CsvWriter::num(0.5), CsvWriter::num(1.25), "x"});
  }
  EXPECT_EQ(slurp(path), "a,b,c\n1,2,3\n0.5,1.25,x\n");
  std::remove(path.c_str());
}

TEST(Csv, QuotesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "wehey_csv_test2.csv";
  {
    CsvWriter csv(path);
    csv.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  }
  EXPECT_EQ(slurp(path),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
  std::remove(path.c_str());
}

TEST(Csv, InvalidPathReportsNotOk) {
  CsvWriter csv("/nonexistent-dir-zzz/file.csv");
  EXPECT_FALSE(csv.ok());
  csv.row({"ignored"});  // must not crash
}

TEST(Csv, NumFormatting) {
  EXPECT_EQ(CsvWriter::num(0.125), "0.125");
  EXPECT_EQ(CsvWriter::num(1e6, 3), "1e+06");
}

}  // namespace
}  // namespace wehey
