// Algorithm 1 (loss-trend correlation) and the loss-series construction,
// on synthetic measurements with known correlation structure.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/loss_correlation.hpp"
#include "core/loss_series.hpp"

namespace wehey::core {
namespace {

/// Synthesize a measurement: per 100 ms slot, `tx_per_slot` transmissions
/// and a loss count driven by `loss_prob(t_slot)`.
netsim::ReplayMeasurement synth_measurement(
    Time duration, int tx_per_slot,
    const std::function<double(int)>& loss_prob, Rng& rng) {
  netsim::ReplayMeasurement m;
  m.start = 0;
  m.end = duration;
  const Time slot = milliseconds(100);
  const int slots = static_cast<int>(duration / slot);
  for (int s = 0; s < slots; ++s) {
    const double p = loss_prob(s);
    for (int i = 0; i < tx_per_slot; ++i) {
      const Time at = s * slot + i * slot / tx_per_slot;
      m.tx_times.push_back(at);
      if (rng.bernoulli(p)) m.loss_times.push_back(at);
    }
  }
  return m;
}

/// A shared time-varying loss environment (the "arrival rate at the
/// common bottleneck"): a slow sinusoid.
double shared_env(int slot) {
  return 0.05 + 0.04 * std::sin(slot / 8.0);
}

TEST(LossSeries, BinsAndFilters) {
  netsim::ReplayMeasurement m1, m2;
  m1.start = m2.start = 0;
  m1.end = m2.end = seconds(4);
  // Path 1: 20 tx per second, 1 loss in second 0 and 2 in second 2.
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 20; ++i) {
      m1.tx_times.push_back(seconds(s) + i * milliseconds(50));
      m2.tx_times.push_back(seconds(s) + i * milliseconds(50));
    }
  }
  m1.loss_times = {milliseconds(500), seconds(2), seconds(2) + 1};
  m2.loss_times = {milliseconds(600)};
  SeriesOptions opt;
  const auto series = make_loss_rate_series(m1, m2, seconds(1), opt);
  EXPECT_EQ(series.total_intervals, 4u);
  // Seconds 1 and 3 have no loss on either path: filtered out.
  ASSERT_EQ(series.retained_intervals, 2u);
  EXPECT_DOUBLE_EQ(series.path1[0], 1.0 / 20);
  EXPECT_DOUBLE_EQ(series.path2[0], 1.0 / 20);
  EXPECT_DOUBLE_EQ(series.path1[1], 2.0 / 20);
  EXPECT_DOUBLE_EQ(series.path2[1], 0.0);
}

TEST(LossSeries, MinPacketFilter) {
  netsim::ReplayMeasurement m1, m2;
  m1.start = m2.start = 0;
  m1.end = m2.end = seconds(2);
  // Only 5 packets per interval on path 2: everything filtered.
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 20; ++i) m1.tx_times.push_back(seconds(s) + i);
    for (int i = 0; i < 5; ++i) m2.tx_times.push_back(seconds(s) + i);
  }
  m1.loss_times = {1};
  const auto series = make_loss_rate_series(m1, m2, seconds(1), {});
  EXPECT_EQ(series.retained_intervals, 0u);
}

TEST(IntervalSweep, CoversTenToFiftyRtts) {
  const auto sizes = interval_size_sweep(milliseconds(35), 9);
  ASSERT_EQ(sizes.size(), 9u);
  EXPECT_EQ(sizes.front(), milliseconds(350));
  EXPECT_EQ(sizes.back(), milliseconds(1750));
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);
  }
}

TEST(LossTrendCorrelation, DetectsSharedBottleneck) {
  Rng rng(3);
  // Both paths' loss follows the same environment (plus sampling noise).
  const auto m1 = synth_measurement(seconds(45), 30, shared_env, rng);
  const auto m2 = synth_measurement(seconds(45), 30, shared_env, rng);
  const auto res = loss_trend_correlation(m1, m2, milliseconds(35));
  EXPECT_TRUE(res.common_bottleneck);
  EXPECT_EQ(res.sizes_correlated, res.sizes_tested);
}

TEST(LossTrendCorrelation, RejectsIndependentBottlenecks) {
  Rng rng(5);
  // Independent environments with the SAME average loss rate: this is the
  // Table-5 adversarial case (identically configured separate limiters).
  const auto m1 = synth_measurement(
      seconds(45), 30, [](int s) { return 0.05 + 0.04 * std::sin(s / 8.0); },
      rng);
  const auto m2 = synth_measurement(
      seconds(45), 30,
      [](int s) { return 0.05 + 0.04 * std::sin(s / 5.0 + 2.1); }, rng);
  const auto res = loss_trend_correlation(m1, m2, milliseconds(35));
  EXPECT_FALSE(res.common_bottleneck);
}

TEST(LossTrendCorrelation, RejectsConstantIndependentLoss) {
  Rng rng(7);
  const auto flat = [](int) { return 0.05; };
  const auto m1 = synth_measurement(seconds(45), 30, flat, rng);
  const auto m2 = synth_measurement(seconds(45), 30, flat, rng);
  // Pure sampling noise: correlation should not be declared.
  const auto res = loss_trend_correlation(m1, m2, milliseconds(35));
  EXPECT_FALSE(res.common_bottleneck);
}

TEST(LossTrendCorrelation, NoLossNoDetection) {
  Rng rng(9);
  const auto none = [](int) { return 0.0; };
  const auto m1 = synth_measurement(seconds(45), 30, none, rng);
  const auto m2 = synth_measurement(seconds(45), 30, none, rng);
  const auto res = loss_trend_correlation(m1, m2, milliseconds(35));
  EXPECT_FALSE(res.common_bottleneck);
  for (const auto& o : res.per_size) EXPECT_EQ(o.retained_intervals, 0u);
}

TEST(LossTrendCorrelation, RequiresNearlyAllSizes) {
  LossCorrelationConfig cfg;
  cfg.fp = 0.05;
  // 9 sizes: (1-0.05)*9 = 8.55, so all 9 must correlate.
  Rng rng(11);
  const auto m1 = synth_measurement(seconds(45), 30, shared_env, rng);
  const auto m2 = synth_measurement(seconds(45), 30, shared_env, rng);
  const auto res = loss_trend_correlation(m1, m2, milliseconds(35), cfg);
  if (res.common_bottleneck) {
    EXPECT_GT(static_cast<double>(res.sizes_correlated),
              0.95 * static_cast<double>(res.sizes_tested));
  }
}

TEST(LossTrendCorrelation, DesynchronizationToleratedByLargeIntervals) {
  Rng rng(13);
  const auto m1 = synth_measurement(seconds(45), 30, shared_env, rng);
  // Path 2 registers each loss ~150 ms later (TCP retransmission delay).
  auto m2 = synth_measurement(seconds(45), 30, shared_env, rng);
  for (auto& t : m2.loss_times) t += milliseconds(150);
  const auto res = loss_trend_correlation(m1, m2, milliseconds(35));
  // Intervals are 350-1750 ms, an order of magnitude above the shift.
  EXPECT_TRUE(res.common_bottleneck);
}

// FP-rate property sweep: across seeds, independent same-rate paths must
// rarely be declared a common bottleneck.
class IndependentPathsSweep : public ::testing::TestWithParam<int> {};

TEST_P(IndependentPathsSweep, FalsePositiveRateIsLow) {
  int fp = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 * GetParam() + t);
    const double phase = rng.uniform(0, 6.28);
    const auto m1 = synth_measurement(
        seconds(45), 30,
        [](int s) { return 0.05 + 0.04 * std::sin(s / 8.0); }, rng);
    const auto m2 = synth_measurement(
        seconds(45), 30,
        [phase](int s) { return 0.05 + 0.04 * std::sin(s / 6.0 + phase); },
        rng);
    fp += loss_trend_correlation(m1, m2, milliseconds(35)).common_bottleneck;
  }
  EXPECT_LE(fp, 1);  // at most 10% in a batch of 10 (target 5%)
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndependentPathsSweep,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace wehey::core
