// The end-to-end localization pipeline on synthetic measurement bundles.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "core/localizer.hpp"

namespace wehey::core {
namespace {

/// Measurement with uniform deliveries at `rate_bps` and loss following
/// `loss_prob` per 100 ms slot.
netsim::ReplayMeasurement synth(Time duration, double rate_bps,
                                const std::function<double(int)>& loss_prob,
                                Rng& rng, double rtt_ms = 35.0) {
  netsim::ReplayMeasurement m;
  m.start = 0;
  m.end = duration;
  const Time slot = milliseconds(100);
  const int slots = static_cast<int>(duration / slot);
  const auto bytes_per_slot =
      static_cast<std::uint32_t>(rate_bps / 8.0 * 0.1);
  const int tx_per_slot = 30;
  for (int s = 0; s < slots; ++s) {
    const double jitter = rng.normal(1.0, 0.05);
    m.deliveries.push_back(
        {s * slot, static_cast<std::uint32_t>(bytes_per_slot * jitter)});
    const double p = loss_prob(s);
    for (int i = 0; i < tx_per_slot; ++i) {
      const Time at = s * slot + i * slot / tx_per_slot;
      m.tx_times.push_back(at);
      if (rng.bernoulli(p)) m.loss_times.push_back(at);
    }
    m.rtt_ms.push_back(rtt_ms + rng.uniform(0.0, 3.0));
  }
  return m;
}

std::vector<double> history(double sigma, int n, Rng& rng) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) out.push_back(rng.normal(0.0, sigma));
  return out;
}

double env(int s) { return 0.05 + 0.04 * std::sin(s / 8.0); }
double flat_low(int) { return 0.001; }

LocalizationInput per_client_case(Rng& rng) {
  LocalizationInput in;
  // Originals throttled to 2 Mbps total; inverted replays run free at 6.
  in.p0_original = synth(seconds(45), 2e6, env, rng);
  in.p0_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.p1_original = synth(seconds(45), 1e6, env, rng);
  in.p2_original = synth(seconds(45), 1e6, env, rng);
  in.p1_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.p2_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.t_diff_history = history(0.1, 30, rng);
  return in;
}

TEST(Localizer, PerClientThrottlingLocalized) {
  Rng rng(3);
  auto in = per_client_case(rng);
  const auto res = localize(in, rng);
  EXPECT_TRUE(res.confirmation_passed);
  EXPECT_EQ(res.verdict, Verdict::EvidenceWithinTargetArea);
  EXPECT_EQ(res.mechanism, Mechanism::PerClientThrottling);
}

TEST(Localizer, CollectiveThrottlingLocalizedViaLossTrend) {
  Rng rng(5);
  LocalizationInput in;
  // Aggregate of p1+p2 (2x1 Mbps) clearly below p0's 3.5 Mbps: the
  // throughput comparison must NOT fire; correlated loss must.
  in.p0_original = synth(seconds(45), 3.5e6, env, rng);
  in.p0_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.p1_original = synth(seconds(45), 1e6, env, rng);
  in.p2_original = synth(seconds(45), 1e6, env, rng);
  in.p1_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.p2_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.t_diff_history = history(0.05, 30, rng);
  const auto res = localize(in, rng);
  EXPECT_EQ(res.verdict, Verdict::EvidenceWithinTargetArea);
  EXPECT_EQ(res.mechanism, Mechanism::CollectiveThrottling);
}

TEST(Localizer, NoEvidenceWithoutConfirmation) {
  Rng rng(7);
  LocalizationInput in;
  // No differentiation anywhere: original == inverted on both paths.
  in.p0_original = synth(seconds(45), 6e6, flat_low, rng);
  in.p0_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.p1_original = synth(seconds(45), 6e6, flat_low, rng);
  in.p2_original = synth(seconds(45), 6e6, flat_low, rng);
  in.p1_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.p2_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.t_diff_history = history(0.1, 30, rng);
  const auto res = localize(in, rng);
  EXPECT_FALSE(res.confirmation_passed);
  EXPECT_EQ(res.verdict, Verdict::NoEvidence);
  EXPECT_EQ(res.mechanism, Mechanism::None);
}

TEST(Localizer, NoEvidenceWhenOnlyOnePathDifferentiates) {
  Rng rng(9);
  LocalizationInput in;
  in.p0_original = synth(seconds(45), 2e6, env, rng);
  in.p0_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.p1_original = synth(seconds(45), 1e6, env, rng);   // throttled
  in.p1_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.p2_original = synth(seconds(45), 6e6, flat_low, rng);  // NOT throttled
  in.p2_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.t_diff_history = history(0.1, 30, rng);
  const auto res = localize(in, rng);
  EXPECT_FALSE(res.confirmation_passed);
  EXPECT_EQ(res.verdict, Verdict::NoEvidence);
}

TEST(Localizer, NoEvidenceOnIndependentBottlenecks) {
  Rng rng(11);
  LocalizationInput in;
  in.p0_original = synth(seconds(45), 3.5e6, env, rng);
  in.p0_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.p1_original = synth(seconds(45), 1e6, env, rng);
  in.p2_original = synth(
      seconds(45), 1e6,
      [](int s) { return 0.05 + 0.04 * std::sin(s / 5.0 + 2.5); }, rng);
  in.p1_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.p2_inverted = synth(seconds(45), 6e6, flat_low, rng);
  in.t_diff_history = history(0.05, 30, rng);
  const auto res = localize(in, rng);
  EXPECT_EQ(res.verdict, Verdict::NoEvidence);
}

TEST(Localizer, EstimatesBaseRttFromSamples) {
  Rng rng(13);
  const auto m1 = synth(seconds(10), 1e6, flat_low, rng, 20.0);
  const auto m2 = synth(seconds(10), 1e6, flat_low, rng, 60.0);
  const Time est = estimate_base_rtt(m1, m2, milliseconds(35));
  // max over paths of min RTT: path 2's min ~60 ms.
  EXPECT_GE(est, milliseconds(58));
  EXPECT_LE(est, milliseconds(66));
}

TEST(Localizer, FallbackRttWhenNoSamples) {
  netsim::ReplayMeasurement empty1, empty2;
  EXPECT_EQ(estimate_base_rtt(empty1, empty2, milliseconds(35)),
            milliseconds(35));
}

TEST(Localizer, FallbackRttWhenExactlyOnePathHasNoSamples) {
  Rng rng(19);
  const auto m = synth(seconds(10), 1e6, flat_low, rng, 20.0);
  netsim::ReplayMeasurement empty;
  // A blind path leaves no credible max-of-mins: fall back, in either
  // argument order.
  EXPECT_EQ(estimate_base_rtt(m, empty, milliseconds(35)), milliseconds(35));
  EXPECT_EQ(estimate_base_rtt(empty, m, milliseconds(35)), milliseconds(35));
}

TEST(Localizer, FallbackRttWhenAllSamplesEqual) {
  netsim::ReplayMeasurement m1, m2;
  m1.rtt_ms.assign(20, 25.0);
  m2.rtt_ms.assign(20, 25.0);
  // A zero-spread sample set is a constant filler, not a measured floor.
  EXPECT_EQ(estimate_base_rtt(m1, m2, milliseconds(35)), milliseconds(35));
}

TEST(Localizer, BaseRttIgnoresNonFiniteAndNegativeSamples) {
  netsim::ReplayMeasurement m1, m2;
  m1.rtt_ms = {std::nan(""), 20.0, 22.0, -5.0};
  m2.rtt_ms = {60.0, std::numeric_limits<double>::infinity(), 61.0};
  EXPECT_EQ(estimate_base_rtt(m1, m2, milliseconds(35)), milliseconds(60));
}

TEST(Localizer, FallbackRttWhenOnePathOnlyGarbage) {
  netsim::ReplayMeasurement m1, m2;
  m1.rtt_ms = {std::nan(""), -1.0, 0.0};
  m2.rtt_ms = {40.0, 41.0};
  EXPECT_EQ(estimate_base_rtt(m1, m2, milliseconds(35)), milliseconds(35));
}

TEST(Localizer, InconclusiveOnEmptySimultaneousMeasurement) {
  Rng rng(21);
  auto in = per_client_case(rng);
  in.p1_original = netsim::ReplayMeasurement{};  // the upload never arrived
  const auto res = localize(in, rng);
  EXPECT_EQ(res.verdict, Verdict::Inconclusive);
  EXPECT_EQ(res.inconclusive_reason, InconclusiveReason::EmptyMeasurement);
  EXPECT_TRUE(res.degraded);
  EXPECT_FALSE(res.status.ok());
  EXPECT_EQ(res.status.code(), StatusCode::InsufficientData);
}

TEST(Localizer, VerdictStringsAreStable) {
  EXPECT_STREQ(to_string(Verdict::Inconclusive), "inconclusive");
  EXPECT_STREQ(to_string(InconclusiveReason::EmptyMeasurement),
               "empty measurement");
  EXPECT_STREQ(to_string(InconclusiveReason::NonOverlappingMeasurements),
               "non-overlapping measurements");
}

TEST(Localizer, RecordsSubResults) {
  Rng rng(17);
  auto in = per_client_case(rng);
  const auto res = localize(in, rng);
  EXPECT_TRUE(res.p1_confirmation.differentiation);
  EXPECT_TRUE(res.p2_confirmation.differentiation);
  EXPECT_TRUE(res.throughput.valid);
  EXPECT_FALSE(res.throughput.o_diff.empty());
}

}  // namespace
}  // namespace wehey::core
