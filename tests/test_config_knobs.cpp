// Configuration-knob coverage: detector thresholds, alternatives and
// sweep bounds behave as documented.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/loss_correlation.hpp"
#include "core/throughput_comparison.hpp"
#include "core/wehe.hpp"

namespace wehey::core {
namespace {

std::vector<double> samples(double mean, double jitter, int n, Rng& rng) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) out.push_back(rng.normal(mean, jitter));
  return out;
}

TEST(WeheConfig, AlphaControlsSensitivity) {
  Rng rng(3);
  // A moderate difference: significant at alpha 0.05, not at 1e-30.
  const auto a = samples(4.0e6, 6e5, 100, rng);
  const auto b = samples(4.6e6, 6e5, 100, rng);
  WeheConfig loose;
  WeheConfig strict;
  strict.alpha = 1e-30;
  EXPECT_TRUE(detect_differentiation_samples(a, b, loose).differentiation);
  EXPECT_FALSE(detect_differentiation_samples(a, b, strict).differentiation);
}

TEST(WeheConfig, IntervalCountChangesSampleGranularity) {
  netsim::ReplayMeasurement m;
  m.start = 0;
  m.end = seconds(10);
  m.deliveries = {{seconds(1), 1000}, {seconds(9), 1000}};
  EXPECT_EQ(m.throughput_samples(10).size(), 10u);
  EXPECT_EQ(m.throughput_samples(100).size(), 100u);
}

TEST(ThroughputComparisonConfig, AlphaRespected) {
  Rng rng(5);
  const auto x = samples(2.0e6, 5e4, 100, rng);
  const auto y = samples(2.0e6, 5e4, 100, rng);
  std::vector<double> t_diff;
  for (int i = 0; i < 30; ++i) t_diff.push_back(rng.normal(0.0, 0.06));
  ThroughputComparisonConfig strict;
  strict.alpha = 1e-40;
  const auto res = throughput_comparison(x, y, t_diff, rng, strict);
  ASSERT_TRUE(res.valid);
  EXPECT_FALSE(res.common_bottleneck);  // nothing passes alpha = 1e-40
}

netsim::ReplayMeasurement correlated_measurement(std::uint64_t seed) {
  Rng rng(seed);
  netsim::ReplayMeasurement m;
  m.start = 0;
  m.end = seconds(45);
  const Time slot = milliseconds(100);
  for (int s = 0; s < 450; ++s) {
    const double p = 0.05 + 0.04 * std::sin(s / 8.0);
    for (int i = 0; i < 30; ++i) {
      const Time at = s * slot + i * slot / 30;
      m.tx_times.push_back(at);
      if (rng.bernoulli(p)) m.loss_times.push_back(at);
    }
  }
  return m;
}

TEST(LossCorrelationConfig, FpDrivesBothThresholdAndQuorum) {
  const auto m1 = correlated_measurement(7);
  const auto m2 = correlated_measurement(8);
  // Absurdly strict FP: per-size p-values cannot pass, so no detection.
  LossCorrelationConfig strict;
  strict.fp = 1e-12;
  const auto res = loss_trend_correlation(m1, m2, milliseconds(35), strict);
  EXPECT_FALSE(res.common_bottleneck);
  // The default configuration detects the same data.
  EXPECT_TRUE(loss_trend_correlation(m1, m2, milliseconds(35))
                  .common_bottleneck);
}

TEST(LossCorrelationConfig, IntervalCountControlsSweepSize) {
  const auto m1 = correlated_measurement(9);
  const auto m2 = correlated_measurement(10);
  LossCorrelationConfig cfg;
  cfg.interval_sizes = 5;
  const auto res = loss_trend_correlation(m1, m2, milliseconds(35), cfg);
  EXPECT_EQ(res.sizes_tested, 5u);
  EXPECT_EQ(res.per_size.size(), 5u);
}

TEST(LossCorrelationConfig, MinPacketFloorFiltersSparsePaths) {
  const auto m1 = correlated_measurement(11);
  const auto m2 = correlated_measurement(12);
  LossCorrelationConfig cfg;
  cfg.min_packets_per_interval = 100000;  // nothing qualifies
  const auto res = loss_trend_correlation(m1, m2, milliseconds(35), cfg);
  EXPECT_FALSE(res.common_bottleneck);
  for (const auto& o : res.per_size) EXPECT_EQ(o.retained_intervals, 0u);
}

TEST(LossCorrelationConfig, PermutationMethodAgreesOnStrongSignal) {
  const auto m1 = correlated_measurement(13);
  const auto m2 = correlated_measurement(14);
  LossCorrelationConfig cfg;
  cfg.method = CorrelationMethod::SpearmanPermutation;
  cfg.permutation_iterations = 500;
  EXPECT_TRUE(
      loss_trend_correlation(m1, m2, milliseconds(35), cfg).common_bottleneck);
}

}  // namespace
}  // namespace wehey::core
