// ISP5's delayed fixed-rate throttler, exercised directly.
#include <gtest/gtest.h>

#include "experiments/delayed_tbf.hpp"

namespace wehey::experiments {
namespace {

netsim::Packet pkt(std::uint32_t size) {
  netsim::Packet p;
  p.size = size;
  p.payload = size;
  p.dscp = netsim::kDscpDifferentiated;
  return p;
}

TEST(DelayedTbf, PassThroughBeforeTrigger) {
  // Trigger at 100 kB; a tiny 1 kbps post-trigger rate would block
  // everything if it were active.
  DelayedTbfDisc disc(100'000, kbps(1), 1500, 4500);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(disc.enqueue(pkt(1000), i));
    ASSERT_TRUE(disc.dequeue(i).has_value());
  }
  EXPECT_FALSE(disc.throttling_active());
  EXPECT_EQ(disc.drop_count(), 0u);
}

TEST(DelayedTbf, ActivatesAtTriggerBytes) {
  DelayedTbfDisc disc(10'000, mbps(1), 3000, 3000);
  Time now = 0;
  std::int64_t through = 0;
  while (through < 9'000) {
    disc.enqueue(pkt(1000), now);
    auto out = disc.dequeue(now);
    ASSERT_TRUE(out.has_value());
    through += out->size;
    now += kMillisecond;
  }
  EXPECT_FALSE(disc.throttling_active());
  // The next enqueue crosses the 10 kB criterion.
  disc.enqueue(pkt(1000), now);
  EXPECT_TRUE(disc.throttling_active());
}

TEST(DelayedTbf, ThrottlesAtFixedRateAfterTrigger) {
  // Immediate trigger: behaves like a plain TBF from the first packet.
  DelayedTbfDisc disc(0, mbps(1), 2000, 2000);
  disc.enqueue(pkt(1000), 0);
  disc.enqueue(pkt(1000), 0);
  EXPECT_TRUE(disc.throttling_active());
  EXPECT_TRUE(disc.dequeue(0).has_value());
  EXPECT_TRUE(disc.dequeue(0).has_value());  // burst covers 2000 B
  disc.enqueue(pkt(1000), 0);
  EXPECT_FALSE(disc.dequeue(0).has_value());  // tokens exhausted
  // 1000 B at 1 Mbps = 8 ms to refill.
  const Time ready = disc.next_ready(0);
  EXPECT_NEAR(to_seconds(ready), 0.008, 1e-5);
  EXPECT_TRUE(disc.dequeue(ready).has_value());
}

TEST(DelayedTbf, PolicesQueueOverflowOnlyWhenActive) {
  DelayedTbfDisc disc(0, kbps(100), 1500, 3000);
  // Burst 1500 admitted; backlog cap 3000: two more queue, then drops.
  EXPECT_TRUE(disc.enqueue(pkt(1400), 0));
  EXPECT_TRUE(disc.enqueue(pkt(1400), 0));
  EXPECT_FALSE(disc.enqueue(pkt(1400), 0));
  EXPECT_EQ(disc.drop_count(), 1u);
}

}  // namespace
}  // namespace wehey::experiments
