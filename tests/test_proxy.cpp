// The transparent split-TCP proxy and the §7 measurement blind spot.
#include <gtest/gtest.h>

#include <memory>

#include "netsim/link.hpp"
#include "netsim/queue.hpp"
#include "netsim/simulator.hpp"
#include "transport/proxy.hpp"
#include "transport/tcp.hpp"

namespace wehey::transport {
namespace {

using netsim::Demux;
using netsim::FifoDisc;
using netsim::Link;
using netsim::Pipe;
using netsim::PacketIdSource;
using netsim::RateLimiterDisc;
using netsim::Simulator;
using netsim::TbfDisc;

/// origin --lossless link-- [proxy] --policer link-- client
struct ProxiedPath {
  Simulator sim;
  PacketIdSource ids;
  TcpConfig cfg;
  Demux at_proxy;
  Demux at_client;
  std::unique_ptr<Link> upstream_link;    // origin -> proxy, clean
  std::unique_ptr<Link> downstream_link;  // proxy -> client, policed
  std::unique_ptr<Pipe> ack_to_origin;
  std::unique_ptr<Pipe> ack_to_proxy;
  std::unique_ptr<TcpSender> origin;
  std::unique_ptr<SplitTcpProxy> proxy;
  std::unique_ptr<TcpReceiver> client;

  explicit ProxiedPath(Rate policer_rate) {
    downstream_link = std::make_unique<Link>(
        sim, mbps(50), milliseconds(10),
        std::make_unique<RateLimiterDisc>(
            std::make_unique<FifoDisc>(0),
            std::make_unique<TbfDisc>(
                policer_rate,
                static_cast<std::int64_t>(
                    bytes_in(policer_rate, milliseconds(40))),
                static_cast<std::int64_t>(
                    bytes_in(policer_rate, milliseconds(20))))),
        &at_client);
    upstream_link = std::make_unique<Link>(
        sim, mbps(50), milliseconds(10),
        std::make_unique<FifoDisc>(0), &at_proxy);  // lossless upstream
    ack_to_origin = std::make_unique<Pipe>(sim, milliseconds(10));
    ack_to_proxy = std::make_unique<Pipe>(sim, milliseconds(10));

    origin = std::make_unique<TcpSender>(sim, ids, cfg, /*flow=*/1,
                                         netsim::kDscpDifferentiated,
                                         upstream_link.get());
    proxy = std::make_unique<SplitTcpProxy>(
        sim, ids, cfg, /*upstream_flow=*/1, /*downstream_flow=*/2,
        netsim::kDscpDifferentiated, ack_to_origin.get(),
        downstream_link.get());
    client = std::make_unique<TcpReceiver>(sim, ids, cfg, /*flow=*/2,
                                           ack_to_proxy.get());
    ack_to_origin->set_next(origin.get());
    ack_to_proxy->set_next(&proxy->downstream_ack_in());
    at_proxy.add_route(1, &proxy->upstream_in());
    at_client.add_route(2, client.get());
  }
};

TEST(Proxy, RelaysAllBytes) {
  ProxiedPath p(mbps(20));  // effectively unthrottled
  p.origin->supply(500'000);
  p.sim.run(seconds(20));
  EXPECT_EQ(p.proxy->bytes_relayed(), 500'000);
  EXPECT_EQ(p.client->received_in_order_bytes(), 500'000);
  EXPECT_TRUE(p.proxy->downstream_sender().complete());
}

TEST(Proxy, HidesDownstreamLossFromOrigin) {
  // A 2 Mbps policer downstream of the proxy: the proxy's sender bears
  // the retransmissions; the origin server sees a clean path.
  ProxiedPath p(mbps(2));
  p.origin->supply(6'000'000);
  p.sim.run(seconds(20));

  EXPECT_GT(p.proxy->downstream_sender().retransmissions(), 10u);
  // The origin's retransmission-based loss estimate is (nearly) blind:
  // the §7 measurement gap.
  EXPECT_LT(p.origin->measurement().loss_rate(), 0.005);
  // The client still experiences the throttling at the application layer.
  const double client_rate =
      p.client->received_bytes() * 8.0 / to_seconds(p.sim.now());
  EXPECT_LT(client_rate, mbps(2.6));
}

TEST(Proxy, ClientSideThroughputStillDetectsThrottling) {
  // WeHe's client-side throughput samples remain a valid detection
  // signal behind the proxy: throttled vs unthrottled runs differ.
  ProxiedPath throttled(mbps(1.5));
  throttled.origin->supply(6'000'000);
  throttled.sim.run(seconds(20));
  ProxiedPath open(mbps(30));
  open.origin->supply(6'000'000);
  open.sim.run(seconds(20));
  const double rate_throttled =
      throttled.client->received_bytes() * 8.0 /
      to_seconds(throttled.sim.now());
  const double rate_open =
      open.client->received_bytes() * 8.0 / to_seconds(open.sim.now());
  EXPECT_LT(rate_throttled, 0.7 * rate_open);
}

}  // namespace
}  // namespace wehey::transport
