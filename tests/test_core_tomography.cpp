// Binary loss tomography (Algorithms 2-4) and the V2 loss-trend
// tomography, on inputs with known closed-form answers.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "core/tomography.hpp"

namespace wehey::core {
namespace {

TEST(BinLossTomo, ClosedFormOnKnownStatuses) {
  // Construct loss-rate series where (with tau = 0.5):
  //   path1 lossy in intervals {0,1}, path2 lossy in {0,2}, both in {0}.
  // T = 4: y1 = 2/4, y2 = 2/4, y12 = 1/4 (both non-lossy in interval 3...
  // wait: non-lossy1 = {2,3}, non-lossy2 = {1,3}, both = {3} -> y12=1/4.
  // x_c = y1*y2/y12 = (0.5*0.5)/0.25 = 1; x_1 = y12/y2 = 0.5; x_2 = 0.5.
  const std::vector<double> loss1{0.9, 0.9, 0.1, 0.1};
  const std::vector<double> loss2{0.9, 0.1, 0.9, 0.1};
  const auto perf = bin_loss_tomo_series(loss1, loss2, 0.5);
  ASSERT_TRUE(perf.valid);
  EXPECT_DOUBLE_EQ(perf.x_c, 1.0);
  EXPECT_DOUBLE_EQ(perf.x_1, 0.5);
  EXPECT_DOUBLE_EQ(perf.x_2, 0.5);
}

TEST(BinLossTomo, PerfectlyCorrelatedLossBlamesCommonLink) {
  // Both paths lossy in exactly the same intervals: the common link
  // sequence explains everything; x_1 = x_2 = 1.
  const std::vector<double> loss1{0.9, 0.1, 0.9, 0.1, 0.1, 0.9};
  const std::vector<double> loss2 = loss1;
  const auto perf = bin_loss_tomo_series(loss1, loss2, 0.5);
  ASSERT_TRUE(perf.valid);
  EXPECT_DOUBLE_EQ(perf.x_1, 1.0);
  EXPECT_DOUBLE_EQ(perf.x_2, 1.0);
  EXPECT_DOUBLE_EQ(perf.x_c, 0.5);
}

TEST(BinLossTomo, SystemOneConsistency) {
  // Property: the solution must satisfy System 1: y1 = x_c*x_1 etc.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> loss1, loss2;
    for (int i = 0; i < 50; ++i) {
      loss1.push_back(rng.uniform());
      loss2.push_back(rng.uniform());
    }
    const double tau = 0.5;
    const auto perf = bin_loss_tomo_series(loss1, loss2, tau);
    if (!perf.valid) continue;
    double y1 = 0, y2 = 0, y12 = 0;
    for (int i = 0; i < 50; ++i) {
      const bool nl1 = loss1[i] <= tau;
      const bool nl2 = loss2[i] <= tau;
      y1 += nl1;
      y2 += nl2;
      y12 += nl1 && nl2;
    }
    y1 /= 50;
    y2 /= 50;
    y12 /= 50;
    // Only exact when the solution is interior (no clamping to [0,1]).
    if (perf.x_c < 1.0 && perf.x_1 < 1.0 && perf.x_2 < 1.0) {
      EXPECT_NEAR(perf.x_c * perf.x_1, y1, 1e-9);
      EXPECT_NEAR(perf.x_c * perf.x_2, y2, 1e-9);
      EXPECT_NEAR(perf.x_c * perf.x_1 * perf.x_2, y12, 1e-9);
    }
  }
}

TEST(BinLossTomo, InvalidWhenAlwaysLossy) {
  const std::vector<double> loss1{0.9, 0.9};
  const std::vector<double> loss2{0.9, 0.9};
  EXPECT_FALSE(bin_loss_tomo_series(loss1, loss2, 0.5).valid);
}

/// Synthetic measurement helper shared with the loss-correlation tests.
netsim::ReplayMeasurement synth(Time duration, int tx_per_slot,
                                const std::function<double(int)>& loss_prob,
                                Rng& rng) {
  netsim::ReplayMeasurement m;
  m.start = 0;
  m.end = duration;
  const Time slot = milliseconds(100);
  const int slots = static_cast<int>(duration / slot);
  for (int s = 0; s < slots; ++s) {
    const double p = loss_prob(s);
    for (int i = 0; i < tx_per_slot; ++i) {
      const Time at = s * slot + i * slot / tx_per_slot;
      m.tx_times.push_back(at);
      if (rng.bernoulli(p)) m.loss_times.push_back(at);
    }
  }
  return m;
}

double env(int s) { return 0.05 + 0.04 * std::sin(s / 8.0); }

TEST(BinLossTomoPlusPlus, DetectsIdealCommonBottleneck) {
  // Identical loss processes (not merely correlated): the friendliest
  // possible case for threshold-based tomography.
  Rng rng(5);
  const auto m1 = synth(seconds(45), 40, env, rng);
  Rng rng2(5);  // same seed: identical loss pattern
  const auto m2 = synth(seconds(45), 40, env, rng2);
  EXPECT_TRUE(bin_loss_tomo_plus_plus(m1, m2, milliseconds(700), 0.05));
}

TEST(BinLossTomoNoParams, WorksOnStronglyCorrelatedLoss) {
  Rng rng(7);
  Rng rng2(7);
  const auto m1 = synth(seconds(45), 40, env, rng);
  const auto m2 = synth(seconds(45), 40, env, rng2);
  const auto res = bin_loss_tomo_no_params(m1, m2, milliseconds(35));
  EXPECT_TRUE(res.common_bottleneck);
  EXPECT_GT(res.combinations, 0u);
  EXPECT_GT(res.avg_gap_1, 0.0);
  EXPECT_GT(res.avg_gap_2, 0.0);
}

TEST(BinLossTomoNoParams, RejectsIndependentLoss) {
  Rng rng(9);
  const auto m1 =
      synth(seconds(45), 40, [](int s) { return env(s); }, rng);
  const auto m2 = synth(
      seconds(45), 40, [](int s) { return 0.05 + 0.04 * std::sin(s / 5.0 + 2.0); },
      rng);
  const auto res = bin_loss_tomo_no_params(m1, m2, milliseconds(35));
  EXPECT_FALSE(res.common_bottleneck);
}

TEST(BinLossTomoNoParams, FailsWhereCorrelationSucceeds) {
  // The §4.3 motivating case: a common bottleneck where the two paths'
  // loss rates follow the same TREND but at systematically different
  // levels (one path twice as lossy). Threshold-based tomography labels
  // them differently and misses the common bottleneck, while trend-based
  // detection (exercised elsewhere) succeeds.
  Rng rng(11);
  const auto m1 = synth(seconds(45), 40, env, rng);
  const auto m2 =
      synth(seconds(45), 40, [](int s) { return 2.0 * env(s); }, rng);
  const auto tomo = bin_loss_tomo_no_params(m1, m2, milliseconds(35));
  EXPECT_FALSE(tomo.common_bottleneck);
}

TEST(LossTrendTomography, DetectsTrendOnlyCorrelation) {
  // Same scenario as above: V2's increase/decrease labelling is level-free
  // and should detect the shared trend.
  Rng rng(13);
  const auto m1 = synth(seconds(45), 40, env, rng);
  const auto m2 =
      synth(seconds(45), 40, [](int s) { return 2.0 * env(s); }, rng);
  const auto res = loss_trend_tomography(m1, m2, milliseconds(35));
  EXPECT_TRUE(res.common_bottleneck);
}

TEST(LossTrendTomography, RejectsIndependentLoss) {
  Rng rng(17);
  const auto m1 = synth(seconds(45), 40, env, rng);
  const auto m2 = synth(
      seconds(45), 40,
      [](int s) { return 0.05 + 0.04 * std::sin(s / 4.5 + 3.0); }, rng);
  const auto res = loss_trend_tomography(m1, m2, milliseconds(35));
  EXPECT_FALSE(res.common_bottleneck);
}

// Figure-3 property: sweeping the loss threshold around the true loss
// rate degrades BinLossTomo's inference of the non-common links.
TEST(BinLossTomo, ThresholdSensitivityNearTrueLossRate) {
  Rng rng(19);
  // Common bottleneck, average loss ~0.04, trend-correlated but unequal.
  const auto m1 = synth(
      seconds(45), 40, [](int s) { return 0.04 + 0.02 * std::sin(s / 8.0); },
      rng);
  const auto m2 = synth(
      seconds(45), 40,
      [](int s) { return 1.4 * (0.04 + 0.02 * std::sin(s / 8.0)); }, rng);
  const auto low = bin_loss_tomo(m1, m2, milliseconds(700), 0.01);
  const auto mid = bin_loss_tomo(m1, m2, milliseconds(700), 0.045);
  // At tau near the mean loss rate, statuses flip-flop and x_1 is dragged
  // down toward x_c (the "curves cross" pathology of Figure 3b).
  if (low.valid && mid.valid) {
    EXPECT_LT(mid.x_1 - mid.x_c, low.x_1 - low.x_c + 0.5);
  }
  SUCCEED();  // primary assertions above are best-effort on noisy data
}

}  // namespace
}  // namespace wehey::core
