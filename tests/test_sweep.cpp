// Sweep-scale observability: the SweepAggregator merge algebra (order-
// and thread-count-insensitive, offline == in-process), the v3 self-time
// profile, the baseline comparator behind `wehey_cli compare`, and the
// schema-version constants' agreement with the JSON Schema files under
// tools/.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/wild.hpp"
#include "obs/aggregate.hpp"
#include "obs/inspect.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/runtime.hpp"
#include "parallel/thread_pool.hpp"

namespace wehey::obs {
namespace {

// ------------------------------------------------------------ profile

const ProfileEntry* entry(const std::vector<ProfileEntry>& profile,
                          const std::string& name) {
  for (const auto& e : profile) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(Profile, SelfTimeSubtractsDirectChildrenOnly) {
  // parent [0,10s] > child [2,5s] > grandchild [3,4s], one track: the
  // parent's self time excludes the child but not the grandchild (which
  // the child already pays for).
  std::vector<ProfileSpan> spans = {
      {0, "parent", 0, 10 * kSecond},
      {0, "child", 2 * kSecond, 5 * kSecond},
      {0, "grandchild", 3 * kSecond, 4 * kSecond},
  };
  const auto profile = profile_from_spans(spans);
  ASSERT_EQ(profile.size(), 3u);
  const ProfileEntry* parent = entry(profile, "parent");
  const ProfileEntry* child = entry(profile, "child");
  const ProfileEntry* grandchild = entry(profile, "grandchild");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(grandchild, nullptr);
  EXPECT_DOUBLE_EQ(parent->sim_ms, 10000.0);
  EXPECT_DOUBLE_EQ(parent->self_sim_ms, 7000.0);
  EXPECT_DOUBLE_EQ(child->sim_ms, 3000.0);
  EXPECT_DOUBLE_EQ(child->self_sim_ms, 2000.0);
  EXPECT_DOUBLE_EQ(grandchild->self_sim_ms, 1000.0);
  // No wall times were provided, so none are reported.
  EXPECT_LT(parent->wall_ms, 0.0);
  EXPECT_LT(parent->self_wall_ms, 0.0);

  // Input order must not matter.
  std::vector<ProfileSpan> reversed(spans.rbegin(), spans.rend());
  const auto again = profile_from_spans(std::move(reversed));
  ASSERT_EQ(again.size(), profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    EXPECT_EQ(again[i].name, profile[i].name);
    EXPECT_DOUBLE_EQ(again[i].self_sim_ms, profile[i].self_sim_ms);
  }
}

TEST(Profile, TracksPreventFalseNestingOfParallelPhases) {
  // Two phases both starting at sim time 0 — the short one would look
  // contained in the long one if they shared a track.
  const auto same_track = profile_from_spans({
      {0, "long", 0, 10 * kSecond},
      {0, "short", 0, 4 * kSecond},
  });
  EXPECT_DOUBLE_EQ(entry(same_track, "long")->self_sim_ms, 6000.0);
  const auto two_tracks = profile_from_spans({
      {0, "long", 0, 10 * kSecond},
      {1, "short", 0, 4 * kSecond},
  });
  EXPECT_DOUBLE_EQ(entry(two_tracks, "long")->self_sim_ms, 10000.0);
  EXPECT_DOUBLE_EQ(entry(two_tracks, "short")->self_sim_ms, 4000.0);
}

TEST(Profile, WallTimesOnlyWhenEverySpanCarriesThem) {
  const auto with_wall = profile_from_spans({
      {0, "stage", 0, 2 * kSecond, 50.0},
      {0, "inner", 0, kSecond, 30.0},
  });
  const ProfileEntry* stage = entry(with_wall, "stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_DOUBLE_EQ(stage->wall_ms, 50.0);
  EXPECT_DOUBLE_EQ(stage->self_wall_ms, 20.0);

  // One span without a wall stamp poisons that name's wall columns (a
  // partial sum would be a lie) but not its sim columns.
  const auto partial = profile_from_spans({
      {0, "stage", 0, 2 * kSecond, 50.0},
      {1, "stage", 0, 2 * kSecond, -1.0},
  });
  const ProfileEntry* p = entry(partial, "stage");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, 2u);
  EXPECT_DOUBLE_EQ(p->sim_ms, 4000.0);
  EXPECT_LT(p->wall_ms, 0.0);
}

// ------------------------------------------------------- merge algebra

/// A small synthetic per-run report + registry, deterministic in `i` and
/// deliberately awkward: non-associative double values, per-cell labels,
/// histograms with under/overflow.
std::pair<RunReport, MetricsRegistry> synthetic_run(std::size_t i) {
  RunReport r;
  char name[32];
  std::snprintf(name, sizeof(name), "sweep_test.c%zu.r%03zu", i % 3, i);
  r.run = name;
  std::snprintf(name, sizeof(name), "cell%zu", i % 3);
  r.cell = name;
  r.seed = 100 + i;
  r.verdict = i % 2 == 0 ? "localized" : "no evidence";
  if (i % 4 == 3) r.reason = "degraded measurements";
  if (i % 5 == 0) r.fault_plan = "kitchen-sink";
  r.values["score"] = 0.1 * static_cast<double>(i) + 1e-3 / (i + 1.0);
  r.values["tput_mbps"] = 40.0 / (1.0 + static_cast<double>(i % 7));
  r.injection["replays_aborted"] = static_cast<int>(i % 2);
  // cell0 sits on the knife edge (|margin| well below the 0.05 default);
  // cell1 and cell2 are comfortably decided. Alternating signs exercise
  // the |margin| convention in the knife_edge block.
  r.decision.evaluated = true;
  r.decision.has_margin = true;
  const double magnitude = i % 3 == 0
                               ? 0.01 + 0.005 * static_cast<double>(i)
                               : 0.4 + 0.01 * static_cast<double>(i);
  r.decision.margin = i % 2 == 0 ? magnitude : -magnitude;
  // v5 ground truth + audit: every run expects a positive; even runs
  // observe one (tp), odd runs miss (fn) with the reason graded by their
  // margin magnitude — so the audit fold sees multiple mismatch kinds.
  r.ground_truth.present = true;
  r.ground_truth.differentiated = true;
  r.ground_truth.mechanism = kMechanismCollectiveTbf;
  r.ground_truth.placement = kPlacementCommonLink;
  r.ground_truth.within_target_area = true;
  r.ground_truth.rate_bps = 1e6 + static_cast<double>(i);
  r.audit = classify_audit(r.ground_truth, i % 2 == 0,
                           /*mechanism_mismatch=*/false,
                           /*budget_exhausted=*/false, r.decision);
  r.add_stage("wehe_test", 0, (1 + Time(i)) * kSecond);
  r.add_stage("analysis", (1 + Time(i)) * kSecond,
              (2 + Time(i)) * kSecond);
  r.profile = profile_from_spans({
      {0, "wehe_test", 0, (1 + Time(i)) * kSecond},
      {0, "replay_window", 0, kSecond / 2},
  });

  MetricsRegistry m;
  m.counter("sim.events").inc(1000 + i);
  m.gauge("queue.depth").set(static_cast<double>(i % 5));
  m.gauge("queue.depth").set(static_cast<double>(10 - (i % 4)));
  Histogram& h = m.histogram("lat_ms", 0.0, 10.0, 8);
  h.observe(-0.5);
  h.observe(0.07 * static_cast<double>(i % 17));
  h.observe(0.9 * static_cast<double>(i % 13));
  h.observe(42.0);
  return {std::move(r), std::move(m)};
}

TEST(Sweep, AggregateIsAbsorbOrderInsensitive) {
  const std::size_t n = 12;
  std::vector<std::pair<RunReport, MetricsRegistry>> runs;
  for (std::size_t i = 0; i < n; ++i) runs.push_back(synthetic_run(i));

  SweepAggregator forward("sweep_test");
  for (const auto& [r, m] : runs) forward.add_run(r, &m);
  SweepAggregator reverse("sweep_test");
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    reverse.add_run(it->first, &it->second);
  }
  // An interleaved order as a third witness.
  SweepAggregator shuffled("sweep_test");
  for (std::size_t i = 0; i < n; i += 2) {
    shuffled.add_run(runs[i].first, &runs[i].second);
  }
  for (std::size_t i = 1; i < n; i += 2) {
    shuffled.add_run(runs[i].first, &runs[i].second);
  }
  const std::string json = forward.to_json();
  EXPECT_EQ(json, reverse.to_json());
  EXPECT_EQ(json, shuffled.to_json());
  EXPECT_EQ(forward.runs(), n);
  EXPECT_NE(json.find("\"schema\": \"wehey.sweep_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("\"cell0\""), std::string::npos);
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
}

TEST(Sweep, OfflineJsonMergeMatchesInProcessMergeByteForByte) {
  const std::size_t n = 9;
  SweepAggregator in_process("sweep_test");
  SweepAggregator offline("sweep_test");
  for (std::size_t i = 0; i < n; ++i) {
    const auto [r, m] = synthetic_run(i);
    in_process.add_run(r, &m);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(json_parse(r.to_json(&m), doc, &error)) << error;
    ASSERT_TRUE(offline.add_run_json(doc, &error)) << error;
  }
  EXPECT_EQ(in_process.to_json(), offline.to_json());
}

TEST(Sweep, KnifeEdgeFlagsOnlyCellsNearTheDecisionBoundary) {
  ::unsetenv("WEHEY_KNIFE_EDGE_MARGIN");
  EXPECT_DOUBLE_EQ(knife_edge_margin_from_env(), kDefaultKnifeEdgeMargin);
  SweepAggregator agg("knife");
  for (std::size_t i = 0; i < 12; ++i) {
    const auto [r, m] = synthetic_run(i);
    agg.add_run(r, &m);
  }
  const std::string json = agg.to_json();
  const std::size_t start = json.find("\"knife_edge\"");
  ASSERT_NE(start, std::string::npos);
  // The v5 audit block follows immediately, so slice up to it.
  const std::string block =
      json.substr(start, json.find("\"audit\"") - start);
  // cell0's minimum |margin| is 0.01 with three runs under the default
  // 0.05; the other cells never dip below 0.4 (negative margins count by
  // magnitude, so cell1's -0.41 does not flag).
  EXPECT_NE(block.find("\"margin_threshold\": 0.05"), std::string::npos);
  EXPECT_NE(block.find("\"cell0\": {\"min_margin\": 0.01, "
                       "\"runs_below\": 3}"),
            std::string::npos)
      << block;
  EXPECT_EQ(block.find("\"cell1\""), std::string::npos);
  EXPECT_EQ(block.find("\"cell2\""), std::string::npos);

  // Tightening the env knob empties the block without touching samples.
  ::setenv("WEHEY_KNIFE_EDGE_MARGIN", "0.001", 1);
  EXPECT_DOUBLE_EQ(knife_edge_margin_from_env(), 0.001);
  const std::string tight = agg.to_json();
  const std::size_t tstart = tight.find("\"knife_edge\"");
  ASSERT_NE(tstart, std::string::npos);
  const std::string tblock =
      tight.substr(tstart, tight.find("\"audit\"") - tstart);
  EXPECT_NE(tblock.find("\"margin_threshold\": 0.001"), std::string::npos);
  EXPECT_EQ(tblock.find("\"cell0\""), std::string::npos);

  // Unparseable or negative values fall back to the default.
  ::setenv("WEHEY_KNIFE_EDGE_MARGIN", "wat", 1);
  EXPECT_DOUBLE_EQ(knife_edge_margin_from_env(), kDefaultKnifeEdgeMargin);
  ::setenv("WEHEY_KNIFE_EDGE_MARGIN", "-0.5", 1);
  EXPECT_DOUBLE_EQ(knife_edge_margin_from_env(), kDefaultKnifeEdgeMargin);
  ::unsetenv("WEHEY_KNIFE_EDGE_MARGIN");
}

TEST(Sweep, AuditFoldsRunClassificationsIntoConfusionMatrices) {
  ::unsetenv("WEHEY_KNIFE_EDGE_MARGIN");
  SweepAggregator agg("audit");
  for (std::size_t i = 0; i < 12; ++i) {
    const auto [r, m] = synthetic_run(i);
    agg.add_run(r, &m);
  }
  const std::string json = agg.to_json();
  const std::size_t start = json.find("\"audit\"");
  ASSERT_NE(start, std::string::npos);
  const std::string block =
      json.substr(start, json.find("\"cell_percentiles\"") - start);
  // Grid: the six even runs land tp, the six odd runs miss (fn). The one
  // odd knife-edge run (i=3, |margin| 0.025 < 0.05) grades
  // sub-margin-miss; the other five misses are clear.
  EXPECT_NE(block.find("\"tp\": 6"), std::string::npos) << block;
  EXPECT_NE(block.find("\"fn\": 6"), std::string::npos);
  EXPECT_NE(block.find("\"accuracy\": 0.5"), std::string::npos);
  EXPECT_NE(block.find("\"precision\": 1"), std::string::npos);
  EXPECT_NE(block.find("\"recall\": 0.5"), std::string::npos);
  EXPECT_NE(block.find("\"sub-margin-miss\": 1"), std::string::npos);
  EXPECT_NE(block.find("\"clear-miss\": 5"), std::string::npos);
  // Per-cell matrices: each cell sees 2 tp + 2 fn, and only cell0 (the
  // sub-0.05 margins) carries the knife-edge flag.
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = block.find(needle); at != std::string::npos;
         at = block.find(needle, at + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"tp\": 2"), 3u) << block;
  EXPECT_EQ(count("\"fn\": 2"), 3u);
  EXPECT_EQ(count("\"knife_edge\": true"), 1u);
  EXPECT_EQ(count("\"knife_edge\": false"), 2u);

  // The audit fold obeys the same merge algebra as everything else:
  // offline absorption of the serialized per-run reports reproduces the
  // in-process aggregate byte for byte (audit block included).
  SweepAggregator offline("audit");
  for (std::size_t i = 0; i < 12; ++i) {
    const auto [r, m] = synthetic_run(i);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(json_parse(r.to_json(&m), doc, &error)) << error;
    ASSERT_TRUE(offline.add_run_json(doc, &error)) << error;
  }
  EXPECT_EQ(json, offline.to_json());
}

TEST(Sweep, RejectsNonReportDocuments) {
  SweepAggregator agg("sweep_test");
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse("{\"schema\": \"wehey.sweep_report.v1\"}", doc));
  EXPECT_FALSE(agg.add_run_json(doc, &error));
  EXPECT_FALSE(error.empty());
  ASSERT_TRUE(json_parse("[1, 2]", doc));
  EXPECT_FALSE(agg.add_run_json(doc, &error));
  EXPECT_EQ(agg.runs(), 0u);
}

// The acceptance property: a real grid sweep aggregated from parallel
// trials is byte-identical across thread counts.
TEST(Sweep, WildSweepByteIdenticalAcrossThreadCounts) {
  using experiments::WildConfig;
  const auto isps = experiments::default_isp_models();
  WildConfig base;
  base.isp = isps[0];
  base.seed = 1;
  const auto t_diff = experiments::build_wild_t_diff(base, 8);

  const auto sweep_json = [&](unsigned threads) {
    const auto results = parallel::parallel_map(
        3,
        [&](std::size_t i) {
          WildConfig cfg = base;
          cfg.seed = 1000 + i * 17;
          char run_id[48];
          std::snprintf(run_id, sizeof(run_id), "wild_sweep.r%03zu", i);
          return experiments::run_wild_test_reported(
              cfg, t_diff, /*sanity_check=*/false, run_id);
        },
        threads);
    SweepAggregator agg("wild_sweep");
    for (const auto& res : results) agg.add_run(res.report, &res.metrics);
    return agg.to_json();
  };
  const std::string serial = sweep_json(1);
  const std::string pooled = sweep_json(4);
  EXPECT_EQ(serial, pooled);
  EXPECT_NE(serial.find("\"runs\": 3"), std::string::npos);
  EXPECT_NE(serial.find("single_original"), std::string::npos);
  // The per-phase self time excludes the nested replay window.
  EXPECT_NE(serial.find("\"replay_window\""), std::string::npos);
}

// ------------------------------------------------------------ compare

JsonValue parse(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(json_parse(text, doc, &error)) << error;
  return doc;
}

TEST(Compare, WithinToleranceAndDriftDetected) {
  const JsonValue base =
      parse("{\"values\": {\"score\": {\"mean\": 100.0}}, \"runs\": 10}");
  CompareOptions opts;
  opts.tolerance = 0.05;
  // 2% drift: fine.
  const auto ok = compare_reports(
      base, parse("{\"values\": {\"score\": {\"mean\": 102.0}}, "
                  "\"runs\": 10}"),
      opts);
  EXPECT_TRUE(ok.ok) << (ok.failures.empty() ? "" : ok.failures[0]);
  // 10% drift: out of tolerance.
  const auto drift = compare_reports(
      base, parse("{\"values\": {\"score\": {\"mean\": 110.0}}, "
                  "\"runs\": 10}"),
      opts);
  EXPECT_FALSE(drift.ok);
  ASSERT_EQ(drift.failures.size(), 1u);
  EXPECT_NE(drift.failures[0].find("values.score.mean"), std::string::npos);
  // Integer drift (runs changed) is caught by the same machinery.
  const auto fewer = compare_reports(
      base, parse("{\"values\": {\"score\": {\"mean\": 100.0}}, "
                  "\"runs\": 7}"),
      opts);
  EXPECT_FALSE(fewer.ok);
}

TEST(Compare, MissingKeysIgnoreAndFloors) {
  const JsonValue base =
      parse("{\"a\": 1.0, \"wall_ms\": 5.0, \"verdict\": \"ok\"}");
  CompareOptions opts;
  opts.ignore.push_back("wall");
  // Candidate dropped "a" -> failure; changed wall_ms -> ignored; new key
  // -> note only.
  const auto res = compare_reports(
      base, parse("{\"wall_ms\": 500.0, \"verdict\": \"ok\", \"b\": 2}"),
      opts);
  EXPECT_FALSE(res.ok);
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_NE(res.failures[0].find("missing in candidate: a"),
            std::string::npos);
  ASSERT_EQ(res.notes.size(), 1u);
  EXPECT_NE(res.notes[0].find("b"), std::string::npos);
  // Verdict strings compare exactly.
  const auto verdict = compare_reports(
      base, parse("{\"a\": 1.0, \"wall_ms\": 5.0, \"verdict\": \"bad\"}"),
      opts);
  EXPECT_FALSE(verdict.ok);

  // min-key floors judge the candidate alone.
  CompareOptions floors;
  floors.min_keys.emplace_back("tput", 10.0);
  EXPECT_TRUE(compare_reports(parse("{\"tput\": 50.0}"),
                              parse("{\"tput\": 49.0}"), floors)
                  .ok);
  EXPECT_FALSE(compare_reports(parse("{\"tput\": 50.0}"),
                               parse("{\"tput\": 9.0}"), floors)
                   .ok);
  // A floor that matches nothing must fail loudly, not silently pass.
  CompareOptions dangling;
  dangling.min_keys.emplace_back("no_such_key", 1.0);
  EXPECT_FALSE(
      compare_reports(parse("{\"a\": 1}"), parse("{\"a\": 1}"), dangling)
          .ok);
}

TEST(Compare, PerKeyToleranceOverride) {
  CompareOptions opts;
  opts.tolerance = 0.01;
  opts.key_tolerances.emplace_back("noisy", 0.5);
  const auto res = compare_reports(
      parse("{\"noisy_metric\": 100.0, \"stable\": 100.0}"),
      parse("{\"noisy_metric\": 140.0, \"stable\": 100.5}"), opts);
  ASSERT_EQ(res.failures.size(), 0u) << res.failures[0];
}

TEST(Compare, RequireKeyGuardsSectionExistence) {
  const JsonValue base = parse("{\"a\": 1.0}");
  const JsonValue cand = parse(
      "{\"a\": 1.0, \"knife_edge\": {\"margin_threshold\": 0.05, "
      "\"cells\": {\"ISP2\": {\"min_margin\": 0.01, \"runs_below\": 2}}}}");

  // Existence is asserted against all candidate keys — even ones the
  // numeric diff ignores, so CI can exempt knife_edge drift while still
  // failing if the section disappears outright.
  CompareOptions opts;
  opts.ignore.push_back("knife_edge");
  opts.require_keys.push_back("knife_edge\\.margin_threshold");
  opts.require_keys.push_back("knife_edge\\.cells");
  EXPECT_TRUE(compare_reports(base, cand, opts).ok);

  // A pattern matching nothing fails loudly instead of silently turning
  // the gate into a no-op.
  opts.require_keys.push_back("decision");
  const auto res = compare_reports(base, cand, opts);
  EXPECT_FALSE(res.ok);
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_NE(
      res.failures[0].find("require-key pattern matched nothing: decision"),
      std::string::npos);
}

// ----------------------------------------------- schema single-sourcing

/// The C++ constants and the JSON Schema files under tools/ must agree —
/// a version bump that misses one side fails here, not in CI archaeology.
TEST(Schema, ToolsSchemasNameTheCppConstants) {
  const std::string root = WEHEY_SOURCE_DIR;
  std::string text;
  ASSERT_TRUE(read_file(root + "/tools/run_report_schema.json", text));
  JsonValue run_schema;
  std::string error;
  ASSERT_TRUE(json_parse(text, run_schema, &error)) << error;
  const JsonValue* run_enum = run_schema.find("properties");
  ASSERT_NE(run_enum, nullptr);
  run_enum = run_enum->find("schema");
  ASSERT_NE(run_enum, nullptr);
  run_enum = run_enum->find("enum");
  ASSERT_NE(run_enum, nullptr);
  bool current_listed = false;
  for (const auto& v : run_enum->array) {
    EXPECT_EQ(v.str.rfind(kRunReportSchemaPrefix, 0), 0u) << v.str;
    current_listed |= v.str == kRunReportSchema;
  }
  EXPECT_TRUE(current_listed)
      << "tools/run_report_schema.json enum lacks " << kRunReportSchema;

  ASSERT_TRUE(read_file(root + "/tools/sweep_report_schema.json", text));
  JsonValue sweep_schema;
  ASSERT_TRUE(json_parse(text, sweep_schema, &error)) << error;
  const JsonValue* sweep_const = sweep_schema.find("properties");
  ASSERT_NE(sweep_const, nullptr);
  sweep_const = sweep_const->find("schema");
  ASSERT_NE(sweep_const, nullptr);
  sweep_const = sweep_const->find("const");
  ASSERT_NE(sweep_const, nullptr);
  EXPECT_EQ(sweep_const->str, kSweepReportSchema);

  ASSERT_TRUE(read_file(root + "/tools/sweep_checkpoint_schema.json", text));
  JsonValue ckpt_schema;
  ASSERT_TRUE(json_parse(text, ckpt_schema, &error)) << error;
  const JsonValue* ckpt_const = ckpt_schema.find("properties");
  ASSERT_NE(ckpt_const, nullptr);
  ckpt_const = ckpt_const->find("schema");
  ASSERT_NE(ckpt_const, nullptr);
  ckpt_const = ckpt_const->find("const");
  ASSERT_NE(ckpt_const, nullptr);
  EXPECT_EQ(ckpt_const->str, kSweepCheckpointSchema);

  ASSERT_TRUE(read_file(root + "/tools/runtime_report_schema.json", text));
  JsonValue runtime_schema;
  ASSERT_TRUE(json_parse(text, runtime_schema, &error)) << error;
  const JsonValue* runtime_const = runtime_schema.find("properties");
  ASSERT_NE(runtime_const, nullptr);
  runtime_const = runtime_const->find("schema");
  ASSERT_NE(runtime_const, nullptr);
  runtime_const = runtime_const->find("const");
  ASSERT_NE(runtime_const, nullptr);
  EXPECT_EQ(runtime_const->str, kRuntimeReportSchema);
}

// -------------------------------------------------- inspect hardening

TEST(Inspect, MalformedAndUnknownFilesFailWithoutPartialOutput) {
  const std::string dir = ::testing::TempDir();
  const std::string bad = dir + "/bad.json";
  ASSERT_TRUE(write_report_file(bad, "{\"schema\": \"wehey.run_report.v3\","));
  std::FILE* sink = std::fopen((dir + "/sink.txt").c_str(), "w");
  ASSERT_NE(sink, nullptr);
  EXPECT_FALSE(inspect_file(bad, sink));
  EXPECT_FALSE(inspect_file(dir + "/does_not_exist.json", sink));
  const std::string alien = dir + "/alien.json";
  ASSERT_TRUE(write_report_file(alien, "{\"hello\": 1}"));
  EXPECT_FALSE(inspect_file(alien, sink));
  // Nothing was rendered for any of the failures.
  std::fclose(sink);
  std::string rendered;
  ASSERT_TRUE(read_file(dir + "/sink.txt", rendered));
  EXPECT_TRUE(rendered.empty());
}

TEST(Inspect, ParserRejectsPathologicalDocuments) {
  JsonValue doc;
  std::string error;
  // Unbounded nesting is refused at a fixed depth instead of recursing
  // until the stack gives out.
  EXPECT_FALSE(json_parse(std::string(100000, '['), doc, &error));
  EXPECT_EQ(error, "nesting too deep");
  std::string object_bomb;
  for (int i = 0; i < 1000; ++i) object_bomb += "{\"a\":";
  EXPECT_FALSE(json_parse(object_bomb, doc, &error));
  EXPECT_EQ(error, "nesting too deep");
  // Nesting inside the cap still parses.
  std::string deep_ok(40, '[');
  deep_ok.append(40, ']');
  EXPECT_TRUE(json_parse(deep_ok, doc, &error)) << error;
  // Truncated and malformed documents fail with a message, not a crash.
  for (const char* bad :
       {"", "{\"run\": [1, 2", "\"unterminated", "{\"a\" 1}", "{} trailing",
        "tru", "nul", "{\"a\":}", "[1,]", "{\"a\": \"\\x\"}"}) {
    EXPECT_FALSE(json_parse(bad, doc, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }

  // The same failures surface file-level: a pathological report file
  // inspects to false without emitting partial output.
  const std::string dir = ::testing::TempDir();
  const std::string deep = dir + "/deep.json";
  ASSERT_TRUE(write_report_file(deep, std::string(100000, '[')));
  const std::string sink_path = dir + "/deep_sink.txt";
  std::FILE* sink = std::fopen(sink_path.c_str(), "w");
  ASSERT_NE(sink, nullptr);
  EXPECT_FALSE(inspect_file(deep, sink));
  std::fclose(sink);
  std::string rendered;
  ASSERT_TRUE(read_file(sink_path, rendered));
  EXPECT_TRUE(rendered.empty());
}

TEST(Compare, FlattenKeysListsTheComparableKeySpace) {
  // Backs the --list-keys discovery flow in wehey_cli compare and
  // bench_compare.py: sorted dotted paths, arrays indexed, every leaf
  // type included.
  const JsonValue doc = parse(
      "{\"b\": {\"y\": 1.5, \"x\": [2, \"s\"]}, \"a\": true, "
      "\"c\": null, \"d\": {}}");
  const std::vector<std::string> expected = {"a", "b.x[0]", "b.x[1]", "b.y",
                                             "c"};
  EXPECT_EQ(flatten_keys(doc), expected);
}

TEST(Inspect, DegradesGracefullyOnMissingOptionalSections) {
  // A v1-era report: no percentiles, no profile, no cell, no metrics.
  const std::string dir = ::testing::TempDir();
  const std::string v1 = dir + "/v1.json";
  ASSERT_TRUE(write_report_file(
      v1,
      "{\"schema\": \"wehey.run_report.v1\", \"run\": \"old\", "
      "\"seed\": 1, \"fault_plan\": \"\", \"verdict\": \"done\", "
      "\"reason\": \"\", \"stages\": [], \"values\": {}, "
      "\"injection\": {}, \"metrics\": {\"counters\": {}, \"gauges\": {}, "
      "\"histograms\": {}}}"));
  std::FILE* sink = std::fopen((dir + "/v1.txt").c_str(), "w");
  ASSERT_NE(sink, nullptr);
  EXPECT_TRUE(inspect_file(v1, sink));
  std::fclose(sink);
  std::string rendered;
  ASSERT_TRUE(read_file(dir + "/v1.txt", rendered));
  EXPECT_NE(rendered.find("wehey.run_report.v1"), std::string::npos);
  EXPECT_NE(rendered.find("old"), std::string::npos);
}

TEST(Inspect, RendersSweepReports) {
  SweepAggregator agg("render_me");
  for (std::size_t i = 0; i < 4; ++i) {
    const auto [r, m] = synthetic_run(i);
    agg.add_run(r, &m);
  }
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/sweep.json";
  ASSERT_TRUE(write_report_file(path, agg.to_json()));
  std::FILE* sink = std::fopen((dir + "/sweep.txt").c_str(), "w");
  ASSERT_NE(sink, nullptr);
  EXPECT_TRUE(inspect_file(path, sink));
  std::fclose(sink);
  std::string rendered;
  ASSERT_TRUE(read_file(dir + "/sweep.txt", rendered));
  EXPECT_NE(rendered.find("sweep report"), std::string::npos);
  EXPECT_NE(rendered.find("render_me"), std::string::npos);
  EXPECT_NE(rendered.find("cell0"), std::string::npos);
  EXPECT_NE(rendered.find("stage profile"), std::string::npos);
  // The v5 confusion-matrix table renders alongside the older sections.
  EXPECT_NE(rendered.find("AUDIT"), std::string::npos);
  EXPECT_NE(rendered.find("(grid)"), std::string::npos);
}

// ---------------------------------------------------- frozen fixtures

/// Backward compatibility: real reports from each schema era are frozen
/// under tests/data/ — today's tooling must keep accepting them. (CI
/// also runs tools/validate_report.py over the same files.)
TEST(Inspect, FrozenFixtureReportsStillRender) {
  const std::string root = WEHEY_SOURCE_DIR;
  const char* fixtures[] = {
      "/tests/data/run_report_v1.json",
      "/tests/data/run_report_v2.json",
      "/tests/data/run_report_v3.json",
      "/tests/data/run_report_v4.json",
      "/tests/data/run_report_v5.json",
      "/tests/data/sweep_report_v1.json",
  };
  const std::string dir = ::testing::TempDir();
  for (const char* fixture : fixtures) {
    const std::string sink_path = dir + "/fixture.txt";
    std::FILE* sink = std::fopen(sink_path.c_str(), "w");
    ASSERT_NE(sink, nullptr);
    EXPECT_TRUE(inspect_file(root + fixture, sink)) << fixture;
    std::fclose(sink);
    std::string rendered;
    ASSERT_TRUE(read_file(sink_path, rendered));
    EXPECT_FALSE(rendered.empty()) << fixture;
  }
}

TEST(Sweep, FrozenRunReportFixturesStillAbsorb) {
  const std::string root = WEHEY_SOURCE_DIR;
  SweepAggregator agg("fixtures");
  for (const char* fixture : {"/tests/data/run_report_v1.json",
                              "/tests/data/run_report_v2.json",
                              "/tests/data/run_report_v3.json"}) {
    std::string text;
    ASSERT_TRUE(read_file(root + fixture, text)) << fixture;
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(json_parse(text, doc, &error)) << error;
    ASSERT_TRUE(agg.add_run_json(doc, &error)) << fixture << ": " << error;
  }
  EXPECT_EQ(agg.runs(), 3u);
  // Pre-v4 reports carry no decision margin, so the knife_edge block is
  // present but empty — and with no v5 audit sections absorbed, the audit
  // block is absent entirely (absent-by-default).
  const std::string json = agg.to_json();
  const std::size_t start = json.find("\"knife_edge\"");
  ASSERT_NE(start, std::string::npos);
  const std::string block =
      json.substr(start, json.find("\"cell_percentiles\"") - start);
  EXPECT_EQ(block.find("min_margin"), std::string::npos);
  EXPECT_EQ(json.find("\"audit\""), std::string::npos);
}

TEST(Sweep, FrozenV4AndV5FixturesAbsorbMarginsAndAudit) {
  const std::string root = WEHEY_SOURCE_DIR;
  SweepAggregator agg("fixtures_v45");
  for (const char* fixture : {"/tests/data/run_report_v4.json",
                              "/tests/data/run_report_v5.json"}) {
    std::string text;
    ASSERT_TRUE(read_file(root + fixture, text)) << fixture;
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(json_parse(text, doc, &error)) << error;
    ASSERT_TRUE(agg.add_run_json(doc, &error)) << fixture << ": " << error;
  }
  EXPECT_EQ(agg.runs(), 2u);
  const std::string json = agg.to_json();
  // Both eras contribute decision margins to the value summaries...
  EXPECT_NE(json.find("\"decision_margin\""), std::string::npos);
  // ...but only the v5 report carries an audit section, so the audit
  // block holds exactly its one true positive.
  const std::size_t start = json.find("\"audit\"");
  ASSERT_NE(start, std::string::npos);
  const std::string block =
      json.substr(start, json.find("\"cell_percentiles\"") - start);
  EXPECT_NE(block.find("\"tp\": 1"), std::string::npos) << block;
  EXPECT_NE(block.find("\"fn\": 0"), std::string::npos);
  EXPECT_NE(block.find("\"skipped\": 0"), std::string::npos);
  EXPECT_NE(block.find("\"accuracy\": 1"), std::string::npos);
}

// ----------------------------------------------------- report mode env

TEST(ReportMode, ParsesEnvironmentKnob) {
  ::unsetenv("WEHEY_REPORT_MODE");
  EXPECT_EQ(report_mode_from_env(), ReportMode::kPerRun);
  ::setenv("WEHEY_REPORT_MODE", "sweep", 1);
  EXPECT_EQ(report_mode_from_env(), ReportMode::kSweep);
  ::setenv("WEHEY_REPORT_MODE", "both", 1);
  EXPECT_EQ(report_mode_from_env(), ReportMode::kBoth);
  ::setenv("WEHEY_REPORT_MODE", "wat", 1);
  EXPECT_EQ(report_mode_from_env(), ReportMode::kPerRun);
  ::unsetenv("WEHEY_REPORT_MODE");

  // Sweep-path resolution per mode.
  ::setenv("WEHEY_REPORT", "/tmp/x.json", 1);
  ::setenv("WEHEY_REPORT_MODE", "sweep", 1);
  EXPECT_EQ(sweep_path_from_env("r"), "/tmp/x.json");
  ::setenv("WEHEY_REPORT_MODE", "both", 1);
  EXPECT_EQ(sweep_path_from_env("r"), "/tmp/x.json.sweep.json");
  ::unsetenv("WEHEY_REPORT");
  ::setenv("WEHEY_REPORT_DIR", "/tmp", 1);
  EXPECT_EQ(sweep_path_from_env("r"), "/tmp/r.sweep.json");
  ::unsetenv("WEHEY_REPORT_DIR");
  ::unsetenv("WEHEY_REPORT_MODE");
  EXPECT_EQ(sweep_path_from_env("r"), "");
}

}  // namespace
}  // namespace wehey::obs
