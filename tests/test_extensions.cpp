// The §7 / §3.2 extension components: per-flow rate limiting with the
// same-flow countermeasure, the coupled-bottleneck test, BBR, and IP
// alias resolution.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "core/coupling.hpp"
#include "core/loss_correlation.hpp"
#include "experiments/params.hpp"
#include "experiments/scenario.hpp"
#include "netsim/link.hpp"
#include "netsim/queue.hpp"
#include "netsim/simulator.hpp"
#include "topology/alias.hpp"
#include "topology/construction.hpp"
#include "transport/tcp.hpp"

namespace wehey {
namespace {

netsim::Packet diff_packet(netsim::FlowId flow, std::uint32_t size,
                           netsim::FlowId key = 0) {
  netsim::Packet p;
  p.flow = flow;
  p.policer_key = key;
  p.size = size;
  p.payload = size;
  p.dscp = netsim::kDscpDifferentiated;
  return p;
}

TEST(PerFlowLimiter, OneBucketPerFlow) {
  netsim::PerFlowRateLimiterDisc disc(std::make_unique<netsim::FifoDisc>(0),
                                      mbps(1), 3000, 3000);
  // Each flow's bucket admits burst+limit = 6000 B, then polices.
  for (netsim::FlowId flow : {1u, 2u, 3u}) {
    for (int i = 0; i < 6; ++i) disc.enqueue(diff_packet(flow, 1500), 0);
  }
  EXPECT_EQ(disc.flow_bucket_count(), 3u);
  // Per flow: 2 pass tokens at t=0 into... enqueue admits up to limit
  // (3000 B backlog) after tokens; 6x1500 = 9000 offered per flow, burst
  // 3000 forwarded eventually + 3000 queued -> 2 drops per flow minimum.
  EXPECT_GE(disc.throttled_drops(), 3u);
}

TEST(PerFlowLimiter, SpoofedKeysShareOneBucket) {
  netsim::PerFlowRateLimiterDisc disc(std::make_unique<netsim::FifoDisc>(0),
                                      mbps(1), 3000, 3000);
  disc.enqueue(diff_packet(1, 1500, /*key=*/7), 0);
  disc.enqueue(diff_packet(2, 1500, /*key=*/7), 0);
  EXPECT_EQ(disc.flow_bucket_count(), 1u);
}

TEST(PerFlowLimiter, DefaultClassBypasses) {
  netsim::PerFlowRateLimiterDisc disc(std::make_unique<netsim::FifoDisc>(0),
                                      kbps(1), 1500, 0);
  netsim::Packet p;
  p.flow = 9;
  p.size = 1500;
  p.dscp = netsim::kDscpDefault;
  EXPECT_TRUE(disc.enqueue(p, 0));
  EXPECT_TRUE(disc.dequeue(0).has_value());
  EXPECT_EQ(disc.flow_bucket_count(), 0u);
}

TEST(Coupling, DetectsComplementaryFlows) {
  // Two flows sharing one bucket of rate R: y1 + y2 ~ R, individually
  // oscillating.
  Rng rng(3);
  std::vector<double> y1, y2;
  for (int i = 0; i < 100; ++i) {
    const double share = 0.2 + 0.6 * rng.uniform();
    const double total = rng.normal(2e6, 4e4);
    y1.push_back(total * share);
    y2.push_back(total * (1.0 - share));
  }
  const auto res = core::coupled_bottleneck_test(y1, y2);
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(res.coupled);
  EXPECT_LT(res.correlation, 0.0);
  EXPECT_LT(res.ratio, 0.5);
}

TEST(Coupling, RejectsIndividuallyPinnedFlows) {
  // Separate identical policers: each flow pinned at its own rate.
  Rng rng(5);
  std::vector<double> y1, y2;
  for (int i = 0; i < 100; ++i) {
    y1.push_back(rng.normal(1e6, 2e4));
    y2.push_back(rng.normal(1e6, 2e4));
  }
  const auto res = core::coupled_bottleneck_test(y1, y2);
  ASSERT_TRUE(res.valid);
  EXPECT_FALSE(res.coupled);  // individual CoV below the floor
}

TEST(Coupling, RejectsCoMovingFlows) {
  // Collective bottleneck shared with lots of other traffic: the two
  // flows rise and fall together (positive correlation, aggregate varies
  // as much as the parts).
  Rng rng(7);
  std::vector<double> y1, y2;
  for (int i = 0; i < 100; ++i) {
    const double env = 1e6 * (1.0 + 0.5 * std::sin(i / 7.0));
    y1.push_back(env * rng.normal(1.0, 0.1));
    y2.push_back(env * rng.normal(1.0, 0.1));
  }
  const auto res = core::coupled_bottleneck_test(y1, y2);
  ASSERT_TRUE(res.valid);
  EXPECT_FALSE(res.coupled);
  EXPECT_GT(res.correlation, 0.0);
}

TEST(Coupling, InvalidOnShortInput) {
  const std::vector<double> tiny{1, 2, 3};
  EXPECT_FALSE(core::coupled_bottleneck_test(tiny, tiny).valid);
}

TEST(Bbr, NoLossNoQueueOnCleanPath) {
  using namespace transport;
  netsim::Simulator sim;
  netsim::PacketIdSource ids;
  TcpConfig cfg;
  cfg.cc = CongestionControl::Bbr;
  auto demux = std::make_unique<netsim::Demux>();
  auto link = std::make_unique<netsim::Link>(
      sim, mbps(10), milliseconds(15),
      std::make_unique<netsim::FifoDisc>(125000), demux.get());
  auto pipe = std::make_unique<netsim::Pipe>(sim, milliseconds(15));
  TcpSender snd(sim, ids, cfg, 1, 0, link.get());
  TcpReceiver rcv(sim, ids, cfg, 1, pipe.get());
  pipe->set_next(&snd);
  demux->add_route(1, &rcv);
  Time done = -1;
  snd.set_on_complete([&] { done = sim.now(); });
  snd.supply(5'000'000);
  sim.run(seconds(60));
  ASSERT_GT(done, 0);
  // BBR's signature: near-capacity goodput with (almost) no retransmits
  // and no standing queue (srtt stays near the propagation RTT).
  EXPECT_GT(5e6 * 8.0 / to_seconds(done), mbps(7.5));
  EXPECT_LE(snd.retransmissions(), 5u);
  EXPECT_LT(to_milliseconds(snd.srtt()), 45.0);
}

TEST(Bbr, ConvergesToPolicerRate) {
  using namespace transport;
  netsim::Simulator sim;
  netsim::PacketIdSource ids;
  TcpConfig cfg;
  cfg.cc = CongestionControl::Bbr;
  auto demux = std::make_unique<netsim::Demux>();
  auto fifo = std::make_unique<netsim::FifoDisc>(0);
  auto tbf = std::make_unique<netsim::TbfDisc>(mbps(2), 15000, 15000);
  auto link = std::make_unique<netsim::Link>(
      sim, mbps(50), milliseconds(15),
      std::make_unique<netsim::RateLimiterDisc>(std::move(fifo),
                                                std::move(tbf)),
      demux.get());
  auto pipe = std::make_unique<netsim::Pipe>(sim, milliseconds(15));
  TcpSender snd(sim, ids, cfg, 1, netsim::kDscpDifferentiated, link.get());
  TcpReceiver rcv(sim, ids, cfg, 1, pipe.get());
  pipe->set_next(&snd);
  demux->add_route(1, &rcv);
  snd.supply(20'000'000);
  sim.run(seconds(20));
  const double rate =
      rcv.received_bytes() * 8.0 / to_seconds(sim.now());
  // Delivered goodput approaches the policed rate.
  EXPECT_GT(rate, mbps(1.4));
  EXPECT_LE(rate, mbps(2.3));
}

TEST(PerFlowScenario, HonestRepliesAreNotLocalized) {
  auto cfg = experiments::default_scenario("Netflix", 71);
  cfg.placement = experiments::Placement::PerFlowCommonLink;
  cfg.replay_duration = seconds(30);
  const auto sim = experiments::run_simultaneous_experiment(cfg);
  // Differentiation is real (per-flow buckets throttle the replays)...
  EXPECT_TRUE(sim.differentiation_confirmed);
  // ...but the buckets are independent: no common bottleneck.
  const auto corr = core::loss_trend_correlation(
      sim.original.p1.meas, sim.original.p2.meas, milliseconds(35));
  EXPECT_FALSE(corr.common_bottleneck);
  const auto coupled = core::coupled_bottleneck_test(
      sim.original.p1.meas.throughput_samples(100),
      sim.original.p2.meas.throughput_samples(100));
  EXPECT_FALSE(coupled.coupled);
}

TEST(PerFlowScenario, SpoofedReplaysAreCoupled) {
  auto cfg = experiments::default_scenario("Netflix", 73);
  cfg.placement = experiments::Placement::PerFlowCommonLink;
  cfg.spoof_same_flow = true;
  cfg.replay_duration = seconds(30);
  const auto sim = experiments::run_simultaneous_experiment(cfg);
  EXPECT_TRUE(sim.differentiation_confirmed);
  const auto coupled = core::coupled_bottleneck_test(
      sim.original.p1.meas.throughput_samples(100),
      sim.original.p2.meas.throughput_samples(100));
  EXPECT_TRUE(coupled.coupled);
}

TEST(Alias, ResolvesCoReportedAddresses) {
  topology::TracerouteRecord rec;
  rec.server = "s1";
  rec.dst_ip = "100.0.1.77";
  rec.dst_asn = 64500;
  topology::Hop hop;
  hop.reported_ips = {"172.16.1.1", "172.16.1.19"};
  hop.asn = 65100;
  rec.hops.push_back(hop);
  EXPECT_FALSE(rec.alias_consistent());

  topology::AliasResolver resolver;
  resolver.learn({rec});
  EXPECT_EQ(resolver.canonical("172.16.1.19"),
            resolver.canonical("172.16.1.1"));
  EXPECT_EQ(resolver.canonical("10.9.9.9"), "10.9.9.9");  // unseen

  const auto resolved = resolver.resolve({rec});
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_TRUE(resolved[0].alias_consistent());
}

TEST(Alias, TransitiveMerge) {
  auto make = [](std::vector<std::string> ips) {
    topology::TracerouteRecord rec;
    topology::Hop hop;
    hop.reported_ips = std::move(ips);
    rec.hops.push_back(hop);
    return rec;
  };
  topology::AliasResolver resolver;
  resolver.learn({make({"a", "b"}), make({"b", "c"})});
  EXPECT_EQ(resolver.canonical("a"), resolver.canonical("c"));
}

}  // namespace
}  // namespace wehey
