// The §4.1 throughput-comparison algorithm on controlled inputs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/throughput_comparison.hpp"

namespace wehey::core {
namespace {

std::vector<double> samples(double mean, double jitter, int n, Rng& rng) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) out.push_back(rng.normal(mean, jitter));
  return out;
}

/// Historical t_diff values with relative spread `sigma` (signed).
std::vector<double> history(double sigma, int n, Rng& rng) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) out.push_back(rng.normal(0.0, sigma));
  return out;
}

TEST(ThroughputComparison, AggregateSamplesSums) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{10, 20, 30, 40};
  EXPECT_EQ(aggregate_samples(a, b), (std::vector<double>{11, 22, 33}));
}

TEST(ThroughputComparison, DetectsPerClientBottleneck) {
  // X and Y both pinned at the same per-client limiter rate; historical
  // variation is an order of magnitude wider.
  Rng rng(3);
  const auto x = samples(2.0e6, 4e4, 100, rng);
  const auto y = samples(2.0e6, 4e4, 100, rng);
  const auto t_diff = history(0.08, 30, rng);
  const auto res = throughput_comparison(x, y, t_diff, rng);
  ASSERT_TRUE(res.valid);
  EXPECT_TRUE(res.common_bottleneck);
  EXPECT_LT(res.p_value, 0.05);
  EXPECT_EQ(res.o_diff.size(), t_diff.size());
}

TEST(ThroughputComparison, RejectsWhenAggregateFallsShort) {
  // Y clearly below X (paths share the bottleneck with other traffic).
  Rng rng(5);
  const auto x = samples(4.0e6, 2e5, 100, rng);
  const auto y = samples(2.5e6, 2e5, 100, rng);
  const auto t_diff = history(0.08, 30, rng);
  const auto res = throughput_comparison(x, y, t_diff, rng);
  ASSERT_TRUE(res.valid);
  EXPECT_FALSE(res.common_bottleneck);
}

TEST(ThroughputComparison, RejectsWhenAggregateExceeds) {
  // Y well above X is equally inconsistent with a shared dedicated queue.
  Rng rng(7);
  const auto x = samples(2.0e6, 1e5, 100, rng);
  const auto y = samples(3.5e6, 1e5, 100, rng);
  const auto t_diff = history(0.08, 30, rng);
  EXPECT_FALSE(throughput_comparison(x, y, t_diff, rng).common_bottleneck);
}

TEST(ThroughputComparison, ConservativeWhenHistoryTight) {
  // If normal variation is as small as the X/Y difference, the evidence
  // is inconclusive: no detection.
  Rng rng(9);
  const auto x = samples(2.0e6, 1e5, 100, rng);
  const auto y = samples(1.9e6, 1e5, 100, rng);
  const auto t_diff = history(0.01, 30, rng);
  EXPECT_FALSE(throughput_comparison(x, y, t_diff, rng).common_bottleneck);
}

TEST(ThroughputComparison, InvalidOnTinyInputs) {
  Rng rng(11);
  const std::vector<double> tiny{1.0, 2.0};
  const auto t_diff = history(0.1, 30, rng);
  EXPECT_FALSE(throughput_comparison(tiny, tiny, t_diff, rng).valid);
  const auto x = samples(1e6, 1e5, 50, rng);
  EXPECT_FALSE(
      throughput_comparison(x, x, std::vector<double>{0.1}, rng).valid);
}

TEST(ThroughputComparison, ODiffUsesMagnitudes) {
  Rng rng(13);
  const auto x = samples(2e6, 5e4, 100, rng);
  const auto y = samples(2e6, 5e4, 100, rng);
  const auto t_diff = history(0.1, 40, rng);
  const auto res = throughput_comparison(x, y, t_diff, rng);
  for (double v : res.o_diff) EXPECT_GE(v, 0.0);
  for (double v : res.t_diff) EXPECT_GE(v, 0.0);
}

// Property sweep: detection is monotone in the history spread — wider
// normal variation makes the same X/Y pair easier to justify.
class HistorySpreadSweep : public ::testing::TestWithParam<double> {};

TEST_P(HistorySpreadSweep, MonotoneDetection) {
  Rng rng(17);
  const auto x = samples(2.0e6, 6e4, 100, rng);
  const auto y = samples(1.95e6, 6e4, 100, rng);
  const auto t_diff = history(GetParam(), 30, rng);
  const auto res = throughput_comparison(x, y, t_diff, rng);
  if (GetParam() >= 0.15) {
    EXPECT_TRUE(res.common_bottleneck) << "sigma=" << GetParam();
  }
  if (GetParam() <= 0.005) {
    EXPECT_FALSE(res.common_bottleneck) << "sigma=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, HistorySpreadSweep,
                         ::testing::Values(0.002, 0.005, 0.15, 0.3));

}  // namespace
}  // namespace wehey::core
