// The parallel trial-execution engine: thread-pool mechanics, and the
// determinism contract — run_trials must produce bit-identical results
// regardless of thread count.
#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "experiments/params.hpp"
#include "experiments/scenario.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/trials.hpp"

using namespace wehey;
using namespace wehey::experiments;

namespace {

// ---------------------------------------------------------- pool mechanics

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  parallel::ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndSingle) {
  parallel::ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, MaxThreadsOneRunsSerially) {
  parallel::ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  pool.parallel_for(
      64,
      [&](std::size_t) {
        if (std::this_thread::get_id() != caller) off_thread = true;
      },
      /*max_threads=*/1);
  EXPECT_FALSE(off_thread.load());
}

TEST(ThreadPool, PropagatesExceptions) {
  parallel::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("trial failed");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForFallsBackToSerial) {
  parallel::ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // Inner call re-enters the engine from a parallel region; it must run
    // inline instead of deadlocking on the shared pool.
    parallel::ThreadPool::global().parallel_for(
        16, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  const auto out = parallel::parallel_map(
      257, [](std::size_t i) { return i * i; }, 8);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

// ------------------------------------------------------------- determinism

/// Bit-exact equality for doubles (1.0/-0.0/NaN treated by representation,
/// as the determinism contract demands).
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

void expect_identical(const netsim::ReplayMeasurement& a,
                      const netsim::ReplayMeasurement& b) {
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.tx_times, b.tx_times);
  EXPECT_EQ(a.loss_times, b.loss_times);
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_EQ(a.deliveries[i].at, b.deliveries[i].at);
    EXPECT_EQ(a.deliveries[i].bytes, b.deliveries[i].bytes);
  }
  ASSERT_EQ(a.rtt_ms.size(), b.rtt_ms.size());
  for (std::size_t i = 0; i < a.rtt_ms.size(); ++i) {
    EXPECT_TRUE(same_bits(a.rtt_ms[i], b.rtt_ms[i])) << "rtt sample " << i;
  }
}

void expect_identical(const PhaseReport& a, const PhaseReport& b) {
  EXPECT_EQ(a.limiter_drops, b.limiter_drops);
  EXPECT_TRUE(same_bits(a.p1.retx_rate, b.p1.retx_rate));
  EXPECT_TRUE(same_bits(a.p1.avg_queuing_delay_ms, b.p1.avg_queuing_delay_ms));
  EXPECT_TRUE(same_bits(a.p1.avg_throughput_bps, b.p1.avg_throughput_bps));
  EXPECT_TRUE(same_bits(a.p2.retx_rate, b.p2.retx_rate));
  EXPECT_TRUE(same_bits(a.p2.avg_queuing_delay_ms, b.p2.avg_queuing_delay_ms));
  EXPECT_TRUE(same_bits(a.p2.avg_throughput_bps, b.p2.avg_throughput_bps));
  expect_identical(a.p1.meas, b.p1.meas);
  expect_identical(a.p2.meas, b.p2.meas);
}

std::vector<ScenarioConfig> small_grid() {
  std::vector<ScenarioConfig> configs;
  std::uint64_t seed = 1;
  for (const char* app : {"Netflix", "Zoom"}) {
    for (double factor : {1.5, 2.5}) {
      auto cfg = default_scenario(app, seed++);
      cfg.replay_duration = seconds(5);
      cfg.input_rate_factor = factor;
      configs.push_back(cfg);
    }
  }
  return configs;
}

TEST(RunTrials, BitIdenticalAcrossThreadCounts) {
  const auto configs = small_grid();
  const auto run = [&](unsigned threads) {
    return parallel::run_trials(
        configs,
        [](const ScenarioConfig& cfg) {
          return run_phase(cfg, Phase::SimOriginal);
        },
        threads);
  };
  const auto serial = run(1);
  const auto threaded = run(8);
  const auto threaded2 = run(2);
  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(threaded.size(), configs.size());
  ASSERT_EQ(threaded2.size(), configs.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    expect_identical(serial[i], threaded[i]);
    expect_identical(serial[i], threaded2[i]);
  }
}

TEST(RunTrials, FullExperimentDeterministicUnderNesting) {
  // run_simultaneous_experiment parallelizes its own phases; nested under
  // run_trials those inner calls take the serial path. Either way the
  // verdict and the drop counters must match the fully serial run.
  auto cfg = default_scenario("Zoom", 42);
  cfg.replay_duration = seconds(5);
  const std::vector<ScenarioConfig> configs(3, cfg);

  const auto serial =
      parallel::run_trials(configs, run_simultaneous_experiment, 1);
  const auto threaded =
      parallel::run_trials(configs, run_simultaneous_experiment, 8);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    EXPECT_EQ(serial[i].differentiation_confirmed,
              threaded[i].differentiation_confirmed);
    expect_identical(serial[i].original, threaded[i].original);
    expect_identical(serial[i].inverted, threaded[i].inverted);
  }
}

}  // namespace
