// The observability layer: deterministic metrics, the sim-time tracer,
// and the RunReport schema. The load-bearing property under test is the
// determinism contract — merged metrics, timelines and reports must be
// byte-identical regardless of how many threads executed the trials.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/localizer.hpp"
#include "experiments/params.hpp"
#include "experiments/scenario.hpp"
#include "faults/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/timeline.hpp"
#include "parallel/thread_pool.hpp"
#include "replay/session.hpp"

namespace wehey::obs {
namespace {

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  Counter& c = m.counter("events");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Find-or-create returns the same node.
  EXPECT_EQ(&m.counter("events"), &c);

  Gauge& g = m.gauge("depth");
  g.set(3.0);
  g.set(9.0);
  g.set(5.0);
  EXPECT_TRUE(g.seen());
  EXPECT_DOUBLE_EQ(g.last(), 5.0);
  EXPECT_DOUBLE_EQ(g.min(), 3.0);
  EXPECT_DOUBLE_EQ(g.max(), 9.0);

  Histogram& h = m.histogram("latency", 0.0, 10.0, 5);
  h.observe(-1.0);   // underflow
  h.observe(0.5);    // bin 0
  h.observe(9.99);   // bin 4
  h.observe(25.0);   // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
  ASSERT_EQ(h.bins().size(), 7u);  // under + 5 + over
  EXPECT_EQ(h.bins().front(), 1u);
  EXPECT_EQ(h.bins()[1], 1u);
  EXPECT_EQ(h.bins()[5], 1u);
  EXPECT_EQ(h.bins().back(), 1u);
  EXPECT_EQ(m.size(), 3u);
}

TEST(Metrics, MergeSumsCountersAndCombinesWatermarks) {
  MetricsRegistry a;
  a.counter("shared").inc(10);
  a.counter("only_a").inc(1);
  a.gauge("depth").set(4.0);
  a.histogram("lat", 0.0, 10.0, 2).observe(1.0);

  MetricsRegistry b;
  b.counter("shared").inc(5);
  b.counter("only_b").inc(2);
  b.gauge("depth").set(7.0);
  b.histogram("lat", 0.0, 10.0, 2).observe(9.0);

  a.merge(b);
  EXPECT_EQ(a.counter("shared").value(), 15u);
  EXPECT_EQ(a.counter("only_a").value(), 1u);
  EXPECT_EQ(a.counter("only_b").value(), 2u);
  EXPECT_DOUBLE_EQ(a.gauge("depth").min(), 4.0);
  EXPECT_DOUBLE_EQ(a.gauge("depth").max(), 7.0);
  EXPECT_DOUBLE_EQ(a.gauge("depth").last(), 7.0);  // adopts other's last
  const Histogram& h = a.histogram("lat", 0.0, 10.0, 2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bins()[1], 1u);  // 1.0 -> first bin
  EXPECT_EQ(h.bins()[2], 1u);  // 9.0 -> second bin
}

TEST(Metrics, JsonIsSortedAndStable) {
  MetricsRegistry m;
  m.counter("zebra").inc(3);
  m.counter("alpha").inc(7);
  m.gauge("g").set(2.5);
  const std::string json = m.to_json();
  // Map storage means sorted key order — "alpha" before "zebra".
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zebra\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  // Two snapshots of the same registry are byte-identical.
  EXPECT_EQ(json, m.to_json());
}

TEST(Metrics, JsonNumberAvoidsTrailingZeros) {
  EXPECT_EQ(json_number(17.0), "17");
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(2.5), "2.5");
}

TEST(Metrics, HistogramQuantileInterpolatesWithinBuckets) {
  MetricsRegistry m;
  Histogram& h = m.histogram("lat", 0.0, 100.0, 10);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 0.0);  // empty -> 0
  for (int i = 0; i < 100; ++i) h.observe(i + 0.5);
  // Uniform mass: quantiles land near q * range, within one bucket width.
  EXPECT_NEAR(histogram_quantile(h, 0.5), 50.0, 10.0);
  EXPECT_NEAR(histogram_quantile(h, 0.9), 90.0, 10.0);
  EXPECT_LE(histogram_quantile(h, 0.99), h.max());
  EXPECT_GE(histogram_quantile(h, 0.0), h.min());
  // Quantiles are monotone in q.
  EXPECT_LE(histogram_quantile(h, 0.5), histogram_quantile(h, 0.9));
  EXPECT_LE(histogram_quantile(h, 0.9), histogram_quantile(h, 0.99));

  // Under/overflow mass resolves to the recorded extrema.
  Histogram& tails = m.histogram("tails", 0.0, 1.0, 2);
  tails.observe(-5.0);
  tails.observe(7.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(tails, 0.25), -5.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(tails, 1.0), 7.0);
}

TEST(Timeline, AbsorbRemapsChildPids) {
  Timeline parent;
  parent.span("stage", "session", 0, kSecond);
  Timeline child;
  child.instant("retry", "session", kMillisecond);
  child.counter("depth", 2 * kMillisecond, 5.0);
  parent.absorb(std::move(child));
  ASSERT_EQ(parent.size(), 3u);
  EXPECT_EQ(parent.events()[0].pid, 0);
  // The child's events land on the next pid track.
  EXPECT_EQ(parent.events()[1].pid, 1);
  EXPECT_EQ(parent.events()[2].pid, 1);
  EXPECT_GE(parent.pid_count(), 2);
}

TEST(Timeline, ChromeJsonHasTraceEventsAndPhases) {
  Timeline t;
  t.span("replay", "session", 0, kSecond, 0, "\"attempt\": 1");
  t.instant("fault", "faults", kMillisecond);
  t.counter("sim.pending_events", 2 * kMillisecond, 17.0);
  t.name_track(0, "session");
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"attempt\": 1"), std::string::npos);
  // Durations are rendered in microseconds (Chrome's native unit).
  EXPECT_NE(json.find("\"dur\": 1000000"), std::string::npos);
  // Balanced object braces — cheap well-formedness check.
  long depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// Tentpole part 2: a bounded streaming sink must render byte-identically
// to the unbounded in-memory path, and clean its chunk files up.
TEST(Timeline, StreamingSinkMatchesUnboundedByteForByte) {
  const auto build = [](Timeline& t) {
    for (int i = 0; i < 37; ++i) {
      t.span("stage" + std::to_string(i % 5), "test",
             static_cast<Time>(i) * kMillisecond,
             static_cast<Time>(i + 1) * kMillisecond);
      if (i % 3 == 0) t.instant("mark", "test",
                                static_cast<Time>(i) * kMillisecond);
      if (i % 4 == 0) t.counter("depth", static_cast<Time>(i) * kMillisecond,
                                static_cast<double>(i));
    }
  };
  Timeline unbounded;
  build(unbounded);
  const std::string expected = unbounded.chrome_json();

  const std::string base = testing::TempDir() + "wehey_sink_test.json";
  const std::string chunk0 = TraceSink::chunk_path(base, 0);
  {
    Timeline spill;
    spill.configure_spill(4, base);
    build(spill);
    // The tiny buffer actually spilled, kept only a bounded tail in
    // memory, and still renders the identical trace.
    EXPECT_GT(spill.spill_chunks(), 0u);
    EXPECT_GT(spill.spilled_events(), 0u);
    EXPECT_LE(spill.events().size(), 4u);
    EXPECT_EQ(spill.size(), unbounded.size());
    EXPECT_EQ(spill.chrome_json(), expected);
    // Rendering is repeatable (chunks re-read, not consumed).
    EXPECT_EQ(spill.chrome_json(), expected);
    std::FILE* f = std::fopen(chunk0.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  // Destroying the sink removes its chunk files.
  EXPECT_EQ(std::fopen(chunk0.c_str(), "rb"), nullptr);
}

// A spilling parent still absorbs in-memory children deterministically.
TEST(Timeline, StreamingSinkAbsorbsChildren) {
  const std::string base = testing::TempDir() + "wehey_sink_absorb.json";
  const auto run = [&](bool spill) {
    Timeline parent;
    if (spill) parent.configure_spill(3, base);
    for (int c = 0; c < 4; ++c) {
      parent.span("parent", "test", 0, kSecond);
      Timeline child;
      child.span("child" + std::to_string(c), "test", 0, kMillisecond);
      child.instant("tick", "test", kMillisecond);
      parent.absorb(std::move(child));
    }
    return parent.chrome_json();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Timeline, JsonEscape) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
}

TEST(Recorder, ScopedBindingNestsAndRestores) {
  EXPECT_EQ(Recorder::current(), nullptr);
  Recorder outer(true, false);
  {
    ScopedRecorder bind(&outer);
    EXPECT_EQ(Recorder::current(), &outer);
    Recorder inner(true, true);
    {
      ScopedRecorder nested(&inner);
      EXPECT_EQ(Recorder::current(), &inner);
      ScopedRecorder quiesce(nullptr);
      EXPECT_EQ(Recorder::current(), nullptr);
    }
    EXPECT_EQ(Recorder::current(), &outer);
  }
  EXPECT_EQ(Recorder::current(), nullptr);
}

TEST(Recorder, CsvPathSibling) {
  EXPECT_EQ(RunObservation::csv_path("out/trace.json"), "out/trace.csv");
  EXPECT_EQ(RunObservation::csv_path("trace.bin"), "trace.bin.csv");
}

// The core determinism contract: the same instrumented parallel loop
// produces byte-identical merged metrics and timelines no matter how many
// threads executed it.
TEST(Recorder, ParallelMapMergesIdenticallyAcrossThreadCounts) {
  const auto run_with = [](unsigned threads) {
    Recorder rec(true, true);
    {
      ScopedRecorder bind(&rec);
      parallel::parallel_map(
          8,
          [](std::size_t i) {
            Recorder* r = Recorder::current();
            EXPECT_NE(r, nullptr);
            r->metrics().counter("trial.count").inc();
            r->metrics().counter("trial.work").inc(i + 1);
            r->metrics().gauge("trial.index").set(static_cast<double>(i));
            r->timeline().span("trial", "test", 0,
                               static_cast<Time>(i + 1) * kMillisecond);
            return static_cast<int>(i);
          },
          threads);
    }
    return std::pair<std::string, std::string>(rec.metrics().to_json(),
                                               rec.timeline().chrome_json());
  };
  const auto serial = run_with(1);
  const auto four = run_with(4);
  const auto many = run_with(16);
  EXPECT_EQ(serial.first, four.first);
  EXPECT_EQ(serial.first, many.first);
  EXPECT_EQ(serial.second, four.second);
  EXPECT_EQ(serial.second, many.second);
  EXPECT_EQ(serial.first.empty(), false);
  // The 8 trials show up as 8 absorbed pid tracks plus the parent's.
  EXPECT_NE(serial.second.find("trial 0"), std::string::npos);
  EXPECT_NE(serial.second.find("trial 7"), std::string::npos);
}

replay::SessionConfig session_config(std::uint64_t seed) {
  replay::SessionConfig cfg;
  cfg.scenario = experiments::default_scenario("Netflix", seed);
  cfg.scenario.replay_duration = seconds(30);
  cfg.t_diff_history = {0.06, -0.09, 0.12, -0.04, 0.08, -0.11,
                        0.05, -0.07, 0.10, -0.03, 0.09, -0.06};
  return cfg;
}

replay::SessionResult run_one_session(std::uint64_t seed) {
  auto cfg = session_config(seed);
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  return replay::run_session(cfg, db);
}

// Full-pipeline determinism: instrumented sessions fanned over the
// parallel engine yield bit-identical observability output across
// WEHEY_THREADS-style thread counts.
TEST(Obs, InstrumentedSessionsIdenticalAcrossThreadCounts) {
  const auto observe = [](unsigned threads) {
    Recorder rec(true, true);
    {
      ScopedRecorder bind(&rec);
      parallel::parallel_map(
          3, [](std::size_t i) { return run_one_session(2 + i).outcome; },
          threads);
    }
    return std::pair<std::string, std::string>(rec.metrics().to_json(2),
                                               rec.timeline().chrome_json());
  };
  const auto serial = observe(1);
  const auto pooled = observe(4);
  EXPECT_EQ(serial.first, pooled.first);
  EXPECT_EQ(serial.second, pooled.second);
  // The session pipeline actually recorded its stages and counters.
  EXPECT_NE(serial.first.find("session.count"), std::string::npos);
  EXPECT_NE(serial.second.find("simultaneous_replays"), std::string::npos);
  EXPECT_NE(serial.first.find("sim.events"), std::string::npos);
  EXPECT_NE(serial.first.find("net.common.delivered_packets"),
            std::string::npos);
}

// Re-running the same seed reproduces the tracer output byte for byte.
TEST(Obs, TracerStableAcrossReruns) {
  const auto trace_once = [] {
    Recorder rec(true, true);
    {
      ScopedRecorder bind(&rec);
      run_one_session(2);
    }
    return rec.timeline().chrome_json();
  };
  const std::string first = trace_once();
  EXPECT_EQ(first, trace_once());
  EXPECT_NE(first.find("wehe_test"), std::string::npos);
  EXPECT_NE(first.find("analysis"), std::string::npos);
}

TEST(Report, SessionReportIsDeterministicAndComplete) {
  const auto cfg = session_config(2);
  const auto a = run_one_session(2);
  const auto b = run_one_session(2);
  const auto ja = replay::make_run_report(cfg, a, "test_session")
                      .to_json(nullptr);
  const auto jb = replay::make_run_report(cfg, b, "test_session")
                      .to_json(nullptr);
  EXPECT_EQ(ja, jb);
  EXPECT_NE(ja.find("\"schema\": \"wehey.run_report.v5\""),
            std::string::npos);
  EXPECT_NE(ja.find("\"run\": \"test_session\""), std::string::npos);
  EXPECT_NE(ja.find("\"verdict\": \"localized within ISP\""),
            std::string::npos);
  EXPECT_NE(ja.find("\"stages\""), std::string::npos);
  EXPECT_NE(ja.find("wehe_test"), std::string::npos);
  EXPECT_NE(ja.find("\"pair_fallbacks\""), std::string::npos);
  EXPECT_NE(ja.find("\"injection\""), std::string::npos);
  EXPECT_NE(ja.find("\"total\": 0"), std::string::npos);
  // v4: the verdict's provenance rode along — both confirmation rows, an
  // evaluated flag, and a run-level margin.
  EXPECT_NE(ja.find("\"decision\""), std::string::npos);
  EXPECT_NE(ja.find("\"evaluated\": true"), std::string::npos);
  EXPECT_NE(ja.find("\"confirmation.p1\""), std::string::npos);
  EXPECT_NE(ja.find("\"confirmation.p2\""), std::string::npos);
  EXPECT_NE(ja.find("\"margin\""), std::string::npos);
  // v5: the ground-truth ledger and its audit rode along. The default
  // scenario throttles on the common link, so a localized session is a
  // true positive with no mismatch reason.
  EXPECT_NE(ja.find("\"ground_truth\""), std::string::npos);
  EXPECT_NE(ja.find("\"mechanism\": \"collective-tbf\""),
            std::string::npos);
  EXPECT_NE(ja.find("\"placement\": \"common-link\""), std::string::npos);
  EXPECT_NE(ja.find("\"within_target_area\": true"), std::string::npos);
  EXPECT_NE(ja.find("\"audit\""), std::string::npos);
  EXPECT_NE(ja.find("\"classification\": \"tp\""), std::string::npos);
  EXPECT_NE(ja.find("\"mismatch_reason\": \"\""), std::string::npos);
}

// v5 classification table: expected (from truth) x observed x budget,
// with the mismatch reason graded against the decision margin.
TEST(Report, ClassifyAuditCoversTheConfusionMatrix) {
  GroundTruthSection truth;  // not present -> audit absent
  DecisionSection decision;
  EXPECT_FALSE(
      classify_audit(truth, true, false, false, decision).present);

  truth.present = true;
  truth.differentiated = true;
  truth.within_target_area = true;
  decision.evaluated = true;
  decision.has_margin = true;
  decision.margin = 0.8;

  const auto tp = classify_audit(truth, true, false, false, decision);
  EXPECT_TRUE(tp.present);
  EXPECT_TRUE(tp.expected_positive);
  EXPECT_EQ(tp.classification, "tp");
  EXPECT_EQ(tp.mismatch_reason, "");

  const auto fn = classify_audit(truth, false, false, false, decision);
  EXPECT_EQ(fn.classification, "fn");
  EXPECT_EQ(fn.mismatch_reason, "clear-miss");

  // A localized-but-wrong-mechanism run is a miss with its own reason.
  const auto mech = classify_audit(truth, false, true, false, decision);
  EXPECT_EQ(mech.classification, "fn");
  EXPECT_EQ(mech.mismatch_reason, "mechanism-mismatch");

  // Budget-exhausted runs never reached a verdict: skipped, not wrong.
  const auto skipped = classify_audit(truth, false, false, true, decision);
  EXPECT_EQ(skipped.classification, "skipped");
  EXPECT_EQ(skipped.mismatch_reason, "budget-exhausted");

  // Sanity-check runs expect a negative even though the network is
  // configured to differentiate.
  truth.sanity_check = true;
  const auto fp = classify_audit(truth, true, false, false, decision);
  EXPECT_FALSE(fp.expected_positive);
  EXPECT_EQ(fp.classification, "fp");
  EXPECT_EQ(fp.mismatch_reason, "clear-miss");
  const auto tn = classify_audit(truth, false, false, false, decision);
  EXPECT_EQ(tn.classification, "tn");
  EXPECT_EQ(tn.mismatch_reason, "");
  truth.sanity_check = false;

  // Outside the target area (the NonCommonLinks scenario) a positive is
  // a false positive by construction.
  truth.within_target_area = false;
  EXPECT_EQ(classify_audit(truth, true, false, false, decision)
                .classification,
            "fp");
  truth.within_target_area = true;

  // Miss grading: no decision at all, no margin, sub-margin (knife
  // edge), clear.
  DecisionSection none;
  EXPECT_EQ(classify_audit(truth, false, false, false, none)
                .mismatch_reason,
            "not-evaluated");
  none.evaluated = true;
  EXPECT_EQ(classify_audit(truth, false, false, false, none)
                .mismatch_reason,
            "no-margin");
  none.has_margin = true;
  none.margin = -0.01;  // |margin| under the default 0.05 threshold
  EXPECT_EQ(classify_audit(truth, false, false, false, none)
                .mismatch_reason,
            "sub-margin-miss");
}

TEST(Report, V2PercentilesDerivedFromHistograms) {
  MetricsRegistry m;
  Histogram& h = m.histogram("lat_ms", 0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.observe(i * 0.1);
  m.histogram("never_observed", 0.0, 1.0, 4);  // empty -> no percentiles
  RunReport rep;
  rep.run = "r";
  const std::string json = rep.to_json(&m);
  EXPECT_NE(json.find("\"percentiles\""), std::string::npos);
  const auto section = json.find("\"percentiles\"");
  const auto entry = json.find("\"lat_ms\"", section);
  EXPECT_NE(entry, std::string::npos);
  EXPECT_NE(json.find("\"p50\"", entry), std::string::npos);
  EXPECT_NE(json.find("\"p90\"", entry), std::string::npos);
  EXPECT_NE(json.find("\"p99\"", entry), std::string::npos);
  // Empty histograms are skipped in the percentile section (they still
  // appear under "metrics").
  const auto metrics_at = json.find("\"metrics\"");
  EXPECT_GT(json.find("\"never_observed\""), metrics_at);
  // Without metrics there is still a (possibly empty) section, so the
  // schema's key set is stable.
  EXPECT_NE(rep.to_json(nullptr).find("\"percentiles\""),
            std::string::npos);
}

TEST(Report, StageWallTimesOmittedByDefault) {
  RunReport rep;
  rep.run = "r";
  rep.add_stage("s", 0, kSecond);           // wall_ms defaults to -1
  rep.add_stage("t", kSecond, 2 * kSecond, 3.5);
  const std::string json = rep.to_json(nullptr);
  EXPECT_EQ(json.find("\"wall_ms\""), json.rfind("\"wall_ms\""));
  EXPECT_NE(json.find("\"wall_ms\": 3.5"), std::string::npos);
}

// Tentpole part 1: the simulator hot paths (queues, links, TCP) populate
// their histograms whenever a recorder is bound.
TEST(Obs, HotPathHistogramsPopulated) {
  Recorder rec(true, false);
  {
    ScopedRecorder bind(&rec);
    run_one_session(2);
  }
  const auto& hists = rec.metrics().histograms();
  for (const char* name :
       {"queue.fifo.residency_ms", "tcp.rtt_ms", "tcp.srtt_ms",
        "tcp.flow_srtt_ms", "tcp.flow_retx", "link.common.utilization"}) {
    const auto it = hists.find(name);
    ASSERT_NE(it, hists.end()) << name;
    EXPECT_GT(it->second.count(), 0u) << name;
  }
  EXPECT_GT(rec.metrics().counter("net.common.busy_us").value(), 0u);
  EXPECT_GT(rec.metrics().counter("tcp.flows").value(), 0u);
}

// The same histograms merge bit-identically across thread counts, with
// fault injection on (the hardest case: retries, damaged uploads and
// traceroutes all fold into the same registries).
TEST(Obs, HotPathHistogramsIdenticalAcrossThreadCountsWithFaults) {
  const auto observe = [](unsigned threads) {
    Recorder rec(true, false);
    {
      ScopedRecorder bind(&rec);
      parallel::parallel_map(
          4,
          [](std::size_t i) {
            auto cfg = session_config(2 + i);
            cfg.fault_plan =
                faults::shipped_plan(i % 2 == 0 ? "kitchen-sink"
                                                : "traceroute-damage",
                                     5 + i);
            topology::TopologyDatabase db;
            replay::seed_topology_database(cfg.scenario, db);
            return replay::run_session(cfg, db).outcome;
          },
          threads);
    }
    return rec.metrics().to_json(2);
  };
  const auto serial = observe(1);
  const auto pooled = observe(4);
  EXPECT_EQ(serial, pooled);
  EXPECT_NE(serial.find("queue.fifo.residency_ms"), std::string::npos);
  EXPECT_NE(serial.find("link.common.utilization"), std::string::npos);
  EXPECT_NE(serial.find("tcp.srtt_ms"), std::string::npos);
}

// run_full_experiment_reported: a populated v2 report regardless of the
// environment (no recorder bound here), byte-stable across reruns.
TEST(Obs, FullExperimentReportIsPopulatedAndDeterministic) {
  experiments::ScenarioConfig cfg =
      experiments::default_scenario("Netflix", 3);
  cfg.replay_duration = seconds(30);
  const std::vector<double> t_diff = {0.06, -0.09, 0.12, -0.04,
                                      0.08, -0.11, 0.05, -0.07,
                                      0.10, -0.03, 0.09, -0.06};
  const auto run_json = [&] {
    const auto res =
        experiments::run_full_experiment_reported(cfg, t_diff, "test_full");
    EXPECT_FALSE(res.report.verdict.empty());
    return res.report.to_json(&res.metrics);
  };
  const std::string first = run_json();
  EXPECT_NE(first.find("\"schema\": \"wehey.run_report.v5\""),
            std::string::npos);
  EXPECT_NE(first.find("\"run\": \"test_full\""), std::string::npos);
  EXPECT_NE(first.find("sim_original"), std::string::npos);
  EXPECT_NE(first.find("single_inverted"), std::string::npos);
  EXPECT_NE(first.find("queue.fifo.residency_ms"), std::string::npos);
  EXPECT_NE(first.find("\"percentiles\""), std::string::npos);
  EXPECT_EQ(first, run_json());
}

// Satellite 3: with >= 2 suitable pairs per prefix, a pair that keeps
// aborting is replaced mid-session (§3.4 fallback) and the fallback is
// visible in the result, the metrics, and the report.
TEST(Obs, PairFallbackFiresAndIsCounted) {
  auto cfg = session_config(2);
  faults::FaultSpec abort_p2;
  abort_p2.kind = faults::FaultKind::ReplayAbort;
  abort_p2.path = 2;
  abort_p2.probability = 1.0;
  abort_p2.count = 3;  // exactly exhausts the first pair's replay attempts
  cfg.fault_plan.name = "abort_pair_one";
  cfg.fault_plan.seed = 7;
  cfg.fault_plan.faults.push_back(abort_p2);

  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);

  Recorder rec(true, false);
  replay::SessionResult result;
  {
    ScopedRecorder bind(&rec);
    result = replay::run_session(cfg, db);
  }
  EXPECT_GE(result.pair_fallbacks, 1);
  EXPECT_EQ(result.injection.replays_aborted, 3);
  // The session survived on the standby pair.
  EXPECT_EQ(result.outcome, replay::SessionOutcome::LocalizedWithinIsp);
  EXPECT_EQ(result.pair.server2, "s3");
  EXPECT_GE(rec.metrics().counter("session.pair_fallbacks").value(), 1u);
  EXPECT_GE(rec.metrics().counter("faults.replays_aborted").value(), 3u);

  const auto report =
      replay::make_run_report(cfg, result, "fallback_session");
  const std::string json = report.to_json(&rec.metrics());
  EXPECT_NE(json.find("\"fault_plan\": \"abort_pair_one\""),
            std::string::npos);
  EXPECT_NE(json.find("\"replays_aborted\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

// --- v4 decision provenance ----------------------------------------------

/// The "decision" object of a serialized run report (everything between
/// its key and the matching closing brace), for section-level
/// byte-equality assertions.
std::string decision_section_of(const std::string& json) {
  const auto at = json.find("\"decision\": {");
  if (at == std::string::npos) return {};
  long depth = 0;
  for (std::size_t i = json.find('{', at); i < json.size(); ++i) {
    if (json[i] == '{') ++depth;
    if (json[i] == '}' && --depth == 0) return json.substr(at, i - at + 1);
  }
  return {};
}

// The decision section is a pure function of the run's seeds: sessions
// fanned over 1 vs 8 threads — under the kitchen-sink and event-storm
// chaos plans, the hardest cases — serialize byte-identical sections.
TEST(Decision, SectionByteIdenticalAcrossThreadCountsAndChaosPlans) {
  ::unsetenv("WEHEY_TRIAL_MAX_EVENTS");
  ::unsetenv("WEHEY_TRIAL_MAX_SIM_MS");
  const auto sections_with = [](unsigned threads) {
    std::vector<std::string> out(4);
    parallel::parallel_map(
        4,
        [&out](std::size_t i) {
          auto cfg = session_config(2 + i);
          cfg.fault_plan = faults::shipped_plan(
              i % 2 == 0 ? "kitchen-sink" : "event-storm", 5 + i);
          topology::TopologyDatabase db;
          replay::seed_topology_database(cfg.scenario, db);
          const auto result = replay::run_session(cfg, db);
          out[i] = decision_section_of(
              replay::make_run_report(cfg, result, "d" + std::to_string(i))
                  .to_json(nullptr));
          return 0;
        },
        threads);
    return out;
  };
  const auto serial = sections_with(1);
  const auto pooled = sections_with(8);
  EXPECT_EQ(serial, pooled);
  for (const auto& section : serial) {
    EXPECT_FALSE(section.empty());
    EXPECT_NE(section.find("\"evaluated\""), std::string::npos);
    EXPECT_NE(section.find("\"detectors\""), std::string::npos);
    EXPECT_NE(section.find("\"degradations\""), std::string::npos);
  }
}

// A budget-exhausted session never reached localize(); its report must
// still carry the full decision object — evaluated=false with empty
// arrays and no margin — not a stump.
TEST(Decision, BudgetExhaustedRunCarriesEmptyButValidBlock) {
  ::unsetenv("WEHEY_TRIAL_MAX_EVENTS");
  ::unsetenv("WEHEY_TRIAL_MAX_SIM_MS");
  auto cfg = session_config(2);
  cfg.fault_plan = faults::shipped_plan("event-storm", 1);
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  const auto result = replay::run_session(cfg, db);
  ASSERT_EQ(result.outcome, replay::SessionOutcome::BudgetExhausted);
  const std::string json =
      replay::make_run_report(cfg, result, "storm").to_json(nullptr);
  const std::string section = decision_section_of(json);
  ASSERT_FALSE(section.empty());
  EXPECT_NE(section.find("\"evaluated\": false"), std::string::npos);
  EXPECT_NE(section.find("\"detectors\": []"), std::string::npos);
  EXPECT_NE(section.find("\"degradations\": []"), std::string::npos);
  EXPECT_EQ(section.find("\"margin\""), std::string::npos);
  EXPECT_EQ(section.find("\"aggregation\""), std::string::npos);
}

// A completed localization writes coherent rows: statistic vs threshold
// with the signed-margin convention (positive = supports the outcome).
TEST(Decision, CompletedSessionTraceIsCoherent) {
  const auto result = run_one_session(2);
  const core::DecisionTrace& trace = result.localization.trace;
  ASSERT_TRUE(trace.evaluated);
  ASSERT_GE(trace.detectors.size(), 2u);  // both confirmation rows at least
  EXPECT_EQ(trace.detectors[0].detector, "confirmation.p1");
  EXPECT_EQ(trace.detectors[1].detector, "confirmation.p2");
  for (const auto& e : trace.detectors) {
    // p-values compared against p-thresholds: both sides in [0, 1].
    EXPECT_GE(e.statistic, 0.0) << e.detector;
    EXPECT_LE(e.statistic, 1.0) << e.detector;
    EXPECT_GT(e.threshold, 0.0) << e.detector;
    EXPECT_LE(std::abs(e.margin), 1.0) << e.detector;
    // The margin is negative only when a secondary gate overrode the
    // primary comparison; then the statistic sits on the outcome's far
    // side.
    if (e.margin < 0.0 && e.outcome) {
      EXPECT_GE(e.statistic, e.threshold) << e.detector;
    }
  }
  // This seed localizes (asserted elsewhere), so a verdict margin exists
  // and is a normalized distance.
  ASSERT_TRUE(trace.has_verdict_margin);
  EXPECT_GE(trace.verdict_margin, 0.0);
  EXPECT_LE(trace.verdict_margin, 1.0);
}

}  // namespace
}  // namespace wehey::obs
