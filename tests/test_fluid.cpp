// Hybrid fluid/packet background traffic (netsim/fluid.hpp and the
// WEHEY_BG_MODE plumbing): offered-rate equivalence of the fluid profile,
// event reduction against the packet backend, bit-identical fluid sweeps
// across thread counts, and verdict parity with packet mode on a Table-1
// mini-sweep.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "experiments/wild.hpp"
#include "netsim/fluid.hpp"
#include "obs/recorder.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/background.hpp"

namespace wehey {
namespace {

using experiments::Phase;
using experiments::PhaseReport;
using experiments::WildConfig;

// ------------------------------------------------------------ profile

TEST(FluidProfile, ConservesWorkloadBytesExactly) {
  trace::BackgroundConfig bg;
  bg.target_rate = mbps(4.0);
  bg.duration = seconds(48);
  bg.flows_per_second = 5.0;
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    Rng rng(seed);
    auto flows = trace::generate_background(bg, rng);
    trace::mark_differentiated(flows, 0.5, rng);
    const auto profile = trace::fluid_profile(flows, bg);
    EXPECT_EQ(profile.total_bytes(), trace::total_bytes(flows))
        << "seed " << seed;
    EXPECT_FALSE(profile.empty());
  }
}

TEST(FluidProfile, LongRunRateMatchesTarget) {
  // The workload generator is scaled so the expected aggregate offered
  // rate is the target; the fluid profile must preserve that long-run
  // rate. Average over seeds to tame the heavy-tailed flow sizes.
  trace::BackgroundConfig bg;
  bg.target_rate = mbps(4.0);
  bg.duration = seconds(60);
  bg.flows_per_second = 8.0;
  double rate_sum = 0.0;
  const int kSeeds = 10;
  for (int s = 0; s < kSeeds; ++s) {
    Rng rng(1000 + 17 * static_cast<std::uint64_t>(s));
    const auto flows = trace::generate_background(bg, rng);
    const auto profile = trace::fluid_profile(flows, bg);
    rate_sum += static_cast<double>(profile.total_bytes()) * 8.0 /
                to_seconds(bg.duration);
  }
  const double mean_rate = rate_sum / kSeeds;
  EXPECT_GT(mean_rate, 0.5 * bg.target_rate);
  EXPECT_LT(mean_rate, 1.8 * bg.target_rate);
}

TEST(FluidProfile, SplitsClassesByDifferentiationMark) {
  trace::BackgroundConfig bg;
  bg.target_rate = mbps(2.0);
  bg.duration = seconds(20);
  Rng rng(3);
  auto flows = trace::generate_background(bg, rng);
  trace::mark_differentiated(flows, 1.0, rng);  // everything differentiated
  const auto all_diff = trace::fluid_profile(flows, bg);
  double dflt_bits = 0.0;
  for (const Rate r : all_diff.dflt) dflt_bits += r;
  EXPECT_DOUBLE_EQ(dflt_bits, 0.0);
  double diff_bits = 0.0;
  for (const Rate r : all_diff.diff) diff_bits += r;
  EXPECT_GT(diff_bits, 0.0);
}

// ------------------------------------------------------------ env knob

TEST(BackgroundMode, EnvParsing) {
  ::unsetenv("WEHEY_BG_MODE");
  EXPECT_EQ(trace::background_mode_from_env(),
            trace::BackgroundMode::kPacket);
  ::setenv("WEHEY_BG_MODE", "fluid", 1);
  EXPECT_EQ(trace::background_mode_from_env(), trace::BackgroundMode::kFluid);
  EXPECT_EQ(trace::resolve_background_mode(trace::BackgroundMode::kEnv),
            trace::BackgroundMode::kFluid);
  // Explicit modes ignore the environment.
  EXPECT_EQ(trace::resolve_background_mode(trace::BackgroundMode::kPacket),
            trace::BackgroundMode::kPacket);
  ::setenv("WEHEY_BG_MODE", "packet", 1);
  EXPECT_EQ(trace::background_mode_from_env(),
            trace::BackgroundMode::kPacket);
  ::setenv("WEHEY_BG_MODE", "nonsense", 1);
  EXPECT_EQ(trace::background_mode_from_env(),
            trace::BackgroundMode::kPacket);
  ::unsetenv("WEHEY_BG_MODE");
}

// ------------------------------------------------------ event reduction

/// Simulator events dispatched by one wild phase under the given
/// background mode (WEHEY_BG_MODE must be unset; the mode is explicit).
std::uint64_t phase_events(trace::BackgroundMode mode, Rate bg_rate) {
  WildConfig cfg;
  cfg.isp = experiments::default_isp_models()[0];
  cfg.replay_duration = seconds(10);
  cfg.bg_rate_per_path = bg_rate;
  cfg.bg_mode = mode;
  obs::Recorder rec(/*metrics_on=*/true, /*trace_on=*/false);
  {
    obs::ScopedRecorder bind(&rec);
    (void)experiments::run_wild_phase(cfg, Phase::SimOriginal);
  }
  return rec.metrics().counter("sim.events").value();
}

TEST(FluidWild, BackgroundEventsShrinkByAnOrderOfMagnitude) {
  // The replay itself dominates a wild phase, so compare the *background-
  // attributable* events: phase(bg) - phase(almost no bg), per mode.
  const Rate bg = mbps(2.0);
  const Rate none = kbps(1);  // generate_background needs a positive rate
  const std::uint64_t packet = phase_events(trace::BackgroundMode::kPacket, bg);
  const std::uint64_t packet0 =
      phase_events(trace::BackgroundMode::kPacket, none);
  const std::uint64_t fluid = phase_events(trace::BackgroundMode::kFluid, bg);
  const std::uint64_t fluid0 =
      phase_events(trace::BackgroundMode::kFluid, none);
  ASSERT_GT(packet, packet0);
  const double packet_bg = static_cast<double>(packet - packet0);
  // Fluid background cost is bounded by its step events (two sources); the
  // baseline difference can be slightly negative through replay coupling,
  // so clamp at the step count.
  const double fluid_bg = std::max(
      static_cast<double>(fluid) - static_cast<double>(fluid0),
      static_cast<double>(2 * (seconds(13) / (100 * kMillisecond))));
  EXPECT_GE(packet_bg / fluid_bg, 10.0)
      << "packet bg events " << packet_bg << " fluid bg events " << fluid_bg;
}

TEST(FluidWild, FluidCountersAppearOnlyInFluidMode) {
  WildConfig cfg;
  cfg.isp = experiments::default_isp_models()[0];
  cfg.replay_duration = seconds(5);
  cfg.bg_mode = trace::BackgroundMode::kFluid;
  obs::Recorder rec(true, false);
  {
    obs::ScopedRecorder bind(&rec);
    (void)experiments::run_wild_phase(cfg, Phase::SimOriginal);
  }
  const auto& counters = rec.metrics().counters();
  ASSERT_TRUE(counters.count("fluid.sources"));
  EXPECT_EQ(counters.at("fluid.sources").value(), 2u);
  ASSERT_TRUE(counters.count("fluid.steps"));
  EXPECT_GT(counters.at("fluid.steps").value(), 0u);
  EXPECT_GT(counters.at("fluid.offered_bytes").value(), 0u);

  cfg.bg_mode = trace::BackgroundMode::kPacket;
  obs::Recorder prec(true, false);
  {
    obs::ScopedRecorder bind(&prec);
    (void)experiments::run_wild_phase(cfg, Phase::SimOriginal);
  }
  EXPECT_EQ(prec.metrics().counters().count("fluid.sources"), 0u);
}

// -------------------------------------------------- thread determinism

void expect_identical(const netsim::ReplayMeasurement& a,
                      const netsim::ReplayMeasurement& b) {
  ASSERT_EQ(a.tx_times.size(), b.tx_times.size());
  EXPECT_TRUE(a.tx_times == b.tx_times);
  ASSERT_EQ(a.loss_times.size(), b.loss_times.size());
  EXPECT_TRUE(a.loss_times == b.loss_times);
  ASSERT_EQ(a.rtt_ms.size(), b.rtt_ms.size());
  for (std::size_t i = 0; i < a.rtt_ms.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a.rtt_ms[i], &b.rtt_ms[i], sizeof(double)), 0)
        << "rtt sample " << i;
  }
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_EQ(a.deliveries[i].at, b.deliveries[i].at);
    EXPECT_EQ(a.deliveries[i].bytes, b.deliveries[i].bytes);
  }
}

TEST(FluidWild, BitIdenticalAcrossThreadCounts) {
  std::vector<WildConfig> configs;
  const auto isps = experiments::default_isp_models();
  for (std::size_t i = 0; i < 3; ++i) {
    WildConfig cfg;
    cfg.isp = isps[i];
    cfg.replay_duration = seconds(5);
    cfg.seed = 11 + i;
    cfg.bg_mode = trace::BackgroundMode::kFluid;
    configs.push_back(cfg);
  }
  const auto run = [&](unsigned threads) {
    return parallel::parallel_map(
        configs.size(),
        [&](std::size_t i) {
          return experiments::run_wild_phase(configs[i], Phase::SimOriginal);
        },
        threads);
  };
  const auto serial = run(1);
  const auto threaded = run(8);
  ASSERT_EQ(serial.size(), configs.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    expect_identical(serial[i].p1.meas, threaded[i].p1.meas);
    expect_identical(serial[i].p2.meas, threaded[i].p2.meas);
    EXPECT_EQ(serial[i].limiter_drops, threaded[i].limiter_drops);
  }
}

// ---------------------------------------------------- verdict parity

TEST(FluidWild, VerdictParityOnTable1MiniSweep) {
  // Three Table-1 cells, each a full WeHeY wild test: the fluid carrier
  // must not change the localization verdict (the client's light 300 kbps
  // background is far from saturating any wild link).
  const auto isps = experiments::default_isp_models();
  const std::size_t kCells = 3;
  std::vector<std::string> packet_verdicts, fluid_verdicts;
  for (std::size_t i = 0; i < kCells; ++i) {
    WildConfig base;
    base.isp = isps[i];
    base.seed = 1;
    for (const auto mode :
         {trace::BackgroundMode::kPacket, trace::BackgroundMode::kFluid}) {
      WildConfig cfg = base;
      cfg.bg_mode = mode;
      const auto t_diff = experiments::build_wild_t_diff(cfg, 10);
      WildConfig test = cfg;
      test.seed = 1000 + i * 17;
      const auto outcome = experiments::run_wild_test(test, t_diff);
      (mode == trace::BackgroundMode::kPacket ? packet_verdicts
                                              : fluid_verdicts)
          .push_back(core::to_string(outcome.localization.verdict));
    }
  }
  EXPECT_EQ(packet_verdicts, fluid_verdicts);
}

}  // namespace
}  // namespace wehey
