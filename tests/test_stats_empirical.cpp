#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/empirical.hpp"
#include "stats/resample.hpp"

namespace wehey::stats {
namespace {

TEST(Empirical, CdfStepFunction) {
  EmpiricalDistribution d({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(99.0), 1.0);
}

TEST(Empirical, QuantileMatchesSortedSample) {
  EmpiricalDistribution d({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 5.0);
}

TEST(Empirical, SampleDrawsFromSupport) {
  EmpiricalDistribution d({10.0, 20.0, 30.0});
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = d.sample(rng);
    EXPECT_TRUE(v == 10.0 || v == 20.0 || v == 30.0);
  }
}

TEST(Histogram, CountsAndDensity) {
  const std::vector<double> xs{0.5, 1.5, 1.6, 2.5};
  const auto h = histogram(xs, 3, 0.0, 3.0);
  EXPECT_EQ(h.counts, (std::vector<double>{1, 2, 1}));
  // Density integrates to 1: sum(density * width) == 1.
  double integral = 0;
  for (double dens : h.densities) integral += dens * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, ValueAtUpperEdgeIncluded) {
  const std::vector<double> xs{3.0};
  const auto h = histogram(xs, 3, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(h.counts.back(), 1.0);
}

TEST(Histogram, DegenerateRange) {
  const std::vector<double> xs{2.0, 2.0};
  const auto h = histogram(xs, 4);
  double total = std::accumulate(h.counts.begin(), h.counts.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 2.0);
}

TEST(Kde, IntegratesToOne) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.normal(0, 1));
  const auto curve = kde(xs, 256);
  ASSERT_EQ(curve.xs.size(), 256u);
  double integral = 0;
  for (std::size_t i = 1; i < curve.xs.size(); ++i) {
    integral += 0.5 * (curve.densities[i] + curve.densities[i - 1]) *
                (curve.xs[i] - curve.xs[i - 1]);
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde, PeaksNearMode) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(5.0, 0.5));
  const auto curve = kde(xs, 128);
  const auto it =
      std::max_element(curve.densities.begin(), curve.densities.end());
  const double mode = curve.xs[static_cast<std::size_t>(
      it - curve.densities.begin())];
  EXPECT_NEAR(mode, 5.0, 0.3);
}

TEST(Resample, RandomHalfSizeAndMembership) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7};
  Rng rng(13);
  const auto half = random_half(xs, rng);
  EXPECT_EQ(half.size(), 3u);
  for (double v : half) {
    EXPECT_TRUE(std::find(xs.begin(), xs.end(), v) != xs.end());
  }
}

TEST(Resample, RelativeMeanDifference) {
  const std::vector<double> a{10, 10};
  const std::vector<double> b{5, 5};
  EXPECT_DOUBLE_EQ(relative_mean_difference(a, b), 0.5);
  EXPECT_DOUBLE_EQ(relative_mean_difference(b, a), -0.5);
  const std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(relative_mean_difference(zeros, zeros), 0.0);
}

TEST(Resample, HalfSampleDiffCentersOnTrueDiff) {
  Rng rng(17);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(rng.normal(10.0, 0.5));
    ys.push_back(rng.normal(8.0, 0.5));
  }
  const auto diffs = half_sample_mean_difference(xs, ys, 500, rng);
  EXPECT_EQ(diffs.size(), 500u);
  // True relative difference is (10-8)/10 = 0.2.
  EXPECT_NEAR(mean(diffs), 0.2, 0.02);
}

TEST(Resample, JackknifeOfMeanMatchesClosedForm) {
  // Leave-one-out means of {1..5}: removing x_i gives (15 - x_i)/4.
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto reps =
      jackknife(xs, [](std::span<const double> s) { return mean(s); });
  ASSERT_EQ(reps.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(reps[i], (15.0 - xs[i]) / 4.0);
  }
  // Jackknife SE of the mean equals the classic s/sqrt(n).
  const double se =
      jackknife_stderr(xs, [](std::span<const double> s) { return mean(s); });
  EXPECT_NEAR(se, stddev(xs) / std::sqrt(5.0), 1e-12);
}

TEST(Resample, WilsonIntervalProperties) {
  const auto ci = wilson_interval(8, 10);
  EXPECT_GT(ci.low, 0.4);
  EXPECT_LT(ci.high, 1.0);
  EXPECT_LT(ci.low, 0.8);
  EXPECT_GT(ci.high, 0.8);
  // Degenerate cases stay in [0, 1].
  const auto zero = wilson_interval(0, 10);
  EXPECT_DOUBLE_EQ(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  const auto all = wilson_interval(10, 10);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
  EXPECT_LT(all.low, 1.0);
  const auto none = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(none.low, 0.0);
  EXPECT_DOUBLE_EQ(none.high, 1.0);
}

TEST(Resample, WilsonNarrowsWithTrials) {
  const auto small = wilson_interval(5, 10);
  const auto big = wilson_interval(500, 1000);
  EXPECT_LT(big.high - big.low, small.high - small.low);
}

TEST(Resample, BootstrapOfMean) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.normal(3.0, 1.0));
  const auto boot = bootstrap(
      xs, 300, [](std::span<const double> s) { return mean(s); }, rng);
  EXPECT_EQ(boot.size(), 300u);
  EXPECT_NEAR(mean(boot), mean(xs), 0.05);
  // Bootstrap spread ~ sigma/sqrt(n) = 0.1.
  EXPECT_NEAR(stddev(boot), 0.1, 0.05);
}

}  // namespace
}  // namespace wehey::stats
