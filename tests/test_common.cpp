#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace wehey {
namespace {

TEST(Time, ConversionRoundTrips) {
  EXPECT_EQ(seconds(1.0), kSecond);
  EXPECT_EQ(milliseconds(1.0), kMillisecond);
  EXPECT_EQ(microseconds(1.0), kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(35.0)), 35.0);
}

TEST(Time, FormatPicksUnit) {
  EXPECT_EQ(format_time(seconds(1.5)), "1.500000s");
  EXPECT_EQ(format_time(milliseconds(2.25)), "2.250ms");
  EXPECT_EQ(format_time(microseconds(12.0)), "12.000us");
}

TEST(Units, TransmissionTime) {
  // 1500 bytes at 12 Mbps = 1 ms.
  EXPECT_EQ(transmission_time(1500, mbps(12)), kMillisecond);
  // 1 Gbps moves 125 MB per second.
  EXPECT_DOUBLE_EQ(bytes_in(kGbps, kSecond), 125e6);
}

TEST(Units, RateOf) {
  EXPECT_DOUBLE_EQ(rate_of(1'250'000, kSecond), mbps(10));
  EXPECT_DOUBLE_EQ(rate_of(100, 0), 0.0);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, ss = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(100.0, 1.5), 100.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  // Child and parent produce different streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, WorksWithStdShuffleConcept) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(29);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace wehey
