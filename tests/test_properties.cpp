// Cross-cutting property tests: determinism, conservation laws, and
// invariants that must hold across parameter ranges.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/loss_series.hpp"
#include "core/tomography.hpp"
#include "experiments/params.hpp"
#include "experiments/scenario.hpp"
#include "netsim/link.hpp"
#include "netsim/queue.hpp"
#include "netsim/simulator.hpp"
#include "trace/apps.hpp"

namespace wehey {
namespace {

// --- Determinism: the whole stack is reproducible from the seed. ---

TEST(Determinism, IdenticalPhasesFromIdenticalSeeds) {
  auto cfg = experiments::default_scenario("Zoom", 404);
  cfg.replay_duration = seconds(10);
  const auto a = experiments::run_phase(cfg, experiments::Phase::SimOriginal);
  const auto b = experiments::run_phase(cfg, experiments::Phase::SimOriginal);
  EXPECT_EQ(a.p1.meas.tx_times, b.p1.meas.tx_times);
  EXPECT_EQ(a.p1.meas.loss_times, b.p1.meas.loss_times);
  EXPECT_EQ(a.p2.meas.loss_times, b.p2.meas.loss_times);
  EXPECT_DOUBLE_EQ(a.p1.avg_throughput_bps, b.p1.avg_throughput_bps);
  EXPECT_EQ(a.limiter_drops, b.limiter_drops);
}

TEST(Determinism, DifferentSeedsDiffer) {
  auto cfg1 = experiments::default_scenario("Zoom", 405);
  auto cfg2 = experiments::default_scenario("Zoom", 406);
  cfg1.replay_duration = cfg2.replay_duration = seconds(10);
  const auto a =
      experiments::run_phase(cfg1, experiments::Phase::SimOriginal);
  const auto b =
      experiments::run_phase(cfg2, experiments::Phase::SimOriginal);
  EXPECT_NE(a.p1.meas.loss_times, b.p1.meas.loss_times);
}

// --- Conservation: what goes in comes out or is dropped. ---

class TbfConservation : public ::testing::TestWithParam<double> {};

TEST_P(TbfConservation, AcceptedPlusDroppedEqualsOffered) {
  const Rate rate = mbps(GetParam());
  netsim::TbfDisc tbf(rate, 20000, 10000);
  Rng rng(42);
  std::uint64_t offered = 0, accepted = 0, drained = 0;
  Time now = 0;
  for (int i = 0; i < 5000; ++i) {
    netsim::Packet p;
    p.size = 500 + static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
    ++offered;
    accepted += tbf.enqueue(p, now);
    while (tbf.dequeue(now)) ++drained;
    now += microseconds(300);
  }
  while (tbf.dequeue(now + seconds(10))) ++drained;
  EXPECT_EQ(accepted, drained);
  EXPECT_EQ(offered, accepted + tbf.drop_count());
}

INSTANTIATE_TEST_SUITE_P(Rates, TbfConservation,
                         ::testing::Values(0.5, 2.0, 8.0, 20.0));

TEST(Conservation, LinkDeliversEverythingAccepted) {
  netsim::Simulator sim;
  netsim::NullSink sink;
  netsim::Link link(sim, mbps(5), milliseconds(3),
                    std::make_unique<netsim::FifoDisc>(30000), &sink);
  std::uint64_t offered = 0;
  for (int i = 0; i < 400; ++i) {
    sim.schedule_at(i * milliseconds(1), [&] {
      netsim::Packet p;
      p.size = 1200;
      ++offered;
      link.receive(p);
    });
  }
  sim.run();
  EXPECT_EQ(offered, sink.packets() + link.disc().drop_count());
  EXPECT_EQ(link.delivered_packets(), sink.packets());
}

// --- Loss-series invariants across interval sizes. ---

class LossSeriesInvariants : public ::testing::TestWithParam<int> {};

TEST_P(LossSeriesInvariants, RatesBoundedAndFiltered) {
  Rng rng(GetParam());
  netsim::ReplayMeasurement m1, m2;
  m1.start = m2.start = 0;
  m1.end = m2.end = seconds(20);
  for (int i = 0; i < 4000; ++i) {
    const Time at = static_cast<Time>(rng.uniform(0, to_seconds(m1.end)) *
                                      kSecond);
    m1.tx_times.push_back(at);
    m2.tx_times.push_back(at + milliseconds(3));
    if (rng.bernoulli(0.05)) m1.loss_times.push_back(at);
    if (rng.bernoulli(0.08)) m2.loss_times.push_back(at);
  }
  for (double sigma_s : {0.2, 0.5, 1.0, 2.5}) {
    const auto s =
        core::make_loss_rate_series(m1, m2, seconds(sigma_s), {});
    EXPECT_LE(s.retained_intervals, s.total_intervals);
    EXPECT_EQ(s.path1.size(), s.path2.size());
    for (double v : s.path1) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    // The filter guarantees at least one loss per retained interval.
    for (std::size_t t = 0; t < s.path1.size(); ++t) {
      EXPECT_GT(s.path1[t] + s.path2[t], 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossSeriesInvariants,
                         ::testing::Values(1, 2, 3, 4));

// --- Tomography solutions stay in [0, 1] on arbitrary inputs. ---

class TomographyBounds : public ::testing::TestWithParam<int> {};

TEST_P(TomographyBounds, SolutionsAreProbabilities) {
  Rng rng(100 + GetParam());
  std::vector<double> loss1, loss2;
  for (int i = 0; i < 60; ++i) {
    loss1.push_back(rng.uniform() * 0.3);
    loss2.push_back(rng.uniform() * 0.3);
  }
  for (double tau : {0.01, 0.05, 0.1, 0.2}) {
    const auto perf = core::bin_loss_tomo_series(loss1, loss2, tau);
    if (!perf.valid) continue;
    EXPECT_GE(perf.x_c, 0.0);
    EXPECT_LE(perf.x_c, 1.0);
    EXPECT_GE(perf.x_1, 0.0);
    EXPECT_LE(perf.x_1, 1.0);
    EXPECT_GE(perf.x_2, 0.0);
    EXPECT_LE(perf.x_2, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TomographyBounds,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Trace transforms hold for every app. ---

class TraceTransformSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(TraceTransformSweep, ExtensionAndInversionInvariants) {
  Rng rng(7);
  trace::AppTrace t =
      GetParam() == "Netflix"
          ? trace::make_tcp_app_trace(seconds(8), rng)
          : trace::make_udp_app_trace(GetParam(), seconds(8), rng);
  const auto extended = trace::extend(t, seconds(45));
  EXPECT_GE(extended.duration(), seconds(45));
  // Extension preserves the average rate (within the repeat-gap slack).
  EXPECT_NEAR(extended.average_rate() / t.average_rate(), 1.0, 0.1);
  const auto inverted = trace::bit_invert(extended);
  EXPECT_EQ(inverted.packets.size(), extended.packets.size());
  EXPECT_FALSE(inverted.carries_sni);
  EXPECT_EQ(inverted.total_bytes(), extended.total_bytes());
}

INSTANTIATE_TEST_SUITE_P(Apps, TraceTransformSweep,
                         ::testing::Values("Netflix", "Skype", "WhatsApp",
                                           "MSTeams", "Zoom", "Webex"));

}  // namespace
}  // namespace wehey
