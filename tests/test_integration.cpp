// End-to-end integration: real simulated networks through the full WeHeY
// pipeline. These are the slowest tests in the suite (a few seconds).
#include <gtest/gtest.h>

#include "core/localizer.hpp"
#include "core/loss_correlation.hpp"
#include "core/tomography.hpp"
#include "experiments/params.hpp"
#include "experiments/scenario.hpp"
#include "experiments/wild.hpp"

namespace wehey::experiments {
namespace {

TEST(Integration, CollectiveThrottlingDetectedByLossTrend) {
  auto cfg = default_scenario("Netflix", 101);
  cfg.replay_duration = seconds(30);
  const auto sim = run_simultaneous_experiment(cfg);
  ASSERT_TRUE(sim.differentiation_confirmed);
  const auto corr = core::loss_trend_correlation(
      sim.original.p1.meas, sim.original.p2.meas, milliseconds(cfg.rtt1_ms));
  EXPECT_TRUE(corr.common_bottleneck);
}

TEST(Integration, IdenticalSeparateLimitersNotDetected) {
  // The Table-5 "ultimate FP test": identically configured independent
  // rate-limiters on the two non-common links.
  auto cfg = default_scenario("Netflix", 103);
  cfg.placement = Placement::NonCommonLinks;
  cfg.replay_duration = seconds(30);
  const auto sim = run_simultaneous_experiment(cfg);
  const auto corr = core::loss_trend_correlation(
      sim.original.p1.meas, sim.original.p2.meas, milliseconds(cfg.rtt1_ms));
  EXPECT_FALSE(corr.common_bottleneck);
}

TEST(Integration, UdpCollectiveThrottlingDetected) {
  auto cfg = default_scenario("Zoom", 107);
  cfg.replay_duration = seconds(30);
  const auto sim = run_simultaneous_experiment(cfg);
  ASSERT_TRUE(sim.differentiation_confirmed);
  const auto corr = core::loss_trend_correlation(
      sim.original.p1.meas, sim.original.p2.meas, milliseconds(cfg.rtt1_ms));
  EXPECT_TRUE(corr.common_bottleneck);
}

TEST(Integration, ClassicTomographyWeakerThanLossTrend) {
  // Figure 6's qualitative claim on at least one seed: where the final
  // algorithm detects the common bottleneck, BinLossTomoNoParams may or
  // may not — it must never beat it.
  int corr_hits = 0, tomo_hits = 0;
  for (std::uint64_t seed : {111, 112, 113}) {
    auto cfg = default_scenario("Netflix", seed);
    cfg.replay_duration = seconds(30);
    const auto sim = run_simultaneous_experiment(cfg);
    if (!sim.differentiation_confirmed) continue;
    const Time rtt = milliseconds(cfg.rtt1_ms);
    corr_hits += core::loss_trend_correlation(sim.original.p1.meas,
                                              sim.original.p2.meas, rtt)
                     .common_bottleneck;
    tomo_hits += core::bin_loss_tomo_no_params(sim.original.p1.meas,
                                               sim.original.p2.meas, rtt)
                     .common_bottleneck;
  }
  EXPECT_GE(corr_hits, tomo_hits);
  EXPECT_GT(corr_hits, 0);
}

TEST(Integration, FullPipelinePerClientWild) {
  // Table 1 reports ~89-98% success for the unconditional throttlers, not
  // 100%: assert on a small batch.
  int localized = 0;
  for (std::uint64_t seed : {5, 21, 30}) {
    WildConfig cfg;
    cfg.isp = default_isp_models()[1];
    cfg.seed = seed;
    const auto t_diff = build_wild_t_diff(cfg, 8);
    const auto out = run_wild_test(cfg, t_diff);
    localized += out.localized && out.localization.mechanism ==
                                      core::Mechanism::PerClientThrottling;
  }
  EXPECT_GE(localized, 2);
}

TEST(Integration, SanityCheckThirdReplayNotLocalizedAsPerClient) {
  // §5 sanity check: with a third concurrent replay sharing the
  // per-client bottleneck, p1+p2 no longer adds up to p0.
  WildConfig cfg;
  cfg.isp = default_isp_models()[0];
  cfg.seed = 119;
  const auto t_diff = build_wild_t_diff(cfg, 8);
  const auto out = run_wild_sanity_check(cfg, t_diff);
  EXPECT_NE(out.localization.mechanism,
            core::Mechanism::PerClientThrottling);
}

TEST(Integration, FullExperimentProducesCompleteInput) {
  auto cfg = default_scenario("Netflix", 121);
  cfg.replay_duration = seconds(15);
  const std::vector<double> t_diff{0.05, -0.08, 0.1, -0.03, 0.06,
                                   -0.09, 0.04, -0.02, 0.07, -0.05};
  const auto input = run_full_experiment(cfg, t_diff);
  EXPECT_FALSE(input.p0_original.deliveries.empty());
  EXPECT_FALSE(input.p0_inverted.deliveries.empty());
  EXPECT_FALSE(input.p1_original.deliveries.empty());
  EXPECT_FALSE(input.p2_original.deliveries.empty());
  EXPECT_FALSE(input.p1_inverted.deliveries.empty());
  EXPECT_FALSE(input.p2_inverted.deliveries.empty());
  EXPECT_EQ(input.t_diff_history.size(), t_diff.size());
  EXPECT_EQ(input.base_rtt, milliseconds(35));
}

}  // namespace
}  // namespace wehey::experiments
