// Engine runtime telemetry (obs/runtime.hpp): the deterministic-count
// contract across thread widths, ThreadPool scheduler counters under a
// contended parallel_for, the wehey.runtime_report.v1 sidecar shape, and
// — the headline — run reports staying byte-identical with telemetry
// enabled vs disabled. Wall-clock fields are only ever range-checked;
// exact assertions are reserved for the count fields the contract names
// (tasks, trials, trials_supervised).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "experiments/params.hpp"
#include "experiments/wild.hpp"
#include "netsim/simulator.hpp"
#include "obs/aggregate.hpp"
#include "obs/inspect.hpp"
#include "obs/report.hpp"
#include "obs/runtime.hpp"
#include "parallel/supervisor.hpp"
#include "parallel/thread_pool.hpp"

namespace wehey {
namespace {

namespace rt = obs::runtime;

/// A little real work per trial so busy time registers on whoever runs it.
double spin(std::size_t i) {
  double acc = static_cast<double>(i);
  for (int k = 0; k < 20000; ++k) acc += 1.0 / static_cast<double>(k + 1);
  return acc;
}

/// Every test drives the process-global profiler: start each test from
/// zeroed counters and never leak an enabled profiler into the next test
/// (or into the other suites linked into this binary).
class RuntimeTelemetry : public ::testing::Test {
 protected:
  void SetUp() override {
    rt::set_enabled(true);
    rt::reset();
  }
  void TearDown() override { rt::set_enabled(false); }
};

// --- deterministic-count contract ----------------------------------------

TEST_F(RuntimeTelemetry, CountFieldsExactAcrossThreadWidths) {
  for (const unsigned threads : {1u, 8u}) {
    rt::reset();
    const auto out =
        parallel::parallel_map(24, [](std::size_t i) { return spin(i); },
                               threads);
    ASSERT_EQ(out.size(), 24u);
    const auto snap = rt::snapshot();
    // Counts are pure functions of the workload: exact at any width, on
    // the serial bypass (threads == 1) as well as the pooled path.
    EXPECT_EQ(snap.trials, 24u) << "threads=" << threads;
    EXPECT_EQ(snap.tasks, 24u) << "threads=" << threads;
    EXPECT_EQ(snap.trial_wall_ms.count, 24u) << "threads=" << threads;
    // Wall-clock fields: range checks only.
    EXPECT_GE(snap.wall_seconds, 0.0);
    EXPECT_GE(snap.trial_wall_ms.sum, 0.0);
    double busy = 0.0;
    for (const auto& w : snap.workers) busy += w.busy_ms;
    EXPECT_GT(busy, 0.0) << "threads=" << threads;
  }
}

TEST_F(RuntimeTelemetry, SupervisedTrialCountIsExact) {
  netsim::Simulator sim_a;
  netsim::Simulator sim_b;
  parallel::install_trial_budget(sim_a);
  parallel::install_trial_budget(sim_b);
  EXPECT_EQ(rt::snapshot().trials_supervised, 2u);
}

TEST_F(RuntimeTelemetry, DisabledHooksRecordNothing) {
  rt::set_enabled(false);
  parallel::parallel_map(8, [](std::size_t i) { return spin(i); }, 4);
  rt::set_enabled(true);
  const auto snap = rt::snapshot();
  EXPECT_EQ(snap.trials, 0u);
  EXPECT_EQ(snap.tasks, 0u);
  EXPECT_EQ(snap.jobs, 0u);
}

// --- scheduler counters under contention ---------------------------------

TEST_F(RuntimeTelemetry, ContendedParallelForDrivesSchedulerCounters) {
  parallel::ThreadPool pool(8);
  rt::reset();
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(64, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  ASSERT_EQ(ran.load(), 64u);
  const auto snap = rt::snapshot();
  EXPECT_EQ(snap.tasks, 64u);
  EXPECT_EQ(snap.jobs, 1u);
  // The queue-depth high-water mark is the largest pending-iteration count
  // ever submitted — exactly this job's n.
  EXPECT_EQ(snap.queue_depth_high_water, 64u);
  // The caller always waits for its workers to leave run_chunks once per
  // pooled job (possibly for ~0 ns, but it is counted).
  EXPECT_GE(snap.drain_waits, 1u);
  // 64 tasks x 1 ms across 8 contexts: workers certainly joined, so the
  // submit-to-start latency histogram saw at least one pickup.
  EXPECT_GE(snap.submit_to_start_us.count, 1u);
  double busy = 0.0;
  std::size_t worker_slots = 0;
  std::uint64_t chunk_tasks = 0;
  for (const auto& w : snap.workers) {
    busy += w.busy_ms;
    worker_slots += w.kind == rt::ThreadKind::kWorker;
    chunk_tasks += w.tasks;
  }
  EXPECT_GT(busy, 0.0);
  EXPECT_GE(worker_slots, 1u);
  EXPECT_EQ(chunk_tasks, 64u);  // per-worker task tallies sum to the job
  // Derived metrics stay in their mathematical ranges.
  EXPECT_GT(snap.parallel_efficiency, 0.0);
  EXPECT_LE(snap.parallel_efficiency, 1.0 + 1e-9);
  EXPECT_GE(snap.worker_imbalance, 1.0 - 1e-9);
  EXPECT_GE(snap.wait_fraction, 0.0);
  EXPECT_LE(snap.wait_fraction, 1.0 + 1e-9);
}

// --- sidecar report shape -------------------------------------------------

TEST_F(RuntimeTelemetry, ReportJsonMatchesSchemaShape) {
  parallel::parallel_map(8, [](std::size_t i) { return spin(i); }, 4);
  const auto snap = rt::snapshot();
  const std::string json = rt::runtime_report_json(snap, "unit");
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(json, doc, &error)) << error;
  ASSERT_TRUE(obs::is_runtime_report(doc));
  const obs::JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, obs::kRuntimeReportSchema);
  // Top-level sections required by tools/runtime_report_schema.json.
  for (const char* key :
       {"run", "wall_seconds", "threads", "workers", "scheduler", "trials",
        "process"}) {
    EXPECT_NE(doc.find(key), nullptr) << key;
  }
  const obs::JsonValue* threads = doc.find("threads");
  ASSERT_NE(threads, nullptr);
  for (const char* key :
       {"configured", "hardware", "contexts", "oversubscribed"}) {
    EXPECT_NE(threads->find(key), nullptr) << key;
  }
  EXPECT_GE(threads->find("configured")->num_or(0.0), 1.0);
  EXPECT_GE(threads->find("hardware")->num_or(0.0), 1.0);
  const obs::JsonValue* sched = doc.find("scheduler");
  ASSERT_NE(sched, nullptr);
  for (const char* key :
       {"jobs", "tasks", "queue_depth_high_water", "drain_waits",
        "parallel_efficiency", "worker_imbalance", "wait_fraction",
        "idle_fraction", "submit_to_start_us"}) {
    EXPECT_NE(sched->find(key), nullptr) << key;
  }
  EXPECT_EQ(sched->find("tasks")->num_or(-1.0), 8.0);
  const obs::JsonValue* trials = doc.find("trials");
  ASSERT_NE(trials, nullptr);
  EXPECT_EQ(trials->find("count")->num_or(-1.0), 8.0);
  ASSERT_NE(trials->find("wall_ms"), nullptr);
  for (const char* key : {"lo", "hi", "count", "sum", "min", "max", "bins"}) {
    EXPECT_NE(trials->find("wall_ms")->find(key), nullptr) << key;
  }
  // Wall-clock values: range checks only.
  EXPECT_GE(doc.find("wall_seconds")->num_or(-1.0), 0.0);
  // The sidecar must never carry sections of the deterministic reports
  // (validate_report.py rejects such cross-wired writers).
  EXPECT_EQ(doc.find("decision"), nullptr);
  EXPECT_EQ(doc.find("cells"), nullptr);
  EXPECT_EQ(doc.find("stages"), nullptr);
}

TEST_F(RuntimeTelemetry, SidecarFromEnvAgreesOnCountsAcrossWidths) {
  const std::string dir = ::testing::TempDir();
  obs::JsonValue docs[2];
  const unsigned widths[2] = {1, 8};
  for (int w = 0; w < 2; ++w) {
    const std::string path =
        dir + "wehey_runtime_w" + std::to_string(widths[w]) + ".json";
    ::setenv("WEHEY_RUNTIME_REPORT", path.c_str(), 1);
    rt::set_enabled(false);
    EXPECT_TRUE(rt::enable_from_env());  // env path present => enabled
    rt::reset();
    parallel::parallel_map(16, [](std::size_t i) { return spin(i); },
                           widths[w]);
    EXPECT_TRUE(rt::write_runtime_report_from_env("unit_env"));
    ::unsetenv("WEHEY_RUNTIME_REPORT");
    std::string text;
    ASSERT_TRUE(obs::read_file(path, text)) << path;
    std::string error;
    ASSERT_TRUE(obs::json_parse(text, docs[w], &error)) << error;
    std::remove(path.c_str());
  }
  for (const auto& doc : docs) {
    ASSERT_TRUE(obs::is_runtime_report(doc));
    const obs::JsonValue* sched = doc.find("scheduler");
    const obs::JsonValue* trials = doc.find("trials");
    ASSERT_NE(sched, nullptr);
    ASSERT_NE(trials, nullptr);
    // The deterministic counts agree at width 1 and width 8.
    EXPECT_EQ(sched->find("tasks")->num_or(-1.0), 16.0);
    EXPECT_EQ(trials->find("count")->num_or(-1.0), 16.0);
  }
}

TEST_F(RuntimeTelemetry, EnvPathOffValuesDisableTheSidecar) {
  ::setenv("WEHEY_RUNTIME_REPORT", "0", 1);
  EXPECT_TRUE(rt::runtime_report_path_from_env().empty());
  ::setenv("WEHEY_RUNTIME_REPORT", "", 1);
  EXPECT_TRUE(rt::runtime_report_path_from_env().empty());
  ::unsetenv("WEHEY_RUNTIME_REPORT");
  EXPECT_TRUE(rt::runtime_report_path_from_env().empty());
}

// --- byte identity of the deterministic reports ---------------------------

TEST_F(RuntimeTelemetry, RunReportsByteIdenticalTelemetryOnVsOff) {
  experiments::WildConfig cfg;
  cfg.isp = experiments::default_isp_models()[0];
  cfg.replay_duration = seconds(8);
  cfg.seed = 3;
  const std::vector<double> t_diff = {0.05, -0.08, 0.11, -0.03};

  rt::set_enabled(false);
  const auto off =
      experiments::run_wild_test_reported(cfg, t_diff, false, "telemetry");
  rt::set_enabled(true);
  rt::reset();
  const auto on =
      experiments::run_wild_test_reported(cfg, t_diff, false, "telemetry");

  // The profiler saw the run...
  EXPECT_GT(rt::snapshot().trials, 0u);
  // ...but the deterministic report is untouched, byte for byte.
  EXPECT_EQ(off.report.to_json(&off.metrics), on.report.to_json(&on.metrics));
}

TEST_F(RuntimeTelemetry, SweepAggregateByteIdenticalTelemetryOnVsOff) {
  experiments::WildConfig cfg;
  cfg.isp = experiments::default_isp_models()[0];
  cfg.replay_duration = seconds(8);
  cfg.seed = 3;
  const std::vector<double> t_diff = {0.05, -0.08, 0.11, -0.03};
  std::string sweep_json[2];
  for (int pass = 0; pass < 2; ++pass) {
    rt::set_enabled(pass == 1);
    obs::SweepAggregator agg("telemetry_sweep");
    const auto res =
        experiments::run_wild_test_reported(cfg, t_diff, false, "telemetry");
    agg.add_run(res.report, &res.metrics);
    sweep_json[pass] = agg.to_json();
  }
  rt::set_enabled(true);  // hand TearDown the state it expects
  EXPECT_EQ(sweep_json[0], sweep_json[1]);
}

// --- checked-in fixtures --------------------------------------------------

TEST(RuntimeFixtures, GoodSidecarParsesAndCrosswiredCarriesDecision) {
  // tools/validate_report.py accepts the first fixture and rejects the
  // second ("cross-wired writer") — CI runs it on both. Here we pin what
  // the fixtures actually contain so they can't drift silently.
  const std::string dir = std::string(WEHEY_SOURCE_DIR) + "/tests/data/";
  std::string text;
  obs::JsonValue doc;
  ASSERT_TRUE(obs::read_file(dir + "runtime_report_v1.json", text));
  ASSERT_TRUE(obs::json_parse(text, doc));
  EXPECT_TRUE(obs::is_runtime_report(doc));
  EXPECT_EQ(doc.find("decision"), nullptr);
  EXPECT_EQ(doc.find("cells"), nullptr);

  ASSERT_TRUE(obs::read_file(dir + "runtime_report_crosswired.json", text));
  ASSERT_TRUE(obs::json_parse(text, doc));
  EXPECT_TRUE(obs::is_runtime_report(doc));  // schema tag alone looks fine
  EXPECT_NE(doc.find("decision"), nullptr);  // ...but the payload is wrong
}

// --- progress meter -------------------------------------------------------

TEST(ProgressMeterTest, ModeParsesFromEnv) {
  ::setenv("WEHEY_PROGRESS", "plain", 1);
  EXPECT_EQ(obs::ProgressMeter("unit").mode(),
            obs::ProgressMeter::Mode::kPlain);
  // "tty" honors the terminal: carriage-return redraws only when stderr
  // actually is one, otherwise it auto-downgrades to plain so CI logs
  // don't fill with \r frames. Under ctest stderr is a pipe, so this
  // normally exercises the downgrade path.
  ::setenv("WEHEY_PROGRESS", "tty", 1);
  EXPECT_EQ(obs::ProgressMeter("unit").mode(),
            ::isatty(::fileno(stderr)) != 0 ? obs::ProgressMeter::Mode::kTty
                                            : obs::ProgressMeter::Mode::kPlain);
  ::setenv("WEHEY_PROGRESS", "off", 1);
  EXPECT_EQ(obs::ProgressMeter("unit").mode(), obs::ProgressMeter::Mode::kOff);
  ::unsetenv("WEHEY_PROGRESS");
  EXPECT_EQ(obs::ProgressMeter("unit").mode(), obs::ProgressMeter::Mode::kOff);
}

TEST(ProgressMeterTest, TalliesResumedQuarantinedAndKnifeEdge) {
  ::unsetenv("WEHEY_PROGRESS");  // mode off: nothing printed until finish()
  obs::ProgressMeter meter("unit_sweep");
  meter.expect(4);
  meter.note_resumed();
  meter.note_run("completed", /*has_margin=*/true, /*margin=*/0.5);
  meter.note_run(obs::kBudgetExhaustedVerdict, false, 0.0);
  // |margin| below the default knife-edge threshold (0.05).
  meter.note_run("completed", true, -0.01);
  EXPECT_EQ(meter.completed(), 4u);
  EXPECT_EQ(meter.resumed(), 1u);
  EXPECT_EQ(meter.quarantined(), 1u);
  EXPECT_EQ(meter.knife_edge(), 1u);
  meter.finish();  // the summary line prints to stderr even in mode off
}

TEST(ProgressMeterTest, KnifeEdgeThresholdComesFromEnv) {
  ::setenv("WEHEY_KNIFE_EDGE_MARGIN", "0.2", 1);
  obs::ProgressMeter meter("unit_margin");
  meter.note_run("completed", true, 0.1);   // under the widened threshold
  meter.note_run("completed", true, 0.3);   // over it
  meter.note_run("completed", false, 0.0);  // no margin: never knife-edge
  ::unsetenv("WEHEY_KNIFE_EDGE_MARGIN");
  EXPECT_EQ(meter.knife_edge(), 1u);
}

}  // namespace
}  // namespace wehey
