#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "trace/apps.hpp"
#include "trace/background.hpp"
#include "trace/trace.hpp"

namespace wehey::trace {
namespace {

AppTrace tiny_trace() {
  AppTrace t;
  t.app = "test";
  t.service = "test.example";
  t.transport = Transport::Udp;
  t.packets = {{0, 100}, {milliseconds(10), 200}, {milliseconds(20), 300}};
  return t;
}

TEST(Trace, TotalsAndRate) {
  const auto t = tiny_trace();
  EXPECT_EQ(t.total_bytes(), 600);
  EXPECT_EQ(t.duration(), milliseconds(20));
  EXPECT_DOUBLE_EQ(t.average_rate(), 600 * 8.0 / 0.020);
}

TEST(Trace, BitInvertKeepsShapeDropsSni) {
  const auto t = tiny_trace();
  const auto inv = bit_invert(t);
  EXPECT_FALSE(inv.carries_sni);
  ASSERT_EQ(inv.packets.size(), t.packets.size());
  for (std::size_t i = 0; i < t.packets.size(); ++i) {
    EXPECT_EQ(inv.packets[i].offset, t.packets[i].offset);
    EXPECT_EQ(inv.packets[i].size, t.packets[i].size);
  }
}

TEST(Trace, PoissonizeKeepsSizesAndCount) {
  Rng rng(3);
  auto t = tiny_trace();
  // Grow the trace so the rate statistics are meaningful.
  t = extend(t, seconds(10));
  const auto p = poissonize(t, rng);
  EXPECT_EQ(p.packets.size(), t.packets.size());
  EXPECT_EQ(p.timing, Timing::Poisson);
  std::int64_t bytes = 0;
  for (const auto& pkt : p.packets) bytes += pkt.size;
  EXPECT_EQ(bytes, t.total_bytes());
  // Offsets must be non-decreasing in construction order? They are drawn
  // sequentially, so yes.
  for (std::size_t i = 1; i < p.packets.size(); ++i) {
    EXPECT_GE(p.packets[i].offset, p.packets[i - 1].offset);
  }
  // Mean rate is preserved within sampling noise.
  EXPECT_NEAR(p.average_rate() / t.average_rate(), 1.0, 0.25);
}

TEST(Trace, ExtendReachesMinimumDuration) {
  const auto t = tiny_trace();
  const auto e = extend(t, seconds(45));
  EXPECT_GE(e.duration(), seconds(45));
  EXPECT_EQ(e.packets.size() % t.packets.size(), 0u);
}

TEST(Trace, ExtendNoOpWhenLongEnough) {
  const auto t = tiny_trace();
  const auto e = extend(t, milliseconds(5));
  EXPECT_EQ(e.packets.size(), t.packets.size());
}

class UdpAppCase : public ::testing::TestWithParam<std::string> {};

TEST_P(UdpAppCase, GeneratesPlausibleTrace) {
  Rng rng(11);
  const auto t = make_udp_app_trace(GetParam(), seconds(20), rng);
  EXPECT_EQ(t.transport, Transport::Udp);
  EXPECT_TRUE(t.carries_sni);
  EXPECT_EQ(t.app, GetParam());
  ASSERT_GT(t.packets.size(), 100u);
  EXPECT_GE(t.duration(), seconds(19));
  // Rates: all of WeHe's UDP apps sit between ~30 kbps and ~3 Mbps.
  EXPECT_GT(t.average_rate(), 20e3);
  EXPECT_LT(t.average_rate(), 3e6);
  for (const auto& p : t.packets) {
    EXPECT_GT(p.size, 0u);
    EXPECT_LE(p.size, 1500u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, UdpAppCase,
                         ::testing::ValuesIn(udp_app_names()));

TEST(Apps, TcpTraceShape) {
  Rng rng(13);
  const auto t = make_tcp_app_trace(seconds(20), rng);
  EXPECT_EQ(t.transport, Transport::Tcp);
  EXPECT_GT(t.packets.size(), 1000u);
  // Chunked streaming at roughly 4 Mbps.
  EXPECT_NEAR(t.average_rate() / 4e6, 1.0, 0.5);
}

TEST(Apps, AllAppTracesCoverSixApps) {
  Rng rng(17);
  const auto all = all_app_traces(seconds(5), rng);
  EXPECT_EQ(all.size(), 6u);
  EXPECT_EQ(all.front().transport, Transport::Tcp);
}

TEST(Background, TargetRateRespected) {
  Rng rng(19);
  BackgroundConfig cfg;
  cfg.target_rate = mbps(5);
  cfg.duration = seconds(200);
  cfg.flows_per_second = 20;
  const auto flows = generate_background(cfg, rng);
  ASSERT_GT(flows.size(), 1000u);
  const double offered_rate =
      static_cast<double>(total_bytes(flows)) * 8.0 / 200.0;
  // Heavy-tailed sizes: allow generous tolerance around the target.
  EXPECT_NEAR(offered_rate / mbps(5), 1.0, 0.5);
}

TEST(Background, FlowsSortedAndPositive) {
  Rng rng(23);
  BackgroundConfig cfg;
  cfg.duration = seconds(30);
  const auto flows = generate_background(cfg, rng);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_GT(flows[i].bytes, 0);
    EXPECT_GE(flows[i].start, 0);
    EXPECT_LT(flows[i].start, cfg.duration);
    if (i > 0) {
      EXPECT_GE(flows[i].start, flows[i - 1].start);
    }
  }
}

TEST(Background, MarkDifferentiatedFraction) {
  Rng rng(29);
  BackgroundConfig cfg;
  cfg.duration = seconds(300);
  cfg.flows_per_second = 30;
  auto flows = generate_background(cfg, rng);
  mark_differentiated(flows, 0.75, rng);
  std::size_t marked = 0;
  for (const auto& f : flows) marked += f.differentiated;
  EXPECT_NEAR(static_cast<double>(marked) / flows.size(), 0.75, 0.05);
}

}  // namespace
}  // namespace wehey::trace
