#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/wehe.hpp"

namespace wehey::core {
namespace {

std::vector<double> noisy_samples(double mean_bps, double jitter, int n,
                                  Rng& rng) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(std::max(0.0, rng.normal(mean_bps, jitter)));
  }
  return out;
}

TEST(WeheDetector, DetectsClearThrottling) {
  Rng rng(3);
  const auto original = noisy_samples(1.5e6, 2e5, 100, rng);
  const auto inverted = noisy_samples(6.0e6, 8e5, 100, rng);
  const auto res = detect_differentiation_samples(original, inverted);
  EXPECT_TRUE(res.differentiation);
  EXPECT_TRUE(res.original_slower);
  EXPECT_LT(res.p_value, 0.01);
}

TEST(WeheDetector, NoDetectionOnIdenticalDistributions) {
  Rng rng(5);
  const auto a = noisy_samples(4e6, 5e5, 100, rng);
  const auto b = noisy_samples(4e6, 5e5, 100, rng);
  const auto res = detect_differentiation_samples(a, b);
  EXPECT_FALSE(res.differentiation);
}

TEST(WeheDetector, MinEffectGuardsTinyDifferences) {
  // Statistically different but negligible in magnitude (1% shift on a
  // razor-sharp distribution).
  Rng rng(7);
  const auto a = noisy_samples(4.00e6, 1e3, 100, rng);
  const auto b = noisy_samples(4.04e6, 1e3, 100, rng);
  WeheConfig cfg;
  cfg.min_effect = 0.05;
  const auto res = detect_differentiation_samples(a, b, cfg);
  EXPECT_LT(res.p_value, 0.05);       // KS alone fires
  EXPECT_FALSE(res.differentiation);  // effect guard suppresses
}

TEST(WeheDetector, EmptyInputInvalid) {
  const auto res = detect_differentiation_samples({}, {1.0});
  EXPECT_FALSE(res.differentiation);
}

TEST(WeheDetector, MeasurementPathway) {
  // Build measurements directly: original delivers half the bytes the
  // inverted replay does, in the same pattern.
  netsim::ReplayMeasurement orig, inv;
  orig.start = inv.start = 0;
  orig.end = inv.end = seconds(10);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const Time at = milliseconds(10.0 * i);
    inv.deliveries.push_back({at, 2000});
    orig.deliveries.push_back(
        {at, static_cast<std::uint32_t>(rng.bernoulli(0.5) ? 2000 : 0)});
  }
  const auto res = detect_differentiation(orig, inv);
  EXPECT_TRUE(res.differentiation);
  EXPECT_TRUE(res.original_slower);
}

TEST(WeheDetector, DirectionRecorded) {
  Rng rng(13);
  const auto fast = noisy_samples(8e6, 5e5, 100, rng);
  const auto slow = noisy_samples(2e6, 3e5, 100, rng);
  // "Original" faster than "inverted" is unusual but must be reported
  // faithfully.
  const auto res = detect_differentiation_samples(fast, slow);
  EXPECT_TRUE(res.differentiation);
  EXPECT_FALSE(res.original_slower);
}

}  // namespace
}  // namespace wehey::core
