#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hpp"

namespace wehey::stats {
namespace {

TEST(NormalDist, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.96), 0.0249979, 1e-6);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501, 1e-6);
}

TEST(NormalDist, SfComplementsCdf) {
  for (double x : {-3.0, -1.0, 0.0, 0.5, 2.0, 4.0}) {
    EXPECT_NEAR(normal_cdf(x) + normal_sf(x), 1.0, 1e-12);
  }
}

TEST(NormalDist, SfAccurateInTail) {
  // Far-tail survival without cancellation: P(Z > 6) ~ 9.87e-10.
  EXPECT_NEAR(normal_sf(6.0) / 9.8659e-10, 1.0, 1e-3);
}

TEST(NormalDist, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-7);
  }
}

TEST(IncompleteBeta, Boundaries) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCase) {
  // I_{1/2}(a, a) = 1/2 for any a.
  for (double a : {0.5, 1.0, 2.0, 7.5}) {
    EXPECT_NEAR(incomplete_beta(a, a, 0.5), 0.5, 1e-10);
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.33, 0.5, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1, 1, x), x, 1e-10);
  }
}

TEST(StudentT, CdfAtZero) {
  for (double df : {1.0, 5.0, 30.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, df), 0.5, 1e-12);
  }
}

TEST(StudentT, KnownCriticalValues) {
  // t_{0.975, 10} = 2.228139.
  EXPECT_NEAR(student_t_cdf(2.228139, 10), 0.975, 1e-5);
  // t_{0.95, 5} = 2.015048.
  EXPECT_NEAR(student_t_cdf(2.015048, 5), 0.95, 1e-5);
  // Cauchy case (df = 1): CDF(1) = 0.75.
  EXPECT_NEAR(student_t_cdf(1.0, 1), 0.75, 1e-9);
}

TEST(StudentT, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-4);
}

TEST(StudentT, TwoSidedPSymmetric) {
  EXPECT_NEAR(student_t_two_sided_p(2.0, 10),
              2.0 * (1.0 - student_t_cdf(2.0, 10)), 1e-10);
  EXPECT_NEAR(student_t_two_sided_p(-2.0, 10),
              student_t_two_sided_p(2.0, 10), 1e-12);
}

TEST(Kolmogorov, KnownValues) {
  // Q(1.36) = 2*exp(-2*1.36^2) - ... ~ 0.04947 (1.36 is the classic ~5%
  // critical value).
  EXPECT_NEAR(kolmogorov_sf(1.36), 0.04947, 5e-4);
  EXPECT_NEAR(kolmogorov_sf(1.22), 0.1019, 1e-3);
  EXPECT_DOUBLE_EQ(kolmogorov_sf(0.0), 1.0);
}

TEST(Kolmogorov, MonotoneDecreasing) {
  double prev = 1.0;
  for (double lambda = 0.1; lambda < 3.0; lambda += 0.1) {
    const double v = kolmogorov_sf(lambda);
    EXPECT_LE(v, prev + 1e-12);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

}  // namespace
}  // namespace wehey::stats
