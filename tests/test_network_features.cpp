// FigureOneNetwork features beyond the standard replay flow: traceroute
// synthesis, route churn, the jittered access link, QUIC replays, and
// ReplayMeasurement helpers used by the figure benches.
#include <gtest/gtest.h>

#include "experiments/network.hpp"
#include "experiments/params.hpp"
#include "stats/descriptive.hpp"
#include "topology/construction.hpp"
#include "trace/apps.hpp"

namespace wehey::experiments {
namespace {

NetworkParams basic_params() {
  NetworkParams p;
  p.bw_nc1 = mbps(20);
  p.bw_nc2 = mbps(20);
  p.bw_c = mbps(40);
  return p;
}

TEST(NetworkTraceroute, RecordsMatchTopology) {
  netsim::Simulator sim;
  Rng rng(3);
  FigureOneNetwork net(sim, basic_params(), rng);
  const auto tr1 = net.traceroute(1);
  const auto tr2 = net.traceroute(2);
  EXPECT_EQ(tr1.server, "s1");
  EXPECT_EQ(tr2.server, "s2");
  EXPECT_TRUE(tr1.last_hop_matches_dst_asn());
  EXPECT_TRUE(tr1.alias_consistent());
  // The two records form a suitable pair converging inside the ISP.
  std::string convergence;
  EXPECT_TRUE(topology::suitable_pair(tr1, tr2,
                                      FigureOneNetwork::kClientAsn,
                                      &convergence));
  EXPECT_EQ(convergence, "100.0.1.1");
}

TEST(NetworkTraceroute, RouteChurnBreaksSuitability) {
  netsim::Simulator sim;
  Rng rng(5);
  FigureOneNetwork net(sim, basic_params(), rng);
  net.set_route_churn(true);
  EXPECT_FALSE(topology::suitable_pair(net.traceroute(1), net.traceroute(2),
                                       FigureOneNetwork::kClientAsn));
}

TEST(AccessLink, JitterVariesDeliveryRate) {
  // A CBR UDP stream through a jittered access link shows interval
  // throughputs both above and below the nominal mean.
  netsim::Simulator sim;
  Rng rng(7);
  auto params = basic_params();
  params.access_rate = mbps(1.2);
  params.access_jitter_sigma = 0.5;
  params.access_update_interval = seconds(1);
  FigureOneNetwork net(sim, params, rng);

  trace::AppTrace t;
  t.transport = trace::Transport::Udp;
  for (int i = 0; i < 4000; ++i) {
    t.packets.push_back({i * milliseconds(5), 1000});  // 1.6 Mbps offered
  }
  const int id = net.start_udp_replay(1, t, 0);
  net.run(seconds(20));
  const auto rep = net.report(id, 0, seconds(20));
  const auto samples = rep.meas.throughput_over_time(seconds(1));
  ASSERT_GE(samples.size(), 15u);
  // Capacity clipping at varying rates: substantial spread across seconds.
  const double cov = stats::stddev(samples) / stats::mean(samples);
  EXPECT_GT(cov, 0.1);
}

TEST(NetworkQuic, ReplayThrottledLikeTcp) {
  auto cfg = default_scenario("Netflix", 11);
  cfg.replay_duration = seconds(15);
  const auto derived = derive(cfg);
  netsim::Simulator sim;
  Rng rng(11);
  FigureOneNetwork net(sim, derived.net, rng);
  Rng trace_rng(cfg.seed * 0x9e3779b9ULL + 17);
  auto t = trace::make_tcp_app_trace(cfg.base_trace_duration, trace_rng);
  t = trace::extend(t, cfg.replay_duration);
  const int id1 = net.start_quic_replay(1, t, 0);
  const int id2 = net.start_quic_replay(2, t, milliseconds(5));
  net.run(cfg.replay_duration);
  const auto r1 = net.report(id1, 0, cfg.replay_duration);
  const auto r2 = net.report(id2, milliseconds(5), cfg.replay_duration);
  // Both replays ran, were throttled below the trace rate, and recorded
  // loss events.
  EXPECT_GT(r1.avg_throughput_bps, kbps(200));
  EXPECT_LT(r1.avg_throughput_bps, derived.trace_rate);
  EXPECT_GT(r1.meas.lost_packets(), 0u);
  EXPECT_GT(r2.meas.transmitted_packets(), 100u);
}

TEST(Measure, ThroughputOverTimeWindows) {
  netsim::ReplayMeasurement m;
  m.start = 0;
  m.end = seconds(4);
  m.deliveries = {{milliseconds(100), 1000},
                  {milliseconds(1500), 2000},
                  {milliseconds(3900), 4000}};
  const auto series = m.throughput_over_time(seconds(1));
  ASSERT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series[0], 8000.0);
  EXPECT_DOUBLE_EQ(series[1], 16000.0);
  EXPECT_DOUBLE_EQ(series[2], 0.0);
  EXPECT_DOUBLE_EQ(series[3], 32000.0);
}

TEST(Measure, DurationAndRates) {
  netsim::ReplayMeasurement m;
  m.start = seconds(2);
  m.end = seconds(12);
  EXPECT_EQ(m.duration(), seconds(10));
  EXPECT_DOUBLE_EQ(m.loss_rate(), 0.0);  // no transmissions
  m.tx_times = {seconds(3), seconds(4)};
  m.loss_times = {seconds(4)};
  EXPECT_DOUBLE_EQ(m.loss_rate(), 0.5);
}

}  // namespace
}  // namespace wehey::experiments
