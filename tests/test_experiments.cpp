// Experiment harness: scenario derivation, the Figure-1 network, phases.
#include <gtest/gtest.h>

#include "experiments/history.hpp"
#include "experiments/network.hpp"
#include "experiments/params.hpp"
#include "experiments/scenario.hpp"
#include "experiments/wild.hpp"
#include "stats/descriptive.hpp"

namespace wehey::experiments {
namespace {

TEST(Params, EvaluationAppsAreSix) {
  const auto apps = evaluation_apps();
  ASSERT_EQ(apps.size(), 6u);
  EXPECT_EQ(apps.front(), "Netflix");
}

TEST(Params, DefaultScenarioUsesBoldValues) {
  const auto cfg = default_scenario("Netflix", 1);
  EXPECT_DOUBLE_EQ(cfg.input_rate_factor, 1.5);
  EXPECT_DOUBLE_EQ(cfg.queue_burst_factor, 0.5);
  EXPECT_DOUBLE_EQ(cfg.bg_diff_fraction, 0.5);
  EXPECT_DOUBLE_EQ(cfg.nc_utilization, 0.2);
  EXPECT_DOUBLE_EQ(cfg.rtt1_ms, 35.0);
}

TEST(Limiter, SizedPerAppendixC1) {
  // burst = rate x RTT in bytes; limit = factor x burst.
  const auto lp = make_limiter(mbps(8), milliseconds(50), 0.5);
  EXPECT_EQ(lp.burst, 50000);
  EXPECT_EQ(lp.limit, 25000);
}

TEST(Limiter, FloorsPreventDegenerateBuckets) {
  const auto lp = make_limiter(kbps(100), milliseconds(10), 0.25);
  EXPECT_GE(lp.burst, 6 * 1500);
  EXPECT_GE(lp.limit, 3 * 1500);
}

TEST(Scenario, DeriveComputesConsistentRates) {
  auto cfg = default_scenario("Netflix", 3);
  const auto d = derive(cfg);
  EXPECT_GT(d.trace_rate, mbps(1));
  EXPECT_DOUBLE_EQ(d.per_path_input, d.trace_rate + cfg.bg_rate_per_path);
  // Common-link limiter for a TCP trace: 2 x (trace + 50% of bg) divided
  // by the compressed pressure 1 + (factor - 1) * 0.55.
  const double pressure = 1.0 + (1.5 - 1.0) * 0.55;
  const double expected =
      2.0 * (d.trace_rate + 0.5 * cfg.bg_rate_per_path) / pressure;
  EXPECT_NEAR(d.limiter_rate, expected, 1.0);
  // Non-common links sized by the utilization knob.
  EXPECT_NEAR(d.net.bw_nc1, d.per_path_input / 0.2, 1.0);
}

TEST(Scenario, NonCommonPlacementSizesPerPath) {
  auto cfg = default_scenario("Skype", 3);
  cfg.placement = Placement::NonCommonLinks;
  const auto d = derive(cfg);
  // UDP traces are open-loop: the raw Table-2 factor applies.
  const double expected =
      (d.trace_rate + 0.5 * cfg.bg_rate_per_path) / 1.5;
  EXPECT_NEAR(d.limiter_rate, expected, 1.0);
}

TEST(Scenario, LimiterSizedAtDefaultBackgroundMix) {
  // The severe-throttling sweep (§6.3) varies the marked fraction without
  // resizing the limiter, so derive() must ignore bg_diff_fraction.
  auto base = default_scenario("Netflix", 3);
  auto severe = base;
  severe.bg_diff_fraction = 0.75;
  EXPECT_DOUBLE_EQ(derive(base).limiter_rate, derive(severe).limiter_rate);
}

TEST(Scenario, SameSeedSameTraceAcrossPhases) {
  auto cfg = default_scenario("Netflix", 7);
  const auto d1 = derive(cfg);
  const auto d2 = derive(cfg);
  EXPECT_DOUBLE_EQ(d1.trace_rate, d2.trace_rate);
}

TEST(Network, FigureOneDeliversToClient) {
  netsim::Simulator sim;
  Rng rng(5);
  NetworkParams params;
  params.bw_nc1 = mbps(20);
  params.bw_nc2 = mbps(20);
  params.bw_c = mbps(40);
  params.rtt1 = milliseconds(30);
  params.rtt2 = milliseconds(50);
  FigureOneNetwork net(sim, params, rng);

  trace::AppTrace t;
  t.transport = trace::Transport::Udp;
  for (int i = 0; i < 100; ++i) t.packets.push_back({i * milliseconds(10), 1000});
  const int id1 = net.start_udp_replay(1, t, 0);
  const int id2 = net.start_udp_replay(2, t, 0);
  net.run(seconds(2));
  const auto r1 = net.report(id1, 0, seconds(1));
  const auto r2 = net.report(id2, 0, seconds(1));
  EXPECT_EQ(r1.meas.deliveries.size(), 100u);
  EXPECT_EQ(r2.meas.deliveries.size(), 100u);
  // One-way delays reflect per-path RTTs (half of RTT each way).
  EXPECT_NEAR(stats::min(r1.meas.rtt_ms), 15.0, 2.0);
  EXPECT_NEAR(stats::min(r2.meas.rtt_ms), 25.0, 2.0);
  EXPECT_EQ(net.limiter_drops(), 0u);
}

TEST(Network, CommonLimiterThrottlesOnlyDifferentiated) {
  netsim::Simulator sim;
  Rng rng(7);
  NetworkParams params;
  params.placement = Placement::CommonLink;
  params.limiter = make_limiter(kbps(400), milliseconds(35), 0.5);
  FigureOneNetwork net(sim, params, rng);

  // 800 kbps offered on each class.
  trace::AppTrace diff, normal;
  diff.transport = normal.transport = trace::Transport::Udp;
  for (int i = 0; i < 500; ++i) {
    diff.packets.push_back({i * milliseconds(10), 1000});
    normal.packets.push_back({i * milliseconds(10), 1000});
  }
  diff.carries_sni = true;    // dscp=1 -> TBF
  normal.carries_sni = false; // dscp=0 -> FIFO
  const int id_diff = net.start_udp_replay(1, diff, 0);
  const int id_norm = net.start_udp_replay(2, normal, 0);
  net.run(seconds(6));
  const auto rd = net.report(id_diff, 0, seconds(5));
  const auto rn = net.report(id_norm, 0, seconds(5));
  EXPECT_GT(rd.meas.loss_rate(), 0.3);   // policed at half the offered rate
  EXPECT_DOUBLE_EQ(rn.meas.loss_rate(), 0.0);
  EXPECT_GT(net.limiter_drops(), 0u);
}

TEST(Phase, SimultaneousOriginalConfirmsAgainstInverted) {
  auto cfg = default_scenario("MSTeams", 11);
  cfg.replay_duration = seconds(20);
  const auto sim = run_simultaneous_experiment(cfg);
  // With the limiter on the common link and the default grid point, WeHe
  // must confirm differentiation on both paths.
  EXPECT_TRUE(sim.differentiation_confirmed);
  EXPECT_GT(sim.original.p1.meas.loss_rate(),
            sim.inverted.p1.meas.loss_rate());
  EXPECT_LT(sim.original.p1.avg_throughput_bps,
            sim.inverted.p1.avg_throughput_bps);
}

TEST(Phase, SinglePhaseHasNoSecondPath) {
  auto cfg = default_scenario("Skype", 13);
  cfg.replay_duration = seconds(10);
  const auto rep = run_phase(cfg, Phase::SingleOriginal);
  EXPECT_FALSE(rep.p1.meas.deliveries.empty());
  EXPECT_TRUE(rep.p2.meas.deliveries.empty());
}

TEST(History, TDiffHasSpreadAndSaneRange) {
  auto cfg = default_scenario("Netflix", 17);
  cfg.replay_duration = seconds(10);
  HistoryConfig hist;
  hist.replays = 5;
  const auto t_diff = build_t_diff_history(cfg, hist);
  ASSERT_EQ(t_diff.size(), 10u);  // all C(5,2) pairs
  for (double v : t_diff) {
    EXPECT_GT(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Wild, FiveIspModels) {
  const auto isps = default_isp_models();
  ASSERT_EQ(isps.size(), 5u);
  EXPECT_TRUE(isps[4].delayed_fixed_rate);  // ISP5
  for (const auto& isp : isps) {
    EXPECT_GT(isp.throttle_factor, 0.0);
    EXPECT_LT(isp.throttle_factor, 1.0);
  }
}

TEST(Wild, PerClientThrottlingLocalized) {
  WildConfig cfg;
  cfg.isp = default_isp_models()[0];
  cfg.seed = 21;
  const auto t_diff = build_wild_t_diff(cfg, 8);
  const auto out = run_wild_test(cfg, t_diff);
  EXPECT_TRUE(out.localization.confirmation_passed);
  EXPECT_TRUE(out.localized);
  EXPECT_EQ(out.localization.mechanism, core::Mechanism::PerClientThrottling);
}

TEST(Wild, DelayedThrottlerEvadesThroughputComparisonMostly) {
  // ISP5's delayed activation breaks the X ~ Y relationship (Figure 4);
  // Table 1 still records occasional successes (16%), so assert on a
  // small batch rather than a single run.
  int per_client = 0;
  for (std::uint64_t seed : {23, 24, 25}) {
    WildConfig cfg;
    cfg.isp = default_isp_models()[4];  // ISP5
    cfg.seed = seed;
    const auto t_diff = build_wild_t_diff(cfg, 8);
    const auto out = run_wild_test(cfg, t_diff);
    EXPECT_TRUE(out.localization.confirmation_passed);
    per_client +=
        out.localization.mechanism == core::Mechanism::PerClientThrottling;
  }
  EXPECT_LE(per_client, 1);
}

}  // namespace
}  // namespace wehey::experiments
