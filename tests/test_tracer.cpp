// The packet tracer.
#include <gtest/gtest.h>

#include <memory>

#include "netsim/link.hpp"
#include "netsim/queue.hpp"
#include "netsim/simulator.hpp"
#include "netsim/tracer.hpp"

namespace wehey::netsim {
namespace {

Packet pkt(FlowId flow, std::uint32_t size, std::uint8_t dscp = 0) {
  Packet p;
  p.flow = flow;
  p.size = size;
  p.payload = size;
  p.dscp = dscp;
  return p;
}

TEST(Tracer, RecordsTransmitsAndDrops) {
  Simulator sim;
  NullSink sink;
  Link link(sim, mbps(8), 0, std::make_unique<FifoDisc>(1500), &sink);
  PacketTracer tracer;
  tracer.attach(link, "l_c");

  // Three packets back-to-back: the first transmits immediately, the
  // second queues (1000 of 1500 bytes), the third overflows.
  for (int i = 0; i < 3; ++i) link.receive(pkt(7, 1000));
  sim.run();

  int transmits = 0, drops = 0;
  for (const auto& ev : tracer.events()) {
    EXPECT_EQ(ev.point, "l_c");
    EXPECT_EQ(ev.flow, 7u);
    if (ev.kind == TraceEventKind::Transmit) ++transmits;
    if (ev.kind == TraceEventKind::Drop) ++drops;
  }
  EXPECT_EQ(transmits, 2);
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(tracer.drops_by_point().at("l_c"), 1u);
}

TEST(Tracer, EventsAreTimeOrdered) {
  Simulator sim;
  NullSink sink;
  Link link(sim, mbps(8), 0, std::make_unique<FifoDisc>(0), &sink);
  PacketTracer tracer;
  tracer.attach(link, "x");
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i * kMillisecond, [&] { link.receive(pkt(1, 500)); });
  }
  sim.run();
  ASSERT_EQ(tracer.size(), 10u);
  for (std::size_t i = 1; i < tracer.events().size(); ++i) {
    EXPECT_GE(tracer.events()[i].at, tracer.events()[i - 1].at);
  }
}

TEST(Tracer, FlowFilterAndCapacity) {
  Simulator sim;
  NullSink sink;
  Link link(sim, kGbps, 0, std::make_unique<FifoDisc>(0), &sink);
  PacketTracer tracer;
  tracer.set_capacity(5);
  tracer.attach(link, "x");
  for (int i = 0; i < 10; ++i) link.receive(pkt(i % 2 ? 1 : 2, 100));
  sim.run();
  EXPECT_EQ(tracer.size(), 5u);
  EXPECT_EQ(tracer.suppressed(), 5u);
  for (const auto& ev : tracer.flow_events(1)) EXPECT_EQ(ev.flow, 1u);
}

TEST(Tracer, DumpWritesAsciiTrace) {
  Simulator sim;
  NullSink sink;
  Link link(sim, mbps(10), 0, std::make_unique<FifoDisc>(0), &sink);
  PacketTracer tracer;
  tracer.attach(link, "l1");
  link.receive(pkt(3, 1250, kDscpDifferentiated));
  sim.run();

  char buf[256] = {};
  std::FILE* mem = fmemopen(buf, sizeof buf, "w");
  ASSERT_NE(mem, nullptr);
  tracer.dump(mem);
  std::fclose(mem);
  const std::string text(buf);
  EXPECT_NE(text.find("t l1 flow=3 dscp=1"), std::string::npos);
  EXPECT_NE(text.find("size=1250"), std::string::npos);
}

}  // namespace
}  // namespace wehey::netsim
