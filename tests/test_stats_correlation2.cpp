// Kendall's tau and the permutation-based Spearman p-value.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/correlation.hpp"

namespace wehey::stats {
namespace {

TEST(Kendall, PerfectMonotone) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{10, 20, 25, 40, 400};
  const auto r = kendall(xs, ys);
  ASSERT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.coefficient, 1.0);
  EXPECT_LT(r.p_value, 0.05);
}

TEST(Kendall, PerfectReverse) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(kendall(xs, ys).coefficient, -1.0);
}

TEST(Kendall, ScipyCrossCheck) {
  // scipy.stats.kendalltau([12,2,1,12,2],[1,4,7,1,0])
  //   tau-b = -0.4714045, p ~ 0.2827 (scipy uses the exact/перm method for
  //   tiny n; the normal approximation lands in the same region).
  const std::vector<double> xs{12, 2, 1, 12, 2};
  const std::vector<double> ys{1, 4, 7, 1, 0};
  const auto r = kendall(xs, ys);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.coefficient, -0.4714045, 1e-6);
  EXPECT_GT(r.p_value, 0.1);
}

TEST(Kendall, InvalidOnConstantSeries) {
  const std::vector<double> xs{3, 3, 3, 3};
  const std::vector<double> ys{1, 2, 3, 4};
  EXPECT_FALSE(kendall(xs, ys).valid);
}

TEST(Kendall, AgreesWithSpearmanInSign) {
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(rng.uniform());
    ys.push_back(0.8 * xs.back() + 0.2 * rng.uniform());
  }
  const auto k = kendall(xs, ys);
  const auto s = spearman(xs, ys);
  EXPECT_GT(k.coefficient, 0.0);
  EXPECT_GT(s.coefficient, 0.0);
  // |tau| <= |rho| holds for most monotone-dependent data.
  EXPECT_LT(k.coefficient, s.coefficient + 0.05);
}

TEST(SpearmanPermutation, MatchesAsymptoticOnLongSeries) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 60; ++i) {
    xs.push_back(rng.uniform());
    ys.push_back(0.5 * xs.back() + 0.5 * rng.uniform());
  }
  Rng perm_rng(7);
  const auto asym = spearman(xs, ys, Alternative::Greater);
  const auto perm = spearman_permutation(xs, ys, perm_rng, 4000,
                                         Alternative::Greater);
  ASSERT_TRUE(perm.valid);
  EXPECT_DOUBLE_EQ(perm.coefficient, asym.coefficient);
  EXPECT_NEAR(perm.p_value, asym.p_value, 0.02);
}

TEST(SpearmanPermutation, UncorrelatedGivesLargeP) {
  Rng rng(9);
  std::vector<double> xs, ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(rng.uniform());
    ys.push_back(rng.uniform());
  }
  Rng perm_rng(11);
  const auto perm =
      spearman_permutation(xs, ys, perm_rng, 2000, Alternative::TwoSided);
  EXPECT_GT(perm.p_value, 0.05);
}

TEST(SpearmanPermutation, NeverExactlyZero) {
  // Add-one smoothing: even a perfect correlation has p >= 1/(iters+1).
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> ys{1, 2, 3, 4, 5, 6, 7, 8};
  Rng rng(13);
  const auto perm =
      spearman_permutation(xs, ys, rng, 1000, Alternative::Greater);
  EXPECT_GT(perm.p_value, 0.0);
  EXPECT_LT(perm.p_value, 0.01);
}

TEST(SpearmanPermutation, ShortSeriesUsable) {
  // n = 5 — too short for the t-approximation to be trustworthy; the
  // permutation test still yields a calibrated p-value.
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 1, 4, 3, 5};
  Rng rng(17);
  const auto perm =
      spearman_permutation(xs, ys, rng, 5000, Alternative::Greater);
  ASSERT_TRUE(perm.valid);
  // rho = 0.7; exact one-sided p for n=5 is 0.0667.
  EXPECT_NEAR(perm.p_value, 0.0667, 0.02);
}

}  // namespace
}  // namespace wehey::stats
