#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "topology/construction.hpp"
#include "topology/database.hpp"
#include "topology/synthetic.hpp"
#include "topology/traceroute.hpp"

namespace wehey::topology {
namespace {

Hop hop(std::string ip, Asn asn, bool responded = true) {
  Hop h;
  h.reported_ips.push_back(std::move(ip));
  h.asn = asn;
  h.responded = responded;
  return h;
}

/// server --(transit)--> border --> agg --> client, all annotated.
TracerouteRecord record(const std::string& server,
                        const std::string& transit,
                        const std::string& border, const std::string& agg,
                        const std::string& client, Asn client_asn) {
  TracerouteRecord r;
  r.server = server;
  r.dst_ip = client;
  r.dst_asn = client_asn;
  // First hop is inside the server's own network: unique per server.
  r.hops.push_back(hop("10.0.0." + server, 65001));
  r.hops.push_back(hop(transit, 65100));
  r.hops.push_back(hop(border, client_asn));
  r.hops.push_back(hop(agg, client_asn));
  r.hops.push_back(hop(client, client_asn));
  return r;
}

TEST(Traceroute, Prefix24) {
  EXPECT_EQ(ipv4_prefix24("100.1.2.77"), "100.1.2.0/24");
}

TEST(Traceroute, Prefix48) {
  EXPECT_EQ(ipv6_prefix48("2001:db8:1:2:3:4:5:6"), "2001:db8:1::/48");
  // "::" compression in every position.
  EXPECT_EQ(ipv6_prefix48("2001:db8::7"), "2001:db8:0::/48");
  EXPECT_EQ(ipv6_prefix48("2001:db8:9::"), "2001:db8:9::/48");
  EXPECT_EQ(ipv6_prefix48("::1"), "0:0:0::/48");
}

TEST(Traceroute, ClientPrefixPicksFamily) {
  EXPECT_EQ(client_prefix("100.1.2.77"), "100.1.2.0/24");
  EXPECT_EQ(client_prefix("2001:db8:1::77"), "2001:db8:1::/48");
}

TEST(Database, Ipv6ClientsKeyedBySlash48) {
  TopologyDatabase db;
  TopologyEntry e;
  e.dst_prefix = "2001:db8:1::/48";
  e.dst_asn = 64501;
  e.pairs.push_back({"mlab1", "mlab2", "2001:db8:1::1"});
  db.ingest({e});
  // Any address inside the /48 resolves to the entry.
  EXPECT_TRUE(db.pick("2001:db8:1:55::abcd").has_value());
  EXPECT_FALSE(db.pick("2001:db8:2::1").has_value());
}

TEST(Traceroute, ConditionA_LastHopAsn) {
  auto r = record("s1", "172.16.0.1", "100.0.254.1", "100.0.1.1",
                  "100.0.1.77", 64500);
  EXPECT_TRUE(r.last_hop_matches_dst_asn());
  // ISP blocks ICMP: all ISP hops unresponsive -> last responding hop is
  // transit.
  for (auto& h : r.hops) {
    if (h.asn == 64500) h.responded = false;
  }
  EXPECT_FALSE(r.last_hop_matches_dst_asn());
}

TEST(Traceroute, ConditionB_Aliasing) {
  auto r = record("s1", "172.16.0.1", "100.0.254.1", "100.0.1.1",
                  "100.0.1.77", 64500);
  EXPECT_TRUE(r.alias_consistent());
  r.hops[1].reported_ips.push_back("172.16.0.9");
  EXPECT_FALSE(r.alias_consistent());
}

TEST(SuitablePair, ConvergenceInsideIsp) {
  const auto a = record("s1", "172.16.1.1", "100.0.254.0", "100.0.1.1",
                        "100.0.1.77", 64500);
  const auto b = record("s2", "172.16.2.1", "100.0.254.1", "100.0.1.1",
                        "100.0.1.77", 64500);
  std::string convergence;
  EXPECT_TRUE(suitable_pair(a, b, 64500, &convergence));
  EXPECT_EQ(convergence, "100.0.1.1");  // the shared aggregation router
}

TEST(SuitablePair, RejectsSharedTransit) {
  // Same transit router IP outside the ISP: paths converge too early.
  const auto a = record("s1", "172.16.1.1", "100.0.254.0", "100.0.1.1",
                        "100.0.1.77", 64500);
  const auto b = record("s2", "172.16.1.1", "100.0.254.1", "100.0.1.1",
                        "100.0.1.77", 64500);
  EXPECT_FALSE(suitable_pair(a, b, 64500));
}

TEST(SuitablePair, RejectsSameServer) {
  const auto a = record("s1", "172.16.1.1", "100.0.254.0", "100.0.1.1",
                        "100.0.1.77", 64500);
  EXPECT_FALSE(suitable_pair(a, a, 64500));
}

TEST(SuitablePair, DestinationAloneIsNotConvergence) {
  // The two paths share only the destination itself: no intermediate
  // common node, hence not suitable.
  auto a = record("s1", "172.16.1.1", "100.0.254.0", "100.0.6.1",
                  "100.0.1.77", 64500);
  auto b = record("s2", "172.16.2.1", "100.0.254.1", "100.0.7.1",
                  "100.0.1.77", 64500);
  EXPECT_FALSE(suitable_pair(a, b, 64500));
}

TEST(Construction, FindsTopologyFromCleanRecords) {
  std::vector<TracerouteRecord> records;
  records.push_back(record("s1", "172.16.1.1", "100.0.254.0", "100.0.1.1",
                           "100.0.1.77", 64500));
  records.push_back(record("s2", "172.16.2.1", "100.0.254.1", "100.0.1.1",
                           "100.0.1.77", 64500));
  TopologyConstructor tc;
  const auto out = tc.construct(records);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst_prefix, "100.0.1.0/24");
  EXPECT_EQ(out[0].dst_asn, 64500u);
  ASSERT_EQ(out[0].pairs.size(), 1u);
  EXPECT_EQ(out[0].pairs[0].server1, "s1");
  EXPECT_EQ(out[0].pairs[0].server2, "s2");
}

TEST(Construction, FiltersIncompleteAndAliased) {
  std::vector<TracerouteRecord> records;
  auto incomplete = record("s1", "172.16.1.1", "100.0.254.0", "100.0.1.1",
                           "100.0.1.77", 64500);
  for (auto& h : incomplete.hops) {
    if (h.asn == 64500) h.responded = false;
  }
  auto aliased = record("s2", "172.16.2.1", "100.0.254.1", "100.0.1.1",
                        "100.0.1.77", 64500);
  aliased.hops[1].reported_ips.push_back("172.16.2.9");
  records.push_back(incomplete);
  records.push_back(aliased);
  TopologyConstructor tc;
  const auto out = tc.construct(records);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tc.stats().discarded_incomplete, 1u);
  EXPECT_EQ(tc.stats().discarded_aliased, 1u);
}

TEST(Construction, MatchesSyntheticGroundTruth) {
  Rng rng(7);
  SyntheticConfig cfg;
  cfg.num_clients = 150;
  const auto ds = generate_mlab_dataset(cfg, rng);
  TopologyConstructor tc;
  const auto out = tc.construct(ds.records);

  // Index TC output by prefix.
  std::set<std::string> found;
  for (const auto& e : out) found.insert(e.dst_prefix);

  std::size_t agree = 0, total = 0;
  for (const auto& truth : ds.truth) {
    if (!truth.has_any_record) continue;
    ++total;
    const bool tc_found = found.count(ipv4_prefix24(truth.ip)) > 0;
    if (tc_found == truth.has_suitable_topology) ++agree;
    // TC must never claim a topology the generator says cannot exist.
    if (!truth.has_suitable_topology) {
      EXPECT_FALSE(tc_found) << truth.ip;
    }
  }
  ASSERT_GT(total, 50u);
  // And it should find nearly all that do exist.
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.95);
}

TEST(Database, IngestLookupInvalidate) {
  TopologyDatabase db;
  TopologyEntry e;
  e.dst_prefix = "100.1.5.0/24";
  e.dst_asn = 64501;
  e.pairs.push_back({"mlab1", "mlab2", "100.1.5.1"});
  e.pairs.push_back({"mlab3", "mlab4", "100.1.5.1"});
  db.ingest({e});
  EXPECT_EQ(db.prefix_count(), 1u);
  EXPECT_EQ(db.pair_count(), 2u);

  const auto pairs = db.lookup("100.1.5.200");
  ASSERT_EQ(pairs.size(), 2u);
  const auto pick = db.pick("100.1.5.200");
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->server1, "mlab1");

  db.invalidate("100.1.5.200", *pick);
  EXPECT_EQ(db.pair_count(), 1u);
  db.invalidate("100.1.5.200", *db.pick("100.1.5.200"));
  EXPECT_EQ(db.prefix_count(), 0u);
  EXPECT_FALSE(db.pick("100.1.5.200").has_value());
}

TEST(Database, LookupUnknownClient) {
  TopologyDatabase db;
  EXPECT_TRUE(db.lookup("9.9.9.9").empty());
  EXPECT_FALSE(db.pick("9.9.9.9").has_value());
}

TEST(Synthetic, CoverageStatisticsInRealisticRange) {
  Rng rng(13);
  SyntheticConfig cfg;
  cfg.num_clients = 400;
  const auto ds = generate_mlab_dataset(cfg, rng);
  std::size_t with_complete = 0, with_topology = 0;
  for (const auto& t : ds.truth) {
    with_complete += t.has_complete_record;
    if (t.has_complete_record) with_topology += t.has_suitable_topology;
  }
  // §3.3 reports ~52% of clients with >=1 complete traceroute and ~74% of
  // those with a suitable topology; the generator's defaults land nearby.
  const double complete_rate =
      static_cast<double>(with_complete) / cfg.num_clients;
  const double topo_rate =
      static_cast<double>(with_topology) / static_cast<double>(with_complete);
  EXPECT_GT(complete_rate, 0.3);
  EXPECT_LT(complete_rate, 0.7);
  EXPECT_GT(topo_rate, 0.5);
  EXPECT_LT(topo_rate, 0.95);
}

}  // namespace
}  // namespace wehey::topology
