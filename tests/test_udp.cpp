#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "trace/trace.hpp"
#include "transport/udp.hpp"

namespace wehey::transport {
namespace {

using netsim::Demux;
using netsim::FifoDisc;
using netsim::Link;
using netsim::PacketIdSource;
using netsim::RateLimiterDisc;
using netsim::Simulator;
using netsim::TbfDisc;

trace::AppTrace cbr_trace(int packets, std::uint32_t size, Time gap) {
  trace::AppTrace t;
  t.transport = trace::Transport::Udp;
  for (int i = 0; i < packets; ++i) {
    t.packets.push_back({i * gap, size});
  }
  return t;
}

TEST(UdpReplay, DeliversAllOnCleanPath) {
  Simulator sim;
  PacketIdSource ids;
  Demux demux;
  Link link(sim, mbps(100), milliseconds(10),
            std::make_unique<FifoDisc>(0), &demux);
  UdpReplayReceiver rx(sim);
  demux.add_route(1, &rx);
  const auto t = cbr_trace(100, 1000, milliseconds(10));
  UdpReplaySender tx(sim, ids, UdpConfig{}, 1, 0, &link, t, 0);
  sim.run();
  rx.finalize(tx.packets_scheduled(), sim.now());
  EXPECT_EQ(rx.received_packets(), 100u);
  EXPECT_TRUE(rx.loss_times().empty());
  EXPECT_EQ(tx.packets_scheduled(), 100u);
  EXPECT_EQ(tx.tx_times().size(), 100u);
}

TEST(UdpReplay, TimingFollowsTrace) {
  Simulator sim;
  PacketIdSource ids;
  Demux demux;
  Link link(sim, kGbps, milliseconds(5), std::make_unique<FifoDisc>(0),
            &demux);
  UdpReplayReceiver rx(sim);
  demux.add_route(1, &rx);
  const auto t = cbr_trace(10, 500, milliseconds(20));
  UdpReplaySender tx(sim, ids, UdpConfig{}, 1, 0, &link, t, seconds(1));
  sim.run();
  ASSERT_EQ(rx.deliveries().size(), 10u);
  // First packet: sent at 1 s, arrives after ~5 ms propagation.
  EXPECT_NEAR(to_seconds(rx.deliveries().front().at), 1.005, 0.001);
  EXPECT_NEAR(to_seconds(rx.deliveries().back().at), 1.185, 0.001);
}

TEST(UdpReplay, DetectsLossFromGaps) {
  Simulator sim;
  PacketIdSource ids;
  Demux demux;
  // Policer that passes ~half the offered rate.
  auto fifo = std::make_unique<FifoDisc>(0);
  auto tbf = std::make_unique<TbfDisc>(kbps(400), 2000, 2000);
  Link link(sim, mbps(100), milliseconds(10),
            std::make_unique<RateLimiterDisc>(std::move(fifo), std::move(tbf)),
            &demux);
  UdpReplayReceiver rx(sim);
  demux.add_route(1, &rx);
  // 100 kB/s = 800 kbps offered against 400 kbps policed.
  const auto t = cbr_trace(500, 1000, milliseconds(10));
  UdpReplaySender tx(sim, ids, UdpConfig{}, 1,
                     netsim::kDscpDifferentiated, &link, t, 0);
  sim.run();
  rx.finalize(tx.packets_scheduled(), sim.now());
  const double loss_rate =
      static_cast<double>(rx.loss_times().size()) / 500.0;
  EXPECT_NEAR(loss_rate, 0.5, 0.12);
  EXPECT_EQ(rx.received_packets() + rx.loss_times().size(), 500u);
}

TEST(UdpReplay, FinalizeAccountsTailLosses) {
  Simulator sim;
  UdpReplayReceiver rx(sim);
  // Nothing ever arrives; finalize charges all 5 packets at the given time.
  rx.finalize(5, seconds(45));
  ASSERT_EQ(rx.loss_times().size(), 5u);
  for (Time t : rx.loss_times()) EXPECT_EQ(t, seconds(45));
}

TEST(UdpReplay, MeasurementAssembly) {
  Simulator sim;
  PacketIdSource ids;
  Demux demux;
  Link link(sim, mbps(100), milliseconds(10),
            std::make_unique<FifoDisc>(0), &demux);
  UdpReplayReceiver rx(sim);
  demux.add_route(1, &rx);
  const auto t = cbr_trace(50, 1200, milliseconds(10));
  UdpReplaySender tx(sim, ids, UdpConfig{}, 1, 0, &link, t, 0);
  sim.run();
  rx.finalize(tx.packets_scheduled(), sim.now());
  const auto m = udp_measurement(tx, rx);
  EXPECT_EQ(m.tx_times.size(), 50u);
  EXPECT_EQ(m.deliveries.size(), 50u);
  EXPECT_TRUE(m.loss_times.empty());
  EXPECT_EQ(m.start, 0);
  EXPECT_EQ(m.end, t.duration());
  // One-way delay ~10 ms.
  ASSERT_FALSE(m.rtt_ms.empty());
  EXPECT_NEAR(m.rtt_ms.front(), 10.0, 1.0);
}

TEST(UdpReplay, PoissonTraceStillDeliversEverything) {
  Simulator sim;
  PacketIdSource ids;
  Rng rng(5);
  Demux demux;
  Link link(sim, mbps(100), milliseconds(10),
            std::make_unique<FifoDisc>(0), &demux);
  UdpReplayReceiver rx(sim);
  demux.add_route(1, &rx);
  auto t = cbr_trace(200, 800, milliseconds(5));
  t = trace::poissonize(t, rng);
  UdpReplaySender tx(sim, ids, UdpConfig{}, 1, 0, &link, t, 0);
  sim.run();
  rx.finalize(tx.packets_scheduled(), sim.now());
  EXPECT_EQ(rx.received_packets(), 200u);
  EXPECT_TRUE(rx.loss_times().empty());
}

}  // namespace
}  // namespace wehey::transport
