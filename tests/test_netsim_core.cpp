// Simulator event queue, queue disciplines, links, demux.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "netsim/link.hpp"
#include "netsim/measure.hpp"
#include "netsim/queue.hpp"
#include "netsim/simulator.hpp"

namespace wehey::netsim {
namespace {

Packet make_packet(std::uint32_t size, std::uint8_t dscp = 0,
                   FlowId flow = 1) {
  Packet p;
  p.flow = flow;
  p.size = size;
  p.payload = size;
  p.dscp = dscp;
  return p;
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(3), [&] { order.push_back(3); });
  sim.schedule(milliseconds(1), [&] { order.push_back(1); });
  sim.schedule(milliseconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(3));
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(1), [&] { order.push_back(1); });
  sim.schedule(milliseconds(1), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilStopsClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(seconds(10), [&] { ++fired; });
  sim.run(seconds(5));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), seconds(5));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int count = 0;
  sim.schedule(milliseconds(1), [&] {
    ++count;
    sim.schedule(milliseconds(1), [&] { ++count; });
  });
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), milliseconds(2));
}

TEST(Simulator, ClearDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule(milliseconds(1), [&] { ++fired; });
  sim.clear();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, ClearPreservesClock) {
  Simulator sim;
  sim.schedule(milliseconds(5), [] {});
  sim.run();
  ASSERT_EQ(sim.now(), milliseconds(5));
  sim.schedule(milliseconds(5), [] {});
  sim.clear();
  // Phases of one experiment share a timeline: clear() drops events but
  // must never rewind the clock.
  EXPECT_EQ(sim.now(), milliseconds(5));
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.schedule(milliseconds(1), [] {});  // scheduling again still works
  sim.run();
  EXPECT_EQ(sim.now(), milliseconds(6));
}

// Regression guard for the EventHeap rewrite: a large batch of same-time
// events — pushed both up-front and from inside running events, with pops
// interleaved so action slots get recycled — must fire in exact insertion
// order.
TEST(Simulator, SameTimeEventsFireInInsertionOrderUnderChurn) {
  Simulator sim;
  std::vector<int> order;
  static constexpr int kBatch = 200;
  for (int i = 0; i < kBatch; ++i) {
    sim.schedule(milliseconds(1), [&order, i] { order.push_back(i); });
  }
  // From the first same-time event, append another same-time batch; it
  // must fire after every already-queued event at that timestamp.
  sim.schedule(milliseconds(1), [&] {
    for (int i = 0; i < kBatch; ++i) {
      sim.schedule(0, [&order, i] { order.push_back(kBatch + 1 + i); });
    }
    order.push_back(kBatch);
  });
  sim.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(2 * kBatch + 1));
  // order[kBatch] is the appending event itself; indices are contiguous.
  for (int i = 0; i < 2 * kBatch + 1; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "position " << i;
  }
}

TEST(Simulator, RescheduleCurrentRepeatsWithoutCopyingState) {
  struct Counting {
    int copies = 0;
    Counting() = default;
    Counting(const Counting& o) : copies(o.copies + 1) {}
    Counting(Counting&&) = default;
  };
  Simulator sim;
  std::vector<Time> fire_times;
  int ticks = 0;
  sim.schedule(milliseconds(1), [&, payload = Counting{}] {
    fire_times.push_back(sim.now());
    // The capture was moved into its slot at schedule() and is never
    // copied again — not even across repeats.
    EXPECT_EQ(payload.copies, 0);
    if (++ticks < 4) sim.reschedule_current(milliseconds(2));
  });
  sim.run();
  EXPECT_EQ(fire_times, (std::vector<Time>{milliseconds(1), milliseconds(3),
                                           milliseconds(5), milliseconds(7)}));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RescheduleCurrentOrdersAfterEventsTheActionScheduled) {
  // The re-arm takes effect when the action returns, so at an equal
  // timestamp the repeat fires after events the action itself scheduled.
  Simulator sim;
  std::vector<int> order;
  bool first = true;
  sim.schedule(milliseconds(1), [&] {
    if (first) {
      first = false;
      sim.schedule(milliseconds(2), [&] { order.push_back(1); });
      sim.reschedule_current(milliseconds(2));
    } else {
      order.push_back(2);
    }
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(InplaceAction, InlineCaptureAvoidsHeapAndRunsDestructor) {
  struct Tracker {
    int* destroyed;
    explicit Tracker(int* d) : destroyed(d) {}
    Tracker(Tracker&& o) noexcept : destroyed(o.destroyed) {
      o.destroyed = nullptr;
    }
    ~Tracker() {
      if (destroyed != nullptr) ++*destroyed;
    }
  };
  int destroyed = 0;
  int fired = 0;
  {
    InplaceAction a([t = Tracker(&destroyed), &fired] { ++fired; });
    static_assert(sizeof(Tracker) <= InplaceAction::kInlineCapacity);
    a();
    EXPECT_EQ(fired, 1);
    InplaceAction b = std::move(a);
    b();
    EXPECT_EQ(fired, 2);
  }
  EXPECT_EQ(destroyed, 1);  // exactly one live Tracker across the moves
}

TEST(InplaceAction, OversizedCaptureFallsBackToHeap) {
  struct Big {
    std::array<std::byte, InplaceAction::kInlineCapacity + 64> payload{};
    int value = 7;
  };
  Big big;
  int got = 0;
  InplaceAction a([big, &got] { got = big.value; });
  InplaceAction b = std::move(a);
  b();
  EXPECT_EQ(got, 7);
}

TEST(PacketRing, FifoOrderAcrossGrowthAndWraparound) {
  PacketRing ring;
  std::uint64_t next_push = 0, next_pop = 0;
  // Interleave pushes and pops so head wraps while the buffer grows.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) {
      auto p = make_packet(100);
      p.id = next_push++;
      ring.push_back(p);
    }
    for (int i = 0; i < 5 && !ring.empty(); ++i) {
      ASSERT_EQ(ring.front().id, next_pop++);
      ring.pop_front();
    }
  }
  while (!ring.empty()) {
    ASSERT_EQ(ring.front().id, next_pop++);
    ring.pop_front();
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(Fifo, DropsWhenFull) {
  FifoDisc q(250);
  EXPECT_TRUE(q.enqueue(make_packet(100), 0));
  EXPECT_TRUE(q.enqueue(make_packet(100), 0));
  EXPECT_FALSE(q.enqueue(make_packet(100), 0));  // 300 > 250
  EXPECT_EQ(q.drop_count(), 1u);
  EXPECT_EQ(q.backlog_bytes(), 200);
  EXPECT_EQ(q.backlog_packets(), 2u);
}

TEST(Fifo, FifoOrder) {
  FifoDisc q(0);  // unlimited
  auto a = make_packet(100);
  a.seq = 1;
  auto b = make_packet(100);
  b.seq = 2;
  q.enqueue(a, 0);
  q.enqueue(b, 0);
  EXPECT_EQ(q.dequeue(0)->seq, 1u);
  EXPECT_EQ(q.dequeue(0)->seq, 2u);
  EXPECT_FALSE(q.dequeue(0).has_value());
}

TEST(Fifo, NextReady) {
  FifoDisc q(0);
  EXPECT_EQ(q.next_ready(5), kNever);
  q.enqueue(make_packet(10), 5);
  EXPECT_EQ(q.next_ready(5), 5);
}

TEST(Tbf, PassesWithinBurst) {
  // 1 Mbps, 10 kB bucket: two 4 kB packets pass immediately.
  TbfDisc q(1e6, 10000, 100000);
  q.enqueue(make_packet(4000), 0);
  q.enqueue(make_packet(4000), 0);
  EXPECT_TRUE(q.dequeue(0).has_value());
  EXPECT_TRUE(q.dequeue(0).has_value());
}

TEST(Tbf, GatesWhenTokensExhausted) {
  TbfDisc q(1e6, 10000, 100000);
  q.enqueue(make_packet(8000), 0);
  q.enqueue(make_packet(8000), 0);
  EXPECT_TRUE(q.dequeue(0).has_value());
  // 2000 tokens left, need 8000: 6000 bytes at 1 Mbps = 48 ms.
  EXPECT_FALSE(q.dequeue(0).has_value());
  const Time ready = q.next_ready(0);
  EXPECT_NEAR(to_seconds(ready), 0.048, 1e-6);
  EXPECT_FALSE(q.dequeue(ready - kMillisecond).has_value());
  EXPECT_TRUE(q.dequeue(ready).has_value());
}

TEST(Tbf, TokensCappedAtBurst) {
  TbfDisc q(1e6, 10000, 100000);
  EXPECT_DOUBLE_EQ(q.tokens(seconds(100)), 10000.0);
}

TEST(Tbf, PolicesWhenQueueFull) {
  TbfDisc q(1e6, 1500, 3000);
  EXPECT_TRUE(q.enqueue(make_packet(1500), 0));
  EXPECT_TRUE(q.enqueue(make_packet(1500), 0));
  EXPECT_FALSE(q.enqueue(make_packet(1500), 0));
  EXPECT_EQ(q.drop_count(), 1u);
}

TEST(Tbf, LongRunRateMatchesConfig) {
  // Offer 2x the rate for 10 simulated seconds; delivered bytes must
  // approach rate * time (property of the token bucket).
  const Rate rate = 2e6;
  TbfDisc q(rate, 25000, 50000);
  Time now = 0;
  std::int64_t delivered = 0;
  const Time step = microseconds(500);  // 1000 B / 0.5 ms = 16 Mbps offered
  for (int i = 0; i < 20000; ++i) {
    q.enqueue(make_packet(1000), now);
    while (auto p = q.dequeue(now)) delivered += p->size;
    now += step;
  }
  const double achieved = static_cast<double>(delivered) * 8 / to_seconds(now);
  EXPECT_NEAR(achieved / rate, 1.0, 0.05);
}

TEST(RateLimiter, ClassifiesByDscp) {
  auto fifo = std::make_unique<FifoDisc>(0);
  auto tbf = std::make_unique<TbfDisc>(1e6, 3000, 3000);
  RateLimiterDisc rl(std::move(fifo), std::move(tbf));
  // Default-class traffic is never token-gated.
  for (int i = 0; i < 10; ++i) {
    rl.enqueue(make_packet(1500, kDscpDefault), 0);
  }
  int forwarded = 0;
  while (rl.dequeue(0)) ++forwarded;
  EXPECT_EQ(forwarded, 10);

  // Differentiated traffic is policed: burst 3000, queue 3000.
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    accepted += rl.enqueue(make_packet(1500, kDscpDifferentiated), 0);
  }
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(rl.throttled_drops(), 8u);
}

TEST(RateLimiter, RoundRobinAlternates) {
  auto fifo = std::make_unique<FifoDisc>(0);
  auto tbf = std::make_unique<TbfDisc>(1e9, 100000, 100000);
  RateLimiterDisc rl(std::move(fifo), std::move(tbf));
  for (int i = 0; i < 3; ++i) {
    auto d = make_packet(100, kDscpDefault);
    d.seq = 10 + i;
    rl.enqueue(d, 0);
    auto t = make_packet(100, kDscpDifferentiated);
    t.seq = 20 + i;
    rl.enqueue(t, 0);
  }
  // With both classes backlogged, consecutive dequeues alternate classes.
  std::vector<std::uint64_t> seqs;
  while (auto p = rl.dequeue(0)) seqs.push_back(p->seq);
  ASSERT_EQ(seqs.size(), 6u);
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    const bool prev_throttled = seqs[i - 1] >= 20;
    const bool cur_throttled = seqs[i] >= 20;
    EXPECT_NE(prev_throttled, cur_throttled);
  }
}

TEST(Link, SerializationAndPropagation) {
  Simulator sim;
  struct Recorder final : PacketSink {
    std::vector<Time> arrivals;
    Simulator* sim = nullptr;
    void receive(Packet) override { arrivals.push_back(sim->now()); }
  } rec;
  rec.sim = &sim;
  // 1500 B at 12 Mbps = 1 ms serialization; 5 ms propagation.
  Link link(sim, mbps(12), milliseconds(5), std::make_unique<FifoDisc>(0),
            &rec);
  link.receive(make_packet(1500));
  link.receive(make_packet(1500));
  sim.run();
  ASSERT_EQ(rec.arrivals.size(), 2u);
  EXPECT_EQ(rec.arrivals[0], milliseconds(6));
  EXPECT_EQ(rec.arrivals[1], milliseconds(7));  // queued behind the first
  EXPECT_EQ(link.delivered_packets(), 2u);
}

TEST(Link, TokenGatedWakeup) {
  Simulator sim;
  NullSink sink;
  // TBF allows 1000 B immediately, then 1000 B per 8 ms (1 Mbps).
  Link link(sim, kGbps, 0,
            std::make_unique<TbfDisc>(1e6, 1000, 100000), &sink);
  for (int i = 0; i < 3; ++i) link.receive(make_packet(1000));
  sim.run();
  EXPECT_EQ(sink.packets(), 3u);
  // Third packet waits two refill periods: ~16 ms.
  EXPECT_NEAR(to_seconds(sim.now()), 0.016, 0.001);
}

TEST(Link, BandwidthChangeAffectsLaterPackets) {
  Simulator sim;
  struct Recorder final : PacketSink {
    std::vector<Time> arrivals;
    Simulator* sim = nullptr;
    void receive(Packet) override { arrivals.push_back(sim->now()); }
  } rec;
  rec.sim = &sim;
  Link link(sim, mbps(12), 0, std::make_unique<FifoDisc>(0), &rec);
  link.receive(make_packet(1500));  // 1 ms at 12 Mbps
  sim.run();
  link.set_bandwidth(mbps(6));
  sim.schedule(0, [&] { link.receive(make_packet(1500)); });  // 2 ms at 6 Mbps
  sim.run();
  ASSERT_EQ(rec.arrivals.size(), 2u);
  EXPECT_EQ(rec.arrivals[0], milliseconds(1));
  EXPECT_EQ(rec.arrivals[1], milliseconds(3));
}

TEST(Pipe, FixedDelay) {
  Simulator sim;
  struct Recorder final : PacketSink {
    Time arrival = -1;
    Simulator* sim = nullptr;
    void receive(Packet) override { arrival = sim->now(); }
  } rec;
  rec.sim = &sim;
  Pipe pipe(sim, milliseconds(17), &rec);
  pipe.receive(make_packet(52));
  sim.run();
  EXPECT_EQ(rec.arrival, milliseconds(17));
}

TEST(Demux, RoutesByFlow) {
  Demux demux;
  NullSink a, b;
  demux.add_route(1, &a);
  demux.add_route(2, &b);
  demux.receive(make_packet(100, 0, 1));
  demux.receive(make_packet(100, 0, 2));
  demux.receive(make_packet(100, 0, 2));
  demux.receive(make_packet(100, 0, 99));  // unrouted
  EXPECT_EQ(a.packets(), 1u);
  EXPECT_EQ(b.packets(), 2u);
  EXPECT_EQ(demux.unrouted_packets(), 1u);
}

TEST(Measure, ThroughputSamples) {
  ReplayMeasurement m;
  m.start = 0;
  m.end = seconds(10);
  // 1000 bytes at t=0.5 s and 2000 bytes at t=9.5 s.
  m.deliveries = {{milliseconds(500), 1000}, {milliseconds(9500), 2000}};
  const auto samples = m.throughput_samples(10);
  ASSERT_EQ(samples.size(), 10u);
  EXPECT_DOUBLE_EQ(samples[0], 1000 * 8.0 / 1.0);
  EXPECT_DOUBLE_EQ(samples[9], 2000 * 8.0 / 1.0);
  for (int i = 1; i < 9; ++i) EXPECT_DOUBLE_EQ(samples[i], 0.0);
}

TEST(Measure, LossBinning) {
  ReplayMeasurement m;
  m.start = 0;
  m.end = seconds(2);
  m.tx_times = {milliseconds(100), milliseconds(200), milliseconds(1100)};
  m.loss_times = {milliseconds(150), milliseconds(1900)};
  const auto s = bin_losses(m, seconds(1));
  ASSERT_EQ(s.txed.size(), 2u);
  EXPECT_EQ(s.txed[0], 2u);
  EXPECT_EQ(s.txed[1], 1u);
  EXPECT_EQ(s.lost[0], 1u);
  EXPECT_EQ(s.lost[1], 1u);
}

TEST(Measure, LossRateAndAverages) {
  ReplayMeasurement m;
  m.start = 0;
  m.end = seconds(1);
  m.tx_times = {1, 2, 3, 4};
  m.loss_times = {5};
  m.deliveries = {{milliseconds(100), 125000}};
  EXPECT_DOUBLE_EQ(m.loss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(m.average_throughput(), mbps(1));
}

}  // namespace
}  // namespace wehey::netsim
