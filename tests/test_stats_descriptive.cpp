#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.hpp"

namespace wehey::stats {
namespace {

TEST(Descriptive, MeanBasic) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Descriptive, VarianceUnbiased) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  // Population variance is 4; sample (n-1) variance is 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> xs{3, -1, 7, 0};
  EXPECT_DOUBLE_EQ(min(xs), -1);
  EXPECT_DOUBLE_EQ(max(xs), 7);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 2, 3}), 2.5);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 17.5);
}

TEST(Descriptive, QuantileSingleElement) {
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{42.0}, 0.7), 42.0);
}

TEST(Descriptive, SummaryFields) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.q3, 4);
}

TEST(Descriptive, SummaryEmpty) {
  const auto s = summarize(std::vector<double>{});
  EXPECT_EQ(s.n, 0u);
}

// Property: quantile is monotone in q.
class QuantileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotone, NonDecreasing) {
  const std::vector<double> xs{5, 1, 9, 3, 7, 2, 8};
  const double q = GetParam();
  EXPECT_LE(quantile(xs, q), quantile(xs, std::min(1.0, q + 0.1)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileMonotone,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4, 0.5, 0.6,
                                           0.75, 0.9));

}  // namespace
}  // namespace wehey::stats
