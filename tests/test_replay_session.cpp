// The §3.4 session coordinator: full WeHe + WeHeY sessions on one
// simulated timeline, including the topology re-validation of step 4.
#include <gtest/gtest.h>

#include "experiments/history.hpp"
#include "experiments/params.hpp"
#include "replay/session.hpp"

namespace wehey::replay {
namespace {

SessionConfig base_config(std::uint64_t seed) {
  SessionConfig cfg;
  cfg.scenario = experiments::default_scenario("Netflix", seed);
  cfg.scenario.replay_duration = seconds(30);
  // A plausible historical T_diff (the full pipeline tests elsewhere
  // build it from replays; here a fixed spread keeps the test fast).
  cfg.t_diff_history = {0.06, -0.09, 0.12, -0.04, 0.08, -0.11,
                        0.05, -0.07, 0.10, -0.03, 0.09, -0.06};
  return cfg;
}

TEST(Session, SeededDatabaseContainsThePair) {
  topology::TopologyDatabase db;
  seed_topology_database(base_config(1).scenario, db);
  EXPECT_EQ(db.prefix_count(), 1u);
  // The primary servers plus the standby yield three suitable pairs, so
  // the §3.4 pair fallback always has an alternate to reach for.
  EXPECT_EQ(db.pair_count(), 3u);
  const auto pair = db.pick("100.0.1.77");
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->server1, "s1");
  EXPECT_EQ(pair->server2, "s2");
  EXPECT_EQ(pair->convergence_ip, "100.0.1.1");
}

TEST(Session, CollectiveThrottlingLocalized) {
  auto cfg = base_config(2);
  topology::TopologyDatabase db;
  seed_topology_database(cfg.scenario, db);
  const auto result = run_session(cfg, db);
  EXPECT_TRUE(result.initial_wehe.differentiation);
  EXPECT_EQ(result.outcome, SessionOutcome::LocalizedWithinIsp);
  EXPECT_EQ(result.localization.mechanism,
            core::Mechanism::CollectiveThrottling);
  // The timeline is coherent: events are ordered and the session spans
  // all four replays.
  ASSERT_GE(result.events.size(), 6u);
  for (std::size_t i = 1; i < result.events.size(); ++i) {
    EXPECT_GE(result.events[i].at, result.events[i - 1].at);
  }
  EXPECT_GT(result.finished_at, 4 * cfg.scenario.replay_duration);
}

TEST(Session, NoDifferentiationEndsEarly) {
  auto cfg = base_config(3);
  cfg.scenario.placement = experiments::Placement::None;
  topology::TopologyDatabase db;
  seed_topology_database(cfg.scenario, db);
  const auto result = run_session(cfg, db);
  EXPECT_EQ(result.outcome, SessionOutcome::NoDifferentiationDetected);
  // Only the two single replays ran.
  EXPECT_LT(result.finished_at, 3 * cfg.scenario.replay_duration);
}

TEST(Session, UserDeclineStopsAfterWehe) {
  auto cfg = base_config(4);
  cfg.user_consents = false;
  topology::TopologyDatabase db;
  seed_topology_database(cfg.scenario, db);
  const auto result = run_session(cfg, db);
  EXPECT_TRUE(result.initial_wehe.differentiation);
  EXPECT_EQ(result.outcome, SessionOutcome::UserDeclined);
}

TEST(Session, EmptyDatabaseMeansNoTopology) {
  auto cfg = base_config(4);
  topology::TopologyDatabase db;  // never seeded
  const auto result = run_session(cfg, db);
  EXPECT_TRUE(result.initial_wehe.differentiation);
  EXPECT_EQ(result.outcome, SessionOutcome::NoSuitableTopology);
}

TEST(Session, RouteChurnDiscardsAndUpdatesDatabase) {
  auto cfg = base_config(9);
  cfg.route_churn = true;
  topology::TopologyDatabase db;
  seed_topology_database(cfg.scenario, db);
  ASSERT_EQ(db.pair_count(), 3u);
  const auto result = run_session(cfg, db);
  EXPECT_EQ(result.outcome, SessionOutcome::TopologyNoLongerSuitable);
  // Step 4 removed only the stale pair; the standby pairs survive so a
  // follow-up session can fall back to them immediately.
  EXPECT_EQ(db.pair_count(), 2u);
  const auto next = db.pick("100.0.1.77");
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->server1, "s1");
  EXPECT_EQ(next->server2, "s3");
  EXPECT_EQ(next->convergence_ip, "100.0.1.1");
}

TEST(Session, OutcomeStrings) {
  EXPECT_STREQ(to_string(SessionOutcome::LocalizedWithinIsp),
               "localized within ISP");
  EXPECT_STREQ(to_string(SessionOutcome::NoSuitableTopology),
               "no suitable topology");
  EXPECT_STREQ(to_string(SessionOutcome::ReplayRetriesExhausted),
               "replay retries exhausted");
  EXPECT_STREQ(to_string(SessionOutcome::ControlPlaneUnreachable),
               "control plane unreachable");
  EXPECT_STREQ(to_string(SessionOutcome::InconclusiveMeasurements),
               "inconclusive measurements");
}

TEST(Session, CleanSessionHasZeroHardeningCounters) {
  auto cfg = base_config(2);
  ASSERT_FALSE(cfg.fault_plan.enabled());  // default config injects nothing
  topology::TopologyDatabase db;
  seed_topology_database(cfg.scenario, db);
  const auto result = run_session(cfg, db);
  EXPECT_EQ(result.replay_retries, 0);
  EXPECT_EQ(result.control_retries, 0);
  EXPECT_EQ(result.pair_fallbacks, 0);
  EXPECT_EQ(result.outcome, SessionOutcome::LocalizedWithinIsp);
}

}  // namespace
}  // namespace wehey::replay
