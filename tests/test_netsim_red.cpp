// The RED AQM discipline.
#include <gtest/gtest.h>

#include <memory>

#include "netsim/link.hpp"
#include "netsim/queue.hpp"
#include "netsim/simulator.hpp"

namespace wehey::netsim {
namespace {

Packet pkt(std::uint32_t size) {
  Packet p;
  p.size = size;
  p.payload = size;
  return p;
}

TEST(Red, NoDropsBelowMinThreshold) {
  RedDisc red(50'000, 100'000, 0.1);
  // Offer and immediately drain: the average backlog stays ~0.
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(red.enqueue(pkt(1000), i));
    EXPECT_TRUE(red.dequeue(i).has_value());
  }
  EXPECT_EQ(red.drop_count(), 0u);
}

TEST(Red, ForceDropsAboveMaxThreshold) {
  RedDisc red(1'000, 10'000, 0.5, /*seed=*/3, /*ewma_weight=*/1.0);
  // Fill without draining: once the (instant, weight=1) average passes
  // max_th, every arrival drops.
  int accepted = 0;
  for (int i = 0; i < 40; ++i) accepted += red.enqueue(pkt(1000), 0);
  EXPECT_LE(accepted, 12);  // ~10 packets to reach max_th, then drops
  EXPECT_GT(red.drop_count(), 20u);
}

TEST(Red, ProbabilisticRegionDropsSomeFraction) {
  // Hold the backlog between the thresholds and count marks.
  RedDisc red(10'000, 100'000, 0.2, /*seed=*/7, /*ewma_weight=*/1.0);
  // Pre-fill to ~50 kB (midpoint -> p ~ 0.09).
  for (int i = 0; i < 50; ++i) red.enqueue(pkt(1000), 0);
  const auto base_drops = red.drop_count();
  int dropped = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    if (!red.enqueue(pkt(1000), 1)) {
      ++dropped;
    } else {
      red.dequeue(1);  // keep the backlog level
    }
  }
  (void)base_drops;
  const double rate = static_cast<double>(dropped) / trials;
  EXPECT_GT(rate, 0.02);
  EXPECT_LT(rate, 0.25);
}

TEST(Red, WorksAsLinkDisc) {
  Simulator sim;
  NullSink sink;
  Link link(sim, mbps(8), milliseconds(1),
            std::make_unique<RedDisc>(20'000, 60'000, 0.1, 11), &sink);
  // Offer 2x the link rate for 2 seconds: RED sheds load without
  // collapsing.
  for (int i = 0; i < 2000; ++i) {
    sim.schedule_at(i * kMillisecond, [&link] {
      link.receive(pkt(1000));
      link.receive(pkt(1000));
    });
  }
  sim.run(seconds(4));
  EXPECT_GT(sink.packets(), 1800u);
  EXPECT_GT(link.disc().drop_count(), 0u);
}

}  // namespace
}  // namespace wehey::netsim
