// Chaos harness for the fault-injection subsystem: every shipped fault
// plan must leave the pipeline with a *defined* outcome — no aborts, no
// hangs, no undefined verdicts — and a disabled plan must be invisible.
//
// The base seed is injectable via WEHEY_CHAOS_SEED so CI can sweep the
// same suite across several seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "experiments/params.hpp"
#include "experiments/scenario.hpp"
#include "experiments/wild.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "replay/session.hpp"
#include "trace/apps.hpp"
#include "trace/trace.hpp"

namespace wehey {
namespace {

std::uint64_t chaos_seed() {
  if (const char* v = std::getenv("WEHEY_CHAOS_SEED")) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return 1;
}

netsim::ReplayMeasurement synth_measurement(Time duration = seconds(20)) {
  netsim::ReplayMeasurement m;
  m.start = seconds(1);
  m.end = m.start + duration;
  Rng rng(99);
  const Time step = milliseconds(50);
  for (Time t = m.start; t < m.end; t += step) {
    m.tx_times.push_back(t);
    if (rng.bernoulli(0.05)) m.loss_times.push_back(t);
    m.deliveries.push_back({t, 1200});
    m.rtt_ms.push_back(35.0 + rng.uniform(0.0, 3.0));
  }
  return m;
}

replay::SessionConfig chaos_session_config() {
  replay::SessionConfig cfg;
  // Scenario seed 2 is known (test_replay_session) to detect
  // differentiation and reach the simultaneous phases.
  cfg.scenario = experiments::default_scenario("Netflix", 2);
  cfg.scenario.replay_duration = seconds(30);
  cfg.t_diff_history = {0.06, -0.09, 0.12, -0.04, 0.08, -0.11,
                        0.05, -0.07, 0.10, -0.03, 0.09, -0.06};
  return cfg;
}

// --- Plan and injector mechanics -----------------------------------------

TEST(FaultPlan, EmptyPlanIsDisabled) {
  faults::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  faults::FaultInjector off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.on_replay_start(1).abort);
  EXPECT_FALSE(off.on_control_exchange().dropped);
  EXPECT_FALSE(off.on_topology_lookup());
  auto m = synth_measurement();
  const auto before_tx = m.tx_times.size();
  EXPECT_FALSE(off.on_measurement_upload(2, m));
  EXPECT_EQ(m.tx_times.size(), before_tx);
  EXPECT_EQ(off.stats().total(), 0);
}

TEST(FaultPlan, ShippedPlansAreWellFormed) {
  const auto names = faults::shipped_plan_names();
  ASSERT_GE(names.size(), 9u);
  for (const auto& name : names) {
    const auto plan = faults::shipped_plan(name, 7);
    EXPECT_TRUE(plan.enabled()) << name;
    EXPECT_EQ(plan.name, name);
    EXPECT_EQ(plan.seed, 7u);
  }
}

TEST(FaultInjector, DeterministicAcrossInstances) {
  const auto plan = faults::shipped_plan("kitchen-sink", chaos_seed());
  faults::FaultInjector a(plan);
  faults::FaultInjector b(plan);
  for (int i = 0; i < 50; ++i) {
    const int path = 1 + (i % 2);
    const auto ra = a.on_replay_start(path);
    const auto rb = b.on_replay_start(path);
    EXPECT_EQ(ra.abort, rb.abort);
    const auto ca = a.on_control_exchange();
    const auto cb = b.on_control_exchange();
    EXPECT_EQ(ca.dropped, cb.dropped);
    EXPECT_EQ(ca.extra_delay, cb.extra_delay);
    EXPECT_EQ(a.on_topology_lookup(), b.on_topology_lookup());
    auto ma = synth_measurement();
    auto mb = synth_measurement();
    EXPECT_EQ(a.on_measurement_upload(path, ma),
              b.on_measurement_upload(path, mb));
    EXPECT_EQ(ma.end, mb.end);
    EXPECT_EQ(ma.tx_times.size(), mb.tx_times.size());
  }
  EXPECT_EQ(a.stats().total(), b.stats().total());
  EXPECT_GT(a.stats().total(), 0);
}

TEST(FaultInjector, PathFilterRespected) {
  // truncated-upload targets path 2 only.
  faults::FaultInjector inj(faults::shipped_plan("truncated-upload", 3));
  auto m1 = synth_measurement();
  auto m2 = synth_measurement();
  EXPECT_FALSE(inj.on_measurement_upload(1, m1));
  EXPECT_TRUE(inj.on_measurement_upload(2, m2));
  EXPECT_LT(m2.duration(), m1.duration());
  EXPECT_FALSE(inj.on_replay_start(1).abort);  // no abort spec in this plan
}

TEST(FaultInjector, CountBudgetLimitsFires) {
  faults::FaultPlan plan;
  plan.seed = 5;
  faults::FaultSpec s;
  s.kind = faults::FaultKind::TopologyUnavailable;
  s.probability = 1.0;
  s.count = 2;
  plan.faults.push_back(s);
  faults::FaultInjector inj(plan);
  EXPECT_TRUE(inj.on_topology_lookup());
  EXPECT_TRUE(inj.on_topology_lookup());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(inj.on_topology_lookup());
  EXPECT_EQ(inj.stats().topology_unavailable, 2);
}

// --- Measurement mutations -----------------------------------------------

TEST(Mutations, TruncateShortensWindowConsistently) {
  auto m = synth_measurement();
  const Time original_end = m.end;
  faults::truncate_measurement(m, 0.4);
  EXPECT_LT(m.end, original_end);
  EXPECT_GT(m.end, m.start);
  for (Time t : m.tx_times) EXPECT_LE(t, m.end);
  for (Time t : m.loss_times) EXPECT_LE(t, m.end);
  for (const auto& d : m.deliveries) EXPECT_LE(d.at, m.end);
  EXPECT_FALSE(m.deliveries.empty());
}

TEST(Mutations, CorruptGarblesSamples) {
  auto m = synth_measurement();
  Rng rng(11);
  faults::corrupt_measurement(m, 0.5, rng);
  const auto bad = std::count_if(m.rtt_ms.begin(), m.rtt_ms.end(),
                                 [](double r) {
                                   return !std::isfinite(r) || r <= 0.0;
                                 });
  EXPECT_GT(bad, 0);
  EXPECT_LT(static_cast<std::size_t>(bad), m.rtt_ms.size());
}

TEST(Mutations, SkewShiftsEveryTimestamp) {
  auto m = synth_measurement();
  const auto reference = m;
  const Time skew = seconds(4);
  faults::skew_measurement(m, skew);
  EXPECT_EQ(m.start, reference.start + skew);
  EXPECT_EQ(m.end, reference.end + skew);
  ASSERT_EQ(m.tx_times.size(), reference.tx_times.size());
  EXPECT_EQ(m.tx_times.front(), reference.tx_times.front() + skew);
  EXPECT_EQ(m.deliveries.back().at, reference.deliveries.back().at + skew);
  // Durations (and thus throughput) are invariant under pure skew.
  EXPECT_EQ(m.duration(), reference.duration());
}

TEST(Mutations, TraceCutDropsTail) {
  Rng rng(13);
  const auto t = trace::make_tcp_app_trace(seconds(10), rng);
  const auto half = trace::cut(t, t.duration() / 2);
  EXPECT_LT(half.packets.size(), t.packets.size());
  EXPECT_GT(half.packets.size(), 0u);
  for (const auto& p : half.packets) EXPECT_LE(p.offset, t.duration() / 2);

  const auto few_bytes = trace::cut(t, t.duration(), 20000);
  EXPECT_LE(few_bytes.total_bytes(), 20000);
}

// --- Scenario / wild integration ----------------------------------------

TEST(ScenarioFaults, NullAndEmptyPlanAreBitIdentical) {
  auto cfg = experiments::default_scenario("Netflix", 4);
  cfg.replay_duration = seconds(20);
  cfg.fault_plan = nullptr;
  const auto clean = experiments::run_phase(cfg, experiments::Phase::SimOriginal);

  faults::FaultPlan empty;
  cfg.fault_plan = &empty;
  const auto with_empty =
      experiments::run_phase(cfg, experiments::Phase::SimOriginal);

  EXPECT_FALSE(clean.faulted);
  EXPECT_FALSE(with_empty.faulted);
  EXPECT_EQ(clean.p1.meas.tx_times, with_empty.p1.meas.tx_times);
  EXPECT_EQ(clean.p1.meas.rtt_ms, with_empty.p1.meas.rtt_ms);
  EXPECT_EQ(clean.p2.meas.delivered_bytes(),
            with_empty.p2.meas.delivered_bytes());
  EXPECT_EQ(clean.limiter_drops, with_empty.limiter_drops);
}

TEST(ScenarioFaults, HardAbortFlagsThePhase) {
  auto cfg = experiments::default_scenario("Netflix", 4);
  cfg.replay_duration = seconds(20);
  const auto plan = faults::shipped_plan("replay-abort-hard", chaos_seed());
  cfg.fault_plan = &plan;
  const auto rep = experiments::run_phase(cfg, experiments::Phase::SimOriginal);
  EXPECT_TRUE(rep.faulted);
  EXPECT_TRUE(rep.p1.aborted);
  EXPECT_TRUE(rep.p2.aborted);
  // The abort lands mid-replay, not at either edge, and still leaves a
  // partial measurement behind.
  EXPECT_GT(rep.p1.aborted_at, rep.p1.meas.start);
  EXPECT_LT(rep.p1.aborted_at, rep.p1.meas.end);
  EXPECT_GT(rep.p1.meas.delivered_bytes(), 0);
}

TEST(WildFaults, FaultedPhaseStillReports) {
  experiments::WildConfig cfg;
  cfg.isp = experiments::default_isp_models()[0];
  cfg.replay_duration = seconds(20);
  cfg.seed = chaos_seed();
  const auto plan = faults::shipped_plan("replay-abort-hard", chaos_seed());
  cfg.fault_plan = &plan;
  const auto rep =
      experiments::run_wild_phase(cfg, experiments::Phase::SimOriginal);
  EXPECT_TRUE(rep.faulted);
  EXPECT_GT(rep.p1.meas.tx_times.size(), 0u);
}

// --- Localizer degradation ----------------------------------------------

TEST(LocalizerFaults, SkewedPairIsTrimmedNotRejected) {
  core::LocalizationInput in;
  in.p0_original = synth_measurement();
  in.p0_inverted = synth_measurement();
  in.p1_original = synth_measurement();
  in.p2_original = synth_measurement();
  in.p1_inverted = synth_measurement();
  in.p2_inverted = synth_measurement();
  faults::skew_measurement(in.p2_original, seconds(4));
  faults::skew_measurement(in.p2_inverted, seconds(4));
  Rng rng(31);
  const auto res = core::localize(in, rng);
  // Identical original/inverted series: confirmation fails cleanly, and
  // the desync was absorbed (degraded), not fatal.
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(res.verdict, core::Verdict::NoEvidence);
}

// --- Full-session chaos sweep -------------------------------------------

class ChaosPlan : public ::testing::TestWithParam<std::string> {};

TEST_P(ChaosPlan, SessionSurvivesWithDefinedOutcome) {
  auto cfg = chaos_session_config();
  cfg.fault_plan = faults::shipped_plan(GetParam(), chaos_seed());
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  const auto result = replay::run_session(cfg, db);

  EXPECT_STRNE(replay::to_string(result.outcome), "?");
  EXPECT_GT(result.finished_at, 0);
  ASSERT_FALSE(result.events.empty());
  for (std::size_t i = 1; i < result.events.size(); ++i) {
    EXPECT_GE(result.events[i].at, result.events[i - 1].at)
        << result.events[i].what;
  }
  if (result.outcome == replay::SessionOutcome::InconclusiveMeasurements) {
    EXPECT_NE(result.localization.inconclusive_reason,
              core::InconclusiveReason::None);
    EXPECT_FALSE(result.localization.status.ok());
  }
}

// The same crossing with the fluid background carrier: every shipped
// plan must keep a defined outcome when WEHEY_BG_MODE=fluid swaps the
// packet background for the fluid-rate aggregate.
TEST_P(ChaosPlan, SessionSurvivesWithDefinedOutcomeUnderFluidBg) {
  const char* saved = std::getenv("WEHEY_BG_MODE");
  const std::string restore = saved == nullptr ? "" : saved;
  ::setenv("WEHEY_BG_MODE", "fluid", 1);
  auto cfg = chaos_session_config();
  cfg.fault_plan = faults::shipped_plan(GetParam(), chaos_seed());
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  const auto result = replay::run_session(cfg, db);
  if (saved == nullptr) {
    ::unsetenv("WEHEY_BG_MODE");
  } else {
    ::setenv("WEHEY_BG_MODE", restore.c_str(), 1);
  }

  EXPECT_STRNE(replay::to_string(result.outcome), "?");
  EXPECT_GT(result.finished_at, 0);
  ASSERT_FALSE(result.events.empty());
  for (std::size_t i = 1; i < result.events.size(); ++i) {
    EXPECT_GE(result.events[i].at, result.events[i - 1].at)
        << result.events[i].what;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShippedPlans, ChaosPlan,
    ::testing::ValuesIn(faults::shipped_plan_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(SessionFaults, ControlDeadGivesUpWithDefinedOutcome) {
  auto cfg = chaos_session_config();
  cfg.fault_plan = faults::shipped_plan("control-dead", chaos_seed());
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  const auto result = replay::run_session(cfg, db);
  EXPECT_EQ(result.outcome, replay::SessionOutcome::ControlPlaneUnreachable);
  EXPECT_EQ(result.control_retries, cfg.max_control_attempts - 1);
}

TEST(SessionFaults, HardAbortExhaustsRetries) {
  auto cfg = chaos_session_config();
  cfg.fault_plan = faults::shipped_plan("replay-abort-hard", chaos_seed());
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  const auto result = replay::run_session(cfg, db);
  // Probability 1.0: every attempt of the very first replay dies.
  EXPECT_EQ(result.outcome, replay::SessionOutcome::ReplayRetriesExhausted);
  EXPECT_EQ(result.replay_retries, cfg.max_replay_attempts - 1);
}

TEST(SessionFaults, TracerouteDamageDiscardsWithoutInvalidatingPair) {
  auto cfg = chaos_session_config();
  // Guaranteed damage on both gathering-step traceroutes.
  cfg.fault_plan = faults::shipped_plan("traceroute-damage", chaos_seed());
  for (auto& spec : cfg.fault_plan.faults) spec.probability = 1.0;
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  const auto pairs_before = db.lookup("100.0.1.77").size();
  const auto result = replay::run_session(cfg, db);

  EXPECT_EQ(result.outcome, replay::SessionOutcome::TracerouteFailed);
  EXPECT_GT(result.injection.traceroutes_dropped, 0);
  EXPECT_GT(result.injection.traceroutes_garbled, 0);
  // The *query* failed, not the topology: the pair stays in the database
  // (unlike TopologyNoLongerSuitable, which invalidates it).
  EXPECT_EQ(db.lookup("100.0.1.77").size(), pairs_before);
}

TEST(SessionFaults, ClockSkewDegradesButCompletes) {
  auto cfg = chaos_session_config();
  cfg.fault_plan = faults::shipped_plan("clock-skew", chaos_seed());
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  const auto result = replay::run_session(cfg, db);
  // Skewed uploads never abort replays or the control plane: the session
  // always reaches the analyses and produces a verdict-backed outcome.
  EXPECT_TRUE(
      result.outcome == replay::SessionOutcome::LocalizedWithinIsp ||
      result.outcome == replay::SessionOutcome::NoEvidence ||
      result.outcome == replay::SessionOutcome::InconclusiveMeasurements);
  EXPECT_TRUE(result.localization.degraded);
}

TEST(SessionFaults, ChaosSessionsAreReproducible) {
  auto cfg = chaos_session_config();
  cfg.fault_plan = faults::shipped_plan("kitchen-sink", chaos_seed());
  topology::TopologyDatabase db1, db2;
  replay::seed_topology_database(cfg.scenario, db1);
  replay::seed_topology_database(cfg.scenario, db2);
  const auto a = replay::run_session(cfg, db1);
  const auto b = replay::run_session(cfg, db2);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.replay_retries, b.replay_retries);
}

}  // namespace
}  // namespace wehey
