// TCP sender/receiver: throughput, loss recovery, pacing, measurement.
#include <gtest/gtest.h>

#include <memory>

#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "transport/tcp.hpp"

namespace wehey::transport {
namespace {

using netsim::Demux;
using netsim::FifoDisc;
using netsim::Link;
using netsim::Pipe;
using netsim::PacketIdSource;
using netsim::RateLimiterDisc;
using netsim::Simulator;
using netsim::TbfDisc;

/// One TCP flow over a single bottleneck link with an ideal reverse path.
struct Harness {
  Simulator sim;
  PacketIdSource ids;
  std::unique_ptr<Demux> demux = std::make_unique<Demux>();
  std::unique_ptr<Link> link;
  std::unique_ptr<Pipe> ack_pipe;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;

  Harness(Rate bw, Time one_way, std::unique_ptr<netsim::QueueDisc> disc,
          TcpConfig cfg = {}, std::uint8_t dscp = 0) {
    link = std::make_unique<Link>(sim, bw, one_way, std::move(disc),
                                  demux.get());
    ack_pipe = std::make_unique<Pipe>(sim, one_way);
    sender = std::make_unique<TcpSender>(sim, ids, cfg, 1, dscp, link.get());
    receiver =
        std::make_unique<TcpReceiver>(sim, ids, cfg, 1, ack_pipe.get());
    ack_pipe->set_next(sender.get());
    demux->add_route(1, receiver.get());
  }
};

TEST(Tcp, BulkTransferCompletesNearLinkRate) {
  Harness h(mbps(10), milliseconds(15),
            std::make_unique<FifoDisc>(125000));
  Time done = -1;
  h.sender->set_on_complete([&] { done = h.sim.now(); });
  h.sender->supply(5'000'000);
  h.sim.run(seconds(60));
  ASSERT_GT(done, 0);
  const double goodput = 5e6 * 8.0 / to_seconds(done);
  EXPECT_GT(goodput, mbps(6));  // >60% of a 10 Mbps link
  EXPECT_TRUE(h.sender->complete());
}

TEST(Tcp, NoLossOnUncongestedPath) {
  // A generous link and a small transfer: nothing should be retransmitted.
  Harness h(mbps(100), milliseconds(10),
            std::make_unique<FifoDisc>(2'000'000));
  h.sender->supply(500'000);
  h.sim.run(seconds(10));
  EXPECT_TRUE(h.sender->complete());
  EXPECT_EQ(h.sender->retransmissions(), 0u);
  EXPECT_EQ(h.sender->timeouts(), 0u);
  EXPECT_EQ(h.receiver->received_bytes(), 500'000);
}

TEST(Tcp, RttEstimateTracksPathRtt) {
  Harness h(mbps(100), milliseconds(20),
            std::make_unique<FifoDisc>(2'000'000));
  h.sender->supply(200'000);
  h.sim.run(seconds(5));
  // True RTT = 40 ms + small serialization.
  EXPECT_NEAR(to_milliseconds(h.sender->srtt()), 40.0, 5.0);
}

TEST(Tcp, RecoversThroughTokenBucketPolicer) {
  // 2 Mbps policer with a shallow queue: the flow must survive and land
  // near the policed rate.
  auto fifo = std::make_unique<FifoDisc>(0);
  auto tbf = std::make_unique<TbfDisc>(mbps(2), 10000, 10000);
  Harness h(mbps(50), milliseconds(15),
            std::make_unique<RateLimiterDisc>(std::move(fifo), std::move(tbf)),
            TcpConfig{}, netsim::kDscpDifferentiated);
  // Keep the flow backlogged for the whole measurement window.
  h.sender->supply(20'000'000);
  h.sim.run(seconds(30));
  const double rate =
      h.receiver->received_bytes() * 8.0 / to_seconds(h.sim.now());
  EXPECT_GT(rate, mbps(1.2));
  EXPECT_LE(rate, mbps(2.4));
  EXPECT_GT(h.sender->retransmissions(), 0u);
}

TEST(Tcp, RetransmissionsRecordedAsLossEvents) {
  auto fifo = std::make_unique<FifoDisc>(0);
  auto tbf = std::make_unique<TbfDisc>(mbps(2), 10000, 10000);
  Harness h(mbps(50), milliseconds(15),
            std::make_unique<RateLimiterDisc>(std::move(fifo), std::move(tbf)),
            TcpConfig{}, netsim::kDscpDifferentiated);
  h.sender->supply(2'000'000);
  h.sim.run(seconds(30));
  const auto& m = h.sender->measurement();
  EXPECT_EQ(m.loss_times.size(), h.sender->retransmissions());
  // Loss events are registered at retransmission times, within tx_times.
  EXPECT_GE(m.tx_times.size(), m.loss_times.size());
}

TEST(Tcp, PacingSpacesPackets) {
  TcpConfig paced;
  paced.pacing = true;
  Harness h(mbps(50), milliseconds(15), std::make_unique<FifoDisc>(0),
            paced);
  h.sender->supply(300'000);
  h.sim.run(seconds(5));
  const auto& tx = h.sender->measurement().tx_times;
  ASSERT_GT(tx.size(), 20u);
  // Count back-to-back transmissions (gap < 10 us).
  int adjacent = 0;
  for (std::size_t i = 1; i < tx.size(); ++i) {
    if (tx[i] - tx[i - 1] < microseconds(10)) ++adjacent;
  }
  // Paced: the vast majority of sends are spaced out.
  EXPECT_LT(static_cast<double>(adjacent) / tx.size(), 0.2);
}

TEST(Tcp, UnpacedSendsBursts) {
  TcpConfig unpaced;
  unpaced.pacing = false;
  Harness h(mbps(50), milliseconds(15), std::make_unique<FifoDisc>(0),
            unpaced);
  h.sender->supply(300'000);
  h.sim.run(seconds(5));
  const auto& tx = h.sender->measurement().tx_times;
  ASSERT_GT(tx.size(), 20u);
  int adjacent = 0;
  for (std::size_t i = 1; i < tx.size(); ++i) {
    if (tx[i] - tx[i - 1] < microseconds(10)) ++adjacent;
  }
  EXPECT_GT(static_cast<double>(adjacent) / tx.size(), 0.5);
}

TEST(Tcp, AppLimitedChunksAllDelivered) {
  Harness h(mbps(50), milliseconds(15),
            std::make_unique<FifoDisc>(1'000'000));
  // Five 100 kB chunks, one per 200 ms.
  for (int i = 0; i < 5; ++i) {
    h.sim.schedule(milliseconds(200.0 * i),
                   [&] { h.sender->supply(100'000); });
  }
  h.sim.run(seconds(10));
  EXPECT_EQ(h.receiver->received_bytes(), 500'000);
  EXPECT_TRUE(h.sender->complete());
}

TEST(Tcp, CompletionCallbackFiresOnce) {
  Harness h(mbps(10), milliseconds(10),
            std::make_unique<FifoDisc>(500'000));
  int completions = 0;
  h.sender->set_on_complete([&] { ++completions; });
  h.sender->supply(50'000);
  h.sim.run(seconds(10));
  EXPECT_EQ(completions, 1);
}

TEST(Tcp, NewRenoFallbackWorks) {
  TcpConfig reno;
  reno.cc = CongestionControl::NewReno;
  Harness h(mbps(10), milliseconds(15),
            std::make_unique<FifoDisc>(125000), reno);
  Time done = -1;
  h.sender->set_on_complete([&] { done = h.sim.now(); });
  h.sender->supply(2'000'000);
  h.sim.run(seconds(60));
  ASSERT_GT(done, 0);
  EXPECT_GT(2e6 * 8.0 / to_seconds(done), mbps(4));
}

TEST(Tcp, ReceiverDelaySamplesReflectPath) {
  Harness h(mbps(100), milliseconds(25),
            std::make_unique<FifoDisc>(2'000'000));
  h.sender->supply(100'000);
  h.sim.run(seconds(5));
  ASSERT_FALSE(h.receiver->delay_samples_ms().empty());
  // One-way delay ~25 ms plus small serialization.
  for (double owd : h.receiver->delay_samples_ms()) {
    EXPECT_GT(owd, 24.0);
    EXPECT_LT(owd, 40.0);
  }
}

TEST(Tcp, SurvivesSevereThrottling) {
  // Offered load far above a 500 kbps policer with a tiny queue: the flow
  // must make steady forward progress (no livelock), even if slowly.
  auto fifo = std::make_unique<FifoDisc>(0);
  auto tbf = std::make_unique<TbfDisc>(kbps(500), 6000, 4500);
  Harness h(mbps(50), milliseconds(15),
            std::make_unique<RateLimiterDisc>(std::move(fifo), std::move(tbf)),
            TcpConfig{}, netsim::kDscpDifferentiated);
  h.sender->supply(1'000'000);
  h.sim.run(seconds(30));
  const double rate =
      h.receiver->received_bytes() * 8.0 / to_seconds(h.sim.now());
  EXPECT_GT(rate, kbps(200));
}

TEST(Tcp, DelayedAcksHalveAckTraffic) {
  TcpConfig delayed;
  delayed.delayed_acks = true;
  Harness h(mbps(50), milliseconds(10),
            std::make_unique<FifoDisc>(2'000'000), delayed);
  h.sender->supply(1'000'000);
  h.sim.run(seconds(10));
  EXPECT_TRUE(h.sender->complete());
  // ~2 data segments per ACK on an in-order path.
  const double ratio = static_cast<double>(h.receiver->received_packets()) /
                       static_cast<double>(h.receiver->acks_sent());
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(Tcp, DelayedAcksStillRecoverFromLoss) {
  TcpConfig delayed;
  delayed.delayed_acks = true;
  auto fifo = std::make_unique<FifoDisc>(0);
  auto tbf = std::make_unique<TbfDisc>(mbps(2), 15000, 15000);
  Harness h(mbps(50), milliseconds(15),
            std::make_unique<RateLimiterDisc>(std::move(fifo), std::move(tbf)),
            delayed, netsim::kDscpDifferentiated);
  h.sender->supply(15'000'000);
  h.sim.run(seconds(30));
  const double rate =
      h.receiver->received_bytes() * 8.0 / to_seconds(h.sim.now());
  // Out-of-order data is still ACKed immediately, so SACK recovery keeps
  // the flow near the policed rate.
  EXPECT_GT(rate, mbps(1.2));
}

TEST(Tcp, DelayedAckTimerFlushesTail) {
  TcpConfig delayed;
  delayed.delayed_acks = true;
  Harness h(mbps(50), milliseconds(10),
            std::make_unique<FifoDisc>(2'000'000), delayed);
  // A single odd segment: only the delayed-ACK timer can acknowledge it.
  h.sender->supply(1000);
  h.sim.run(seconds(5));
  EXPECT_TRUE(h.sender->complete());
  EXPECT_EQ(h.receiver->acks_sent(), 1u);
}

// Sweep: bulk transfers across bandwidths complete with sane utilization.
class TcpBandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpBandwidthSweep, ReasonableUtilization) {
  const Rate bw = mbps(GetParam());
  Harness h(bw, milliseconds(15),
            std::make_unique<FifoDisc>(static_cast<std::int64_t>(
                bytes_in(bw, milliseconds(100)))));
  const std::int64_t bytes = static_cast<std::int64_t>(bw / 8.0 * 5);  // ~5 s
  Time done = -1;
  h.sender->set_on_complete([&] { done = h.sim.now(); });
  h.sender->supply(bytes);
  h.sim.run(seconds(120));
  ASSERT_GT(done, 0) << "transfer did not complete";
  const double utilization = bytes * 8.0 / to_seconds(done) / bw;
  EXPECT_GT(utilization, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Rates, TcpBandwidthSweep,
                         ::testing::Values(2.0, 5.0, 10.0, 20.0, 50.0));

}  // namespace
}  // namespace wehey::transport
