// Resilient sweep execution: per-trial budgets (the supervisor), the
// event-storm livelock plan, quarantine tallies, and checkpoint/resume
// byte identity.
//
// The headline contract: a sweep killed mid-cell and resumed from its
// checkpoint journal produces a sweep report byte-identical to an
// uninterrupted run's, across WEHEY_THREADS — the journal replays
// completed runs in run-index order through the aggregator's offline
// path, which absorbs bit-equal to the in-process path.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/params.hpp"
#include "experiments/wild.hpp"
#include "faults/plan.hpp"
#include "netsim/simulator.hpp"
#include "obs/aggregate.hpp"
#include "obs/checkpoint.hpp"
#include "obs/inspect.hpp"
#include "obs/report.hpp"
#include "parallel/supervisor.hpp"
#include "parallel/thread_pool.hpp"
#include "replay/session.hpp"
#include "topology/database.hpp"

namespace wehey {
namespace {

// --- TrialBudget mechanics -----------------------------------------------

/// A self-perpetuating timer: the minimal runaway trial.
void arm_livelock(netsim::Simulator& sim, Time interval) {
  sim.schedule(interval, [&sim, interval] {
    sim.reschedule_current(interval);
  });
}

TEST(TrialBudget, EventCeilingStopsAndLatches) {
  netsim::Simulator sim;
  netsim::TrialBudget budget;
  budget.max_events = 100;
  sim.set_trial_budget(budget);
  arm_livelock(sim, microseconds(1));
  sim.run(seconds(1));
  EXPECT_TRUE(sim.budget_exhausted());
  EXPECT_STREQ(sim.budget_reason(), "events");
  EXPECT_EQ(sim.budget_events_dispatched(), 100u);
  // The clock is NOT fast-forwarded to the caller's horizon: the trial
  // ended where the budget cut it.
  EXPECT_LT(sim.now(), seconds(1));
  // Once exhausted, run() is a no-op — callers unwind without spinning.
  const Time stopped_at = sim.now();
  sim.run(seconds(2));
  EXPECT_EQ(sim.now(), stopped_at);
  EXPECT_EQ(sim.budget_events_dispatched(), 100u);
}

TEST(TrialBudget, SimTimeCeilingReportsSimTime) {
  netsim::Simulator sim;
  netsim::TrialBudget budget;
  budget.max_sim_time = milliseconds(10);
  sim.set_trial_budget(budget);
  arm_livelock(sim, milliseconds(1));
  sim.run(seconds(1));
  EXPECT_TRUE(sim.budget_exhausted());
  EXPECT_STREQ(sim.budget_reason(), "sim_time");
  EXPECT_LE(sim.now(), milliseconds(10));
}

TEST(TrialBudget, GenerousBudgetIsABystander) {
  // A budget that never bites must not change the run's outcome.
  netsim::Simulator sim;
  netsim::TrialBudget budget;
  budget.max_events = 1'000'000;
  budget.max_sim_time = seconds(100);
  sim.set_trial_budget(budget);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(milliseconds(i), [&fired] { ++fired; });
  }
  sim.run(seconds(1));
  EXPECT_EQ(fired, 10);
  EXPECT_FALSE(sim.budget_exhausted());
  EXPECT_STREQ(sim.budget_reason(), "");
  EXPECT_EQ(sim.now(), seconds(1));  // completed runs reach the horizon
}

TEST(TrialBudget, EnvKnobsParsedPerCall) {
  ::setenv("WEHEY_TRIAL_MAX_EVENTS", "123", 1);
  ::setenv("WEHEY_TRIAL_MAX_SIM_MS", "456", 1);
  auto budget = parallel::trial_budget_from_env();
  EXPECT_EQ(budget.max_events, 123u);
  EXPECT_EQ(budget.max_sim_time, milliseconds(456));
  // 0 disables a ceiling.
  ::setenv("WEHEY_TRIAL_MAX_EVENTS", "0", 1);
  budget = parallel::trial_budget_from_env();
  EXPECT_EQ(budget.max_events, 0u);
  EXPECT_TRUE(budget.limited());  // sim-time ceiling still on
  // Unset -> shipped defaults (20M events, one sim hour).
  ::unsetenv("WEHEY_TRIAL_MAX_EVENTS");
  ::unsetenv("WEHEY_TRIAL_MAX_SIM_MS");
  budget = parallel::trial_budget_from_env();
  EXPECT_EQ(budget.max_events, 20'000'000u);
  EXPECT_EQ(budget.max_sim_time, milliseconds(3'600'000));
  EXPECT_TRUE(budget.limited());
}

// --- Event-storm livelock under the default budget -----------------------

TEST(Supervisor, EventStormSessionExhaustsDefaultBudget) {
  // No env knobs: the shipped defaults themselves must terminate the
  // retransmit livelock with a machine-readable outcome.
  ::unsetenv("WEHEY_TRIAL_MAX_EVENTS");
  ::unsetenv("WEHEY_TRIAL_MAX_SIM_MS");
  replay::SessionConfig cfg;
  cfg.scenario = experiments::default_scenario("Netflix", 2);
  cfg.scenario.replay_duration = seconds(30);
  cfg.t_diff_history = {0.06, -0.09, 0.12, -0.04, 0.08, -0.11,
                        0.05, -0.07, 0.10, -0.03, 0.09, -0.06};
  cfg.fault_plan = faults::shipped_plan("event-storm", 1);
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  const auto result = replay::run_session(cfg, db);
  EXPECT_EQ(result.outcome, replay::SessionOutcome::BudgetExhausted);
  EXPECT_EQ(result.budget_reason, "events");
  EXPECT_STREQ(replay::to_string(result.outcome),
               obs::kBudgetExhaustedVerdict);
  // The RunReport carries the verdict and the machine-readable reason.
  const auto report = replay::make_run_report(cfg, result, "storm");
  EXPECT_EQ(report.verdict, obs::kBudgetExhaustedVerdict);
  EXPECT_EQ(report.reason, "budget:events");
}

TEST(Supervisor, TightEventBudgetEndsWildTestWithoutLocalization) {
  ::setenv("WEHEY_TRIAL_MAX_EVENTS", "10000", 1);
  experiments::WildConfig cfg;
  cfg.isp = experiments::default_isp_models()[0];
  cfg.replay_duration = seconds(8);
  cfg.seed = 3;
  const std::vector<double> t_diff = {0.05, -0.08, 0.11, -0.03};
  const auto res =
      experiments::run_wild_test_reported(cfg, t_diff, false, "tight");
  ::unsetenv("WEHEY_TRIAL_MAX_EVENTS");
  EXPECT_TRUE(res.outcome.budget_exhausted);
  EXPECT_EQ(res.outcome.budget_reason, "events");
  EXPECT_FALSE(res.outcome.localized);  // analyses skipped, inputs stumps
  EXPECT_EQ(res.report.verdict, obs::kBudgetExhaustedVerdict);
  EXPECT_EQ(res.report.reason, "budget:events");
}

// --- Quarantine tallies --------------------------------------------------

obs::RunReport small_report(const std::string& run, const std::string& cell,
                            const std::string& verdict,
                            const std::string& reason) {
  obs::RunReport r;
  r.run = run;
  r.cell = cell;
  r.seed = 7;
  r.verdict = verdict;
  r.reason = reason;
  r.values["x"] = 1.5;
  return r;
}

TEST(Quarantine, RepeatedBudgetExhaustionQuarantinesTheCell) {
  obs::SweepAggregator agg("q");
  // "bad": two poisoned runs -> quarantined (threshold 2). "flaky": one
  // poisoned run -> listed nowhere. "ok": clean.
  agg.add_run(small_report("q.bad.r0", "bad", obs::kBudgetExhaustedVerdict,
                           "budget:events"),
              nullptr);
  agg.add_run(small_report("q.bad.r1", "bad", obs::kBudgetExhaustedVerdict,
                           "budget:sim_time"),
              nullptr);
  agg.add_run(small_report("q.flaky.r0", "flaky",
                           obs::kBudgetExhaustedVerdict, "budget:events"),
              nullptr);
  agg.add_run(small_report("q.flaky.r1", "flaky", "no evidence", ""),
              nullptr);
  agg.add_run(small_report("q.ok.r0", "ok", "no evidence", ""), nullptr);
  const std::string json = agg.to_json();
  EXPECT_NE(json.find("\"quarantine\""), std::string::npos);
  EXPECT_NE(json.find("\"threshold\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"bad\": {\"poisoned_runs\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"budget:sim_time\": 1"), std::string::npos);
  // Below-threshold and clean cells stay out of the quarantine block.
  EXPECT_EQ(json.find("\"flaky\": {\"poisoned_runs\""), std::string::npos);
  EXPECT_EQ(json.find("\"ok\": {\"poisoned_runs\""), std::string::npos);
  // The sweep itself keeps going: all five runs are tallied.
  EXPECT_EQ(agg.runs(), 5u);

  // The offline absorb path (checkpoint resume, wehey_cli merge) must
  // reconstruct the identical quarantine state.
  obs::SweepAggregator offline("q");
  std::vector<obs::RunReport> reports = {
      small_report("q.bad.r0", "bad", obs::kBudgetExhaustedVerdict,
                   "budget:events"),
      small_report("q.bad.r1", "bad", obs::kBudgetExhaustedVerdict,
                   "budget:sim_time"),
      small_report("q.flaky.r0", "flaky", obs::kBudgetExhaustedVerdict,
                   "budget:events"),
      small_report("q.flaky.r1", "flaky", "no evidence", ""),
      small_report("q.ok.r0", "ok", "no evidence", ""),
  };
  for (const auto& r : reports) {
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::json_parse(r.to_json(nullptr), doc, &error)) << error;
    ASSERT_TRUE(offline.add_run_json(doc, &error)) << error;
  }
  EXPECT_EQ(offline.to_json(), json);
}

// --- Checkpoint journal mechanics ----------------------------------------

obs::CheckpointEntry make_entry(const std::string& run,
                                const std::string& cell, std::uint64_t index,
                                const std::string& report_json) {
  obs::CheckpointEntry entry;
  entry.run = run;
  entry.cell = cell;
  entry.seed = 11;
  entry.index = index;
  entry.report_json = report_json;
  return entry;
}

TEST(Checkpoint, MissingFileIsAnEmptyResume) {
  obs::CheckpointJournal journal;
  std::string error;
  EXPECT_TRUE(obs::CheckpointJournal::load(
      ::testing::TempDir() + "/does_not_exist.jsonl", journal, &error));
  EXPECT_TRUE(journal.empty());
  EXPECT_EQ(journal.find("anything"), nullptr);
}

TEST(Checkpoint, RoundTripPreservesReportBytesExactly) {
  const std::string path = ::testing::TempDir() + "/roundtrip.jsonl";
  std::remove(path.c_str());
  // Escaping stress: quotes, backslashes, newlines, tabs — everything a
  // serialized RunReport contains.
  const std::string report =
      "{\n  \"schema\": \"wehey.run_report.v3\",\n  \"run\": \"a \\\"b\\\" "
      "c\\\\d\",\n\t\"x\": 1.5\n}\n";
  {
    obs::CheckpointWriter writer;
    ASSERT_TRUE(writer.open(path, "rt"));
    writer.append(make_entry("r0", "cell/one", 0, report));
  }
  obs::CheckpointJournal journal;
  std::string error;
  ASSERT_TRUE(obs::CheckpointJournal::load(path, journal, &error)) << error;
  ASSERT_EQ(journal.size(), 1u);
  const obs::CheckpointEntry* entry = journal.find("r0");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->report_json, report);
  EXPECT_EQ(entry->cell, "cell/one");
  EXPECT_EQ(entry->seed, 11u);
  EXPECT_EQ(journal.sweep(), "rt");
}

TEST(Checkpoint, TornTrailingLineIsDroppedAndTrimmedOnReopen) {
  const std::string path = ::testing::TempDir() + "/torn.jsonl";
  std::remove(path.c_str());
  {
    obs::CheckpointWriter writer;
    ASSERT_TRUE(writer.open(path, "t"));
    writer.append(make_entry("r0", "c", 0, "{\"a\": 1}"));
  }
  // Simulate a kill -9 mid-append: a partial line, no trailing newline.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "{\"schema\": \"wehey.sweep_checkpoint.v1\", \"ru";
    std::fwrite(torn, 1, sizeof(torn) - 1, f);
    std::fclose(f);
  }
  obs::CheckpointJournal journal;
  std::string error;
  ASSERT_TRUE(obs::CheckpointJournal::load(path, journal, &error)) << error;
  EXPECT_EQ(journal.size(), 1u);  // the torn line is dropped, not fatal
  // Reopening for append trims the fragment, so the next line starts
  // clean and a second resume sees both runs.
  {
    obs::CheckpointWriter writer;
    ASSERT_TRUE(writer.open(path, "t"));
    writer.append(make_entry("r1", "c", 1, "{\"a\": 2}"));
  }
  ASSERT_TRUE(obs::CheckpointJournal::load(path, journal, &error)) << error;
  EXPECT_EQ(journal.size(), 2u);
  ASSERT_NE(journal.find("r1"), nullptr);
  EXPECT_EQ(journal.find("r1")->report_json, "{\"a\": 2}");
}

TEST(Checkpoint, MidFileCorruptionFailsLoudly) {
  const std::string path = ::testing::TempDir() + "/corrupt.jsonl";
  std::remove(path.c_str());
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not json at all\n", f);
    std::fclose(f);
  }
  {
    obs::CheckpointWriter writer;
    // open() only trims a missing trailing newline; the bad line stays.
    ASSERT_TRUE(writer.open(path, "c"));
    writer.append(make_entry("r0", "c", 0, "{\"a\": 1}"));
  }
  obs::CheckpointJournal journal;
  std::string error;
  EXPECT_FALSE(obs::CheckpointJournal::load(path, journal, &error));
  EXPECT_NE(error.find("malformed"), std::string::npos) << error;
}

TEST(Checkpoint, DuplicateRunIdsKeepTheLastEntry) {
  const std::string path = ::testing::TempDir() + "/dup.jsonl";
  std::remove(path.c_str());
  {
    obs::CheckpointWriter writer;
    ASSERT_TRUE(writer.open(path, "d"));
    writer.append(make_entry("r0", "c", 0, "{\"a\": 1}"));
    writer.append(make_entry("r0", "c", 0, "{\"a\": 2}"));
  }
  obs::CheckpointJournal journal;
  std::string error;
  ASSERT_TRUE(obs::CheckpointJournal::load(path, journal, &error)) << error;
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal.find("r0")->report_json, "{\"a\": 2}");
}

// --- Kill-and-resume byte identity ---------------------------------------

struct SweepFixture {
  std::vector<std::string> run_ids;
  std::vector<experiments::WildConfig> cfgs;
  std::vector<std::vector<double>> t_diffs;  ///< one per run (shared per ISP)
};

/// Two ISP cells, two wild runs each — small enough for a test, real
/// enough to exercise the full report pipeline.
SweepFixture sweep_fixture() {
  SweepFixture fx;
  const auto isps = experiments::default_isp_models();
  for (std::size_t i = 0; i < 4; ++i) {
    experiments::WildConfig base;
    base.isp = isps[i / 2];
    base.replay_duration = seconds(8);
    base.seed = 1;
    if (fx.t_diffs.size() <= i) fx.t_diffs.resize(i + 1);
    // T_diff is a deterministic function of the base config, shared by
    // the cell's runs — exactly the Table-1 bench's structure.
    if (i % 2 == 0) {
      fx.t_diffs[i] = experiments::build_wild_t_diff(base, 3);
    } else {
      fx.t_diffs[i] = fx.t_diffs[i - 1];
    }
    experiments::WildConfig cfg = base;
    cfg.seed = 1000 + i * 17;
    fx.cfgs.push_back(cfg);
    char run_id[48];
    std::snprintf(run_id, sizeof(run_id), "ckpt.%s.r%02zu",
                  base.isp.name.c_str(), i);
    fx.run_ids.emplace_back(run_id);
  }
  return fx;
}

experiments::WildTestResult run_one(const SweepFixture& fx, std::size_t i) {
  return experiments::run_wild_test_reported(fx.cfgs[i], fx.t_diffs[i],
                                             /*sanity_check=*/false,
                                             fx.run_ids[i]);
}

TEST(CheckpointResume, KilledSweepResumesByteIdenticalAcrossThreads) {
  const SweepFixture fx = sweep_fixture();

  // The uninterrupted sweep: all four runs, absorbed in index order, and
  // the journal a driver would have written along the way.
  const std::string path = ::testing::TempDir() + "/resume.jsonl";
  std::remove(path.c_str());
  obs::SweepAggregator uninterrupted("ckpt");
  std::vector<std::string> journaled_reports;
  {
    obs::CheckpointWriter writer;
    ASSERT_TRUE(writer.open(path, "ckpt"));
    for (std::size_t i = 0; i < fx.run_ids.size(); ++i) {
      const auto res = run_one(fx, i);
      const std::string report_json = res.report.to_json(&res.metrics);
      journaled_reports.push_back(report_json);
      writer.append(make_entry(fx.run_ids[i], res.report.cell, i,
                               report_json));
      uninterrupted.add_run(res.report, &res.metrics);
    }
  }
  const std::string baseline = uninterrupted.to_json();

  // Kill mid-cell: keep the first ISP cell's two runs plus a torn
  // fragment of the second cell's first line.
  std::string text;
  ASSERT_TRUE(obs::read_file(path, text));
  std::size_t cut = 0;
  for (int lines = 0; lines < 2; ++lines) {
    cut = text.find('\n', cut) + 1;
  }
  const std::string truncated =
      text.substr(0, cut) + text.substr(cut, 80);  // torn third line
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(truncated.data(), 1, truncated.size(), f);
    std::fclose(f);
  }

  // Resume twice, recomputing the lost runs on 1 and on 8 threads. Both
  // sweeps must reproduce the uninterrupted bytes.
  for (const unsigned threads : {1u, 8u}) {
    obs::CheckpointJournal journal;
    std::string error;
    ASSERT_TRUE(obs::CheckpointJournal::load(path, journal, &error))
        << error;
    ASSERT_EQ(journal.size(), 2u);  // the torn third line was dropped
    const auto recomputed = parallel::parallel_map(
        fx.run_ids.size(),
        [&](std::size_t i) {
          if (journal.find(fx.run_ids[i]) != nullptr) {
            return experiments::WildTestResult{};
          }
          return run_one(fx, i);
        },
        threads);
    obs::SweepAggregator resumed("ckpt");
    for (std::size_t i = 0; i < fx.run_ids.size(); ++i) {
      if (const obs::CheckpointEntry* entry = journal.find(fx.run_ids[i])) {
        // Journaled bytes survive verbatim and re-absorb bit-equal.
        EXPECT_EQ(entry->report_json, journaled_reports[i]);
        obs::JsonValue doc;
        ASSERT_TRUE(obs::json_parse(entry->report_json, doc, &error))
            << error;
        ASSERT_TRUE(resumed.add_run_json(doc, &error)) << error;
        continue;
      }
      resumed.add_run(recomputed[i].report, &recomputed[i].metrics);
    }
    EXPECT_EQ(resumed.to_json(), baseline)
        << "resume with threads=" << threads
        << " diverged from the uninterrupted sweep";
  }
}

}  // namespace
}  // namespace wehey
