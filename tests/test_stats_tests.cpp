// Hypothesis tests: values cross-checked against scipy.stats
// (spearmanr, mannwhitneyu, ks_2samp) plus distribution-free properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "stats/correlation.hpp"
#include "stats/hypothesis.hpp"
#include "stats/ranks.hpp"

namespace wehey::stats {
namespace {

TEST(Ranks, NoTies) {
  const std::vector<double> xs{30, 10, 20};
  const auto r = ranks(xs);
  EXPECT_EQ(r, (std::vector<double>{3, 1, 2}));
}

TEST(Ranks, MidranksForTies) {
  const std::vector<double> xs{1, 2, 2, 3};
  const auto r = ranks(xs);
  EXPECT_EQ(r, (std::vector<double>{1, 2.5, 2.5, 4}));
}

TEST(Ranks, AllTied) {
  const std::vector<double> xs{5, 5, 5};
  const auto r = ranks(xs);
  EXPECT_EQ(r, (std::vector<double>{2, 2, 2}));
  EXPECT_DOUBLE_EQ(tie_correction_term(xs), 3 * 3 * 3 - 3);
}

TEST(Spearman, PerfectMonotone) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 9, 16, 100};  // monotone, nonlinear
  const auto r = spearman(xs, ys);
  ASSERT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.coefficient, 1.0);
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
}

TEST(Spearman, PerfectAnticorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{10, 8, 6, 4, 2};
  const auto r = spearman(xs, ys);
  EXPECT_DOUBLE_EQ(r.coefficient, -1.0);
  // One-sided "greater" p-value for perfect negative correlation is 1.
  EXPECT_DOUBLE_EQ(spearman(xs, ys, Alternative::Greater).p_value, 1.0);
}

TEST(Spearman, ScipyCrossCheck) {
  // scipy.stats.spearmanr([1,2,3,4,5,6,7,8], [2,1,4,3,6,5,8,7])
  //   rho = 0.9047619, p = 0.00199 (two-sided)
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> ys{2, 1, 4, 3, 6, 5, 8, 7};
  const auto r = spearman(xs, ys);
  EXPECT_NEAR(r.coefficient, 0.9047619, 1e-6);
  EXPECT_NEAR(r.p_value, 0.00199, 2e-4);
}

TEST(Spearman, InvalidOnConstantSeries) {
  const std::vector<double> xs{1, 1, 1, 1};
  const std::vector<double> ys{1, 2, 3, 4};
  EXPECT_FALSE(spearman(xs, ys).valid);
}

TEST(Spearman, InvalidOnTooFewPoints) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{3, 4};
  EXPECT_FALSE(spearman(xs, ys).valid);
}

TEST(Spearman, InvariantUnderMonotoneTransform) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(rng.uniform());
    ys.push_back(0.7 * xs.back() + 0.3 * rng.uniform());
  }
  const auto base = spearman(xs, ys);
  // exp() is strictly monotone: ranks (hence rho) must be unchanged.
  std::vector<double> xs_exp(xs.size());
  std::transform(xs.begin(), xs.end(), xs_exp.begin(),
                 [](double v) { return std::exp(v); });
  const auto transformed = spearman(xs_exp, ys);
  EXPECT_DOUBLE_EQ(base.coefficient, transformed.coefficient);
  EXPECT_DOUBLE_EQ(base.p_value, transformed.p_value);
}

TEST(Pearson, LinearData) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2.1, 3.9, 6.2, 7.8, 10.1};
  const auto r = pearson(xs, ys);
  EXPECT_GT(r.coefficient, 0.99);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(MannWhitney, ScipyCrossCheck) {
  // scipy.stats.mannwhitneyu([1,2,3,4,5], [6,7,8,9,10],
  //                          alternative="less") -> U = 0, p = 0.00404...
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{6, 7, 8, 9, 10};
  const auto t = mann_whitney_u(xs, ys, Alternative::Less);
  ASSERT_TRUE(t.valid);
  EXPECT_DOUBLE_EQ(t.statistic, 0.0);
  // Normal approximation with continuity correction: p ~ 0.006 (exact is
  // 0.004); both firmly below 0.05.
  EXPECT_LT(t.p_value, 0.01);
}

TEST(MannWhitney, SymmetricSamplesGiveLargeP) {
  const std::vector<double> xs{1, 3, 5, 7, 9, 11};
  const std::vector<double> ys{2, 4, 6, 8, 10, 12};
  const auto t = mann_whitney_u(xs, ys, Alternative::TwoSided);
  EXPECT_GT(t.p_value, 0.5);
}

TEST(MannWhitney, DirectionalityConsistent) {
  Rng rng(31);
  std::vector<double> lo, hi;
  for (int i = 0; i < 40; ++i) {
    lo.push_back(rng.normal(0.0, 1.0));
    hi.push_back(rng.normal(2.0, 1.0));
  }
  EXPECT_LT(mann_whitney_u(lo, hi, Alternative::Less).p_value, 0.01);
  EXPECT_GT(mann_whitney_u(lo, hi, Alternative::Greater).p_value, 0.95);
}

TEST(MannWhitney, AllValuesTied) {
  const std::vector<double> xs{4, 4, 4};
  const std::vector<double> ys{4, 4, 4, 4};
  const auto t = mann_whitney_u(xs, ys, Alternative::Less);
  ASSERT_TRUE(t.valid);
  EXPECT_DOUBLE_EQ(t.p_value, 1.0);
}

TEST(MannWhitney, EmptyInputInvalid) {
  EXPECT_FALSE(
      mann_whitney_u(std::vector<double>{}, std::vector<double>{1.0}).valid);
}

TEST(KsTwoSample, IdenticalSamples) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  const auto t = ks_two_sample(xs, xs);
  EXPECT_DOUBLE_EQ(t.statistic, 0.0);
  EXPECT_GT(t.p_value, 0.99);
}

TEST(KsTwoSample, DisjointSupports) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(i + 100);
  }
  const auto t = ks_two_sample(xs, ys);
  EXPECT_DOUBLE_EQ(t.statistic, 1.0);
  EXPECT_LT(t.p_value, 1e-6);
}

TEST(KsTwoSample, ScipyCrossCheck) {
  // xs = 1..20, ys = xs + 5.5. The sup-distance is reached at x = 20:
  // F1 = 1.0, F2 = 14/20 = 0.7, so D = 0.3; asymptotic p ~ 0.28.
  std::vector<double> xs, ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(i + 5.5);
  }
  const auto t = ks_two_sample(xs, ys);
  EXPECT_NEAR(t.statistic, 0.3, 1e-12);
  EXPECT_NEAR(t.p_value, 0.28, 0.06);
}

TEST(WelchT, DetectsMeanShift) {
  Rng rng(37);
  std::vector<double> a, b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(1.0, 2.0));
  }
  EXPECT_LT(welch_t(a, b, Alternative::Less).p_value, 0.01);
}

// Property sweep: under H0 (same distribution) the tests should rarely
// report significance. With 40 trials at alpha=0.05, seeing more than 8
// rejections would indicate a broken test statistic.
class NullCalibration : public ::testing::TestWithParam<int> {};

TEST_P(NullCalibration, RejectionRateBounded) {
  Rng rng(1000 + GetParam());
  int mwu_rejections = 0, ks_rejections = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a, b;
    for (int i = 0; i < 30; ++i) {
      a.push_back(rng.normal(0, 1));
      b.push_back(rng.normal(0, 1));
    }
    if (mann_whitney_u(a, b, Alternative::TwoSided).p_value < 0.05) {
      ++mwu_rejections;
    }
    if (ks_two_sample(a, b).p_value < 0.05) ++ks_rejections;
  }
  EXPECT_LE(mwu_rejections, 8);
  EXPECT_LE(ks_rejections, 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NullCalibration, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace wehey::stats
