// A full in-the-wild localization session, as a WeHeY user would see it:
//
//   1. the standard WeHe test detects differentiation on the path to the
//      client's cellular ISP;
//   2. the client queries the topology database for a pair of servers
//      whose paths converge inside the ISP;
//   3. the simultaneous replays run and WeHeY localizes (or not).
//
//   ./localize_wild [isp-index 0..4] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/localizer.hpp"
#include "core/wehe.hpp"
#include "experiments/wild.hpp"
#include "topology/construction.hpp"
#include "topology/database.hpp"
#include "topology/synthetic.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main(int argc, char** argv) {
  const int isp_index = argc > 1 ? std::atoi(argv[1]) : 0;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  const auto isps = default_isp_models();
  if (isp_index < 0 || isp_index >= static_cast<int>(isps.size())) {
    std::fprintf(stderr, "isp-index must be 0..4\n");
    return 1;
  }

  WildConfig cfg;
  cfg.isp = isps[static_cast<std::size_t>(isp_index)];
  cfg.seed = seed;
  std::printf("client ISP: %s (per-client throttling at %.0f%% of the "
              "trace rate%s)\n",
              cfg.isp.name.c_str(), 100.0 * cfg.isp.throttle_factor,
              cfg.isp.delayed_fixed_rate ? ", delayed activation" : "");

  // --- Step 0: the standard WeHe test on p0. ---
  const auto p0_orig = run_wild_phase(cfg, Phase::SingleOriginal);
  const auto p0_inv = run_wild_phase(cfg, Phase::SingleInverted);
  const auto wehe =
      core::detect_differentiation(p0_orig.p1.meas, p0_inv.p1.meas);
  std::printf("WeHe test: original %.2f Mbps vs bit-inverted %.2f Mbps -> "
              "%s (KS p=%.3g)\n",
              wehe.original_mean_bps / 1e6, wehe.inverted_mean_bps / 1e6,
              wehe.differentiation ? "DIFFERENTIATION" : "no differentiation",
              wehe.p_value);
  if (!wehe.differentiation) {
    std::printf("nothing to localize; exiting\n");
    return 0;
  }

  // --- Step 1: topology construction (\xc2\xa73.3). ---
  // Ingest a (synthetic) M-Lab traceroute batch and look this client up.
  Rng rng(seed);
  topology::SyntheticConfig topo_cfg;
  topo_cfg.num_clients = 300;
  topo_cfg.p_client_has_traceroutes = 1.0;  // this client measured recently
  const auto dataset = topology::generate_mlab_dataset(topo_cfg, rng);
  topology::TopologyConstructor tc;
  topology::TopologyDatabase db;
  db.ingest(tc.construct(dataset.records));
  std::printf("topology DB: %zu prefixes with suitable topologies "
              "(%zu server pairs)\n",
              db.prefix_count(), db.pair_count());
  // Pick any client prefix that has a topology, standing in for ours.
  topology::ServerPair pair;
  bool found = false;
  for (const auto& truth : dataset.truth) {
    if (const auto p = db.pick(truth.ip)) {
      pair = *p;
      found = true;
      break;
    }
  }
  if (!found) {
    std::printf("no suitable topology for this client: WeHeY cannot add "
                "evidence beyond WeHe\n");
    return 0;
  }
  std::printf("selected servers %s + %s (paths converge at %s inside the "
              "ISP)\n",
              pair.server1.c_str(), pair.server2.c_str(),
              pair.convergence_ip.c_str());

  // --- Steps 2-4: simultaneous replays and localization. ---
  const auto t_diff = build_wild_t_diff(cfg, 12);
  const auto outcome = run_wild_test(cfg, t_diff);
  const auto& loc = outcome.localization;
  std::printf("confirmation on both paths: %s\n",
              loc.confirmation_passed ? "yes" : "no");
  std::printf("throughput comparison: p=%.3g -> %s\n",
              loc.throughput.p_value,
              loc.throughput.common_bottleneck ? "common bottleneck"
                                               : "no evidence");
  if (loc.verdict == core::Verdict::EvidenceWithinTargetArea) {
    std::printf("\nVERDICT: differentiation localized WITHIN %s (%s)\n",
                cfg.isp.name.c_str(),
                loc.mechanism == core::Mechanism::PerClientThrottling
                    ? "per-client throttling"
                    : "collective throttling");
  } else {
    std::printf("\nVERDICT: no evidence beyond WeHe's detection\n");
  }
  return 0;
}
