// Building a network by hand with the netsim/transport primitives — the
// lowest-level public API. Constructs a three-link chain with an
// Appendix-C.1 rate-limiter in the middle, runs a throttled TCP flow next
// to an unthrottled one, and prints what each experienced.
//
//   server --10ms-- [ 40 Mbps ] --2ms-- [ rate-limiter ] --5ms-- client
//
//   ./custom_topology [throttle_mbps]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "netsim/link.hpp"
#include "netsim/queue.hpp"
#include "netsim/simulator.hpp"
#include "experiments/network.hpp"
#include "transport/tcp.hpp"

using namespace wehey;
using namespace wehey::netsim;
using namespace wehey::transport;

int main(int argc, char** argv) {
  const double throttle_mbps = argc > 1 ? std::atof(argv[1]) : 3.0;

  Simulator sim;
  PacketIdSource ids;

  // Client side: a demux delivering to per-flow receivers.
  Demux client;

  // The chain, built back-to-front.
  auto lp = experiments::LimiterParams{};  // sized by hand below
  (void)lp;
  const Rate throttle = mbps(throttle_mbps);
  auto limiter = std::make_unique<RateLimiterDisc>(
      std::make_unique<FifoDisc>(256 * 1024),
      std::make_unique<TbfDisc>(throttle,
                                static_cast<std::int64_t>(
                                    bytes_in(throttle, milliseconds(40))),
                                static_cast<std::int64_t>(
                                    bytes_in(throttle, milliseconds(20)))));
  Link last_mile(sim, mbps(40), milliseconds(5), std::move(limiter),
                 &client);
  Link backbone(sim, mbps(40), milliseconds(2),
                std::make_unique<FifoDisc>(512 * 1024), &last_mile);
  Link access(sim, mbps(40), milliseconds(10),
              std::make_unique<FifoDisc>(512 * 1024), &backbone);

  // Two flows: flow 1 is differentiated (dscp=1 -> the TBF class), flow 2
  // rides the default class.
  TcpConfig cfg;
  Pipe ack1(sim, milliseconds(17));
  Pipe ack2(sim, milliseconds(17));
  TcpSender snd1(sim, ids, cfg, 1, kDscpDifferentiated, &access);
  TcpSender snd2(sim, ids, cfg, 2, kDscpDefault, &access);
  TcpReceiver rcv1(sim, ids, cfg, 1, &ack1);
  TcpReceiver rcv2(sim, ids, cfg, 2, &ack2);
  ack1.set_next(&snd1);
  ack2.set_next(&snd2);
  client.add_route(1, &rcv1);
  client.add_route(2, &rcv2);

  snd1.supply(20'000'000);
  snd2.supply(20'000'000);
  sim.run(seconds(15));

  auto report = [&](const char* name, const TcpSender& snd,
                    const TcpReceiver& rcv) {
    std::printf("%s: %.2f Mbps, retx rate %.3f, srtt %.1f ms, "
                "%llu timeouts\n",
                name,
                rcv.received_bytes() * 8.0 / to_seconds(sim.now()) / 1e6,
                snd.measurement().loss_rate(),
                to_milliseconds(snd.srtt()),
                static_cast<unsigned long long>(snd.timeouts()));
  };
  std::printf("rate-limiter at %.1f Mbps on the last-mile link:\n",
              throttle_mbps);
  report("  differentiated flow", snd1, rcv1);
  report("  default-class flow ", snd2, rcv2);
  const auto& disc =
      static_cast<const RateLimiterDisc&>(last_mile.disc());
  std::printf("  limiter drops: %llu\n",
              static_cast<unsigned long long>(disc.throttled_drops()));
  return 0;
}
