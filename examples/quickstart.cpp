// Quickstart: the full WeHeY pipeline on one emulated scenario.
//
// Builds the Figure-1 topology with a collective rate-limiter on the
// common link (the client ISP throttling a service's traffic plus part of
// the background), replays a TCP trace pair simultaneously along both
// paths, confirms differentiation per path with WeHe's detector, and runs
// the two common-bottleneck detectors.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "core/localizer.hpp"
#include "experiments/history.hpp"
#include "experiments/params.hpp"
#include "experiments/scenario.hpp"

using namespace wehey;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  experiments::ScenarioConfig cfg =
      experiments::default_scenario("Netflix", seed);
  const auto derived = experiments::derive(cfg);
  std::printf("Scenario: app=%s duration=%.0fs trace=%.2f Mbps "
              "limiter=%.2f Mbps (burst %lld B, queue %lld B)\n",
              cfg.app.c_str(), to_seconds(cfg.replay_duration),
              derived.trace_rate / 1e6, derived.limiter_rate / 1e6,
              static_cast<long long>(derived.net.limiter.burst),
              static_cast<long long>(derived.net.limiter.limit));

  // 1. Simultaneous replays (original, then bit-inverted).
  std::printf("\n-- simultaneous replays --\n");
  const auto sim = experiments::run_simultaneous_experiment(cfg);
  const auto& p1 = sim.original.p1;
  const auto& p2 = sim.original.p2;
  std::printf("p1: throughput %.2f Mbps, retx rate %.3f, queue delay %.1f ms\n",
              p1.avg_throughput_bps / 1e6, p1.retx_rate,
              p1.avg_queuing_delay_ms);
  std::printf("p2: throughput %.2f Mbps, retx rate %.3f, queue delay %.1f ms\n",
              p2.avg_throughput_bps / 1e6, p2.retx_rate,
              p2.avg_queuing_delay_ms);
  std::printf("p1 inverted: throughput %.2f Mbps (loss %.3f)\n",
              sim.inverted.p1.avg_throughput_bps / 1e6,
              sim.inverted.p1.retx_rate);
  std::printf("differentiation confirmed on both paths: %s "
              "(p1 KS p=%.3g, p2 KS p=%.3g)\n",
              sim.differentiation_confirmed ? "yes" : "no",
              sim.p1_confirmation.p_value, sim.p2_confirmation.p_value);

  // 2. Loss-trend correlation (Algorithm 1).
  std::printf("\n-- loss-trend correlation --\n");
  const auto corr = core::loss_trend_correlation(
      sim.original.p1.meas, sim.original.p2.meas, milliseconds(cfg.rtt1_ms));
  for (const auto& o : corr.per_size) {
    std::printf("  sigma=%6.2fs intervals=%3zu rho=%+.3f p=%.4f %s\n",
                to_seconds(o.sigma), o.retained_intervals, o.rho, o.p_value,
                o.correlated ? "correlated" : "-");
  }
  std::printf("common bottleneck (collective throttling): %s (%zu/%zu)\n",
              corr.common_bottleneck ? "DETECTED" : "not detected",
              corr.sizes_correlated, corr.sizes_tested);

  // 3. The full pipeline, including the throughput comparison (needs the
  //    p0 single replays and the historical T_diff data).
  std::printf("\n-- full localization --\n");
  experiments::HistoryConfig hist;
  hist.replays = 8;  // keep the example quick
  const auto t_diff = experiments::build_t_diff_history(cfg, hist);
  const auto input = experiments::run_full_experiment(cfg, t_diff);
  Rng rng(seed);
  const auto loc = core::localize(input, rng);
  std::printf("verdict: %s\n",
              loc.verdict == core::Verdict::EvidenceWithinTargetArea
                  ? "evidence of differentiation WITHIN the client ISP"
                  : "no evidence beyond WeHe's detection");
  const char* mech = loc.mechanism == core::Mechanism::PerClientThrottling
                         ? "per-client throttling"
                     : loc.mechanism == core::Mechanism::CollectiveThrottling
                         ? "collective throttling"
                         : "none";
  std::printf("mechanism: %s (throughput-comparison p=%.3g; loss-trend %zu/%zu)\n",
              mech, loc.throughput.p_value, loc.loss.sizes_correlated,
              loc.loss.sizes_tested);
  return 0;
}
