// The §4.3 design journey, replayed: why classic binary loss tomography
// fails under traffic differentiation, and how the loss-trend view fixes
// it.
//
// Runs one collective-throttling scenario (rate-limiter on the common
// link) and applies, to the same measurements:
//   V0  BinLossTomo++ across a range of loss thresholds,
//   V1  BinLossTomoNoParams (threshold/interval sweep with averaged gaps),
//   V2  loss-trend tomography (lossy = "loss rate increased"),
//   and WeHeY's final loss-trend correlation algorithm.
//
//   ./tomography_pitfalls [seed]
#include <cstdio>
#include <cstdlib>

#include "core/loss_correlation.hpp"
#include "core/tomography.hpp"
#include "experiments/params.hpp"
#include "experiments/scenario.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 43;

  auto cfg = default_scenario("Netflix", seed);
  std::printf("scenario: collective throttling on the common link "
              "(app=%s, seed=%llu)\n\n",
              cfg.app.c_str(), static_cast<unsigned long long>(seed));
  const auto sim = run_simultaneous_experiment(cfg);
  if (!sim.differentiation_confirmed) {
    std::printf("WeHe did not detect differentiation on this seed; try "
                "another.\n");
    return 0;
  }
  const auto& m1 = sim.original.p1.meas;
  const auto& m2 = sim.original.p2.meas;
  const Time rtt = milliseconds(cfg.rtt1_ms);
  std::printf("measured loss rates: p1 %.3f, p2 %.3f (ground truth: both "
              "paths share the rate-limiter)\n\n",
              m1.loss_rate(), m2.loss_rate());

  std::printf("V0: BinLossTomo++ at sigma = 0.6 s, across thresholds\n");
  const double max_loss = std::max(m1.loss_rate(), m2.loss_rate());
  for (int i = 1; i <= 8; ++i) {
    const double tau = 1.8 * max_loss * i / 8.0;
    const auto perf = core::bin_loss_tomo(m1, m2, milliseconds(600), tau);
    const bool verdict =
        perf.valid && perf.x_1 > perf.x_c && perf.x_2 > perf.x_c;
    std::printf("  tau=%.4f  x_c=%.3f x_1=%.3f x_2=%.3f -> %s\n", tau,
                perf.x_c, perf.x_1, perf.x_2,
                verdict ? "common bottleneck" : "no evidence");
  }
  std::printf("  (the verdict flips with the threshold — the "
              "parameter-sensitivity problem)\n\n");

  const auto v1 = core::bin_loss_tomo_no_params(m1, m2, rtt);
  std::printf("V1: BinLossTomoNoParams: gaps %.3f/%.3f over %zu "
              "combinations -> %s\n",
              v1.avg_gap_1, v1.avg_gap_2, v1.combinations,
              v1.common_bottleneck ? "common bottleneck" : "no evidence");

  const auto v2 = core::loss_trend_tomography(m1, m2, rtt);
  std::printf("V2: loss-trend tomography: gaps %.3f/%.3f -> %s\n",
              v2.avg_gap_1, v2.avg_gap_2,
              v2.common_bottleneck ? "common bottleneck" : "no evidence");

  const auto final = core::loss_trend_correlation(m1, m2, rtt);
  std::printf("WeHeY: loss-trend correlation: %zu/%zu interval sizes "
              "correlated -> %s\n",
              final.sizes_correlated, final.sizes_tested,
              final.common_bottleneck ? "COMMON BOTTLENECK" : "no evidence");
  return 0;
}
