// wehey_cli — a command-line front end over the library.
//
//   wehey_cli testbed  [--app NAME] [--seed N] [--placement common|nc|perflow]
//                      [--factor F] [--queue Q] [--fraction P] [--rtt2 MS]
//                      [--cc cubic|reno|bbr] [--unmodified] [--spoof]
//   wehey_cli wild     [--isp 0..4] [--seed N] [--app NAME] [--sanity]
//   wehey_cli session  [--seed N] [--churn] [--decline]
//   wehey_cli topology [--clients N] [--seed N]
//   wehey_cli sweep    [--app NAME] [--runs N] [--fp]
//                      [--checkpoint PATH [--resume]] [--out PATH]
//                      (with --checkpoint/--out: full experiments ->
//                      sweep_report.v1, one flushed journal line per
//                      completed run; --resume skips journaled runs and
//                      reproduces the uninterrupted bytes)
//   wehey_cli trace    [--seed N] [--max-events N]   (ascii packet trace)
//   wehey_cli full     [--app NAME] [--seed N] [--out PATH] [--faults NAME]
//                      (full 4-phase experiment -> RunReport; JSON to
//                      stdout when no --out/WEHEY_REPORT destination)
//   wehey_cli inspect  FILE...   (render report/sweep/trace JSON as tables)
//   wehey_cli merge    FILE... [--out PATH] [--name SWEEP]
//                      (offline per-run reports -> one sweep_report.v1)
//   wehey_cli compare  BASELINE CANDIDATE [--tol X] [--tol-key RE=X]...
//                      [--ignore RE]... [--min-key RE=X]...
//                      [--require-key RE]...
//                      (regression gate: nonzero exit on drift)
//
// The wild and session commands honour the observability environment
// (WEHEY_TRACE=path, WEHEY_METRICS=1, WEHEY_REPORT=path /
// WEHEY_REPORT_DIR=dir, WEHEY_REPORT_MODE=per-run|sweep|both) and inject
// a shipped chaos plan with --faults NAME (or WEHEY_FAULT_PLAN=NAME;
// seed: WEHEY_CHAOS_SEED). Engine runtime telemetry: WEHEY_RUNTIME_REPORT=
// path writes a wall-clock wehey.runtime_report.v1 sidecar (never part of
// the deterministic report files), WEHEY_PROGRESS=plain|tty streams live
// sweep progress to stderr.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/loss_correlation.hpp"
#include "core/coupling.hpp"
#include "experiments/history.hpp"
#include "experiments/params.hpp"
#include "experiments/wild.hpp"
#include "faults/plan.hpp"
#include "experiments/scenario.hpp"
#include "netsim/tracer.hpp"
#include "obs/aggregate.hpp"
#include "obs/checkpoint.hpp"
#include "obs/inspect.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/runtime.hpp"
#include "replay/session.hpp"
#include "topology/construction.hpp"
#include "topology/database.hpp"
#include "topology/synthetic.hpp"
#include "trace/apps.hpp"
#include "trace/background.hpp"

using namespace wehey;
using namespace wehey::experiments;

namespace {

/// Minimal --key value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  double num(const std::string& key, double dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Process-level observation shared by the subcommands. Commands fill
/// `report`; main() binds the recorder and writes the artifacts on exit.
/// WEHEY_REPORT_MODE picks what finish() writes: the per-run report
/// (default), a single-run wehey.sweep_report.v1 (sweep), or both.
struct CliObservation {
  obs::RunObservation run;
  obs::RunReport report;

  void finish() {
    if (!run.enabled()) return;
    if (!run.trace_path.empty()) {
      if (run.write_trace()) {
        std::fprintf(stderr, "trace: %s (+ %s)\n", run.trace_path.c_str(),
                     obs::RunObservation::csv_path(run.trace_path).c_str());
      } else {
        std::fprintf(stderr, "trace: FAILED to write %s\n",
                     run.trace_path.c_str());
      }
    }
    if (report.run.empty()) return;  // command doesn't emit a report
    if (report.profile.empty()) {
      if (run.recorder != nullptr && run.recorder->trace_on()) {
        report.profile = obs::profile_from_spans(
            obs::profile_spans_from_timeline(run.recorder->timeline()));
      } else if (!report.stages.empty()) {
        std::vector<obs::ProfileSpan> spans;
        for (std::size_t i = 0; i < report.stages.size(); ++i) {
          const auto& s = report.stages[i];
          spans.push_back({static_cast<std::int64_t>(i), s.name,
                           s.sim_start, s.sim_end, s.wall_ms});
        }
        report.profile = obs::profile_from_spans(std::move(spans));
      }
    }
    const obs::MetricsRegistry* metrics = &run.recorder->metrics();
    const obs::ReportMode mode = obs::report_mode_from_env();
    if (mode != obs::ReportMode::kSweep) {
      const std::string path = obs::report_path_from_env(report.run);
      if (!path.empty()) {
        if (obs::write_report_file(path, report.to_json(metrics))) {
          std::fprintf(stderr, "report: %s\n", path.c_str());
        } else {
          std::fprintf(stderr, "report: FAILED to write %s\n", path.c_str());
        }
      }
    }
    if (mode != obs::ReportMode::kPerRun) {
      const std::string path = obs::sweep_path_from_env(report.run);
      if (!path.empty()) {
        obs::SweepAggregator agg(report.run);
        agg.add_run(report, metrics);
        if (obs::write_report_file(path, agg.to_json())) {
          std::fprintf(stderr, "sweep report: %s (%zu runs)\n", path.c_str(),
                       agg.runs());
        } else {
          std::fprintf(stderr, "sweep report: FAILED to write %s\n",
                       path.c_str());
        }
      }
    }
  }
};

CliObservation* g_obs = nullptr;

/// Shipped chaos plan from --faults NAME, falling back to WEHEY_FAULT_PLAN;
/// the fault seed comes from --chaos-seed / WEHEY_CHAOS_SEED (default 1).
std::optional<faults::FaultPlan> fault_plan_from(const Args& args) {
  std::string name = args.get("faults", "");
  if (name.empty()) {
    if (const char* env = std::getenv("WEHEY_FAULT_PLAN")) name = env;
  }
  if (name.empty() || name == "0") return std::nullopt;
  std::uint64_t seed = static_cast<std::uint64_t>(args.num("chaos-seed", 0));
  if (seed == 0) {
    if (const char* env = std::getenv("WEHEY_CHAOS_SEED")) {
      seed = std::strtoull(env, nullptr, 10);
    }
  }
  if (seed == 0) seed = 1;
  return faults::shipped_plan(name, seed);
}

ScenarioConfig scenario_from(const Args& args) {
  auto cfg = default_scenario(args.get("app", "Netflix"),
                              static_cast<std::uint64_t>(args.num("seed", 42)));
  const std::string placement = args.get("placement", "common");
  if (placement == "nc") {
    cfg.placement = Placement::NonCommonLinks;
  } else if (placement == "perflow") {
    cfg.placement = Placement::PerFlowCommonLink;
  }
  cfg.input_rate_factor = args.num("factor", cfg.input_rate_factor);
  cfg.queue_burst_factor = args.num("queue", cfg.queue_burst_factor);
  cfg.bg_diff_fraction = args.num("fraction", cfg.bg_diff_fraction);
  cfg.rtt2_ms = args.num("rtt2", cfg.rtt2_ms);
  cfg.modified_traces = !args.has("unmodified");
  cfg.spoof_same_flow = args.has("spoof");
  const std::string cc = args.get("cc", "cubic");
  if (cc == "reno") cfg.tcp_cc = transport::CongestionControl::NewReno;
  if (cc == "bbr") cfg.tcp_cc = transport::CongestionControl::Bbr;
  return cfg;
}

int cmd_testbed(const Args& args) {
  const auto cfg = scenario_from(args);
  const auto d = derive(cfg);
  std::printf("app=%s seed=%llu trace=%.2f Mbps limiter=%.2f Mbps\n",
              cfg.app.c_str(),
              static_cast<unsigned long long>(cfg.seed),
              d.trace_rate / 1e6, d.limiter_rate / 1e6);
  const auto sim = run_simultaneous_experiment(cfg);
  std::printf("WeHe confirmation: %s (p1 p=%.3g, p2 p=%.3g)\n",
              sim.differentiation_confirmed ? "both paths" : "NOT confirmed",
              sim.p1_confirmation.p_value, sim.p2_confirmation.p_value);
  std::printf("p1: %.2f Mbps, loss %.3f | p2: %.2f Mbps, loss %.3f\n",
              sim.original.p1.avg_throughput_bps / 1e6,
              sim.original.p1.retx_rate,
              sim.original.p2.avg_throughput_bps / 1e6,
              sim.original.p2.retx_rate);
  const auto corr = core::loss_trend_correlation(
      sim.original.p1.meas, sim.original.p2.meas,
      milliseconds(std::max(cfg.rtt1_ms, cfg.rtt2_ms)));
  std::printf("loss-trend correlation: %zu/%zu sizes -> %s\n",
              corr.sizes_correlated, corr.sizes_tested,
              corr.common_bottleneck ? "COMMON BOTTLENECK" : "no evidence");
  const auto coupled = core::coupled_bottleneck_test(
      sim.original.p1.meas.throughput_samples(100),
      sim.original.p2.meas.throughput_samples(100));
  std::printf("coupled-bottleneck test: %s (ratio %.2f, corr %+.2f)\n",
              coupled.coupled ? "COUPLED" : "not coupled", coupled.ratio,
              coupled.correlation);
  return 0;
}

int cmd_wild(const Args& args) {
  const int isp_index = static_cast<int>(args.num("isp", 0));
  const auto isps = default_isp_models();
  if (isp_index < 0 || isp_index >= static_cast<int>(isps.size())) {
    std::fprintf(stderr, "--isp must be 0..4\n");
    return 2;
  }
  WildConfig cfg;
  cfg.isp = isps[static_cast<std::size_t>(isp_index)];
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 7));
  cfg.app = args.get("app", "Netflix");
  const auto plan = fault_plan_from(args);
  if (plan.has_value()) {
    cfg.fault_plan = &*plan;
    std::printf("fault plan: %s (seed %llu)\n", plan->name.c_str(),
                static_cast<unsigned long long>(plan->seed));
  }
  const auto t_diff = build_wild_t_diff(cfg, 12);
  // The reported runner fills the report (stages, self-time profile,
  // verdict, injection) and absorbs its metrics into the CLI recorder.
  const auto res = run_wild_test_reported(cfg, t_diff,
                                          /*sanity_check=*/args.has("sanity"),
                                          "wehey_cli_wild");
  const auto& out = res.outcome;
  std::printf("%s %s: confirmed=%s localized=%s (throughput p=%.3g)\n",
              cfg.isp.name.c_str(), cfg.app.c_str(),
              out.localization.confirmation_passed ? "yes" : "no",
              out.localized ? "YES" : "no",
              out.localization.throughput.p_value);
  if (out.injection.total() > 0) {
    std::printf("injected faults:");
    for (const auto& [kind, count] : out.injection.by_kind()) {
      if (count > 0) std::printf(" %s=%d", kind, count);
    }
    std::printf(" (%d phase%s hit)\n", out.faulted_phases,
                out.faulted_phases == 1 ? "" : "s");
  }
  g_obs->report = res.report;
  return 0;
}

int cmd_session(const Args& args) {
  replay::SessionConfig cfg;
  cfg.scenario = default_scenario(
      args.get("app", "Netflix"),
      static_cast<std::uint64_t>(args.num("seed", 2)));
  cfg.route_churn = args.has("churn");
  cfg.user_consents = !args.has("decline");
  const auto plan = fault_plan_from(args);
  if (plan.has_value()) {
    cfg.fault_plan = *plan;
    std::printf("fault plan: %s (seed %llu)\n", plan->name.c_str(),
                static_cast<unsigned long long>(plan->seed));
  }
  HistoryConfig hist;
  hist.replays = 6;
  cfg.t_diff_history = build_t_diff_history(cfg.scenario, hist);
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  const auto result = replay::run_session(cfg, db);
  for (const auto& ev : result.events) {
    std::printf("[%9.3fs] %s\n", to_seconds(ev.at), ev.what.c_str());
  }
  std::printf("outcome: %s\n", replay::to_string(result.outcome));
  g_obs->report = replay::make_run_report(cfg, result, "wehey_cli_session");
  return 0;
}

int cmd_topology(const Args& args) {
  Rng rng(static_cast<std::uint64_t>(args.num("seed", 1)));
  topology::SyntheticConfig cfg;
  cfg.num_clients = static_cast<std::size_t>(args.num("clients", 500));
  const auto ds = topology::generate_mlab_dataset(cfg, rng);
  topology::TopologyConstructor tc;
  const auto entries = tc.construct(ds.records);
  std::printf("records=%zu discarded(incomplete=%zu aliased=%zu) "
              "destinations=%zu with-topology=%zu\n",
              tc.stats().input_records, tc.stats().discarded_incomplete,
              tc.stats().discarded_aliased, tc.stats().destinations,
              tc.stats().destinations_with_topology);
  return 0;
}

/// Checkpointed sweep: `runs` full 4-phase experiments, one flushed
/// wehey.sweep_checkpoint.v1 journal line per completed run. With
/// --resume, journaled runs are skipped and their reports re-absorbed in
/// index order, so the sweep report is byte-identical to an
/// uninterrupted run's.
int run_checkpointed_sweep(const Args& args, const std::string& app,
                           std::size_t runs, bool fp_mode) {
  const std::string ckpt_path = args.get("checkpoint", "");
  const std::string out_path = args.get("out", "");
  const auto plan = fault_plan_from(args);
  obs::SweepAggregator agg("wehey_cli_sweep");
  obs::CheckpointJournal journal;
  obs::CheckpointWriter writer;
  if (!ckpt_path.empty()) {
    if (args.has("resume")) {
      std::string error;
      if (!obs::CheckpointJournal::load(ckpt_path, journal, &error)) {
        std::fprintf(stderr, "sweep: %s\n", error.c_str());
        return 1;
      }
      if (!journal.empty()) {
        std::fprintf(stderr, "sweep: resuming from %s (%zu completed)\n",
                     ckpt_path.c_str(), journal.size());
      }
    }
    if (!writer.open(ckpt_path, "wehey_cli_sweep")) {
      std::fprintf(stderr, "sweep: cannot open checkpoint %s\n",
                   ckpt_path.c_str());
      return 1;
    }
  }
  obs::ProgressMeter meter("wehey_cli_sweep");
  meter.expect(runs);
  HistoryConfig hist;
  hist.replays = 6;
  for (std::size_t i = 0; i < runs; ++i) {
    char run_id[64];
    std::snprintf(run_id, sizeof(run_id), "wehey_cli_sweep.%s.r%03zu",
                  app.c_str(), i);
    if (const auto* entry = journal.find(run_id)) {
      obs::JsonValue doc;
      std::string error;
      if (!obs::json_parse(entry->report_json, doc, &error) ||
          !agg.add_run_json(doc, &error)) {
        std::fprintf(stderr, "sweep: bad journal entry %s: %s\n", run_id,
                     error.c_str());
        return 1;
      }
      const obs::JsonValue* verdict = doc.find("verdict");
      std::fprintf(stderr, "%s: cached (%s)\n", run_id,
                   verdict != nullptr ? verdict->str.c_str() : "?");
      meter.note_resumed();
      continue;
    }
    auto cfg = default_scenario(app, 7000 + i);
    if (fp_mode) cfg.placement = Placement::NonCommonLinks;
    if (plan.has_value()) cfg.fault_plan = &*plan;
    const auto t_diff = build_t_diff_history(cfg, hist);
    auto res = run_full_experiment_reported(cfg, t_diff, run_id);
    res.report.cell = app;
    if (writer.is_open()) {
      obs::CheckpointEntry entry;
      entry.run = run_id;
      entry.cell = res.report.cell;
      entry.seed = res.report.seed;
      entry.index = i;
      entry.report_json = res.report.to_json(&res.metrics);
      writer.append(entry);
    }
    agg.add_run(res.report, &res.metrics);
    std::fprintf(stderr, "%s: %s%s%s\n", run_id,
                 res.report.verdict.c_str(),
                 res.report.reason.empty() ? "" : " — ",
                 res.report.reason.c_str());
    meter.note_run(res.report.verdict, res.report.decision.has_margin,
                   res.report.decision.margin);
  }
  // One-line wall-clock summary on stderr — the report JSON may be going
  // to stdout, so this must never touch it.
  meter.finish();
  const std::string json = agg.to_json();
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  if (!obs::write_report_file(out_path, json)) {
    std::fprintf(stderr, "sweep: FAILED to write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "sweep report: %s (%zu runs)\n", out_path.c_str(),
               agg.runs());
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto app = args.get("app", "Netflix");
  const auto runs = static_cast<std::size_t>(args.num("runs", 6));
  const bool fp_mode = args.has("fp");
  if (args.has("checkpoint") || args.has("resume") || args.has("out")) {
    return run_checkpointed_sweep(args, app, runs, fp_mode);
  }
  int detected = 0, confirmed = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    auto cfg = default_scenario(app, 7000 + i);
    if (fp_mode) cfg.placement = Placement::NonCommonLinks;
    const auto sim = run_simultaneous_experiment(cfg);
    if (!sim.differentiation_confirmed && !fp_mode) continue;
    ++confirmed;
    detected += core::loss_trend_correlation(
                    sim.original.p1.meas, sim.original.p2.meas,
                    milliseconds(cfg.rtt1_ms))
                    .common_bottleneck;
  }
  if (fp_mode) {
    std::printf("%s: FP %d/%d\n", app.c_str(), detected, confirmed);
  } else {
    std::printf("%s: detected %d/%d confirmed (FN %d)\n", app.c_str(),
                detected, confirmed, confirmed - detected);
  }
  return 0;
}

int cmd_full(const Args& args) {
  auto cfg = scenario_from(args);
  const auto plan = fault_plan_from(args);
  if (plan.has_value()) {
    cfg.fault_plan = &*plan;
    std::fprintf(stderr, "fault plan: %s (seed %llu)\n", plan->name.c_str(),
                 static_cast<unsigned long long>(plan->seed));
  }
  HistoryConfig hist;
  hist.replays = 6;
  const auto t_diff = build_t_diff_history(cfg, hist);
  const auto res = run_full_experiment_reported(cfg, t_diff,
                                                "wehey_cli_full");
  std::fprintf(stderr, "verdict: %s%s%s\n", res.report.verdict.c_str(),
               res.report.reason.empty() ? "" : " — ",
               res.report.reason.c_str());
  const std::string json = res.report.to_json(&res.metrics);
  std::string path = args.get("out", "");
  if (path.empty()) path = obs::report_path_from_env("wehey_cli_full");
  if (path.empty()) {
    // Pipe-friendly: the report itself on stdout, commentary on stderr.
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  if (!obs::write_report_file(path, json)) {
    std::fprintf(stderr, "report: FAILED to write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "report: %s\n", path.c_str());
  return 0;
}

int cmd_trace(const Args& args) {
  // A short scenario with an ascii packet trace of the common link.
  auto cfg = scenario_from(args);
  cfg.replay_duration = seconds(3);
  const auto derived = derive(cfg);
  netsim::Simulator sim;
  Rng rng(cfg.seed);
  FigureOneNetwork net(sim, derived.net, rng);
  netsim::PacketTracer tracer;
  tracer.set_capacity(
      static_cast<std::size_t>(args.num("max-events", 200)));
  tracer.attach(net.common_link(), "l_c");

  Rng trace_rng(cfg.seed * 0x9e3779b9ULL + 17);
  auto t = trace::make_tcp_app_trace(cfg.base_trace_duration, trace_rng);
  t = trace::extend(t, cfg.replay_duration);
  transport::TcpConfig tcp;
  net.start_tcp_replay(1, t, 0, tcp);
  net.start_tcp_replay(2, t, milliseconds(5), tcp);
  net.run(cfg.replay_duration, seconds(1));
  tracer.dump(stdout);
  return 0;
}

/// Parse one per-run report file into `doc`; prints its own errors.
bool load_run_report(const std::string& path, obs::JsonValue& doc) {
  std::string text;
  if (!obs::read_file(path, text)) {
    std::fprintf(stderr, "merge: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!obs::json_parse(text, doc, &error)) {
    std::fprintf(stderr, "merge: %s: parse error: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  if (!obs::is_run_report(doc)) {
    std::fprintf(stderr, "merge: %s: not a wehey run report\n", path.c_str());
    return false;
  }
  return true;
}

/// Offline sweep aggregation: per-run report files in, one
/// wehey.sweep_report.v1 out. Byte-identical to the in-process sweep the
/// emitting binary writes under WEHEY_REPORT_MODE=sweep over the same
/// runs — CI diffs the two.
int cmd_merge(int argc, char** argv) {
  std::vector<std::string> files;
  std::string out_path;
  std::string name;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--name" && i + 1 < argc) {
      name = argv[++i];
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "merge: unknown flag %s\n", a.c_str());
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: wehey_cli merge FILE... [--out PATH] [--name "
                 "SWEEP]\n");
    return 2;
  }
  std::optional<obs::SweepAggregator> agg;
  for (const auto& path : files) {
    obs::JsonValue doc;
    if (!load_run_report(path, doc)) return 1;
    if (!agg.has_value()) {
      // Default sweep name: the first run name up to its first '.' —
      // per-run names follow "<sweep>.<cell>.r<index>".
      if (name.empty()) {
        const obs::JsonValue* run = doc.find("run");
        if (run != nullptr) name = run->str.substr(0, run->str.find('.'));
      }
      agg.emplace(name);
    }
    std::string error;
    if (!agg->add_run_json(doc, &error)) {
      std::fprintf(stderr, "merge: %s: %s\n", path.c_str(), error.c_str());
      return 1;
    }
  }
  const std::string json = agg->to_json();
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  if (!obs::write_report_file(out_path, json)) {
    std::fprintf(stderr, "merge: FAILED to write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "sweep report: %s (%zu runs)\n", out_path.c_str(),
               agg->runs());
  return 0;
}

/// Split a "REGEX=VALUE" flag operand at its last '='.
bool split_key_value(const std::string& arg, std::string& key,
                     double& value) {
  const auto eq = arg.rfind('=');
  if (eq == std::string::npos || eq == 0) return false;
  key = arg.substr(0, eq);
  value = std::atof(arg.c_str() + eq + 1);
  return true;
}

/// Regression gate: diff a candidate report (run or sweep) against a
/// committed baseline with relative tolerances. Exit 0 = within
/// tolerance, 1 = drift, 2 = usage/parse error.
int cmd_compare(int argc, char** argv) {
  std::vector<std::string> files;
  obs::CompareOptions opts;
  bool list_keys = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    std::string key;
    double value = 0.0;
    if (a == "--list-keys") {
      list_keys = true;
    } else if (a == "--tol" && i + 1 < argc) {
      opts.tolerance = std::atof(argv[++i]);
    } else if (a == "--tol-key" && i + 1 < argc) {
      if (!split_key_value(argv[++i], key, value)) {
        std::fprintf(stderr, "compare: --tol-key wants REGEX=TOL\n");
        return 2;
      }
      opts.key_tolerances.emplace_back(key, value);
    } else if (a == "--ignore" && i + 1 < argc) {
      opts.ignore.emplace_back(argv[++i]);
    } else if (a == "--min-key" && i + 1 < argc) {
      if (!split_key_value(argv[++i], key, value)) {
        std::fprintf(stderr, "compare: --min-key wants REGEX=BOUND\n");
        return 2;
      }
      opts.min_keys.emplace_back(key, value);
    } else if (a == "--require-key" && i + 1 < argc) {
      opts.require_keys.emplace_back(argv[++i]);
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "compare: unknown flag %s\n", a.c_str());
      return 2;
    } else {
      files.push_back(a);
    }
  }
  // Triage aid: print the flattened key space the regex flags match
  // against (--require-key / --min-key patterns that silently match
  // nothing are the usual failure). Keys come from the *last* file —
  // the candidate in a two-file invocation.
  if (list_keys) {
    if (files.empty() || files.size() > 2) {
      std::fprintf(stderr,
                   "usage: wehey_cli compare --list-keys [BASELINE] "
                   "CANDIDATE\n");
      return 2;
    }
    std::string text;
    if (!obs::read_file(files.back(), text)) {
      std::fprintf(stderr, "compare: cannot read %s\n", files.back().c_str());
      return 2;
    }
    obs::JsonValue doc;
    std::string error;
    if (!obs::json_parse(text, doc, &error)) {
      std::fprintf(stderr, "compare: %s: parse error: %s\n",
                   files.back().c_str(), error.c_str());
      return 2;
    }
    for (const auto& key : obs::flatten_keys(doc)) {
      std::printf("%s\n", key.c_str());
    }
    return 0;
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: wehey_cli compare BASELINE CANDIDATE [--tol X] "
                 "[--tol-key RE=X]... [--ignore RE]... [--min-key "
                 "RE=X]... [--require-key RE]... [--list-keys]\n");
    return 2;
  }
  obs::JsonValue docs[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!obs::read_file(files[static_cast<std::size_t>(i)], text)) {
      std::fprintf(stderr, "compare: cannot read %s\n",
                   files[static_cast<std::size_t>(i)].c_str());
      return 2;
    }
    std::string error;
    if (!obs::json_parse(text, docs[i], &error)) {
      std::fprintf(stderr, "compare: %s: parse error: %s\n",
                   files[static_cast<std::size_t>(i)].c_str(),
                   error.c_str());
      return 2;
    }
  }
  // Surface trial-grid multi-thread timings (BENCH_parallel.json "grid"
  // blocks, recorded under bench/baselines/) so a drift verdict comes
  // with the wall-clock context of both sides.
  for (int i = 0; i < 2; ++i) {
    const obs::JsonValue* grid = docs[i].find("grid");
    const obs::JsonValue* runs = grid != nullptr ? grid->find("runs") : nullptr;
    if (runs == nullptr || runs->type != obs::JsonValue::Type::Array) continue;
    std::string line = i == 0 ? "grid timings (baseline):" :
                                "grid timings (candidate):";
    for (const auto& run : runs->array) {
      const obs::JsonValue* threads = run.find("threads");
      const obs::JsonValue* secs = run.find("seconds");
      const obs::JsonValue* speedup = run.find("speedup");
      if (threads == nullptr || secs == nullptr) continue;
      char buf[96];
      std::snprintf(buf, sizeof(buf), " %dT=%.3fs(%.2fx)",
                    static_cast<int>(threads->number), secs->number,
                    speedup != nullptr ? speedup->number : 0.0);
      line += buf;
    }
    std::fprintf(stderr, "note: %s\n", line.c_str());
  }
  const auto result = obs::compare_reports(docs[0], docs[1], opts);
  for (const auto& note : result.notes) {
    std::fprintf(stderr, "note: %s\n", note.c_str());
  }
  for (const auto& failure : result.failures) {
    std::printf("FAIL: %s\n", failure.c_str());
  }
  if (result.ok) {
    std::printf("compare: OK (%s vs %s, tol %.3g)\n", files[1].c_str(),
                files[0].c_str(), opts.tolerance);
    return 0;
  }
  std::printf("compare: %zu metric(s) out of tolerance\n",
              result.failures.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: wehey_cli <testbed|wild|session|topology|sweep|"
                 "trace|full|inspect|merge|compare> [--flags]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "inspect") {
    // Positional file arguments, no observation setup: a pure reader.
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: wehey_cli inspect "
                   "<report.json|sweep.json|trace.json>...\n");
      return 2;
    }
    int rc = 0;
    for (int i = 2; i < argc; ++i) {
      if (!obs::inspect_file(argv[i], stdout)) rc = 1;
    }
    return rc;
  }
  if (cmd == "merge") return cmd_merge(argc, argv);
  if (cmd == "compare") return cmd_compare(argc, argv);
  const Args args(argc, argv, 2);
  CliObservation observation;
  observation.run = obs::RunObservation::from_env();
  obs::runtime::enable_from_env();
  g_obs = &observation;
  obs::ScopedRecorder bind(observation.run.recorder.get());
  int rc = 2;
  if (cmd == "testbed") {
    rc = cmd_testbed(args);
  } else if (cmd == "wild") {
    rc = cmd_wild(args);
  } else if (cmd == "session") {
    rc = cmd_session(args);
  } else if (cmd == "topology") {
    rc = cmd_topology(args);
  } else if (cmd == "sweep") {
    rc = cmd_sweep(args);
  } else if (cmd == "trace") {
    rc = cmd_trace(args);
  } else if (cmd == "full") {
    rc = cmd_full(args);
  } else {
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  }
  observation.finish();
  obs::runtime::write_runtime_report_from_env(
      observation.report.run.empty() ? "wehey_cli." + cmd
                                     : observation.report.run);
  return rc;
}
