// wehey_cli — a command-line front end over the library.
//
//   wehey_cli testbed  [--app NAME] [--seed N] [--placement common|nc|perflow]
//                      [--factor F] [--queue Q] [--fraction P] [--rtt2 MS]
//                      [--cc cubic|reno|bbr] [--unmodified] [--spoof]
//   wehey_cli wild     [--isp 0..4] [--seed N] [--app NAME] [--sanity]
//   wehey_cli session  [--seed N] [--churn] [--decline]
//   wehey_cli topology [--clients N] [--seed N]
//   wehey_cli sweep    [--app NAME] [--runs N] [--fp]
//   wehey_cli trace    [--seed N] [--max-events N]   (ascii packet trace)
//   wehey_cli full     [--app NAME] [--seed N] [--out PATH] [--faults NAME]
//                      (full 4-phase experiment -> RunReport v2; JSON to
//                      stdout when no --out/WEHEY_REPORT destination)
//   wehey_cli inspect  FILE...   (render report/trace JSON as tables)
//
// The wild and session commands honour the observability environment
// (WEHEY_TRACE=path, WEHEY_METRICS=1, WEHEY_REPORT=path /
// WEHEY_REPORT_DIR=dir) and inject a shipped chaos plan with
// --faults NAME (or WEHEY_FAULT_PLAN=NAME; seed: WEHEY_CHAOS_SEED).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "core/loss_correlation.hpp"
#include "core/coupling.hpp"
#include "experiments/history.hpp"
#include "experiments/params.hpp"
#include "experiments/wild.hpp"
#include "faults/plan.hpp"
#include "experiments/scenario.hpp"
#include "netsim/tracer.hpp"
#include "obs/inspect.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "replay/session.hpp"
#include "topology/construction.hpp"
#include "topology/database.hpp"
#include "topology/synthetic.hpp"
#include "trace/apps.hpp"
#include "trace/background.hpp"

using namespace wehey;
using namespace wehey::experiments;

namespace {

/// Minimal --key value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  double num(const std::string& key, double dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Process-level observation shared by the subcommands. Commands fill
/// `report`; main() binds the recorder and writes the artifacts on exit.
struct CliObservation {
  obs::RunObservation run;
  obs::RunReport report;

  void finish() const {
    if (!run.enabled()) return;
    if (!run.trace_path.empty()) {
      if (run.write_trace()) {
        std::fprintf(stderr, "trace: %s (+ %s)\n", run.trace_path.c_str(),
                     obs::RunObservation::csv_path(run.trace_path).c_str());
      } else {
        std::fprintf(stderr, "trace: FAILED to write %s\n",
                     run.trace_path.c_str());
      }
    }
    if (report.run.empty()) return;  // command doesn't emit a report
    const std::string path = obs::report_path_from_env(report.run);
    if (path.empty()) return;
    if (obs::write_report_file(path,
                               report.to_json(&run.recorder->metrics()))) {
      std::fprintf(stderr, "report: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "report: FAILED to write %s\n", path.c_str());
    }
  }
};

CliObservation* g_obs = nullptr;

/// Shipped chaos plan from --faults NAME, falling back to WEHEY_FAULT_PLAN;
/// the fault seed comes from --chaos-seed / WEHEY_CHAOS_SEED (default 1).
std::optional<faults::FaultPlan> fault_plan_from(const Args& args) {
  std::string name = args.get("faults", "");
  if (name.empty()) {
    if (const char* env = std::getenv("WEHEY_FAULT_PLAN")) name = env;
  }
  if (name.empty() || name == "0") return std::nullopt;
  std::uint64_t seed = static_cast<std::uint64_t>(args.num("chaos-seed", 0));
  if (seed == 0) {
    if (const char* env = std::getenv("WEHEY_CHAOS_SEED")) {
      seed = std::strtoull(env, nullptr, 10);
    }
  }
  if (seed == 0) seed = 1;
  return faults::shipped_plan(name, seed);
}

void record_injection(const faults::InjectionStats& stats) {
  for (const auto& [kind, count] : stats.by_kind()) {
    g_obs->report.injection[kind] += count;
  }
}

ScenarioConfig scenario_from(const Args& args) {
  auto cfg = default_scenario(args.get("app", "Netflix"),
                              static_cast<std::uint64_t>(args.num("seed", 42)));
  const std::string placement = args.get("placement", "common");
  if (placement == "nc") {
    cfg.placement = Placement::NonCommonLinks;
  } else if (placement == "perflow") {
    cfg.placement = Placement::PerFlowCommonLink;
  }
  cfg.input_rate_factor = args.num("factor", cfg.input_rate_factor);
  cfg.queue_burst_factor = args.num("queue", cfg.queue_burst_factor);
  cfg.bg_diff_fraction = args.num("fraction", cfg.bg_diff_fraction);
  cfg.rtt2_ms = args.num("rtt2", cfg.rtt2_ms);
  cfg.modified_traces = !args.has("unmodified");
  cfg.spoof_same_flow = args.has("spoof");
  const std::string cc = args.get("cc", "cubic");
  if (cc == "reno") cfg.tcp_cc = transport::CongestionControl::NewReno;
  if (cc == "bbr") cfg.tcp_cc = transport::CongestionControl::Bbr;
  return cfg;
}

int cmd_testbed(const Args& args) {
  const auto cfg = scenario_from(args);
  const auto d = derive(cfg);
  std::printf("app=%s seed=%llu trace=%.2f Mbps limiter=%.2f Mbps\n",
              cfg.app.c_str(),
              static_cast<unsigned long long>(cfg.seed),
              d.trace_rate / 1e6, d.limiter_rate / 1e6);
  const auto sim = run_simultaneous_experiment(cfg);
  std::printf("WeHe confirmation: %s (p1 p=%.3g, p2 p=%.3g)\n",
              sim.differentiation_confirmed ? "both paths" : "NOT confirmed",
              sim.p1_confirmation.p_value, sim.p2_confirmation.p_value);
  std::printf("p1: %.2f Mbps, loss %.3f | p2: %.2f Mbps, loss %.3f\n",
              sim.original.p1.avg_throughput_bps / 1e6,
              sim.original.p1.retx_rate,
              sim.original.p2.avg_throughput_bps / 1e6,
              sim.original.p2.retx_rate);
  const auto corr = core::loss_trend_correlation(
      sim.original.p1.meas, sim.original.p2.meas,
      milliseconds(std::max(cfg.rtt1_ms, cfg.rtt2_ms)));
  std::printf("loss-trend correlation: %zu/%zu sizes -> %s\n",
              corr.sizes_correlated, corr.sizes_tested,
              corr.common_bottleneck ? "COMMON BOTTLENECK" : "no evidence");
  const auto coupled = core::coupled_bottleneck_test(
      sim.original.p1.meas.throughput_samples(100),
      sim.original.p2.meas.throughput_samples(100));
  std::printf("coupled-bottleneck test: %s (ratio %.2f, corr %+.2f)\n",
              coupled.coupled ? "COUPLED" : "not coupled", coupled.ratio,
              coupled.correlation);
  return 0;
}

int cmd_wild(const Args& args) {
  const int isp_index = static_cast<int>(args.num("isp", 0));
  const auto isps = default_isp_models();
  if (isp_index < 0 || isp_index >= static_cast<int>(isps.size())) {
    std::fprintf(stderr, "--isp must be 0..4\n");
    return 2;
  }
  WildConfig cfg;
  cfg.isp = isps[static_cast<std::size_t>(isp_index)];
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 7));
  cfg.app = args.get("app", "Netflix");
  const auto plan = fault_plan_from(args);
  if (plan.has_value()) {
    cfg.fault_plan = &*plan;
    std::printf("fault plan: %s (seed %llu)\n", plan->name.c_str(),
                static_cast<unsigned long long>(plan->seed));
  }
  const auto t_diff = build_wild_t_diff(cfg, 12);
  const auto out = args.has("sanity") ? run_wild_sanity_check(cfg, t_diff)
                                      : run_wild_test(cfg, t_diff);
  std::printf("%s %s: confirmed=%s localized=%s (throughput p=%.3g)\n",
              cfg.isp.name.c_str(), cfg.app.c_str(),
              out.localization.confirmation_passed ? "yes" : "no",
              out.localized ? "YES" : "no",
              out.localization.throughput.p_value);
  if (out.injection.total() > 0) {
    std::printf("injected faults:");
    for (const auto& [kind, count] : out.injection.by_kind()) {
      if (count > 0) std::printf(" %s=%d", kind, count);
    }
    std::printf(" (%d phase%s hit)\n", out.faulted_phases,
                out.faulted_phases == 1 ? "" : "s");
  }
  g_obs->report.run = "wehey_cli_wild";
  g_obs->report.seed = cfg.seed;
  if (plan.has_value()) g_obs->report.fault_plan = plan->name;
  g_obs->report.verdict = out.localized ? "localized" : "not localized";
  g_obs->report.values["localized"] = out.localized ? 1.0 : 0.0;
  g_obs->report.values["throughput_p"] = out.localization.throughput.p_value;
  g_obs->report.values["faulted_phases"] = out.faulted_phases;
  record_injection(out.injection);
  return 0;
}

int cmd_session(const Args& args) {
  replay::SessionConfig cfg;
  cfg.scenario = default_scenario(
      args.get("app", "Netflix"),
      static_cast<std::uint64_t>(args.num("seed", 2)));
  cfg.route_churn = args.has("churn");
  cfg.user_consents = !args.has("decline");
  const auto plan = fault_plan_from(args);
  if (plan.has_value()) {
    cfg.fault_plan = *plan;
    std::printf("fault plan: %s (seed %llu)\n", plan->name.c_str(),
                static_cast<unsigned long long>(plan->seed));
  }
  HistoryConfig hist;
  hist.replays = 6;
  cfg.t_diff_history = build_t_diff_history(cfg.scenario, hist);
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  const auto result = replay::run_session(cfg, db);
  for (const auto& ev : result.events) {
    std::printf("[%9.3fs] %s\n", to_seconds(ev.at), ev.what.c_str());
  }
  std::printf("outcome: %s\n", replay::to_string(result.outcome));
  g_obs->report = replay::make_run_report(cfg, result, "wehey_cli_session");
  return 0;
}

int cmd_topology(const Args& args) {
  Rng rng(static_cast<std::uint64_t>(args.num("seed", 1)));
  topology::SyntheticConfig cfg;
  cfg.num_clients = static_cast<std::size_t>(args.num("clients", 500));
  const auto ds = topology::generate_mlab_dataset(cfg, rng);
  topology::TopologyConstructor tc;
  const auto entries = tc.construct(ds.records);
  std::printf("records=%zu discarded(incomplete=%zu aliased=%zu) "
              "destinations=%zu with-topology=%zu\n",
              tc.stats().input_records, tc.stats().discarded_incomplete,
              tc.stats().discarded_aliased, tc.stats().destinations,
              tc.stats().destinations_with_topology);
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto app = args.get("app", "Netflix");
  const auto runs = static_cast<std::size_t>(args.num("runs", 6));
  const bool fp_mode = args.has("fp");
  int detected = 0, confirmed = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    auto cfg = default_scenario(app, 7000 + i);
    if (fp_mode) cfg.placement = Placement::NonCommonLinks;
    const auto sim = run_simultaneous_experiment(cfg);
    if (!sim.differentiation_confirmed && !fp_mode) continue;
    ++confirmed;
    detected += core::loss_trend_correlation(
                    sim.original.p1.meas, sim.original.p2.meas,
                    milliseconds(cfg.rtt1_ms))
                    .common_bottleneck;
  }
  if (fp_mode) {
    std::printf("%s: FP %d/%d\n", app.c_str(), detected, confirmed);
  } else {
    std::printf("%s: detected %d/%d confirmed (FN %d)\n", app.c_str(),
                detected, confirmed, confirmed - detected);
  }
  return 0;
}

int cmd_full(const Args& args) {
  auto cfg = scenario_from(args);
  const auto plan = fault_plan_from(args);
  if (plan.has_value()) {
    cfg.fault_plan = &*plan;
    std::fprintf(stderr, "fault plan: %s (seed %llu)\n", plan->name.c_str(),
                 static_cast<unsigned long long>(plan->seed));
  }
  HistoryConfig hist;
  hist.replays = 6;
  const auto t_diff = build_t_diff_history(cfg, hist);
  const auto res = run_full_experiment_reported(cfg, t_diff,
                                                "wehey_cli_full");
  std::fprintf(stderr, "verdict: %s%s%s\n", res.report.verdict.c_str(),
               res.report.reason.empty() ? "" : " — ",
               res.report.reason.c_str());
  const std::string json = res.report.to_json(&res.metrics);
  std::string path = args.get("out", "");
  if (path.empty()) path = obs::report_path_from_env("wehey_cli_full");
  if (path.empty()) {
    // Pipe-friendly: the report itself on stdout, commentary on stderr.
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  if (!obs::write_report_file(path, json)) {
    std::fprintf(stderr, "report: FAILED to write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "report: %s\n", path.c_str());
  return 0;
}

int cmd_trace(const Args& args) {
  // A short scenario with an ascii packet trace of the common link.
  auto cfg = scenario_from(args);
  cfg.replay_duration = seconds(3);
  const auto derived = derive(cfg);
  netsim::Simulator sim;
  Rng rng(cfg.seed);
  FigureOneNetwork net(sim, derived.net, rng);
  netsim::PacketTracer tracer;
  tracer.set_capacity(
      static_cast<std::size_t>(args.num("max-events", 200)));
  tracer.attach(net.common_link(), "l_c");

  Rng trace_rng(cfg.seed * 0x9e3779b9ULL + 17);
  auto t = trace::make_tcp_app_trace(cfg.base_trace_duration, trace_rng);
  t = trace::extend(t, cfg.replay_duration);
  transport::TcpConfig tcp;
  net.start_tcp_replay(1, t, 0, tcp);
  net.start_tcp_replay(2, t, milliseconds(5), tcp);
  net.run(cfg.replay_duration, seconds(1));
  tracer.dump(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: wehey_cli <testbed|wild|session|topology|sweep|"
                 "trace|full|inspect> [--flags]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "inspect") {
    // Positional file arguments, no observation setup: a pure reader.
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: wehey_cli inspect <report.json|trace.json>...\n");
      return 2;
    }
    int rc = 0;
    for (int i = 2; i < argc; ++i) {
      if (!obs::inspect_file(argv[i], stdout)) rc = 1;
    }
    return rc;
  }
  const Args args(argc, argv, 2);
  CliObservation observation;
  observation.run = obs::RunObservation::from_env();
  g_obs = &observation;
  obs::ScopedRecorder bind(observation.run.recorder.get());
  int rc = 2;
  if (cmd == "testbed") {
    rc = cmd_testbed(args);
  } else if (cmd == "wild") {
    rc = cmd_wild(args);
  } else if (cmd == "session") {
    rc = cmd_session(args);
  } else if (cmd == "topology") {
    rc = cmd_topology(args);
  } else if (cmd == "sweep") {
    rc = cmd_sweep(args);
  } else if (cmd == "trace") {
    rc = cmd_trace(args);
  } else if (cmd == "full") {
    rc = cmd_full(args);
  } else {
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  }
  observation.finish();
  return rc;
}
