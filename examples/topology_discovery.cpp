// Topology construction on a synthetic M-Lab traceroute batch (§3.3):
// filter the records, find per-client server pairs whose paths converge
// inside the client's ISP, and report the coverage statistics.
//
//   ./topology_discovery [clients] [seed]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/rng.hpp"
#include "topology/construction.hpp"
#include "topology/database.hpp"
#include "topology/synthetic.hpp"

using namespace wehey;
using namespace wehey::topology;

int main(int argc, char** argv) {
  const std::size_t clients =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 500;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  Rng rng(seed);
  SyntheticConfig cfg;
  cfg.num_clients = clients;
  const auto dataset = generate_mlab_dataset(cfg, rng);
  std::printf("synthetic M-Lab batch: %zu clients, %zu traceroute records\n",
              clients, dataset.records.size());

  TopologyConstructor tc;
  const auto entries = tc.construct(dataset.records);
  const auto& stats = tc.stats();
  std::printf("filter: discarded %zu incomplete (ICMP-blocked) and %zu "
              "alias-inconsistent records\n",
              stats.discarded_incomplete, stats.discarded_aliased);
  std::printf("destinations analyzed: %zu; with a suitable topology: %zu\n",
              stats.destinations, stats.destinations_with_topology);

  TopologyDatabase db;
  db.ingest(entries);

  // Show a few example topologies.
  std::printf("\nexample suitable topologies:\n");
  int shown = 0;
  for (const auto& e : entries) {
    if (shown++ >= 5) break;
    std::printf("  client %-18s (ASN %u): %zu pair(s); e.g. {%s, %s} "
                "converging at %s\n",
                e.dst_prefix.c_str(), e.dst_asn, e.pairs.size(),
                e.pairs.front().server1.c_str(),
                e.pairs.front().server2.c_str(),
                e.pairs.front().convergence_ip.c_str());
  }

  // Coverage statistics in the §3.3 style.
  std::size_t complete = 0, suitable = 0;
  std::set<std::string> prefixes;
  for (const auto& e : entries) prefixes.insert(e.dst_prefix);
  for (const auto& truth : dataset.truth) {
    if (!truth.has_complete_record) continue;
    ++complete;
    if (prefixes.count(ipv4_prefix24(truth.ip))) ++suitable;
  }
  std::printf("\ncoverage: %.1f%% of clients have >= 1 complete traceroute; "
              "%.1f%% of those have >= 1 suitable topology\n",
              100.0 * complete / static_cast<double>(clients),
              complete ? 100.0 * suitable / static_cast<double>(complete)
                       : 0.0);
  std::printf("(paper: 52%% and 74%% on April 2023 WeHe traceroutes)\n");
  return 0;
}
