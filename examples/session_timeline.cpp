// A complete WeHe + WeHeY session (§3.4) on one simulated timeline, with
// the coordination events printed as they happened: the WeHe test, the
// user prompt, the topology lookup, the back-to-back simultaneous
// replays, the end-of-replay traceroute re-validation, and the verdict.
//
//   ./session_timeline [seed] [--churn] [--decline]
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "experiments/params.hpp"
#include "replay/session.hpp"

using namespace wehey;
using namespace wehey::replay;

int main(int argc, char** argv) {
  std::uint64_t seed = 9;
  bool churn = false, decline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--churn") == 0) {
      churn = true;
    } else if (std::strcmp(argv[i], "--decline") == 0) {
      decline = true;
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  SessionConfig cfg;
  cfg.scenario = experiments::default_scenario("Netflix", seed);
  cfg.route_churn = churn;
  cfg.user_consents = !decline;
  cfg.t_diff_history = {0.06, -0.09, 0.12, -0.04, 0.08, -0.11,
                        0.05, -0.07, 0.10, -0.03, 0.09, -0.06};

  topology::TopologyDatabase db;
  seed_topology_database(cfg.scenario, db);
  std::printf("topology DB seeded from the daily TC ingest: %zu pair(s) "
              "for this client\n\n",
              db.pair_count());

  const auto result = run_session(cfg, db);

  std::printf("session timeline:\n");
  for (const auto& ev : result.events) {
    std::printf("  [%9.3fs] %s\n", to_seconds(ev.at), ev.what.c_str());
  }
  std::printf("\noutcome after %.1f s: %s\n", to_seconds(result.finished_at),
              to_string(result.outcome));
  if (result.outcome == SessionOutcome::LocalizedWithinIsp) {
    std::printf("mechanism: %s (loss-trend %zu/%zu sizes; throughput-"
                "comparison p=%.3g)\n",
                result.localization.mechanism ==
                        core::Mechanism::PerClientThrottling
                    ? "per-client throttling"
                    : "collective throttling",
                result.localization.loss.sizes_correlated,
                result.localization.loss.sizes_tested,
                result.localization.throughput.p_value);
  }
  std::printf("topology DB afterwards: %zu pair(s)\n", db.pair_count());
  return 0;
}
