#!/usr/bin/env python3
"""Validate wehey report JSON files against the checked-in schemas.

Stdlib only (no jsonschema dependency): implements the small JSON-Schema
subset that tools/*_schema.json actually use — type, const, enum,
required, properties, additionalProperties, items, minimum.

Unknown keys fail loudly: any object whose schema declares "properties"
rejects keys it does not name unless the schema *explicitly* sets
"additionalProperties" — the permissive JSON-Schema default would let a
renamed or drifted report field slide through CI silently.

Each file picks its schema from its own "schema" field —
wehey.run_report.* validates against run_report_schema.json,
wehey.sweep_report.* against sweep_report_schema.json,
wehey.sweep_checkpoint.* against sweep_checkpoint_schema.json,
wehey.runtime_report.* against runtime_report_schema.json. --schema
forces one schema for every file instead.

Runtime sidecars (the wall-clock engine telemetry documents) must never
embed a 'decision' or 'cells' section: those belong to the deterministic
run/sweep reports, and their presence means a writer was cross-wired.
Such files fail with a targeted message before schema validation.

Checkpoint journals are JSONL (one checkpoint document per line): each
line validates against the checkpoint schema and its embedded serialized
report against the run-report schema. A torn trailing line (killed
mid-append) is reported but tolerated, matching the C++ loader.

Usage:
  tools/validate_report.py report.json sweep.json checkpoint.jsonl [...]
  tools/validate_report.py --schema tools/run_report_schema.json report.json
  tools/validate_report.py --trace trace.json          # chrome-trace sanity
  tools/validate_report.py --bench-overhead BENCH_parallel.json --max 0.02

Exit status is non-zero on the first failing file, so CI can gate on it.
"""

import argparse
import json
import os
import sys


def _type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "null":
        return value is None
    raise ValueError(f"unsupported schema type: {expected}")


def validate(value, schema, path="$"):
    """Return a list of error strings (empty = valid)."""
    errors = []
    if "const" in schema:
        if value != schema["const"]:
            errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
            return errors
    if "enum" in schema:
        if value not in schema["enum"]:
            errors.append(
                f"{path}: {value!r} not one of {schema['enum']!r}"
            )
            return errors
    if "type" in schema and not _type_ok(value, schema["type"]):
        errors.append(
            f"{path}: expected {schema['type']}, got {type(value).__name__}"
        )
        return errors
    if "minimum" in schema and isinstance(value, (int, float)):
        if not isinstance(value, bool) and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        # Strict by default wherever the schema names its keys: a report
        # field that drifts (renamed, misspelled, new-but-undeclared) must
        # fail validation, not vanish into the permissive default.
        extra = schema.get("additionalProperties", not props)
        for key, sub in value.items():
            if key in props:
                errors.extend(validate(sub, props[key], f"{path}.{key}"))
            elif isinstance(extra, dict):
                errors.extend(validate(sub, extra, f"{path}.{key}"))
            elif extra is not True:
                errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return errors


def pick_schema(report, schemas, forced):
    """The checked-in schema matching the document's own 'schema' field."""
    if forced is not None:
        return forced
    tag = report.get("schema", "") if isinstance(report, dict) else ""
    if tag.startswith("wehey.sweep_report."):
        return schemas["sweep"]
    if tag.startswith("wehey.sweep_checkpoint."):
        return schemas["checkpoint"]
    if tag.startswith("wehey.runtime_report."):
        return schemas["runtime"]
    return schemas["run"]


def check_checkpoint_journal(path, text, schemas, forced=None):
    """Validate a JSONL checkpoint journal line by line: the checkpoint
    document itself plus the run report embedded in its 'report' string.
    A torn trailing line is tolerated (noted, not fatal) — the C++ loader
    drops it on resume."""
    lines = text.split("\n")
    ok = True
    entries = 0
    cells = {}
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        where = f"{path}:{i + 1}"
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            if i == len(lines) - 1:
                print(f"{path}: torn trailing line {i + 1} (dropped on "
                      f"resume)")
                continue
            print(f"{where}: not JSON: {e}", file=sys.stderr)
            ok = False
            continue
        errors = validate(doc, pick_schema(doc, schemas, forced))
        if not errors and forced is None:
            try:
                embedded = json.loads(doc["report"])
            except json.JSONDecodeError as e:
                errors = [f"$.report: embedded report is not JSON: {e}"]
            else:
                errors = [f"$.report{err[1:]}" for err in
                          validate(embedded, schemas["run"])]
        for err in errors:
            print(f"{where}: {err}", file=sys.stderr)
            ok = False
        if not errors:
            entries += 1
            cells[doc.get("cell", "")] = cells.get(doc.get("cell", ""), 0) + 1
    if ok:
        by_cell = ", ".join(f"{c or '(none)'}={n}" for c, n in cells.items())
        print(f"{path}: OK (checkpoint journal, {entries} completed runs"
              + (f": {by_cell}" if by_cell else "") + ")")
    return ok


def check_report(path, schemas, forced=None):
    with open(path) as f:
        text = f.read()
    try:
        report = json.loads(text)
    except json.JSONDecodeError:
        # Not one JSON document — a JSONL checkpoint journal.
        return check_checkpoint_journal(path, text, schemas, forced)
    if (isinstance(report, dict)
            and report.get("schema", "").startswith("wehey.sweep_checkpoint.")):
        # A one-line journal parses as a single checkpoint document.
        return check_checkpoint_journal(path, text, schemas, forced)
    is_runtime = (isinstance(report, dict)
                  and report.get("schema", "")
                  .startswith("wehey.runtime_report."))
    if is_runtime:
        # Cross-wired writer check: a runtime sidecar carrying sections of
        # the deterministic reports means wall-clock data is about to leak
        # into (or masquerade as) the byte-identical report contract.
        crossed = [k for k in ("decision", "ground_truth", "audit", "cells")
                   if k in report]
        if crossed:
            print(f"{path}: runtime sidecar embeds deterministic-report "
                  f"section(s) {crossed} — cross-wired writer",
                  file=sys.stderr)
            return False
    errors = validate(report, pick_schema(report, schemas, forced))
    for err in errors:
        print(f"{path}: {err}", file=sys.stderr)
    if errors:
        return False
    if is_runtime:
        sched = report.get("scheduler", {})
        print(
            f"{path}: OK (runtime={report['run']!r}, "
            f"contexts={len(report.get('workers', []))}, "
            f"tasks={sched.get('tasks', 0)}, "
            f"efficiency={sched.get('parallel_efficiency', 0):.3f}, "
            f"imbalance={sched.get('worker_imbalance', 0):.3f})"
        )
        return True
    if isinstance(report, dict) and "sweep" in report:
        verdicts = ", ".join(
            f"{v}={n}" for v, n in report.get("verdicts", {}).items()
        )
        print(
            f"{path}: OK (sweep={report['sweep']!r}, "
            f"runs={report.get('runs', 0)}"
            + (f", verdicts: {verdicts}" if verdicts else "")
            + ")"
        )
    else:
        stages = ", ".join(s["name"] for s in report.get("stages", []))
        print(
            f"{path}: OK (run={report['run']!r}, verdict={report['verdict']!r}"
            + (f", stages: {stages}" if stages else "")
            + f", injected={report['injection'].get('total', 0)})"
        )
    return True


def check_trace(path):
    """Chrome-trace sanity: parses as JSON, has traceEvents, every event has
    the fields chrome://tracing needs, and span timestamps are ordered."""
    with open(path) as f:
        trace = json.load(f)
    ok = True
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"{path}: no traceEvents array", file=sys.stderr)
        return False
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid"):
            if key not in ev:
                print(f"{path}: event {i} missing {key!r}", file=sys.stderr)
                ok = False
        if ev.get("ph") in ("X", "i", "C") and "ts" not in ev:
            print(f"{path}: event {i} ({ev.get('ph')}) has no ts",
                  file=sys.stderr)
            ok = False
        if ev.get("ph") == "X" and ev.get("dur", 0) < 0:
            print(f"{path}: event {i} has negative duration", file=sys.stderr)
            ok = False
    if ok:
        spans = sum(1 for ev in events if ev.get("ph") == "X")
        print(f"{path}: OK ({len(events)} events, {spans} spans, "
              f"{1 + max(ev.get('pid', 0) for ev in events)} pid tracks)")
    return ok


def check_bench_overhead(path, max_overhead):
    """Gate on the enabled-but-idle observability overhead reported by
    bench_event_loop in its JSON output."""
    with open(path) as f:
        bench = json.load(f)
    obs = bench.get("observability")
    if obs is None:
        print(f"{path}: no observability block", file=sys.stderr)
        return False
    overhead = obs.get("obs_idle_overhead")
    if overhead is None:
        print(f"{path}: no obs_idle_overhead value", file=sys.stderr)
        return False
    print(f"{path}: obs idle overhead {100.0 * overhead:+.2f}% "
          f"(limit {100.0 * max_overhead:.0f}%)")
    ok = overhead <= max_overhead
    # Same gate for the runtime-telemetry-enabled loop when the bench
    # reports it (older bench JSON predates the field).
    runtime_overhead = obs.get("runtime_idle_overhead")
    if runtime_overhead is not None:
        print(f"{path}: runtime telemetry idle overhead "
              f"{100.0 * runtime_overhead:+.2f}% "
              f"(limit {100.0 * max_overhead:.0f}%)")
        ok &= runtime_overhead <= max_overhead
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="*",
                        help="RunReport / sweep report JSON files")
    parser.add_argument("--schema", default=None,
                        help="force one schema file instead of picking by "
                             "each document's 'schema' field")
    parser.add_argument("--trace", action="append", default=[],
                        help="chrome-trace JSON file to sanity-check")
    parser.add_argument("--bench-overhead", metavar="BENCH_JSON",
                        help="bench_event_loop JSON to gate on idle overhead")
    parser.add_argument("--max", type=float, default=0.02,
                        help="max tolerated idle overhead (default 0.02)")
    args = parser.parse_args()

    if not args.reports and not args.trace and not args.bench_overhead:
        parser.error("nothing to validate")

    ok = True
    if args.reports:
        here = os.path.dirname(__file__)
        schemas = {}
        schema_files = {
            "run": "run_report_schema.json",
            "sweep": "sweep_report_schema.json",
            "checkpoint": "sweep_checkpoint_schema.json",
            "runtime": "runtime_report_schema.json",
        }
        for kind, filename in schema_files.items():
            with open(os.path.join(here, filename)) as f:
                schemas[kind] = json.load(f)
        forced = None
        if args.schema is not None:
            with open(args.schema) as f:
                forced = json.load(f)
        for path in args.reports:
            ok &= check_report(path, schemas, forced)
    for path in args.trace:
        ok &= check_trace(path)
    if args.bench_overhead:
        ok &= check_bench_overhead(args.bench_overhead, args.max)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
