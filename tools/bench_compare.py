#!/usr/bin/env python3
"""Perf-regression gate: diff a wehey report against a committed baseline.

Stdlib-only mirror of `wehey_cli compare` (src/obs/aggregate.cpp):

  * both JSON documents are flattened to dotted key paths (arrays as
    "key[i]");
  * numbers must stay within a relative tolerance of the baseline value
    (|cand - base| / |base| <= tol; near-zero baselines compare the
    difference absolutely against the same bound);
  * strings / bools must match exactly;
  * a key present in the baseline but missing from the candidate fails
    (a metric disappeared); candidate-only keys are printed as notes
    (the schema grew) but do not fail;
  * --min-key REGEX=BOUND asserts a floor on every matching candidate
    value, independent of the baseline (speedup gates); a matching value
    whose sibling "oversubscribed" flag is true is exempt from the floor
    (a 2-thread grid row on a 1-core host measures the machine, not the
    engine) but still counts as a pattern match;
  * --require-key REGEX fails unless at least one flattened candidate key
    (of any type, ignored keys included) matches — guards CI gates
    against a renamed section silently turning the gate into a no-op;
  * --list-keys prints every flattened candidate key (the exact strings
    the regex flags match against) and exits 0 without comparing — the
    triage aid for a --require-key/--min-key pattern that matches
    nothing.

Usage:
  tools/bench_compare.py BASELINE CANDIDATE [--tol 0.05]
      [--tol-key REGEX=TOL]... [--ignore REGEX]... [--min-key REGEX=BOUND]...
      [--require-key REGEX]... [--list-keys]
  tools/bench_compare.py --list-keys REPORT     # single-file key listing

Exit status: 0 within tolerance, 1 on drift, 2 on usage errors.
"""

import argparse
import json
import re
import sys


def flatten(value, path="", out=None):
    if out is None:
        out = {}
    if isinstance(value, dict):
        for key, child in value.items():
            flatten(child, f"{path}.{key}" if path else key, out)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            flatten(child, f"{path}[{i}]", out)
    else:
        out[path] = value
    return out


def parse_key_value(arg, flag):
    key, eq, value = arg.rpartition("=")
    if not key:
        raise SystemExit(f"bench_compare: {flag} wants REGEX=VALUE, got {arg!r}")
    return key, float(value)


def compare(base, cand, tol, key_tols, ignore, min_keys, require_keys=()):
    """Returns (failures, notes); both are key-sorted string lists."""
    failures, notes = [], []

    def ignored(key):
        return any(re.search(p, key) for p in ignore)

    def tolerance_for(key):
        for pattern, key_tol in key_tols:
            if re.search(pattern, key):
                return key_tol
        return tol

    def fmt(x):
        return json.dumps(x)

    for key in sorted(base):
        if ignored(key):
            continue
        if key not in cand:
            failures.append(f"missing in candidate: {key}")
            continue
        b, c = base[key], cand[key]
        if isinstance(b, bool) or isinstance(c, bool):
            if b is not c:
                failures.append(f"bool changed at {key}")
        elif isinstance(b, (int, float)) and isinstance(c, (int, float)):
            key_tol = tolerance_for(key)
            diff = abs(c - b)
            denom = abs(b)
            bad = diff > key_tol if denom < 1e-12 else diff / denom > key_tol
            if bad:
                failures.append(
                    f"out of tolerance at {key}: {fmt(b)} -> {fmt(c)} "
                    f"(tol {key_tol:g})"
                )
        elif type(b) is not type(c):
            failures.append(f"type changed at {key}")
        elif b != c:
            failures.append(f"string changed at {key}: {fmt(b)} -> {fmt(c)}")
    for key in sorted(cand):
        if key not in base and not ignored(key):
            notes.append(f"new key (not in baseline): {key}")
    for pattern, floor in min_keys:
        matched = False
        for key in sorted(cand):
            value = cand[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if not re.search(pattern, key):
                continue
            matched = True
            # Floors don't apply to oversubscribed rows: when the row ran
            # more threads than the host has, its speedup/efficiency
            # measures the machine, not the engine.
            sibling = key.rpartition(".")[0]
            if sibling and cand.get(f"{sibling}.oversubscribed") is True:
                notes.append(
                    f"floor skipped at {key} (oversubscribed row)"
                )
                continue
            if value < floor:
                failures.append(
                    f"below floor at {key}: {fmt(value)} < {floor:g}"
                )
        if not matched:
            failures.append(f"min-key pattern matched nothing: {pattern}")
    for pattern in require_keys:
        if not any(re.search(pattern, key) for key in cand):
            failures.append(f"require-key pattern matched nothing: {pattern}")
    return failures, notes


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("candidate", nargs="?",
                        help="freshly produced JSON (optional with "
                             "--list-keys, which reads the last file given)")
    parser.add_argument("--tol", type=float, default=0.05,
                        help="default relative tolerance (default 0.05)")
    parser.add_argument("--tol-key", action="append", default=[],
                        metavar="REGEX=TOL",
                        help="per-key tolerance override (first match wins)")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="REGEX", help="key paths to skip entirely")
    parser.add_argument("--min-key", action="append", default=[],
                        metavar="REGEX=BOUND",
                        help="floor for every matching candidate value")
    parser.add_argument("--require-key", action="append", default=[],
                        metavar="REGEX",
                        help="fail unless some candidate key matches")
    parser.add_argument("--list-keys", action="store_true",
                        help="print all flattened candidate keys and exit")
    args = parser.parse_args()
    if args.candidate is None and not args.list_keys:
        parser.error("the following arguments are required: candidate")

    docs = []
    paths = [p for p in (args.baseline, args.candidate) if p is not None]
    for path in paths:
        try:
            with open(path) as f:
                docs.append(flatten(json.load(f)))
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_compare: {path}: {err}", file=sys.stderr)
            return 2

    if args.list_keys:
        for key in sorted(docs[-1]):
            print(key)
        return 0

    key_tols = [parse_key_value(a, "--tol-key") for a in args.tol_key]
    min_keys = [parse_key_value(a, "--min-key") for a in args.min_key]
    failures, notes = compare(docs[0], docs[1], args.tol, key_tols,
                              args.ignore, min_keys, args.require_key)
    for note in notes:
        print(f"note: {note}", file=sys.stderr)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        print(f"bench_compare: {len(failures)} metric(s) out of tolerance")
        return 1
    print(f"bench_compare: OK ({args.candidate} vs {args.baseline}, "
          f"tol {args.tol:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
