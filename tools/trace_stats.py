#!/usr/bin/env python3
"""Offline statistics over wehey observability artifacts.

Stdlib only. Reads any mix of RunReport JSON files (wehey.run_report.v1/v2)
and Chrome-trace JSON files (the WEHEY_TRACE output), auto-detecting each,
and prints deterministic plain-text summaries:

  * per-histogram p50/p90/p99 (v2 reports carry these precomputed; for v1
    reports and for cross-checking they are re-derived from the bins with
    the same interpolation the C++ writer uses),
  * queue drop-by-reason and per-flow RTT/loss counters,
  * per-stage simulated time,
  * per-span-name duration percentiles for traces.

The output is a pure function of the artifact bytes — no timestamps, no
environment — so CI can diff the rendering of a WEHEY_THREADS=1 run
against a WEHEY_THREADS=8 run to prove the artifacts are equivalent.

Usage:
  tools/trace_stats.py report.json trace.json [...]
"""

import json
import sys


def bins_quantile(hist, q):
    """Quantile from a fixed-bucket histogram dict ({lo, hi, count, min,
    max, bins}); mirrors obs::histogram_quantile bit-for-bit: linear
    interpolation inside the crossing bucket, underflow resolves to the
    recorded min, overflow to the recorded max, clamped to [min, max]."""
    count = hist.get("count", 0)
    bins = hist.get("bins", [])
    if count <= 0 or not bins:
        return 0.0
    q = min(max(q, 0.0), 1.0)
    lo, hi = hist["lo"], hist["hi"]
    width = (hi - lo) / (len(bins) - 2)
    target = q * count
    cum = 0.0
    value = hist["max"]
    for i, n in enumerate(bins):
        if n == 0:
            continue
        nxt = cum + n
        if nxt >= target:
            if i == 0:
                value = hist["min"]
            elif i == len(bins) - 1:
                value = hist["max"]
            else:
                frac = (target - cum) / n
                value = lo + (i - 1 + frac) * width
            break
        cum = nxt
    return min(max(value, hist["min"]), hist["max"])


def fmt(v):
    """Match the C++ json_number rendering closely enough to diff: shortest
    repr, integral values without a decimal point."""
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def render_report(doc, out):
    print(f"report {doc.get('run', '?')} "
          f"(schema {doc.get('schema', '?')}, seed {doc.get('seed', '?')})",
          file=out)
    verdict = doc.get("verdict", "")
    reason = doc.get("reason", "")
    print(f"  verdict: {verdict}" + (f" ({reason})" if reason else ""),
          file=out)
    for stage in doc.get("stages", []):
        print(f"  stage {stage['name']}: {fmt(stage['sim_ms'])} sim-ms",
              file=out)

    metrics = doc.get("metrics", {})
    hists = metrics.get("histograms", {})
    shipped = doc.get("percentiles", {})
    if hists:
        print("  percentiles (p50 / p90 / p99):", file=out)
        for name in sorted(hists):
            h = hists[name]
            if h.get("count", 0) == 0:
                continue
            ps = [bins_quantile(h, q) for q in (0.5, 0.9, 0.99)]
            line = (f"    {name}: {fmt(ps[0])} / {fmt(ps[1])} / {fmt(ps[2])}"
                    f"  (n={h['count']})")
            pre = shipped.get(name)
            if pre is not None:
                derived = {"p50": ps[0], "p90": ps[1], "p99": ps[2]}
                if any(abs(pre[k] - derived[k]) > 1e-9 for k in derived):
                    line += "  [MISMATCH vs report percentiles]"
            print(line, file=out)

    counters = metrics.get("counters", {})
    drops = {k: v for k, v in counters.items()
             if k.startswith("queue.") and ".drop." in k}
    if drops:
        print("  queue drops:", file=out)
        for name in sorted(drops):
            print(f"    {name}: {drops[name]}", file=out)
    flow = {k: v for k, v in counters.items() if k.startswith("tcp.")}
    if flow:
        print("  tcp counters:", file=out)
        for name in sorted(flow):
            print(f"    {name}: {flow[name]}", file=out)
    links = {k: v for k, v in counters.items() if k.startswith("net.")}
    if links:
        print("  link counters:", file=out)
        for name in sorted(links):
            print(f"    {name}: {links[name]}", file=out)

    injection = doc.get("injection", {})
    injected = {k: v for k, v in injection.items()
                if v > 0 and k != "total"}
    if injected:
        print("  injected faults:", file=out)
        for name in sorted(injected):
            print(f"    {name}: {injected[name]}", file=out)


def percentile(sorted_values, q):
    """Nearest-rank percentile over a sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def render_trace(doc, out):
    events = doc.get("traceEvents", [])
    spans = {}
    instants = {}
    for ev in events:
        if ev.get("ph") == "X":
            spans.setdefault(ev["name"], []).append(ev.get("dur", 0))
        elif ev.get("ph") == "i":
            instants[ev["name"]] = instants.get(ev["name"], 0) + 1
    print(f"trace: {len(events)} events, {len(spans)} span names", file=out)
    for name in sorted(spans):
        durs = sorted(spans[name])
        ps = [percentile(durs, q) / 1000.0 for q in (0.5, 0.9, 0.99)]
        total = sum(durs) / 1000.0
        print(f"  span {name}: n={len(durs)} "
              f"p50={fmt(ps[0])}ms p90={fmt(ps[1])}ms p99={fmt(ps[2])}ms "
              f"total={fmt(total)}ms", file=out)
    for name in sorted(instants):
        print(f"  instant {name}: n={instants[name]}", file=out)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        with open(path) as f:
            doc = json.load(f)
        if isinstance(doc, dict) and str(doc.get("schema", "")).startswith(
                "wehey.run_report."):
            render_report(doc, sys.stdout)
        elif isinstance(doc, dict) and isinstance(
                doc.get("traceEvents"), list):
            render_trace(doc, sys.stdout)
        else:
            print(f"{path}: neither a RunReport nor a Chrome trace",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
