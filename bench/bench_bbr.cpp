// §7 open question: "it is an open question how loss rate correlations
// would occur with BBR flows. On the one hand, BBR uses pacing like our
// approach. On the other hand, BBR adjusts its sending rate such that
// loss should occur only during the probe-bandwidth phase."
//
// This bench runs the collective-throttling FN scenario with the replayed
// TCP session under Cubic vs under (model-level) BBR and reports the
// realized retransmission rates and WeHeY's detection outcome, plus a
// clean-path sanity row showing BBR's signature behaviour (no loss, no
// standing queue).
#include <cstdio>

#include "bench_util.hpp"
#include "core/loss_correlation.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main() {
  bench::print_header("§7 (BBR)", "loss correlation under Cubic vs BBR");
  bench::ObservedSweep obs_run("bench_bbr");
  const auto scale = run_scale();
  const std::size_t runs = scale.full ? 10 : 4;

  std::printf("  %-6s | %-6s | %-10s | %-10s | %s\n", "CC", "WeHe",
              "loss-trend", "avg retx", "avg queue delay");
  std::printf("  -------+--------+------------+------------+-----------\n");
  for (const auto cc : {transport::CongestionControl::Cubic,
                        transport::CongestionControl::Bbr}) {
    int wehe = 0, detected = 0, n = 0;
    double retx_sum = 0, delay_sum = 0;
    for (std::size_t i = 0; i < runs; ++i) {
      auto cfg = default_scenario("Netflix", 1300 + i);
      cfg.tcp_cc = cc;
      const auto sim = run_simultaneous_experiment(cfg);
      ++n;
      wehe += sim.differentiation_confirmed;
      retx_sum += sim.original.p1.retx_rate;
      delay_sum += sim.original.p1.avg_queuing_delay_ms;
      if (!sim.differentiation_confirmed) continue;
      detected += core::loss_trend_correlation(sim.original.p1.meas,
                                               sim.original.p2.meas,
                                               milliseconds(cfg.rtt1_ms))
                      .common_bottleneck;
    }
    std::printf("  %-6s | %2d/%2zu | %7d/%-2d | %9.3f | %7.1f ms\n",
                cc == transport::CongestionControl::Bbr ? "BBR" : "Cubic",
                wehe, runs, detected, wehe, retx_sum / n, delay_sum / n);
  }
  std::printf("\nobserved: BBR does not reduce its rate on loss; even with "
              "BBRv1's long-term (policer-detection) sampling engaged, its "
              "losses concentrate in probe/re-probe episodes that are not "
              "synchronized across the two paths — exactly the paper's §7 "
              "conjecture ('loss should occur only during the probe-"
              "bandwidth phase'). Differentiation is still detected, but "
              "loss-trend localization degrades under BBR in this "
              "substrate.\n");
  obs_run.report().verdict = "completed";
  return 0;
}
