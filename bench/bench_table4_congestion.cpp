// Table 4: false-negative rate under severe congestion on the non-common
// link sequences l1/l2 (input-traffic-to-bandwidth ratio 0.95/1.05/1.15),
// with the rate-limiter still on the common link.
//
// Paper shape: UDP FN stays near zero (0/0.38/2.38%); TCP FN grows with
// the congestion level (19.3/28/34.88%) as l1/l2 become the dominant
// bottlenecks and decorrelate the two paths' losses.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "parallel/trials.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main() {
  bench::print_header("Table 4", "FN under severe congestion on l1/l2");
  bench::ObservedSweep obs_run("bench_table4_congestion");
  const auto scale = run_scale();
  const std::vector<double> utils{0.95, 1.05, 1.15};

  // One flat trial batch over (transport x utilization), aggregated per
  // table cell in config order after the parallel sweep.
  std::vector<ScenarioConfig> configs;
  std::vector<std::size_t> cell_of;
  for (const bool udp : {true, false}) {
    const std::size_t row = udp ? 0 : 1;
    for (std::size_t u = 0; u < utils.size(); ++u) {
      std::uint64_t seed = 19;
      const std::vector<std::string> apps =
          udp ? std::vector<std::string>{"Zoom", "MSTeams"}
              : std::vector<std::string>{"Netflix"};
      for (const auto& app : apps) {
        for (double bg_fraction : {0.25, 0.5, 0.75}) {
          for (std::size_t run = 0; run < scale.runs_per_config; ++run) {
            auto cfg = default_scenario(app, seed++);
            cfg.nc_utilization = utils[u];
            cfg.bg_diff_fraction = bg_fraction;
            configs.push_back(cfg);
            cell_of.push_back(row * utils.size() + u);
          }
        }
      }
    }
  }
  const auto outcomes = parallel::run_trials(configs, bench::run_detectors);
  std::vector<bench::FnStats> cells(2 * utils.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    cells[cell_of[i]].add(outcomes[i]);
  }

  std::printf("%-10s | %-11s | %-13s | %s\n", "", "0.95 (low)",
              "1.05 (medium)", "1.15 (high)");
  for (std::size_t row = 0; row < 2; ++row) {
    std::printf("%-10s", row == 0 ? "UDP - FN" : "TCP - FN");
    for (std::size_t u = 0; u < utils.size(); ++u) {
      std::printf(" | %10.1f%%", cells[row * utils.size() + u].fn_rate());
    }
    std::printf("\n");
  }
  std::printf("\npaper: UDP 0/0.38/2.38%%, TCP 19.3/28/34.88%%\n");
  obs_run.report().verdict = "completed";
  return 0;
}
