// Figure 6: false-negative rate of alternative designs on the §6.2
// testbed grid (rate factor x queue factor, limiter on the common link).
//
//   (a) TCP: [modified traces] loss-trend corr vs BinLossTomoNoParams,
//       then per-app unmodified traces under both detectors.
//   (b) UDP apps: BinLossTomoNoParams with unmodified vs Poisson traces.
//
// Paper shape: WeHeY (loss-trend + modified traces) has FN = 0; classic
// tomography adds ~66-82% FN for TCP; unmodified traces add 3-11% more;
// tomography does better on UDP but stays non-zero.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "parallel/trials.hpp"

using namespace wehey;
using namespace wehey::experiments;

namespace {

struct DesignStats {
  bench::FnStats modified;
  bench::FnStats unmodified;
};

DesignStats run_app_grid(const std::string& app) {
  const auto scale = run_scale();
  // Interleave the modified/unmodified variants of each grid point in one
  // flat batch (even index = modified), sweep it in parallel, and fold the
  // outcomes back in config order.
  std::vector<ScenarioConfig> configs;
  std::uint64_t seed = 42;
  for (double factor : scale.input_rate_factors) {
    for (double queue : scale.queue_burst_factors) {
      for (std::size_t run = 0; run < scale.runs_per_config; ++run) {
        auto cfg = default_scenario(app, seed++);
        cfg.input_rate_factor = factor;
        cfg.queue_burst_factor = queue;
        cfg.modified_traces = true;
        configs.push_back(cfg);
        cfg.modified_traces = false;
        configs.push_back(cfg);
      }
    }
  }
  const auto outcomes = parallel::run_trials(configs, bench::run_detectors);
  DesignStats out;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    (i % 2 == 0 ? out.modified : out.unmodified).add(outcomes[i]);
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header("Figure 6", "FN of alternative designs");
  bench::ObservedSweep obs_run("bench_fig6_alt_designs");

  std::printf("(a) TCP trace\n");
  const auto tcp = run_app_grid("Netflix");
  std::printf("  %-34s | %s\n", "design", "FN rate");
  std::printf("  -----------------------------------+--------\n");
  std::printf("  %-34s | %6.1f%%\n", "loss-trend corr, modified (WeHeY)",
              tcp.modified.fn_rate());
  std::printf("  %-34s | %6.1f%%\n", "BinLossTomoNoParams, modified",
              tcp.modified.fn_rate_tomo());
  std::printf("  %-34s | %6.1f%%\n", "loss-trend corr, unmodified",
              tcp.unmodified.fn_rate());
  std::printf("  %-34s | %6.1f%%\n", "BinLossTomoNoParams, unmodified",
              tcp.unmodified.fn_rate_tomo());
  std::printf("  (experiments: %d modified / %d unmodified; %d skipped "
              "where WeHe found no differentiation)\n\n",
              tcp.modified.experiments, tcp.unmodified.experiments,
              tcp.modified.skipped + tcp.unmodified.skipped);

  std::printf("(b) UDP apps: BinLossTomoNoParams, unmodified vs Poisson "
              "(WeHeY's loss-trend FN shown for reference)\n");
  std::printf("  %-9s | %-14s | %-14s | %s\n", "app", "tomo unmod",
              "tomo Poisson", "loss-trend Poisson");
  std::printf("  ----------+----------------+----------------+-----------\n");
  for (const auto& app : evaluation_apps()) {
    if (app == "Netflix") continue;
    const auto udp = run_app_grid(app);
    std::printf("  %-9s | %13.1f%% | %13.1f%% | %9.1f%%\n", app.c_str(),
                udp.unmodified.fn_rate_tomo(), udp.modified.fn_rate_tomo(),
                udp.modified.fn_rate());
  }
  std::printf("\npaper: WeHeY FN = 0 across all 319 detected experiments; "
              "classic tomography +66-82%% (TCP), unmodified traces add "
              "3-11%% more\n");
  obs_run.report().verdict = "completed";
  return 0;
}
