// Packet vs fluid background carrier: events/sec and wall time for one
// wild phase at the Table-1 operating point (the client's light 300 kbps
// background) and at a heavy 4 Mbps point.
//
// The replay itself dominates a wild phase, so the headline number is the
// *background-attributable* event reduction: events(bg) - events(~no bg),
// per carrier. The fluid carrier's cost is bounded by its rate-step
// events, independent of the background rate.
//
// Results append a "background" block to BENCH_parallel.json (or
// WEHEY_BENCH_JSON) next to bench_event_loop's blocks; CI gates
// background.table1.event_reduction.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "experiments/wild.hpp"
#include "obs/recorder.hpp"
#include "trace/background.hpp"

namespace wehey {
namespace {

using experiments::Phase;
using experiments::WildConfig;

struct PhaseCost {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

/// One wild phase (ISP1, FAST/FULL replay duration) under the given
/// background carrier and rate, with a dedicated metrics recorder
/// counting simulator dispatches.
PhaseCost run_phase(trace::BackgroundMode mode, Rate bg_rate,
                    Time replay_duration) {
  WildConfig cfg;
  cfg.isp = experiments::default_isp_models()[0];
  cfg.replay_duration = replay_duration;
  cfg.bg_rate_per_path = bg_rate;
  cfg.bg_mode = mode;
  obs::Recorder rec(/*metrics_on=*/true, /*trace_on=*/false);
  const auto start = std::chrono::steady_clock::now();
  {
    obs::ScopedRecorder bind(&rec);
    (void)experiments::run_wild_phase(cfg, Phase::SimOriginal);
  }
  PhaseCost cost;
  cost.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  cost.events = rec.metrics().counter("sim.events").value();
  return cost;
}

struct OperatingPoint {
  const char* name;
  Rate bg_rate;
};

}  // namespace
}  // namespace wehey

int main() {
  using namespace wehey;
  bench::print_header("background", "packet vs fluid background carrier");
  bench::ObservedSweep observed("bench_background");

  const auto scale = experiments::run_scale();
  const Time duration = scale.replay_duration;
  // generate_background needs a positive rate; 1 kbps is the "almost no
  // background" baseline for the attributable-event difference.
  const Rate none = kbps(1);
  const OperatingPoint points[] = {
      {"table1", kbps(300)},  // Table-1 wild grid: bg_rate_per_path default
      {"heavy", mbps(4.0)},
  };

  auto background = bench::jobj();
  bench::jset(background, "replay_seconds", bench::jnum(to_seconds(duration)));
  std::printf("%-8s %14s %14s %12s %12s %10s\n", "point", "packet_events",
              "fluid_events", "packet_s", "fluid_s", "bg_reduc");
  for (const auto& point : points) {
    const PhaseCost packet =
        run_phase(trace::BackgroundMode::kPacket, point.bg_rate, duration);
    const PhaseCost packet0 =
        run_phase(trace::BackgroundMode::kPacket, none, duration);
    const PhaseCost fluid =
        run_phase(trace::BackgroundMode::kFluid, point.bg_rate, duration);
    const PhaseCost fluid0 =
        run_phase(trace::BackgroundMode::kFluid, none, duration);

    const double packet_bg =
        static_cast<double>(packet.events) - static_cast<double>(packet0.events);
    // The fluid carrier's attributable cost can vanish in the difference
    // (replay coupling); floor it at its step events (two sources, one
    // step per 100 ms) so the reduction never divides by ~zero.
    const double step_floor = 2.0 * to_seconds(duration + seconds(3)) * 10.0;
    const double fluid_bg = std::max(
        static_cast<double>(fluid.events) - static_cast<double>(fluid0.events),
        step_floor);
    const double reduction = packet_bg > 0.0 ? packet_bg / fluid_bg : 0.0;

    std::printf("%-8s %14llu %14llu %12.3f %12.3f %9.1fx\n", point.name,
                static_cast<unsigned long long>(packet.events),
                static_cast<unsigned long long>(fluid.events), packet.seconds,
                fluid.seconds, reduction);

    auto block = bench::jobj();
    bench::jset(block, "bg_rate_mbps", bench::jnum(point.bg_rate / 1e6));
    bench::jset(block, "packet_events",
                bench::jnum(static_cast<double>(packet.events)));
    bench::jset(block, "fluid_events",
                bench::jnum(static_cast<double>(fluid.events)));
    bench::jset(block, "packet_seconds", bench::jnum(packet.seconds));
    bench::jset(block, "fluid_seconds", bench::jnum(fluid.seconds));
    bench::jset(block, "packet_events_per_sec",
                bench::jnum(packet.events_per_sec()));
    bench::jset(block, "fluid_events_per_sec",
                bench::jnum(fluid.events_per_sec()));
    bench::jset(block, "packet_bg_events", bench::jnum(packet_bg));
    bench::jset(block, "fluid_bg_events", bench::jnum(fluid_bg));
    bench::jset(block, "event_reduction", bench::jnum(reduction));
    bench::jset(background, point.name, std::move(block));

    observed.report().values[std::string(point.name) + "_event_reduction"] =
        reduction;
  }

  const std::string path = bench::bench_json_path();
  if (bench::update_bench_block(path, "background", std::move(background))) {
    std::printf("\nwrote %s (background block)\n", path.c_str());
  } else {
    std::printf("\ncould not write %s\n", path.c_str());
    return 1;
  }
  return 0;
}
