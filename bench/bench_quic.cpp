// §7 (QUIC): "we believe it would perform similarly to whatever underlying
// congestion control algorithm is selected by QUIC".
//
// Two comparisons on the collective-throttling scenario:
//  (1) measurement fidelity — the sender-side loss estimate vs the
//      rate-limiter's actual drops, for TCP (retransmission-based,
//      over-counted and time-shifted) vs QUIC (packet-number based);
//  (2) WeHeY's detection: WeHe confirmation + loss-trend correlation with
//      the replayed session carried over each transport.
#include <cstdio>

#include "bench_util.hpp"
#include "core/loss_correlation.hpp"
#include "core/wehe.hpp"
#include "experiments/network.hpp"
#include "trace/apps.hpp"
#include "trace/background.hpp"

using namespace wehey;
using namespace wehey::experiments;

namespace {

struct QuicRun {
  bool confirmed = false;
  bool detected = false;
  double loss1 = 0;
};

/// One simultaneous-replay experiment with both paths carried over QUIC.
QuicRun run_quic_experiment(std::uint64_t seed) {
  auto cfg = default_scenario("Netflix", seed);
  const auto derived = derive(cfg);

  auto run_phase_quic = [&](bool original) {
    Rng rng(seed * 131071ULL + (original ? 1 : 2));
    netsim::Simulator sim;
    FigureOneNetwork net(sim, derived.net, rng);
    trace::BackgroundConfig bg;
    bg.target_rate = cfg.bg_rate_per_path;
    bg.duration = cfg.replay_duration + seconds(3);
    bg.flows_per_second =
        std::max(1.5, cfg.bg_rate_per_path / mbps(1.0) * 1.2);
    for (int path = 1; path <= 2; ++path) {
      auto flows = trace::generate_background(bg, rng);
      trace::mark_differentiated(flows, cfg.bg_diff_fraction, rng);
      net.attach_background(path, flows);
    }
    Rng trace_rng(cfg.seed * 0x9e3779b9ULL + 17);
    trace::AppTrace t = trace::make_tcp_app_trace(cfg.base_trace_duration,
                                                  trace_rng);
    if (!original) t = trace::bit_invert(t);
    t = trace::extend(t, cfg.replay_duration);
    const int id1 = net.start_quic_replay(1, t, 0);
    const int id2 = net.start_quic_replay(2, t, milliseconds(5));
    net.run(cfg.replay_duration);
    struct Out {
      PathReport p1, p2;
    } out;
    out.p1 = net.report(id1, 0, cfg.replay_duration);
    out.p2 = net.report(id2, milliseconds(5), cfg.replay_duration);
    return out;
  };

  const auto orig = run_phase_quic(true);
  const auto inv = run_phase_quic(false);
  QuicRun res;
  res.loss1 = orig.p1.meas.loss_rate();
  res.confirmed =
      core::detect_differentiation(orig.p1.meas, inv.p1.meas)
          .differentiation &&
      core::detect_differentiation(orig.p2.meas, inv.p2.meas)
          .differentiation;
  if (res.confirmed) {
    res.detected = core::loss_trend_correlation(orig.p1.meas, orig.p2.meas,
                                                milliseconds(cfg.rtt1_ms))
                       .common_bottleneck;
  }
  return res;
}

}  // namespace

int main() {
  bench::print_header("§7 (QUIC)", "WeHeY over a QUIC-carried session");
  bench::ObservedSweep obs_run("bench_quic");
  const auto scale = run_scale();
  const std::size_t runs = scale.full ? 8 : 4;

  int confirmed = 0, detected = 0;
  double loss_sum = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    const auto r = run_quic_experiment(1500 + i);
    confirmed += r.confirmed;
    detected += r.detected;
    loss_sum += r.loss1;
  }
  std::printf("  QUIC replays: WeHe confirmed %d/%zu, loss-trend detected "
              "%d/%d, avg declared-loss rate %.3f\n",
              confirmed, runs, detected, confirmed,
              loss_sum / static_cast<double>(runs));
  std::printf("\n(see bench_bbr for the CC comparison; QUIC's packet-number "
              "loss detection gives the *server* nearly exact, promptly "
              "registered loss events — the same measurement quality WeHeY "
              "gets from UDP clients, without client cooperation. "
              "tests/test_quic.cpp asserts the declared/actual drop ratio "
              "is within 0.9-1.2.)\n");
  obs_run.report().verdict = "completed";
  return 0;
}
