// Table 3: false-negative rate for different RTTs. RTT_1 is fixed at
// 35 ms; RTT_2 sweeps the 5th-95th percentiles of WeHe-observed RTTs.
//
// Paper shape: FN roughly flat until RTT_2 = 120 ms (85 ms difference),
// where it jumps (TCP 50%, UDP 21.33%) because the interval size scales
// with the RTT and leaves too few intervals per experiment.
#include <cstdio>

#include "bench_util.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main() {
  bench::print_header("Table 3", "FN for different RTT_2 values");
  const auto scale = run_scale();
  const std::vector<double> rtts{15, 25, 35, 60, 120};

  std::printf("%-10s", "RTT_2(ms)");
  for (double r : rtts) std::printf(" | %7.0f", r);
  std::printf("\n");

  for (const bool tcp : {true, false}) {
    std::printf("%-10s", tcp ? "TCP - FN" : "UDP - FN");
    for (double rtt2 : rtts) {
      bench::FnStats stats;
      std::uint64_t seed = 11;
      const std::vector<std::string> apps =
          tcp ? std::vector<std::string>{"Netflix"}
              : std::vector<std::string>{"Zoom", "Skype"};
      for (const auto& app : apps) {
        for (double bg_fraction : {0.25, 0.5, 0.75}) {
          for (std::size_t run = 0; run < scale.runs_per_config; ++run) {
            auto cfg = default_scenario(app, seed++);
            cfg.rtt1_ms = 35.0;
            cfg.rtt2_ms = rtt2;
            cfg.bg_diff_fraction = bg_fraction;
            stats.add(bench::run_detectors(cfg));
          }
        }
      }
      std::printf(" | %6.1f%%", stats.fn_rate());
    }
    std::printf("\n");
  }
  std::printf("\npaper: TCP 21.66/25.86/28.33/31.66/50%%, "
              "UDP 0/0/0/0/21.33%% at 15/25/35/60/120 ms (severe-throttling "
              "background mix)\n");
  return 0;
}
