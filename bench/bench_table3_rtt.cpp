// Table 3: false-negative rate for different RTTs. RTT_1 is fixed at
// 35 ms; RTT_2 sweeps the 5th-95th percentiles of WeHe-observed RTTs.
//
// Paper shape: FN roughly flat until RTT_2 = 120 ms (85 ms difference),
// where it jumps (TCP 50%, UDP 21.33%) because the interval size scales
// with the RTT and leaves too few intervals per experiment.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "parallel/trials.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main() {
  bench::print_header("Table 3", "FN for different RTT_2 values");
  bench::ObservedSweep obs_run("bench_table3_rtt");
  const auto scale = run_scale();
  const std::vector<double> rtts{15, 25, 35, 60, 120};

  // Flatten the (transport x RTT_2) table into one trial batch, run it
  // through the parallel engine, and aggregate per cell in config order.
  std::vector<ScenarioConfig> configs;
  std::vector<std::size_t> cell_of;  // row * rtts.size() + column
  for (const bool tcp : {true, false}) {
    const std::size_t row = tcp ? 0 : 1;
    for (std::size_t r = 0; r < rtts.size(); ++r) {
      std::uint64_t seed = 11;
      const std::vector<std::string> apps =
          tcp ? std::vector<std::string>{"Netflix"}
              : std::vector<std::string>{"Zoom", "Skype"};
      for (const auto& app : apps) {
        for (double bg_fraction : {0.25, 0.5, 0.75}) {
          for (std::size_t run = 0; run < scale.runs_per_config; ++run) {
            auto cfg = default_scenario(app, seed++);
            cfg.rtt1_ms = 35.0;
            cfg.rtt2_ms = rtts[r];
            cfg.bg_diff_fraction = bg_fraction;
            configs.push_back(cfg);
            cell_of.push_back(row * rtts.size() + r);
          }
        }
      }
    }
  }
  const auto outcomes = parallel::run_trials(configs, bench::run_detectors);
  std::vector<bench::FnStats> cells(2 * rtts.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    cells[cell_of[i]].add(outcomes[i]);
  }

  std::printf("%-10s", "RTT_2(ms)");
  for (double r : rtts) std::printf(" | %7.0f", r);
  std::printf("\n");
  for (std::size_t row = 0; row < 2; ++row) {
    std::printf("%-10s", row == 0 ? "TCP - FN" : "UDP - FN");
    for (std::size_t r = 0; r < rtts.size(); ++r) {
      std::printf(" | %6.1f%%", cells[row * rtts.size() + r].fn_rate());
    }
    std::printf("\n");
  }
  std::printf("\npaper: TCP 21.66/25.86/28.33/31.66/50%%, "
              "UDP 0/0/0/0/21.33%% at 15/25/35/60/120 ms (severe-throttling "
              "background mix)\n");
  obs_run.report().verdict = "completed";
  return 0;
}
