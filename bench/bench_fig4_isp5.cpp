// Figure 4: throughput over time during the single and the simultaneous
// original replay on ISP5's network (delayed fixed-rate throttling).
//
// Paper shape: during the simultaneous replay the fixed-rate throttle
// engages much earlier (~5 s) than during the single replay (~22 s), so
// the aggregate simultaneous throughput does not add up to the single-
// replay throughput and the throughput-comparison test fails.
#include <cstdio>

#include "bench_util.hpp"
#include "experiments/wild.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main() {
  bench::print_header("Figure 4", "ISP5 throughput over time");
  bench::ObservedSweep obs_run("bench_fig4_isp5");

  WildConfig cfg;
  cfg.isp = default_isp_models()[4];  // ISP5
  cfg.seed = 41;

  const auto single = run_wild_phase(cfg, Phase::SingleOriginal);
  const auto sim = run_wild_phase(cfg, Phase::SimOriginal);

  const Time step = seconds(1);
  const auto x = single.p1.meas.throughput_over_time(step);
  const auto y1 = sim.p1.meas.throughput_over_time(step);
  const auto y2 = sim.p2.meas.throughput_over_time(step);

  std::printf("  t(s) | single (Mbps) | simultaneous aggregate (Mbps)\n");
  std::printf("  -----+---------------+-------------------------------\n");
  const std::size_t n = std::min(x.size(), std::min(y1.size(), y2.size()));
  std::vector<double> agg(n);
  for (std::size_t t = 0; t < n; ++t) {
    agg[t] = y1[t] + y2[t];
    std::printf("  %4zu | %13.2f | %13.2f\n", t, x[t] / 1e6, agg[t] / 1e6);
  }

  // Locate the throttle engagement: the last time the rate still reached
  // 75% of the pre-throttle peak — afterwards the series sits at the
  // fixed throttle rate.
  auto engage = [&](const std::vector<double>& series) {
    double peak = 0.0;
    for (std::size_t t = 0; t < series.size() / 2; ++t) {
      peak = std::max(peak, series[t]);
    }
    std::size_t last_high = 0;
    for (std::size_t t = 0; t < series.size(); ++t) {
      if (series[t] >= 0.75 * peak) last_high = t;
    }
    return static_cast<double>(last_high);
  };
  std::printf("\nthrottle engages: single ~%.0f s, simultaneous ~%.0f s\n",
              engage(x), engage(agg));
  std::printf("paper: simultaneous ~5 s vs single ~22 s (both drop to the "
              "same fixed rate)\n");
  obs_run.report().verdict = "completed";
  return 0;
}
