// Figure 2: CDFs of the single-replay (X) and aggregate simultaneous-
// replay (Y) throughputs, and PDFs (with rug values) of O_diff and T_diff,
// for (a) a per-client throttling scenario and (b) an alternative where
// p1/p2 share the bottleneck with other traffic.
//
// Paper shape: in (a) the X/Y CDFs and the O_diff/T_diff peaks overlap
// (MWU p << 0.05); in (b) they do not (p ~ 1).
#include <cstdio>

#include "bench_util.hpp"
#include "core/throughput_comparison.hpp"
#include "experiments/history.hpp"
#include "experiments/wild.hpp"
#include "stats/empirical.hpp"

using namespace wehey;
using namespace wehey::experiments;

namespace {

void print_cdf(const char* name, const std::vector<double>& samples) {
  stats::EmpiricalDistribution d(samples);
  std::printf("  CDF of %s (Mbps -> F):", name);
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    std::printf("  %.2f->%.2f", d.quantile(q) / 1e6, q);
  }
  std::printf("\n");
}

void print_pdf(const char* name, const std::vector<double>& values) {
  const auto curve = stats::kde(values, 9);
  std::printf("  PDF of %s:", name);
  for (std::size_t i = 0; i < curve.xs.size(); ++i) {
    std::printf("  (%.3f, %.2f)", curve.xs[i], curve.densities[i]);
  }
  std::printf("\n");
}

void scenario_report(const char* title, const std::vector<double>& x,
                     const std::vector<double>& y,
                     const std::vector<double>& t_diff, Rng& rng) {
  std::printf("%s\n", title);
  print_cdf("X (single replay)", x);
  print_cdf("Y (simultaneous aggregate)", y);
  const auto res = core::throughput_comparison(x, y, t_diff, rng);
  print_pdf("O_diff", res.o_diff);
  print_pdf("T_diff", res.t_diff);
  std::printf("  MWU p-value = %.3g -> common bottleneck %s\n\n",
              res.p_value, res.common_bottleneck ? "DETECTED" : "not found");
}

}  // namespace

int main() {
  bench::print_header("Figure 2", "throughput distributions, O_diff vs T_diff");
  bench::ObservedSweep obs_run("bench_fig2_tput_dists");
  Rng rng(2024);

  // (a) Per-client throttling: the wild model.
  {
    WildConfig cfg;
    cfg.isp = default_isp_models()[0];
    cfg.seed = 33;
    const auto t_diff = build_wild_t_diff(cfg, 12);
    const auto sim_orig = run_wild_phase(cfg, Phase::SimOriginal);
    const auto single = run_wild_phase(cfg, Phase::SingleOriginal);
    const auto x = single.p1.meas.throughput_samples(100);
    const auto y = core::aggregate_samples(
        sim_orig.p1.meas.throughput_samples(100),
        sim_orig.p2.meas.throughput_samples(100));
    scenario_report("(a) per-client throttling", x, y, t_diff, rng);
  }

  // (b) Alternative: collective bottleneck shared with background.
  {
    auto cfg = default_scenario("Netflix", 33);
    const auto t_diff = build_t_diff_history(cfg, {.replays = 12});
    const auto sim_orig = run_phase(cfg, Phase::SimOriginal);
    const auto single = run_phase(cfg, Phase::SingleOriginal);
    const auto x = single.p1.meas.throughput_samples(100);
    const auto y = core::aggregate_samples(
        sim_orig.p1.meas.throughput_samples(100),
        sim_orig.p2.meas.throughput_samples(100));
    scenario_report("(b) shared with other traffic", x, y, t_diff, rng);
  }

  std::printf("paper: (a) overlapping CDFs/PDF peaks, p = 7.54e-18; "
              "(b) disjoint, p = 0.99\n");
  obs_run.report().verdict = "completed";
  return 0;
}
