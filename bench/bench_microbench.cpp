// google-benchmark timings of WeHeY's computational kernels: the
// statistical tests, the loss-series construction, the detection
// algorithms, and the packet-level simulator itself.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/loss_correlation.hpp"
#include "core/loss_series.hpp"
#include "core/tomography.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "stats/correlation.hpp"
#include "stats/hypothesis.hpp"
#include "stats/resample.hpp"
#include "transport/tcp.hpp"

namespace {

using namespace wehey;

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform();
  return out;
}

void BM_Spearman(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto xs = random_series(n, 1);
  const auto ys = random_series(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::spearman(xs, ys));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Spearman)->Range(16, 4096)->Complexity(benchmark::oNLogN);

void BM_MannWhitneyU(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto xs = random_series(n, 3);
  const auto ys = random_series(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::mann_whitney_u(xs, ys, stats::Alternative::Less));
  }
}
BENCHMARK(BM_MannWhitneyU)->Range(16, 4096);

void BM_KsTwoSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto xs = random_series(n, 5);
  const auto ys = random_series(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ks_two_sample(xs, ys));
  }
}
BENCHMARK(BM_KsTwoSample)->Range(16, 4096);

void BM_HalfSampleMonteCarlo(benchmark::State& state) {
  const auto xs = random_series(100, 7);
  const auto ys = random_series(100, 8);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::half_sample_mean_difference(xs, ys, 100, rng));
  }
}
BENCHMARK(BM_HalfSampleMonteCarlo);

netsim::ReplayMeasurement synthetic_measurement(std::size_t packets,
                                                std::uint64_t seed) {
  Rng rng(seed);
  netsim::ReplayMeasurement m;
  m.start = 0;
  m.end = seconds(45);
  for (std::size_t i = 0; i < packets; ++i) {
    const Time at = static_cast<Time>(to_seconds(m.end) /
                                      static_cast<double>(packets) *
                                      static_cast<double>(i) * kSecond);
    m.tx_times.push_back(at);
    if (rng.bernoulli(0.05)) m.loss_times.push_back(at);
  }
  return m;
}

void BM_LossTrendCorrelation(benchmark::State& state) {
  const auto m1 = synthetic_measurement(
      static_cast<std::size_t>(state.range(0)), 11);
  const auto m2 = synthetic_measurement(
      static_cast<std::size_t>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::loss_trend_correlation(m1, m2, milliseconds(35)));
  }
}
BENCHMARK(BM_LossTrendCorrelation)->Range(1024, 65536);

void BM_BinLossTomoNoParams(benchmark::State& state) {
  const auto m1 = synthetic_measurement(
      static_cast<std::size_t>(state.range(0)), 13);
  const auto m2 = synthetic_measurement(
      static_cast<std::size_t>(state.range(0)), 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::bin_loss_tomo_no_params(m1, m2, milliseconds(35)));
  }
}
BENCHMARK(BM_BinLossTomoNoParams)->Range(1024, 65536);

void tcp_bulk_once() {
  netsim::Simulator sim;
  netsim::PacketIdSource ids;
  transport::TcpConfig cfg;
  auto demux = std::make_unique<netsim::Demux>();
  auto link = std::make_unique<netsim::Link>(
      sim, mbps(10), milliseconds(15),
      std::make_unique<netsim::FifoDisc>(125000), demux.get());
  auto pipe = std::make_unique<netsim::Pipe>(sim, milliseconds(15));
  transport::TcpSender snd(sim, ids, cfg, 1, 0, link.get());
  transport::TcpReceiver rcv(sim, ids, cfg, 1, pipe.get());
  pipe->set_next(&snd);
  demux->add_route(1, &rcv);
  snd.supply(1'000'000);
  sim.run(seconds(10));
  benchmark::DoNotOptimize(rcv.received_bytes());
}

void BM_TcpBulkSimulation(benchmark::State& state) {
  // Events per second of simulated TCP at 10 Mbps, with the observability
  // hooks compiled in but no recorder bound (the production default).
  for (auto _ : state) tcp_bulk_once();
}
BENCHMARK(BM_TcpBulkSimulation)->Unit(benchmark::kMillisecond);

void BM_TcpBulkSimulationObserved(benchmark::State& state) {
  // The same workload with a metrics recorder bound to the thread — the
  // cost of the counted dispatch loop. Compare against BM_TcpBulkSimulation
  // to see the enabled-path overhead (the idle path must stay within 2%).
  obs::Recorder rec(/*metrics_on=*/true, /*trace_on=*/false);
  obs::ScopedRecorder bind(&rec);
  for (auto _ : state) tcp_bulk_once();
}
BENCHMARK(BM_TcpBulkSimulationObserved)->Unit(benchmark::kMillisecond);

void BM_MetricsCounterInc(benchmark::State& state) {
  // The metric hot path itself: find-or-create once, then plain
  // increments through the cached handle.
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("bench.counter");
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MetricsCounterInc);

}  // namespace

BENCHMARK_MAIN();
