// Table 1: successful localization rate of traffic differentiation in
// five (modelled) cellular ISPs, plus the §5 sanity-check tests.
//
// Paper shape: four ISPs >= ~89%; ISP5 (delayed fixed-rate throttling)
// far lower (16.28%); at most ~1 wrong sanity-check outcome.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/resample.hpp"
#include "experiments/wild.hpp"
#include "parallel/trials.hpp"
#include "trace/apps.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main() {
  bench::print_header("Table 1", "localization success rate per ISP (wild)");
  bench::ObservedSweep obs_run("bench_table1_wild");
  const auto scale = run_scale();
  const std::size_t tests_per_isp = scale.full ? 50 : 12;
  const std::size_t sanity_per_isp = scale.full ? 10 : 3;
  obs_run.expect_runs(default_isp_models().size() *
                      (tests_per_isp + sanity_per_isp));
  // The wild grid is the repo's heaviest sweep, so its scheduler metrics
  // are the telemetry baseline the executor rework will be gated on.
  const bool runtime_was_enabled = obs::runtime::enabled();
  obs::runtime::set_enabled(true);

  // WEHEY_FAULT_PLAN runs the whole grid under a shipped chaos plan; the
  // per-kind injection tallies land in the RunReport.
  const auto plan = bench::fault_plan_from_env();
  if (plan.has_value()) {
    obs_run.report().fault_plan = plan->name;
    std::printf("fault plan: %s (seed %llu)\n", plan->name.c_str(),
                static_cast<unsigned long long>(plan->seed));
  }

  std::printf("%-6s | %-9s | %-11s | %s\n", "ISP", "basic", "success",
              "sanity-check wrong detections");
  std::printf("-------+-----------+-------------+------------------------------\n");
  for (const auto& isp : default_isp_models()) {
    WildConfig base;
    base.isp = isp;
    base.seed = 1;
    if (plan.has_value()) base.fault_plan = &*plan;
    const std::size_t total = tests_per_isp + sanity_per_isp;

    // Checkpoint resume (WEHEY_CHECKPOINT): runs already journaled by a
    // killed sweep are skipped below and their reports re-absorbed
    // byte-for-byte, so only the remainder executes.
    std::vector<std::string> run_ids(total);
    std::size_t live = 0;
    for (std::size_t i = 0; i < total; ++i) {
      char run_id[64];
      std::snprintf(run_id, sizeof(run_id), "bench_table1_wild.%s.r%03zu",
                    isp.name.c_str(), i);
      run_ids[i] = run_id;
      live += obs_run.cached(run_ids[i]) == nullptr;
    }
    // T_diff feeds only the tests that actually execute.
    const auto t_diff = live > 0
                            ? build_wild_t_diff(base, scale.full ? 14 : 10)
                            : std::vector<double>{};

    // Basic and sanity-check tests are independent full WeHeY runs; fan
    // them out as one batch on the parallel engine (first tests_per_isp
    // entries are basic tests, the rest sanity checks). Each test comes
    // back as a reported run, absorbed into the sweep aggregate in index
    // order below.
    const auto& services = trace::tcp_app_names();
    const auto wild_results =
        parallel::parallel_map(total, [&](std::size_t i) {
          if (obs_run.cached(run_ids[i]) != nullptr) return WildTestResult{};
          WildConfig cfg = base;
          if (i < tests_per_isp) {
            cfg.seed = 1000 + i * 17;
            cfg.app = services[i % services.size()];  // §5: five services
            return run_wild_test_reported(cfg, t_diff,
                                          /*sanity_check=*/false, run_ids[i]);
          }
          cfg.seed = 5000 + (i - tests_per_isp) * 13;
          return run_wild_test_reported(cfg, t_diff, /*sanity_check=*/true,
                                        run_ids[i]);
        });
    std::size_t localized = 0;
    std::size_t wrong_sanity = 0;
    for (std::size_t i = 0; i < total; ++i) {
      // Wrong sanity-check behaviour: detecting a (per-client) common
      // bottleneck while a third flow shares it.
      if (const auto* entry = obs_run.cached(run_ids[i])) {
        const obs::JsonValue doc = obs_run.absorb_cached(*entry);
        obs_run.record_injection_json(doc);
        // Tallies come from the journaled report's scalar values.
        const obs::JsonValue* values = doc.find("values");
        const obs::JsonValue* pc =
            values != nullptr ? values->find("per_client") : nullptr;
        const bool per_client = pc != nullptr && pc->num_or(0.0) != 0.0;
        if (i < tests_per_isp) {
          const obs::JsonValue* loc =
              values != nullptr ? values->find("localized") : nullptr;
          localized += per_client && loc != nullptr && loc->num_or(0.0) != 0.0;
        } else {
          wrong_sanity += per_client;
        }
        continue;
      }
      const auto& res = wild_results[i];
      obs_run.record_injection(res.outcome.injection);
      obs_run.add_run(res.report, &res.metrics);
      if (i < tests_per_isp) {
        localized += res.outcome.localized &&
                     res.outcome.localization.mechanism ==
                         core::Mechanism::PerClientThrottling;
      } else {
        wrong_sanity += res.outcome.localization.mechanism ==
                        core::Mechanism::PerClientThrottling;
      }
    }
    obs_run.report().values[isp.name + ".localized"] =
        static_cast<double>(localized);
    obs_run.report().values[isp.name + ".tests"] =
        static_cast<double>(tests_per_isp);
    const auto ci = stats::wilson_interval(localized, tests_per_isp);
    std::printf("%-6s | %3zu tests | %10.2f%% | %zu/%zu   (95%% CI "
                "%.0f-%.0f%%)\n",
                isp.name.c_str(), tests_per_isp,
                100.0 * static_cast<double>(localized) /
                    static_cast<double>(tests_per_isp),
                wrong_sanity, sanity_per_isp, 100.0 * ci.low,
                100.0 * ci.high);
    if (auto csv = bench::open_csv("table1_" + isp.name)) {
      csv->header({"isp", "tests", "localized", "ci_low", "ci_high"});
      csv->row({isp.name, std::to_string(tests_per_isp),
                std::to_string(localized), CsvWriter::num(ci.low),
                CsvWriter::num(ci.high)});
    }
  }
  std::printf("\npaper: ISP1 89.8%%, ISP2 89.83%%, ISP3 94%%, ISP4 98.18%%, "
              "ISP5 16.28%%; sanity checks wrong once overall\n");

  // Fold the sweep's scheduler-efficiency metrics into the shared
  // "runtime" block of BENCH_parallel.json (sub-block-wise: the grid
  // bench's "grid" entry survives). Wall-clock only — the deterministic
  // sweep report above is untouched.
  const auto snap = obs::runtime::snapshot();
  auto runtime_block = bench::jobj();
  bench::jset(runtime_block, "configured_threads",
              bench::jnum(snap.configured_threads));
  bench::jset(runtime_block, "hardware_threads",
              bench::jnum(snap.hardware_threads));
  bench::jset(runtime_block, "parallel_efficiency",
              bench::jnum(snap.parallel_efficiency));
  bench::jset(runtime_block, "worker_imbalance",
              bench::jnum(snap.worker_imbalance));
  bench::jset(runtime_block, "wait_fraction", bench::jnum(snap.wait_fraction));
  bench::jset(runtime_block, "trials",
              bench::jnum(static_cast<double>(snap.trials)));
  bench::jset(runtime_block, "tasks",
              bench::jnum(static_cast<double>(snap.tasks)));
  bench::update_bench_subblock(bench::bench_json_path(), "runtime",
                               "table1_wild", std::move(runtime_block));
  if (!runtime_was_enabled) obs::runtime::set_enabled(false);
  obs_run.report().verdict = "completed";
  return 0;
}
