// Ablations of WeHeY's design choices (DESIGN.md §5):
//   1. Spearman vs Pearson in Alg. 1 (rank robustness),
//   2. requiring (1-FP)|Sigma| interval sizes vs a single size,
//   3. the 10-50 RTT interval band vs narrower/wider bands,
//   4. MWU vs KS vs Welch t for the §4.1 throughput comparison.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/loss_correlation.hpp"
#include "core/throughput_comparison.hpp"
#include "experiments/history.hpp"
#include "experiments/wild.hpp"
#include "parallel/trials.hpp"
#include "stats/hypothesis.hpp"

using namespace wehey;
using namespace wehey::experiments;

namespace {

struct CorrVariant {
  const char* name;
  core::LossCorrelationConfig cfg;
};

/// The measurement batches every correlation variant is scored against:
/// `fn` are common-bottleneck experiments, `fp` separate-limiter ones.
/// Simulated once on the parallel engine and shared across variants (the
/// serial bench used to re-simulate them per variant).
struct VariantInputs {
  std::vector<SimultaneousResult> fn;
  std::vector<SimultaneousResult> fp;
};

VariantInputs simulate_variant_inputs(int runs) {
  std::vector<ScenarioConfig> configs;
  for (int i = 0; i < runs; ++i) {
    configs.push_back(default_scenario("Netflix", 300 + i));
  }
  for (int i = 0; i < runs; ++i) {
    auto fp_cfg = default_scenario("Netflix", 400 + i);
    fp_cfg.placement = Placement::NonCommonLinks;
    configs.push_back(fp_cfg);
  }
  auto sims = parallel::run_trials(configs, run_simultaneous_experiment);
  VariantInputs in;
  in.fn.assign(std::make_move_iterator(sims.begin()),
               std::make_move_iterator(sims.begin() + runs));
  in.fp.assign(std::make_move_iterator(sims.begin() + runs),
               std::make_move_iterator(sims.end()));
  return in;
}

/// FN/FP of a loss-correlation variant over the shared batches.
void eval_variant(const CorrVariant& v, const VariantInputs& in) {
  int fn = 0, fn_n = 0, fp = 0, fp_n = 0;
  for (const auto& sim : in.fn) {
    if (!sim.differentiation_confirmed) continue;
    ++fn_n;
    fn += !core::loss_trend_correlation(sim.original.p1.meas,
                                        sim.original.p2.meas,
                                        milliseconds(35), v.cfg)
               .common_bottleneck;
  }
  for (const auto& fp_sim : in.fp) {
    ++fp_n;
    fp += core::loss_trend_correlation(fp_sim.original.p1.meas,
                                       fp_sim.original.p2.meas,
                                       milliseconds(35), v.cfg)
              .common_bottleneck;
  }
  std::printf("  %-34s | FN %2d/%2d | FP %2d/%2d\n", v.name, fn, fn_n, fp,
              fp_n);
}

}  // namespace

int main() {
  bench::print_header("Ablations", "WeHeY design choices");
  bench::ObservedSweep obs_run("bench_ablations");
  const auto scale = run_scale();
  const int runs = scale.full ? 12 : 4;

  std::printf("(1,2,3) loss-trend correlation variants "
              "(common-bottleneck FN / separate-limiters FP):\n");
  std::vector<CorrVariant> variants;
  variants.push_back({"WeHeY (Spearman, 9 sizes, 10-50RTT)", {}});
  {
    core::LossCorrelationConfig c;
    c.method = core::CorrelationMethod::Pearson;
    variants.push_back({"Pearson instead of Spearman", c});
  }
  {
    core::LossCorrelationConfig c;
    c.method = core::CorrelationMethod::Kendall;
    variants.push_back({"Kendall tau instead of Spearman", c});
  }
  {
    core::LossCorrelationConfig c;
    c.method = core::CorrelationMethod::SpearmanPermutation;
    variants.push_back({"Spearman, permutation p-values", c});
  }
  {
    core::LossCorrelationConfig c;
    c.interval_sizes = 2;  // (1-FP)*2 = 1.9 -> both must fire; close to
                           // single-size behaviour
    variants.push_back({"2 interval sizes only", c});
  }
  {
    core::LossCorrelationConfig c;
    c.min_interval_rtts = 1;
    c.max_interval_rtts = 5;
    variants.push_back({"narrow band (1-5 RTT)", c});
  }
  {
    core::LossCorrelationConfig c;
    c.min_interval_rtts = 100;
    c.max_interval_rtts = 300;
    variants.push_back({"coarse band (100-300 RTT)", c});
  }
  const auto inputs = simulate_variant_inputs(runs);
  for (const auto& v : variants) eval_variant(v, inputs);

  std::printf("\n(4) throughput-comparison test statistic "
              "(per-client scenario should DETECT):\n");
  {
    WildConfig cfg;
    cfg.isp = default_isp_models()[0];
    cfg.seed = 55;
    const auto t_diff = build_wild_t_diff(cfg, 10);
    const auto sim_orig = run_wild_phase(cfg, Phase::SimOriginal);
    const auto single = run_wild_phase(cfg, Phase::SingleOriginal);
    const auto x = single.p1.meas.throughput_samples(100);
    const auto y = core::aggregate_samples(
        sim_orig.p1.meas.throughput_samples(100),
        sim_orig.p2.meas.throughput_samples(100));
    Rng rng(99);
    const auto res = core::throughput_comparison(x, y, t_diff, rng);
    const auto ks = stats::ks_two_sample(res.o_diff, res.t_diff);
    const auto tt =
        stats::welch_t(res.o_diff, res.t_diff, stats::Alternative::Less);
    std::printf("  MWU (WeHeY):   p = %-10.3g -> %s\n", res.p_value,
                res.p_value < 0.05 ? "detect" : "miss");
    std::printf("  KS:            p = %-10.3g (two-sided; outlier-"
                "sensitive)\n",
                ks.p_value);
    std::printf("  Welch t:       p = %-10.3g (normality assumption)\n",
                tt.p_value);
  }
  std::printf("\nexpected: WeHeY's configuration dominates — narrow bands "
              "miss desynchronized losses, coarse bands starve the test of "
              "intervals, few sizes weaken FP control\n");
  obs_run.report().verdict = "completed";
  return 0;
}
