// §3.2 / §7: per-flow throttling — WeHeY's main limitation and the
// paper's proposed countermeasure.
//
// Three conditions, all with per-flow token buckets on the common link:
//   (1) honest replays (different flow keys): each replay gets its own
//       bucket; the paper's limitation — loss-trend correlation must NOT
//       localize (no common bottleneck actually exists between the two
//       replays' buckets);
//   (2) spoofed replays (same flow key, the §7 trick): both replays share
//       one bucket; the classic correlation test struggles in this
//       two-flows-only regime, but the coupled-bottleneck test (the "new
//       statistical tool" §7 calls for) detects the shared bucket;
//   (3) FP control: spoofed *per-path* keys through separate, identically
//       configured buckets must not be declared coupled.
#include <cstdio>

#include "bench_util.hpp"
#include "core/coupling.hpp"
#include "core/loss_correlation.hpp"

using namespace wehey;
using namespace wehey::experiments;

namespace {

struct Outcome {
  int runs = 0;
  int wehe = 0;
  int loss_trend = 0;
  int coupled = 0;
};

Outcome run_batch(bool spoof, bool per_flow, std::uint64_t seed_base,
                  std::size_t runs) {
  Outcome out;
  for (std::size_t i = 0; i < runs; ++i) {
    auto cfg = default_scenario("Netflix", seed_base + i);
    cfg.placement =
        per_flow ? Placement::PerFlowCommonLink : Placement::NonCommonLinks;
    cfg.spoof_same_flow = spoof;
    const auto sim = run_simultaneous_experiment(cfg);
    ++out.runs;
    out.wehe += sim.differentiation_confirmed;
    const Time rtt = milliseconds(cfg.rtt1_ms);
    out.loss_trend += core::loss_trend_correlation(sim.original.p1.meas,
                                                   sim.original.p2.meas, rtt)
                          .common_bottleneck;
    const auto y1 = sim.original.p1.meas.throughput_samples(100);
    const auto y2 = sim.original.p2.meas.throughput_samples(100);
    out.coupled += core::coupled_bottleneck_test(y1, y2).coupled;
  }
  return out;
}

void print_row(const char* label, const Outcome& o) {
  std::printf("  %-42s | %2d/%2d | %2d/%2d | %2d/%2d\n", label, o.wehe,
              o.runs, o.loss_trend, o.runs, o.coupled, o.runs);
}

}  // namespace

int main() {
  bench::print_header("§3.2/§7", "per-flow throttling and the countermeasure");
  bench::ObservedSweep obs_run("bench_perflow");
  const auto scale = run_scale();
  const std::size_t runs = scale.full ? 10 : 4;

  std::printf("  %-42s | WeHe  | lossTr | coupled\n", "condition");
  std::printf("  -------------------------------------------+-------+--------+--------\n");
  print_row("per-flow buckets, honest replays (§3.2)",
            run_batch(false, true, 900, runs));
  print_row("per-flow buckets, same-flow spoof (§7)",
            run_batch(true, true, 950, runs));
  print_row("separate identical buckets, spoofed keys",
            run_batch(true, false, 990, runs));

  std::printf("\nexpected shape: honest per-flow -> WeHe detects but no\n"
              "localization (the §3.2 limitation); spoofed per-flow -> the\n"
              "coupled-bottleneck test fires; separate buckets -> neither\n"
              "detector fires (FP control)\n");
  obs_run.report().verdict = "completed";
  return 0;
}
