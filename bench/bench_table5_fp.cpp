// Table 5: false-positive rate of the loss-trend correlation algorithm
// under *identically configured* independent rate-limiters on the two
// non-common link sequences — the paper's "ultimate FP test".
//
// Paper shape: FP close to or better than the 5% target for the TCP trace
// and all five UDP apps (1.13-3.75%).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "parallel/trials.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main() {
  bench::print_header("Table 5",
                      "FP under identical rate-limiters on l1 and l2");
  bench::ObservedSweep obs_run("bench_table5_fp");
  const auto scale = run_scale();

  // WEHEY_FAULT_PLAN injects a shipped chaos plan into every trial of the
  // grid; the plan name and injection tallies land in the RunReport.
  const auto plan = bench::fault_plan_from_env();
  if (plan.has_value()) {
    obs_run.report().fault_plan = plan->name;
    std::printf("fault plan: %s (seed %llu)\n", plan->name.c_str(),
                static_cast<unsigned long long>(plan->seed));
  }

  // Build the whole grid (all apps) up front, fan the independent trials
  // over the parallel engine, then fold per-app stats in config order.
  const auto apps = evaluation_apps();
  std::vector<ScenarioConfig> configs;
  std::vector<std::size_t> app_of;  // configs[i] belongs to apps[app_of[i]]
  for (std::size_t a = 0; a < apps.size(); ++a) {
    std::uint64_t seed = 1;
    for (double factor : scale.input_rate_factors) {
      for (double queue : scale.queue_burst_factors) {
        for (std::size_t run = 0; run < scale.runs_per_config; ++run) {
          auto cfg = default_scenario(apps[a], seed++);
          cfg.placement = Placement::NonCommonLinks;
          cfg.input_rate_factor = factor;
          cfg.queue_burst_factor = queue;
          if (plan.has_value()) cfg.fault_plan = &*plan;
          configs.push_back(cfg);
          app_of.push_back(a);
        }
      }
    }
  }
  // Checkpoint resume (WEHEY_CHECKPOINT): trials journaled by a killed
  // sweep are skipped and their reports re-absorbed byte-for-byte below.
  std::vector<std::string> run_ids(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    char run_id[64];
    std::snprintf(run_id, sizeof(run_id), "bench_table5_fp.%s.r%03zu",
                  apps[app_of[i]].c_str(), i);
    run_ids[i] = run_id;
  }
  // Each trial comes back as a reported run (cell = app) so the sweep
  // aggregate carries per-app grid summaries and cross-cell percentiles.
  struct TrialResult {
    bench::DetectorOutcome outcome;
    obs::RunReport report;
    obs::MetricsRegistry metrics;
  };
  const auto results =
      parallel::parallel_map(configs.size(), [&](std::size_t i) {
        TrialResult res;
        if (obs_run.cached(run_ids[i]) != nullptr) return res;
        obs::Recorder* outer = obs::Recorder::current();
        obs::Recorder local(/*metrics_on=*/true,
                            outer != nullptr && outer->trace_on());
        {
          obs::ScopedRecorder bind(&local);
          res.outcome = bench::run_detectors(configs[i]);
        }
        const std::string& run_id = run_ids[i];
        auto& r = res.report;
        r.run = run_id;
        r.cell = apps[app_of[i]];
        r.seed = configs[i].seed;
        if (plan.has_value()) r.fault_plan = plan->name;
        r.verdict = res.outcome.loss_trend ? "common bottleneck detected"
                                           : "no common bottleneck";
        std::vector<obs::ProfileSpan> spans;
        const char* phase_names[] = {"sim_original", "sim_inverted"};
        const Time durations[] = {res.outcome.original_duration,
                                  res.outcome.inverted_duration};
        for (std::int64_t p = 0; p < 2; ++p) {
          r.add_stage(phase_names[p], 0, durations[p]);
          spans.push_back({p, phase_names[p], 0, durations[p]});
          spans.push_back({p, "replay_window", 0,
                           std::min(configs[i].replay_duration,
                                    durations[p])});
        }
        r.profile = obs::profile_from_spans(std::move(spans));
        r.values["wehe_detected"] = res.outcome.wehe_detected ? 1.0 : 0.0;
        r.values["loss_trend"] = res.outcome.loss_trend ? 1.0 : 0.0;
        r.values["tomo_no_params"] =
            res.outcome.tomo_no_params ? 1.0 : 0.0;
        r.values["retx_rate"] = res.outcome.retx_rate;
        r.values["queue_delay_ms"] = res.outcome.queue_delay_ms;
        r.values["tput1_mbps"] = res.outcome.tput1_mbps;
        for (const auto& [kind, count] : res.outcome.injection.by_kind()) {
          r.injection[kind] = count;
        }
        res.metrics = local.metrics();
        if (outer != nullptr) outer->absorb(std::move(local), run_id);
        return res;
      });

  std::vector<bench::FpStats> stats(apps.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (const auto* entry = obs_run.cached(run_ids[i])) {
      const obs::JsonValue doc = obs_run.absorb_cached(*entry);
      obs_run.record_injection_json(doc);
      // FP tallies come from the journaled report's scalar values.
      const obs::JsonValue* values = doc.find("values");
      const obs::JsonValue* lt =
          values != nullptr ? values->find("loss_trend") : nullptr;
      bench::DetectorOutcome cached_outcome;
      cached_outcome.loss_trend = lt != nullptr && lt->num_or(0.0) != 0.0;
      stats[app_of[i]].add(cached_outcome);
      continue;
    }
    stats[app_of[i]].add(results[i].outcome);
    obs_run.record_injection(results[i].outcome.injection);
    obs_run.add_run(results[i].report, &results[i].metrics);
  }

  std::printf("%-9s | %-6s | %-8s | %s\n", "app", "runs", "FP rate",
              "(experiments with WeHe-confirmed differentiation)");
  std::printf("----------+--------+----------+----\n");
  for (std::size_t a = 0; a < apps.size(); ++a) {
    std::printf("%-9s | %6d | %7.2f%% |\n", apps[a].c_str(),
                stats[a].experiments, stats[a].fp_rate());
    obs_run.report().values[apps[a] + ".fp_rate"] = stats[a].fp_rate();
    obs_run.report().values[apps[a] + ".experiments"] = stats[a].experiments;
  }
  obs_run.report().verdict = "completed";
  std::printf("\npaper: TCP 1.13%%, Skype 2.5%%, WhatsApp 1.67%%, "
              "MSTeams 3.75%%, Zoom 3.27%%, Webex 2.5%% (target 5%%)\n");
  return 0;
}
