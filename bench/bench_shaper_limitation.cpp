// §3.2: WeHeY "can only localize traffic differentiation that ... causes
// packet loss. [It] cannot localize ... deep shapers that avoid packet
// loss."
//
// The token bucket's queue depth turns it from a policer into a shaper:
// sweeping the queue from shallow (drops) to deep (delays) shows WeHe's
// detection surviving throughout while loss-trend localization falls off
// exactly when the losses disappear — the limitation, reproduced.
#include <cstdio>

#include "bench_util.hpp"
#include "core/loss_correlation.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main() {
  bench::print_header("§3.2", "policer vs shaper: the packet-loss assumption");
  bench::ObservedSweep obs_run("bench_shaper_limitation");
  const auto scale = run_scale();
  const std::size_t runs = scale.full ? 8 : 3;

  std::printf("  %-22s | %-6s | %-10s | %-9s | %s\n",
              "queue (x burst)", "WeHe", "loss-trend", "retx", "queue delay");
  std::printf("  -----------------------+--------+------------+-----------+----------\n");
  for (double queue_factor : {0.25, 1.0, 4.0, 16.0, 64.0}) {
    int wehe = 0, detected = 0;
    double retx_sum = 0, delay_sum = 0;
    for (std::size_t i = 0; i < runs; ++i) {
      auto cfg = default_scenario("Netflix", 1400 + i);
      cfg.queue_burst_factor = queue_factor;
      const auto sim = run_simultaneous_experiment(cfg);
      wehe += sim.differentiation_confirmed;
      retx_sum += sim.original.p1.retx_rate;
      delay_sum += sim.original.p1.avg_queuing_delay_ms;
      if (!sim.differentiation_confirmed) continue;
      detected += core::loss_trend_correlation(sim.original.p1.meas,
                                               sim.original.p2.meas,
                                               milliseconds(cfg.rtt1_ms))
                      .common_bottleneck;
    }
    const char* kind = queue_factor <= 1.0   ? "policer"
                       : queue_factor <= 4.0 ? "shallow shaper"
                                             : "deep shaper";
    std::printf("  %6.2f (%-14s) | %2d/%2zu | %7d/%-2d | %8.3f%% | %6.1f ms\n",
                queue_factor, kind, wehe, runs, detected, wehe,
                100.0 * retx_sum / static_cast<double>(runs),
                delay_sum / static_cast<double>(runs));
  }
  std::printf("\nexpected shape: WeHe detects at every depth (throughput is "
              "throttled regardless); loss-trend localization works for "
              "policers and shallow shapers and fades as the deep shaper "
              "replaces loss with delay — the §3.2 limitation.\n");
  obs_run.report().verdict = "completed";
  return 0;
}
