// Robustness bench: verdict stability of the WeHeY session pipeline under
// every shipped fault plan.
//
// For each plan the same scenario is run under `runs` different fault
// seeds (the *network* seed is fixed, so a clean run always yields the
// same outcome — the spread below is purely fault-induced). Reported per
// plan:
//   * the outcome histogram across seeds,
//   * stability   — fraction of seeds agreeing with the modal outcome,
//   * match_clean — fraction of seeds reproducing the fault-free outcome,
//   * mean retry / fallback counters.
//
// Results land in BENCH_robustness.json (override: WEHEY_BENCH_JSON).
// Quick mode runs 5 seeds per plan; WEHEY_FULL=1 runs 20
// (WEHEY_RUNS_PER_CONFIG overrides either).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "experiments/params.hpp"
#include "faults/plan.hpp"
#include "replay/session.hpp"

namespace wehey {
namespace {

replay::SessionConfig bench_config() {
  replay::SessionConfig cfg;
  cfg.scenario = experiments::default_scenario("Netflix", 2);
  cfg.scenario.replay_duration = seconds(30);
  cfg.t_diff_history = {0.06, -0.09, 0.12, -0.04, 0.08, -0.11,
                        0.05, -0.07, 0.10, -0.03, 0.09, -0.06};
  return cfg;
}

replay::SessionResult run_once(const faults::FaultPlan& plan) {
  auto cfg = bench_config();
  cfg.fault_plan = plan;
  topology::TopologyDatabase db;
  replay::seed_topology_database(cfg.scenario, db);
  return replay::run_session(cfg, db);
}

struct PlanSummary {
  std::string name;
  int runs = 0;
  std::map<std::string, int> outcomes;  ///< outcome name -> count
  std::string modal;
  double stability = 0.0;
  double match_clean = 0.0;
  double mean_replay_retries = 0.0;
  double mean_control_retries = 0.0;
  double mean_pair_fallbacks = 0.0;
  faults::InjectionStats injection;  ///< summed over the plan's seeds
};

}  // namespace
}  // namespace wehey

int main() {
  using namespace wehey;
  bench::ObservedSweep obs_run("bench_robustness");

  int runs = std::getenv("WEHEY_FULL") != nullptr &&
                     std::string(std::getenv("WEHEY_FULL")) != "0"
                 ? 20
                 : 5;
  if (const char* env = std::getenv("WEHEY_RUNS_PER_CONFIG")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) runs = parsed;
  }

  std::printf("robustness bench: %d fault seeds per plan\n\n", runs);

  const auto clean = run_once(faults::FaultPlan{});
  const std::string clean_outcome = replay::to_string(clean.outcome);
  std::printf("fault-free outcome: %s\n\n", clean_outcome.c_str());

  std::printf("%-18s %-26s %9s %11s %8s %8s %8s\n", "plan", "modal outcome",
              "stability", "match-clean", "retries", "ctrl-rtx", "pair-fb");

  std::vector<PlanSummary> summaries;
  for (const auto& name : faults::shipped_plan_names()) {
    PlanSummary sum;
    sum.name = name;
    sum.runs = runs;
    int matched = 0;
    for (int i = 0; i < runs; ++i) {
      const auto plan =
          faults::shipped_plan(name, static_cast<std::uint64_t>(i) + 1);
      const auto result = run_once(plan);
      const std::string outcome = replay::to_string(result.outcome);
      ++sum.outcomes[outcome];
      if (outcome == clean_outcome) ++matched;
      sum.mean_replay_retries += result.replay_retries;
      sum.mean_control_retries += result.control_retries;
      sum.mean_pair_fallbacks += result.pair_fallbacks;
      sum.injection += result.injection;
      obs_run.record_injection(result.injection);
    }
    int modal_count = 0;
    for (const auto& [outcome, count] : sum.outcomes) {
      if (count > modal_count) {
        modal_count = count;
        sum.modal = outcome;
      }
    }
    sum.stability = static_cast<double>(modal_count) / runs;
    sum.match_clean = static_cast<double>(matched) / runs;
    sum.mean_replay_retries /= runs;
    sum.mean_control_retries /= runs;
    sum.mean_pair_fallbacks /= runs;
    summaries.push_back(sum);
    std::printf("%-18s %-26s %8.0f%% %10.0f%% %8.2f %8.2f %8.2f\n",
                sum.name.c_str(), sum.modal.c_str(), 100.0 * sum.stability,
                100.0 * sum.match_clean, sum.mean_replay_retries,
                sum.mean_control_retries, sum.mean_pair_fallbacks);
    // Per-fault-kind tallies, so a plan's headline numbers can be traced
    // back to what the injector actually did.
    std::printf("  %-16s injected:", "");
    if (sum.injection.total() == 0) {
      std::printf(" none");
    } else {
      for (const auto& [kind, count] : sum.injection.by_kind()) {
        if (count > 0) std::printf(" %s=%d", kind, count);
      }
    }
    std::printf("\n");
    obs_run.report().values[sum.name + ".stability"] = sum.stability;
    obs_run.report().values[sum.name + ".match_clean"] = sum.match_clean;
  }
  obs_run.report().verdict = "completed";

  const char* path_env = std::getenv("WEHEY_BENCH_JSON");
  const std::string path =
      path_env != nullptr && path_env[0] != 0 ? path_env
                                              : "BENCH_robustness.json";
  std::ofstream json(path);
  if (json) {
    json << "{\n";
    json << "  \"runs_per_plan\": " << runs << ",\n";
    json << "  \"clean_outcome\": \"" << clean_outcome << "\",\n";
    json << "  \"plans\": [\n";
    for (std::size_t i = 0; i < summaries.size(); ++i) {
      const auto& s = summaries[i];
      json << "    {\"name\": \"" << s.name << "\", \"runs\": " << s.runs
           << ", \"modal_outcome\": \"" << s.modal << "\""
           << ", \"stability\": " << s.stability
           << ", \"match_clean\": " << s.match_clean
           << ", \"mean_replay_retries\": " << s.mean_replay_retries
           << ", \"mean_control_retries\": " << s.mean_control_retries
           << ", \"mean_pair_fallbacks\": " << s.mean_pair_fallbacks
           << ", \"outcomes\": {";
      bool first = true;
      for (const auto& [outcome, count] : s.outcomes) {
        if (!first) json << ", ";
        first = false;
        json << "\"" << outcome << "\": " << count;
      }
      json << "}, \"injection\": {\"total\": " << s.injection.total();
      for (const auto& [kind, count] : s.injection.by_kind()) {
        json << ", \"" << kind << "\": " << count;
      }
      json << "}}" << (i + 1 < summaries.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::printf("\ncould not write %s\n", path.c_str());
  }
  return 0;
}
