// §7: "middleboxes such as transparent TCP proxies may hide end-to-end
// packet loss from the server. For such cases, WeHe already uses
// client-side application-layer throughput samples."
//
// One path, policed downstream, measured with and without a transparent
// split-TCP proxy in front of the policer: the server-side
// retransmission-based loss estimate goes dark behind the proxy, while
// the client-side throughput signal survives.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "netsim/link.hpp"
#include "netsim/queue.hpp"
#include "netsim/simulator.hpp"
#include "transport/proxy.hpp"

using namespace wehey;
using namespace wehey::netsim;
using namespace wehey::transport;

namespace {

struct RunResult {
  double server_loss = 0;  ///< retx-based estimate at the origin
  double middle_loss = 0;  ///< at the proxy (if any)
  double client_mbps = 0;
};

RunResult run(bool with_proxy, Rate policer) {
  Simulator sim;
  PacketIdSource ids;
  TcpConfig cfg;
  Demux at_client, at_proxy;
  auto make_policed_link = [&](PacketSink* to) {
    return std::make_unique<Link>(
        sim, mbps(50), milliseconds(10),
        std::make_unique<RateLimiterDisc>(
            std::make_unique<FifoDisc>(0),
            std::make_unique<TbfDisc>(
                policer,
                static_cast<std::int64_t>(bytes_in(policer, milliseconds(40))),
                static_cast<std::int64_t>(
                    bytes_in(policer, milliseconds(20))))),
        to);
  };

  RunResult out;
  if (!with_proxy) {
    auto link = make_policed_link(&at_client);
    Pipe ack(sim, milliseconds(10));
    TcpSender origin(sim, ids, cfg, 1, kDscpDifferentiated, link.get());
    TcpReceiver client(sim, ids, cfg, 1, &ack);
    ack.set_next(&origin);
    at_client.add_route(1, &client);
    origin.supply(8'000'000);
    sim.run(seconds(20));
    out.server_loss = origin.measurement().loss_rate();
    out.client_mbps =
        client.received_bytes() * 8.0 / to_seconds(sim.now()) / 1e6;
    return out;
  }

  auto downstream = make_policed_link(&at_client);
  auto upstream = std::make_unique<Link>(sim, mbps(50), milliseconds(10),
                                         std::make_unique<FifoDisc>(0),
                                         &at_proxy);
  Pipe ack_origin(sim, milliseconds(10));
  Pipe ack_proxy(sim, milliseconds(10));
  TcpSender origin(sim, ids, cfg, 1, kDscpDifferentiated, upstream.get());
  SplitTcpProxy proxy(sim, ids, cfg, 1, 2, kDscpDifferentiated, &ack_origin,
                      downstream.get());
  TcpReceiver client(sim, ids, cfg, 2, &ack_proxy);
  ack_origin.set_next(&origin);
  ack_proxy.set_next(&proxy.downstream_ack_in());
  at_proxy.add_route(1, &proxy.upstream_in());
  at_client.add_route(2, &client);
  origin.supply(8'000'000);
  sim.run(seconds(20));
  out.server_loss = origin.measurement().loss_rate();
  out.middle_loss = proxy.downstream_sender().measurement().loss_rate();
  out.client_mbps =
      client.received_bytes() * 8.0 / to_seconds(sim.now()) / 1e6;
  return out;
}

}  // namespace

int main() {
  bench::print_header("§7 (proxy)", "transparent proxies hide server-side loss");
  bench::ObservedSweep obs_run("bench_proxy_blindspot");
  std::printf("  %-28s | %-11s | %-11s | %s\n", "path", "server loss",
              "proxy loss", "client throughput");
  std::printf("  -----------------------------+-------------+-------------+------\n");
  for (const bool proxied : {false, true}) {
    const auto throttled = run(proxied, mbps(2));
    std::printf("  %-28s | %10.3f%% | %10.3f%% | %.2f Mbps\n",
                proxied ? "policer behind split proxy" : "direct policer",
                100 * throttled.server_loss, 100 * throttled.middle_loss,
                throttled.client_mbps);
  }
  std::printf("\nexpected: behind the proxy, the server's retransmission-"
              "based estimate reads ~0 while the proxy bears the loss; the "
              "client-side throughput (WeHe's detection signal) shows the "
              "throttling either way.\n");
  obs_run.report().verdict = "completed";
  return 0;
}
