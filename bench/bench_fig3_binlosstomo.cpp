// Figure 3: the parameter-sensitivity pathology of binary loss
// tomography. A rate-limiter on the common link introduces ~4% average
// loss; we show (a) the two paths' end-to-end loss rates over time
// (sigma = 0.6 s) and (b) the inferred link performances x_c and x_1 as a
// function of the loss threshold tau.
//
// Paper shape: x_1 should ideally be a flat 100% and x_c monotone
// increasing; instead the curves approach and cross near tau = the true
// average loss rate.
#include <cstdio>

#include "bench_util.hpp"
#include "core/loss_series.hpp"
#include "core/tomography.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main() {
  bench::print_header("Figure 3", "BinLossTomo threshold sensitivity");
  bench::ObservedSweep obs_run("bench_fig3_binlosstomo");

  auto cfg = default_scenario("Netflix", 77);
  cfg.replay_duration = seconds(30);
  cfg.input_rate_factor = 1.3;  // mild throttling: a few % average loss
  const auto sim = run_simultaneous_experiment(cfg);
  const auto& m1 = sim.original.p1.meas;
  const auto& m2 = sim.original.p2.meas;

  std::printf("(a) per-path loss rate over time (sigma = 0.6 s)\n");
  core::SeriesOptions opt;
  opt.require_some_loss = false;
  const auto series =
      core::make_loss_rate_series(m1, m2, milliseconds(600), opt);
  std::printf("  t(s)   p1      p2\n");
  for (std::size_t t = 0; t < series.path1.size(); ++t) {
    std::printf("  %4.1f  %.4f  %.4f\n", 0.6 * static_cast<double>(t),
                series.path1[t], series.path2[t]);
  }
  std::printf("  average loss: p1 %.4f, p2 %.4f\n\n", m1.loss_rate(),
              m2.loss_rate());

  std::printf("(b) inferred link performance vs loss threshold tau "
              "(sigma = 0.6 s)\n");
  std::printf("  %-7s | %-6s | %-6s | %-6s\n", "tau", "x_c", "x_1", "x_2");
  const double max_tau = 2.0 * std::max(m1.loss_rate(), m2.loss_rate());
  for (int i = 1; i <= 14; ++i) {
    const double tau = max_tau * i / 14.0;
    const auto perf = core::bin_loss_tomo(m1, m2, milliseconds(600), tau);
    if (!perf.valid) {
      std::printf("  %.5f |   (unsolvable)\n", tau);
      continue;
    }
    std::printf("  %.5f | %.4f | %.4f | %.4f%s\n", tau, perf.x_c, perf.x_1,
                perf.x_2,
                perf.x_1 <= perf.x_c ? "   <- x_1 dragged to/below x_c" : "");
  }
  std::printf("\npaper: the dark (x_c) and light (x_1) curves converge and "
              "cross as tau approaches the true loss rate (~0.04 there)\n");
  obs_run.report().verdict = "completed";
  return 0;
}
