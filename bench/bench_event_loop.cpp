// Performance benchmark for this repo's two execution hot paths:
//
//  (1) the simulator event loop — events/sec through the EventHeap +
//      InplaceAction scheduler, compared at runtime against a baseline
//      reimplementation of the previous design (std::priority_queue of
//      std::function events with a const_cast move-out), for both small
//      captures and Packet-sized captures (the dominant real workload);
//  (2) the parallel trial engine — wall-clock speedup of a multi-config
//      scenario grid under 1/2/N threads via parallel::run_trials.
//
// Results are printed and appended-as-overwrite to BENCH_parallel.json
// (override the path with WEHEY_BENCH_JSON) so the perf trajectory is
// tracked across PRs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include <thread>

#include "bench_util.hpp"
#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"
#include "obs/runtime.hpp"
#include "parallel/trials.hpp"

using namespace wehey;
using namespace wehey::experiments;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ------------------------------------------------------------------------
// Baseline: the pre-optimization simulator, verbatim in design —
// std::function actions in a std::priority_queue, const_cast move-out.
class LegacySimulator {
 public:
  using Action = std::function<void()>;

  Time now() const { return now_; }

  void schedule(Time delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }
  void schedule_at(Time at, Action action) {
    queue_.push(Event{at, next_seq_++, std::move(action)});
  }

  void run(Time until = -1) {
    while (!queue_.empty()) {
      if (until >= 0 && queue_.top().at > until) break;
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.at;
      ev.action();
    }
    if (until >= 0 && now_ < until) now_ = until;
  }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Shared per-lane bookkeeping; lives in a vector that outlives the run, so
/// events only ever carry a pointer to it (plus their payload).
template <typename Sim>
struct LaneState {
  Sim* sim = nullptr;
  std::size_t* fired = nullptr;
  std::size_t total = 0;
  std::uint64_t id = 0;
  std::uint64_t step = 0;
};

/// An event whose capture is one pointer — matches the [this] timer and ACK
/// closures in the simulator. Inline for both schedulers (it fits even
/// std::function's 16-byte buffer), so this isolates queue mechanics.
template <typename Sim>
struct SmallEvent {
  LaneState<Sim>* lane;
  void operator()() {
    auto& st = *lane;
    ++*st.fired;
    if (*st.fired >= st.total) return;
    ++st.step;
    const Time delay = static_cast<Time>(1 + ((st.id + st.step) & 7));
    // Each engine drives the chain through its native API: the slot-pooled
    // scheduler re-arms the executing event in place, the std::function
    // baseline must construct a fresh action per hop.
    if constexpr (requires(Sim& s, Time d) { s.reschedule_current(d); }) {
      st.sim->reschedule_current(delay);
    } else {
      st.sim->schedule(delay, *this);
    }
  }
};

/// An event carrying a full Packet by value — matches the Link transmit and
/// propagation closures that dominate real simulations. Spills std::function
/// to the heap; stays inline in an InplaceAction.
template <typename Sim>
struct PacketEvent {
  LaneState<Sim>* lane;
  netsim::Packet p;
  void operator()() {
    auto& st = *lane;
    ++*st.fired;
    if (*st.fired >= st.total) return;
    p.seq += 1;
    const Time delay = 1 + static_cast<Time>(p.id & 7);
    if constexpr (requires(Sim& s, Time d) { s.reschedule_current(d); }) {
      st.sim->reschedule_current(delay);
    } else {
      st.sim->schedule(delay, *this);
    }
  }
};

/// Self-rescheduling event chains with `lanes` concurrent lanes, `total`
/// events overall.
template <typename Sim>
double events_per_sec(std::size_t lanes, std::size_t total, bool heavy) {
  Sim sim;
  std::size_t fired = 0;
  std::vector<LaneState<Sim>> states(lanes);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    states[lane] = {&sim, &fired, total, lane, 0};
    if (heavy) {
      netsim::Packet pkt;
      pkt.id = lane;
      pkt.size = 1500;
      sim.schedule(static_cast<Time>(1 + (lane & 7)),
                   PacketEvent<Sim>{&states[lane], pkt});
    } else {
      sim.schedule(static_cast<Time>(1 + (lane & 7)),
                   SmallEvent<Sim>{&states[lane]});
    }
  }
  sim.run();
  const double dt = seconds_since(t0);
  return static_cast<double>(fired) / dt;
}

struct GridTiming {
  unsigned threads;
  double seconds;
  double speedup;
  // Engine-telemetry snapshot of the row (obs/runtime.hpp), taken right
  // after the row's run_trials sweep.
  double parallel_efficiency;
  double worker_imbalance;
  double wait_fraction;
  double tasks;
};

/// The small-capture loop with an explicit recorder binding: nullptr
/// measures the hooks-compiled-but-idle path (the default dispatch loop),
/// a metrics-on recorder measures the observed dispatch loop.
double events_per_sec_bound(std::size_t lanes, std::size_t total,
                            obs::Recorder* rec) {
  obs::ScopedRecorder bind(rec);
  return events_per_sec<netsim::Simulator>(lanes, total, false);
}

}  // namespace

int main() {
  bench::print_header("Event loop", "events/sec and parallel grid speedup");
  bench::ObservedSweep obs_run("bench_event_loop");

  // (1) Event-loop microbenchmark. The configurations are measured
  // round-robin across several reps and the best rep of each is kept:
  // interleaving means slow phases of a shared/throttled host hit every
  // configuration alike instead of biasing whichever ran last.
  const std::size_t kLanes = 64;
  const std::size_t kEvents = 400'000;
  const int kReps = 7;
  double legacy_small = 0, new_small = 0, legacy_heavy = 0, new_heavy = 0;
  double obs_idle = 0, obs_active = 0;
  std::vector<double> idle_ratios;
  std::vector<double> runtime_ratios;
  const bool runtime_was_enabled = obs::runtime::enabled();
  {
    // The eps measurements must not inherit the run-level recorder: the
    // idle/active split below binds recorders explicitly.
    obs::ScopedRecorder quiesce(nullptr);
    for (int rep = 0; rep < kReps; ++rep) {
      legacy_small = std::max(legacy_small, events_per_sec<LegacySimulator>(
                                                kLanes, kEvents, false));
      // Observability guard: the hooks-idle loop must track the plain loop
      // (<2% apart). The two runs are paired back-to-back within each rep
      // and the gate uses the median of the per-rep ratios, so shared-host
      // noise that hits both alike cancels out of the overhead number.
      const double plain =
          events_per_sec<netsim::Simulator>(kLanes, kEvents, false);
      const double idle = events_per_sec_bound(kLanes, kEvents, nullptr);
      new_small = std::max(new_small, plain);
      obs_idle = std::max(obs_idle, idle);
      idle_ratios.push_back(idle / plain);
      // Runtime-telemetry guard, same pairing scheme: the engine profiler
      // stays off the event dispatch hot path (its only netsim hook is
      // slot-pool growth), so enabling it must not move events/sec either.
      obs::runtime::set_enabled(true);
      const double rt_on =
          events_per_sec<netsim::Simulator>(kLanes, kEvents, false);
      obs::runtime::set_enabled(runtime_was_enabled);
      runtime_ratios.push_back(rt_on / plain);
      legacy_heavy = std::max(legacy_heavy, events_per_sec<LegacySimulator>(
                                                kLanes, kEvents, true));
      new_heavy = std::max(new_heavy, events_per_sec<netsim::Simulator>(
                                          kLanes, kEvents, true));
      // The fully observed loop is reported too, so the active metric cost
      // stays visible across PRs.
      obs::Recorder rec(/*metrics_on=*/true, /*trace_on=*/false);
      obs_active =
          std::max(obs_active, events_per_sec_bound(kLanes, kEvents, &rec));
    }
  }
  std::nth_element(idle_ratios.begin(),
                   idle_ratios.begin() + idle_ratios.size() / 2,
                   idle_ratios.end());
  const double obs_idle_overhead =
      1.0 - idle_ratios[idle_ratios.size() / 2];
  std::nth_element(runtime_ratios.begin(),
                   runtime_ratios.begin() + runtime_ratios.size() / 2,
                   runtime_ratios.end());
  const double runtime_idle_overhead =
      1.0 - runtime_ratios[runtime_ratios.size() / 2];

  std::printf("event loop (%zu events, %zu lanes):\n", kEvents, kLanes);
  std::printf("  %-34s | %10.2f M events/s\n", "std::function + priority_queue",
              legacy_small / 1e6);
  std::printf("  %-34s | %10.2f M events/s  (%.2fx)\n",
              "EventHeap + InplaceAction", new_small / 1e6,
              new_small / legacy_small);
  std::printf("  %-34s | %10.2f M events/s\n",
              "legacy, Packet-sized captures", legacy_heavy / 1e6);
  std::printf("  %-34s | %10.2f M events/s  (%.2fx)\n",
              "new, Packet-sized captures", new_heavy / 1e6,
              new_heavy / legacy_heavy);
  std::printf("  %-34s | %10.2f M events/s  (median overhead %+.2f%%)\n",
              "new, obs hooks idle", obs_idle / 1e6,
              100.0 * obs_idle_overhead);
  std::printf("  %-34s | %10.2f M events/s  (%+.2f%% vs new)\n",
              "new, metrics recorder bound", obs_active / 1e6,
              100.0 * (obs_active / new_small - 1.0));
  std::printf("  %-34s | median overhead %+.2f%%\n",
              "new, runtime telemetry enabled", 100.0 * runtime_idle_overhead);

  // (2) Grid speedup through run_trials. A small but real scenario grid;
  // every trial is a full simultaneous experiment.
  std::vector<ScenarioConfig> configs;
  const unsigned hw = parallel::configured_threads();
  const std::size_t grid = std::max<std::size_t>(2 * hw, 8);
  for (std::size_t i = 0; i < grid; ++i) {
    auto cfg = default_scenario("Zoom", 1 + i);
    cfg.replay_duration = seconds(10);
    configs.push_back(cfg);
  }

  std::vector<GridTiming> timings;
  // Always time a 2-thread run even on single-core hosts: it cannot be
  // faster there, but it exercises the pool's threaded path under load and
  // keeps the JSON schema stable across machines.
  std::vector<unsigned> thread_counts{1, 2};
  if (hw > 2) thread_counts.push_back(hw);
  if (hw < 2) {
    std::printf("note: %u hardware thread(s) — grid speedup is bounded by "
                "the host, not the engine\n", hw);
  }
  // Detected hardware concurrency, as opposed to the WEHEY_THREADS-driven
  // `hw` above: a 2-thread row on a 1-core host is oversubscribed, and its
  // speedup measures the host, not the engine.
  const unsigned detected_hw = std::max(1u, std::thread::hardware_concurrency());
  double serial_time = 0;
  // The grid rows double as the engine-telemetry baseline for the planned
  // executor rework: profile every row and fold the derived scheduler
  // metrics into the "runtime" block below.
  obs::runtime::set_enabled(true);
  for (unsigned threads : thread_counts) {
    obs::runtime::reset();
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = parallel::run_trials(
        configs, run_simultaneous_experiment, threads);
    const double dt = seconds_since(t0);
    const auto snap = obs::runtime::snapshot();
    if (threads == 1) serial_time = dt;
    timings.push_back({threads, dt, serial_time / dt,
                       snap.parallel_efficiency, snap.worker_imbalance,
                       snap.wait_fraction, static_cast<double>(snap.tasks)});
    std::printf("grid of %zu trials, %2u thread(s): %6.2f s  (speedup "
                "%.2fx, efficiency %.2f, imbalance %.2f)%s%s\n",
                results.size(), threads, dt, serial_time / dt,
                snap.parallel_efficiency, snap.worker_imbalance,
                threads > detected_hw ? "  [oversubscribed]" : "",
                threads == 1 ? "  [baseline]" : "");
  }
  if (!runtime_was_enabled) obs::runtime::set_enabled(false);

  // (3) Persist the trajectory. Block-wise update: any other bench's
  // blocks in the file (e.g. bench_background's) are preserved.
  const std::string path = bench::bench_json_path();
  auto event_loop = bench::jobj();
  bench::jset(event_loop, "events", bench::jnum(kEvents));
  bench::jset(event_loop, "legacy_small_eps", bench::jnum(legacy_small));
  bench::jset(event_loop, "new_small_eps", bench::jnum(new_small));
  bench::jset(event_loop, "small_speedup",
              bench::jnum(new_small / legacy_small));
  bench::jset(event_loop, "legacy_packet_eps", bench::jnum(legacy_heavy));
  bench::jset(event_loop, "new_packet_eps", bench::jnum(new_heavy));
  bench::jset(event_loop, "packet_speedup",
              bench::jnum(new_heavy / legacy_heavy));
  auto observability = bench::jobj();
  bench::jset(observability, "obs_idle_eps", bench::jnum(obs_idle));
  bench::jset(observability, "obs_active_eps", bench::jnum(obs_active));
  bench::jset(observability, "obs_idle_overhead",
              bench::jnum(obs_idle_overhead));
  bench::jset(observability, "runtime_idle_overhead",
              bench::jnum(runtime_idle_overhead));
  auto grid_block = bench::jobj();
  bench::jset(grid_block, "trials",
              bench::jnum(static_cast<double>(configs.size())));
  bench::jset(grid_block, "configured_threads", bench::jnum(hw));
  bench::jset(grid_block, "hardware_threads", bench::jnum(detected_hw));
  auto jbool = [](bool b) {
    obs::JsonValue j;
    j.type = obs::JsonValue::Type::Bool;
    j.boolean = b;
    return j;
  };
  auto runs = bench::jarr();
  for (const auto& t : timings) {
    auto run = bench::jobj();
    bench::jset(run, "threads", bench::jnum(t.threads));
    bench::jset(run, "seconds", bench::jnum(t.seconds));
    bench::jset(run, "speedup", bench::jnum(t.speedup));
    bench::jset(run, "hardware_threads", bench::jnum(detected_hw));
    bench::jset(run, "oversubscribed", jbool(t.threads > detected_hw));
    runs.array.push_back(std::move(run));
  }
  bench::jset(grid_block, "runs", std::move(runs));
  // Scheduler-efficiency trajectory (engine telemetry): one row per grid
  // thread count, plus the widest row's metrics hoisted for CI min-key
  // gates. Lives in the shared "runtime" top-level block — sub-block-wise
  // update so bench_table1_wild's "table1_wild" entry survives.
  auto runtime_grid = bench::jobj();
  auto runtime_rows = bench::jarr();
  for (const auto& t : timings) {
    auto row = bench::jobj();
    bench::jset(row, "threads", bench::jnum(t.threads));
    bench::jset(row, "parallel_efficiency",
                bench::jnum(t.parallel_efficiency));
    bench::jset(row, "worker_imbalance", bench::jnum(t.worker_imbalance));
    bench::jset(row, "wait_fraction", bench::jnum(t.wait_fraction));
    bench::jset(row, "tasks", bench::jnum(t.tasks));
    bench::jset(row, "oversubscribed", jbool(t.threads > detected_hw));
    runtime_rows.array.push_back(std::move(row));
  }
  bench::jset(runtime_grid, "rows", std::move(runtime_rows));
  const auto& widest = timings.back();
  bench::jset(runtime_grid, "parallel_efficiency",
              bench::jnum(widest.parallel_efficiency));
  bench::jset(runtime_grid, "worker_imbalance",
              bench::jnum(widest.worker_imbalance));
  const bool wrote =
      bench::update_bench_block(path, "event_loop", std::move(event_loop)) &&
      bench::update_bench_block(path, "observability",
                                std::move(observability)) &&
      bench::update_bench_block(path, "grid", std::move(grid_block)) &&
      bench::update_bench_subblock(path, "runtime", "grid",
                                   std::move(runtime_grid));
  std::printf(wrote ? "\nwrote %s\n" : "\ncould not write %s\n",
              path.c_str());
  obs_run.report().verdict = "completed";
  obs_run.report().values["event_loop.events"] = static_cast<double>(kEvents);
  obs_run.report().values["grid.trials"] = static_cast<double>(configs.size());
  if (obs::report_wall_times()) {
    // Timing-derived numbers are wall-clock, so they only enter the
    // (otherwise deterministic) report when wall times are opted in.
    obs_run.report().values["obs_idle_overhead"] = obs_idle_overhead;
    obs_run.report().values["obs_active_eps"] = obs_active;
  }
  return 0;
}
