// Figure 5: are the testbed conditions realistic? Boxplots of the
// original-replay average retransmission rate and queueing delay from
// (i) our §6.2-style emulation grid and (ii) "past WeHe tests" — here,
// tests against the wild ISP models, playing the role of the public WeHe
// archive the paper mined.
//
// Paper shape: the emulation grid's IQR covers the range seen in the
// wild for retransmissions, and a significant fraction of the delays.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "experiments/wild.hpp"
#include "parallel/trials.hpp"
#include "stats/descriptive.hpp"

using namespace wehey;
using namespace wehey::experiments;

namespace {

void print_box(const char* name, const std::vector<double>& xs) {
  if (xs.empty()) {
    std::printf("  %-22s (no data)\n", name);
    return;
  }
  const auto s = stats::summarize(xs);
  std::printf("  %-22s n=%3zu  min=%7.3f q1=%7.3f med=%7.3f q3=%7.3f "
              "max=%7.3f\n",
              name, s.n, s.min, s.q1, s.median, s.q3, s.max);
}

}  // namespace

int main() {
  bench::print_header("Figure 5", "original-replay retx rate & queueing delay");
  bench::ObservedSweep obs_run("bench_fig5_replay_props");
  const auto scale = run_scale();

  // (i) Our emulation grid (TCP trace, limiter on the common link),
  // swept in parallel and folded back in config order.
  std::vector<ScenarioConfig> configs;
  std::uint64_t seed = 3;
  for (double factor : scale.input_rate_factors) {
    for (double queue : scale.queue_burst_factors) {
      for (std::size_t run = 0; run < scale.runs_per_config; ++run) {
        auto cfg = default_scenario("Netflix", seed++);
        cfg.input_rate_factor = factor;
        cfg.queue_burst_factor = queue;
        configs.push_back(cfg);
      }
    }
  }
  std::vector<double> emu_retx, emu_delay;
  for (const auto& out :
       parallel::run_trials(configs, bench::run_detectors)) {
    if (!out.wehe_detected) continue;
    emu_retx.push_back(out.retx_rate);
    emu_delay.push_back(out.queue_delay_ms);
  }

  // (ii) "Past WeHe tests": single original replays against the wild ISP
  // models (differentiation detected in the wild).
  std::vector<WildConfig> wild_cfgs;
  for (const auto& isp : default_isp_models()) {
    for (std::uint64_t s = 0; s < (scale.full ? 10u : 4u); ++s) {
      WildConfig cfg;
      cfg.isp = isp;
      cfg.seed = 100 + s * 7;
      wild_cfgs.push_back(cfg);
    }
  }
  const auto wild_reps =
      parallel::parallel_map(wild_cfgs.size(), [&](std::size_t i) {
        return run_wild_phase(wild_cfgs[i], Phase::SingleOriginal);
      });
  std::vector<double> wild_retx, wild_delay;
  for (const auto& rep : wild_reps) {
    wild_retx.push_back(rep.p1.retx_rate);
    wild_delay.push_back(rep.p1.avg_queuing_delay_ms);
  }

  std::printf("(a) average retransmission rate\n");
  print_box("our experiments", emu_retx);
  print_box("past WeHe tests", wild_retx);
  std::printf("\n(b) average queueing delay (ms)\n");
  print_box("our experiments", emu_delay);
  print_box("past WeHe tests", wild_delay);
  std::printf("\npaper: the experiments' IQR covers the full wild "
              "retransmission range and a significant part of the delays\n");
  obs_run.report().verdict = "completed";
  return 0;
}
