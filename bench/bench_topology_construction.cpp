// §3.3 topology-construction statistics: on a month's worth of (synthetic)
// M-Lab traceroutes, what fraction of clients have at least one complete
// traceroute, and what fraction of those have at least one suitable
// topology?
//
// Paper shape: ~52% of WeHe clients with >= 1 complete traceroute; a
// suitable topology for ~74% of those (a lower bound).
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "topology/alias.hpp"
#include "topology/construction.hpp"
#include "topology/database.hpp"
#include "topology/synthetic.hpp"

using namespace wehey;
using namespace wehey::topology;

int main() {
  bench::print_header("§3.3", "topology-construction coverage");
  bench::ObservedSweep obs_run("bench_topology_construction");
  const auto scale = experiments::run_scale();

  Rng rng(2023);
  SyntheticConfig cfg;
  cfg.num_clients = scale.full ? 5000 : 1000;
  const auto ds = generate_mlab_dataset(cfg, rng);

  TopologyConstructor tc;
  const auto entries = tc.construct(ds.records);
  TopologyDatabase db;
  db.ingest(entries);

  std::set<std::string> with_topology;
  for (const auto& e : entries) with_topology.insert(e.dst_prefix);

  std::size_t clients = ds.truth.size();
  std::size_t complete = 0, suitable = 0, truth_suitable = 0;
  for (const auto& t : ds.truth) {
    if (t.has_complete_record) {
      ++complete;
      if (with_topology.count(ipv4_prefix24(t.ip))) ++suitable;
      if (t.has_suitable_topology) ++truth_suitable;
    }
  }

  std::printf("clients: %zu; traceroute records: %zu "
              "(discarded: %zu incomplete, %zu aliased)\n",
              clients, tc.stats().input_records,
              tc.stats().discarded_incomplete, tc.stats().discarded_aliased);
  std::printf(">= 1 complete traceroute: %zu (%.1f%% of clients)\n",
              complete, 100.0 * complete / clients);
  std::printf(">= 1 suitable topology (TC): %zu (%.1f%% of those)\n",
              suitable, complete ? 100.0 * suitable / complete : 0.0);
  std::printf(">= 1 suitable topology (ground truth): %zu (%.1f%%)\n",
              truth_suitable,
              complete ? 100.0 * truth_suitable / complete : 0.0);
  std::printf("topology DB: %zu prefixes, %zu server pairs\n",
              db.prefix_count(), db.pair_count());

  // The §3.3 improvement the paper leaves unimplemented: IP alias
  // resolution rescues records condition (b) discards.
  AliasResolver resolver;
  resolver.learn(ds.records);
  TopologyConstructor tc_resolved;
  const auto resolved_entries =
      tc_resolved.construct(resolver.resolve(ds.records));
  std::printf("\nwith alias resolution (%zu alias sets merged): "
              "%zu -> %zu discarded records, %zu -> %zu destinations with "
              "a topology\n",
              resolver.alias_set_count(), tc.stats().discarded_aliased,
              tc_resolved.stats().discarded_aliased,
              tc.stats().destinations_with_topology,
              tc_resolved.stats().destinations_with_topology);

  std::printf("\npaper: >= 1 complete traceroute for 52%% of clients; a "
              "suitable topology for 74%% of those (alias resolution left "
              "as an improvement)\n");
  obs_run.report().verdict = "completed";
  return 0;
}
