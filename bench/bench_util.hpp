// Shared helpers for the per-table/per-figure reproduction benches.
//
// Every bench binary is runnable with no arguments and prints the same
// rows/series the paper reports. Two environment variables control scale
// (see experiments/params.hpp): WEHEY_FULL=1 for the paper-scale grid,
// WEHEY_RUNS_PER_CONFIG=N to override repetitions.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.hpp"
#include "obs/inspect.hpp"
#include "obs/metrics.hpp"

#include "core/loss_correlation.hpp"
#include "core/tomography.hpp"
#include "experiments/params.hpp"
#include "experiments/scenario.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "obs/aggregate.hpp"
#include "obs/checkpoint.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/runtime.hpp"

namespace wehey::bench {

inline void print_header(const std::string& id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  const auto scale = experiments::run_scale();
  std::printf("mode: %s (runs/config=%zu, replay=%.0fs; set WEHEY_FULL=1 "
              "for the paper-scale grid)\n",
              scale.full ? "FULL" : "FAST", scale.runs_per_config,
              to_seconds(scale.replay_duration));
  std::printf("==============================================================\n");
}

/// Outcome of one FN/FP-style experiment (simultaneous phases only).
struct DetectorOutcome {
  bool wehe_detected = false;   ///< confirmation passed on both paths
  bool loss_trend = false;      ///< Alg. 1 verdict
  bool tomo_no_params = false;  ///< Alg. 4 verdict (baseline)
  double retx_rate = 0.0;       ///< p1 original-replay loss rate
  double queue_delay_ms = 0.0;  ///< p1 original-replay avg queueing delay
  double tput1_mbps = 0.0;
  /// Simulated durations of the two phases (replay + drain), for stage
  /// timings in per-trial reports.
  Time original_duration = 0;
  Time inverted_duration = 0;
  /// Summed injector tallies of the two simultaneous phases (all zero
  /// without a fault plan).
  faults::InjectionStats injection;
};

/// Run the simultaneous phases of `cfg` and evaluate both the final
/// detector and the classic-tomography baseline on the same measurements.
inline DetectorOutcome run_detectors(const experiments::ScenarioConfig& cfg) {
  DetectorOutcome out;
  const auto sim = experiments::run_simultaneous_experiment(cfg);
  out.wehe_detected = sim.differentiation_confirmed;
  out.retx_rate = sim.original.p1.retx_rate;
  out.queue_delay_ms = sim.original.p1.avg_queuing_delay_ms;
  out.tput1_mbps = sim.original.p1.avg_throughput_bps / 1e6;
  const Time rtt = milliseconds(std::max(cfg.rtt1_ms, cfg.rtt2_ms));
  out.loss_trend = core::loss_trend_correlation(sim.original.p1.meas,
                                                sim.original.p2.meas, rtt)
                       .common_bottleneck;
  out.tomo_no_params =
      core::bin_loss_tomo_no_params(sim.original.p1.meas,
                                    sim.original.p2.meas, rtt)
          .common_bottleneck;
  out.original_duration = sim.original.sim_duration;
  out.inverted_duration = sim.inverted.sim_duration;
  out.injection = sim.original.injection;
  out.injection += sim.inverted.injection;
  return out;
}

struct FnStats {
  int experiments = 0;       ///< experiments where WeHe detected
  int skipped = 0;           ///< WeHe did not detect (excluded, as §6.2)
  int fn_loss_trend = 0;
  int fn_tomo = 0;

  void add(const DetectorOutcome& o) {
    if (!o.wehe_detected) {
      ++skipped;
      return;
    }
    ++experiments;
    fn_loss_trend += !o.loss_trend;
    fn_tomo += !o.tomo_no_params;
  }
  double fn_rate() const {
    return experiments > 0 ? 100.0 * fn_loss_trend / experiments : 0.0;
  }
  double fn_rate_tomo() const {
    return experiments > 0 ? 100.0 * fn_tomo / experiments : 0.0;
  }
};

struct FpStats {
  int experiments = 0;
  int fp_loss_trend = 0;

  void add(const DetectorOutcome& o) {
    ++experiments;
    fp_loss_trend += o.loss_trend;
  }
  double fp_rate() const {
    return experiments > 0 ? 100.0 * fp_loss_trend / experiments : 0.0;
  }
};

/// The shipped fault plan named by WEHEY_FAULT_PLAN (seeded from
/// WEHEY_CHAOS_SEED, default 1), or nullopt when the variable is unset.
/// Lets any bench grid run under fault injection without a rebuild.
inline std::optional<faults::FaultPlan> fault_plan_from_env() {
  const char* name = std::getenv("WEHEY_FAULT_PLAN");
  if (name == nullptr || name[0] == 0) return std::nullopt;
  std::uint64_t seed = 1;
  if (const char* s = std::getenv("WEHEY_CHAOS_SEED")) {
    const long long parsed = std::atoll(s);
    if (parsed > 0) seed = static_cast<std::uint64_t>(parsed);
  }
  return faults::shipped_plan(name, seed);
}

/// The sweep-level observability harness every bench binary opens first
/// thing: reads the obs environment (WEHEY_TRACE / WEHEY_METRICS /
/// WEHEY_REPORT / WEHEY_REPORT_DIR / WEHEY_REPORT_MODE), binds a
/// run-wide obs::Recorder to the main thread for the binary's lifetime,
/// and on destruction writes the trace artifacts and the report(s). With
/// none of the variables set this is a few getenv calls and nothing
/// else.
///
/// Grid benches additionally feed every run of the sweep through
/// add_run(): the runs fold into a SweepAggregator, and
/// WEHEY_REPORT_MODE picks what lands on disk —
///   per-run (default): the binary's own RunReport, plus one file per
///                      absorbed run under WEHEY_REPORT_DIR;
///   sweep:             only the aggregated wehey.sweep_report.v1;
///   both:              everything.
class ObservedSweep {
 public:
  explicit ObservedSweep(std::string run_name)
      : obs_(obs::RunObservation::from_env()),
        bind_(obs_.recorder.get()),
        mode_(obs::report_mode_from_env()),
        aggregator_(run_name),
        meter_(run_name),
        wall_start_(std::chrono::steady_clock::now()) {
    report_.run = std::move(run_name);
    // Engine runtime telemetry (WEHEY_RUNTIME_REPORT): wall-clock profiler
    // sidecar, deliberately separate from the deterministic report files.
    obs::runtime::enable_from_env();
    // Checkpointing (WEHEY_CHECKPOINT=<journal path>): an existing
    // journal means this sweep is a resume — completed runs are served
    // from it via cached()/absorb_cached() and only the rest execute.
    const std::string ckpt = obs::checkpoint_path_from_env();
    if (!ckpt.empty()) {
      std::string error;
      if (!obs::CheckpointJournal::load(ckpt, journal_, &error)) {
        std::fprintf(stderr, "checkpoint: %s (ignoring journal)\n",
                     error.c_str());
        journal_ = obs::CheckpointJournal{};
      }
      if (!checkpoint_.open(ckpt, report_.run)) {
        std::fprintf(stderr, "checkpoint: FAILED to open %s\n",
                     ckpt.c_str());
      } else if (!journal_.empty()) {
        std::printf("checkpoint: resuming from %s (%zu completed runs)\n",
                    ckpt.c_str(), journal_.size());
      }
    }
  }
  ObservedSweep(const ObservedSweep&) = delete;
  ObservedSweep& operator=(const ObservedSweep&) = delete;

  bool enabled() const { return obs_.enabled(); }
  obs::RunReport& report() { return report_; }
  obs::Recorder* recorder() { return obs_.recorder.get(); }
  obs::ReportMode mode() const { return mode_; }
  obs::SweepAggregator& aggregator() { return aggregator_; }

  /// Announce how many runs the sweep will absorb in total, enabling the
  /// progress meter's ETA (WEHEY_PROGRESS=plain|tty).
  void expect_runs(std::size_t total) { meter_.expect(total); }

  obs::ProgressMeter& progress() { return meter_; }

  /// Fold a session's / test's injector tallies into the report.
  void record_injection(const faults::InjectionStats& stats) {
    for (const auto& [kind, count] : stats.by_kind()) {
      report_.injection[kind] += count;
    }
  }

  /// Absorb one run of the sweep. In per-run / both modes the run's own
  /// report is also written as "<WEHEY_REPORT_DIR>/<run.run>.report.json"
  /// (run names must be unique within the sweep). Call in a
  /// deterministic order — the sweep file is byte-identical across
  /// absorb orders anyway, but the per-run files overwrite by name and
  /// the checkpoint journal records this order as the run index.
  void add_run(const obs::RunReport& run,
               const obs::MetricsRegistry* metrics) {
    aggregator_.add_run(run, metrics);
    meter_.note_run(run.verdict, run.decision.has_margin,
                    run.decision.margin);
    std::string json;
    if (checkpoint_.is_open()) {
      json = run.to_json(metrics);
      obs::CheckpointEntry entry;
      entry.run = run.run;
      entry.cell = run.cell;
      entry.seed = run.seed;
      entry.index = next_run_index_;
      entry.report_json = json;
      checkpoint_.append(entry);
    }
    ++next_run_index_;
    if (mode_ == obs::ReportMode::kSweep) return;
    const char* dir = std::getenv("WEHEY_REPORT_DIR");
    if (dir == nullptr || dir[0] == 0) return;
    const std::string path =
        std::string(dir) + "/" + run.run + ".report.json";
    if (json.empty()) json = run.to_json(metrics);
    if (!obs::write_report_file(path, json)) {
      std::fprintf(stderr, "report: FAILED to write %s\n", path.c_str());
    }
  }

  /// The journaled entry of a completed run from the journal this sweep
  /// resumed from, or nullptr when the run must (re-)execute.
  const obs::CheckpointEntry* cached(const std::string& run_id) const {
    return journal_.find(run_id);
  }

  /// Re-absorb a journaled run instead of executing it. The embedded
  /// report's exact bytes go through the aggregator's offline path
  /// (bit-equal to add_run) and — in per-run / both modes — back into the
  /// per-run report file, so a resumed sweep's artifacts are
  /// byte-identical to an uninterrupted run's. Returns the parsed report
  /// document (Type::Null on a malformed entry) so callers can rebuild
  /// their own tallies from it.
  obs::JsonValue absorb_cached(const obs::CheckpointEntry& entry) {
    obs::JsonValue doc;
    std::string error;
    if (!obs::json_parse(entry.report_json, doc, &error)) {
      std::fprintf(stderr, "checkpoint: bad journaled report for %s: %s\n",
                   entry.run.c_str(), error.c_str());
      return obs::JsonValue{};
    }
    if (!aggregator_.add_run_json(doc, &error)) {
      std::fprintf(stderr, "checkpoint: cannot absorb %s: %s\n",
                   entry.run.c_str(), error.c_str());
      return obs::JsonValue{};
    }
    meter_.note_resumed();
    ++next_run_index_;
    if (mode_ != obs::ReportMode::kSweep) {
      const char* dir = std::getenv("WEHEY_REPORT_DIR");
      if (dir != nullptr && dir[0] != 0) {
        const std::string path =
            std::string(dir) + "/" + entry.run + ".report.json";
        if (!obs::write_report_file(path, entry.report_json)) {
          std::fprintf(stderr, "report: FAILED to write %s\n", path.c_str());
        }
      }
    }
    return doc;
  }

  /// record_injection for a journaled run: fold the report document's
  /// per-kind injection counts (minus the derived "total") into the
  /// binary's own report.
  void record_injection_json(const obs::JsonValue& doc) {
    const obs::JsonValue* injection = doc.find("injection");
    if (injection == nullptr ||
        injection->type != obs::JsonValue::Type::Object) {
      return;
    }
    for (const auto& [kind, count] : injection->object) {
      if (kind == "total") continue;
      report_.injection[kind] += static_cast<int>(count.num_or(0.0));
    }
  }

  std::size_t runs() const { return aggregator_.runs(); }

  ~ObservedSweep() {
    if (obs_.enabled() && !obs_.trace_path.empty()) {
      if (obs_.write_trace()) {
        std::printf("trace: %s (+ %s)\n", obs_.trace_path.c_str(),
                    obs::RunObservation::csv_path(obs_.trace_path).c_str());
      } else {
        std::fprintf(stderr, "trace: FAILED to write %s\n",
                     obs_.trace_path.c_str());
      }
    }
    const obs::MetricsRegistry* metrics =
        obs_.recorder != nullptr ? &obs_.recorder->metrics() : nullptr;
    // Profile the binary's own report if nothing filled it explicitly:
    // from the finalized timeline when tracing (every (pid, tid) pair is
    // its own track), else from the recorded stages (one track each —
    // conservative: no cross-stage nesting assumed).
    if (report_.profile.empty()) {
      if (obs_.recorder != nullptr && obs_.recorder->trace_on()) {
        report_.profile = obs::profile_from_spans(
            obs::profile_spans_from_timeline(obs_.recorder->timeline()));
      } else if (!report_.stages.empty()) {
        std::vector<obs::ProfileSpan> spans;
        for (std::size_t i = 0; i < report_.stages.size(); ++i) {
          const auto& s = report_.stages[i];
          spans.push_back({static_cast<std::int64_t>(i), s.name, s.sim_start,
                           s.sim_end, s.wall_ms});
        }
        report_.profile = obs::profile_from_spans(std::move(spans));
      }
    }
    if (obs::report_wall_times()) {
      report_.values["wall_ms_total"] =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - wall_start_)
              .count();
    }
    if (mode_ != obs::ReportMode::kSweep) {
      const std::string path = obs::report_path_from_env(report_.run);
      if (!path.empty()) {
        if (obs::write_report_file(path, report_.to_json(metrics))) {
          std::printf("report: %s\n", path.c_str());
        } else {
          std::fprintf(stderr, "report: FAILED to write %s\n", path.c_str());
        }
      }
    }
    if (mode_ != obs::ReportMode::kPerRun) {
      const std::string path = obs::sweep_path_from_env(report_.run);
      if (!path.empty()) {
        // A sweep of zero absorbed runs (a single-run binary under
        // sweep mode) aggregates its own report, so the file is never
        // an empty shell.
        if (aggregator_.runs() == 0) aggregator_.add_run(report_, metrics);
        if (obs::write_report_file(path, aggregator_.to_json())) {
          std::printf("sweep report: %s (%zu runs)\n", path.c_str(),
                      aggregator_.runs());
        } else {
          std::fprintf(stderr, "sweep report: FAILED to write %s\n",
                       path.c_str());
        }
      }
    }
    // Final wall-clock summary (always, when runs were absorbed) and the
    // runtime-telemetry sidecar. Both live outside the deterministic
    // report files: the summary goes to stderr, the sidecar to its own
    // WEHEY_RUNTIME_REPORT path.
    meter_.finish();
    obs::runtime::write_runtime_report_from_env(report_.run);
  }

 private:
  obs::RunObservation obs_;
  obs::ScopedRecorder bind_;
  obs::ReportMode mode_;
  obs::SweepAggregator aggregator_;
  obs::ProgressMeter meter_;  ///< live sweep progress (WEHEY_PROGRESS)
  obs::RunReport report_;
  obs::CheckpointJournal journal_;   ///< completed runs of a killed sweep
  obs::CheckpointWriter checkpoint_; ///< open iff WEHEY_CHECKPOINT is set
  std::uint64_t next_run_index_ = 0;
  std::chrono::steady_clock::time_point wall_start_;
};

// ------------------------------------------------------- BENCH_*.json I/O
//
// Several bench binaries persist their trajectory into one JSON file
// (default BENCH_parallel.json, override with WEHEY_BENCH_JSON), each
// owning a named top-level block. update_bench_block() re-reads the file
// and replaces only the caller's block, so bench_event_loop and
// bench_background can run in any order without clobbering each other.

/// Terse JsonValue constructors for assembling bench blocks.
inline obs::JsonValue jnum(double v) {
  obs::JsonValue j;
  j.type = obs::JsonValue::Type::Number;
  j.number = v;
  return j;
}

inline obs::JsonValue jobj() {
  obs::JsonValue j;
  j.type = obs::JsonValue::Type::Object;
  return j;
}

inline obs::JsonValue jarr() {
  obs::JsonValue j;
  j.type = obs::JsonValue::Type::Array;
  return j;
}

/// Set `key` in object `o` (replacing an existing entry of that name).
inline void jset(obs::JsonValue& o, const std::string& key,
                 obs::JsonValue v) {
  for (auto& [k, existing] : o.object) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  o.object.emplace_back(key, std::move(v));
}

/// Serialize a JsonValue with 2-space indentation. Numbers go through
/// obs::json_number, so round-trips are value-stable.
inline void json_write(const obs::JsonValue& v, std::ostream& out,
                       int indent = 0) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad1(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (v.type) {
    case obs::JsonValue::Type::Null: out << "null"; return;
    case obs::JsonValue::Type::Bool:
      out << (v.boolean ? "true" : "false");
      return;
    case obs::JsonValue::Type::Number:
      out << obs::json_number(v.number);
      return;
    case obs::JsonValue::Type::String: {
      out << '"';
      for (const char c : v.str) {
        if (c == '"' || c == '\\') {
          out << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
      }
      out << '"';
      return;
    }
    case obs::JsonValue::Type::Array: {
      if (v.array.empty()) {
        out << "[]";
        return;
      }
      out << "[";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) out << ", ";
        json_write(v.array[i], out, indent + 1);
      }
      out << "]";
      return;
    }
    case obs::JsonValue::Type::Object: {
      if (v.object.empty()) {
        out << "{}";
        return;
      }
      out << "{\n";
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        out << pad1 << '"' << v.object[i].first << "\": ";
        json_write(v.object[i].second, out, indent + 1);
        if (i + 1 < v.object.size()) out << ',';
        out << '\n';
      }
      out << pad << '}';
      return;
    }
  }
}

/// The trajectory file this process writes: WEHEY_BENCH_JSON or the
/// default BENCH_parallel.json.
inline std::string bench_json_path() {
  const char* env = std::getenv("WEHEY_BENCH_JSON");
  return env != nullptr && env[0] != 0 ? env : "BENCH_parallel.json";
}

/// Replace (or append) the top-level block `name` of the JSON object in
/// `path`, preserving every other block. An unreadable or malformed file
/// is restarted from an empty object.
inline bool update_bench_block(const std::string& path,
                               const std::string& name,
                               obs::JsonValue block) {
  obs::JsonValue doc = jobj();
  std::string text;
  if (obs::read_file(path, text)) {
    obs::JsonValue parsed;
    if (obs::json_parse(text, parsed) &&
        parsed.type == obs::JsonValue::Type::Object) {
      doc = std::move(parsed);
    }
  }
  jset(doc, name, std::move(block));
  std::ofstream out(path);
  if (!out) return false;
  json_write(doc, out);
  out << '\n';
  return out.good();
}

/// Replace (or append) `sub` inside the top-level object block `name`,
/// preserving the block's other sub-entries. Lets several binaries share
/// one top-level block (e.g. "runtime"."grid" from bench_event_loop and
/// "runtime"."table1_wild" from bench_table1_wild) without clobbering
/// each other.
inline bool update_bench_subblock(const std::string& path,
                                  const std::string& name,
                                  const std::string& sub,
                                  obs::JsonValue block) {
  obs::JsonValue doc = jobj();
  std::string text;
  if (obs::read_file(path, text)) {
    obs::JsonValue parsed;
    if (obs::json_parse(text, parsed) &&
        parsed.type == obs::JsonValue::Type::Object) {
      doc = std::move(parsed);
    }
  }
  obs::JsonValue* outer = nullptr;
  for (auto& [k, v] : doc.object) {
    if (k == name) {
      outer = &v;
      break;
    }
  }
  if (outer == nullptr) {
    doc.object.emplace_back(name, jobj());
    outer = &doc.object.back().second;
  } else if (outer->type != obs::JsonValue::Type::Object) {
    *outer = jobj();
  }
  jset(*outer, sub, std::move(block));
  std::ofstream out(path);
  if (!out) return false;
  json_write(doc, out);
  out << '\n';
  return out.good();
}

/// Open "<WEHEY_CSV_DIR>/<name>.csv" for plot-ready artifact output, or
/// null when the environment variable is unset.
inline std::unique_ptr<CsvWriter> open_csv(const std::string& name) {
  const char* dir = std::getenv("WEHEY_CSV_DIR");
  if (dir == nullptr || dir[0] == 0) return nullptr;
  auto writer =
      std::make_unique<CsvWriter>(std::string(dir) + "/" + name + ".csv");
  if (!writer->ok()) return nullptr;
  return writer;
}

}  // namespace wehey::bench
