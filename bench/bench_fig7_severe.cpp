// Figure 7 (and the §6.3 "FN under severe throttling" experiment): TCP
// false negatives as a function of the retransmission rate, obtained by
// sweeping the fraction of background traffic directed through the
// rate-limiter (25/50/75%).
//
// Paper shape: overall FN ~19%; false negatives concentrate where the
// retransmission rate exceeds ~20%.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "parallel/trials.hpp"

using namespace wehey;
using namespace wehey::experiments;

int main() {
  bench::print_header("Figure 7", "FN under severe throttling (TCP)");
  bench::ObservedSweep obs_run("bench_fig7_severe");
  const auto scale = run_scale();

  struct Point {
    double retx;
    double qdelay;
    bool detected;
  };
  std::vector<Point> points;
  bench::FnStats overall;
  int below20_fn = 0, below20_n = 0, above20_fn = 0, above20_n = 0;

  std::vector<ScenarioConfig> configs;
  std::uint64_t seed = 7;
  for (double bg_fraction : {0.25, 0.5, 0.75}) {
    for (double factor : scale.input_rate_factors) {
      for (std::size_t run = 0; run < scale.runs_per_config; ++run) {
        auto cfg = default_scenario("Netflix", seed++);
        cfg.bg_diff_fraction = bg_fraction;
        cfg.input_rate_factor = factor;
        configs.push_back(cfg);
      }
    }
  }
  // The sweep runs on the parallel engine; the scatter/stat aggregation
  // below walks the outcomes in config order, so output is identical to
  // the serial loop.
  const auto outcomes = parallel::run_trials(configs, bench::run_detectors);
  for (const auto& out : outcomes) {
    overall.add(out);
    if (!out.wehe_detected) continue;
    points.push_back({out.retx_rate, out.queue_delay_ms, out.loss_trend});
    if (out.retx_rate > 0.20) {
      ++above20_n;
      above20_fn += !out.loss_trend;
    } else {
      ++below20_n;
      below20_fn += !out.loss_trend;
    }
  }

  std::printf("scatter (retx rate, queueing delay ms, verdict):\n");
  auto csv = bench::open_csv("fig7_severe");
  if (csv) csv->header({"retx_rate", "queueing_delay_ms", "verdict"});
  for (const auto& p : points) {
    std::printf("  %.3f  %7.1f  %s\n", p.retx, p.qdelay,
                p.detected ? "TP" : "FN");
    if (csv) {
      csv->row({CsvWriter::num(p.retx), CsvWriter::num(p.qdelay),
                p.detected ? "TP" : "FN"});
    }
  }
  std::printf("\noverall FN: %.1f%% over %d detected experiments "
              "(%d skipped)\n",
              overall.fn_rate(), overall.experiments, overall.skipped);
  if (below20_n > 0) {
    std::printf("FN with retx <= 20%%: %.1f%% (%d exps)\n",
                100.0 * below20_fn / below20_n, below20_n);
  }
  if (above20_n > 0) {
    std::printf("FN with retx  > 20%%: %.1f%% (%d exps)\n",
                100.0 * above20_fn / above20_n, above20_n);
  }
  std::printf("\npaper: overall FN 19.2%%; false negatives are almost all "
              "experiments with retransmission rate above 20%%\n");
  obs_run.report().verdict = "completed";
  return 0;
}
