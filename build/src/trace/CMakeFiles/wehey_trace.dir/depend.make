# Empty dependencies file for wehey_trace.
# This may be replaced when dependencies are built.
