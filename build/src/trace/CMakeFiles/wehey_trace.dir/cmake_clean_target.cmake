file(REMOVE_RECURSE
  "libwehey_trace.a"
)
