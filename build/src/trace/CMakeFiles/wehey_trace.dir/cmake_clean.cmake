file(REMOVE_RECURSE
  "CMakeFiles/wehey_trace.dir/apps.cpp.o"
  "CMakeFiles/wehey_trace.dir/apps.cpp.o.d"
  "CMakeFiles/wehey_trace.dir/background.cpp.o"
  "CMakeFiles/wehey_trace.dir/background.cpp.o.d"
  "CMakeFiles/wehey_trace.dir/trace.cpp.o"
  "CMakeFiles/wehey_trace.dir/trace.cpp.o.d"
  "libwehey_trace.a"
  "libwehey_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wehey_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
