# Empty compiler generated dependencies file for wehey_stats.
# This may be replaced when dependencies are built.
