file(REMOVE_RECURSE
  "CMakeFiles/wehey_stats.dir/correlation.cpp.o"
  "CMakeFiles/wehey_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/wehey_stats.dir/descriptive.cpp.o"
  "CMakeFiles/wehey_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/wehey_stats.dir/distributions.cpp.o"
  "CMakeFiles/wehey_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/wehey_stats.dir/empirical.cpp.o"
  "CMakeFiles/wehey_stats.dir/empirical.cpp.o.d"
  "CMakeFiles/wehey_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/wehey_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/wehey_stats.dir/ranks.cpp.o"
  "CMakeFiles/wehey_stats.dir/ranks.cpp.o.d"
  "CMakeFiles/wehey_stats.dir/resample.cpp.o"
  "CMakeFiles/wehey_stats.dir/resample.cpp.o.d"
  "libwehey_stats.a"
  "libwehey_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wehey_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
