
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/wehey_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/wehey_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/wehey_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/wehey_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/wehey_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/wehey_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/empirical.cpp" "src/stats/CMakeFiles/wehey_stats.dir/empirical.cpp.o" "gcc" "src/stats/CMakeFiles/wehey_stats.dir/empirical.cpp.o.d"
  "/root/repo/src/stats/hypothesis.cpp" "src/stats/CMakeFiles/wehey_stats.dir/hypothesis.cpp.o" "gcc" "src/stats/CMakeFiles/wehey_stats.dir/hypothesis.cpp.o.d"
  "/root/repo/src/stats/ranks.cpp" "src/stats/CMakeFiles/wehey_stats.dir/ranks.cpp.o" "gcc" "src/stats/CMakeFiles/wehey_stats.dir/ranks.cpp.o.d"
  "/root/repo/src/stats/resample.cpp" "src/stats/CMakeFiles/wehey_stats.dir/resample.cpp.o" "gcc" "src/stats/CMakeFiles/wehey_stats.dir/resample.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wehey_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
