file(REMOVE_RECURSE
  "libwehey_stats.a"
)
