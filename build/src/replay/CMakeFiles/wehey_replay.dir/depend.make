# Empty dependencies file for wehey_replay.
# This may be replaced when dependencies are built.
