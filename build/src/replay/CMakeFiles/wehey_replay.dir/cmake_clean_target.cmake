file(REMOVE_RECURSE
  "libwehey_replay.a"
)
