file(REMOVE_RECURSE
  "CMakeFiles/wehey_replay.dir/session.cpp.o"
  "CMakeFiles/wehey_replay.dir/session.cpp.o.d"
  "libwehey_replay.a"
  "libwehey_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wehey_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
