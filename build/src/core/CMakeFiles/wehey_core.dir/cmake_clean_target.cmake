file(REMOVE_RECURSE
  "libwehey_core.a"
)
