file(REMOVE_RECURSE
  "CMakeFiles/wehey_core.dir/coupling.cpp.o"
  "CMakeFiles/wehey_core.dir/coupling.cpp.o.d"
  "CMakeFiles/wehey_core.dir/localizer.cpp.o"
  "CMakeFiles/wehey_core.dir/localizer.cpp.o.d"
  "CMakeFiles/wehey_core.dir/loss_correlation.cpp.o"
  "CMakeFiles/wehey_core.dir/loss_correlation.cpp.o.d"
  "CMakeFiles/wehey_core.dir/loss_series.cpp.o"
  "CMakeFiles/wehey_core.dir/loss_series.cpp.o.d"
  "CMakeFiles/wehey_core.dir/throughput_comparison.cpp.o"
  "CMakeFiles/wehey_core.dir/throughput_comparison.cpp.o.d"
  "CMakeFiles/wehey_core.dir/tomography.cpp.o"
  "CMakeFiles/wehey_core.dir/tomography.cpp.o.d"
  "CMakeFiles/wehey_core.dir/wehe.cpp.o"
  "CMakeFiles/wehey_core.dir/wehe.cpp.o.d"
  "libwehey_core.a"
  "libwehey_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wehey_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
