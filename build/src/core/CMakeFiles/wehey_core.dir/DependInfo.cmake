
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coupling.cpp" "src/core/CMakeFiles/wehey_core.dir/coupling.cpp.o" "gcc" "src/core/CMakeFiles/wehey_core.dir/coupling.cpp.o.d"
  "/root/repo/src/core/localizer.cpp" "src/core/CMakeFiles/wehey_core.dir/localizer.cpp.o" "gcc" "src/core/CMakeFiles/wehey_core.dir/localizer.cpp.o.d"
  "/root/repo/src/core/loss_correlation.cpp" "src/core/CMakeFiles/wehey_core.dir/loss_correlation.cpp.o" "gcc" "src/core/CMakeFiles/wehey_core.dir/loss_correlation.cpp.o.d"
  "/root/repo/src/core/loss_series.cpp" "src/core/CMakeFiles/wehey_core.dir/loss_series.cpp.o" "gcc" "src/core/CMakeFiles/wehey_core.dir/loss_series.cpp.o.d"
  "/root/repo/src/core/throughput_comparison.cpp" "src/core/CMakeFiles/wehey_core.dir/throughput_comparison.cpp.o" "gcc" "src/core/CMakeFiles/wehey_core.dir/throughput_comparison.cpp.o.d"
  "/root/repo/src/core/tomography.cpp" "src/core/CMakeFiles/wehey_core.dir/tomography.cpp.o" "gcc" "src/core/CMakeFiles/wehey_core.dir/tomography.cpp.o.d"
  "/root/repo/src/core/wehe.cpp" "src/core/CMakeFiles/wehey_core.dir/wehe.cpp.o" "gcc" "src/core/CMakeFiles/wehey_core.dir/wehe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/wehey_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/wehey_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wehey_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
