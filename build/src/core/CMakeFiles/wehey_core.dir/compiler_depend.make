# Empty compiler generated dependencies file for wehey_core.
# This may be replaced when dependencies are built.
