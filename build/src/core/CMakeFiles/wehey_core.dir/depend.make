# Empty dependencies file for wehey_core.
# This may be replaced when dependencies are built.
