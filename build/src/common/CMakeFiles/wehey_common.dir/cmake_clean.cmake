file(REMOVE_RECURSE
  "CMakeFiles/wehey_common.dir/csv.cpp.o"
  "CMakeFiles/wehey_common.dir/csv.cpp.o.d"
  "CMakeFiles/wehey_common.dir/log.cpp.o"
  "CMakeFiles/wehey_common.dir/log.cpp.o.d"
  "CMakeFiles/wehey_common.dir/rng.cpp.o"
  "CMakeFiles/wehey_common.dir/rng.cpp.o.d"
  "CMakeFiles/wehey_common.dir/time.cpp.o"
  "CMakeFiles/wehey_common.dir/time.cpp.o.d"
  "libwehey_common.a"
  "libwehey_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wehey_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
