# Empty dependencies file for wehey_common.
# This may be replaced when dependencies are built.
