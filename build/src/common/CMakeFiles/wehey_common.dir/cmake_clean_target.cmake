file(REMOVE_RECURSE
  "libwehey_common.a"
)
