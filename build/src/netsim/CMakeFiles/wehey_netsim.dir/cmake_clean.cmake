file(REMOVE_RECURSE
  "CMakeFiles/wehey_netsim.dir/link.cpp.o"
  "CMakeFiles/wehey_netsim.dir/link.cpp.o.d"
  "CMakeFiles/wehey_netsim.dir/measure.cpp.o"
  "CMakeFiles/wehey_netsim.dir/measure.cpp.o.d"
  "CMakeFiles/wehey_netsim.dir/queue.cpp.o"
  "CMakeFiles/wehey_netsim.dir/queue.cpp.o.d"
  "CMakeFiles/wehey_netsim.dir/simulator.cpp.o"
  "CMakeFiles/wehey_netsim.dir/simulator.cpp.o.d"
  "CMakeFiles/wehey_netsim.dir/tracer.cpp.o"
  "CMakeFiles/wehey_netsim.dir/tracer.cpp.o.d"
  "libwehey_netsim.a"
  "libwehey_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wehey_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
