
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/link.cpp" "src/netsim/CMakeFiles/wehey_netsim.dir/link.cpp.o" "gcc" "src/netsim/CMakeFiles/wehey_netsim.dir/link.cpp.o.d"
  "/root/repo/src/netsim/measure.cpp" "src/netsim/CMakeFiles/wehey_netsim.dir/measure.cpp.o" "gcc" "src/netsim/CMakeFiles/wehey_netsim.dir/measure.cpp.o.d"
  "/root/repo/src/netsim/queue.cpp" "src/netsim/CMakeFiles/wehey_netsim.dir/queue.cpp.o" "gcc" "src/netsim/CMakeFiles/wehey_netsim.dir/queue.cpp.o.d"
  "/root/repo/src/netsim/simulator.cpp" "src/netsim/CMakeFiles/wehey_netsim.dir/simulator.cpp.o" "gcc" "src/netsim/CMakeFiles/wehey_netsim.dir/simulator.cpp.o.d"
  "/root/repo/src/netsim/tracer.cpp" "src/netsim/CMakeFiles/wehey_netsim.dir/tracer.cpp.o" "gcc" "src/netsim/CMakeFiles/wehey_netsim.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wehey_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
