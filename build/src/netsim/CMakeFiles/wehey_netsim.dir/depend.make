# Empty dependencies file for wehey_netsim.
# This may be replaced when dependencies are built.
