file(REMOVE_RECURSE
  "libwehey_netsim.a"
)
