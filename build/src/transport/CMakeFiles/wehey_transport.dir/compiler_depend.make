# Empty compiler generated dependencies file for wehey_transport.
# This may be replaced when dependencies are built.
