file(REMOVE_RECURSE
  "CMakeFiles/wehey_transport.dir/proxy.cpp.o"
  "CMakeFiles/wehey_transport.dir/proxy.cpp.o.d"
  "CMakeFiles/wehey_transport.dir/quic.cpp.o"
  "CMakeFiles/wehey_transport.dir/quic.cpp.o.d"
  "CMakeFiles/wehey_transport.dir/tcp.cpp.o"
  "CMakeFiles/wehey_transport.dir/tcp.cpp.o.d"
  "CMakeFiles/wehey_transport.dir/udp.cpp.o"
  "CMakeFiles/wehey_transport.dir/udp.cpp.o.d"
  "libwehey_transport.a"
  "libwehey_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wehey_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
