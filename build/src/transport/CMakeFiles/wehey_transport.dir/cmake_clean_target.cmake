file(REMOVE_RECURSE
  "libwehey_transport.a"
)
