file(REMOVE_RECURSE
  "CMakeFiles/wehey_experiments.dir/history.cpp.o"
  "CMakeFiles/wehey_experiments.dir/history.cpp.o.d"
  "CMakeFiles/wehey_experiments.dir/network.cpp.o"
  "CMakeFiles/wehey_experiments.dir/network.cpp.o.d"
  "CMakeFiles/wehey_experiments.dir/params.cpp.o"
  "CMakeFiles/wehey_experiments.dir/params.cpp.o.d"
  "CMakeFiles/wehey_experiments.dir/scenario.cpp.o"
  "CMakeFiles/wehey_experiments.dir/scenario.cpp.o.d"
  "CMakeFiles/wehey_experiments.dir/wild.cpp.o"
  "CMakeFiles/wehey_experiments.dir/wild.cpp.o.d"
  "libwehey_experiments.a"
  "libwehey_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wehey_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
