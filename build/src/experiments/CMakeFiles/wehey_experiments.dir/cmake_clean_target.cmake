file(REMOVE_RECURSE
  "libwehey_experiments.a"
)
