# Empty compiler generated dependencies file for wehey_experiments.
# This may be replaced when dependencies are built.
