# Empty compiler generated dependencies file for wehey_topology.
# This may be replaced when dependencies are built.
