file(REMOVE_RECURSE
  "CMakeFiles/wehey_topology.dir/alias.cpp.o"
  "CMakeFiles/wehey_topology.dir/alias.cpp.o.d"
  "CMakeFiles/wehey_topology.dir/construction.cpp.o"
  "CMakeFiles/wehey_topology.dir/construction.cpp.o.d"
  "CMakeFiles/wehey_topology.dir/database.cpp.o"
  "CMakeFiles/wehey_topology.dir/database.cpp.o.d"
  "CMakeFiles/wehey_topology.dir/synthetic.cpp.o"
  "CMakeFiles/wehey_topology.dir/synthetic.cpp.o.d"
  "CMakeFiles/wehey_topology.dir/traceroute.cpp.o"
  "CMakeFiles/wehey_topology.dir/traceroute.cpp.o.d"
  "libwehey_topology.a"
  "libwehey_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wehey_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
