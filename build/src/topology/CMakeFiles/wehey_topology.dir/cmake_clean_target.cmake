file(REMOVE_RECURSE
  "libwehey_topology.a"
)
