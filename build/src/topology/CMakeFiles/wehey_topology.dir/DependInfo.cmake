
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/alias.cpp" "src/topology/CMakeFiles/wehey_topology.dir/alias.cpp.o" "gcc" "src/topology/CMakeFiles/wehey_topology.dir/alias.cpp.o.d"
  "/root/repo/src/topology/construction.cpp" "src/topology/CMakeFiles/wehey_topology.dir/construction.cpp.o" "gcc" "src/topology/CMakeFiles/wehey_topology.dir/construction.cpp.o.d"
  "/root/repo/src/topology/database.cpp" "src/topology/CMakeFiles/wehey_topology.dir/database.cpp.o" "gcc" "src/topology/CMakeFiles/wehey_topology.dir/database.cpp.o.d"
  "/root/repo/src/topology/synthetic.cpp" "src/topology/CMakeFiles/wehey_topology.dir/synthetic.cpp.o" "gcc" "src/topology/CMakeFiles/wehey_topology.dir/synthetic.cpp.o.d"
  "/root/repo/src/topology/traceroute.cpp" "src/topology/CMakeFiles/wehey_topology.dir/traceroute.cpp.o" "gcc" "src/topology/CMakeFiles/wehey_topology.dir/traceroute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wehey_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
