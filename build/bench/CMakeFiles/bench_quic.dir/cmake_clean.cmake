file(REMOVE_RECURSE
  "CMakeFiles/bench_quic.dir/bench_quic.cpp.o"
  "CMakeFiles/bench_quic.dir/bench_quic.cpp.o.d"
  "bench_quic"
  "bench_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
