# Empty dependencies file for bench_quic.
# This may be replaced when dependencies are built.
