file(REMOVE_RECURSE
  "CMakeFiles/bench_bbr.dir/bench_bbr.cpp.o"
  "CMakeFiles/bench_bbr.dir/bench_bbr.cpp.o.d"
  "bench_bbr"
  "bench_bbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
