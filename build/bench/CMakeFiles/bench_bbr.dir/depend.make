# Empty dependencies file for bench_bbr.
# This may be replaced when dependencies are built.
