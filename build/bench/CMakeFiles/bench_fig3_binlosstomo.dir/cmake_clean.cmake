file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_binlosstomo.dir/bench_fig3_binlosstomo.cpp.o"
  "CMakeFiles/bench_fig3_binlosstomo.dir/bench_fig3_binlosstomo.cpp.o.d"
  "bench_fig3_binlosstomo"
  "bench_fig3_binlosstomo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_binlosstomo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
