# Empty compiler generated dependencies file for bench_shaper_limitation.
# This may be replaced when dependencies are built.
