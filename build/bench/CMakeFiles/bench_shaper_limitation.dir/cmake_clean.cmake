file(REMOVE_RECURSE
  "CMakeFiles/bench_shaper_limitation.dir/bench_shaper_limitation.cpp.o"
  "CMakeFiles/bench_shaper_limitation.dir/bench_shaper_limitation.cpp.o.d"
  "bench_shaper_limitation"
  "bench_shaper_limitation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shaper_limitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
