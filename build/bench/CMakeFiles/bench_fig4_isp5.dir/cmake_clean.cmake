file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_isp5.dir/bench_fig4_isp5.cpp.o"
  "CMakeFiles/bench_fig4_isp5.dir/bench_fig4_isp5.cpp.o.d"
  "bench_fig4_isp5"
  "bench_fig4_isp5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_isp5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
