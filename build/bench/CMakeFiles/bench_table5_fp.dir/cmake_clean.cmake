file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fp.dir/bench_table5_fp.cpp.o"
  "CMakeFiles/bench_table5_fp.dir/bench_table5_fp.cpp.o.d"
  "bench_table5_fp"
  "bench_table5_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
