# Empty compiler generated dependencies file for bench_proxy_blindspot.
# This may be replaced when dependencies are built.
