file(REMOVE_RECURSE
  "CMakeFiles/bench_proxy_blindspot.dir/bench_proxy_blindspot.cpp.o"
  "CMakeFiles/bench_proxy_blindspot.dir/bench_proxy_blindspot.cpp.o.d"
  "bench_proxy_blindspot"
  "bench_proxy_blindspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proxy_blindspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
