# Empty dependencies file for bench_table4_congestion.
# This may be replaced when dependencies are built.
