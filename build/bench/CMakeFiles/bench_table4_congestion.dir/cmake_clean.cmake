file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_congestion.dir/bench_table4_congestion.cpp.o"
  "CMakeFiles/bench_table4_congestion.dir/bench_table4_congestion.cpp.o.d"
  "bench_table4_congestion"
  "bench_table4_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
