# Empty compiler generated dependencies file for bench_fig2_tput_dists.
# This may be replaced when dependencies are built.
