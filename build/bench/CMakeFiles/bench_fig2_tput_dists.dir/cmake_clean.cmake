file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_tput_dists.dir/bench_fig2_tput_dists.cpp.o"
  "CMakeFiles/bench_fig2_tput_dists.dir/bench_fig2_tput_dists.cpp.o.d"
  "bench_fig2_tput_dists"
  "bench_fig2_tput_dists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_tput_dists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
