file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_wild.dir/bench_table1_wild.cpp.o"
  "CMakeFiles/bench_table1_wild.dir/bench_table1_wild.cpp.o.d"
  "bench_table1_wild"
  "bench_table1_wild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_wild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
