file(REMOVE_RECURSE
  "CMakeFiles/bench_perflow.dir/bench_perflow.cpp.o"
  "CMakeFiles/bench_perflow.dir/bench_perflow.cpp.o.d"
  "bench_perflow"
  "bench_perflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
