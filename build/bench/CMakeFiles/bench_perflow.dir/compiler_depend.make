# Empty compiler generated dependencies file for bench_perflow.
# This may be replaced when dependencies are built.
