file(REMOVE_RECURSE
  "CMakeFiles/bench_topology_construction.dir/bench_topology_construction.cpp.o"
  "CMakeFiles/bench_topology_construction.dir/bench_topology_construction.cpp.o.d"
  "bench_topology_construction"
  "bench_topology_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
