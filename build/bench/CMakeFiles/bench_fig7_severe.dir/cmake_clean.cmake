file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_severe.dir/bench_fig7_severe.cpp.o"
  "CMakeFiles/bench_fig7_severe.dir/bench_fig7_severe.cpp.o.d"
  "bench_fig7_severe"
  "bench_fig7_severe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_severe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
