# Empty dependencies file for bench_fig7_severe.
# This may be replaced when dependencies are built.
