file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_rtt.dir/bench_table3_rtt.cpp.o"
  "CMakeFiles/bench_table3_rtt.dir/bench_table3_rtt.cpp.o.d"
  "bench_table3_rtt"
  "bench_table3_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
