# Empty dependencies file for bench_fig5_replay_props.
# This may be replaced when dependencies are built.
