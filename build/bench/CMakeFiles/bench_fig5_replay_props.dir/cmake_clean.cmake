file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_replay_props.dir/bench_fig5_replay_props.cpp.o"
  "CMakeFiles/bench_fig5_replay_props.dir/bench_fig5_replay_props.cpp.o.d"
  "bench_fig5_replay_props"
  "bench_fig5_replay_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_replay_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
