file(REMOVE_RECURSE
  "CMakeFiles/session_timeline.dir/session_timeline.cpp.o"
  "CMakeFiles/session_timeline.dir/session_timeline.cpp.o.d"
  "session_timeline"
  "session_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
