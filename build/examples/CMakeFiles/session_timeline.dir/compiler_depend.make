# Empty compiler generated dependencies file for session_timeline.
# This may be replaced when dependencies are built.
