file(REMOVE_RECURSE
  "CMakeFiles/localize_wild.dir/localize_wild.cpp.o"
  "CMakeFiles/localize_wild.dir/localize_wild.cpp.o.d"
  "localize_wild"
  "localize_wild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localize_wild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
