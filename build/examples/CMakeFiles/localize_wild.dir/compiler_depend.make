# Empty compiler generated dependencies file for localize_wild.
# This may be replaced when dependencies are built.
