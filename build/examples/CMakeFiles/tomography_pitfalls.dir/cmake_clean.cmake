file(REMOVE_RECURSE
  "CMakeFiles/tomography_pitfalls.dir/tomography_pitfalls.cpp.o"
  "CMakeFiles/tomography_pitfalls.dir/tomography_pitfalls.cpp.o.d"
  "tomography_pitfalls"
  "tomography_pitfalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomography_pitfalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
