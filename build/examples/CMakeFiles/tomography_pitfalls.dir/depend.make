# Empty dependencies file for tomography_pitfalls.
# This may be replaced when dependencies are built.
