# Empty dependencies file for wehey_cli.
# This may be replaced when dependencies are built.
