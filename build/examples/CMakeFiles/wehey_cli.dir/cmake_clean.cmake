file(REMOVE_RECURSE
  "CMakeFiles/wehey_cli.dir/wehey_cli.cpp.o"
  "CMakeFiles/wehey_cli.dir/wehey_cli.cpp.o.d"
  "wehey_cli"
  "wehey_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wehey_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
