file(REMOVE_RECURSE
  "CMakeFiles/test_netsim_core.dir/test_netsim_core.cpp.o"
  "CMakeFiles/test_netsim_core.dir/test_netsim_core.cpp.o.d"
  "test_netsim_core"
  "test_netsim_core.pdb"
  "test_netsim_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
