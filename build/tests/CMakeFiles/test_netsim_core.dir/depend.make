# Empty dependencies file for test_netsim_core.
# This may be replaced when dependencies are built.
