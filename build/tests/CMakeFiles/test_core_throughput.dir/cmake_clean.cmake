file(REMOVE_RECURSE
  "CMakeFiles/test_core_throughput.dir/test_core_throughput.cpp.o"
  "CMakeFiles/test_core_throughput.dir/test_core_throughput.cpp.o.d"
  "test_core_throughput"
  "test_core_throughput.pdb"
  "test_core_throughput[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
