# Empty dependencies file for test_core_throughput.
# This may be replaced when dependencies are built.
