# Empty compiler generated dependencies file for test_delayed_tbf.
# This may be replaced when dependencies are built.
