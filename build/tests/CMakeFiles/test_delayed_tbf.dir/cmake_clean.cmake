file(REMOVE_RECURSE
  "CMakeFiles/test_delayed_tbf.dir/test_delayed_tbf.cpp.o"
  "CMakeFiles/test_delayed_tbf.dir/test_delayed_tbf.cpp.o.d"
  "test_delayed_tbf"
  "test_delayed_tbf.pdb"
  "test_delayed_tbf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delayed_tbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
