# Empty compiler generated dependencies file for test_netsim_red.
# This may be replaced when dependencies are built.
