file(REMOVE_RECURSE
  "CMakeFiles/test_netsim_red.dir/test_netsim_red.cpp.o"
  "CMakeFiles/test_netsim_red.dir/test_netsim_red.cpp.o.d"
  "test_netsim_red"
  "test_netsim_red.pdb"
  "test_netsim_red[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netsim_red.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
