file(REMOVE_RECURSE
  "CMakeFiles/test_core_tomography.dir/test_core_tomography.cpp.o"
  "CMakeFiles/test_core_tomography.dir/test_core_tomography.cpp.o.d"
  "test_core_tomography"
  "test_core_tomography.pdb"
  "test_core_tomography[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_tomography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
