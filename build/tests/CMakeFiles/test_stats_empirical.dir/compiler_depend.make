# Empty compiler generated dependencies file for test_stats_empirical.
# This may be replaced when dependencies are built.
