file(REMOVE_RECURSE
  "CMakeFiles/test_stats_empirical.dir/test_stats_empirical.cpp.o"
  "CMakeFiles/test_stats_empirical.dir/test_stats_empirical.cpp.o.d"
  "test_stats_empirical"
  "test_stats_empirical.pdb"
  "test_stats_empirical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_empirical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
