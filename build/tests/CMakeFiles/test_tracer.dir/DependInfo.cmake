
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tracer.cpp" "tests/CMakeFiles/test_tracer.dir/test_tracer.cpp.o" "gcc" "tests/CMakeFiles/test_tracer.dir/test_tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replay/CMakeFiles/wehey_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/wehey_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wehey_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wehey_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wehey_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/wehey_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wehey_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wehey_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wehey_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
