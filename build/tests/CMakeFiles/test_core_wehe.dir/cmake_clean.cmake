file(REMOVE_RECURSE
  "CMakeFiles/test_core_wehe.dir/test_core_wehe.cpp.o"
  "CMakeFiles/test_core_wehe.dir/test_core_wehe.cpp.o.d"
  "test_core_wehe"
  "test_core_wehe.pdb"
  "test_core_wehe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_wehe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
