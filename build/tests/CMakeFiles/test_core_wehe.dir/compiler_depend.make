# Empty compiler generated dependencies file for test_core_wehe.
# This may be replaced when dependencies are built.
