file(REMOVE_RECURSE
  "CMakeFiles/test_replay_session.dir/test_replay_session.cpp.o"
  "CMakeFiles/test_replay_session.dir/test_replay_session.cpp.o.d"
  "test_replay_session"
  "test_replay_session.pdb"
  "test_replay_session[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
