# Empty dependencies file for test_replay_session.
# This may be replaced when dependencies are built.
