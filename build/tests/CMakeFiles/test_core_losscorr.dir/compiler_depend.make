# Empty compiler generated dependencies file for test_core_losscorr.
# This may be replaced when dependencies are built.
