file(REMOVE_RECURSE
  "CMakeFiles/test_core_losscorr.dir/test_core_losscorr.cpp.o"
  "CMakeFiles/test_core_losscorr.dir/test_core_losscorr.cpp.o.d"
  "test_core_losscorr"
  "test_core_losscorr.pdb"
  "test_core_losscorr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_losscorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
