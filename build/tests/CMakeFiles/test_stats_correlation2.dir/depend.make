# Empty dependencies file for test_stats_correlation2.
# This may be replaced when dependencies are built.
