# Empty compiler generated dependencies file for test_core_localizer.
# This may be replaced when dependencies are built.
