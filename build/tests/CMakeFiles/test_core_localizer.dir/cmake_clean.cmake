file(REMOVE_RECURSE
  "CMakeFiles/test_core_localizer.dir/test_core_localizer.cpp.o"
  "CMakeFiles/test_core_localizer.dir/test_core_localizer.cpp.o.d"
  "test_core_localizer"
  "test_core_localizer.pdb"
  "test_core_localizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_localizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
