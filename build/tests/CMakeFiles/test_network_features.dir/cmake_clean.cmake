file(REMOVE_RECURSE
  "CMakeFiles/test_network_features.dir/test_network_features.cpp.o"
  "CMakeFiles/test_network_features.dir/test_network_features.cpp.o.d"
  "test_network_features"
  "test_network_features.pdb"
  "test_network_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
