# Empty dependencies file for test_network_features.
# This may be replaced when dependencies are built.
