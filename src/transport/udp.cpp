#include "transport/udp.hpp"

#include "common/check.hpp"

namespace wehey::transport {

using netsim::Packet;
using netsim::PacketKind;

UdpReplaySender::UdpReplaySender(netsim::Simulator& sim,
                                 netsim::PacketIdSource& ids, UdpConfig cfg,
                                 netsim::FlowId flow, std::uint8_t dscp,
                                 netsim::PacketSink* out,
                                 const trace::AppTrace& t, Time start,
                                 netsim::FlowId policer_key)
    : start_(start) {
  WEHEY_EXPECTS(out != nullptr);
  tx_times_.reserve(t.packets.size());
  std::uint64_t seq = 0;
  end_ = start;
  for (const auto& tp : t.packets) {
    const Time at = start + tp.offset;
    Packet pkt;
    pkt.id = ids.next();
    pkt.flow = flow;
    pkt.policer_key = policer_key;
    pkt.kind = PacketKind::Data;
    pkt.size = tp.size + cfg.header_bytes;
    pkt.dscp = dscp;
    pkt.seq = seq++;
    pkt.payload = tp.size;
    sim.schedule_at(at, [&sim, out, pkt]() mutable {
      pkt.sent_at = sim.now();
      out->receive(std::move(pkt));
    });
    tx_times_.push_back(at);
    end_ = at;
  }
  scheduled_ = seq;
}

void UdpReplayReceiver::receive(Packet pkt) {
  if (pkt.kind != PacketKind::Data) return;
  const Time now = sim_.now();
  deliveries_.push_back({now, pkt.payload});
  owd_ms_.push_back(to_milliseconds(now - pkt.sent_at));

  if (pkt.seq >= expected_seq_) {
    // Every skipped sequence number is a loss, registered at the moment
    // the gap becomes observable (the arrival of this later packet).
    for (std::uint64_t missing = expected_seq_; missing < pkt.seq;
         ++missing) {
      loss_times_.push_back(now);
    }
    expected_seq_ = pkt.seq + 1;
  }
  // pkt.seq < expected_seq_ would be reordering; the simulator's FIFO
  // paths never reorder, so such packets are simply counted as deliveries.
}

void UdpReplayReceiver::finalize(std::uint64_t packets_sent, Time at) {
  while (expected_seq_ < packets_sent) {
    loss_times_.push_back(at);
    ++expected_seq_;
  }
}

netsim::ReplayMeasurement udp_measurement(const UdpReplaySender& sender,
                                          const UdpReplayReceiver& receiver) {
  netsim::ReplayMeasurement m;
  m.start = sender.start();
  m.end = sender.end();
  m.tx_times = sender.tx_times();
  m.loss_times = receiver.loss_times();
  m.deliveries = receiver.deliveries();
  m.rtt_ms = receiver.delay_samples_ms();
  return m;
}

}  // namespace wehey::transport
