#include "transport/tcp.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "netsim/queue.hpp"  // kNever
#include "common/log.hpp"

namespace wehey::transport {

using netsim::Packet;
using netsim::PacketKind;

// ---------------------------------------------------------------- TcpSender

TcpSender::TcpSender(netsim::Simulator& sim, netsim::PacketIdSource& ids,
                     TcpConfig cfg, netsim::FlowId flow, std::uint8_t dscp,
                     netsim::PacketSink* out)
    : sim_(sim), ids_(ids), cfg_(cfg), flow_(flow), dscp_(dscp), out_(out) {
  WEHEY_EXPECTS(out_ != nullptr);
  cwnd_ = cfg_.initial_cwnd_segments * mss_d();
  ssthresh_ = static_cast<double>(cfg_.max_cwnd_bytes);
  meas_.start = sim_.now();
}

void TcpSender::supply(std::int64_t bytes) {
  WEHEY_EXPECTS(bytes > 0);
  // Congestion-window validation after an application-limited idle period:
  // if the connection sat idle longer than one RTO, restart from the
  // initial window instead of blasting a stale window's worth of packets.
  if (available_ == 0 && inflight() == 0 && last_send_ > 0 &&
      sim_.now() - last_send_ > rto_) {
    cwnd_ = std::min(cwnd_, cfg_.initial_cwnd_segments * mss_d());
    epoch_start_ = -1;
  }
  supplied_ += bytes;
  available_ += bytes;
  completed_notified_ = false;
  maybe_send();
}

bool TcpSender::complete() const {
  return available_ == 0 && inflight() == 0 && supplied_ > 0;
}

double TcpSender::pacing_rate() const {
  if (cfg_.cc == CongestionControl::Bbr) {
    const double bw = lt_mode_ ? lt_bw_ : bbr_bw();
    if (bw > 0.0) {
      return std::max(bbr_pacing_gain() * bw, 8.0 * mss_d());
    }
    // No bandwidth estimate yet: pace the initial window over the RTT
    // guess at the startup gain.
    const double rate = cwnd_ * 8.0 /
                        to_seconds(cfg_.initial_rtt_guess) *
                        cfg_.bbr_startup_gain;
    return std::max(rate, 8.0 * mss_d());
  }
  const Time rtt = srtt_ > 0 ? srtt_ : cfg_.initial_rtt_guess;
  const double gain = cwnd_ < ssthresh_ ? cfg_.pacing_gain_slow_start
                                        : cfg_.pacing_gain_avoidance;
  const double rate = cwnd_ * 8.0 / to_seconds(rtt) * gain;
  return std::max(rate, 8.0 * mss_d());  // never slower than 1 seg/sec
}

void TcpSender::maybe_send() {
  // Hole repairs take priority over new data (RFC 6675 spirit); both
  // share the same congestion-window budget and the pacing gate.
  while (pipe() + static_cast<std::int64_t>(cfg_.mss) <=
         static_cast<std::int64_t>(cwnd_) + cfg_.mss - 1) {
    SegmentMap::iterator hole = outstanding_.end();
    if (in_recovery_) {
      for (auto it = outstanding_.lower_bound(una_);
           it != outstanding_.end() && it->first < recover_; ++it) {
        if (!it->second.sacked && !it->second.retx_in_recovery) {
          hole = it;
          break;
        }
      }
    }
    if (hole == outstanding_.end() && available_ == 0) return;

    if (cfg_.pacing && sim_.now() < pace_next_) {
      if (!pace_timer_pending_) {
        pace_timer_pending_ = true;
        sim_.schedule_at(pace_next_, [this] {
          pace_timer_pending_ = false;
          maybe_send();
        });
      }
      return;
    }
    if (hole != outstanding_.end()) {
      auto& seg = hole->second;
      seg.retransmitted = true;
      seg.retx_in_recovery = true;
      if (seg.lost) {
        // The retransmission puts the segment back in flight.
        seg.lost = false;
        lost_bytes_ -= seg.len;
      }
      transmit(hole->first, seg, /*is_retx=*/true);
      continue;
    }
    send_new_segment();
  }
}

void TcpSender::send_new_segment() {
  const auto len = static_cast<std::uint32_t>(
      std::min<std::int64_t>(available_, cfg_.mss));
  Segment seg;
  seg.len = len;
  seg.first_sent = sim_.now();
  seg.delivered_at_send = delivered_total_;
  outstanding_.emplace(next_seq_, seg);
  transmit(next_seq_, seg, /*is_retx=*/false);
  next_seq_ += len;
  available_ -= len;
  // Arm (not restart) the retransmission timer: restarting on every send
  // would let a steady stream of new data postpone the timeout forever.
  if (!rto_armed_) arm_rto();
}

void TcpSender::transmit(std::uint64_t seq, const Segment& seg,
                         bool is_retx) {
  Packet pkt;
  pkt.id = ids_.next();
  pkt.flow = flow_;
  pkt.policer_key = policer_key_;
  pkt.kind = PacketKind::Data;
  pkt.size = seg.len + cfg_.header_bytes;
  pkt.dscp = dscp_;
  pkt.seq = seq;
  pkt.payload = seg.len;
  pkt.retransmit = is_retx;
  pkt.sent_at = sim_.now();

  meas_.tx_times.push_back(sim_.now());
  if (is_retx) {
    // Retransmission-based loss estimation (§3.4): register one loss event
    // now — not when the drop actually happened.
    meas_.loss_times.push_back(sim_.now());
    ++retx_count_;
    retx_obs_.inc();
  }

  last_send_ = sim_.now();
  if (cfg_.pacing) {
    const Time gap = static_cast<Time>(
        static_cast<double>(pkt.size) * 8.0 / pacing_rate() *
        static_cast<double>(kSecond));
    pace_next_ = std::max(pace_next_, sim_.now()) + std::max<Time>(gap, 1);
  }
  out_->receive(std::move(pkt));
}

void TcpSender::retransmit_front(bool timeout) {
  const auto it = outstanding_.find(una_);
  if (it == outstanding_.end()) return;
  auto& seg = it->second;
  seg.retransmitted = true;  // Karn: no RTT sample from this segment
  seg.retx_in_recovery = true;
  if (seg.lost) {
    seg.lost = false;
    lost_bytes_ -= seg.len;
  }
  transmit(una_, seg, /*is_retx=*/true);
  if (timeout) arm_rto();
}

void TcpSender::apply_sack(const Packet& ack_pkt) {
  const std::uint64_t prev_highest = highest_sacked_;
  for (const auto& block : ack_pkt.sack) {
    if (block.empty()) continue;
    for (auto it = outstanding_.lower_bound(block.start);
         it != outstanding_.end() && it->first + it->second.len <= block.end;
         ++it) {
      if (!it->second.sacked) {
        it->second.sacked = true;
        sacked_bytes_ += it->second.len;
        if (it->second.lost) {
          it->second.lost = false;
          lost_bytes_ -= it->second.len;
        }
      }
    }
    if (block.end > highest_sacked_) highest_sacked_ = block.end;
  }

  // RFC 6675 IsLost, simplified: an unsacked segment more than 3 MSS
  // below the highest SACKed byte is deemed lost and leaves the pipe.
  // Each segment is classified at most once (the floor is monotone).
  const std::uint64_t dup_thresh = 3ULL * cfg_.mss;
  if (highest_sacked_ > dup_thresh) {
    const std::uint64_t threshold = highest_sacked_ - dup_thresh;
    const std::uint64_t from = std::max(una_, loss_scan_floor_);
    for (auto it = outstanding_.lower_bound(from);
         it != outstanding_.end() && it->first + it->second.len <= threshold;
         ++it) {
      auto& seg = it->second;
      if (!seg.sacked && !seg.lost && !seg.retransmitted) {
        seg.lost = true;
        lost_bytes_ += seg.len;
      }
    }
    loss_scan_floor_ = std::max(loss_scan_floor_, threshold);
  }
  // Note: the RTO timer deliberately does NOT restart on SACK progress —
  // only on cumulative-ACK progress (RFC 6298). If the una-hole repair
  // itself is lost, the timeout is the rescue path; postponing it on SACK
  // progress would starve a stuck recovery forever.
  (void)prev_highest;
}

void TcpSender::sack_retransmit() {
  // Hole repair shares the unified send loop (repairs take priority).
  maybe_send();
}

void TcpSender::receive(Packet pkt) {
  if (pkt.kind != PacketKind::Ack) return;
  const Time now = sim_.now();
  const std::uint64_t ack = pkt.ack;
  apply_sack(pkt);

  if (ack > una_) {
    on_new_ack(ack, now);
  } else if (ack == una_ && inflight() > 0) {
    ++dup_acks_;
    if (!in_recovery_ && dup_acks_ == 3) {
      enter_loss_recovery(/*timeout=*/false);
      sack_retransmit();
    } else if (in_recovery_) {
      sack_retransmit();
    }
  }
  maybe_send();
}

void TcpSender::on_new_ack(std::uint64_t ack, Time now) {
  const std::int64_t acked_bytes = static_cast<std::int64_t>(ack - una_);
  dup_acks_ = 0;

  // RTT sample from the newest cumulatively-acked, never-retransmitted
  // segment (Karn's algorithm). Segments sent before the most recent loss
  // event are also skipped: their cumulative ACK may have been held back
  // by hole repair, which would inflate the sample with recovery time
  // rather than path delay (a timestamp option would filter these the
  // same way).
  std::int64_t sample_delivered_at_send = -1;
  Time sample_sent_at = 0;
  for (auto it = outstanding_.begin();
       it != outstanding_.end() && it->first < ack;) {
    if (!it->second.retransmitted && it->first + it->second.len == ack &&
        it->second.first_sent > last_loss_event_) {
      update_rtt(now - it->second.first_sent);
      sample_delivered_at_send = it->second.delivered_at_send;
      sample_sent_at = it->second.first_sent;
    }
    if (it->second.sacked) sacked_bytes_ -= it->second.len;
    if (it->second.lost) lost_bytes_ -= it->second.len;
    it = outstanding_.erase(it);
  }
  una_ = ack;
  delivered_total_ += acked_bytes;
  if (cfg_.cc == CongestionControl::Bbr) {
    bbr_on_ack(acked_bytes, now, sample_delivered_at_send, sample_sent_at);
  }
  if (loss_scan_floor_ < una_) loss_scan_floor_ = una_;

  if (in_recovery_) {
    if (ack > recover_) {
      // Full recovery: deflate to ssthresh and resume normal growth
      // (loss-based CC only; BBR's window is model-driven).
      in_recovery_ = false;
      if (!rto_recovery_ && cfg_.cc != CongestionControl::Bbr) {
        cwnd_ = ssthresh_;
      }
      rto_recovery_ = false;
    } else {
      // Partial ACK: more holes below the recovery point remain. After a
      // timeout the repair itself slow-starts (RFC 5681).
      if (rto_recovery_) {
        cwnd_ += static_cast<double>(
            std::min<std::int64_t>(acked_bytes, cfg_.mss));
      }
      sack_retransmit();
    }
  } else {
    slow_start_or_avoid(acked_bytes, now);
  }

  if (inflight() > 0) {
    arm_rto();
  } else {
    cancel_rto();
    if (complete() && !completed_notified_) {
      completed_notified_ = true;
      meas_.end = now;
      if (on_complete_) on_complete_();
    }
  }
}

void TcpSender::slow_start_or_avoid(std::int64_t acked_bytes, Time now) {
  if (cfg_.cc == CongestionControl::Bbr) return;  // cwnd set by the model
  if (cwnd_ < ssthresh_) {
    // Slow start: one MSS per MSS acked (byte counting, capped).
    cwnd_ += static_cast<double>(
        std::min<std::int64_t>(acked_bytes, cfg_.mss));
  } else if (cfg_.cc == CongestionControl::Cubic) {
    cubic_on_ack(now);
  } else {
    // NewReno congestion avoidance: ~one MSS per RTT.
    cwnd_ += mss_d() * mss_d() / cwnd_;
  }
  cwnd_ = std::min(cwnd_, static_cast<double>(cfg_.max_cwnd_bytes));
}

void TcpSender::cubic_on_ack(Time now) {
  const Time rtt = srtt_ > 0 ? srtt_ : cfg_.initial_rtt_guess;
  if (epoch_start_ < 0) {
    epoch_start_ = now;
    const double w = cwnd_segments();
    if (w_max_ < w) w_max_ = w;
    cubic_k_ = std::cbrt(w_max_ * (1.0 - cfg_.cubic_beta) / cfg_.cubic_c);
    w_est_ = w;
  }
  const double t = to_seconds(now - epoch_start_ + rtt);
  const double dt = t - cubic_k_;
  const double target = w_max_ + cfg_.cubic_c * dt * dt * dt;

  // TCP-friendly region (RFC 8312 §4.2).
  w_est_ += 3.0 * (1.0 - cfg_.cubic_beta) / (1.0 + cfg_.cubic_beta) *
            mss_d() / cwnd_ /* per-ACK AIMD-equivalent increment */;
  const double floor_w = std::max(w_est_, 2.0);

  const double w = cwnd_segments();
  double next_w;
  if (target > w) {
    next_w = w + (target - w) / w;  // per-ACK share of the cubic step
  } else {
    next_w = w + 0.01 / w;  // minimal growth in the plateau region
  }
  next_w = std::max(next_w, floor_w);
  cwnd_ = next_w * mss_d();
}

void TcpSender::enter_loss_recovery(bool timeout) {
  last_loss_event_ = sim_.now();
  // CUBIC multiplicative decrease; remember W_max for the next epoch.
  w_max_ = cwnd_segments();
  epoch_start_ = -1;
  const double beta =
      cfg_.cc == CongestionControl::Cubic ? cfg_.cubic_beta : 0.5;
  if (cfg_.cc == CongestionControl::Bbr && !timeout) {
    // BBR does not back off multiplicatively on loss; it keeps sending at
    // the model rate while SACK repair runs.
    in_recovery_ = true;
    rto_recovery_ = false;
    recover_ = next_seq_;
    for (auto& [seq, seg] : outstanding_) seg.retx_in_recovery = false;
    return;
  }
  ssthresh_ = std::max(cwnd_ * beta, 2.0 * mss_d());
  for (auto& [seq, seg] : outstanding_) seg.retx_in_recovery = false;
  if (timeout) {
    // After an RTO every unSACKed outstanding segment is presumed lost:
    // rebuild the pipe and repair in slow start from one MSS.
    for (auto& [seq, seg] : outstanding_) {
      if (!seg.sacked && !seg.lost) {
        seg.lost = true;
        lost_bytes_ += seg.len;
      }
      seg.retransmitted = false;  // allow IsLost reclassification
    }
    in_recovery_ = true;
    rto_recovery_ = true;
    recover_ = next_seq_;
    cwnd_ = mss_d();
  } else {
    in_recovery_ = true;
    rto_recovery_ = false;
    recover_ = next_seq_;
    cwnd_ = ssthresh_;
  }
}

void TcpSender::update_rtt(Time sample) {
  if (sample <= 0) sample = 1;
  meas_.rtt_ms.push_back(to_milliseconds(sample));
  rtt_obs_.observe(to_milliseconds(sample));
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const Time err = std::abs(srtt_ - sample);
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  srtt_obs_.observe(to_milliseconds(srtt_));
  rto_ = std::clamp(srtt_ + 4 * rttvar_, cfg_.min_rto, cfg_.max_rto);
}

void TcpSender::arm_rto() {
  ++rto_generation_;
  rto_armed_ = true;
  const auto gen = rto_generation_;
  sim_.schedule(rto_, [this, gen] {
    if (rto_armed_ && gen == rto_generation_) on_rto();
  });
}

void TcpSender::on_rto() {
  if (inflight() == 0) {
    rto_armed_ = false;
    return;
  }
  ++timeout_count_;
  rto_obs_.inc();
  enter_loss_recovery(/*timeout=*/true);
  rto_ = std::min(rto_ * 2, cfg_.max_rto);  // exponential backoff
  retransmit_front(/*timeout=*/true);
  maybe_send();
}

// -------------------------------------------------------------------- BBR

double TcpSender::bbr_bw() const {
  double best = 0.0;
  for (const auto& [at, bw] : bw_samples_) best = std::max(best, bw);
  return best;
}

Time TcpSender::bbr_rtprop() const {
  Time best = netsim::kNever;
  for (const auto& [at, rtt] : rtprop_samples_) best = std::min(best, rtt);
  return best == netsim::kNever ? cfg_.initial_rtt_guess : best;
}

double TcpSender::bbr_pacing_gain() const {
  if (lt_mode_) return 1.0;  // pinned to the long-term (policed) rate
  switch (bbr_mode_) {
    case BbrMode::Startup: return cfg_.bbr_startup_gain;
    case BbrMode::Drain: return 1.0 / cfg_.bbr_startup_gain;
    case BbrMode::ProbeBw: {
      static constexpr double kCycle[] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};
      return kCycle[bbr_cycle_index_ % 8];
    }
  }
  return 1.0;
}

void TcpSender::bbr_on_ack(std::int64_t acked_bytes, Time now,
                           std::int64_t delivered_at_send, Time sent_at) {
  (void)acked_bytes;
  // Delivery-rate sample from the freshly acked segment: bytes delivered
  // since it was sent, over the time it took.
  if (delivered_at_send >= 0 && now > sent_at) {
    const double rate = static_cast<double>(
                            delivered_total_ - delivered_at_send) *
                        8.0 / to_seconds(now - sent_at);
    bw_samples_.emplace_back(now, rate);
  }
  const Time bw_horizon = now - cfg_.bbr_bw_window;
  while (!bw_samples_.empty() && bw_samples_.front().first < bw_horizon) {
    bw_samples_.pop_front();
  }
  if (srtt_ > 0 && !meas_.rtt_ms.empty()) {
    rtprop_samples_.emplace_back(now,
                                 milliseconds(meas_.rtt_ms.back()));
  }
  const Time rt_horizon = now - cfg_.bbr_rtprop_window;
  while (!rtprop_samples_.empty() &&
         rtprop_samples_.front().first < rt_horizon) {
    rtprop_samples_.pop_front();
  }

  double bw = bbr_bw();
  const Time rtprop = bbr_rtprop();
  if (bw <= 0.0) return;

  // Long-term bandwidth sampling (policer detection). Epochs of ~4 rtprop;
  // two consecutive epochs with >20% retransmissions engage lt mode at the
  // epochs' delivered rate; after 48 rtprop the filter re-probes.
  const Time lt_epoch = 4 * rtprop;
  if (lt_epoch_start_ == 0) {
    lt_epoch_start_ = now;
    lt_epoch_delivered_ = delivered_total_;
    lt_epoch_tx_ = meas_.tx_times.size();
    lt_epoch_retx_ = retx_count_;
  } else if (now - lt_epoch_start_ >= lt_epoch) {
    const auto tx = meas_.tx_times.size() - lt_epoch_tx_;
    const auto retx = retx_count_ - lt_epoch_retx_;
    const double rate =
        static_cast<double>(delivered_total_ - lt_epoch_delivered_) * 8.0 /
        to_seconds(now - lt_epoch_start_);
    const double loss_ratio =
        tx > 0 ? static_cast<double>(retx) / static_cast<double>(tx) : 0.0;
    if (!lt_mode_) {
      if (loss_ratio > 0.2 && tx > 20) {
        if (++lt_high_loss_epochs_ >= 2) {
          lt_mode_ = true;
          lt_mode_entered_ = now;
          lt_bw_ = (rate + lt_prev_epoch_rate_) / 2.0;
        }
      } else {
        lt_high_loss_epochs_ = 0;
      }
      lt_prev_epoch_rate_ = rate;
    } else if (now - lt_mode_entered_ >= 48 * rtprop) {
      lt_mode_ = false;  // re-probe
      lt_high_loss_epochs_ = 0;
      bw_samples_.clear();
    }
    lt_epoch_start_ = now;
    lt_epoch_delivered_ = delivered_total_;
    lt_epoch_tx_ = meas_.tx_times.size();
    lt_epoch_retx_ = retx_count_;
  }
  if (lt_mode_ && lt_bw_ > 0.0) bw = lt_bw_;

  // Mode transitions.
  switch (bbr_mode_) {
    case BbrMode::Startup:
      if (bw > bbr_full_bw_ * 1.25) {
        bbr_full_bw_ = bw;
        bbr_full_bw_rounds_ = 0;
      } else if (++bbr_full_bw_rounds_ >= 3) {
        bbr_mode_ = BbrMode::Drain;  // pipe filled: drain the queue
      }
      break;
    case BbrMode::Drain:
      if (pipe() <= static_cast<std::int64_t>(bw / 8.0 *
                                              to_seconds(rtprop))) {
        bbr_mode_ = BbrMode::ProbeBw;
        bbr_cycle_index_ = 0;
        bbr_cycle_start_ = now;
      }
      break;
    case BbrMode::ProbeBw:
      if (now - bbr_cycle_start_ >= rtprop) {
        bbr_cycle_index_ = (bbr_cycle_index_ + 1) % 8;
        bbr_cycle_start_ = now;
      }
      break;
  }

  // cwnd: cap the pipe at cwnd_gain x BDP.
  const double bdp_bytes = bw / 8.0 * to_seconds(rtprop);
  cwnd_ = std::clamp(cfg_.bbr_cwnd_gain * bdp_bytes, 4.0 * mss_d(),
                     static_cast<double>(cfg_.max_cwnd_bytes));
}

// -------------------------------------------------------------- TcpReceiver

TcpReceiver::TcpReceiver(netsim::Simulator& sim, netsim::PacketIdSource& ids,
                         TcpConfig cfg, netsim::FlowId flow,
                         netsim::PacketSink* ack_out)
    : sim_(sim), ids_(ids), cfg_(cfg), flow_(flow), ack_out_(ack_out) {
  WEHEY_EXPECTS(ack_out_ != nullptr);
}

void TcpReceiver::receive(Packet pkt) {
  if (pkt.kind != PacketKind::Data) return;
  const Time now = sim_.now();
  deliveries_.push_back({now, pkt.payload});
  received_bytes_ += pkt.payload;
  owd_ms_.push_back(to_milliseconds(now - pkt.sent_at));

  const bool was_in_order = pkt.seq == rcv_next_;
  const std::uint64_t rcv_before = rcv_next_;
  if (pkt.seq == rcv_next_) {
    rcv_next_ += pkt.payload;
    // Drain any contiguous out-of-order data.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && it->first <= rcv_next_) {
      rcv_next_ = std::max(rcv_next_, it->first + it->second);
      it = out_of_order_.erase(it);
    }
  } else if (pkt.seq > rcv_next_) {
    out_of_order_.emplace(pkt.seq, pkt.payload);
  }
  // else: duplicate of already-delivered data; ACK re-states rcv_next_.

  if (on_deliver_ && rcv_next_ > rcv_before) {
    on_deliver_(static_cast<std::int64_t>(rcv_next_ - rcv_before));
  }

  const bool out_of_order = !out_of_order_.empty() || !was_in_order;
  if (!cfg_.delayed_acks || out_of_order) {
    // Immediate ACK: always for out-of-order data (dup-ACK/SACK latency
    // drives loss recovery), and for every segment when delayed ACKs are
    // off.
    send_ack(now);
    return;
  }
  if (++unacked_segments_ >= 2) {
    send_ack(now);
    return;
  }
  if (!delack_timer_pending_) {
    delack_timer_pending_ = true;
    const auto gen = ++delack_generation_;
    sim_.schedule(cfg_.delayed_ack_timeout, [this, gen] {
      if (delack_timer_pending_ && gen == delack_generation_) {
        send_ack(sim_.now());
      }
    });
  }
}

void TcpReceiver::send_ack(Time now) {
  unacked_segments_ = 0;
  delack_timer_pending_ = false;
  ++delack_generation_;
  Packet ack;
  ack.id = ids_.next();
  ack.flow = flow_;
  ack.kind = PacketKind::Ack;
  ack.size = cfg_.ack_bytes;
  ack.ack = rcv_next_;
  ack.sent_at = now;
  fill_sack_blocks(ack);
  ++acks_sent_;
  ack_out_->receive(std::move(ack));
}

void TcpReceiver::fill_sack_blocks(Packet& ack) const {
  // Merge the out-of-order buffer into contiguous ranges and report up to
  // kMaxSackBlocks of them, highest (most recent) first — like the SACK
  // option a real receiver builds.
  int used = 0;
  auto it = out_of_order_.rbegin();
  while (it != out_of_order_.rend() && used < netsim::kMaxSackBlocks) {
    std::uint64_t end = it->first + it->second;
    std::uint64_t start = it->first;
    // Extend the range downwards through contiguous entries.
    auto next = std::next(it);
    while (next != out_of_order_.rend() &&
           next->first + next->second == start) {
      start = next->first;
      ++next;
    }
    ack.sack[used].start = start;
    ack.sack[used].end = end;
    ++used;
    it = next;
  }
}

}  // namespace wehey::transport
