// UDP trace replay (§3.4).
//
// The sender replays an AppTrace packet-for-packet: original sizes and
// content, transmit times either as recorded or re-timed to a Poisson
// process (done beforehand by trace::poissonize — the PASTA modification).
// The client tracks packet loss from sequence-number gaps: a loss is
// registered when the first later packet arrives, which is close to the
// true drop time (much closer than TCP's retransmission-based estimate).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "netsim/measure.hpp"
#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"
#include "trace/trace.hpp"

namespace wehey::transport {

struct UdpConfig {
  std::uint32_t header_bytes = 28;  ///< IP+UDP overhead per packet
};

class UdpReplaySender {
 public:
  /// Schedules every packet of `t` starting at `start`. The trace must
  /// already carry the desired timing discipline.
  /// `policer_key` (0: the flow id) is the key a per-flow rate-limiter
  /// classifies on; the §7 countermeasure gives both replays one key.
  UdpReplaySender(netsim::Simulator& sim, netsim::PacketIdSource& ids,
                  UdpConfig cfg, netsim::FlowId flow, std::uint8_t dscp,
                  netsim::PacketSink* out, const trace::AppTrace& t,
                  Time start, netsim::FlowId policer_key = 0);

  std::uint64_t packets_scheduled() const { return scheduled_; }
  const std::vector<Time>& tx_times() const { return tx_times_; }
  Time start() const { return start_; }
  Time end() const { return end_; }

 private:
  std::vector<Time> tx_times_;
  std::uint64_t scheduled_ = 0;
  Time start_ = 0;
  Time end_ = 0;
};

class UdpReplayReceiver final : public netsim::PacketSink {
 public:
  explicit UdpReplayReceiver(netsim::Simulator& sim) : sim_(sim) {}

  void receive(netsim::Packet pkt) override;

  /// Account packets that never arrived at all (tail losses): call once
  /// after the replay with the sender's packet count; missing trailing
  /// sequence numbers are registered as lost at `at`.
  void finalize(std::uint64_t packets_sent, Time at);

  const std::vector<netsim::Delivery>& deliveries() const {
    return deliveries_;
  }
  const std::vector<Time>& loss_times() const { return loss_times_; }
  const std::vector<double>& delay_samples_ms() const { return owd_ms_; }
  std::uint64_t received_packets() const { return deliveries_.size(); }

 private:
  netsim::Simulator& sim_;
  std::uint64_t expected_seq_ = 0;
  std::vector<netsim::Delivery> deliveries_;
  std::vector<Time> loss_times_;
  std::vector<double> owd_ms_;
};

/// Assemble the combined path measurement from a UDP sender/receiver pair.
netsim::ReplayMeasurement udp_measurement(const UdpReplaySender& sender,
                                          const UdpReplayReceiver& receiver);

}  // namespace wehey::transport
