// A QUIC-like transport (§7: "We did not evaluate our system using QUIC;
// we believe it would perform similarly to whatever underlying congestion
// control algorithm is selected").
//
// The modelled differences from TCP that matter to WeHeY's measurements:
//
//  * every transmission gets a fresh *packet number*; retransmitted data
//    rides a new packet number, so the sender knows exactly which packets
//    were lost (no retransmission ambiguity and no Karn filtering);
//  * ACK frames carry packet-number ranges natively (no 3-block limit);
//  * loss is declared by the packet threshold (3 packets reordering) or
//    the time threshold (9/8 RTT), i.e. the sender's loss events are both
//    accurate and registered close to the true drop time — between TCP's
//    noisy retransmission-based estimate and UDP's client-side gaps;
//  * congestion control is pluggable (NewReno-style here, with pacing),
//    per QUIC's design.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/time.hpp"
#include "common/units.hpp"
#include "netsim/measure.hpp"
#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"

namespace wehey::transport {

struct QuicConfig {
  std::uint32_t max_payload = 1350;  ///< QUIC's typical UDP payload budget
  std::uint32_t header_bytes = 42;   ///< IP+UDP+QUIC short header
  std::uint32_t ack_bytes = 60;      ///< ACK-frame packet wire size
  double initial_cwnd_packets = 10.0;
  Time initial_rtt_guess = milliseconds(50);
  Time min_pto = milliseconds(200);  ///< probe timeout floor
  bool pacing = true;
  double pacing_gain = 1.25;
  int packet_threshold = 3;          ///< RFC 9002 kPacketThreshold
  double time_threshold = 9.0 / 8.0; ///< RFC 9002 kTimeThreshold
  std::int64_t max_cwnd_bytes = 8 * 1024 * 1024;
};

class QuicSender final : public netsim::PacketSink {
 public:
  QuicSender(netsim::Simulator& sim, netsim::PacketIdSource& ids,
             QuicConfig cfg, netsim::FlowId flow, std::uint8_t dscp,
             netsim::PacketSink* out);

  void set_policer_key(netsim::FlowId key) { policer_key_ = key; }
  void supply(std::int64_t bytes);
  bool complete() const;
  void set_on_complete(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }

  // ACK input.
  void receive(netsim::Packet pkt) override;

  const netsim::ReplayMeasurement& measurement() const { return meas_; }
  double cwnd_bytes() const { return cwnd_; }
  Time srtt() const { return srtt_; }
  std::uint64_t packets_declared_lost() const { return lost_count_; }
  std::uint64_t probe_timeouts() const { return pto_count_; }

 private:
  struct Sent {
    std::uint64_t offset = 0;  ///< stream offset carried
    std::uint32_t len = 0;
    Time sent_at = 0;
  };

  void maybe_send();
  void send_packet(std::uint64_t offset, std::uint32_t len);
  void detect_losses(Time now);
  void declare_lost(std::uint64_t pn, const Sent& info, Time now);
  void on_pto();
  void arm_pto();
  double pacing_rate() const;
  double mss_d() const { return static_cast<double>(cfg_.max_payload); }

  netsim::Simulator& sim_;
  netsim::PacketIdSource& ids_;
  QuicConfig cfg_;
  netsim::FlowId flow_;
  netsim::FlowId policer_key_ = 0;
  std::uint8_t dscp_;
  netsim::PacketSink* out_;

  // Stream state.
  std::int64_t supplied_ = 0;
  std::uint64_t stream_next_ = 0;   ///< next fresh stream byte
  std::int64_t acked_stream_ = 0;   ///< stream bytes known delivered
  std::deque<std::pair<std::uint64_t, std::uint32_t>> retransmit_queue_;

  // Packet-number space.
  std::uint64_t next_pn_ = 0;
  std::uint64_t largest_acked_pn_ = 0;
  bool any_acked_ = false;
  std::map<std::uint64_t, Sent> unacked_;  // pn -> info
  std::int64_t bytes_in_flight_ = 0;

  // Congestion control (NewReno-style) + RTT.
  double cwnd_ = 0;
  double ssthresh_ = 0;
  Time srtt_ = 0;
  Time rttvar_ = 0;
  Time recovery_start_ = -1;  ///< loss events in one RTT count once

  // Pacing / PTO.
  Time pace_next_ = 0;
  bool pace_timer_pending_ = false;
  bool pto_armed_ = false;
  std::uint64_t pto_generation_ = 0;
  int pto_backoff_ = 0;

  netsim::ReplayMeasurement meas_;
  std::uint64_t lost_count_ = 0;
  std::uint64_t pto_count_ = 0;
  std::function<void()> on_complete_;
  bool completed_notified_ = false;
};

class QuicReceiver final : public netsim::PacketSink {
 public:
  QuicReceiver(netsim::Simulator& sim, netsim::PacketIdSource& ids,
               QuicConfig cfg, netsim::FlowId flow,
               netsim::PacketSink* ack_out);

  void receive(netsim::Packet pkt) override;

  const std::vector<netsim::Delivery>& deliveries() const {
    return deliveries_;
  }
  const std::vector<double>& delay_samples_ms() const { return owd_ms_; }
  std::int64_t received_stream_bytes() const { return stream_received_; }

 private:
  void send_ack(Time now);

  netsim::Simulator& sim_;
  netsim::PacketIdSource& ids_;
  QuicConfig cfg_;
  netsim::FlowId flow_;
  netsim::PacketSink* ack_out_;

  // Received packet numbers, as maximal ranges [first, last].
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges_;
  std::map<std::uint64_t, std::uint32_t> stream_segments_;  // offset -> len
  std::uint64_t stream_contiguous_ = 0;
  std::int64_t stream_received_ = 0;
  std::vector<netsim::Delivery> deliveries_;
  std::vector<double> owd_ms_;
};

}  // namespace wehey::transport
