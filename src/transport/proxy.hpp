// A transparent split-TCP proxy (§7: "middleboxes such as transparent TCP
// proxies may hide end-to-end packet loss from the server").
//
// The proxy terminates the upstream connection (it ACKs the origin
// server's segments itself) and re-originates a downstream connection to
// the client. Losses downstream of the proxy are repaired by the *proxy's*
// sender, so the origin server's retransmission-based loss estimate goes
// dark — exactly the measurement blind spot the paper discusses. The
// client-side application-layer throughput still reflects the throttling.
#pragma once

#include <memory>

#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"
#include "transport/tcp.hpp"

namespace wehey::transport {

class SplitTcpProxy {
 public:
  /// The proxy forwards flow `upstream_flow` arriving from the origin to
  /// a new downstream connection `downstream_flow` toward `downstream`
  /// (the next network element toward the client). `upstream_ack_out` is
  /// the reverse path back to the origin server.
  SplitTcpProxy(netsim::Simulator& sim, netsim::PacketIdSource& ids,
                const TcpConfig& cfg, netsim::FlowId upstream_flow,
                netsim::FlowId downstream_flow, std::uint8_t dscp,
                netsim::PacketSink* upstream_ack_out,
                netsim::PacketSink* downstream);

  /// Upstream-facing data input (wire packets from the origin server).
  netsim::PacketSink& upstream_in() { return *upstream_rx_; }
  /// Downstream-facing ACK input (ACKs from the client).
  netsim::PacketSink& downstream_ack_in() { return *downstream_tx_; }

  const TcpSender& downstream_sender() const { return *downstream_tx_; }
  const TcpReceiver& upstream_receiver() const { return *upstream_rx_; }
  std::int64_t bytes_relayed() const { return relayed_; }

 private:
  std::unique_ptr<TcpReceiver> upstream_rx_;
  std::unique_ptr<TcpSender> downstream_tx_;
  std::int64_t relayed_ = 0;
};

}  // namespace wehey::transport
