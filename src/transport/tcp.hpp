// A from-scratch TCP implementation sufficient for the paper's setting:
// bulk/chunked data transfer over a differentiated bottleneck, with the
// sender-side behaviours WeHeY depends on:
//
//  * CUBIC congestion control (RFC 8312 window growth, beta = 0.7) with a
//    NewReno-style fast retransmit / fast recovery loss response and an
//    RFC 6298 retransmission timer,
//  * optional TCP pacing (cwnd/srtt-rate spacing of segments) — the trace
//    "modification" of §3.4 that plays the role Poisson re-timing plays
//    for UDP,
//  * retransmission-based loss estimation at the sender: each
//    retransmission is registered as one loss event *at the time of the
//    retransmission*, reproducing both error types the paper describes in
//    §4.2 (over-counting, and desynchronization relative to the true drop
//    time).
//
// The receiver ACKs every data segment cumulatively and attaches SACK
// blocks for out-of-order data; the sender runs RFC 6675-style pipe
// accounting and hole repair, like the Linux stacks the paper's testbed
// used.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>

#include "common/time.hpp"
#include "common/units.hpp"
#include "netsim/measure.hpp"
#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"
#include "obs/hotpath.hpp"

namespace wehey::transport {

/// Congestion-control algorithm of a sender. Cubic matches the paper's
/// evaluation; NewReno is kept for ablations; Bbr is a model-level BBRv1
/// (windowed-max bandwidth / windowed-min RTT, startup/drain/probe-bw
/// gain cycling, loss-tolerant) for the §7 open question of how loss
/// correlations behave under BBR.
enum class CongestionControl { Cubic, NewReno, Bbr };

struct TcpConfig {
  std::uint32_t mss = 1448;         ///< payload bytes per segment
  std::uint32_t header_bytes = 52;  ///< IP+TCP wire overhead per segment
  std::uint32_t ack_bytes = 52;     ///< wire size of a pure ACK
  double initial_cwnd_segments = 10.0;
  Time initial_rtt_guess = milliseconds(50);  ///< pacing before first RTT
  Time min_rto = milliseconds(200);
  Time max_rto = seconds(10);
  bool pacing = true;
  double pacing_gain_slow_start = 2.0;
  double pacing_gain_avoidance = 1.2;
  CongestionControl cc = CongestionControl::Cubic;
  double cubic_c = 0.4;
  double cubic_beta = 0.7;
  std::int64_t max_cwnd_bytes = 8 * 1024 * 1024;

  // Receiver: delayed ACKs (RFC 1122): ACK every 2nd in-order segment or
  // after the delayed-ACK timer; out-of-order data is ACKed immediately
  // (dup-ACK/SACK latency is unaffected). Off by default — WeHe clients
  // effectively see per-packet ACKs on the paths that matter here, and
  // the evaluation is calibrated that way.
  bool delayed_acks = false;
  Time delayed_ack_timeout = milliseconds(40);

  // BBR model parameters.
  double bbr_startup_gain = 2.885;
  double bbr_cwnd_gain = 2.0;
  Time bbr_bw_window = milliseconds(350);  ///< ~10 RTTs at the default RTT
  Time bbr_rtprop_window = seconds(10);
};

class TcpSender final : public netsim::PacketSink {
 public:
  /// `out` is the first element of the forward (data) path. ACKs arrive
  /// via receive().
  TcpSender(netsim::Simulator& sim, netsim::PacketIdSource& ids,
            TcpConfig cfg, netsim::FlowId flow, std::uint8_t dscp,
            netsim::PacketSink* out);

  /// Key stamped into Packet::policer_key (0: the flow id). The §7
  /// same-flow countermeasure gives two replays the same key.
  void set_policer_key(netsim::FlowId key) { policer_key_ = key; }

  /// Make `bytes` more application data available to send.
  void supply(std::int64_t bytes);
  /// Returns true once every supplied byte has been cumulatively acked.
  bool complete() const;
  /// Invoked (once) when complete() becomes true.
  void set_on_complete(std::function<void()> cb) { on_complete_ = std::move(cb); }

  // ACK input.
  void receive(netsim::Packet pkt) override;

  /// Sender-side measurements: transmissions, retransmission-based loss
  /// events, RTT samples. Deliveries are recorded by the receiver.
  const netsim::ReplayMeasurement& measurement() const { return meas_; }
  netsim::ReplayMeasurement& measurement() { return meas_; }

  double cwnd_bytes() const { return cwnd_; }
  double ssthresh_bytes() const { return ssthresh_; }
  Time srtt() const { return srtt_; }
  std::uint64_t retransmissions() const { return retx_count_; }
  std::uint64_t timeouts() const { return timeout_count_; }

  // State inspection (tests, debugging).
  bool in_recovery() const { return in_recovery_; }
  std::uint64_t una() const { return una_; }
  std::uint64_t next_seq() const { return next_seq_; }
  int dup_ack_count() const { return dup_acks_; }
  std::int64_t pipe_bytes() const { return pipe(); }
  std::int64_t sacked_bytes() const { return sacked_bytes_; }

 private:
  struct Segment {
    std::uint32_t len = 0;
    Time first_sent = 0;
    std::int64_t delivered_at_send = 0;  ///< BBR delivery-rate sampling
    bool retransmitted = false;
    bool sacked = false;            ///< covered by a received SACK block
    bool lost = false;              ///< deemed lost (RFC 6675 IsLost)
    bool retx_in_recovery = false;  ///< already repaired this recovery
  };
  using SegmentMap = std::map<std::uint64_t, Segment>;

  void maybe_send();
  void send_new_segment();
  void transmit(std::uint64_t seq, const Segment& seg, bool is_retx);
  void retransmit_front(bool timeout);
  void apply_sack(const netsim::Packet& ack_pkt);
  /// SACK-based hole repair: retransmit unsacked holes while the pipe has
  /// room (RFC 6675 in spirit).
  void sack_retransmit();
  /// Outstanding bytes believed in flight: sent data minus SACKed minus
  /// deemed-lost (RFC 6675's pipe).
  std::int64_t pipe() const {
    return inflight() - sacked_bytes_ - lost_bytes_;
  }
  void on_new_ack(std::uint64_t ack, Time now);
  void update_rtt(Time sample);
  void arm_rto();
  void cancel_rto() { ++rto_generation_; rto_armed_ = false; }
  void on_rto();
  void slow_start_or_avoid(std::int64_t acked_bytes, Time now);
  void cubic_on_ack(Time now);
  void enter_loss_recovery(bool timeout);
  double pacing_rate() const;  // bits/sec
  double cwnd_segments() const { return cwnd_ / mss_d(); }
  double mss_d() const { return static_cast<double>(cfg_.mss); }
  std::int64_t inflight() const {
    return static_cast<std::int64_t>(next_seq_ - una_);
  }

  netsim::Simulator& sim_;
  netsim::PacketIdSource& ids_;
  TcpConfig cfg_;
  netsim::FlowId flow_;
  netsim::FlowId policer_key_ = 0;
  std::uint8_t dscp_;
  netsim::PacketSink* out_;

  // Application data.
  std::int64_t supplied_ = 0;
  std::int64_t available_ = 0;  ///< supplied but not yet sent

  // Sequence state (byte sequence numbers).
  std::uint64_t una_ = 0;       ///< lowest unacked byte
  std::uint64_t next_seq_ = 0;  ///< next new byte to send
  SegmentMap outstanding_;
  std::int64_t sacked_bytes_ = 0;
  std::int64_t lost_bytes_ = 0;
  std::uint64_t highest_sacked_ = 0;   ///< highest SACKed byte + 1
  std::uint64_t loss_scan_floor_ = 0;  ///< below this all segs classified

  // Congestion control.
  double cwnd_ = 0;
  double ssthresh_ = 0;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  bool rto_recovery_ = false;  ///< recovery entered via timeout: slow-start
                               ///< regrowth while repairing
  std::uint64_t recover_ = 0;  ///< recovery ends when una_ passes this

  // CUBIC state (segment units, per RFC 8312).
  double w_max_ = 0;
  Time epoch_start_ = -1;
  double cubic_k_ = 0;
  double w_est_ = 0;

  // BBR state (model-level BBRv1).
  enum class BbrMode { Startup, Drain, ProbeBw };
  void bbr_on_ack(std::int64_t acked_bytes, Time now,
                  std::int64_t delivered_at_send, Time sent_at);
  double bbr_bw() const;      ///< windowed-max delivery rate (bits/sec)
  Time bbr_rtprop() const;    ///< windowed-min RTT
  double bbr_pacing_gain() const;
  BbrMode bbr_mode_ = BbrMode::Startup;
  std::int64_t delivered_total_ = 0;
  std::deque<std::pair<Time, double>> bw_samples_;   // (time, bits/sec)
  std::deque<std::pair<Time, Time>> rtprop_samples_; // (time, rtt)
  double bbr_full_bw_ = 0;
  int bbr_full_bw_rounds_ = 0;
  int bbr_cycle_index_ = 0;
  Time bbr_cycle_start_ = 0;
  // Long-term ("lt") bandwidth sampling: Linux BBRv1's policer detection.
  // Sustained high loss over consecutive sampling epochs pins the pacing
  // rate to the long-term delivered rate instead of the (burst-inflated)
  // windowed max, until a re-probe interval elapses.
  bool lt_mode_ = false;
  double lt_bw_ = 0;                ///< bits/sec while in lt mode
  Time lt_mode_entered_ = 0;
  Time lt_epoch_start_ = 0;
  std::int64_t lt_epoch_delivered_ = 0;
  std::uint64_t lt_epoch_tx_ = 0;
  std::uint64_t lt_epoch_retx_ = 0;
  int lt_high_loss_epochs_ = 0;
  double lt_prev_epoch_rate_ = 0;

  // RTT estimation / RTO (RFC 6298).
  Time srtt_ = 0;
  Time rttvar_ = 0;
  Time rto_ = seconds(1);
  bool rto_armed_ = false;
  std::uint64_t rto_generation_ = 0;

  // Pacing.
  Time pace_next_ = 0;
  bool pace_timer_pending_ = false;
  Time last_send_ = 0;
  Time last_loss_event_ = -1;  ///< RTT-sampling guard (see update path)

  netsim::ReplayMeasurement meas_;
  std::uint64_t retx_count_ = 0;
  std::uint64_t timeout_count_ = 0;
  std::function<void()> on_complete_;
  bool completed_notified_ = false;

  // Hot-path observability (no-ops unless a Recorder is bound): RTT
  // sample and smoothed-RTT distributions, retransmit / timeout tallies.
  obs::HistogramHandle rtt_obs_{"tcp.rtt_ms", 0.0, 400.0, 80};
  obs::HistogramHandle srtt_obs_{"tcp.srtt_ms", 0.0, 400.0, 80};
  obs::CounterHandle retx_obs_{"tcp.retx_segments"};
  obs::CounterHandle rto_obs_{"tcp.rto_timeouts"};
};

class TcpReceiver final : public netsim::PacketSink {
 public:
  /// `ack_out` is the first element of the reverse (ACK) path back to the
  /// sender.
  TcpReceiver(netsim::Simulator& sim, netsim::PacketIdSource& ids,
              TcpConfig cfg, netsim::FlowId flow,
              netsim::PacketSink* ack_out);

  void receive(netsim::Packet pkt) override;

  std::uint64_t acks_sent() const { return acks_sent_; }

  /// Invoked with the number of new bytes each time in-order data is
  /// delivered (the application-layer read stream). Used by split-TCP
  /// middleboxes and application-layer measurement.
  void set_on_deliver(std::function<void(std::int64_t)> cb) {
    on_deliver_ = std::move(cb);
  }

  /// Client-side arrivals (throughput measurement basis).
  const std::vector<netsim::Delivery>& deliveries() const {
    return deliveries_;
  }
  /// One-way-delay samples observed at the client, in ms.
  const std::vector<double>& delay_samples_ms() const { return owd_ms_; }
  std::uint64_t received_packets() const { return deliveries_.size(); }
  /// All payload bytes that arrived, duplicates included (wire view).
  std::int64_t received_bytes() const { return received_bytes_; }
  /// In-order bytes delivered to the application (the read stream).
  std::int64_t received_in_order_bytes() const {
    return static_cast<std::int64_t>(rcv_next_);
  }

 private:
  netsim::Simulator& sim_;
  netsim::PacketIdSource& ids_;
  TcpConfig cfg_;
  netsim::FlowId flow_;
  netsim::PacketSink* ack_out_;

  void fill_sack_blocks(netsim::Packet& ack) const;
  void send_ack(Time now);

  std::uint64_t rcv_next_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::function<void(std::int64_t)> on_deliver_;
  int unacked_segments_ = 0;       // delayed-ACK counter
  bool delack_timer_pending_ = false;
  std::uint64_t delack_generation_ = 0;
  std::map<std::uint64_t, std::uint32_t> out_of_order_;  // seq -> len
  std::vector<netsim::Delivery> deliveries_;
  std::vector<double> owd_ms_;
  std::int64_t received_bytes_ = 0;
};

}  // namespace wehey::transport
