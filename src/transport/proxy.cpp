#include "transport/proxy.hpp"

#include "common/check.hpp"

namespace wehey::transport {

SplitTcpProxy::SplitTcpProxy(netsim::Simulator& sim,
                             netsim::PacketIdSource& ids,
                             const TcpConfig& cfg,
                             netsim::FlowId upstream_flow,
                             netsim::FlowId downstream_flow,
                             std::uint8_t dscp,
                             netsim::PacketSink* upstream_ack_out,
                             netsim::PacketSink* downstream) {
  WEHEY_EXPECTS(upstream_ack_out != nullptr);
  WEHEY_EXPECTS(downstream != nullptr);
  downstream_tx_ = std::make_unique<TcpSender>(sim, ids, cfg,
                                               downstream_flow, dscp,
                                               downstream);
  upstream_rx_ = std::make_unique<TcpReceiver>(sim, ids, cfg, upstream_flow,
                                               upstream_ack_out);
  // Every in-order byte read from the upstream connection is written to
  // the downstream one.
  upstream_rx_->set_on_deliver([this](std::int64_t bytes) {
    relayed_ += bytes;
    downstream_tx_->supply(bytes);
  });
}

}  // namespace wehey::transport
