// Wire mapping of the netsim::Packet fields for QUIC packets:
//   Data packets: seq = packet number, ack = stream offset, payload = len.
//   ACK packets:  ack = largest acked packet number; sack[] = acked
//                 packet-number ranges [start, end).
#include "transport/quic.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace wehey::transport {

using netsim::Packet;
using netsim::PacketKind;

// ---------------------------------------------------------------- sender

QuicSender::QuicSender(netsim::Simulator& sim, netsim::PacketIdSource& ids,
                       QuicConfig cfg, netsim::FlowId flow,
                       std::uint8_t dscp, netsim::PacketSink* out)
    : sim_(sim), ids_(ids), cfg_(cfg), flow_(flow), dscp_(dscp), out_(out) {
  WEHEY_EXPECTS(out_ != nullptr);
  cwnd_ = cfg_.initial_cwnd_packets * mss_d();
  ssthresh_ = static_cast<double>(cfg_.max_cwnd_bytes);
  meas_.start = sim_.now();
}

void QuicSender::supply(std::int64_t bytes) {
  WEHEY_EXPECTS(bytes > 0);
  supplied_ += bytes;
  completed_notified_ = false;
  maybe_send();
}

bool QuicSender::complete() const {
  return supplied_ > 0 && acked_stream_ >= supplied_;
}

double QuicSender::pacing_rate() const {
  const Time rtt = srtt_ > 0 ? srtt_ : cfg_.initial_rtt_guess;
  return std::max(cwnd_ * 8.0 / to_seconds(rtt) * cfg_.pacing_gain,
                  8.0 * mss_d());
}

void QuicSender::maybe_send() {
  while (bytes_in_flight_ + static_cast<std::int64_t>(cfg_.max_payload) <=
         static_cast<std::int64_t>(cwnd_) + cfg_.max_payload - 1) {
    const bool have_retx = !retransmit_queue_.empty();
    const std::int64_t fresh =
        supplied_ - static_cast<std::int64_t>(stream_next_);
    if (!have_retx && fresh <= 0) return;

    if (cfg_.pacing && sim_.now() < pace_next_) {
      if (!pace_timer_pending_) {
        pace_timer_pending_ = true;
        sim_.schedule_at(pace_next_, [this] {
          pace_timer_pending_ = false;
          maybe_send();
        });
      }
      return;
    }
    if (have_retx) {
      const auto [offset, len] = retransmit_queue_.front();
      retransmit_queue_.pop_front();
      send_packet(offset, len);
    } else {
      const auto len = static_cast<std::uint32_t>(
          std::min<std::int64_t>(fresh, cfg_.max_payload));
      send_packet(stream_next_, len);
      stream_next_ += len;
    }
  }
}

void QuicSender::send_packet(std::uint64_t offset, std::uint32_t len) {
  const std::uint64_t pn = next_pn_++;
  unacked_.emplace(pn, Sent{offset, len, sim_.now()});
  bytes_in_flight_ += len + cfg_.header_bytes;

  Packet pkt;
  pkt.id = ids_.next();
  pkt.flow = flow_;
  pkt.policer_key = policer_key_;
  pkt.kind = PacketKind::Data;
  pkt.size = len + cfg_.header_bytes;
  pkt.dscp = dscp_;
  pkt.seq = pn;
  pkt.ack = offset;
  pkt.payload = len;
  pkt.sent_at = sim_.now();

  meas_.tx_times.push_back(sim_.now());
  if (cfg_.pacing) {
    const Time gap = static_cast<Time>(static_cast<double>(pkt.size) * 8.0 /
                                       pacing_rate() *
                                       static_cast<double>(kSecond));
    pace_next_ = std::max(pace_next_, sim_.now()) + std::max<Time>(gap, 1);
  }
  out_->receive(std::move(pkt));
  if (!pto_armed_) arm_pto();
}

void QuicSender::receive(Packet pkt) {
  if (pkt.kind != PacketKind::Ack) return;
  const Time now = sim_.now();

  std::int64_t newly_acked_bytes = 0;
  Time largest_sent_at = -1;
  for (const auto& block : pkt.sack) {
    if (block.empty()) continue;
    for (auto it = unacked_.lower_bound(block.start);
         it != unacked_.end() && it->first < block.end;) {
      newly_acked_bytes += it->second.len;
      bytes_in_flight_ -= it->second.len + cfg_.header_bytes;
      acked_stream_ += it->second.len;
      if (it->first >= largest_acked_pn_) {
        largest_acked_pn_ = it->first;
        any_acked_ = true;
        largest_sent_at = it->second.sent_at;
      }
      it = unacked_.erase(it);
    }
  }

  if (largest_sent_at >= 0) {
    Time sample = now - largest_sent_at;
    if (sample <= 0) sample = 1;
    meas_.rtt_ms.push_back(to_milliseconds(sample));
    if (srtt_ == 0) {
      srtt_ = sample;
      rttvar_ = sample / 2;
    } else {
      const Time err = std::abs(srtt_ - sample);
      rttvar_ = (3 * rttvar_ + err) / 4;
      srtt_ = (7 * srtt_ + sample) / 8;
    }
    pto_backoff_ = 0;
  }

  if (newly_acked_bytes > 0) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(newly_acked_bytes);  // slow start
    } else {
      cwnd_ += mss_d() * static_cast<double>(newly_acked_bytes) / cwnd_;
    }
    cwnd_ = std::min(cwnd_, static_cast<double>(cfg_.max_cwnd_bytes));
    if (unacked_.empty() && retransmit_queue_.empty()) {
      pto_armed_ = false;
      ++pto_generation_;
    } else {
      arm_pto();
    }
  }

  detect_losses(now);
  maybe_send();

  if (complete() && !completed_notified_) {
    completed_notified_ = true;
    meas_.end = now;
    if (on_complete_) on_complete_();
  }
}

void QuicSender::detect_losses(Time now) {
  if (!any_acked_) return;
  const Time rtt = srtt_ > 0 ? srtt_ : cfg_.initial_rtt_guess;
  const Time time_limit =
      static_cast<Time>(cfg_.time_threshold * static_cast<double>(rtt));
  std::vector<std::uint64_t> lost;
  for (const auto& [pn, info] : unacked_) {
    if (pn >= largest_acked_pn_) break;  // map is ordered
    const bool by_packets =
        largest_acked_pn_ >= pn + static_cast<std::uint64_t>(
                                      cfg_.packet_threshold);
    const bool by_time = now - info.sent_at >= time_limit;
    if (by_packets || by_time) lost.push_back(pn);
  }
  for (std::uint64_t pn : lost) {
    const auto it = unacked_.find(pn);
    declare_lost(pn, it->second, now);
    unacked_.erase(it);
  }
}

void QuicSender::declare_lost(std::uint64_t pn, const Sent& info,
                              Time now) {
  bytes_in_flight_ -= info.len + cfg_.header_bytes;
  retransmit_queue_.emplace_back(info.offset, info.len);
  // The loss event is registered when declared — close to the true drop
  // time (one packet-threshold's worth of arrivals later), with no
  // over-counting: QUIC's measurement advantage over TCP retransmissions.
  meas_.loss_times.push_back(now);
  ++lost_count_;
  // One congestion response per recovery epoch (RFC 9002 §7.3).
  if (info.sent_at > recovery_start_) {
    recovery_start_ = now;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss_d());
    cwnd_ = ssthresh_;
  }
  (void)pn;
}

void QuicSender::arm_pto() {
  ++pto_generation_;
  pto_armed_ = true;
  const Time rtt = srtt_ > 0 ? srtt_ : cfg_.initial_rtt_guess;
  const Time pto = std::max(cfg_.min_pto, rtt + 4 * rttvar_)
                   << std::min(pto_backoff_, 6);
  const auto gen = pto_generation_;
  sim_.schedule(pto, [this, gen] {
    if (pto_armed_ && gen == pto_generation_) on_pto();
  });
}

void QuicSender::on_pto() {
  if (unacked_.empty() && retransmit_queue_.empty()) {
    pto_armed_ = false;
    return;
  }
  ++pto_count_;
  ++pto_backoff_;
  // Probe: re-send the oldest unacked data under a fresh packet number.
  if (!unacked_.empty()) {
    const auto it = unacked_.begin();
    declare_lost(it->first, it->second, sim_.now());
    unacked_.erase(it);
  }
  arm_pto();
  maybe_send();
}

// -------------------------------------------------------------- receiver

QuicReceiver::QuicReceiver(netsim::Simulator& sim,
                           netsim::PacketIdSource& ids, QuicConfig cfg,
                           netsim::FlowId flow, netsim::PacketSink* ack_out)
    : sim_(sim), ids_(ids), cfg_(cfg), flow_(flow), ack_out_(ack_out) {
  WEHEY_EXPECTS(ack_out_ != nullptr);
}

void QuicReceiver::receive(Packet pkt) {
  if (pkt.kind != PacketKind::Data) return;
  const Time now = sim_.now();
  deliveries_.push_back({now, pkt.payload});
  owd_ms_.push_back(to_milliseconds(now - pkt.sent_at));

  // Merge the packet number into the range set.
  const std::uint64_t pn = pkt.seq;
  bool merged = false;
  for (auto& [first, last] : ranges_) {
    if (pn + 1 == first) {
      first = pn;
      merged = true;
      break;
    }
    if (pn == last + 1) {
      last = pn;
      merged = true;
      break;
    }
    if (pn >= first && pn <= last) {
      merged = true;  // duplicate
      break;
    }
  }
  if (!merged) ranges_.emplace_back(pn, pn);
  // Coalesce adjacent ranges (kept sorted by first).
  std::sort(ranges_.begin(), ranges_.end());
  for (std::size_t i = 1; i < ranges_.size();) {
    if (ranges_[i].first <= ranges_[i - 1].second + 1) {
      ranges_[i - 1].second = std::max(ranges_[i - 1].second,
                                       ranges_[i].second);
      ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  // Stream reassembly (deduplicated by offset).
  const std::uint64_t offset = pkt.ack;
  if (stream_segments_.emplace(offset, pkt.payload).second) {
    stream_received_ += pkt.payload;
  }
  auto it = stream_segments_.find(stream_contiguous_);
  while (it != stream_segments_.end()) {
    stream_contiguous_ += it->second;
    it = stream_segments_.find(stream_contiguous_);
  }

  send_ack(now);
}

void QuicReceiver::send_ack(Time now) {
  Packet ack;
  ack.id = ids_.next();
  ack.flow = flow_;
  ack.kind = PacketKind::Ack;
  ack.size = cfg_.ack_bytes;
  ack.sent_at = now;
  // Highest ranges first, as QUIC ACK frames are encoded.
  ack.ack = ranges_.empty() ? 0 : ranges_.back().second;
  int used = 0;
  for (auto it = ranges_.rbegin();
       it != ranges_.rend() && used < netsim::kMaxSackBlocks; ++it) {
    ack.sack[used].start = it->first;
    ack.sack[used].end = it->second + 1;  // [start, end)
    ++used;
  }
  ack_out_->receive(std::move(ack));
}

}  // namespace wehey::transport
