// Discrete-event simulation core.
//
// A Simulator owns a time-ordered queue of closures. Components schedule
// work with schedule()/schedule_at(); ties are broken by insertion order so
// runs are fully deterministic. This plays the role ns-3's scheduler and
// the wall clock of the wide-area testbed play in the paper.
//
// The event queue is an EventHeap (owned binary heap + slot-pooled
// InplaceAction payloads). schedule()/schedule_at() forward the callable
// straight into its pool slot and run() invokes it in place, so the
// per-event hot path performs one capture construction and — for typical
// captures — no heap allocation at all.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/time.hpp"
#include "netsim/event_heap.hpp"

namespace wehey::obs {
class Recorder;
}

namespace wehey::netsim {

/// Per-trial resource ceilings, both pure sim quantities (dispatched
/// event count and absolute sim time) so budget verdicts are identical
/// across WEHEY_THREADS and host speeds. 0 disables a ceiling. Resolved
/// from the environment by parallel::trial_budget_from_env().
struct TrialBudget {
  std::uint64_t max_events = 0;  ///< cumulative dispatched events; 0 = off
  Time max_sim_time = 0;         ///< absolute sim-clock ceiling; 0 = off
  bool limited() const { return max_events > 0 || max_sim_time > 0; }
};

class Simulator {
 public:
  using Action = EventHeap::Action;

  Time now() const { return now_; }

  /// Run `action` `delay` from now (delay >= 0).
  template <typename F>
  void schedule(Time delay, F&& action) {
    WEHEY_EXPECTS(delay >= 0);
    schedule_at(now_ + delay, std::forward<F>(action));
  }

  /// Run `action` at absolute time `at` (not in the past).
  template <typename F>
  void schedule_at(Time at, F&& action) {
    WEHEY_EXPECTS(at >= now_);
    queue_.push(at, std::forward<F>(action));
  }

  /// From within a running event only: schedule the currently executing
  /// action to run again `delay` from now, reusing its storage and state —
  /// no copy, no allocation. The cheap path for periodic timers and
  /// self-perpetuating event chains. Takes effect when the event returns;
  /// the repeat fires after any same-time events the action scheduled.
  void reschedule_current(Time delay) {
    WEHEY_EXPECTS(delay >= 0);
    queue_.rearm_current(now_ + delay);
  }

  /// Process events until the queue is empty or `until` is reached; the
  /// clock ends at `until` if given, else at the last event. When an
  /// obs::Recorder is bound to the calling thread the loop additionally
  /// counts dispatched events, tracks the peak heap depth, and (with
  /// tracing on) samples the pending-event count into the timeline; with
  /// no recorder bound the original zero-overhead dispatch loop runs.
  void run(Time until = -1);

  /// Drop all pending events (used between experiment phases; must not be
  /// called from inside a running event). The clock `now_` is intentionally
  /// preserved: consecutive phases of one experiment share a timeline, and
  /// components scheduled against the running clock must never observe time
  /// moving backwards.
  void clear();

  /// Number of queued events. When called from inside a running event, the
  /// count still includes that event (it is retired when it returns).
  std::size_t pending_events() const { return queue_.size(); }

  /// Install a per-trial budget. Call once, right after construction:
  /// the event count is cumulative across run() calls, and runs that
  /// already happened were not counted.
  void set_trial_budget(const TrialBudget& budget) { budget_ = budget; }
  const TrialBudget& trial_budget() const { return budget_; }

  /// True once a budget ceiling cut a run() short of what its caller
  /// asked for. From then on run() is a no-op — the trial is over; the
  /// caller surfaces a BudgetExhausted outcome instead of spinning.
  bool budget_exhausted() const { return exhausted_ != Exhausted::kNone; }

  /// Machine-readable cause: "events" or "sim_time" once exhausted,
  /// "" before that.
  const char* budget_reason() const {
    switch (exhausted_) {
      case Exhausted::kNone: return "";
      case Exhausted::kEvents: return "events";
      case Exhausted::kSimTime: return "sim_time";
    }
    return "";
  }

  /// Events dispatched so far — counted only while a budget is installed.
  std::uint64_t budget_events_dispatched() const { return dispatched_; }

 private:
  enum class Exhausted { kNone, kEvents, kSimTime };

  /// The dispatch loop with observability hooks (out of line so the
  /// common no-recorder path stays a single inlined run_until call).
  /// Dispatches at most `max_events` events; returns how many ran.
  std::uint64_t run_observed(Time until, obs::Recorder& rec,
                             std::uint64_t max_events);

  /// The dispatch loop under an installed budget (with or without a
  /// recorder); sets `exhausted_` when a ceiling actually bit.
  void run_budgeted(Time until);

  Time now_ = 0;
  EventHeap queue_;
  TrialBudget budget_;
  std::uint64_t dispatched_ = 0;  ///< budget-mode cumulative event count
  Exhausted exhausted_ = Exhausted::kNone;
};

}  // namespace wehey::netsim
