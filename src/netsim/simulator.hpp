// Discrete-event simulation core.
//
// A Simulator owns a time-ordered queue of closures. Components schedule
// work with schedule()/schedule_at(); ties are broken by insertion order so
// runs are fully deterministic. This plays the role ns-3's scheduler and
// the wall clock of the wide-area testbed play in the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace wehey::netsim {

class Simulator {
 public:
  using Action = std::function<void()>;

  Time now() const { return now_; }

  /// Run `action` `delay` from now (delay >= 0).
  void schedule(Time delay, Action action) {
    WEHEY_EXPECTS(delay >= 0);
    schedule_at(now_ + delay, std::move(action));
  }

  /// Run `action` at absolute time `at` (not in the past).
  void schedule_at(Time at, Action action) {
    WEHEY_EXPECTS(at >= now_);
    queue_.push(Event{at, next_seq_++, std::move(action)});
  }

  /// Process events until the queue is empty or `until` is reached; the
  /// clock ends at `until` if given, else at the last event.
  void run(Time until = -1);

  /// Drop all pending events (used between experiment phases).
  void clear();

  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace wehey::netsim
