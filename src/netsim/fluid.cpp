#include "netsim/fluid.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace wehey::netsim {

namespace {

/// Fraction of a link's nominal capacity the fluid aggregate may use; the
/// remainder is headroom so packet traffic never sees a zero-rate link
/// even under full fluid pressure (Link floors its effective bandwidth
/// too — this keeps the fluid model consistent with that floor).
constexpr double kLinkShare = 0.95;

/// Standing fluid queue allowed per hop before overflow counts as loss:
/// ~100 ms at the link's current capacity, the same order as the packet
/// FIFOs in front of these links.
constexpr double kQueueSeconds = 0.1;

}  // namespace

FluidSource::FluidSource(Simulator& sim, FluidSegments segments,
                         std::vector<Link*> path)
    : sim_(sim), seg_(std::move(segments)) {
  WEHEY_EXPECTS(seg_.step > 0);
  WEHEY_EXPECTS(!path.empty());
  hops_.reserve(path.size());
  for (Link* link : path) {
    WEHEY_EXPECTS(link != nullptr);
    Hop hop;
    hop.link = link;
    hops_.push_back(hop);
  }
}

void FluidSource::start(Time offset) {
  WEHEY_EXPECTS(offset >= 0);
  if (seg_.segments() == 0) return;
  sim_.schedule(seg_.step + offset, [this] { step_once(); });
}

void FluidSource::detach() {
  for (Hop& hop : hops_) {
    if (hop.contribution != 0.0) {
      hop.link->add_fluid_load(-hop.contribution);
      hop.contribution = 0.0;
    }
  }
}

void FluidSource::step_once() {
  const Time now = sim_.now();
  const double dt = to_seconds(seg_.step);
  const double rate_dflt =
      index_ < seg_.dflt.size() ? seg_.dflt[index_] : 0.0;
  const double rate_diff =
      index_ < seg_.diff.size() ? seg_.diff[index_] : 0.0;

  // Head-of-flow bursts first: they hit the bottleneck ahead of the
  // smooth process. Each hop's disc admits them (token drain, trigger
  // bytes, RED probability), then the admitted bytes occupy the link as
  // one busy period — packet traffic queues behind them just as it would
  // behind the burst's packets.
  double burst_dflt =
      index_ < seg_.burst_dflt.size() ? seg_.burst_dflt[index_] : 0.0;
  double burst_diff =
      index_ < seg_.burst_diff.size() ? seg_.burst_diff[index_] : 0.0;
  if (burst_dflt > 0.0 || burst_diff > 0.0) {
    offered_ += burst_dflt + burst_diff;
    const double burst_in = burst_dflt + burst_diff;
    for (Hop& hop : hops_) {
      QueueDisc& disc = hop.link->disc();
      if (burst_dflt > 0.0) {
        burst_dflt = disc.fluid_offer(burst_dflt, kDscpDefault, now);
      }
      if (burst_diff > 0.0) {
        burst_diff = disc.fluid_offer(burst_diff, kDscpDifferentiated, now);
      }
      hop.link->inject_fluid_burst(burst_dflt + burst_diff);
    }
    delivered_ += burst_dflt + burst_diff;
    dropped_ += burst_in - (burst_dflt + burst_diff);
  }

  // Offered load this step: the segment's open-loop rate scaled by the
  // aggregate's congestion response.
  double bytes_dflt = rate_dflt * resp_dflt_ / 8.0 * dt;
  double bytes_diff = rate_diff * resp_diff_ / 8.0 * dt;
  const double offered_dflt = bytes_dflt;
  const double offered_diff = bytes_diff;
  offered_ += offered_dflt + offered_diff;
  double loss_dflt = 0.0;
  double loss_diff = 0.0;

  for (Hop& hop : hops_) {
    QueueDisc& disc = hop.link->disc();
    // Qdisc coupling: token buckets drain tokens, RED applies its
    // early-drop probability; plain FIFOs are transparent here and
    // compete only through the link capacity below.
    const double adm_dflt =
        bytes_dflt > 0.0
            ? disc.fluid_offer(bytes_dflt, kDscpDefault, now)
            : 0.0;
    const double adm_diff =
        bytes_diff > 0.0
            ? disc.fluid_offer(bytes_diff, kDscpDifferentiated, now)
            : 0.0;
    loss_dflt += bytes_dflt - adm_dflt;
    loss_diff += bytes_diff - adm_diff;

    // Link-capacity coupling: a leaky bucket served by the capacity left
    // once other fluid sources' shares are taken out (the two paths'
    // aggregates share the common and access links).
    const double other =
        std::max(0.0, hop.link->fluid_load() - hop.contribution);
    const double cap_rate =
        std::max(0.0, hop.link->bandwidth() * kLinkShare - other);
    const double cap_bytes = cap_rate / 8.0 * dt;
    hop.q_dflt += adm_dflt;
    hop.q_diff += adm_diff;
    double total = hop.q_dflt + hop.q_diff;
    const double out = std::min(total, cap_bytes);
    const double share_dflt = total > 0.0 ? hop.q_dflt / total : 0.5;
    const double out_dflt = out * share_dflt;
    const double out_diff = out - out_dflt;
    hop.q_dflt -= out_dflt;
    hop.q_diff -= out_diff;
    // Overflow past ~100 ms of standing queue is loss, attributed
    // proportionally to what is queued.
    total = hop.q_dflt + hop.q_diff;
    const double q_cap = hop.link->bandwidth() * kQueueSeconds / 8.0;
    if (total > q_cap) {
      const double over = total - q_cap;
      const double over_dflt = over * (total > 0.0 ? hop.q_dflt / total : 0.5);
      hop.q_dflt -= over_dflt;
      hop.q_diff -= over - over_dflt;
      loss_dflt += over_dflt;
      loss_diff += over - over_dflt;
    }
    // Occupancy feedback for occupancy-driven discs (RED's EWMA).
    disc.fluid_set_backlog(llround_nonneg(hop.q_dflt + hop.q_diff));

    // The realized throughput is what packet traffic must share the link
    // with until the next step.
    const double contribution = (out_dflt + out_diff) * 8.0 / dt;
    hop.link->add_fluid_load(contribution - hop.contribution);
    hop.contribution = contribution;

    bytes_dflt = out_dflt;
    bytes_diff = out_diff;
  }

  const double delivered = bytes_dflt + bytes_diff;
  delivered_ += delivered;
  dropped_ += loss_dflt + loss_diff;
  ++steps_;
  rate_obs_.observe(delivered * 8.0 / dt / 1e6);

  // TCP-like response per class: multiplicative decrease proportional to
  // the step's loss fraction, linear recovery toward the open-loop rate
  // otherwise.
  const auto respond = [dt](double& resp, double offered, double loss) {
    const double frac = offered > 1e-9 ? loss / offered : 0.0;
    if (frac > 1e-4) {
      resp = std::max(kMinResponse, resp * std::max(0.5, 1.0 - frac));
    } else {
      resp = std::min(1.0, resp + dt / kRampSeconds);
    }
  };
  respond(resp_dflt_, offered_dflt, loss_dflt);
  respond(resp_diff_, offered_diff, loss_diff);
  response_obs_.observe(resp_dflt_);
  if (rate_diff > 0.0) response_obs_.observe(resp_diff_);

  ++index_;
  if (index_ >= seg_.segments()) {
    detach();
    return;
  }
  sim_.reschedule_current(seg_.step);
}

}  // namespace wehey::netsim
