#include "netsim/queue.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace wehey::netsim {

// ---------------------------------------------------------------- FifoDisc

bool FifoDisc::enqueue(Packet pkt, Time now) {
  if (limit_ > 0 && bytes_ + pkt.size > limit_) {
    drop_obs_.inc();
    notify_drop(pkt, now);
    return false;
  }
  bytes_ += pkt.size;
  pkt.enqueued_at = now;
  q_.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> FifoDisc::dequeue(Time now) {
  if (q_.empty()) return std::nullopt;
  Packet pkt = std::move(q_.front());
  q_.pop_front();
  bytes_ -= pkt.size;
  residency_obs_.observe(to_milliseconds(now - pkt.enqueued_at));
  return pkt;
}

Time FifoDisc::next_ready(Time now) const {
  return q_.empty() ? kNever : now;
}

// ----------------------------------------------------------------- TbfDisc

TbfDisc::TbfDisc(Rate rate, std::int64_t burst_bytes,
                 std::int64_t limit_bytes)
    : rate_(rate),
      burst_(burst_bytes),
      limit_(limit_bytes),
      tokens_bytes_(static_cast<double>(burst_bytes)) {
  WEHEY_EXPECTS(rate > 0.0);
  WEHEY_EXPECTS(burst_bytes > 0);
  WEHEY_EXPECTS(limit_bytes >= 0);
}

void TbfDisc::refill(Time now) {
  if (now <= last_refill_) return;
  const double added = rate_ / 8.0 * to_seconds(now - last_refill_);
  tokens_bytes_ =
      std::min(static_cast<double>(burst_), tokens_bytes_ + added);
  last_refill_ = now;
}

double TbfDisc::tokens(Time now) const {
  const double added = rate_ / 8.0 * to_seconds(std::max<Time>(0, now - last_refill_));
  return std::min(static_cast<double>(burst_), tokens_bytes_ + added);
}

bool TbfDisc::enqueue(Packet pkt, Time now) {
  refill(now);
  if (bytes_ + pkt.size > limit_ + 0) {
    // Queue full while waiting for tokens: the packet is policed away.
    drop_obs_.inc();
    notify_drop(pkt, now);
    return false;
  }
  bytes_ += pkt.size;
  pkt.enqueued_at = now;
  q_.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> TbfDisc::dequeue(Time now) {
  refill(now);
  if (q_.empty()) return std::nullopt;
  if (static_cast<double>(q_.front().size) > tokens_bytes_) return std::nullopt;
  Packet pkt = std::move(q_.front());
  q_.pop_front();
  bytes_ -= pkt.size;
  tokens_bytes_ -= static_cast<double>(pkt.size);
  residency_obs_.observe(to_milliseconds(now - pkt.enqueued_at));
  return pkt;
}

Time TbfDisc::next_ready(Time now) const {
  if (q_.empty()) return kNever;
  const double available = tokens(now);
  const double needed = static_cast<double>(q_.front().size);
  if (needed <= available) return now;
  const double wait_s = (needed - available) * 8.0 / rate_;
  return now + std::max<Time>(1, seconds(wait_s));
}

double TbfDisc::fluid_offer(double bytes, std::uint8_t dscp, Time now) {
  (void)dscp;  // a bare TBF polices everything that reaches it
  if (bytes <= 0.0) return 0.0;
  refill(now);
  const double take = std::min(tokens_bytes_, bytes);
  tokens_bytes_ -= take;
  return take;
}

// --------------------------------------------------------- RateLimiterDisc

RateLimiterDisc::RateLimiterDisc(std::unique_ptr<FifoDisc> default_q,
                                 std::unique_ptr<QueueDisc> throttled_q)
    : default_(std::move(default_q)), throttled_(std::move(throttled_q)) {
  WEHEY_EXPECTS(default_ != nullptr);
  WEHEY_EXPECTS(throttled_ != nullptr);
}

bool RateLimiterDisc::enqueue(Packet pkt, Time now) {
  const bool ok = pkt.dscp == kDscpDifferentiated
                      ? throttled_->enqueue(std::move(pkt), now)
                      : default_->enqueue(std::move(pkt), now);
  // Child discs run their own drop accounting; mirror the aggregate count
  // here so callers see one total. notify_drop would double-call listeners,
  // so we only bump via child listeners if installed there.
  return ok;
}

std::optional<Packet> RateLimiterDisc::dequeue(Time now) {
  QueueDisc* first = serve_throttled_first_
                         ? static_cast<QueueDisc*>(throttled_.get())
                         : static_cast<QueueDisc*>(default_.get());
  QueueDisc* second = serve_throttled_first_
                          ? static_cast<QueueDisc*>(default_.get())
                          : static_cast<QueueDisc*>(throttled_.get());
  // Alternate the starting class on every successful dequeue: round-robin
  // forwarding between the FIFO and TBF queues (Appendix C.1).
  if (auto pkt = first->dequeue(now)) {
    serve_throttled_first_ = !serve_throttled_first_;
    return pkt;
  }
  if (auto pkt = second->dequeue(now)) {
    serve_throttled_first_ = !serve_throttled_first_;
    return pkt;
  }
  return std::nullopt;
}

Time RateLimiterDisc::next_ready(Time now) const {
  return std::min(default_->next_ready(now), throttled_->next_ready(now));
}

double RateLimiterDisc::fluid_offer(double bytes, std::uint8_t dscp,
                                    Time now) {
  return dscp == kDscpDifferentiated
             ? throttled_->fluid_offer(bytes, dscp, now)
             : default_->fluid_offer(bytes, dscp, now);
}

void RateLimiterDisc::fluid_set_backlog(std::int64_t bytes) {
  // The classifier itself holds no queue; propagate the occupancy to both
  // classes (only occupancy-driven children use it).
  default_->fluid_set_backlog(bytes);
  throttled_->fluid_set_backlog(bytes);
}

std::int64_t RateLimiterDisc::backlog_bytes() const {
  return default_->backlog_bytes() + throttled_->backlog_bytes();
}

std::size_t RateLimiterDisc::backlog_packets() const {
  return default_->backlog_packets() + throttled_->backlog_packets();
}

// ----------------------------------------------------------------- RedDisc

RedDisc::RedDisc(std::int64_t min_th_bytes, std::int64_t max_th_bytes,
                 double max_p, std::uint64_t seed, double ewma_weight)
    : min_th_(min_th_bytes),
      max_th_(max_th_bytes),
      max_p_(max_p),
      weight_(ewma_weight),
      rng_(seed) {
  WEHEY_EXPECTS(min_th_bytes >= 0);
  WEHEY_EXPECTS(max_th_bytes > min_th_bytes);
  WEHEY_EXPECTS(max_p > 0.0 && max_p <= 1.0);
  WEHEY_EXPECTS(ewma_weight > 0.0 && ewma_weight <= 1.0);
}

double RedDisc::drop_probability() const {
  if (avg_ >= static_cast<double>(max_th_)) return 1.0;
  if (avg_ <= static_cast<double>(min_th_)) return 0.0;
  return max_p_ * (avg_ - static_cast<double>(min_th_)) /
         static_cast<double>(max_th_ - min_th_);
}

bool RedDisc::enqueue(Packet pkt, Time now) {
  // The fluid aggregate's standing queue counts toward the averaged
  // occupancy (zero unless a FluidSource is attached, so packet-only runs
  // are bit-identical to the pre-fluid behaviour).
  avg_ = (1.0 - weight_) * avg_ +
         weight_ * static_cast<double>(bytes_ + fluid_backlog_);
  bool early = false;
  if (avg_ >= static_cast<double>(max_th_)) {
    early = true;
  } else if (avg_ > static_cast<double>(min_th_)) {
    early = rng_.bernoulli(drop_probability());
  }
  // Hard cap at 2x max_th as the physical queue limit.
  const bool cap = bytes_ + pkt.size > 2 * max_th_;
  if (early || cap) {
    if (early) {
      early_drop_obs_.inc();
    } else {
      cap_drop_obs_.inc();
    }
    notify_drop(pkt, now);
    return false;
  }
  bytes_ += pkt.size;
  pkt.enqueued_at = now;
  q_.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> RedDisc::dequeue(Time now) {
  if (q_.empty()) return std::nullopt;
  Packet pkt = std::move(q_.front());
  q_.pop_front();
  bytes_ -= pkt.size;
  residency_obs_.observe(to_milliseconds(now - pkt.enqueued_at));
  return pkt;
}

Time RedDisc::next_ready(Time now) const {
  return q_.empty() ? kNever : now;
}

double RedDisc::fluid_offer(double bytes, std::uint8_t dscp, Time now) {
  (void)dscp;
  (void)now;
  if (bytes <= 0.0) return 0.0;
  // Same EWMA update an arrival performs, then the early-drop probability
  // applied in expectation: deterministic fractional loss, no RNG draws,
  // so fluid runs stay byte-identical across thread counts.
  avg_ = (1.0 - weight_) * avg_ +
         weight_ * static_cast<double>(bytes_ + fluid_backlog_);
  return bytes * (1.0 - drop_probability());
}

// --------------------------------------------------- PerFlowRateLimiterDisc

PerFlowRateLimiterDisc::PerFlowRateLimiterDisc(
    std::unique_ptr<FifoDisc> default_q, Rate rate, std::int64_t burst_bytes,
    std::int64_t limit_bytes)
    : default_(std::move(default_q)),
      rate_(rate),
      burst_(burst_bytes),
      limit_(limit_bytes) {
  WEHEY_EXPECTS(default_ != nullptr);
  WEHEY_EXPECTS(rate > 0 && burst_bytes > 0 && limit_bytes >= 0);
}

bool PerFlowRateLimiterDisc::enqueue(Packet pkt, Time now) {
  if (pkt.dscp != kDscpDifferentiated) {
    return default_->enqueue(std::move(pkt), now);
  }
  const FlowId key = key_of(pkt);
  for (auto& [flow, tbf] : buckets_) {
    if (flow == key) return tbf->enqueue(std::move(pkt), now);
  }
  buckets_.emplace_back(key,
                        std::make_unique<TbfDisc>(rate_, burst_, limit_));
  return buckets_.back().second->enqueue(std::move(pkt), now);
}

std::optional<Packet> PerFlowRateLimiterDisc::dequeue(Time now) {
  // Round-robin across {default class, bucket 0, bucket 1, ...}.
  const std::size_t classes = 1 + buckets_.size();
  for (std::size_t step = 0; step < classes; ++step) {
    const std::size_t idx = (rr_next_ + step) % classes;
    QueueDisc* disc = idx == 0
                          ? static_cast<QueueDisc*>(default_.get())
                          : static_cast<QueueDisc*>(
                                buckets_[idx - 1].second.get());
    if (auto pkt = disc->dequeue(now)) {
      rr_next_ = (idx + 1) % classes;
      return pkt;
    }
  }
  return std::nullopt;
}

Time PerFlowRateLimiterDisc::next_ready(Time now) const {
  Time ready = default_->next_ready(now);
  for (const auto& [flow, tbf] : buckets_) {
    ready = std::min(ready, tbf->next_ready(now));
  }
  return ready;
}

std::int64_t PerFlowRateLimiterDisc::backlog_bytes() const {
  std::int64_t sum = default_->backlog_bytes();
  for (const auto& [flow, tbf] : buckets_) sum += tbf->backlog_bytes();
  return sum;
}

std::size_t PerFlowRateLimiterDisc::backlog_packets() const {
  std::size_t sum = default_->backlog_packets();
  for (const auto& [flow, tbf] : buckets_) sum += tbf->backlog_packets();
  return sum;
}

std::uint64_t PerFlowRateLimiterDisc::throttled_drops() const {
  std::uint64_t drops = 0;
  for (const auto& [flow, tbf] : buckets_) drops += tbf->drop_count();
  return drops;
}

}  // namespace wehey::netsim
