// Queueing disciplines.
//
//  * FifoDisc — drop-tail FIFO with a byte limit (ns-3's default pfifo).
//  * TbfDisc — token-bucket filter: `rate` replenishes the bucket, `burst`
//    is the bucket size, `limit` is the backlog allowed while waiting for
//    tokens. A small limit makes it a *policer* (drops), a large one a
//    *shaper* (delays) — exactly the §2.1 taxonomy.
//  * RateLimiterDisc — the full differentiation box of Appendix C.1: a
//    DSCP classifier feeding a FIFO (dscp=0) and a TBF (dscp=1), drained
//    round-robin by the owning link.
//
// Discs are passive: the owning Link drives dequeue() and uses
// next_ready() to sleep until a token-gated packet becomes eligible.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "netsim/packet.hpp"
#include "obs/hotpath.hpp"

namespace wehey::netsim {

/// Sentinel for "no packet will become ready without a new enqueue".
inline constexpr Time kNever = std::numeric_limits<Time>::max();

/// Called with every packet a disc drops (for loss accounting in tests and
/// experiment harnesses).
using DropListener = std::function<void(const Packet&, Time)>;

class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  /// Accept or drop `pkt` at time `now`; false means dropped.
  virtual bool enqueue(Packet pkt, Time now) = 0;
  /// Remove and return a packet eligible for transmission at `now`.
  virtual std::optional<Packet> dequeue(Time now) = 0;
  /// Earliest time >= now at which dequeue() could succeed, kNever if the
  /// disc is empty.
  virtual Time next_ready(Time now) const = 0;

  virtual std::int64_t backlog_bytes() const = 0;
  virtual std::size_t backlog_packets() const = 0;

  void set_drop_listener(DropListener listener) {
    on_drop_ = std::move(listener);
  }
  std::uint64_t drop_count() const { return drops_; }

  // Hybrid fluid/packet coupling (netsim/fluid.hpp). A FluidSource calls
  // these once per coarse step; discs that gate traffic (token buckets,
  // RED) participate, everything else is transparent and the fluid
  // aggregate competes only for link capacity.

  /// Offer `bytes` of aggregate fluid arriving in class `dscp` over the
  /// step ending at `now`; returns the bytes the disc admits. The
  /// shortfall is fluid loss and feeds the aggregate's congestion
  /// response. Default: admit everything.
  virtual double fluid_offer(double bytes, std::uint8_t dscp, Time now) {
    (void)dscp;
    (void)now;
    return bytes;
  }

  /// Report the fluid aggregate's estimated standing queue at this hop.
  /// Occupancy-driven discs (RED's EWMA) fold it into their average;
  /// others ignore it. Default: no-op.
  virtual void fluid_set_backlog(std::int64_t bytes) { (void)bytes; }

 protected:
  void notify_drop(const Packet& pkt, Time now) {
    ++drops_;
    if (on_drop_) on_drop_(pkt, now);
  }

 private:
  DropListener on_drop_;
  std::uint64_t drops_ = 0;
};

class FifoDisc final : public QueueDisc {
 public:
  /// `limit_bytes` <= 0 means unlimited.
  explicit FifoDisc(std::int64_t limit_bytes = 0) : limit_(limit_bytes) {}

  bool enqueue(Packet pkt, Time now) override;
  std::optional<Packet> dequeue(Time now) override;
  Time next_ready(Time now) const override;
  std::int64_t backlog_bytes() const override { return bytes_; }
  std::size_t backlog_packets() const override { return q_.size(); }

 private:
  std::int64_t limit_;
  std::int64_t bytes_ = 0;
  PacketRing q_;
  // Hot-path observability (no-ops unless a Recorder is bound).
  obs::HistogramHandle residency_obs_{"queue.fifo.residency_ms", 0.0, 500.0,
                                      100};
  obs::CounterHandle drop_obs_{"queue.fifo.drop.overflow"};
};

class TbfDisc final : public QueueDisc {
 public:
  /// `rate` in bits/sec, `burst_bytes` = bucket size, `limit_bytes` = queue
  /// capacity for packets awaiting tokens.
  TbfDisc(Rate rate, std::int64_t burst_bytes, std::int64_t limit_bytes);

  bool enqueue(Packet pkt, Time now) override;
  std::optional<Packet> dequeue(Time now) override;
  Time next_ready(Time now) const override;
  std::int64_t backlog_bytes() const override { return bytes_; }
  std::size_t backlog_packets() const override { return q_.size(); }

  Rate rate() const { return rate_; }
  std::int64_t burst_bytes() const { return burst_; }
  double tokens(Time now) const;

  /// Fluid coupling: the aggregate drains real tokens — whatever the
  /// bucket cannot cover is fluid loss (the policing the packet backend
  /// applies per packet, applied in expectation).
  double fluid_offer(double bytes, std::uint8_t dscp, Time now) override;

 private:
  void refill(Time now);

  Rate rate_;
  std::int64_t burst_;
  std::int64_t limit_;
  double tokens_bytes_;
  Time last_refill_ = 0;
  std::int64_t bytes_ = 0;
  PacketRing q_;
  // Residency covers shaping delay; the drop counter covers policing.
  obs::HistogramHandle residency_obs_{"queue.tbf.residency_ms", 0.0, 500.0,
                                      100};
  obs::CounterHandle drop_obs_{"queue.tbf.drop.policed"};
};

/// Appendix C.1 rate-limiter: classifier + FIFO (default class) + TBF
/// (differentiated class), drained round-robin.
class RateLimiterDisc final : public QueueDisc {
 public:
  /// `throttled_q` is normally a TbfDisc; any disc works (e.g. the delayed
  /// fixed-rate throttler modelling ISP5).
  RateLimiterDisc(std::unique_ptr<FifoDisc> default_q,
                  std::unique_ptr<QueueDisc> throttled_q);

  bool enqueue(Packet pkt, Time now) override;
  std::optional<Packet> dequeue(Time now) override;
  Time next_ready(Time now) const override;
  std::int64_t backlog_bytes() const override;
  std::size_t backlog_packets() const override;

  const QueueDisc& throttled() const { return *throttled_; }
  QueueDisc& throttled() { return *throttled_; }
  const FifoDisc& default_class() const { return *default_; }

  /// Drops inside the throttled class only (differentiation-induced).
  std::uint64_t throttled_drops() const { return throttled_->drop_count(); }

  /// Fluid coupling: classify like enqueue — differentiated fluid goes
  /// through the throttled disc, default-class fluid through the FIFO.
  double fluid_offer(double bytes, std::uint8_t dscp, Time now) override;
  void fluid_set_backlog(std::int64_t bytes) override;

 private:
  std::unique_ptr<FifoDisc> default_;
  std::unique_ptr<QueueDisc> throttled_;
  bool serve_throttled_first_ = false;  // round-robin pointer
};

/// Random Early Detection (Floyd & Jacobson): an EWMA of the backlog
/// drives a drop probability that ramps from 0 at `min_th` to `max_p` at
/// `max_th`; above `max_th` every arrival is dropped. Used in ablations to
/// study how loss-trend correlation behaves when the shared bottleneck's
/// losses are smooth and probabilistic instead of drop-tail bursts.
class RedDisc final : public QueueDisc {
 public:
  RedDisc(std::int64_t min_th_bytes, std::int64_t max_th_bytes,
          double max_p, std::uint64_t seed = 1,
          double ewma_weight = 0.002);

  bool enqueue(Packet pkt, Time now) override;
  std::optional<Packet> dequeue(Time now) override;
  Time next_ready(Time now) const override;
  std::int64_t backlog_bytes() const override { return bytes_; }
  std::size_t backlog_packets() const override { return q_.size(); }

  double average_backlog() const { return avg_; }

  /// Fluid coupling: the early-drop probability applies to the aggregate
  /// in expectation (deterministic fractional loss, no RNG draws), and
  /// the fluid's standing queue joins the packet backlog in the EWMA.
  double fluid_offer(double bytes, std::uint8_t dscp, Time now) override;
  void fluid_set_backlog(std::int64_t bytes) override {
    fluid_backlog_ = bytes;
  }

 private:
  /// Current early-drop probability given the averaged occupancy.
  double drop_probability() const;

  std::int64_t min_th_;
  std::int64_t max_th_;
  double max_p_;
  double weight_;
  Rng rng_;
  double avg_ = 0.0;
  std::int64_t fluid_backlog_ = 0;
  std::int64_t bytes_ = 0;
  PacketRing q_;
  obs::HistogramHandle residency_obs_{"queue.red.residency_ms", 0.0, 500.0,
                                      100};
  obs::CounterHandle early_drop_obs_{"queue.red.drop.early"};
  obs::CounterHandle cap_drop_obs_{"queue.red.drop.cap"};
};

/// Per-flow rate limiter: like RateLimiterDisc, but the differentiated
/// class (dscp=1) gets one token-bucket filter *per flow key* instead of a
/// collective one — the §3.2 mechanism WeHeY cannot localize without the
/// §7 same-flow countermeasure. Flow TBFs are created on first sight with
/// identical parameters. The key is Packet::policer_key (falling back to
/// Packet::flow), so spoofed replays share one bucket.
class PerFlowRateLimiterDisc final : public QueueDisc {
 public:
  PerFlowRateLimiterDisc(std::unique_ptr<FifoDisc> default_q, Rate rate,
                         std::int64_t burst_bytes, std::int64_t limit_bytes);

  bool enqueue(Packet pkt, Time now) override;
  std::optional<Packet> dequeue(Time now) override;
  Time next_ready(Time now) const override;
  std::int64_t backlog_bytes() const override;
  std::size_t backlog_packets() const override;

  std::size_t flow_bucket_count() const { return buckets_.size(); }
  std::uint64_t throttled_drops() const;

 private:
  FlowId key_of(const Packet& pkt) const {
    return pkt.policer_key != 0 ? pkt.policer_key : pkt.flow;
  }

  std::unique_ptr<FifoDisc> default_;
  Rate rate_;
  std::int64_t burst_;
  std::int64_t limit_;
  // Insertion-ordered buckets for deterministic round-robin.
  std::vector<std::pair<FlowId, std::unique_ptr<TbfDisc>>> buckets_;
  std::size_t rr_next_ = 0;  ///< round-robin cursor over {default, buckets}
};

}  // namespace wehey::netsim
