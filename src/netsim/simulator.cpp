#include "netsim/simulator.hpp"

namespace wehey::netsim {

void Simulator::run(Time until) {
  queue_.run_until(until, now_);
  if (until >= 0 && now_ < until) now_ = until;
}

void Simulator::clear() { queue_.clear(); }

}  // namespace wehey::netsim
