#include "netsim/simulator.hpp"

#include <limits>

#include "obs/recorder.hpp"

namespace wehey::netsim {

void Simulator::run(Time until) {
  if (budget_.limited()) {
    run_budgeted(until);
    return;
  }
  obs::Recorder* rec = obs::Recorder::current();
  if (rec == nullptr) {
    queue_.run_until(until, now_);
  } else {
    run_observed(until, *rec,
                 std::numeric_limits<std::uint64_t>::max());
  }
  if (until >= 0 && now_ < until) now_ = until;
}

void Simulator::run_budgeted(Time until) {
  // A tripped budget ends the trial: later run() calls are no-ops so the
  // caller can unwind through its normal phase sequence without
  // dispatching another event.
  if (exhausted_ != Exhausted::kNone) return;
  // Clip the horizon to the sim-time ceiling; events beyond it are never
  // dispatched, only observed as pending.
  Time horizon = until;
  const Time ceiling = budget_.max_sim_time;
  if (ceiling > 0 && (horizon < 0 || horizon > ceiling)) horizon = ceiling;
  const std::uint64_t room =
      budget_.max_events > 0 ? budget_.max_events - dispatched_
                             : std::numeric_limits<std::uint64_t>::max();
  obs::Recorder* rec = obs::Recorder::current();
  if (rec == nullptr) {
    dispatched_ += queue_.run_until_capped(horizon, now_, room);
  } else {
    dispatched_ += run_observed(horizon, *rec, room);
  }
  // A ceiling only trips when it actually cut the run short of what the
  // caller asked for: a pending event the caller's `until` would have
  // reached. Otherwise the budget was a bystander and the run completed.
  if (budget_.max_events > 0 && dispatched_ >= budget_.max_events &&
      !queue_.empty() && (until < 0 || queue_.top_time() <= until)) {
    exhausted_ = Exhausted::kEvents;
    return;
  }
  if (ceiling > 0 && !queue_.empty() && queue_.top_time() > ceiling &&
      (until < 0 || until > ceiling)) {
    exhausted_ = Exhausted::kSimTime;
    return;
  }
  if (until >= 0 && now_ < until) now_ = until;
}

std::uint64_t Simulator::run_observed(Time until, obs::Recorder& rec,
                                      std::uint64_t max_events) {
  obs::Counter& events = rec.metrics().counter("sim.events");
  obs::Gauge& depth = rec.metrics().gauge("sim.heap_depth_peak");
  obs::Timeline* tl = rec.trace_on() ? &rec.timeline() : nullptr;
  // Sampling keeps the heap-depth series bounded: one counter event per
  // 8192 dispatches is plenty for a timeline and costs nothing between
  // samples. Counting is exact either way.
  constexpr std::uint64_t kSampleMask = (1u << 13) - 1;
  std::uint64_t dispatched = 0;
  std::size_t peak = 0;
  while (dispatched < max_events && !queue_.empty()) {
    const Time at = queue_.top_time();
    if (until >= 0 && at > until) break;
    now_ = at;
    const std::size_t pending = queue_.size();
    if (pending > peak) peak = pending;
    if (tl != nullptr && (dispatched & kSampleMask) == 0) {
      tl->counter("sim.pending_events", now_, static_cast<double>(pending));
    }
    queue_.run_top();
    ++dispatched;
  }
  if (dispatched > 0) {
    events.inc(dispatched);
    depth.set(static_cast<double>(peak));
  }
  return dispatched;
}

void Simulator::clear() { queue_.clear(); }

}  // namespace wehey::netsim
