#include "netsim/simulator.hpp"

#include "obs/recorder.hpp"

namespace wehey::netsim {

void Simulator::run(Time until) {
  obs::Recorder* rec = obs::Recorder::current();
  if (rec == nullptr) {
    queue_.run_until(until, now_);
  } else {
    run_observed(until, *rec);
  }
  if (until >= 0 && now_ < until) now_ = until;
}

void Simulator::run_observed(Time until, obs::Recorder& rec) {
  obs::Counter& events = rec.metrics().counter("sim.events");
  obs::Gauge& depth = rec.metrics().gauge("sim.heap_depth_peak");
  obs::Timeline* tl = rec.trace_on() ? &rec.timeline() : nullptr;
  // Sampling keeps the heap-depth series bounded: one counter event per
  // 8192 dispatches is plenty for a timeline and costs nothing between
  // samples. Counting is exact either way.
  constexpr std::uint64_t kSampleMask = (1u << 13) - 1;
  std::uint64_t dispatched = 0;
  std::size_t peak = 0;
  while (!queue_.empty()) {
    const Time at = queue_.top_time();
    if (until >= 0 && at > until) break;
    now_ = at;
    const std::size_t pending = queue_.size();
    if (pending > peak) peak = pending;
    if (tl != nullptr && (dispatched & kSampleMask) == 0) {
      tl->counter("sim.pending_events", now_, static_cast<double>(pending));
    }
    queue_.run_top();
    ++dispatched;
  }
  if (dispatched > 0) {
    events.inc(dispatched);
    depth.set(static_cast<double>(peak));
  }
}

void Simulator::clear() { queue_.clear(); }

}  // namespace wehey::netsim
