#include "netsim/simulator.hpp"

namespace wehey::netsim {

void Simulator::run(Time until) {
  while (!queue_.empty()) {
    if (until >= 0 && queue_.top().at > until) break;
    // priority_queue::top() is const; move the action out via const_cast on
    // the action member only — the event is popped immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.action();
  }
  if (until >= 0 && now_ < until) now_ = until;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace wehey::netsim
