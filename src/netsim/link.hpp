// Network elements that move packets:
//
//  * Link — a unidirectional point-to-point link: a queueing discipline in
//    front of a transmitter of fixed `bandwidth`, followed by propagation
//    `delay`. Non-work-conserving discs (TBF) are supported: when nothing
//    is eligible the link sleeps until the disc's next_ready() time.
//  * Pipe — an ideal fixed-delay element (used for uncongested reverse/ACK
//    paths, where differentiation never applies in our scenarios).
//  * Demux — delivers packets to per-flow receivers at an endpoint host.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/check.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "netsim/packet.hpp"
#include "netsim/queue.hpp"
#include "netsim/simulator.hpp"
#include "obs/hotpath.hpp"

namespace wehey::netsim {

/// Fixed accounting window for the per-link utilization histogram: each
/// completed window contributes one sample of busy-fraction in [0, 1].
inline constexpr Time kLinkUtilizationWindow = 100 * kMillisecond;

class Link final : public PacketSink {
 public:
  Link(Simulator& sim, Rate bandwidth, Time delay,
       std::unique_ptr<QueueDisc> disc, PacketSink* next = nullptr);

  void set_next(PacketSink* next) { next_ = next; }
  void receive(Packet pkt) override;

  QueueDisc& disc() { return *disc_; }
  const QueueDisc& disc() const { return *disc_; }
  Rate bandwidth() const { return bandwidth_; }
  /// Change the link capacity; affects transmissions started afterwards.
  /// Models time-varying access capacity (e.g. a cellular last hop).
  void set_bandwidth(Rate bandwidth) {
    WEHEY_EXPECTS(bandwidth > 0.0);
    bandwidth_ = bandwidth;
  }
  Time delay() const { return delay_; }

  // Hybrid fluid/packet coupling (netsim/fluid.hpp): fluid background
  // aggregates register their realized throughput here, and packet traffic
  // sees the remainder as its effective service capacity.

  /// Add (or, with a negative delta, remove) fluid load in bits/sec.
  void add_fluid_load(Rate delta) {
    fluid_load_ = std::max(0.0, fluid_load_ + delta);
  }
  /// A fluid aggregate's head-of-flow burst: the bytes occupy the
  /// transmitter as one busy period (a single event), so packet traffic
  /// queues behind them exactly as it would behind the burst's packets.
  void inject_fluid_burst(double bytes);
  Rate fluid_load() const { return fluid_load_; }
  /// Capacity left for packet traffic: nominal bandwidth minus fluid load,
  /// floored at 10% of nominal so packets always make progress (mirrors
  /// the fluid model's own capacity share).
  Rate effective_bandwidth() const {
    return fluid_load_ > 0.0
               ? std::max(bandwidth_ - fluid_load_, 0.1 * bandwidth_)
               : bandwidth_;
  }

  std::uint64_t delivered_packets() const { return delivered_; }
  std::int64_t delivered_bytes() const { return delivered_bytes_; }
  /// Total simulated time spent transmitting (busy time).
  Time busy_time() const { return busy_time_; }

  /// Name this link's utilization histogram "link.<label>.utilization"
  /// instead of the generic "link.utilization". Call before traffic flows.
  void set_obs_label(const std::string& label) {
    util_obs_.rename("link." + label + ".utilization");
  }

  /// Observer invoked for every packet the link finishes transmitting
  /// (before propagation delay). For tracing/instrumentation.
  void set_tx_listener(std::function<void(const Packet&, Time)> listener) {
    on_tx_ = std::move(listener);
  }

 private:
  void try_transmit();
  void finish_transmit(Packet pkt, Time tx_time);
  void account_transmit(Time tx_time, Time now);

  Simulator& sim_;
  Rate bandwidth_;
  Rate fluid_load_ = 0.0;  ///< bits/sec claimed by fluid aggregates
  double fluid_burst_bytes_ = 0.0;  ///< pending burst awaiting the transmitter
  Time delay_;
  std::unique_ptr<QueueDisc> disc_;
  PacketSink* next_;
  bool transmitting_ = false;
  Time wakeup_at_ = kNever;  // pending retry for a token-gated disc
  std::function<void(const Packet&, Time)> on_tx_;
  std::uint64_t delivered_ = 0;
  std::int64_t delivered_bytes_ = 0;
  Time busy_time_ = 0;
  // Utilization windows advance only while a recorder is bound; they are a
  // pure function of sim time, so the histogram is thread-count stable.
  Time util_window_start_ = 0;
  Time util_window_busy_ = 0;
  obs::HistogramHandle util_obs_{"link.utilization", 0.0, 1.0, 20};
};

class Pipe final : public PacketSink {
 public:
  Pipe(Simulator& sim, Time delay, PacketSink* next = nullptr)
      : sim_(sim), delay_(delay), next_(next) {}

  void set_next(PacketSink* next) { next_ = next; }
  void receive(Packet pkt) override;

 private:
  Simulator& sim_;
  Time delay_;
  PacketSink* next_;
};

class Demux final : public PacketSink {
 public:
  void add_route(FlowId flow, PacketSink* sink) {
    WEHEY_EXPECTS(sink != nullptr);
    routes_[flow] = sink;
  }
  void set_default(PacketSink* sink) { default_ = sink; }
  void receive(Packet pkt) override;

  std::uint64_t unrouted_packets() const { return unrouted_; }

 private:
  std::unordered_map<FlowId, PacketSink*> routes_;
  PacketSink* default_ = nullptr;
  std::uint64_t unrouted_ = 0;
};

/// A sink that silently absorbs packets (for background-flow receivers that
/// do not need per-packet accounting).
class NullSink final : public PacketSink {
 public:
  void receive(Packet pkt) override {
    ++count_;
    bytes_ += pkt.size;
  }
  std::uint64_t packets() const { return count_; }
  std::int64_t bytes() const { return bytes_; }

 private:
  std::uint64_t count_ = 0;
  std::int64_t bytes_ = 0;
};

}  // namespace wehey::netsim
