// Hybrid fluid/packet simulation: FluidSource carries a background
// aggregate as a piecewise-constant offered-rate process instead of
// per-packet traffic.
//
// One FluidSource models one path's background aggregate traversing a
// chain of Links. It steps on the simulator's EventHeap at a coarse fixed
// interval (one event per step, against thousands of packet events for
// the same load) and at each step:
//
//   * offers the segment's per-class rate — scaled by a TCP-like
//     congestion-response multiplier — to each hop's queueing discipline
//     via QueueDisc::fluid_offer (token buckets drain real tokens, RED
//     applies its early-drop probability in expectation);
//   * pushes the admitted bytes through a per-hop leaky bucket bounded by
//     the link's remaining capacity, so link saturation shows up as a
//     standing fluid queue and, past the queue cap, as loss;
//   * registers its realized throughput on each Link as fluid load
//     (Link::add_fluid_load), which packet traffic sees as reduced
//     effective service capacity;
//   * feeds the step's loss fraction back into the per-class response
//     multiplier — multiplicative decrease on loss, linear recovery
//     otherwise — approximating the aggregate's TCP behaviour.
//
// Replay/probe flows stay fully packet-level; determinism is preserved
// because every fluid quantity is a pure function of simulated time (no
// RNG draws, no wall-clock reads).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "obs/hotpath.hpp"

namespace wehey::netsim {

/// Piecewise-constant per-class offered rates: segment i covers
/// [i*step, (i+1)*step). A class vector may be empty (no such traffic).
struct FluidSegments {
  Time step = 100 * kMillisecond;
  std::vector<Rate> dflt;  ///< default class (dscp 0), bits/sec
  std::vector<Rate> diff;  ///< differentiated class (dscp 1), bits/sec
  /// Head-of-flow burst bytes fired at the start of segment i (may be
  /// empty): offered to each hop's disc, then injected as a link busy
  /// period so packet traffic queues behind them (Link::
  /// inject_fluid_burst) — the slow-start delay spike the smooth rate
  /// process cannot express.
  std::vector<double> burst_dflt;
  std::vector<double> burst_diff;
  std::size_t segments() const {
    return dflt.size() > diff.size() ? dflt.size() : diff.size();
  }
};

class FluidSource {
 public:
  /// `path` is the ordered chain of links the aggregate traverses; the
  /// source couples to each link's disc and capacity. Links must outlive
  /// the source.
  FluidSource(Simulator& sim, FluidSegments segments,
              std::vector<Link*> path);

  /// Schedule the first step at `offset` past one step interval from now.
  /// Call once. Distinct offsets desynchronize sources sharing a link:
  /// without them every aggregate drains tokens and fires bursts at the
  /// same instants, a phase lock packet-level interleaving does not have.
  void start(Time offset = 0);

  std::uint64_t steps() const { return steps_; }
  std::int64_t offered_bytes() const { return llround_nonneg(offered_); }
  std::int64_t delivered_bytes() const { return llround_nonneg(delivered_); }
  std::int64_t dropped_bytes() const { return llround_nonneg(dropped_); }
  /// Current per-class congestion-response multipliers in [kMinResponse, 1].
  double response_default() const { return resp_dflt_; }
  double response_diff() const { return resp_diff_; }

  /// Floor of the congestion-response multiplier (the aggregate never
  /// backs off to zero — flows keep probing, like TCP's one-MSS floor).
  static constexpr double kMinResponse = 0.05;
  /// Seconds for the response to recover from 0 to 1 without loss.
  static constexpr double kRampSeconds = 2.0;

 private:
  struct Hop {
    Link* link = nullptr;
    double contribution = 0.0;  ///< bits/sec registered on the link
    double q_dflt = 0.0;        ///< standing fluid queue estimate (bytes)
    double q_diff = 0.0;
  };

  void step_once();
  void detach();

  static std::int64_t llround_nonneg(double v) {
    return v > 0.0 ? static_cast<std::int64_t>(v + 0.5) : 0;
  }

  Simulator& sim_;
  FluidSegments seg_;
  std::vector<Hop> hops_;
  std::size_t index_ = 0;
  double resp_dflt_ = 1.0;
  double resp_diff_ = 1.0;
  std::uint64_t steps_ = 0;
  double offered_ = 0.0;
  double delivered_ = 0.0;
  double dropped_ = 0.0;
  // Hot-path observability (no-ops unless a Recorder is bound).
  obs::HistogramHandle rate_obs_{"fluid.rate_mbps", 0.0, 100.0, 50};
  obs::HistogramHandle response_obs_{"fluid.response", 0.0, 1.0, 20};
};

}  // namespace wehey::netsim
