// Packet-level event tracing, in the spirit of ns-3's ascii traces: attach
// a tracer to links and it records transmissions and drops with
// timestamps, flows and sizes — for debugging simulations and for tests
// that need to assert on wire-level behaviour.
#pragma once

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "netsim/link.hpp"
#include "netsim/queue.hpp"

namespace wehey::netsim {

enum class TraceEventKind { Transmit, Drop };

struct TraceEvent {
  Time at = 0;
  TraceEventKind kind = TraceEventKind::Transmit;
  std::string point;  ///< the attachment's name, e.g. "l_c"
  FlowId flow = 0;
  std::uint32_t size = 0;
  std::uint8_t dscp = 0;
  std::uint64_t seq = 0;
};

class PacketTracer {
 public:
  /// Observe a link's transmissions and its queue disc's drops under the
  /// name `point`. Replaces any previously installed listeners on them.
  void attach(Link& link, const std::string& point);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Cap memory for long simulations (0 = unbounded). Once full, new
  /// events are counted but not stored.
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  std::uint64_t suppressed() const { return suppressed_; }

  /// Events for one flow only.
  std::vector<TraceEvent> flow_events(FlowId flow) const;
  /// Per-point drop counts.
  std::unordered_map<std::string, std::uint64_t> drops_by_point() const;

  /// Write an ns-3-style ascii trace ("t <kind> <point> flow=... ...").
  void dump(std::FILE* out) const;

 private:
  void record(TraceEvent ev);

  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace wehey::netsim
