// Simulated packets and the sink interface network elements implement.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace wehey::netsim {

using FlowId = std::uint32_t;

/// DSCP class used by the differentiation classifier (Appendix C.1):
/// packets with dscp=1 are directed to the token-bucket filter, dscp=0
/// traffic bypasses it.
inline constexpr std::uint8_t kDscpDefault = 0;
inline constexpr std::uint8_t kDscpDifferentiated = 1;

enum class PacketKind : std::uint8_t { Data, Ack };

/// A SACK block: received bytes in [start, end). start == end means unused.
struct SackBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  bool empty() const { return start == end; }
};

// A real TCP option carries at most 3-4 SACK blocks and relies on block
// rotation across ACKs to cover all holes; our receiver reports a fixed
// snapshot instead, so it needs more blocks to convey the same
// information. 16 keeps retransmission behaviour close to a
// rotating-3-block implementation without simulating the rotation.
inline constexpr int kMaxSackBlocks = 16;

struct Packet {
  std::uint64_t id = 0;       ///< globally unique, for tracing
  FlowId flow = 0;
  /// The key a *per-flow* rate-limiter classifies on (normally the flow's
  /// 5-tuple, i.e. == flow). WeHeY's §7 countermeasure crafts the two
  /// simultaneous replays so they carry the same key and land in the same
  /// per-flow policer. 0 means "use `flow`".
  FlowId policer_key = 0;
  PacketKind kind = PacketKind::Data;
  std::uint32_t size = 0;     ///< wire size in bytes (headers included)
  std::uint8_t dscp = kDscpDefault;

  // Transport metadata (interpreted by the endpoints only).
  std::uint64_t seq = 0;      ///< TCP: first payload byte; UDP: packet no.
  std::uint64_t ack = 0;      ///< TCP cumulative ACK (next expected byte)
  std::uint32_t payload = 0;  ///< payload bytes carried
  bool retransmit = false;    ///< TCP: this is a retransmission
  SackBlock sack[kMaxSackBlocks];  ///< selective-ACK blocks (ACKs only)

  Time sent_at = 0;           ///< stamped by the sender (for RTT samples)
  /// Stamped by the queueing disc that accepted the packet; the dequeue
  /// side observes (now - enqueued_at) as the queue-residency histogram.
  Time enqueued_at = 0;
};

/// Anything that can accept a packet: links, rate-limiters, endpoints.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void receive(Packet pkt) = 0;
};

/// Monotonic packet-id source (one per simulation).
class PacketIdSource {
 public:
  std::uint64_t next() { return next_++; }

 private:
  std::uint64_t next_ = 1;
};

/// FIFO of packets backed by a growable circular buffer with an internal
/// free region: dequeued slots are reused by later enqueues, so a disc at
/// steady state never allocates. This replaces std::deque<Packet> in the
/// queueing disciplines — with ~300-byte packets, deque chunk churn was a
/// measurable share of the event-loop allocation traffic.
///
/// Only the operations the discs need: push_back / front / pop_front.
class PacketRing {
 public:
  PacketRing() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(Packet pkt) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) % buf_.size()] = std::move(pkt);
    ++size_;
  }

  Packet& front() { return buf_[head_]; }
  const Packet& front() const { return buf_[head_]; }

  void pop_front() {
    head_ = (head_ + 1) % buf_.size();
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<Packet> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) % buf_.size()]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<Packet> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace wehey::netsim
