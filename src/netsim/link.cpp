#include "netsim/link.hpp"

#include "common/log.hpp"

namespace wehey::netsim {

Link::Link(Simulator& sim, Rate bandwidth, Time delay,
           std::unique_ptr<QueueDisc> disc, PacketSink* next)
    : sim_(sim),
      bandwidth_(bandwidth),
      delay_(delay),
      disc_(std::move(disc)),
      next_(next) {
  WEHEY_EXPECTS(bandwidth_ > 0.0);
  WEHEY_EXPECTS(delay_ >= 0);
  WEHEY_EXPECTS(disc_ != nullptr);
}

void Link::receive(Packet pkt) {
  disc_->enqueue(std::move(pkt), sim_.now());
  try_transmit();
}

void Link::try_transmit() {
  if (transmitting_) return;
  auto pkt = disc_->dequeue(sim_.now());
  if (!pkt) {
    // Nothing eligible now. If the disc will have an eligible packet later
    // (token-bucket refill), arm a single wake-up for that time.
    const Time ready = disc_->next_ready(sim_.now());
    if (ready != kNever && ready < wakeup_at_) {
      wakeup_at_ = ready;
      sim_.schedule_at(ready, [this, ready] {
        if (wakeup_at_ == ready) wakeup_at_ = kNever;
        try_transmit();
      });
    }
    return;
  }
  transmitting_ = true;
  const Time tx = transmission_time(pkt->size, bandwidth_);
  sim_.schedule(tx, [this, p = std::move(*pkt)]() mutable {
    finish_transmit(std::move(p));
  });
}

void Link::finish_transmit(Packet pkt) {
  transmitting_ = false;
  ++delivered_;
  delivered_bytes_ += pkt.size;
  if (on_tx_) on_tx_(pkt, sim_.now());
  if (next_ != nullptr) {
    if (delay_ > 0) {
      sim_.schedule(delay_, [this, p = std::move(pkt)]() mutable {
        next_->receive(std::move(p));
      });
    } else {
      next_->receive(std::move(pkt));
    }
  }
  try_transmit();
}

void Pipe::receive(Packet pkt) {
  if (next_ == nullptr) return;
  sim_.schedule(delay_, [this, p = std::move(pkt)]() mutable {
    next_->receive(std::move(p));
  });
}

void Demux::receive(Packet pkt) {
  const auto it = routes_.find(pkt.flow);
  if (it != routes_.end()) {
    it->second->receive(std::move(pkt));
    return;
  }
  if (default_ != nullptr) {
    default_->receive(std::move(pkt));
    return;
  }
  ++unrouted_;
  LOG_TRACE("demux: dropping packet for unknown flow " << pkt.flow);
}

}  // namespace wehey::netsim
