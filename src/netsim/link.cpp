#include "netsim/link.hpp"

#include "common/log.hpp"

namespace wehey::netsim {

Link::Link(Simulator& sim, Rate bandwidth, Time delay,
           std::unique_ptr<QueueDisc> disc, PacketSink* next)
    : sim_(sim),
      bandwidth_(bandwidth),
      delay_(delay),
      disc_(std::move(disc)),
      next_(next) {
  WEHEY_EXPECTS(bandwidth_ > 0.0);
  WEHEY_EXPECTS(delay_ >= 0);
  WEHEY_EXPECTS(disc_ != nullptr);
}

void Link::receive(Packet pkt) {
  disc_->enqueue(std::move(pkt), sim_.now());
  try_transmit();
}

void Link::inject_fluid_burst(double bytes) {
  if (bytes <= 0.0) return;
  fluid_burst_bytes_ += bytes;
  try_transmit();
}

void Link::try_transmit() {
  if (transmitting_) return;
  if (fluid_burst_bytes_ > 0.0) {
    // Drain the pending fluid burst as one busy period before serving
    // packets — head-of-flow bursts arrive ahead of anything queued after
    // the injection point.
    const auto bytes = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(fluid_burst_bytes_ + 0.5));
    fluid_burst_bytes_ = 0.0;
    transmitting_ = true;
    const Time tx = transmission_time(bytes, effective_bandwidth());
    sim_.schedule(tx, [this, tx] {
      transmitting_ = false;
      account_transmit(tx, sim_.now());
      try_transmit();
    });
    return;
  }
  auto pkt = disc_->dequeue(sim_.now());
  if (!pkt) {
    // Nothing eligible now. If the disc will have an eligible packet later
    // (token-bucket refill), arm a single wake-up for that time.
    const Time ready = disc_->next_ready(sim_.now());
    if (ready != kNever && ready < wakeup_at_) {
      wakeup_at_ = ready;
      sim_.schedule_at(ready, [this, ready] {
        if (wakeup_at_ == ready) wakeup_at_ = kNever;
        try_transmit();
      });
    }
    return;
  }
  transmitting_ = true;
  const Time tx = transmission_time(pkt->size, effective_bandwidth());
  sim_.schedule(tx, [this, p = std::move(*pkt), tx]() mutable {
    finish_transmit(std::move(p), tx);
  });
}

void Link::account_transmit(Time tx_time, Time now) {
  busy_time_ += tx_time;
  if (obs::Recorder::current() == nullptr) return;
  // Close every fully elapsed window (idle windows sample 0); a
  // transmission counts toward the window it completes in.
  while (now - util_window_start_ >= kLinkUtilizationWindow) {
    util_obs_.observe(std::min(
        1.0, static_cast<double>(util_window_busy_) /
                 static_cast<double>(kLinkUtilizationWindow)));
    util_window_start_ += kLinkUtilizationWindow;
    util_window_busy_ = 0;
  }
  util_window_busy_ += tx_time;
}

void Link::finish_transmit(Packet pkt, Time tx_time) {
  transmitting_ = false;
  ++delivered_;
  delivered_bytes_ += pkt.size;
  account_transmit(tx_time, sim_.now());
  if (on_tx_) on_tx_(pkt, sim_.now());
  if (next_ != nullptr) {
    if (delay_ > 0) {
      sim_.schedule(delay_, [this, p = std::move(pkt)]() mutable {
        next_->receive(std::move(p));
      });
    } else {
      next_->receive(std::move(pkt));
    }
  }
  try_transmit();
}

void Pipe::receive(Packet pkt) {
  if (next_ == nullptr) return;
  sim_.schedule(delay_, [this, p = std::move(pkt)]() mutable {
    next_->receive(std::move(p));
  });
}

void Demux::receive(Packet pkt) {
  const auto it = routes_.find(pkt.flow);
  if (it != routes_.end()) {
    it->second->receive(std::move(pkt));
    return;
  }
  if (default_ != nullptr) {
    default_->receive(std::move(pkt));
    return;
  }
  ++unrouted_;
  LOG_TRACE("demux: dropping packet for unknown flow " << pkt.flow);
}

}  // namespace wehey::netsim
