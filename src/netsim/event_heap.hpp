// The simulator's event queue: an owned binary min-heap over (time, seq)
// with the event actions stored out-of-line in a recycled slot pool.
//
// Three properties std::priority_queue could not give us:
//
//  * zero-move event construction — push() is a template that emplaces the
//    caller's callable directly into its pool slot, so the (often ~330-byte
//    Packet-carrying) capture is copied exactly once, ever;
//  * in-place dispatch — run_top() invokes the action where it sits and
//    destroys it afterwards, instead of moving it out of a const top()
//    through a const_cast as the old design did;
//  * cheap sift operations — heap nodes are 24-byte PODs referencing a slot
//    index, so reordering never touches the action payloads.
//
// Slots live in fixed-size chunks that are never reallocated, so an action
// stays at a stable address even when events it schedules during its own
// execution grow the pool. Freed slots are recycled, so a steady-state
// simulation stops allocating entirely once the pool has grown to the
// high-water mark.
//
// Ordering: earliest `at` first; ties broken by ascending insertion
// sequence number, so same-time events fire in the order they were
// scheduled (the determinism contract the whole simulator relies on).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"
#include "netsim/inplace_action.hpp"
#include "obs/runtime.hpp"

namespace wehey::netsim {

class EventHeap {
 public:
  using Action = InplaceAction;

  bool empty() const { return nodes_.empty(); }
  std::size_t size() const { return nodes_.size(); }

  /// Scheduled time of the earliest event. Heap must not be empty.
  Time top_time() const {
    WEHEY_EXPECTS(!nodes_.empty());
    return nodes_[0].at;
  }

  /// Schedule `f` at time `at`, constructing it directly in its pool slot.
  template <typename F>
  void push(Time at, F&& f) {
    const std::uint32_t slot = acquire_slot();
    slot_ref(slot).emplace(std::forward<F>(f));
    WEHEY_EXPECTS(next_seq_ < kSeqLimit);
    nodes_.push_back(Node{at, (next_seq_++ << kSlotBits) | slot});
    sift_up(nodes_.size() - 1);
  }

  /// Run the earliest event's action in place, then retire (or re-arm) its
  /// node. The action runs while its node still sits at the root: anything
  /// it pushes has `at >= now` and a larger seq, so it can never displace
  /// that root, and deferring the removal lets a rearm_current() turn into
  /// a replace-top — the re-armed key is near-minimal, so it sinks a level
  /// or two instead of paying a full pop-sift plus push-sift. The action
  /// may push new events (its own slot address is stable), but must not
  /// call clear() on this heap. Precondition: the heap is non-empty and no
  /// other event is currently executing.
  void run_top() {
    const std::uint32_t slot = nodes_[0].slot();
    executing_ = slot;
    rearm_at_ = kNotRearmed;
    Action& action = slot_ref(slot);
    action();
    executing_ = kNoSlot;
    if (rearm_at_ == kNotRearmed) {
      action.reset();
      free_slots_.push_back(slot);
      const Node back = nodes_.back();
      nodes_.pop_back();
      if (!nodes_.empty()) sift_down_root(back);
    } else {
      WEHEY_EXPECTS(next_seq_ < kSeqLimit);
      replace_top(Node{rearm_at_, (next_seq_++ << kSlotBits) | slot});
    }
  }

  /// From within an executing action: re-arm that same action — state
  /// intact, nothing copied or destroyed — to fire again at `at`. Takes
  /// effect when the action returns (last call wins), and the re-armed
  /// firing gets a fresh sequence number then, so relative to same-time
  /// events it orders after everything the action itself scheduled.
  void rearm_current(Time at) {
    WEHEY_EXPECTS(executing_ != kNoSlot && at >= 0);
    rearm_at_ = at;
  }

  /// Drain events in timestamp order, advancing `now` to each event's time
  /// before it fires. Stops when the queue is empty or the next event lies
  /// strictly after `until` (pass until < 0 to run to exhaustion). Lives
  /// here rather than in Simulator so the whole dispatch loop — peek, pop,
  /// invoke, recycle — inlines into a single frame.
  void run_until(Time until, Time& now) {
    while (!nodes_.empty()) {
      const Time at = nodes_[0].at;
      if (until >= 0 && at > until) break;
      now = at;
      run_top();
    }
  }

  /// run_until with an event-count cap: dispatch at most `max_events`
  /// events, returning how many actually ran. The supervisor's budget
  /// hook (src/parallel/supervisor.hpp) drives trial simulators through
  /// this loop; the uncapped run_until above keeps its own body so the
  /// default path pays nothing for the cap.
  std::uint64_t run_until_capped(Time until, Time& now,
                                 std::uint64_t max_events) {
    std::uint64_t dispatched = 0;
    while (dispatched < max_events && !nodes_.empty()) {
      const Time at = nodes_[0].at;
      if (until >= 0 && at > until) break;
      now = at;
      run_top();
      ++dispatched;
    }
    return dispatched;
  }

  /// Drop every pending event and release the backing storage (swap-with-
  /// empty; no per-event heap pops — pending actions are destroyed by a
  /// straight walk over the node array). Must not be called from within an
  /// executing event: the running action lives in the pool being freed.
  void clear() {
    WEHEY_EXPECTS(executing_ == kNoSlot);
    for (const Node& node : nodes_) slot_ref(node.slot()).reset();
    std::vector<Node>().swap(nodes_);
    std::vector<std::uint32_t>().swap(free_slots_);
    std::vector<std::unique_ptr<Chunk>>().swap(chunks_);
    slot_count_ = 0;
  }

 private:
  /// 24 bits of slot index + 40 bits of insertion sequence packed into one
  /// word: a heap node is then 16 aligned bytes, so nodes never straddle
  /// cache lines and sift moves are two machine words. Comparing the packed
  /// word compares seq (slot bits only break ties between identical seqs,
  /// which cannot happen). 2^40 events per simulator and 2^24 simultaneously
  /// pending events are both orders of magnitude beyond any replay here;
  /// push() checks the former, acquire_slot() the latter.
  struct Node {
    Time at;
    std::uint64_t seq_slot;
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & (kSlotLimit - 1));
    }
  };
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotLimit = std::uint64_t{1} << kSlotBits;
  static constexpr std::uint64_t kSeqLimit = std::uint64_t{1} << 40;

  /// 64 actions (~25 KiB) per chunk: big enough to amortize allocation,
  /// small enough that an idle simulator is not holding megabytes.
  static constexpr std::size_t kChunkShift = 6;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  using Chunk = std::array<Action, kChunkSize>;

  static constexpr std::uint32_t kNoSlot = UINT32_MAX;
  static constexpr Time kNotRearmed = -1;

  static bool before(const Node& a, const Node& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq_slot < b.seq_slot;
  }

  Action& slot_ref(std::uint32_t slot) {
    return (*chunks_[slot >> kChunkShift])[slot & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    WEHEY_EXPECTS(slot_count_ < kSlotLimit);
    if (slot_count_ == chunks_.size() * kChunkSize) {
      chunks_.push_back(std::make_unique<Chunk>());
      // Counting-allocator hook: pool growth is the simulator's only
      // steady-state allocation, so this is cheap enough to call inline.
      if (obs::runtime::enabled()) {
        obs::runtime::note_event_heap_chunk(sizeof(Chunk));
      }
    }
    return static_cast<std::uint32_t>(slot_count_++);
  }

  void sift_up(std::size_t i) {
    const Node node = nodes_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(node, nodes_[parent])) break;
      nodes_[i] = nodes_[parent];
      i = parent;
    }
    nodes_[i] = node;
  }

  /// Place `node` (the detached back element) into the hole left at the
  /// root, using the bottom-up strategy of libstdc++'s pop_heap: descend
  /// the min-child path to a leaf with ONE sibling comparison per level,
  /// then sift the node up from the leaf. The node came from the bottom of
  /// the heap, so it almost always belongs near a leaf and the upward phase
  /// terminates immediately — nearly halving the (mispredict-prone)
  /// comparisons of the textbook two-per-level descent.
  void sift_down_root(Node node) {
    const std::size_t n = nodes_.size();
    std::size_t hole = 0;
    std::size_t child = 1;
    while (child < n) {
      if (child + 1 < n && before(nodes_[child + 1], nodes_[child])) ++child;
      nodes_[hole] = nodes_[child];
      hole = child;
      child = 2 * hole + 1;
    }
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / 2;
      if (!before(node, nodes_[parent])) break;
      nodes_[hole] = nodes_[parent];
      hole = parent;
    }
    nodes_[hole] = node;
  }

  /// Overwrite the root with `node` and restore the heap with a standard
  /// two-comparison descent. Used for re-armed events, whose key is close
  /// to the minimum and therefore sinks at most a level or two — the
  /// bottom-up strategy would be counterproductive here.
  void replace_top(Node node) {
    const std::size_t n = nodes_.size();
    std::size_t hole = 0;
    for (;;) {
      std::size_t child = 2 * hole + 1;
      if (child >= n) break;
      if (child + 1 < n && before(nodes_[child + 1], nodes_[child])) ++child;
      if (!before(nodes_[child], node)) break;
      nodes_[hole] = nodes_[child];
      hole = child;
    }
    nodes_[hole] = node;
  }

  std::uint64_t next_seq_ = 0;
  std::uint32_t executing_ = kNoSlot;  ///< slot whose action is on the stack
  Time rearm_at_ = kNotRearmed;        ///< pending rearm_current() request
  std::size_t slot_count_ = 0;         ///< slots handed out so far
  std::vector<Node> nodes_;            ///< binary heap of (at, seq, slot)
  std::vector<std::unique_ptr<Chunk>> chunks_;  ///< stable action storage
  std::vector<std::uint32_t> free_slots_;       ///< recycled slot indices
};

}  // namespace wehey::netsim
