// Measurement records produced by replay endpoints and consumed by the
// WeHeY analysis algorithms (§3.4, §4).
//
// The asymmetry the paper highlights is preserved here: for TCP, loss is
// estimated at the *server* from retransmissions — over-counted and
// time-shifted relative to the true drop; for UDP, loss is observed at the
// *client* from sequence-number gaps.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"

namespace wehey::netsim {

/// One received data packet at the measuring endpoint.
struct Delivery {
  Time at = 0;
  std::uint32_t bytes = 0;
};

/// Everything measured along one path during one replay.
struct ReplayMeasurement {
  Time start = 0;  ///< replay start time
  Time end = 0;    ///< replay end time

  /// Per-packet transmission events (TCP: every data transmission at the
  /// server, retransmissions included; UDP: every trace packet sent).
  std::vector<Time> tx_times;
  /// Loss-event registration times (TCP: at retransmission; UDP: when the
  /// receiver observes the sequence gap).
  std::vector<Time> loss_times;
  /// Data arrivals at the client (basis of throughput samples).
  std::vector<Delivery> deliveries;
  /// Latency samples in milliseconds (TCP: RTT; UDP: one-way delay x2).
  std::vector<double> rtt_ms;

  Time duration() const { return end - start; }

  std::uint64_t transmitted_packets() const { return tx_times.size(); }
  std::uint64_t lost_packets() const { return loss_times.size(); }
  /// Overall loss (retransmission) rate of the replay.
  double loss_rate() const {
    return tx_times.empty()
               ? 0.0
               : static_cast<double>(loss_times.size()) /
                     static_cast<double>(tx_times.size());
  }
  std::int64_t delivered_bytes() const {
    std::int64_t sum = 0;
    for (const auto& d : deliveries) sum += d.bytes;
    return sum;
  }
  /// Average goodput over the replay (bits/sec).
  Rate average_throughput() const {
    return rate_of(delivered_bytes(), duration());
  }

  /// Split the replay into `intervals` equal slots and return per-slot
  /// throughput in bits/sec — WeHe's 100-interval throughput samples.
  std::vector<double> throughput_samples(std::size_t intervals) const;

  /// Throughput time series with a fixed interval size (for the Figure 4
  /// style throughput-vs-time plots).
  std::vector<double> throughput_over_time(Time interval) const;
};

/// Binned loss-rate series: per interval, packets transmitted and lost.
struct LossSeries {
  std::vector<std::uint64_t> txed;
  std::vector<std::uint64_t> lost;
};

/// Bin tx/loss events of a measurement into intervals of size `sigma`
/// starting at m.start.
LossSeries bin_losses(const ReplayMeasurement& m, Time sigma);

}  // namespace wehey::netsim
