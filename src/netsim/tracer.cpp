#include "netsim/tracer.hpp"

namespace wehey::netsim {

void PacketTracer::attach(Link& link, const std::string& point) {
  link.set_tx_listener([this, point](const Packet& pkt, Time at) {
    record({at, TraceEventKind::Transmit, point, pkt.flow, pkt.size,
            pkt.dscp, pkt.seq});
  });
  link.disc().set_drop_listener([this, point](const Packet& pkt, Time at) {
    record({at, TraceEventKind::Drop, point, pkt.flow, pkt.size, pkt.dscp,
            pkt.seq});
  });
}

void PacketTracer::record(TraceEvent ev) {
  if (capacity_ > 0 && events_.size() >= capacity_) {
    ++suppressed_;
    return;
  }
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> PacketTracer::flow_events(FlowId flow) const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_) {
    if (ev.flow == flow) out.push_back(ev);
  }
  return out;
}

std::unordered_map<std::string, std::uint64_t>
PacketTracer::drops_by_point() const {
  std::unordered_map<std::string, std::uint64_t> out;
  for (const auto& ev : events_) {
    if (ev.kind == TraceEventKind::Drop) ++out[ev.point];
  }
  return out;
}

void PacketTracer::dump(std::FILE* out) const {
  for (const auto& ev : events_) {
    std::fprintf(out, "%.9f %s %s flow=%u dscp=%u seq=%llu size=%u\n",
                 to_seconds(ev.at),
                 ev.kind == TraceEventKind::Drop ? "d" : "t",
                 ev.point.c_str(), ev.flow, ev.dscp,
                 static_cast<unsigned long long>(ev.seq), ev.size);
  }
  if (suppressed_ > 0) {
    std::fprintf(out, "# %llu events suppressed (capacity %zu)\n",
                 static_cast<unsigned long long>(suppressed_), capacity_);
  }
}

}  // namespace wehey::netsim
