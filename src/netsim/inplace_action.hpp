// A small-buffer-optimized replacement for std::function<void()> on the
// simulator's event hot path.
//
// Every scheduled event used to be a std::function whose capture — most
// often a Link transmission closure carrying a full ~300-byte Packet by
// value — exceeded libstdc++'s 16-byte inline buffer and forced one heap
// allocation (and one deallocation) per packet event. InplaceAction stores
// captures up to kInlineCapacity bytes directly inside the object, so the
// typical packet event never touches the allocator; larger captures fall
// back to a single heap cell transparently.
//
// Intentionally minimal: move-only, invoke-once-or-many, no target_type /
// allocator machinery. The dispatch table is one static per callable type.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace wehey::netsim {

class InplaceAction {
 public:
  /// Sized so a lambda capturing `this` + a Packet (the Link transmit and
  /// propagation closures, which dominate event traffic) fits inline.
  static constexpr std::size_t kInlineCapacity = 384;

  InplaceAction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceAction> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  InplaceAction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Construct a callable directly into this (empty or engaged) action —
  /// the zero-move path EventHeap uses to build events in their slots.
  template <typename F>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &inline_vtable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &heap_vtable<Fn>;
    }
  }

  InplaceAction(InplaceAction&& other) noexcept { move_from(other); }

  InplaceAction& operator=(InplaceAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InplaceAction(const InplaceAction&) = delete;
  InplaceAction& operator=(const InplaceAction&) = delete;

  ~InplaceAction() { reset(); }

  void operator()() { vt_->invoke(buf_); }

  explicit operator bool() const { return vt_ != nullptr; }

  void reset() {
    if (vt_ != nullptr) {
      if (vt_->destroy != nullptr) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void* self);
    /// Move-construct the stored callable from `src` into raw `dst`.
    void (*relocate)(void* src, void* dst) noexcept;
    /// Null for trivially destructible inline captures (the common case on
    /// the event hot path), so reset() skips the indirect call entirely.
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr VTable inline_vtable{
      [](void* self) { (*std::launder(static_cast<Fn*>(self)))(); },
      [](void* src, void* dst) noexcept {
        Fn* from = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* self) noexcept {
              std::launder(static_cast<Fn*>(self))->~Fn();
            },
  };

  template <typename Fn>
  static constexpr VTable heap_vtable{
      [](void* self) { (**std::launder(static_cast<Fn**>(self)))(); },
      [](void* src, void* dst) noexcept {
        Fn** from = std::launder(static_cast<Fn**>(src));
        ::new (dst) Fn*(*from);
        *from = nullptr;
      },
      [](void* self) noexcept {
        delete *std::launder(static_cast<Fn**>(self));
      },
  };

  void move_from(InplaceAction& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineCapacity];
};

}  // namespace wehey::netsim
