#include "netsim/measure.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace wehey::netsim {

std::vector<double> ReplayMeasurement::throughput_samples(
    std::size_t intervals) const {
  WEHEY_EXPECTS(intervals > 0);
  std::vector<double> out(intervals, 0.0);
  const Time d = duration();
  if (d <= 0) return out;
  std::vector<std::int64_t> bytes(intervals, 0);
  for (const auto& del : deliveries) {
    if (del.at < start || del.at > end) continue;
    auto idx = static_cast<std::size_t>(
        static_cast<double>(del.at - start) / static_cast<double>(d) *
        static_cast<double>(intervals));
    if (idx >= intervals) idx = intervals - 1;
    bytes[idx] += del.bytes;
  }
  const double slot_s = to_seconds(d) / static_cast<double>(intervals);
  for (std::size_t i = 0; i < intervals; ++i) {
    out[i] = static_cast<double>(bytes[i]) * 8.0 / slot_s;
  }
  return out;
}

std::vector<double> ReplayMeasurement::throughput_over_time(
    Time interval) const {
  WEHEY_EXPECTS(interval > 0);
  const Time d = duration();
  if (d <= 0) return {};
  const auto n = static_cast<std::size_t>((d + interval - 1) / interval);
  std::vector<std::int64_t> bytes(n, 0);
  for (const auto& del : deliveries) {
    if (del.at < start || del.at > end) continue;
    auto idx = static_cast<std::size_t>((del.at - start) / interval);
    if (idx >= n) idx = n - 1;
    bytes[idx] += del.bytes;
  }
  std::vector<double> out(n, 0.0);
  const double slot_s = to_seconds(interval);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(bytes[i]) * 8.0 / slot_s;
  }
  return out;
}

LossSeries bin_losses(const ReplayMeasurement& m, Time sigma) {
  WEHEY_EXPECTS(sigma > 0);
  LossSeries s;
  const Time d = m.duration();
  if (d <= 0) return s;
  const auto n = static_cast<std::size_t>((d + sigma - 1) / sigma);
  s.txed.assign(n, 0);
  s.lost.assign(n, 0);
  auto bin_of = [&](Time t) -> std::size_t {
    if (t < m.start) return 0;
    auto idx = static_cast<std::size_t>((t - m.start) / sigma);
    return std::min(idx, n - 1);
  };
  for (Time t : m.tx_times) {
    if (t > m.end) continue;
    ++s.txed[bin_of(t)];
  }
  for (Time t : m.loss_times) {
    if (t > m.end) continue;
    ++s.lost[bin_of(t)];
  }
  return s;
}

}  // namespace wehey::netsim
