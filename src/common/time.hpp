// Simulation time: a 64-bit signed count of nanoseconds since the start of
// the simulation. A plain integer (rather than std::chrono) keeps event
// ordering exact and serialization trivial, while the helpers below keep
// call sites readable.
#pragma once

#include <cstdint>
#include <string>

namespace wehey {

/// Simulation time stamp / duration in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

constexpr Time nanoseconds(double n) { return static_cast<Time>(n); }
constexpr Time microseconds(double us) {
  return static_cast<Time>(us * static_cast<double>(kMicrosecond));
}
constexpr Time milliseconds(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}
constexpr Time seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double to_milliseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Render a time as e.g. "12.345ms" for logs and error messages.
std::string format_time(Time t);

}  // namespace wehey
