#include "common/status.hpp"

namespace wehey {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return "ok";
    case StatusCode::InvalidData: return "invalid-data";
    case StatusCode::InsufficientData: return "insufficient-data";
    case StatusCode::Unavailable: return "unavailable";
    case StatusCode::Timeout: return "timeout";
    case StatusCode::Aborted: return "aborted";
  }
  return "?";
}

std::string Status::to_string() const {
  std::string out = wehey::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace wehey
