#include "common/time.hpp"

#include <cstdio>

namespace wehey {

std::string format_time(Time t) {
  char buf[64];
  if (t >= kSecond || t <= -kSecond) {
    std::snprintf(buf, sizeof buf, "%.6fs", to_seconds(t));
  } else if (t >= kMillisecond || t <= -kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_milliseconds(t));
  } else {
    std::snprintf(buf, sizeof buf, "%.3fus",
                  static_cast<double>(t) / static_cast<double>(kMicrosecond));
  }
  return buf;
}

}  // namespace wehey
