// A small CSV writer for plot-ready bench artifacts. Values containing
// commas, quotes or newlines are quoted per RFC 4180.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace wehey {

class CsvWriter {
 public:
  /// Opens (truncates) `path`; ok() reports success.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  void header(std::initializer_list<std::string> columns);
  void row(std::initializer_list<std::string> cells);
  void row(const std::vector<std::string>& cells);

  /// Format helper for numeric cells.
  static std::string num(double v, int precision = 6);

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::FILE* file_ = nullptr;
};

}  // namespace wehey
