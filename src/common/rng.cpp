#include "common/rng.hpp"

#include <cmath>

namespace wehey {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  // xoshiro state must not be all-zero; SplitMix64 expansion guarantees a
  // well-mixed, non-degenerate state from any seed.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(next() % range);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  // Inverse transform; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Rng::pareto(double scale, double shape) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return scale / std::pow(u, 1.0 / shape);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::split() {
  Rng child(next() ^ 0xd1b54a32d192ed03ULL);
  return child;
}

}  // namespace wehey
