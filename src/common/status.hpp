// Recoverable, data-dependent error reporting.
//
// The failure taxonomy of this codebase has two tiers (see check.hpp):
//
//  * programming-error contract violations — a caller broke an API's
//    documented precondition. These abort via WEHEY_EXPECTS and friends;
//    there is nothing sensible to recover to.
//  * data-dependent failures — a *measurement* turned out to be empty,
//    truncated, non-finite, desynchronized, or otherwise unusable. On a
//    real deployment these happen all the time (aborted replays, lost
//    uploads, skewed server clocks), so they must flow through a
//    recoverable path that the consumers (the localizer's degradation
//    logic, the session retry loop) can inspect and act on.
//
// wehey::Status is that recoverable path: a tiny value type carrying a
// machine-readable code plus a human-readable message. Functions that can
// fail on bad data either return a Status next to their result or record
// one inside the result struct.
#pragma once

#include <string>
#include <utility>

namespace wehey {

enum class StatusCode {
  Ok = 0,
  InvalidData,       ///< non-finite samples, negative durations, garbage
  InsufficientData,  ///< series too short / empty for the requested analysis
  Unavailable,       ///< a required resource (server pair, DB) not reachable
  Timeout,           ///< a bounded wait elapsed without an answer
  Aborted,           ///< the producing operation died before completing
};

const char* to_string(StatusCode code);

class Status {
 public:
  /// Default: Ok.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok_status() { return {}; }
  static Status invalid_data(std::string msg) {
    return {StatusCode::InvalidData, std::move(msg)};
  }
  static Status insufficient_data(std::string msg) {
    return {StatusCode::InsufficientData, std::move(msg)};
  }
  static Status unavailable(std::string msg) {
    return {StatusCode::Unavailable, std::move(msg)};
  }
  static Status timeout(std::string msg) {
    return {StatusCode::Timeout, std::move(msg)};
  }
  static Status aborted(std::string msg) {
    return {StatusCode::Aborted, std::move(msg)};
  }

  bool ok() const { return code_ == StatusCode::Ok; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "insufficient-data: loss series shorter than one interval".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string message_;
};

}  // namespace wehey
