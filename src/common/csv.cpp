#include "common/csv.hpp"

namespace wehey {
namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quoted(const std::string& cell) {
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::header(std::initializer_list<std::string> columns) {
  write_cells(std::vector<std::string>(columns));
}

void CsvWriter::row(std::initializer_list<std::string> cells) {
  write_cells(std::vector<std::string>(cells));
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_cells(cells);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  if (file_ == nullptr) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string& cell = cells[i];
    if (i > 0) std::fputc(',', file_);
    if (needs_quoting(cell)) {
      std::fputs(quoted(cell).c_str(), file_);
    } else {
      std::fputs(cell.c_str(), file_);
    }
  }
  std::fputc('\n', file_);
}

std::string CsvWriter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

}  // namespace wehey
