#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace wehey {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void log_write(LogLevel level, const std::string& msg) {
  // Serialize whole lines: parallel trial workers log concurrently and a
  // single fprintf is not guaranteed atomic across the tag + message.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace detail
}  // namespace wehey
