// Deterministic random-number generation for simulations.
//
// All stochastic components draw from an Rng handed to them explicitly, so
// every experiment is reproducible from a single seed. The generator is
// xoshiro256** (public-domain algorithm by Blackman & Vigna): fast, small
// state, and good statistical quality — more than enough for packet-level
// simulation.
#pragma once

#include <array>
#include <cstdint>

namespace wehey {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Reset the stream from a single 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next();

  // UniformRandomBitGenerator interface, so Rng works with <random>
  // distributions and std::shuffle.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);
  /// Exponential with the given mean (inter-arrival times of a Poisson
  /// process of rate 1/mean).
  double exponential(double mean);
  /// Standard normal via Box-Muller (no state caching: simple & adequate).
  double normal(double mean, double stddev);
  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed sizes).
  double pareto(double scale, double shape);
  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Derive an independent child stream (for giving each component its own
  /// generator without correlated draws).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace wehey
