// Precondition / invariant checks in the spirit of the Core Guidelines'
// Expects/Ensures. Violations are programming errors, so they abort with a
// message rather than throwing.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wehey::detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace wehey::detail

#define WEHEY_EXPECTS(cond)                                               \
  do {                                                                    \
    if (!(cond))                                                          \
      ::wehey::detail::check_failed("Precondition", #cond, __FILE__,      \
                                    __LINE__);                            \
  } while (0)

#define WEHEY_ENSURES(cond)                                               \
  do {                                                                    \
    if (!(cond))                                                          \
      ::wehey::detail::check_failed("Postcondition", #cond, __FILE__,     \
                                    __LINE__);                            \
  } while (0)

#define WEHEY_ASSERT(cond)                                                \
  do {                                                                    \
    if (!(cond))                                                          \
      ::wehey::detail::check_failed("Invariant", #cond, __FILE__,         \
                                    __LINE__);                            \
  } while (0)
