// Precondition / invariant checks in the spirit of the Core Guidelines'
// Expects/Ensures. Violations are programming errors, so they abort with a
// message rather than throwing.
//
// These macros are for *contract* checks only: conditions that hold
// whenever the caller respects the API's documented preconditions (a
// non-null sink, a positive configured bandwidth, matched vector lengths
// the caller constructed). They must NOT guard conditions that depend on
// measured data — an empty measurement series, a zero-length t_diff
// history, non-finite samples, a base RTT that could not be estimated.
// Those are operational realities on a deployed network, not bugs; route
// them through wehey::Status (common/status.hpp) so the consumers — the
// localizer's degradation logic and the session retry loop — can recover
// instead of taking the whole process down.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wehey::detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace wehey::detail

#define WEHEY_EXPECTS(cond)                                               \
  do {                                                                    \
    if (!(cond))                                                          \
      ::wehey::detail::check_failed("Precondition", #cond, __FILE__,      \
                                    __LINE__);                            \
  } while (0)

#define WEHEY_ENSURES(cond)                                               \
  do {                                                                    \
    if (!(cond))                                                          \
      ::wehey::detail::check_failed("Postcondition", #cond, __FILE__,     \
                                    __LINE__);                            \
  } while (0)

#define WEHEY_ASSERT(cond)                                                \
  do {                                                                    \
    if (!(cond))                                                          \
      ::wehey::detail::check_failed("Invariant", #cond, __FILE__,         \
                                    __LINE__);                            \
  } while (0)
