// Data-rate and data-size helpers. Rates are double bits-per-second; sizes
// are integral bytes. Conversion helpers keep the bits/bytes factor of 8 in
// one place.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace wehey {

/// Data rate in bits per second.
using Rate = double;

inline constexpr Rate kBitPerSec = 1.0;
inline constexpr Rate kKbps = 1e3;
inline constexpr Rate kMbps = 1e6;
inline constexpr Rate kGbps = 1e9;

constexpr Rate mbps(double v) { return v * kMbps; }
constexpr Rate kbps(double v) { return v * kKbps; }

/// Time to serialize `bytes` onto a link of rate `rate` (bits/sec).
constexpr Time transmission_time(std::int64_t bytes, Rate rate) {
  return static_cast<Time>(static_cast<double>(bytes) * 8.0 /
                           rate * static_cast<double>(kSecond));
}

/// Bytes transferred at `rate` during `t`.
constexpr double bytes_in(Rate rate, Time t) {
  return rate * to_seconds(t) / 8.0;
}

/// Rate achieved by `bytes` over duration `t` (0 if t == 0).
constexpr Rate rate_of(std::int64_t bytes, Time t) {
  return t > 0 ? static_cast<double>(bytes) * 8.0 / to_seconds(t) : 0.0;
}

}  // namespace wehey
