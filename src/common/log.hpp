// Minimal leveled logging to stderr. Simulations are deterministic, so the
// default level is Warn; tests and examples bump it when tracing behaviour.
#pragma once

#include <sstream>
#include <string>

namespace wehey {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Process-wide minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_write(LogLevel level, const std::string& msg);
}

#define WEHEY_LOG(level, expr)                                \
  do {                                                        \
    if (static_cast<int>(level) >=                            \
        static_cast<int>(::wehey::log_level())) {             \
      std::ostringstream wehey_log_oss;                       \
      wehey_log_oss << expr;                                  \
      ::wehey::detail::log_write(level, wehey_log_oss.str()); \
    }                                                         \
  } while (0)

#define LOG_TRACE(expr) WEHEY_LOG(::wehey::LogLevel::Trace, expr)
#define LOG_DEBUG(expr) WEHEY_LOG(::wehey::LogLevel::Debug, expr)
#define LOG_INFO(expr) WEHEY_LOG(::wehey::LogLevel::Info, expr)
#define LOG_WARN(expr) WEHEY_LOG(::wehey::LogLevel::Warn, expr)
#define LOG_ERROR(expr) WEHEY_LOG(::wehey::LogLevel::Error, expr)

}  // namespace wehey
