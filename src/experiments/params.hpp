// The Table-2 parameter grid of the emulation/simulation evaluation, plus
// runtime scaling knobs.
//
// Benches honour two environment variables:
//   WEHEY_FULL=1            — run the full paper-scale grid (slow);
//   WEHEY_RUNS_PER_CONFIG=N — repetitions per configuration (default
//                             depends on FULL).
#pragma once

#include <string>
#include <vector>

#include "experiments/scenario.hpp"

namespace wehey::experiments {

/// Table 2, "Policer Parameters".
struct ParameterGrid {
  std::vector<double> input_rate_factors{1.3, 1.5, 2.0, 2.5};
  std::vector<double> queue_burst_factors{0.25, 0.5, 1.0};
  std::vector<double> bg_diff_fractions{0.25, 0.5, 0.75};
  /// Table 2, "Network Parameters".
  std::vector<double> nc_utilizations{0.2, 0.95, 1.05, 1.15};
  std::vector<double> rtt2_ms{10, 15, 25, 35, 60, 120};
};

/// Defaults (bold values in Table 2).
inline constexpr double kDefaultInputRateFactor = 1.5;
inline constexpr double kDefaultQueueBurstFactor = 0.5;
inline constexpr double kDefaultBgDiffFraction = 0.5;
inline constexpr double kDefaultNcUtilization = 0.2;
inline constexpr double kDefaultRtt1Ms = 35.0;
inline constexpr double kDefaultRtt2Ms = 35.0;

/// The six trace pairs of §6.1: one TCP app and the five UDP apps.
std::vector<std::string> evaluation_apps();

struct RunScale {
  bool full = false;            ///< WEHEY_FULL
  std::size_t runs_per_config;  ///< repetitions per grid point
  /// Subsets of the grid used in the default (fast) mode.
  std::vector<double> input_rate_factors;
  std::vector<double> queue_burst_factors;
  Time replay_duration;
};

/// Resolve the run scale from the environment.
RunScale run_scale();

/// A §6.2-style testbed scenario at the default parameters.
ScenarioConfig default_scenario(const std::string& app, std::uint64_t seed);

}  // namespace wehey::experiments
