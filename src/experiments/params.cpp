#include "experiments/params.hpp"

#include <cstdlib>

#include "trace/apps.hpp"

namespace wehey::experiments {

std::vector<std::string> evaluation_apps() {
  std::vector<std::string> apps{"Netflix"};
  for (const auto& name : trace::udp_app_names()) apps.push_back(name);
  return apps;
}

namespace {

RunScale resolve_run_scale() {
  RunScale s;
  const char* full = std::getenv("WEHEY_FULL");
  s.full = full != nullptr && full[0] == '1';
  if (s.full) {
    s.runs_per_config = 5;  // as in §6.2 (five backgrounds per config)
    s.input_rate_factors = {1.3, 1.5, 2.0, 2.5};
    s.queue_burst_factors = {0.25, 0.5, 1.0};
    s.replay_duration = seconds(45);
  } else {
    s.runs_per_config = 2;
    s.input_rate_factors = {1.5, 2.5};
    s.queue_burst_factors = {0.25, 1.0};
    // §3.4: replays shorter than ~45 s yield too few loss measurements
    // for reliable conclusions, so even fast mode keeps the full length.
    s.replay_duration = seconds(45);
  }
  if (const char* runs = std::getenv("WEHEY_RUNS_PER_CONFIG")) {
    const long v = std::strtol(runs, nullptr, 10);
    if (v > 0) s.runs_per_config = static_cast<std::size_t>(v);
  }
  return s;
}

}  // namespace

RunScale run_scale() {
  // Resolved once: getenv is not safe against concurrent setenv, and trial
  // workers call this via default_scenario(). The cached copy makes the
  // answer immutable for the life of the process.
  static const RunScale cached = resolve_run_scale();
  return cached;
}

ScenarioConfig default_scenario(const std::string& app, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.app = app;
  cfg.seed = seed;
  cfg.replay_duration = run_scale().replay_duration;
  cfg.rtt1_ms = kDefaultRtt1Ms;
  cfg.rtt2_ms = kDefaultRtt2Ms;
  cfg.placement = Placement::CommonLink;
  cfg.input_rate_factor = kDefaultInputRateFactor;
  cfg.queue_burst_factor = kDefaultQueueBurstFactor;
  cfg.bg_diff_fraction = kDefaultBgDiffFraction;
  cfg.nc_utilization = kDefaultNcUtilization;
  return cfg;
}

}  // namespace wehey::experiments
