#include "experiments/history.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "stats/descriptive.hpp"

namespace wehey::experiments {

std::vector<double> build_t_diff_history(const ScenarioConfig& scenario,
                                         const HistoryConfig& cfg) {
  WEHEY_EXPECTS(cfg.replays >= 2);
  std::vector<double> means;
  means.reserve(cfg.replays);
  for (std::size_t i = 0; i < cfg.replays; ++i) {
    ScenarioConfig run = scenario;
    run.seed = scenario.seed * 104729ULL + i * 31ULL + 7ULL;
    const auto rep = run_phase(run, Phase::SingleInverted);
    means.push_back(stats::mean(rep.p1.meas.throughput_samples(100)));
  }
  // All pair combinations, as the paper pairs every two tests of the same
  // client/app/carrier within the time window.
  std::vector<double> t_diff;
  t_diff.reserve(means.size() * (means.size() - 1) / 2);
  for (std::size_t i = 0; i < means.size(); ++i) {
    for (std::size_t j = i + 1; j < means.size(); ++j) {
      const double hi = std::max(means[i], means[j]);
      t_diff.push_back(hi > 0 ? (means[i] - means[j]) / hi : 0.0);
    }
  }
  return t_diff;
}

}  // namespace wehey::experiments
