// Bridge between core::DecisionTrace (the localizer's verdict provenance)
// and obs::DecisionSection (its RunReport v4 serialization). The two
// structs are deliberately parallel — wehey_core cannot depend on
// wehey_obs or vice versa — so the field copy lives here, in the layer
// that links both.
#pragma once

#include "core/localizer.hpp"
#include "obs/report.hpp"

namespace wehey::experiments {

/// Copy a localizer decision trace into the report's decision section. A
/// default-constructed trace (run never reached localize()) maps onto
/// the empty-but-valid block the v4 schema requires.
inline obs::DecisionSection decision_section(const core::DecisionTrace& t) {
  obs::DecisionSection s;
  s.evaluated = t.evaluated;
  s.has_margin = t.has_verdict_margin;
  s.margin = t.verdict_margin;
  s.detectors.reserve(t.detectors.size());
  for (const core::DecisionEntry& e : t.detectors) {
    obs::DecisionRow row;
    row.name = e.detector;
    row.statistic = e.statistic;
    row.threshold = e.threshold;
    row.margin = e.margin;
    row.outcome = e.outcome;
    row.valid = e.valid;
    row.has_rho = e.is_loss_size;
    row.rho = e.rho;
    row.sigma_ms = e.sigma_ms;
    s.detectors.push_back(std::move(row));
  }
  s.has_aggregation = t.aggregation.present;
  s.sizes_tested = t.aggregation.sizes_tested;
  s.sizes_correlated = t.aggregation.sizes_correlated;
  s.sizes_valid = t.aggregation.sizes_valid;
  s.aggregation_threshold = t.aggregation.threshold;
  s.aggregation_margin = t.aggregation.margin;
  s.aggregation_outcome = t.aggregation.outcome;
  s.degradations = t.degradations;
  return s;
}

}  // namespace wehey::experiments
