// ISP5's throttler (§5, Figure 4): packets pass unthrottled until
// `trigger_bytes` of the targeted class have gone through, then a
// token-bucket filter at a fixed rate applies — the "fixed-rate throttling
// kicks in after some criterion is met" behaviour the paper hypothesizes
// for the ISP where the throughput comparison mostly fails.
#pragma once

#include <algorithm>
#include <deque>
#include <optional>

#include "common/check.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "netsim/packet.hpp"
#include "netsim/queue.hpp"

namespace wehey::experiments {

/// See the file comment.: packets pass unthrottled until `trigger_bytes` of the
/// targeted class have gone through, then a token-bucket filter at a fixed
/// rate applies (per the §5 hypothesis and Figure 4).
class DelayedTbfDisc final : public netsim::QueueDisc {
 public:
  DelayedTbfDisc(std::int64_t trigger_bytes, Rate rate, std::int64_t burst,
                 std::int64_t limit)
      : trigger_(trigger_bytes), rate_(rate), burst_(burst), limit_(limit) {
    WEHEY_EXPECTS(rate > 0 && burst > 0 && limit >= 0);
  }

  bool enqueue(netsim::Packet pkt, Time now) override {
    refill(now);
    seen_ += pkt.size;
    if (!active_ && seen_ >= trigger_) {
      active_ = true;
      tokens_ = static_cast<double>(burst_);
      last_refill_ = now;
    }
    if (active_ && bytes_ + pkt.size > limit_) {
      notify_drop(pkt, now);
      return false;
    }
    bytes_ += pkt.size;
    q_.push_back(std::move(pkt));
    return true;
  }

  std::optional<netsim::Packet> dequeue(Time now) override {
    refill(now);
    if (q_.empty()) return std::nullopt;
    if (active_ && static_cast<double>(q_.front().size) > tokens_) {
      return std::nullopt;
    }
    netsim::Packet pkt = std::move(q_.front());
    q_.pop_front();
    bytes_ -= pkt.size;
    if (active_) tokens_ -= static_cast<double>(pkt.size);
    return pkt;
  }

  Time next_ready(Time now) const override {
    if (q_.empty()) return netsim::kNever;
    if (!active_) return now;
    const double avail = tokens_at(now);
    const double needed = static_cast<double>(q_.front().size);
    if (needed <= avail) return now;
    const double wait_s = (needed - avail) * 8.0 / rate_;
    return now + std::max<Time>(1, seconds(wait_s));
  }

  std::int64_t backlog_bytes() const override { return bytes_; }
  std::size_t backlog_packets() const override { return q_.size(); }
  bool throttling_active() const { return active_; }

  /// Fluid coupling: the aggregate's bytes count toward the trigger and,
  /// once throttling is active, drain real tokens like packets would.
  double fluid_offer(double bytes, std::uint8_t dscp, Time now) override {
    (void)dscp;
    if (bytes <= 0.0) return 0.0;
    refill(now);
    seen_ += static_cast<std::int64_t>(bytes + 0.5);
    if (!active_ && seen_ >= trigger_) {
      active_ = true;
      tokens_ = static_cast<double>(burst_);
      last_refill_ = now;
    }
    if (!active_) return bytes;
    const double take = std::min(tokens_, bytes);
    tokens_ -= take;
    return take;
  }

 private:
  void refill(Time now) {
    if (!active_ || now <= last_refill_) return;
    tokens_ = std::min(static_cast<double>(burst_),
                       tokens_ + rate_ / 8.0 * to_seconds(now - last_refill_));
    last_refill_ = now;
  }
  double tokens_at(Time now) const {
    if (!active_) return 0.0;
    return std::min(
        static_cast<double>(burst_),
        tokens_ + rate_ / 8.0 *
                      to_seconds(std::max<Time>(0, now - last_refill_)));
  }

  std::int64_t trigger_;
  Rate rate_;
  std::int64_t burst_;
  std::int64_t limit_;
  bool active_ = false;
  std::int64_t seen_ = 0;
  double tokens_ = 0.0;
  Time last_refill_ = 0;
  std::int64_t bytes_ = 0;
  std::deque<netsim::Packet> q_;
};


}  // namespace wehey::experiments
