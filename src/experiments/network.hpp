// Assembly of the Figure-1 evaluation topology for one replay phase:
//
//   server s1 --- l1 (non-common) ---+
//                                     +--- l_c (common) --- client
//   server s2 --- l2 (non-common) ---+
//
// Forward links are bandwidth/delay Links with either a plain FIFO or the
// Appendix-C.1 rate-limiter (classifier + FIFO + TBF, round-robin) as
// their queueing discipline. Reverse (ACK) paths are ideal fixed-delay
// pipes — differentiation in all of the paper's scenarios acts on the
// downstream direction.
//
// The network also hosts the background traffic (one CAIDA-like workload
// per path, replayed by real TCP senders) so that the rate-limiter and
// the links see realistic competing traffic.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "netsim/fluid.hpp"
#include "netsim/link.hpp"
#include "netsim/measure.hpp"
#include "netsim/packet.hpp"
#include "netsim/queue.hpp"
#include "netsim/simulator.hpp"
#include "topology/traceroute.hpp"
#include "trace/background.hpp"
#include "trace/trace.hpp"
#include "transport/tcp.hpp"
#include "transport/quic.hpp"
#include "transport/udp.hpp"

namespace wehey::experiments {

enum class Placement {
  None,               ///< no rate-limiter anywhere
  CommonLink,         ///< one collective rate-limiter on l_c (FN scenarios)
  NonCommonLinks,     ///< two identical rate-limiters on l1 and l2 (FP)
  PerFlowCommonLink,  ///< per-flow throttling on l_c: one token bucket per
                      ///< flow key (§3.2 limitation / §7 countermeasure)
};

struct LimiterParams {
  Rate rate = 0;           ///< token replenish rate (bits/sec)
  std::int64_t burst = 0;  ///< bucket size in bytes
  std::int64_t limit = 0;  ///< backlog allowed awaiting tokens (bytes)
};

/// Custom queueing-discipline factory (e.g. the delayed fixed-rate
/// throttler modelling ISP5's behaviour, §5).
using DiscFactory = std::function<std::unique_ptr<netsim::QueueDisc>()>;

struct NetworkParams {
  Rate bw_nc1 = mbps(50);  ///< l1 bandwidth
  Rate bw_nc2 = mbps(50);  ///< l2 bandwidth
  Rate bw_c = mbps(100);   ///< l_c bandwidth
  Time rtt1 = milliseconds(35);
  Time rtt2 = milliseconds(35);
  Time common_delay = milliseconds(2);  ///< l_c propagation share
  Placement placement = Placement::None;
  LimiterParams limiter;              ///< used per placement
  std::int64_t fifo_limit_bytes = 0;  ///< 0: sized from BDP
  /// Overrides the common link's disc when set (placement is ignored for
  /// the common link in that case).
  DiscFactory common_disc_factory;

  /// Optional last-mile access link between l_c and the client, with
  /// time-varying capacity — the source of the "normal throughput
  /// variation" T_diff captures on cellular networks (§5). 0 disables.
  Rate access_rate = 0;
  double access_jitter_sigma = 0.25;  ///< lognormal sigma of capacity
  Time access_update_interval = seconds(2);
};

/// One path's replay measurement plus the per-replay statistics the
/// evaluation reports (Figures 5 and 7).
struct PathReport {
  netsim::ReplayMeasurement meas;
  double retx_rate = 0.0;             ///< TCP retransmission rate
  double avg_queuing_delay_ms = 0.0;  ///< avg RTT - min RTT (Fig. 5b)
  double avg_throughput_bps = 0.0;
  /// Fault injection: the replay server died mid-stream (the measurement
  /// covers only the part before `aborted_at`). Consumers must treat the
  /// replay as failed rather than analyze the stump.
  bool aborted = false;
  Time aborted_at = 0;  ///< absolute simulation time of the abort
};

/// A mid-stream replay abort (fault injection): the server stops supplying
/// bytes `after` into the replay, or once `after_bytes` cumulative payload
/// bytes have been offered (>= 0 wins over `after`). Inactive by default.
struct ReplayCut {
  Time after = -1;
  std::int64_t after_bytes = -1;
  bool active() const { return after >= 0 || after_bytes >= 0; }
};

/// A retransmit livelock (fault injection, FaultKind::EventStorm): the
/// replay's sender wedges `after` into the replay and from then on fires
/// a timer every `interval` without ever advancing the transfer. The
/// chain never terminates on its own — ending the run is the job of the
/// supervisor's per-trial budget. Inactive by default.
struct ReplayStorm {
  Time after = -1;
  Time interval = 0;
  bool active() const { return after >= 0 && interval > 0; }
};

class FigureOneNetwork {
 public:
  FigureOneNetwork(netsim::Simulator& sim, const NetworkParams& params,
                   Rng& rng);
  ~FigureOneNetwork();
  FigureOneNetwork(const FigureOneNetwork&) = delete;
  FigureOneNetwork& operator=(const FigureOneNetwork&) = delete;

  /// Attach a CAIDA-like background workload whose flows enter through
  /// path `path_index` (1 or 2). Differentiated flows carry dscp=1.
  void attach_background(int path_index,
                         const std::vector<trace::BackgroundFlow>& flows,
                         const transport::TcpConfig& tcp = {});

  /// Fluid-mode alternative to attach_background: carry the same workload
  /// as a piecewise-constant rate aggregate on the path's link chain
  /// (netsim::FluidSource) — one simulator event per coarse step instead
  /// of per-packet traffic. Replays still see the load through reduced
  /// effective link capacity and the shared discs.
  void attach_fluid_background(int path_index,
                               const trace::FluidProfile& profile);

  /// Start a TCP trace replay on path `path_index` at time `start`; the
  /// byte schedule comes from `t` (§3.4: congestion control and pacing
  /// dictate wire timing). Like WeHe's replays of real streaming traces,
  /// the session may comprise several parallel connections
  /// (`connections`); the returned id aggregates their measurements.
  /// `policer_key` != 0 makes every packet of this replay carry that key,
  /// so a per-flow rate-limiter assigns it to that flow's bucket (the §7
  /// same-flow countermeasure gives both replays one key).
  int start_tcp_replay(int path_index, const trace::AppTrace& t, Time start,
                       const transport::TcpConfig& tcp, int connections = 1,
                       netsim::FlowId policer_key = 0);

  /// Start a UDP trace replay (the trace must already carry the desired
  /// timing discipline).
  int start_udp_replay(int path_index, const trace::AppTrace& t, Time start,
                       netsim::FlowId policer_key = 0);

  /// Start a QUIC trace replay (§7): the trace is the byte-availability
  /// schedule, like the TCP replay, but carried over the QUIC transport.
  int start_quic_replay(int path_index, const trace::AppTrace& t,
                        Time start, const transport::QuicConfig& quic = {});

  /// Run the simulation until `until` plus a drain grace period.
  void run(Time until, Time grace = seconds(3));

  /// Collect the report of replay `id`, clamped to [start, start+duration].
  PathReport report(int id, Time start, Time duration);

  /// Losses inside the TBF class of the rate-limiter(s).
  std::uint64_t limiter_drops() const;

  /// Direct access to the links (tests, instrumentation).
  netsim::Link& common_link() { return *common_; }
  netsim::Link& noncommon_link(int path_index) {
    return path_index == 1 ? *nc1_ : *nc2_;
  }

  /// The end-of-replay traceroute of §3.4 step 3: an annotated record of
  /// the hops from server `path_index` to the client, as scamper would
  /// report them on this topology. With route churn enabled (see below),
  /// path 1 reports a detour through path 2's transit — the "topology no
  /// longer suitable" condition step 4 re-checks for.
  topology::TracerouteRecord traceroute(int path_index) const;

  /// Traceroute of a standby measurement server "s<index>" (index >= 3)
  /// that is deployed behind its own transit but converges with s1/s2 at
  /// the same in-ISP router. Standby servers carry no replay traffic; the
  /// daily TC ingest records them so the topology database holds more
  /// than one suitable pair per client prefix (§3.4's fallback pool).
  topology::TracerouteRecord standby_traceroute(int index) const;

  /// Simulate inter-domain route churn between replays: subsequent
  /// traceroutes of path 1 share a transit hop with path 2.
  void set_route_churn(bool churn) { route_churn_ = churn; }

  /// Snapshot the per-link delivery/drop totals (and the rate-limiter drop
  /// count) into the metrics registry of the recorder bound to this
  /// thread. No-op without a recorder; call once per finished phase so the
  /// numbers are end-of-run totals, not running sums.
  void snapshot_metrics() const;

  /// Arm a mid-stream abort for the NEXT start_*_replay call (fault
  /// injection). One-shot: consumed by that call, inactive again after.
  void set_next_replay_cut(const ReplayCut& cut) { next_cut_ = cut; }

  /// Arm a retransmit livelock for the NEXT start_*_replay call (fault
  /// injection). One-shot, like set_next_replay_cut.
  void set_next_replay_storm(const ReplayStorm& storm) {
    next_storm_ = storm;
  }

  /// The client ISP's ASN used in traceroute annotations.
  static constexpr topology::Asn kClientAsn = 64500;

  netsim::Simulator& sim() { return sim_; }

 private:
  struct TcpReplay;
  struct UdpReplay;
  struct QuicReplay;
  struct BackgroundFlowRt;

  netsim::PacketSink* path_entry(int path_index);
  Time reverse_delay(int path_index) const;

  netsim::Simulator& sim_;
  NetworkParams params_;
  Rng& rng_;
  netsim::PacketIdSource ids_;
  netsim::FlowId next_flow_ = 1;

  std::unique_ptr<netsim::Demux> client_;
  std::unique_ptr<netsim::Link> access_;  // optional last-mile link
  std::unique_ptr<netsim::Link> common_;
  std::unique_ptr<netsim::Link> nc1_;
  std::unique_ptr<netsim::Link> nc2_;
  Rng access_rng_;

  /// Consume the one-shot cut armed for the next replay, if any.
  ReplayCut take_next_cut();

  /// Consume the one-shot storm armed for the next replay, if any, and —
  /// when active — schedule its self-perpetuating timer chain.
  void launch_next_storm(Time replay_start);

  std::vector<std::unique_ptr<TcpReplay>> tcp_replays_;
  std::vector<std::unique_ptr<UdpReplay>> udp_replays_;
  std::vector<std::unique_ptr<QuicReplay>> quic_replays_;
  std::vector<std::unique_ptr<BackgroundFlowRt>> background_;
  std::vector<std::unique_ptr<netsim::FluidSource>> fluid_;
  bool route_churn_ = false;
  ReplayCut next_cut_;
  ReplayStorm next_storm_;
};

/// Size a token bucket per Appendix C.1: burst = rate x RTT (bytes),
/// limit = queue_burst_factor x burst.
LimiterParams make_limiter(Rate rate, Time rtt, double queue_burst_factor);

}  // namespace wehey::experiments
