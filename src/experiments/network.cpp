#include "experiments/network.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "obs/recorder.hpp"
#include "stats/descriptive.hpp"

namespace wehey::experiments {

using netsim::Demux;
using netsim::FifoDisc;
using netsim::Link;
using netsim::Pipe;
using netsim::RateLimiterDisc;
using netsim::TbfDisc;

namespace {

std::unique_ptr<netsim::QueueDisc> make_disc(Placement placement,
                                             bool this_link_limited,
                                             const LimiterParams& lp,
                                             std::int64_t fifo_limit) {
  auto fifo = std::make_unique<FifoDisc>(fifo_limit);
  if (!this_link_limited) return fifo;
  WEHEY_EXPECTS(lp.rate > 0 && lp.burst > 0);
  if (placement == Placement::PerFlowCommonLink) {
    return std::make_unique<netsim::PerFlowRateLimiterDisc>(
        std::move(fifo), lp.rate, lp.burst, lp.limit);
  }
  auto tbf = std::make_unique<TbfDisc>(lp.rate, lp.burst, lp.limit);
  return std::make_unique<RateLimiterDisc>(std::move(fifo), std::move(tbf));
}

std::int64_t default_fifo_limit(Rate bw) {
  // ~50 ms of buffering, at least 64 KB — a typical router egress buffer.
  return std::max<std::int64_t>(
      64 * 1024, static_cast<std::int64_t>(bytes_in(bw, milliseconds(50))));
}

}  // namespace

LimiterParams make_limiter(Rate rate, Time rtt, double queue_burst_factor) {
  LimiterParams lp;
  lp.rate = rate;
  // Floors keep the bucket meaningful at scaled-down rates: a burst of a
  // handful of MTUs and at least a few packets of backlog, as real tc-tbf
  // deployments configure (Appendix C.1).
  lp.burst = std::max<std::int64_t>(
      6 * 1500, static_cast<std::int64_t>(bytes_in(rate, rtt)));
  lp.limit = std::max<std::int64_t>(
      3 * 1500, static_cast<std::int64_t>(static_cast<double>(lp.burst) *
                                          queue_burst_factor));
  return lp;
}

// ------------------------------------------------------------ inner types

struct FigureOneNetwork::TcpReplay {
  int path = 1;
  Time start = 0;
  bool aborted = false;
  Time aborted_at = 0;
  // One entry per parallel connection of the replayed session.
  std::vector<std::unique_ptr<Pipe>> ack_pipes;
  std::vector<std::unique_ptr<transport::TcpSender>> senders;
  std::vector<std::unique_ptr<transport::TcpReceiver>> receivers;
};

struct FigureOneNetwork::UdpReplay {
  int path = 1;
  bool aborted = false;
  Time aborted_at = 0;
  std::unique_ptr<transport::UdpReplayReceiver> receiver;
  std::unique_ptr<transport::UdpReplaySender> sender;
};

struct FigureOneNetwork::QuicReplay {
  int path = 1;
  std::unique_ptr<Pipe> ack_pipe;
  std::unique_ptr<transport::QuicSender> sender;
  std::unique_ptr<transport::QuicReceiver> receiver;
};

struct FigureOneNetwork::BackgroundFlowRt {
  std::unique_ptr<Pipe> ack_pipe;
  std::unique_ptr<transport::TcpSender> sender;
  std::unique_ptr<transport::TcpReceiver> receiver;
};

// ------------------------------------------------------------ network

FigureOneNetwork::FigureOneNetwork(netsim::Simulator& sim,
                                   const NetworkParams& params, Rng& rng)
    : sim_(sim), params_(params), rng_(rng) {
  WEHEY_EXPECTS(params.rtt1 > 2 * params.common_delay);
  WEHEY_EXPECTS(params.rtt2 > 2 * params.common_delay);

  client_ = std::make_unique<Demux>();

  const bool limit_common = params.placement == Placement::CommonLink ||
                            params.placement == Placement::PerFlowCommonLink;
  const bool limit_nc = params.placement == Placement::NonCommonLinks;
  const std::int64_t fifo_c = params.fifo_limit_bytes > 0
                                  ? params.fifo_limit_bytes
                                  : default_fifo_limit(params.bw_c);
  const std::int64_t fifo_nc1 = params.fifo_limit_bytes > 0
                                    ? params.fifo_limit_bytes
                                    : default_fifo_limit(params.bw_nc1);
  const std::int64_t fifo_nc2 = params.fifo_limit_bytes > 0
                                    ? params.fifo_limit_bytes
                                    : default_fifo_limit(params.bw_nc2);

  netsim::PacketSink* last_hop = client_.get();
  if (params.access_rate > 0) {
    access_ = std::make_unique<Link>(
        sim_, params.access_rate, milliseconds(1),
        std::make_unique<FifoDisc>(default_fifo_limit(params.access_rate)),
        client_.get());
    last_hop = access_.get();
    // Time-varying capacity: a lognormal multiplicative draw around the
    // nominal rate every update interval (cellular last-hop behaviour).
    access_rng_ = rng.split();
    const Rate nominal = params.access_rate;
    const double sigma = params.access_jitter_sigma;
    const Time step = params.access_update_interval;
    auto* link = access_.get();
    // A self-rescheduling capacity update, owning its own RNG stream; the
    // scheduled closures hold shared ownership so the updater outlives
    // any pending event.
    struct Updater : std::enable_shared_from_this<Updater> {
      netsim::Simulator& sim;
      Link* link;
      Rate nominal;
      double sigma;
      Time step;
      Rng rng;
      Updater(netsim::Simulator& s, Link* l, Rate n, double sg, Time st,
              Rng r)
          : sim(s), link(l), nominal(n), sigma(sg), step(st), rng(r) {}
      void fire() {
        const double factor =
            std::clamp(rng.lognormal(0.0, sigma), 0.35, 3.0);
        link->set_bandwidth(nominal * factor);
        // Re-arm the executing closure in place: the retained capture keeps
        // the shared ownership alive with no per-tick copy.
        sim.reschedule_current(step);
      }
    };
    auto updater = std::make_shared<Updater>(sim_, link, nominal, sigma,
                                             step, access_rng_.split());
    sim_.schedule(step, [updater] { updater->fire(); });
  }

  auto common_disc = params.common_disc_factory
                         ? params.common_disc_factory()
                         : make_disc(params.placement, limit_common,
                                     params.limiter, fifo_c);
  common_ = std::make_unique<Link>(sim_, params.bw_c, params.common_delay,
                                   std::move(common_disc), last_hop);

  // The forward one-way delay of path i is rtt_i / 2; l_c contributes
  // common_delay of it, the non-common link the rest.
  const Time d1 = params.rtt1 / 2 - params.common_delay;
  const Time d2 = params.rtt2 / 2 - params.common_delay;
  nc1_ = std::make_unique<Link>(sim_, params.bw_nc1, d1,
                                make_disc(params.placement, limit_nc,
                                          params.limiter, fifo_nc1),
                                common_.get());
  nc2_ = std::make_unique<Link>(sim_, params.bw_nc2, d2,
                                make_disc(params.placement, limit_nc,
                                          params.limiter, fifo_nc2),
                                common_.get());

  // Per-link utilization histograms ("link.<name>.utilization").
  common_->set_obs_label("common");
  nc1_->set_obs_label("nc1");
  nc2_->set_obs_label("nc2");
  if (access_) access_->set_obs_label("access");
}

FigureOneNetwork::~FigureOneNetwork() = default;

netsim::PacketSink* FigureOneNetwork::path_entry(int path_index) {
  WEHEY_EXPECTS(path_index == 1 || path_index == 2);
  return path_index == 1 ? static_cast<netsim::PacketSink*>(nc1_.get())
                         : static_cast<netsim::PacketSink*>(nc2_.get());
}

Time FigureOneNetwork::reverse_delay(int path_index) const {
  return (path_index == 1 ? params_.rtt1 : params_.rtt2) / 2;
}

void FigureOneNetwork::attach_background(
    int path_index, const std::vector<trace::BackgroundFlow>& flows,
    const transport::TcpConfig& tcp) {
  netsim::PacketSink* entry = path_entry(path_index);
  for (const auto& f : flows) {
    auto rt = std::make_unique<BackgroundFlowRt>();
    const netsim::FlowId flow = next_flow_++;
    const std::uint8_t dscp = f.differentiated
                                  ? netsim::kDscpDifferentiated
                                  : netsim::kDscpDefault;
    rt->ack_pipe = std::make_unique<Pipe>(sim_, reverse_delay(path_index));
    rt->sender = std::make_unique<transport::TcpSender>(
        sim_, ids_, tcp, flow, dscp, entry);
    rt->receiver = std::make_unique<transport::TcpReceiver>(
        sim_, ids_, tcp, flow, rt->ack_pipe.get());
    rt->ack_pipe->set_next(rt->sender.get());
    client_->add_route(flow, rt->receiver.get());

    auto* sender = rt->sender.get();
    const std::int64_t bytes = f.bytes;
    sim_.schedule_at(f.start, [sender, bytes] { sender->supply(bytes); });
    background_.push_back(std::move(rt));
  }
}

void FigureOneNetwork::attach_fluid_background(
    int path_index, const trace::FluidProfile& profile) {
  WEHEY_EXPECTS(path_index == 1 || path_index == 2);
  if (profile.empty()) return;
  netsim::FluidSegments seg;
  seg.step = profile.step;
  seg.dflt = profile.dflt;
  seg.diff = profile.diff;
  seg.burst_dflt = profile.burst_dflt;
  seg.burst_diff = profile.burst_diff;
  std::vector<Link*> path;
  path.push_back(path_index == 1 ? nc1_.get() : nc2_.get());
  path.push_back(common_.get());
  if (access_) path.push_back(access_.get());
  auto src = std::make_unique<netsim::FluidSource>(sim_, std::move(seg),
                                                   std::move(path));
  // Stagger the two paths' step grids by half a step: they share the
  // common and access links, and in-phase stepping would drain tokens and
  // fire bursts at identical instants on both.
  src->start(path_index == 1 ? 0 : profile.step / 2);
  fluid_.push_back(std::move(src));
}

ReplayCut FigureOneNetwork::take_next_cut() {
  const ReplayCut cut = next_cut_;
  next_cut_ = ReplayCut{};
  return cut;
}

void FigureOneNetwork::launch_next_storm(Time replay_start) {
  const ReplayStorm storm = next_storm_;
  next_storm_ = ReplayStorm{};
  if (!storm.active()) return;
  // The livelock: a timer that does nothing but rearm itself. The chain
  // floods the event heap at `interval` period forever — by design there
  // is no termination condition here; only the supervisor's per-trial
  // budget (src/parallel/supervisor.hpp) ends such a run.
  netsim::Simulator* sim = &sim_;
  const Time interval = storm.interval;
  sim_.schedule_at(replay_start + storm.after,
                   [sim, interval] { sim->reschedule_current(interval); });
}

int FigureOneNetwork::start_tcp_replay(int path_index,
                                       const trace::AppTrace& t, Time start,
                                       const transport::TcpConfig& tcp,
                                       int connections,
                                       netsim::FlowId policer_key) {
  WEHEY_EXPECTS(t.transport == trace::Transport::Tcp);
  WEHEY_EXPECTS(connections >= 1);
  const ReplayCut cut = take_next_cut();
  launch_next_storm(start);
  auto rt = std::make_unique<TcpReplay>();
  rt->path = path_index;
  rt->start = start;
  const std::uint8_t dscp = t.carries_sni ? netsim::kDscpDifferentiated
                                          : netsim::kDscpDefault;
  for (int c = 0; c < connections; ++c) {
    const netsim::FlowId flow = next_flow_++;
    auto pipe = std::make_unique<Pipe>(sim_, reverse_delay(path_index));
    auto sender = std::make_unique<transport::TcpSender>(
        sim_, ids_, tcp, flow, dscp, path_entry(path_index));
    if (policer_key != 0) sender->set_policer_key(policer_key);
    auto receiver = std::make_unique<transport::TcpReceiver>(
        sim_, ids_, tcp, flow, pipe.get());
    pipe->set_next(sender.get());
    client_->add_route(flow, receiver.get());
    rt->ack_pipes.push_back(std::move(pipe));
    rt->senders.push_back(std::move(sender));
    rt->receivers.push_back(std::move(receiver));
  }

  // The trace is the byte-availability schedule: each recorded packet's
  // payload becomes available at its recorded offset; TCP turns it into
  // wire traffic at its own pace. Packets are striped across the
  // session's connections, like a streaming client's parallel range
  // requests. An armed ReplayCut stops the supply mid-stream: the server
  // process died, nothing after the cut is ever offered to the network.
  std::size_t next_conn = 0;
  std::int64_t supplied = 0;
  for (const auto& tp : t.packets) {
    if (cut.active()) {
      const bool past_time = cut.after >= 0 && tp.offset > cut.after;
      const bool past_bytes =
          cut.after_bytes >= 0 && supplied + tp.size > cut.after_bytes;
      if (past_time || past_bytes) {
        rt->aborted = true;
        rt->aborted_at = start + tp.offset;
        break;
      }
    }
    auto* sender = rt->senders[next_conn].get();
    next_conn = (next_conn + 1) % rt->senders.size();
    const std::int64_t bytes = tp.size;
    supplied += bytes;
    sim_.schedule_at(start + tp.offset,
                     [sender, bytes] { sender->supply(bytes); });
  }
  tcp_replays_.push_back(std::move(rt));
  // TCP ids are positive, UDP ids negative, so one report() entry point
  // can dispatch.
  return static_cast<int>(tcp_replays_.size());
}

int FigureOneNetwork::start_udp_replay(int path_index,
                                       const trace::AppTrace& t, Time start,
                                       netsim::FlowId policer_key) {
  WEHEY_EXPECTS(t.transport == trace::Transport::Udp);
  const ReplayCut cut = take_next_cut();
  launch_next_storm(start);
  auto rt = std::make_unique<UdpReplay>();
  rt->path = path_index;
  const netsim::FlowId flow = next_flow_++;
  const std::uint8_t dscp = t.carries_sni ? netsim::kDscpDifferentiated
                                          : netsim::kDscpDefault;
  rt->receiver = std::make_unique<transport::UdpReplayReceiver>(sim_);
  client_->add_route(flow, rt->receiver.get());
  transport::UdpConfig ucfg;
  // An armed ReplayCut truncates the schedule up front: a UDP replay is
  // open-loop, so the dead server simply never transmits the rest.
  const trace::AppTrace* schedule = &t;
  trace::AppTrace cut_trace;
  if (cut.active()) {
    const Time limit = cut.after >= 0 ? cut.after : t.duration();
    cut_trace = trace::cut(t, limit, cut.after_bytes);
    if (cut_trace.packets.size() < t.packets.size()) {
      rt->aborted = true;
      rt->aborted_at = start + (cut_trace.packets.empty()
                                    ? 0
                                    : cut_trace.packets.back().offset);
    }
    schedule = &cut_trace;
  }
  rt->sender = std::make_unique<transport::UdpReplaySender>(
      sim_, ids_, ucfg, flow, dscp, path_entry(path_index), *schedule, start,
      policer_key);
  udp_replays_.push_back(std::move(rt));
  return -static_cast<int>(udp_replays_.size());
}

void FigureOneNetwork::run(Time until, Time grace) {
  sim_.run(until + grace);
}

PathReport FigureOneNetwork::report(int id, Time start, Time duration) {
  PathReport rep;
  if (id > 1'000'000) {
    auto& rt = *quic_replays_.at(static_cast<std::size_t>(id - 1'000'001));
    rep.meas = rt.sender->measurement();
    rep.meas.deliveries = rt.receiver->deliveries();
    rep.meas.start = start;
    rep.meas.end = start + duration;
    rep.retx_rate = rep.meas.loss_rate();
    if (!rep.meas.rtt_ms.empty()) {
      rep.avg_queuing_delay_ms =
          stats::mean(rep.meas.rtt_ms) - stats::min(rep.meas.rtt_ms);
    }
    rep.avg_throughput_bps = rep.meas.average_throughput();
    return rep;
  }
  if (id > 0) {
    auto& rt = *tcp_replays_.at(static_cast<std::size_t>(id - 1));
    rep.aborted = rt.aborted;
    rep.aborted_at = rt.aborted_at;
    // Merge the per-connection measurements into one path measurement
    // (the server measures the whole replayed session).
    for (std::size_t c = 0; c < rt.senders.size(); ++c) {
      const auto& m = rt.senders[c]->measurement();
      rep.meas.tx_times.insert(rep.meas.tx_times.end(), m.tx_times.begin(),
                               m.tx_times.end());
      rep.meas.loss_times.insert(rep.meas.loss_times.end(),
                                 m.loss_times.begin(), m.loss_times.end());
      rep.meas.rtt_ms.insert(rep.meas.rtt_ms.end(), m.rtt_ms.begin(),
                             m.rtt_ms.end());
      const auto& del = rt.receivers[c]->deliveries();
      rep.meas.deliveries.insert(rep.meas.deliveries.end(), del.begin(),
                                 del.end());
    }
    std::sort(rep.meas.tx_times.begin(), rep.meas.tx_times.end());
    std::sort(rep.meas.loss_times.begin(), rep.meas.loss_times.end());
    std::sort(rep.meas.deliveries.begin(), rep.meas.deliveries.end(),
              [](const netsim::Delivery& a, const netsim::Delivery& b) {
                return a.at < b.at;
              });
    rep.meas.start = start;
    rep.meas.end = start + duration;
    rep.retx_rate = rep.meas.loss_rate();
    if (!rep.meas.rtt_ms.empty()) {
      rep.avg_queuing_delay_ms =
          stats::mean(rep.meas.rtt_ms) - stats::min(rep.meas.rtt_ms);
    }
  } else {
    auto& rt = *udp_replays_.at(static_cast<std::size_t>(-id - 1));
    rep.aborted = rt.aborted;
    rep.aborted_at = rt.aborted_at;
    rt.receiver->finalize(rt.sender->packets_scheduled(), start + duration);
    rep.meas = transport::udp_measurement(*rt.sender, *rt.receiver);
    rep.meas.start = start;
    rep.meas.end = start + duration;
    rep.retx_rate = rep.meas.loss_rate();
    if (!rep.meas.rtt_ms.empty()) {
      // One-way-delay samples: queueing delay is delay above the minimum.
      rep.avg_queuing_delay_ms =
          stats::mean(rep.meas.rtt_ms) - stats::min(rep.meas.rtt_ms);
    }
  }
  rep.avg_throughput_bps = rep.meas.average_throughput();
  return rep;
}

int FigureOneNetwork::start_quic_replay(int path_index,
                                        const trace::AppTrace& t,
                                        Time start,
                                        const transport::QuicConfig& quic) {
  auto rt = std::make_unique<QuicReplay>();
  rt->path = path_index;
  const netsim::FlowId flow = next_flow_++;
  const std::uint8_t dscp = t.carries_sni ? netsim::kDscpDifferentiated
                                          : netsim::kDscpDefault;
  rt->ack_pipe = std::make_unique<Pipe>(sim_, reverse_delay(path_index));
  rt->sender = std::make_unique<transport::QuicSender>(
      sim_, ids_, quic, flow, dscp, path_entry(path_index));
  rt->receiver = std::make_unique<transport::QuicReceiver>(
      sim_, ids_, quic, flow, rt->ack_pipe.get());
  rt->ack_pipe->set_next(rt->sender.get());
  client_->add_route(flow, rt->receiver.get());
  auto* sender = rt->sender.get();
  for (const auto& tp : t.packets) {
    const std::int64_t bytes = tp.size;
    sim_.schedule_at(start + tp.offset,
                     [sender, bytes] { sender->supply(bytes); });
  }
  quic_replays_.push_back(std::move(rt));
  // QUIC ids live above 1'000'000 (TCP positive, UDP negative).
  return 1'000'000 + static_cast<int>(quic_replays_.size());
}

topology::TracerouteRecord FigureOneNetwork::traceroute(
    int path_index) const {
  WEHEY_EXPECTS(path_index == 1 || path_index == 2);
  auto hop = [](std::string ip, topology::Asn asn) {
    topology::Hop h;
    h.reported_ips.push_back(std::move(ip));
    h.asn = asn;
    return h;
  };
  topology::TracerouteRecord rec;
  rec.server = path_index == 1 ? "s1" : "s2";
  rec.dst_ip = "100.0.1.77";  // the client
  rec.dst_asn = kClientAsn;
  // Server-side hop, then the non-common transit, then the ISP hops where
  // the two paths converge (the downstream end of l_c), then the client.
  rec.hops.push_back(
      hop(path_index == 1 ? "10.1.0.254" : "10.2.0.254",
          path_index == 1 ? 65001 : 65002));
  if (route_churn_ && path_index == 1) {
    // Inter-domain churn rerouted path 1 through path 2's transit: the
    // two paths now share a node outside the client's ISP, so the
    // topology is no longer suitable (step 4 of the replay flow discards
    // it and updates the topology database).
    rec.hops.push_back(hop("172.16.2.1", 65102));
  } else {
    rec.hops.push_back(hop(path_index == 1 ? "172.16.1.1" : "172.16.2.1",
                           path_index == 1 ? 65101 : 65102));
  }
  rec.hops.push_back(hop(path_index == 1 ? "100.0.254.1" : "100.0.254.2",
                         kClientAsn));  // per-path ISP border
  rec.hops.push_back(hop("100.0.1.1", kClientAsn));  // convergence router
  rec.hops.push_back(hop(rec.dst_ip, kClientAsn));
  return rec;
}

topology::TracerouteRecord FigureOneNetwork::standby_traceroute(
    int index) const {
  WEHEY_EXPECTS(index >= 3);
  auto hop = [](std::string ip, topology::Asn asn) {
    topology::Hop h;
    h.reported_ips.push_back(std::move(ip));
    h.asn = asn;
    return h;
  };
  const std::string n = std::to_string(index);
  topology::TracerouteRecord rec;
  rec.server = "s" + n;
  rec.dst_ip = "100.0.1.77";
  rec.dst_asn = kClientAsn;
  rec.hops.push_back(hop("10." + n + ".0.254", 65000 + index));
  rec.hops.push_back(hop("172.16." + n + ".1", 65100 + index));
  rec.hops.push_back(hop("100.0.254." + n, kClientAsn));
  rec.hops.push_back(hop("100.0.1.1", kClientAsn));  // convergence router
  rec.hops.push_back(hop(rec.dst_ip, kClientAsn));
  return rec;
}

void FigureOneNetwork::snapshot_metrics() const {
  obs::Recorder* rec = obs::Recorder::current();
  if (rec == nullptr || !rec->metrics_on()) return;
  auto& m = rec->metrics();
  const Time now = sim_.now();
  const auto link = [&m, now](const char* name, const netsim::Link& l) {
    const std::string p = std::string("net.") + name;
    m.counter(p + ".delivered_packets").inc(l.delivered_packets());
    m.counter(p + ".delivered_bytes")
        .inc(static_cast<std::uint64_t>(l.delivered_bytes()));
    m.counter(p + ".drops").inc(l.disc().drop_count());
    m.counter(p + ".busy_us")
        .inc(static_cast<std::uint64_t>(l.busy_time() / kMicrosecond));
    if (now > 0) {
      m.gauge(p + ".utilization")
          .set(static_cast<double>(l.busy_time()) /
               static_cast<double>(now));
    }
  };
  link("common", *common_);
  link("nc1", *nc1_);
  link("nc2", *nc2_);
  if (access_) link("access", *access_);
  m.counter("net.limiter_drops").inc(limiter_drops());

  // Per-flow distributions: one observation per TCP sender (replays and
  // background traffic). Iteration order is construction order, and the
  // values are pure functions of the sim, so the bins are byte-identical
  // across WEHEY_THREADS.
  auto& flow_srtt = m.histogram("tcp.flow_srtt_ms", 0.0, 400.0, 80);
  auto& flow_retx = m.histogram("tcp.flow_retx", 0.0, 200.0, 50);
  const auto flow = [&](const transport::TcpSender& s) {
    flow_srtt.observe(to_milliseconds(s.srtt()));
    flow_retx.observe(static_cast<double>(s.retransmissions()));
    m.counter("tcp.flows").inc();
    m.counter("tcp.flow_timeouts").inc(s.timeouts());
  };
  for (const auto& r : tcp_replays_) {
    for (const auto& s : r->senders) flow(*s);
  }
  for (const auto& b : background_) flow(*b->sender);

  // Fluid-mode background: end-of-phase aggregate totals. Absent (not
  // zero) in packet-mode runs so pre-fluid reports are unchanged.
  if (!fluid_.empty()) {
    std::uint64_t steps = 0, offered = 0, delivered = 0, dropped = 0;
    for (const auto& f : fluid_) {
      steps += f->steps();
      offered += static_cast<std::uint64_t>(f->offered_bytes());
      delivered += static_cast<std::uint64_t>(f->delivered_bytes());
      dropped += static_cast<std::uint64_t>(f->dropped_bytes());
    }
    m.counter("fluid.sources").inc(fluid_.size());
    m.counter("fluid.steps").inc(steps);
    m.counter("fluid.offered_bytes").inc(offered);
    m.counter("fluid.delivered_bytes").inc(delivered);
    m.counter("fluid.dropped_bytes").inc(dropped);
  }
}

std::uint64_t FigureOneNetwork::limiter_drops() const {
  std::uint64_t drops = 0;
  auto add = [&drops](const netsim::QueueDisc& disc) {
    if (const auto* rl = dynamic_cast<const RateLimiterDisc*>(&disc)) {
      drops += rl->throttled_drops();
    } else if (const auto* pf =
                   dynamic_cast<const netsim::PerFlowRateLimiterDisc*>(
                       &disc)) {
      drops += pf->throttled_drops();
    }
  };
  add(common_->disc());
  add(nc1_->disc());
  add(nc2_->disc());
  return drops;
}

}  // namespace wehey::experiments
