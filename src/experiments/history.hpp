// Synthesis of the historical T_diff distribution (§4.1).
//
// The paper computes T_diff from past WeHe tests: pairs of tests of the
// same client/app/carrier taken < 10 minutes apart, each contributing the
// relative difference of the two bit-inverted replays' mean throughputs.
// Without the public WeHe archive, we regenerate the same quantity the
// same way: repeated single bit-inverted replays through the scenario's
// network (each with a fresh background segment), paired consecutively.
#pragma once

#include <vector>

#include "experiments/scenario.hpp"

namespace wehey::experiments {

struct HistoryConfig {
  std::size_t replays = 16;  ///< consecutive replays; yields replays-1 pairs
};

/// Signed t_diff values, one per consecutive replay pair.
std::vector<double> build_t_diff_history(const ScenarioConfig& scenario,
                                         const HistoryConfig& cfg = {});

}  // namespace wehey::experiments
