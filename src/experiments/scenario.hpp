// One emulation/simulation experiment of §6: a Figure-1 topology with a
// configured rate-limiter, CAIDA-like background traffic, and WeHeY's
// replay phases:
//
//   SimOriginal    — the simultaneous replay of the original trace on
//                    p1 and p2 (the measurements Alg. 1 consumes),
//   SimInverted    — the simultaneous bit-inverted replay (for the
//                    differentiation-confirmation step),
//   SingleOriginal — the p0 original replay (the X set of §4.1),
//   SingleInverted — the p0 bit-inverted replay (WeHe's control).
//
// Each phase rebuilds the network from the same configuration (fresh
// queues, fresh background seed), mirroring how consecutive replays on a
// real network see fresh-but-statistically-similar conditions.
//
// All Table-2 parameters appear here under their paper names.
#pragma once

#include <string>

#include "core/localizer.hpp"
#include "experiments/network.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "obs/report.hpp"
#include "trace/trace.hpp"

namespace wehey::experiments {

struct ScenarioConfig {
  /// App whose trace pair is replayed: "Netflix" (TCP) or one of the five
  /// UDP apps (§6.1).
  std::string app = "Netflix";

  Time replay_duration = seconds(45);  ///< §3.4: extended to >= 45 s
  Time base_trace_duration = seconds(15);

  double rtt1_ms = 35.0;  ///< Table 2: RTT_1
  double rtt2_ms = 35.0;  ///< Table 2: RTT_2

  Placement placement = Placement::CommonLink;
  double input_rate_factor = 1.5;   ///< Table 2: input traffic / rate
  double queue_burst_factor = 0.5;  ///< Table 2: queue (x burst)
  double bg_diff_fraction = 0.5;    ///< Table 2: % of background
  double nc_utilization = 0.2;      ///< Table 2: input traffic / link bw

  /// Offered background load per path. Sized so that the replayed traces
  /// are a minority of the collective bottleneck's traffic, as in §6.1
  /// where the (scaled) CAIDA workload dominates the rate-limiter input —
  /// the regime the loss-trend correlation argument assumes.
  Rate bg_rate_per_path = mbps(4.0);

  /// §3.4 trace modifications: Poisson re-timing for UDP, pacing for TCP.
  /// false reproduces the "unmodified traces" ablation of Figure 6.
  bool modified_traces = true;

  /// Parallel TCP connections per replayed session (real streaming traces
  /// contain several flows; WeHe replays them all).
  int tcp_connections = 1;

  /// Congestion control of the replayed TCP session (§7 discusses the
  /// BBR open question; the evaluation itself uses Cubic).
  transport::CongestionControl tcp_cc = transport::CongestionControl::Cubic;

  /// §7 countermeasure against per-flow throttling: craft the two
  /// simultaneous replays so they appear to belong to the same flow and
  /// land in the same per-flow policer. Only meaningful with
  /// Placement::PerFlowCommonLink.
  bool spoof_same_flow = false;

  std::uint64_t seed = 1;

  /// How the background workload is carried: packet-level TCP flows
  /// (default), the fluid-rate aggregate (netsim::FluidSource), or
  /// whatever WEHEY_BG_MODE selects (kEnv). Fluid mode consumes the same
  /// RNG draws as packet mode, so everything downstream of the background
  /// setup is seeded identically in both modes.
  trace::BackgroundMode bg_mode = trace::BackgroundMode::kEnv;

  /// Optional fault plan (not owned; must outlive the run). Null or empty
  /// = no faults — the injection hooks are skipped entirely, so a clean
  /// run is bit-identical to one on a build without the faults subsystem.
  const faults::FaultPlan* fault_plan = nullptr;
};

enum class Phase { SimOriginal, SimInverted, SingleOriginal, SingleInverted };

struct PhaseReport {
  PathReport p1;
  PathReport p2;  ///< empty for single phases
  std::uint64_t limiter_drops = 0;
  /// True when fault injection aborted a replay or damaged an upload in
  /// this phase (see the per-path aborted flags for which one).
  bool faulted = false;
  /// Per-kind counts of what the phase injector actually did (all zero on
  /// a fault-free phase).
  faults::InjectionStats injection;
  /// Simulated time the phase's network ran for (replay + drain grace).
  Time sim_duration = 0;
  /// The supervisor's per-trial budget ended this phase early (event-count
  /// or sim-time ceiling, src/parallel/supervisor.hpp). The phase's
  /// measurements cover only the part before the stop and must not feed
  /// the localization analyses.
  bool budget_exhausted = false;
  std::string budget_reason;  ///< "events" or "sim_time" when exhausted
};

/// Derived quantities shared by phases and by the benches.
struct ScenarioDerived {
  Rate trace_rate = 0;       ///< original trace's average rate
  Rate per_path_input = 0;   ///< trace + background offered per path
  Rate limiter_rate = 0;     ///< configured token rate
  NetworkParams net;         ///< link bandwidths/delays and limiter
};

ScenarioDerived derive(const ScenarioConfig& cfg);

/// Run one phase of the scenario and return per-path reports.
PhaseReport run_phase(const ScenarioConfig& cfg, Phase phase);

/// A full WeHeY experiment: all four phases. `t_diff_history` is copied
/// into the localization input (generate it with experiments::history).
core::LocalizationInput run_full_experiment(
    const ScenarioConfig& cfg, const std::vector<double>& t_diff_history);

/// run_full_experiment, with the verdict drawn and the whole run packaged
/// as a versioned RunReport (obs::kRunReportSchema).
struct FullExperimentResult {
  core::LocalizationInput input;
  core::LocalizationResult localization;
  /// Verdict, per-phase stage timings, injection counts, scalar values.
  obs::RunReport report;
  /// The four phases' merged registries (queue residency, per-flow RTT,
  /// link utilization, ...) — pass to report.to_json(&metrics).
  obs::MetricsRegistry metrics;
};

/// A full WeHeY experiment emitting a RunReport directly. The four phases
/// run under a dedicated metrics recorder (regardless of the environment),
/// so the report's histograms are always populated; if a recorder is
/// already bound, the run's metrics and timeline are also absorbed into it
/// under a `run_name` track. Deterministic across WEHEY_THREADS.
FullExperimentResult run_full_experiment_reported(
    const ScenarioConfig& cfg, const std::vector<double>& t_diff_history,
    const std::string& run_name = "full_experiment");

/// The two simultaneous phases only — enough for the FN/FP loss-trend
/// experiments of §6.2/§6.3 (confirmation + Alg. 1).
struct SimultaneousResult {
  PhaseReport original;
  PhaseReport inverted;
  core::WeheResult p1_confirmation;
  core::WeheResult p2_confirmation;
  bool differentiation_confirmed = false;
};

SimultaneousResult run_simultaneous_experiment(const ScenarioConfig& cfg);

}  // namespace wehey::experiments
