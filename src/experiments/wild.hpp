// Models of the five real cellular ISPs of the in-the-wild evaluation
// (§5, Table 1).
//
// All five apply *per-client* throttling of the targeted streaming
// services (disclosed as e.g. "video streaming at DVD quality"): the
// client's service traffic passes a policer dedicated to that client.
// Four ISPs throttle unconditionally; the fifth (ISP5) switches to
// fixed-rate throttling only after a received-traffic criterion is met —
// the behaviour the paper hypothesizes to explain Table 1's 16.28 % and
// illustrates in Figure 4.
//
// The wild network is the Figure-1 topology with: the per-client limiter
// on the common link (inside the ISP), a time-varying cellular access
// link (the source of normal throughput variation T_diff measures), and
// only light non-differentiated background (the per-client queue carries
// the client's own traffic).
#pragma once

#include <string>
#include <vector>

#include "core/localizer.hpp"
#include "experiments/scenario.hpp"

namespace wehey::experiments {

struct IspModel {
  std::string name;
  /// Limiter rate as a fraction of the trace's average rate (< 1 so that
  /// the original replay is visibly throttled).
  double throttle_factor = 0.6;
  double queue_burst_factor = 0.5;
  /// Cellular access link: nominal capacity as a multiple of the trace
  /// rate, plus lognormal capacity jitter.
  double access_rate_factor = 4.0;
  double access_jitter = 0.3;
  /// ISP5 behaviour: no throttling until `trigger_seconds` worth of trace
  /// bytes have passed, then fixed-rate throttling.
  bool delayed_fixed_rate = false;
  double trigger_seconds = 20.0;
};

/// The five ISP models used by the Table-1 bench (ISP5 is the delayed
/// fixed-rate one).
std::vector<IspModel> default_isp_models();

struct WildConfig {
  IspModel isp;
  std::string app = "Netflix";  ///< wild tests replay TCP streaming traces
  Time replay_duration = seconds(45);
  double rtt_ms = 50.0;
  Rate bg_rate_per_path = kbps(300);  ///< the client's other light traffic
  std::uint64_t seed = 1;

  /// Background carrier: packet flows (default), the fluid-rate aggregate,
  /// or whatever WEHEY_BG_MODE selects (kEnv). Same RNG-draw discipline as
  /// ScenarioConfig::bg_mode.
  trace::BackgroundMode bg_mode = trace::BackgroundMode::kEnv;

  /// Optional fault plan (not owned; must outlive the run). Null or empty
  /// = no faults.
  const faults::FaultPlan* fault_plan = nullptr;
};

/// The Figure-1 parameters of a wild test's network: per-client limiter
/// (or ISP5's delayed TBF) on the common link plus the jittery cellular
/// access link. Exposed for benches that rebuild the wild network
/// stand-alone (e.g. bench_background's operating points).
NetworkParams wild_network_params(const WildConfig& cfg, Rate trace_rate);

/// One phase of a wild test. `third_replay` adds a concurrent third
/// original replay (the §5 sanity check) during simultaneous phases.
PhaseReport run_wild_phase(const WildConfig& cfg, Phase phase,
                           bool third_replay = false);

/// T_diff from repeated single bit-inverted replays over the wild network
/// (stand-in for the public WeHe test archive).
std::vector<double> build_wild_t_diff(const WildConfig& cfg,
                                      std::size_t replays = 14);

struct WildTestOutcome {
  core::LocalizationResult localization;
  bool localized = false;  ///< evidence found within the ISP
  /// Summed per-kind injection counts across the four wild phases (all
  /// zero when the test ran fault-free).
  faults::InjectionStats injection;
  int faulted_phases = 0;  ///< phases where a fault actually landed
  /// The supervisor's per-trial budget stopped at least one phase; the
  /// localization analyses were skipped (their inputs are stumps).
  bool budget_exhausted = false;
  std::string budget_reason;  ///< "events" or "sim_time" when exhausted
};

/// A "basic" Table-1 test: full WeHeY run; success = localized.
WildTestOutcome run_wild_test(const WildConfig& cfg,
                              const std::vector<double>& t_diff);

/// A "sanity check" test: a third server replays a third original trace
/// concurrently; correct behaviour is to NOT detect a common bottleneck.
WildTestOutcome run_wild_sanity_check(const WildConfig& cfg,
                                      const std::vector<double>& t_diff);

/// run_wild_test / run_wild_sanity_check with the run packaged as a
/// versioned RunReport (stages = the four wild phases, profile with
/// replay-window self times, per-kind injection, scalar values) plus the
/// phases' merged metrics registries.
struct WildTestResult {
  WildTestOutcome outcome;
  obs::RunReport report;
  /// The four phases' merged registries — pass to
  /// report.to_json(&metrics).
  obs::MetricsRegistry metrics;
};

/// Like run_full_experiment_reported: the phases run under a dedicated
/// metrics recorder (regardless of the environment) so the report's
/// histograms are always populated; if a recorder is already bound, the
/// run is also absorbed into it under a `run_name` track. Deterministic
/// across WEHEY_THREADS.
WildTestResult run_wild_test_reported(const WildConfig& cfg,
                                      const std::vector<double>& t_diff,
                                      bool sanity_check = false,
                                      const std::string& run_name =
                                          "wild_test");

}  // namespace wehey::experiments
