#include "experiments/wild.hpp"

#include "experiments/decision.hpp"
#include "experiments/delayed_tbf.hpp"
#include "experiments/ground_truth.hpp"

#include <algorithm>
#include <deque>

#include "common/check.hpp"
#include "faults/injector.hpp"
#include "obs/recorder.hpp"
#include "parallel/supervisor.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/descriptive.hpp"
#include "trace/apps.hpp"
#include "trace/background.hpp"

namespace wehey::experiments {
namespace {

constexpr Time kSecondReplayOffset = milliseconds(5);
constexpr Time kDrainGrace = seconds(3);

trace::AppTrace wild_trace(const WildConfig& cfg, bool inverted) {
  // All five wild apps are TCP streaming services, each with its own
  // chunking profile; the seed makes each session a deterministic
  // "recording".
  std::uint64_t app_hash = 1469598103934665603ULL;
  for (char ch : cfg.app) app_hash = (app_hash ^ static_cast<unsigned char>(ch)) * 1099511628211ULL;
  Rng trace_rng(cfg.seed * 0x9e3779b9ULL ^ app_hash);
  const auto& known = trace::tcp_app_names();
  const std::string app =
      std::find(known.begin(), known.end(), cfg.app) != known.end()
          ? cfg.app
          : "Netflix";
  trace::AppTrace t = trace::make_tcp_app_trace(app, seconds(15), trace_rng);
  t.app = cfg.app;
  if (inverted) t = trace::bit_invert(t);
  return trace::extend(t, cfg.replay_duration);
}

}  // namespace

NetworkParams wild_network_params(const WildConfig& cfg, Rate trace_rate) {
  NetworkParams net;
  const Time rtt = milliseconds(cfg.rtt_ms);
  net.rtt1 = rtt;
  net.rtt2 = rtt;
  net.bw_nc1 = 20.0 * trace_rate;
  net.bw_nc2 = 20.0 * trace_rate;
  net.bw_c = 20.0 * trace_rate;
  net.placement = Placement::None;  // common disc installed via factory

  // Cellular last mile: nominal capacity only moderately above the trace
  // rate, with substantial jitter — the source of normal throughput
  // variation between repeated tests.
  net.access_rate = cfg.isp.access_rate_factor * trace_rate;
  net.access_jitter_sigma = cfg.isp.access_jitter;

  const Rate throttle_rate = cfg.isp.throttle_factor * trace_rate;
  const auto lp =
      make_limiter(throttle_rate, rtt, cfg.isp.queue_burst_factor);
  const std::int64_t fifo_limit = std::max<std::int64_t>(
      64 * 1024,
      static_cast<std::int64_t>(bytes_in(net.bw_c, milliseconds(50))));
  const bool delayed = cfg.isp.delayed_fixed_rate;
  const std::int64_t trigger = static_cast<std::int64_t>(
      cfg.isp.trigger_seconds * trace_rate / 8.0);
  net.common_disc_factory = [lp, fifo_limit, delayed, trigger]() {
    auto fifo = std::make_unique<netsim::FifoDisc>(fifo_limit);
    std::unique_ptr<netsim::QueueDisc> throttled;
    if (delayed) {
      throttled = std::make_unique<DelayedTbfDisc>(trigger, lp.rate,
                                                   lp.burst, lp.limit);
    } else {
      throttled =
          std::make_unique<netsim::TbfDisc>(lp.rate, lp.burst, lp.limit);
    }
    return std::make_unique<netsim::RateLimiterDisc>(std::move(fifo),
                                                     std::move(throttled));
  };
  return net;
}

namespace {

std::uint64_t phase_seed(const WildConfig& cfg, Phase phase) {
  return cfg.seed * 1000003ULL + static_cast<std::uint64_t>(phase) * 7919ULL;
}

faults::FaultInjector phase_injector(const faults::FaultPlan* plan,
                                     std::uint64_t phase_seed_value) {
  if (plan == nullptr || !plan->enabled()) return faults::FaultInjector{};
  faults::FaultPlan derived = *plan;
  derived.seed = plan->seed * 0x100000001b3ULL ^ phase_seed_value;
  return faults::FaultInjector(derived);
}

const char* wild_phase_name(Phase p) {
  switch (p) {
    case Phase::SimOriginal: return "wild_sim_original";
    case Phase::SimInverted: return "wild_sim_inverted";
    case Phase::SingleOriginal: return "wild_single_original";
    case Phase::SingleInverted: return "wild_single_inverted";
  }
  return "?";
}

void arm_replay_cut(faults::FaultInjector& inj, FigureOneNetwork& net,
                    int path, Time replay_duration) {
  if (!inj.enabled()) return;
  const auto fault = inj.on_replay_start(path);
  if (fault.storm) {
    ReplayStorm storm;
    storm.after = static_cast<Time>(static_cast<double>(replay_duration) *
                                    fault.storm_at_fraction);
    storm.interval = fault.storm_interval;
    net.set_next_replay_storm(storm);
  }
  if (!fault.abort) return;
  ReplayCut cut;
  cut.after = static_cast<Time>(static_cast<double>(replay_duration) *
                                fault.at_fraction);
  cut.after_bytes = fault.after_bytes;
  net.set_next_replay_cut(cut);
}

}  // namespace

std::vector<IspModel> default_isp_models() {
  // Four unconditional per-client throttlers with mildly different
  // parameters, and the delayed fixed-rate one (ISP5).
  return {
      {"ISP1", 0.60, 0.50, 1.3, 0.35, false, 0.0},
      {"ISP2", 0.55, 0.25, 1.3, 0.30, false, 0.0},
      {"ISP3", 0.65, 1.00, 1.4, 0.30, false, 0.0},
      {"ISP4", 0.50, 0.50, 1.3, 0.25, false, 0.0},
      // ISP5: delayed fixed-rate throttling; its access link is fast
      // enough (2.6x) that the pre-trigger simultaneous replay really
      // does run at ~2x the single replay, maximizing the X/Y mismatch
      // the paper observed (Figure 4).
      {"ISP5", 0.60, 0.50, 2.6, 0.30, true, 25.0},
  };
}

PhaseReport run_wild_phase(const WildConfig& cfg, Phase phase,
                           bool third_replay) {
  const trace::AppTrace original = wild_trace(cfg, false);
  const Rate trace_rate = original.average_rate();
  Rng rng(phase_seed(cfg, phase));

  netsim::Simulator sim;
  parallel::install_trial_budget(sim);
  FigureOneNetwork net(sim, wild_network_params(cfg, trace_rate), rng);

  // The client's own light background (not differentiated).
  trace::BackgroundConfig bg;
  bg.target_rate = cfg.bg_rate_per_path;
  bg.duration = cfg.replay_duration + kDrainGrace;
  bg.flows_per_second = 2.0;
  // Identical RNG draws in both modes: the access-jitter and replay seeds
  // downstream are unchanged by the background carrier choice.
  const trace::BackgroundMode bg_mode =
      trace::resolve_background_mode(cfg.bg_mode);
  for (int path = 1; path <= 2; ++path) {
    auto flows = trace::generate_background(bg, rng);
    if (bg_mode == trace::BackgroundMode::kFluid) {
      net.attach_fluid_background(path, trace::fluid_profile(flows, bg));
    } else {
      net.attach_background(path, flows);
    }
  }

  const bool is_original =
      phase == Phase::SimOriginal || phase == Phase::SingleOriginal;
  const bool simultaneous =
      phase == Phase::SimOriginal || phase == Phase::SimInverted;
  const trace::AppTrace replay = wild_trace(cfg, !is_original);

  auto injector = phase_injector(cfg.fault_plan, phase_seed(cfg, phase));
  transport::TcpConfig tcp;  // pacing on: WeHeY's modified replay
  const int kConnections = 3;  // streaming sessions use several flows
  arm_replay_cut(injector, net, 1, cfg.replay_duration);
  const int id1 = net.start_tcp_replay(1, replay, 0, tcp, kConnections);
  int id2 = 0;
  if (simultaneous) {
    arm_replay_cut(injector, net, 2, cfg.replay_duration);
    id2 = net.start_tcp_replay(2, replay, kSecondReplayOffset, tcp,
                               kConnections);
    if (third_replay && is_original) {
      // Sanity check (§5): a third server replays a third original trace
      // concurrently; it shares the per-client limiter via path 1.
      WildConfig third = cfg;
      third.seed = cfg.seed + 9999;
      third.app = "Twitch";
      net.start_tcp_replay(1, wild_trace(third, false),
                           2 * kSecondReplayOffset, tcp, kConnections);
    }
  }

  net.run(cfg.replay_duration, kDrainGrace);

  PhaseReport rep;
  rep.budget_exhausted = sim.budget_exhausted();
  rep.budget_reason = sim.budget_reason();
  rep.p1 = net.report(id1, 0, cfg.replay_duration);
  if (simultaneous) {
    rep.p2 = net.report(id2, kSecondReplayOffset, cfg.replay_duration);
  }
  rep.limiter_drops = net.limiter_drops();
  rep.sim_duration = sim.now();
  if (injector.enabled()) {
    bool upload_faulted = injector.on_measurement_upload(1, rep.p1.meas);
    if (simultaneous) {
      upload_faulted |= injector.on_measurement_upload(2, rep.p2.meas);
    }
    rep.faulted = upload_faulted || rep.p1.aborted || rep.p2.aborted;
  }
  rep.injection = injector.stats();
  if (obs::Recorder* rec = obs::Recorder::current()) {
    net.snapshot_metrics();
    if (rec->metrics_on()) {
      auto& m = rec->metrics();
      m.counter("phase.count").inc();
      if (rep.faulted) m.counter("phase.faulted").inc();
      if (rep.budget_exhausted) m.counter("phase.budget_exhausted").inc();
      for (const auto& [kind, count] : rep.injection.by_kind()) {
        if (count > 0) {
          m.counter(std::string("faults.") + kind)
              .inc(static_cast<std::uint64_t>(count));
        }
      }
    }
    if (rec->trace_on()) {
      rec->timeline().span(wild_phase_name(phase), "phase", 0, sim.now());
    }
  }
  return rep;
}

std::vector<double> build_wild_t_diff(const WildConfig& cfg,
                                      std::size_t replays) {
  WEHEY_EXPECTS(replays >= 2);
  // Each replay is an independent seeded simulation; fan them out over the
  // parallel engine (result order is by index, so t_diff is unchanged).
  const std::vector<double> means =
      parallel::parallel_map(replays, [&](std::size_t i) {
        WildConfig run = cfg;
        run.seed = cfg.seed * 104729ULL + i * 131ULL + 3ULL;
        const auto rep = run_wild_phase(run, Phase::SingleInverted);
        return stats::mean(rep.p1.meas.throughput_samples(100));
      });
  // All pair combinations (§4.1 pairs every two nearby tests).
  std::vector<double> t_diff;
  t_diff.reserve(means.size() * (means.size() - 1) / 2);
  for (std::size_t i = 0; i < means.size(); ++i) {
    for (std::size_t j = i + 1; j < means.size(); ++j) {
      const double hi = std::max(means[i], means[j]);
      t_diff.push_back(hi > 0 ? (means[i] - means[j]) / hi : 0.0);
    }
  }
  return t_diff;
}

namespace {

constexpr Phase kWildPhases[] = {Phase::SimOriginal, Phase::SimInverted,
                                 Phase::SingleOriginal,
                                 Phase::SingleInverted};

WildTestOutcome run_wild(const WildConfig& cfg,
                         const std::vector<double>& t_diff,
                         bool third_replay,
                         std::vector<PhaseReport>* phases_out = nullptr) {
  core::LocalizationInput input;
  // The four wild phases are independent simulations; run them through the
  // parallel engine (serial when nested inside an outer sweep).
  const auto reports = parallel::parallel_map(4, [&](std::size_t i) {
    return run_wild_phase(cfg, kWildPhases[i],
                          i == 0 ? third_replay : false);
  });
  const auto& sim_orig = reports[0];
  const auto& sim_inv = reports[1];
  const auto& single_orig = reports[2];
  const auto& single_inv = reports[3];
  input.p1_original = sim_orig.p1.meas;
  input.p2_original = sim_orig.p2.meas;
  input.p1_inverted = sim_inv.p1.meas;
  input.p2_inverted = sim_inv.p2.meas;
  input.p0_original = single_orig.p1.meas;
  input.p0_inverted = single_inv.p1.meas;
  input.t_diff_history = t_diff;
  input.base_rtt = milliseconds(cfg.rtt_ms);

  WildTestOutcome outcome;
  for (const auto& rep : reports) {
    outcome.injection += rep.injection;
    if (rep.faulted) ++outcome.faulted_phases;
    if (rep.budget_exhausted && !outcome.budget_exhausted) {
      outcome.budget_exhausted = true;
      outcome.budget_reason = rep.budget_reason;
    }
  }
  if (!outcome.budget_exhausted) {
    // A budget-stopped phase left a stump, not a measurement: skip the
    // analyses, the test's verdict is the budget outcome.
    Rng rng(cfg.seed * 2654435761ULL + 101);
    outcome.localization = core::localize(input, rng);
    outcome.localized = outcome.localization.verdict ==
                        core::Verdict::EvidenceWithinTargetArea;
  }
  if (phases_out != nullptr) *phases_out = reports;
  return outcome;
}

}  // namespace

WildTestOutcome run_wild_test(const WildConfig& cfg,
                              const std::vector<double>& t_diff) {
  return run_wild(cfg, t_diff, /*third_replay=*/false);
}

WildTestOutcome run_wild_sanity_check(const WildConfig& cfg,
                                      const std::vector<double>& t_diff) {
  return run_wild(cfg, t_diff, /*third_replay=*/true);
}

WildTestResult run_wild_test_reported(const WildConfig& cfg,
                                      const std::vector<double>& t_diff,
                                      bool sanity_check,
                                      const std::string& run_name) {
  WildTestResult out;
  // Same recorder discipline as run_full_experiment_reported: a dedicated
  // metrics recorder keeps the report's histograms populated regardless
  // of the environment; tracing follows the outer recorder.
  obs::Recorder* outer = obs::Recorder::current();
  obs::Recorder local(/*metrics_on=*/true,
                      outer != nullptr && outer->trace_on());
  std::vector<PhaseReport> phases;
  {
    obs::ScopedRecorder bind(&local);
    out.outcome = run_wild(cfg, t_diff, /*third_replay=*/sanity_check,
                           &phases);
  }

  auto& r = out.report;
  r.run = run_name;
  r.cell = cfg.isp.name;
  r.seed = cfg.seed;
  if (cfg.fault_plan != nullptr) r.fault_plan = cfg.fault_plan->name;
  if (out.outcome.budget_exhausted) {
    r.verdict = obs::kBudgetExhaustedVerdict;
    r.reason = std::string("budget:") + out.outcome.budget_reason;
  } else {
    r.verdict = core::to_string(out.outcome.localization.verdict);
    if (out.outcome.localization.verdict == core::Verdict::Inconclusive) {
      r.reason =
          core::to_string(out.outcome.localization.inconclusive_reason);
    }
  }
  // v4: a budget-stopped test never ran localize(), so its default trace
  // becomes the required empty-but-valid decision block.
  r.decision = decision_section(out.outcome.localization.trace);
  // v5: the ground truth is a pure function of the config (same
  // trace-rate expression wild_network_params consumed), and the audit
  // classifies the run exactly the way the Table-1 bench tallies it —
  // basic success = localized with the per-client mechanism, sanity
  // wrongness = asserting the per-client mechanism at all.
  const Rate trace_rate = wild_trace(cfg, /*inverted=*/false).average_rate();
  r.ground_truth = ground_truth_section(cfg, trace_rate, sanity_check);
  const bool per_client = out.outcome.localization.mechanism ==
                          core::Mechanism::PerClientThrottling;
  const bool observed_positive =
      sanity_check ? per_client : (out.outcome.localized && per_client);
  const bool mechanism_mismatch =
      !sanity_check && out.outcome.localized && !per_client;
  r.audit =
      obs::classify_audit(r.ground_truth, observed_positive,
                          mechanism_mismatch, out.outcome.budget_exhausted,
                          r.decision);
  std::vector<obs::ProfileSpan> spans;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const char* name = wild_phase_name(kWildPhases[i]);
    r.add_stage(name, 0, phases[i].sim_duration);
    // Each phase on its own track (they all start at sim time 0); the
    // replay window is its child, so the phase's self time is the drain.
    const std::int64_t track = static_cast<std::int64_t>(i);
    spans.push_back({track, name, 0, phases[i].sim_duration});
    spans.push_back({track, "replay_window", 0,
                     std::min(cfg.replay_duration, phases[i].sim_duration)});
  }
  r.profile = obs::profile_from_spans(std::move(spans));
  for (const auto& [kind, count] : out.outcome.injection.by_kind()) {
    r.injection[kind] = count;
  }
  r.values["localized"] = out.outcome.localized ? 1.0 : 0.0;
  // The mechanism as a scalar, so offline consumers (checkpoint resume in
  // the Table-1 bench) can rebuild per-cell tallies from journaled
  // reports without re-running the test.
  r.values["per_client"] = out.outcome.localization.mechanism ==
                                   core::Mechanism::PerClientThrottling
                               ? 1.0
                               : 0.0;
  r.values["throughput_p"] = out.outcome.localization.throughput.p_value;
  r.values["faulted_phases"] = out.outcome.faulted_phases;
  out.metrics = local.metrics();
  if (outer != nullptr) outer->absorb(std::move(local), run_name);
  return out;
}

}  // namespace wehey::experiments
