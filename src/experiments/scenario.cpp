#include "experiments/scenario.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "experiments/decision.hpp"
#include "experiments/ground_truth.hpp"
#include "faults/injector.hpp"
#include "obs/recorder.hpp"
#include "parallel/supervisor.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/apps.hpp"
#include "trace/background.hpp"

namespace wehey::experiments {
namespace {

constexpr Time kSecondReplayOffset = milliseconds(5);  // back-to-back start
constexpr Time kDrainGrace = seconds(3);

/// The original app trace of this scenario — a pure function of the seed,
/// so every phase replays the same recorded session.
trace::AppTrace base_trace(const ScenarioConfig& cfg) {
  Rng trace_rng(cfg.seed * 0x9e3779b9ULL + 17);
  const auto& tcp_apps = trace::tcp_app_names();
  if (std::find(tcp_apps.begin(), tcp_apps.end(), cfg.app) !=
      tcp_apps.end()) {
    return trace::make_tcp_app_trace(cfg.app, cfg.base_trace_duration,
                                     trace_rng);
  }
  return trace::make_udp_app_trace(cfg.app, cfg.base_trace_duration,
                                   trace_rng);
}

/// Apply the §3.4 replay preparation: extension to the replay duration
/// and, for UDP under `modified`, Poisson re-timing. (TCP's pacing is a
/// sender knob, not a trace transform.)
trace::AppTrace prepare(const trace::AppTrace& t, const ScenarioConfig& cfg,
                        Rng& rng) {
  trace::AppTrace out = trace::extend(t, cfg.replay_duration);
  if (cfg.modified_traces && out.transport == trace::Transport::Udp) {
    out = trace::poissonize(out, rng);
  }
  return out;
}

transport::TcpConfig replay_tcp_config(const ScenarioConfig& cfg) {
  transport::TcpConfig tcp;
  tcp.pacing = cfg.modified_traces;
  tcp.cc = cfg.tcp_cc;
  return tcp;
}

std::uint64_t phase_seed(const ScenarioConfig& cfg, Phase phase) {
  return cfg.seed * 1000003ULL + static_cast<std::uint64_t>(phase) * 7919ULL;
}

/// Phase-local injector: each phase interprets the plan with its own
/// derived seed, so the four phases fault independently but
/// reproducibly.
faults::FaultInjector phase_injector(const faults::FaultPlan* plan,
                                     std::uint64_t phase_seed_value) {
  if (plan == nullptr || !plan->enabled()) return faults::FaultInjector{};
  faults::FaultPlan derived = *plan;
  derived.seed = plan->seed * 0x100000001b3ULL ^ phase_seed_value;
  return faults::FaultInjector(derived);
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::SimOriginal: return "sim_original";
    case Phase::SimInverted: return "sim_inverted";
    case Phase::SingleOriginal: return "single_original";
    case Phase::SingleInverted: return "single_inverted";
  }
  return "?";
}

/// Arm the network's one-shot cut and/or storm if the injector faults
/// this replay.
void arm_replay_cut(faults::FaultInjector& inj, FigureOneNetwork& net,
                    int path, Time replay_duration) {
  if (!inj.enabled()) return;
  const auto fault = inj.on_replay_start(path);
  if (fault.storm) {
    ReplayStorm storm;
    storm.after = static_cast<Time>(static_cast<double>(replay_duration) *
                                    fault.storm_at_fraction);
    storm.interval = fault.storm_interval;
    net.set_next_replay_storm(storm);
  }
  if (!fault.abort) return;
  ReplayCut cut;
  cut.after = static_cast<Time>(static_cast<double>(replay_duration) *
                                fault.at_fraction);
  cut.after_bytes = fault.after_bytes;
  net.set_next_replay_cut(cut);
}

}  // namespace

ScenarioDerived derive(const ScenarioConfig& cfg) {
  ScenarioDerived d;
  const auto t = base_trace(cfg);
  d.trace_rate = t.average_rate();
  WEHEY_EXPECTS(d.trace_rate > 0);
  d.per_path_input = d.trace_rate + cfg.bg_rate_per_path;

  const Time rtt1 = milliseconds(cfg.rtt1_ms);
  const Time rtt2 = milliseconds(cfg.rtt2_ms);
  const Time max_rtt = std::max(rtt1, rtt2);

  d.net.rtt1 = rtt1;
  d.net.rtt2 = rtt2;
  d.net.placement = cfg.placement;
  // Non-common links: utilization knob of Table 2 ("input traffic / link
  // bandwidth"); the common link always has ample headroom so that, when
  // unthrottled, it never bottlenecks by itself.
  // As with the rate-limiter pressure below, the utilization knob is an
  // *offered*-load ratio; elastic traffic self-limits, so the realized
  // ratio the paper's testbed saw was milder. Compress above 0.5 so that
  // 0.95/1.05/1.15 map to hot-but-not-collapsed links (the regime where
  // the paper reports FN of ~19-35% for TCP and ~0 for UDP).
  double util = cfg.nc_utilization;
  if (util > 0.5) util = 0.5 + (util - 0.5) * 0.5;
  d.net.bw_nc1 = d.per_path_input / util;
  d.net.bw_nc2 = d.per_path_input / util;
  // Carrier-grade links buffer deeply (~150 ms): bursts are absorbed as
  // queueing delay rather than as independent per-path loss, keeping the
  // common rate-limiter the dominant loss cause until the links are
  // genuinely saturated.
  d.net.fifo_limit_bytes =
      static_cast<std::int64_t>(bytes_in(d.net.bw_nc1, milliseconds(150)));
  d.net.bw_c = 2.0 * d.per_path_input / 0.2;

  // Rate-limiter sizing: the differentiated class's offered load during
  // the simultaneous original replay, divided by the Table-2 arrival
  // factor. With the limiter on the common link both traces and both
  // paths' differentiated background hit one box; on the non-common links
  // each of the two identical boxes sees one path's worth.
  //
  // Calibration: the paper set rate and queue "so as to achieve a target
  // average loss rate and queuing delay", with input *arriving* at
  // 1.3-2.5x the rate — but a mostly-TCP input is elastic and cannot
  // sustain such arrival ratios; its offered load self-limits. Dividing
  // the open-loop offered load by the raw factor therefore over-throttles
  // relative to the paper's realized conditions (Figure 5a: retx rates of
  // ~1-15%). Compressing the pressure range maps the Table-2 factors onto
  // that same realized envelope.
  // UDP traces are open-loop and genuinely sustain the configured arrival
  // ratio, so they use the raw factor.
  const double pressure =
      t.transport == trace::Transport::Tcp
          ? 1.0 + (cfg.input_rate_factor - 1.0) * 0.55
          : cfg.input_rate_factor;
  // The limiter is sized once, for the *default* background mix (bold
  // value in Table 2). Â§6.3's severe-throttling experiments then direct a
  // larger fraction of the background through the same limiter, genuinely
  // overloading it â which is how the paper reaches >20% retransmission
  // rates with the same rate-limiter configuration.
  const Rate diff_per_path = d.trace_rate + 0.5 * cfg.bg_rate_per_path;
  if (cfg.placement == Placement::CommonLink) {
    d.limiter_rate = 2.0 * diff_per_path / pressure;
    d.net.limiter =
        make_limiter(d.limiter_rate, max_rtt, cfg.queue_burst_factor);
  } else if (cfg.placement == Placement::NonCommonLinks) {
    d.limiter_rate = diff_per_path / pressure;
    d.net.limiter =
        make_limiter(d.limiter_rate, max_rtt, cfg.queue_burst_factor);
  } else if (cfg.placement == Placement::PerFlowCommonLink) {
    // Per-flow throttling: every differentiated flow gets its own bucket,
    // each sized against one replay's offered rate.
    d.limiter_rate = d.trace_rate / pressure;
    d.net.limiter =
        make_limiter(d.limiter_rate, max_rtt, cfg.queue_burst_factor);
  }
  return d;
}

PhaseReport run_phase(const ScenarioConfig& cfg, Phase phase) {
  const auto derived = derive(cfg);
  Rng rng(phase_seed(cfg, phase));
  auto injector = phase_injector(cfg.fault_plan, phase_seed(cfg, phase));

  netsim::Simulator sim;
  parallel::install_trial_budget(sim);
  FigureOneNetwork net(sim, derived.net, rng);

  // Background workloads (a fresh CAIDA-like segment per phase, as each
  // replay in the paper draws a different trace segment).
  trace::BackgroundConfig bg;
  bg.target_rate = cfg.bg_rate_per_path;
  bg.duration = cfg.replay_duration + kDrainGrace;
  // ~1.2 arrivals/s per Mbps gives a mice/elephant mix whose aggregate is
  // congestion-responsive (like CAIDA's), rather than a hail of
  // slow-start-only mice.
  bg.flows_per_second =
      std::max(1.5, cfg.bg_rate_per_path / mbps(1.0) * 1.2);
  // Both modes consume identical RNG draws here, so the replay setup
  // below is seeded the same whether the background is packet or fluid.
  const trace::BackgroundMode bg_mode =
      trace::resolve_background_mode(cfg.bg_mode);
  for (int path = 1; path <= 2; ++path) {
    auto flows = trace::generate_background(bg, rng);
    trace::mark_differentiated(flows, cfg.bg_diff_fraction, rng);
    if (bg_mode == trace::BackgroundMode::kFluid) {
      net.attach_fluid_background(path, trace::fluid_profile(flows, bg));
    } else {
      net.attach_background(path, flows);
    }
  }

  // Replay traces.
  const bool original =
      phase == Phase::SimOriginal || phase == Phase::SingleOriginal;
  const bool simultaneous =
      phase == Phase::SimOriginal || phase == Phase::SimInverted;

  trace::AppTrace t = base_trace(cfg);
  if (!original) t = trace::bit_invert(t);

  const trace::AppTrace replay1 = prepare(t, cfg, rng);

  // The §7 same-flow countermeasure: both replays carry one flow key so a
  // per-flow policer assigns them to the same bucket.
  const netsim::FlowId spoofed_key =
      cfg.spoof_same_flow ? netsim::FlowId{0xBEEF} : netsim::FlowId{0};

  int id1 = 0, id2 = 0;
  if (replay1.transport == trace::Transport::Tcp) {
    const auto tcp = replay_tcp_config(cfg);
    arm_replay_cut(injector, net, 1, cfg.replay_duration);
    id1 = net.start_tcp_replay(1, replay1, 0, tcp, cfg.tcp_connections,
                               spoofed_key);
    if (simultaneous) {
      arm_replay_cut(injector, net, 2, cfg.replay_duration);
      id2 = net.start_tcp_replay(2, replay1, kSecondReplayOffset, tcp,
                                 cfg.tcp_connections, spoofed_key);
    }
  } else {
    arm_replay_cut(injector, net, 1, cfg.replay_duration);
    id1 = net.start_udp_replay(1, replay1, 0, spoofed_key);
    if (simultaneous) {
      // Independent Poisson re-timing per path (two servers re-time their
      // replays independently).
      const trace::AppTrace replay2 = prepare(t, cfg, rng);
      arm_replay_cut(injector, net, 2, cfg.replay_duration);
      id2 = net.start_udp_replay(2, replay2, kSecondReplayOffset,
                                 spoofed_key);
    }
  }

  net.run(cfg.replay_duration, kDrainGrace);

  PhaseReport rep;
  rep.budget_exhausted = sim.budget_exhausted();
  rep.budget_reason = sim.budget_reason();
  rep.p1 = net.report(id1, 0, cfg.replay_duration);
  if (simultaneous) {
    rep.p2 = net.report(id2, kSecondReplayOffset, cfg.replay_duration);
  }
  rep.limiter_drops = net.limiter_drops();
  rep.sim_duration = sim.now();
  if (injector.enabled()) {
    // The uploads of this phase's measurements to the gathering server
    // pass through the injector (truncation, corruption, clock skew).
    bool upload_faulted = injector.on_measurement_upload(1, rep.p1.meas);
    if (simultaneous) {
      upload_faulted |= injector.on_measurement_upload(2, rep.p2.meas);
    }
    rep.faulted = upload_faulted || rep.p1.aborted || rep.p2.aborted;
  }
  rep.injection = injector.stats();
  if (obs::Recorder* rec = obs::Recorder::current()) {
    net.snapshot_metrics();
    if (rec->metrics_on()) {
      auto& m = rec->metrics();
      m.counter("phase.count").inc();
      if (rep.faulted) m.counter("phase.faulted").inc();
      if (rep.budget_exhausted) m.counter("phase.budget_exhausted").inc();
      for (const auto& [kind, count] : rep.injection.by_kind()) {
        if (count > 0) {
          m.counter(std::string("faults.") + kind)
              .inc(static_cast<std::uint64_t>(count));
        }
      }
    }
    if (rec->trace_on()) {
      rec->timeline().span(phase_name(phase), "phase", 0, sim.now());
    }
  }
  return rep;
}

namespace {

constexpr Phase kFullPhases[] = {Phase::SimOriginal, Phase::SimInverted,
                                 Phase::SingleOriginal,
                                 Phase::SingleInverted};

/// The four phases are independent simulations (each rebuilds the network
/// from cfg with its own phase seed), so they run concurrently when the
/// parallel engine has idle contexts; from inside an outer grid sweep
/// this degrades to the serial loop.
std::vector<PhaseReport> run_all_phases(const ScenarioConfig& cfg) {
  return parallel::parallel_map(
      4, [&](std::size_t i) { return run_phase(cfg, kFullPhases[i]); });
}

core::LocalizationInput assemble_input(
    const std::vector<PhaseReport>& reports, const ScenarioConfig& cfg,
    const std::vector<double>& t_diff_history) {
  core::LocalizationInput input;
  const auto& sim_orig = reports[0];
  const auto& sim_inv = reports[1];
  const auto& single_orig = reports[2];
  const auto& single_inv = reports[3];

  input.p1_original = sim_orig.p1.meas;
  input.p2_original = sim_orig.p2.meas;
  input.p1_inverted = sim_inv.p1.meas;
  input.p2_inverted = sim_inv.p2.meas;
  input.p0_original = single_orig.p1.meas;
  input.p0_inverted = single_inv.p1.meas;
  input.t_diff_history = t_diff_history;
  input.base_rtt =
      std::max(milliseconds(cfg.rtt1_ms), milliseconds(cfg.rtt2_ms));
  return input;
}

}  // namespace

core::LocalizationInput run_full_experiment(
    const ScenarioConfig& cfg, const std::vector<double>& t_diff_history) {
  return assemble_input(run_all_phases(cfg), cfg, t_diff_history);
}

FullExperimentResult run_full_experiment_reported(
    const ScenarioConfig& cfg, const std::vector<double>& t_diff_history,
    const std::string& run_name) {
  FullExperimentResult out;
  // A dedicated recorder guarantees populated histograms in the report
  // even when the environment has observation off. Tracing stays tied to
  // the outer recorder: spans are only worth collecting if someone will
  // write them out.
  obs::Recorder* outer = obs::Recorder::current();
  obs::Recorder local(/*metrics_on=*/true,
                      outer != nullptr && outer->trace_on());
  std::vector<PhaseReport> reports;
  {
    obs::ScopedRecorder bind(&local);
    reports = run_all_phases(cfg);
  }
  out.input = assemble_input(reports, cfg, t_diff_history);

  // First exhausted phase in kFullPhases order (reports are indexed by
  // phase, so this is deterministic regardless of completion order).
  bool budget_exhausted = false;
  std::string budget_reason;
  for (const auto& rep : reports) {
    if (!rep.budget_exhausted) continue;
    budget_exhausted = true;
    budget_reason = rep.budget_reason;
    break;
  }
  if (!budget_exhausted) {
    Rng analysis_rng(cfg.seed * 2654435761ULL + 9);
    out.localization = core::localize(out.input, analysis_rng);
  }
  // A budget-stopped phase yields a truncated measurement, not evidence:
  // the run's verdict is the machine-readable budget outcome and the
  // analyses never see the stump.

  auto& r = out.report;
  r.run = run_name;
  r.seed = cfg.seed;
  if (cfg.fault_plan != nullptr) r.fault_plan = cfg.fault_plan->name;
  r.verdict = budget_exhausted ? obs::kBudgetExhaustedVerdict
                               : core::to_string(out.localization.verdict);
  if (budget_exhausted) {
    r.reason = std::string("budget:") + budget_reason;
  } else if (out.localization.verdict == core::Verdict::Inconclusive) {
    r.reason = core::to_string(out.localization.inconclusive_reason);
  }
  // v4: budget-exhausted runs skipped localize() and keep the default
  // trace — the empty-but-valid decision block.
  r.decision = decision_section(out.localization.trace);
  // v5: ground truth from the limiter placement the scenario configured;
  // the audit scores the within-target-area verdict against it.
  r.ground_truth = ground_truth_section(cfg, derive(cfg));
  r.audit = obs::classify_audit(
      r.ground_truth,
      !budget_exhausted &&
          out.localization.verdict == core::Verdict::EvidenceWithinTargetArea,
      /*mechanism_mismatch=*/false, budget_exhausted, r.decision);
  faults::InjectionStats injection;
  std::uint64_t limiter_drops = 0;
  int phases_faulted = 0;
  std::vector<obs::ProfileSpan> spans;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    r.add_stage(phase_name(kFullPhases[i]), 0, reports[i].sim_duration);
    // v3 profile: each phase on its own track (all start at sim time 0)
    // with the replay window as a child span, so the phase's self time
    // is the post-replay drain.
    const std::int64_t track = static_cast<std::int64_t>(i);
    spans.push_back(
        {track, phase_name(kFullPhases[i]), 0, reports[i].sim_duration});
    spans.push_back({track, "replay_window", 0,
                     std::min(cfg.replay_duration, reports[i].sim_duration)});
    injection += reports[i].injection;
    limiter_drops += reports[i].limiter_drops;
    if (reports[i].faulted) ++phases_faulted;
  }
  r.profile = obs::profile_from_spans(std::move(spans));
  for (const auto& [kind, count] : injection.by_kind()) {
    r.injection[kind] = count;
  }
  r.values["limiter_drops"] = static_cast<double>(limiter_drops);
  r.values["phases_faulted"] = phases_faulted;
  r.values["degraded"] = out.localization.degraded ? 1.0 : 0.0;
  out.metrics = local.metrics();
  if (outer != nullptr) outer->absorb(std::move(local), run_name);
  return out;
}

SimultaneousResult run_simultaneous_experiment(const ScenarioConfig& cfg) {
  SimultaneousResult res;
  auto reports = parallel::parallel_map(2, [&](std::size_t i) {
    return run_phase(cfg, i == 0 ? Phase::SimOriginal : Phase::SimInverted);
  });
  res.original = std::move(reports[0]);
  res.inverted = std::move(reports[1]);
  res.p1_confirmation = core::detect_differentiation(res.original.p1.meas,
                                                     res.inverted.p1.meas);
  res.p2_confirmation = core::detect_differentiation(res.original.p2.meas,
                                                     res.inverted.p2.meas);
  res.differentiation_confirmed = res.p1_confirmation.differentiation &&
                                  res.p2_confirmation.differentiation;
  return res;
}

}  // namespace wehey::experiments
