// Ground-truth ledger: maps a run's *configuration* — the side of the
// experiment the simulator controls and the tool under test never sees —
// onto the obs::GroundTruthSection that RunReport v5 serializes. Like
// decision.hpp, this bridge lives in the experiments layer because
// wehey_obs cannot depend on the scenario/wild config types.
//
// Everything here is a pure function of the run config: no RNG is drawn
// and no simulation state is read, so the emitted section is
// byte-identical across WEHEY_THREADS, absorb orders, and repeat runs —
// the property the sweep-level audit fold (and its CI byte-identity
// gate) relies on.
#pragma once

#include "experiments/scenario.hpp"
#include "experiments/wild.hpp"
#include "obs/report.hpp"

namespace wehey::experiments {

/// Ground truth of a Figure-1 scenario run. The limiter placement
/// determines both the mechanism label and whether the configured
/// differentiation sits within the target area (common link = yes; the
/// NonCommonLinks false-positive scenario = no; no limiter = no
/// differentiation at all). Scenario limiters are always-on TBFs, so
/// the activation threshold is 0.
inline obs::GroundTruthSection ground_truth_section(
    const ScenarioConfig& cfg, const ScenarioDerived& derived) {
  obs::GroundTruthSection truth;
  truth.present = true;
  switch (cfg.placement) {
    case Placement::None:
      truth.differentiated = false;
      truth.mechanism = obs::kMechanismNone;
      truth.placement = obs::kPlacementNone;
      truth.within_target_area = false;
      break;
    case Placement::CommonLink:
      truth.differentiated = true;
      truth.mechanism = obs::kMechanismCollectiveTbf;
      truth.placement = obs::kPlacementCommonLink;
      truth.within_target_area = true;
      truth.rate_bps = derived.limiter_rate;
      break;
    case Placement::NonCommonLinks:
      truth.differentiated = true;
      truth.mechanism = obs::kMechanismCollectiveTbf;
      truth.placement = obs::kPlacementNonCommonLinks;
      truth.within_target_area = false;
      truth.rate_bps = derived.limiter_rate;
      break;
    case Placement::PerFlowCommonLink:
      truth.differentiated = true;
      truth.mechanism = obs::kMechanismPerFlowTbf;
      truth.placement = obs::kPlacementCommonLink;
      truth.within_target_area = true;
      truth.rate_bps = derived.limiter_rate;
      break;
  }
  return truth;
}

/// Ground truth of an in-the-wild test. All five ISP models throttle the
/// client per-client on the common link (within the ISP); ISP5's delayed
/// fixed-rate variant additionally carries the received-byte activation
/// threshold that wild_network_params configures into its DelayedTbfDisc.
/// `trace_rate` must be the same value the network construction used
/// (the non-inverted trace's average rate). The §5 sanity check does not
/// change the configured network — it changes what a correct tool should
/// *report* — so it rides along as a flag and flips the audit's
/// expected-positive, not the physical truth.
inline obs::GroundTruthSection ground_truth_section(const WildConfig& cfg,
                                                    Rate trace_rate,
                                                    bool sanity_check) {
  obs::GroundTruthSection truth;
  truth.present = true;
  truth.differentiated = true;
  truth.mechanism = cfg.isp.delayed_fixed_rate
                        ? obs::kMechanismDelayedFixedRate
                        : obs::kMechanismPerClientTbf;
  truth.placement = obs::kPlacementCommonLink;
  truth.within_target_area = true;
  truth.rate_bps = cfg.isp.throttle_factor * trace_rate;
  if (cfg.isp.delayed_fixed_rate) {
    // Identical expression to wild_network_params' DelayedTbfDisc
    // trigger, so the ledger records the byte threshold actually
    // configured.
    truth.activation_bytes = static_cast<std::int64_t>(
        cfg.isp.trigger_seconds * trace_rate / 8.0);
  }
  truth.sanity_check = sanity_check;
  return truth;
}

}  // namespace wehey::experiments
