// The simultaneous-replay coordination flow of §3.4, end to end, on one
// continuous simulated timeline:
//
//   1. the client runs a standard WeHe test against s0 (original +
//      bit-inverted single replays);
//   2. on detected differentiation — and with the user's consent — the
//      client queries the topology database for a server pair {s1, s2}
//      whose paths converge inside its ISP;
//   3. s1 and s2 replay the original trace simultaneously (started by
//      back-to-back commands), then the bit-inverted trace; throughput,
//      loss and latency are measured along each path, and at the end of
//      each replay the servers perform traceroutes to the client;
//   4. the gathering server verifies the topology was still suitable at
//      the end of the replays — if not, the measurements are discarded
//      and the topology database updated; otherwise the §3.1 analyses run.
//
// Control-plane exchanges (requests, measurement gathering) are modelled
// as fixed-latency hops on the same simulated clock, and every step is
// recorded in a timestamped session log.
#pragma once

#include <string>
#include <vector>

#include "core/localizer.hpp"
#include "experiments/scenario.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "obs/report.hpp"
#include "topology/database.hpp"

namespace wehey::replay {

struct SessionConfig {
  experiments::ScenarioConfig scenario;
  /// One-way latency of a control-plane exchange (client <-> server).
  Time control_latency = milliseconds(40);
  /// Quiet gap between consecutive replays.
  Time inter_replay_gap = seconds(2);
  /// Historical T_diff values (from experiments::build_t_diff_history or
  /// the wild equivalent).
  std::vector<double> t_diff_history;
  /// §3.4: the client asks the user before running extra measurements.
  bool user_consents = true;
  /// Simulate inter-domain route churn between the WeHe test and the
  /// simultaneous replays (path 1 detours through path 2's transit).
  bool route_churn = false;

  /// Fault plan executed against this session. Empty (the default) means
  /// every injection hook is skipped and the run is bit-identical to a
  /// build without the faults subsystem.
  faults::FaultPlan fault_plan;
  /// Bounded retry for aborted replay phases (env: WEHEY_SESSION_RETRIES).
  int max_replay_attempts = 3;
  /// Bounded retry for dropped control-plane exchanges.
  int max_control_attempts = 4;
  /// How long the client waits on a control-plane answer before declaring
  /// the exchange lost (env: WEHEY_CONTROL_TIMEOUT_MS).
  Time control_timeout = milliseconds(250);
  /// First retry backoff; doubles per attempt (env: WEHEY_RETRY_BACKOFF_MS).
  Time retry_backoff = milliseconds(200);
  /// When a simultaneous phase keeps aborting, how many server pairs to
  /// try in total (fresh pairs come from the topology database).
  int max_pair_attempts = 2;
};

enum class SessionOutcome {
  NoDifferentiationDetected,  ///< WeHe found nothing; WeHeY never starts
  UserDeclined,               ///< differentiation found, no consent
  NoSuitableTopology,         ///< topology DB has no pair for this client
  TopologyNoLongerSuitable,   ///< end-of-replay traceroutes failed step 4
  NoEvidence,                 ///< analyses found no localizable evidence
  LocalizedWithinIsp,         ///< evidence of differentiation in the ISP
  ReplayRetriesExhausted,     ///< every replay attempt (and pair) aborted
  ControlPlaneUnreachable,    ///< control exchanges kept timing out
  InconclusiveMeasurements,   ///< analyses ran on unusably degraded data
  TracerouteFailed,           ///< gathering-step traceroutes unusable
                              ///< (dropped/garbled hops, §3.3 filters)
  BudgetExhausted,            ///< the supervisor's per-trial budget ended
                              ///< a runaway run (event-count or sim-time
                              ///< ceiling, src/parallel/supervisor.hpp)
};

const char* to_string(SessionOutcome outcome);

struct SessionEvent {
  Time at = 0;
  std::string what;
};

struct SessionResult {
  SessionOutcome outcome = SessionOutcome::NoDifferentiationDetected;
  core::WeheResult initial_wehe;
  core::LocalizationResult localization;
  topology::ServerPair pair;
  std::vector<SessionEvent> events;
  Time finished_at = 0;
  // Hardening counters — all zero on a fault-free session.
  int replay_retries = 0;   ///< replays restarted after a mid-stream abort
  int control_retries = 0;  ///< control exchanges re-sent after a timeout
  int pair_fallbacks = 0;   ///< server-pair replacements mid-session
  /// What the fault injector actually did (all-zero when fault-free).
  faults::InjectionStats injection;
  /// Which ceiling tripped when outcome == BudgetExhausted: "events" or
  /// "sim_time". Empty otherwise.
  std::string budget_reason;
  /// Per-stage simulated-time boundaries (wehe_test, topology_query,
  /// simultaneous_replays, gathering, analysis); stages the session never
  /// reached are absent, the stage it died in ends at finished_at.
  std::vector<obs::StageTiming> stages;
  /// One "replay_attempt" sub-span per scheduled replay window (retries
  /// included), nested inside the wehe_test / simultaneous_replays
  /// stages. Feeds the RunReport v3 self-time profile and, when tracing,
  /// the timeline.
  std::vector<obs::StageTiming> replay_attempts;
};

/// Seed a topology database from the servers' current traceroutes to the
/// client, exactly as the daily TC ingest would (§3.3).
void seed_topology_database(const experiments::ScenarioConfig& scenario,
                            topology::TopologyDatabase& db);

/// Run one complete WeHe + WeHeY session. The database is read for the
/// server pair and updated if step 4 invalidates it.
SessionResult run_session(const SessionConfig& cfg,
                          topology::TopologyDatabase& db);

/// Package a finished session as a RunReport (verdict, stage timings,
/// retry counters, per-fault-kind injection counts). `run_name` becomes
/// the report's "run" field.
obs::RunReport make_run_report(const SessionConfig& cfg,
                               const SessionResult& result,
                               const std::string& run_name);

}  // namespace wehey::replay
