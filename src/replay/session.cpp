#include "replay/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/check.hpp"
#include "experiments/decision.hpp"
#include "experiments/ground_truth.hpp"
#include "faults/injector.hpp"
#include "obs/recorder.hpp"
#include "parallel/supervisor.hpp"
#include "topology/construction.hpp"
#include "trace/apps.hpp"
#include "trace/background.hpp"

namespace wehey::replay {

using experiments::FigureOneNetwork;
using experiments::Phase;

namespace {

constexpr Time kBackToBackOffset = milliseconds(5);

/// The session's client address (the traceroute destination of the
/// Figure-1 network).
const char* kClientIp = "100.0.1.77";

trace::AppTrace session_base_trace(const experiments::ScenarioConfig& cfg) {
  Rng trace_rng(cfg.seed * 0x9e3779b9ULL + 17);
  if (cfg.app == "Netflix") {
    return trace::make_tcp_app_trace(cfg.base_trace_duration, trace_rng);
  }
  return trace::make_udp_app_trace(cfg.app, cfg.base_trace_duration,
                                   trace_rng);
}

trace::AppTrace prepare_replay(const trace::AppTrace& t,
                               const experiments::ScenarioConfig& cfg,
                               bool inverted, Rng& rng) {
  trace::AppTrace out = inverted ? trace::bit_invert(t) : t;
  out = trace::extend(out, cfg.replay_duration);
  if (cfg.modified_traces && out.transport == trace::Transport::Udp) {
    out = trace::poissonize(out, rng);
  }
  return out;
}

int env_int(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int parsed = std::atoi(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

Time env_ms(const char* name, Time fallback) {
  if (const char* v = std::getenv(name)) {
    const int parsed = std::atoi(v);
    if (parsed > 0) return milliseconds(parsed);
  }
  return fallback;
}

}  // namespace

const char* to_string(SessionOutcome outcome) {
  switch (outcome) {
    case SessionOutcome::NoDifferentiationDetected:
      return "no differentiation detected";
    case SessionOutcome::UserDeclined: return "user declined";
    case SessionOutcome::NoSuitableTopology: return "no suitable topology";
    case SessionOutcome::TopologyNoLongerSuitable:
      return "topology no longer suitable";
    case SessionOutcome::NoEvidence: return "no evidence";
    case SessionOutcome::LocalizedWithinIsp: return "localized within ISP";
    case SessionOutcome::ReplayRetriesExhausted:
      return "replay retries exhausted";
    case SessionOutcome::ControlPlaneUnreachable:
      return "control plane unreachable";
    case SessionOutcome::InconclusiveMeasurements:
      return "inconclusive measurements";
    case SessionOutcome::TracerouteFailed: return "traceroute failed";
    case SessionOutcome::BudgetExhausted: return "budget exhausted";
  }
  return "?";
}

void seed_topology_database(const experiments::ScenarioConfig& scenario,
                            topology::TopologyDatabase& db) {
  // The daily TC ingest (§3.3), fed by the servers' traceroutes.
  netsim::Simulator sim;
  Rng rng(scenario.seed);
  const auto derived = experiments::derive(scenario);
  FigureOneNetwork net(sim, derived.net, rng);
  topology::TopologyConstructor tc;
  // The deployment runs standby measurement servers besides s1/s2 so the
  // database always holds more than one suitable pair per client prefix —
  // without them the §3.4 pair fallback has nothing to fall back to.
  db.ingest(tc.construct({net.traceroute(1), net.traceroute(2),
                          net.standby_traceroute(3)}));
}

SessionResult run_session(const SessionConfig& cfg,
                          topology::TopologyDatabase& db) {
  const auto& scenario = cfg.scenario;
  const Time duration = scenario.replay_duration;
  const Time gap = cfg.inter_replay_gap;
  const Time rpc = cfg.control_latency;

  const int max_replay_attempts =
      env_int("WEHEY_SESSION_RETRIES", cfg.max_replay_attempts);
  const Time control_timeout =
      env_ms("WEHEY_CONTROL_TIMEOUT_MS", cfg.control_timeout);
  const Time base_backoff = env_ms("WEHEY_RETRY_BACKOFF_MS", cfg.retry_backoff);

  SessionResult result;
  auto log = [&](Time at, std::string what) {
    result.events.push_back({at, std::move(what)});
  };

  netsim::Simulator sim;
  parallel::install_trial_budget(sim);
  Rng rng(scenario.seed * 1000003ULL + 77);
  const auto derived = experiments::derive(scenario);
  FigureOneNetwork net(sim, derived.net, rng);

  // Fills in the BudgetExhausted terminal state; callers `return result`
  // right after. Checked after every sim.run so a runaway trial (e.g. the
  // event-storm livelock) ends with a machine-readable outcome instead of
  // spinning forever.
  auto budget_bail = [&] {
    result.budget_reason = sim.budget_reason();
    result.outcome = SessionOutcome::BudgetExhausted;
    result.finished_at = sim.now();
  };

  faults::FaultInjector injector;
  if (cfg.fault_plan.enabled()) {
    faults::FaultPlan derived_plan = cfg.fault_plan;
    derived_plan.seed = cfg.fault_plan.seed * 0x100000001b3ULL ^
                        (scenario.seed * 1000003ULL + 77);
    injector = faults::FaultInjector(derived_plan);
  }

  // Stage boundaries on the simulated clock, recorded as the pipeline
  // advances (-1 = never reached). A scope-exit finalizer folds them into
  // result.stages — and publishes counters and timeline spans to the
  // obs::Recorder bound to this thread, if any — on every return path.
  Time wehe_done = -1, lookup_done = -1, replays_done = -1, gather_done = -1;
  // Wall-clock stamps of the same boundaries, only under
  // WEHEY_REPORT_WALL=1 (wall times are nondeterministic by nature and
  // would break the byte-identity contract otherwise).
  const bool wall_on = obs::report_wall_times();
  const auto wall_start = std::chrono::steady_clock::now();
  double wehe_wall = -1.0, lookup_wall = -1.0, replays_wall = -1.0,
         gather_wall = -1.0;
  const auto wall_now = [wall_start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - wall_start)
        .count();
  };
  struct ObsFinalizer {
    SessionResult& result;
    const FigureOneNetwork& net;
    const faults::FaultInjector& injector;
    const Time& wehe_done;
    const Time& lookup_done;
    const Time& replays_done;
    const Time& gather_done;
    const bool wall_on;
    const std::chrono::steady_clock::time_point wall_start;
    const double& wehe_wall;
    const double& lookup_wall;
    const double& replays_wall;
    const double& gather_wall;
    ~ObsFinalizer() {
      result.injection = injector.stats();
      const double end_wall =
          wall_on ? std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count()
                  : -1.0;
      auto add = [this, end_wall](const char* name, Time s, Time e,
                                  double ws, double we) {
        if (s < 0) return;
        // An unreached boundary means the session died inside this stage
        // (on both clocks).
        double wall = -1.0;
        if (wall_on && ws >= 0.0) {
          wall = (we >= ws ? we : end_wall) - ws;
        }
        result.stages.push_back(
            {name, s, e >= s ? e : result.finished_at, wall});
      };
      add("wehe_test", 0, wehe_done, 0.0, wehe_wall);
      add("topology_query", wehe_done, lookup_done, wehe_wall, lookup_wall);
      add("simultaneous_replays", lookup_done, replays_done, lookup_wall,
          replays_wall);
      add("gathering", replays_done, gather_done, replays_wall, gather_wall);
      add("analysis", gather_done, result.finished_at, gather_wall,
          end_wall);
      obs::Recorder* rec = obs::Recorder::current();
      if (rec == nullptr) return;
      net.snapshot_metrics();
      if (rec->metrics_on()) {
        auto& m = rec->metrics();
        m.counter("session.count").inc();
        m.counter("session.replay_retries")
            .inc(static_cast<std::uint64_t>(result.replay_retries));
        m.counter("session.control_retries")
            .inc(static_cast<std::uint64_t>(result.control_retries));
        m.counter("session.pair_fallbacks")
            .inc(static_cast<std::uint64_t>(result.pair_fallbacks));
        m.counter(std::string("session.outcome.") +
                  to_string(result.outcome))
            .inc();
        for (const auto& [kind, count] : result.injection.by_kind()) {
          if (count > 0) {
            m.counter(std::string("faults.") + kind)
                .inc(static_cast<std::uint64_t>(count));
          }
        }
      }
      if (rec->trace_on()) {
        auto& tl = rec->timeline();
        for (const auto& st : result.stages) {
          tl.span(st.name, "session", st.sim_start, st.sim_end);
        }
        for (const auto& st : result.replay_attempts) {
          tl.span(st.name, "replay", st.sim_start, st.sim_end);
        }
        for (const auto& ev : result.events) {
          tl.instant(ev.what, "session", ev.at);
        }
      }
    }
  } obs_finalizer{result,       net,        injector,     wehe_done,
                  lookup_done,  replays_done, gather_done, wall_on,
                  wall_start,   wehe_wall,  lookup_wall,  replays_wall,
                  gather_wall};

  // Background spans the whole session (all four replays plus gaps).
  // Retried replays stretch the timeline, so a faulted session needs a
  // proportionally longer background.
  Time horizon = 4 * (duration + gap) + 12 * rpc + seconds(10);
  if (injector.enabled()) {
    horizon *= max_replay_attempts * cfg.max_pair_attempts + 1;
  }
  trace::BackgroundConfig bg;
  bg.target_rate = scenario.bg_rate_per_path;
  bg.duration = horizon;
  bg.flows_per_second =
      std::max(1.5, scenario.bg_rate_per_path / mbps(1.0) * 1.2);
  for (int path = 1; path <= 2; ++path) {
    auto flows = trace::generate_background(bg, rng);
    trace::mark_differentiated(flows, scenario.bg_diff_fraction, rng);
    net.attach_background(path, flows);
  }

  const auto base = session_base_trace(scenario);
  transport::TcpConfig tcp;
  tcp.pacing = scenario.modified_traces;
  tcp.cc = scenario.tcp_cc;
  auto start_replay = [&](int path, bool inverted, Time at) {
    const auto replay = prepare_replay(base, scenario, inverted, rng);
    if (replay.transport == trace::Transport::Tcp) {
      return net.start_tcp_replay(path, replay, at, tcp,
                                  scenario.tcp_connections);
    }
    return net.start_udp_replay(path, replay, at);
  };
  auto arm_cut = [&](int path) {
    if (!injector.enabled()) return;
    const auto fault = injector.on_replay_start(path);
    if (fault.storm) {
      experiments::ReplayStorm storm;
      storm.after = static_cast<Time>(static_cast<double>(duration) *
                                      fault.storm_at_fraction);
      storm.interval = fault.storm_interval;
      net.set_next_replay_storm(storm);
    }
    if (!fault.abort) return;
    experiments::ReplayCut cut;
    cut.after = static_cast<Time>(static_cast<double>(duration) *
                                  fault.at_fraction);
    cut.after_bytes = fault.after_bytes;
    net.set_next_replay_cut(cut);
  };
  // A control-plane exchange that a fault can drop (the client waits out
  // its timeout and re-sends, with doubling backoff) or delay. Advances
  // `now` accordingly; false = every attempt was dropped.
  auto control_exchange = [&](Time& now, const std::string& what) {
    if (!injector.enabled()) return true;
    Time backoff = base_backoff;
    for (int attempt = 1; attempt <= cfg.max_control_attempts; ++attempt) {
      const auto fault = injector.on_control_exchange();
      if (!fault.dropped) {
        if (fault.extra_delay > 0) {
          now += fault.extra_delay;
          log(now, what + ": answer delayed");
        }
        return true;
      }
      now += control_timeout;
      if (attempt < cfg.max_control_attempts) {
        ++result.control_retries;
        log(now, what + ": timed out; re-sending");
        now += backoff;
        backoff *= 2;
      } else {
        log(now, what + ": timed out; giving up");
      }
    }
    return false;
  };

  // --- Phase 1: the standard WeHe test against s0 (= path 1). ---
  experiments::PathReport p0_orig, p0_inv;
  Time t_analysis = 0;
  if (!injector.enabled()) {
    const Time t_orig = rpc;
    log(0, "client -> s0: run WeHe test");
    const int id_p0_orig = start_replay(1, false, t_orig);
    const Time t_inv = t_orig + duration + gap;
    const int id_p0_inv = start_replay(1, true, t_inv);
    result.replay_attempts.push_back(
        {"replay_attempt", t_orig, t_orig + duration, -1.0});
    result.replay_attempts.push_back(
        {"replay_attempt", t_inv, t_inv + duration, -1.0});
    t_analysis = t_inv + duration + rpc;
    sim.run(t_analysis);
    if (sim.budget_exhausted()) {
      log(sim.now(), std::string("trial budget exhausted (") +
                         sim.budget_reason() + "); session ends");
      budget_bail();
      return result;
    }
    log(t_orig, "s0: original single replay");
    log(t_inv, "s0: bit-inverted single replay");
    p0_orig = net.report(id_p0_orig, t_orig, duration);
    p0_inv = net.report(id_p0_inv, t_inv, duration);
  } else {
    Time t = rpc;
    log(0, "client -> s0: run WeHe test");
    auto run_single = [&](bool inverted, const char* what)
        -> std::optional<experiments::PathReport> {
      Time backoff = base_backoff;
      for (int attempt = 1; attempt <= max_replay_attempts; ++attempt) {
        arm_cut(1);
        const int id = start_replay(1, inverted, t);
        result.replay_attempts.push_back(
            {"replay_attempt", t, t + duration, -1.0});
        sim.run(t + duration);
        if (sim.budget_exhausted()) return std::nullopt;
        auto rep = net.report(id, t, duration);
        log(t, std::string("s0: ") + what + " single replay");
        if (!rep.aborted) {
          t += duration + gap;
          return rep;
        }
        log(rep.aborted_at,
            std::string("s0: ") + what + " replay aborted mid-stream");
        if (attempt < max_replay_attempts) {
          ++result.replay_retries;
          log(rep.aborted_at, "s0: retrying after backoff");
        }
        t += duration + backoff;
        backoff *= 2;
      }
      return std::nullopt;
    };
    const auto orig = run_single(false, "original");
    if (!orig.has_value()) {
      if (sim.budget_exhausted()) {
        log(sim.now(), std::string("s0: trial budget exhausted (") +
                           sim.budget_reason() + "); session ends");
        budget_bail();
        return result;
      }
      log(sim.now(), "s0: replay retries exhausted; session ends");
      result.outcome = SessionOutcome::ReplayRetriesExhausted;
      result.finished_at = sim.now();
      return result;
    }
    const auto inv = run_single(true, "bit-inverted");
    if (!inv.has_value()) {
      if (sim.budget_exhausted()) {
        log(sim.now(), std::string("s0: trial budget exhausted (") +
                           sim.budget_reason() + "); session ends");
        budget_bail();
        return result;
      }
      log(sim.now(), "s0: replay retries exhausted; session ends");
      result.outcome = SessionOutcome::ReplayRetriesExhausted;
      result.finished_at = sim.now();
      return result;
    }
    t_analysis = t - gap + rpc;
    sim.run(t_analysis);
    p0_orig = *orig;
    p0_inv = *inv;
  }

  wehe_done = t_analysis;
  if (wall_on) wehe_wall = wall_now();
  result.initial_wehe =
      core::detect_differentiation(p0_orig.meas, p0_inv.meas);
  if (!result.initial_wehe.differentiation) {
    log(t_analysis, "WeHe: no differentiation; session ends");
    result.outcome = SessionOutcome::NoDifferentiationDetected;
    result.finished_at = t_analysis;
    return result;
  }
  log(t_analysis, "WeHe: differentiation detected (KS p=" +
                      std::to_string(result.initial_wehe.p_value) + ")");

  // --- User consent (§3.4: the client asks the user). ---
  if (!cfg.user_consents) {
    log(t_analysis, "user declined the localization test");
    result.outcome = SessionOutcome::UserDeclined;
    result.finished_at = t_analysis;
    return result;
  }

  // --- Topology query (one control round-trip to the DB). ---
  Time t_lookup = t_analysis + 2 * rpc;
  if (!control_exchange(t_lookup, "topology DB query")) {
    result.outcome = SessionOutcome::ControlPlaneUnreachable;
    result.finished_at = t_lookup;
    return result;
  }
  std::optional<topology::ServerPair> pair;
  {
    Time backoff = base_backoff;
    for (int attempt = 1;; ++attempt) {
      if (injector.enabled() && injector.on_topology_lookup()) {
        if (attempt >= cfg.max_control_attempts) {
          log(t_lookup,
              "topology DB: server pair still unavailable; giving up");
          result.outcome = SessionOutcome::NoSuitableTopology;
          result.finished_at = t_lookup;
          return result;
        }
        ++result.control_retries;
        log(t_lookup,
            "topology DB: server pair transiently unavailable; retrying");
        t_lookup += backoff;
        backoff *= 2;
        continue;
      }
      pair = db.pick(kClientIp);
      break;
    }
  }
  if (!pair.has_value()) {
    log(t_lookup, "topology DB: no suitable server pair for this client");
    result.outcome = SessionOutcome::NoSuitableTopology;
    result.finished_at = t_lookup;
    return result;
  }
  result.pair = *pair;
  log(t_lookup, "topology DB: selected servers " + pair->server1 + " + " +
                    pair->server2 + " (converge at " +
                    pair->convergence_ip + ")");
  lookup_done = t_lookup;
  if (wall_on) lookup_wall = wall_now();

  if (cfg.route_churn) {
    net.set_route_churn(true);
    // The detour is silent: nothing in the control plane notices until
    // the end-of-replay traceroutes.
  }

  // --- Phase 2: simultaneous replays, started back-to-back. ---
  netsim::ReplayMeasurement m_p1o, m_p2o, m_p1i, m_p2i;
  Time t_end = 0;
  if (!injector.enabled()) {
    const Time t_sim_orig = t_lookup + rpc;
    const int id_p1_orig = start_replay(1, false, t_sim_orig);
    const int id_p2_orig =
        start_replay(2, false, t_sim_orig + kBackToBackOffset);
    const Time t_sim_inv = t_sim_orig + duration + gap;
    const int id_p1_inv = start_replay(1, true, t_sim_inv);
    const int id_p2_inv =
        start_replay(2, true, t_sim_inv + kBackToBackOffset);
    result.replay_attempts.push_back(
        {"replay_attempt", t_sim_orig,
         t_sim_orig + kBackToBackOffset + duration, -1.0});
    result.replay_attempts.push_back(
        {"replay_attempt", t_sim_inv,
         t_sim_inv + kBackToBackOffset + duration, -1.0});
    t_end = t_sim_inv + duration + seconds(3);
    sim.run(t_end);
    if (sim.budget_exhausted()) {
      log(sim.now(), std::string("trial budget exhausted (") +
                         sim.budget_reason() + "); session ends");
      budget_bail();
      return result;
    }
    log(t_sim_orig, "s1+s2: original simultaneous replay");
    log(t_sim_inv, "s1+s2: bit-inverted simultaneous replay");
    m_p1o = net.report(id_p1_orig, t_sim_orig, duration).meas;
    m_p2o = net.report(id_p2_orig, t_sim_orig + kBackToBackOffset, duration)
                .meas;
    m_p1i = net.report(id_p1_inv, t_sim_inv, duration).meas;
    m_p2i = net.report(id_p2_inv, t_sim_inv + kBackToBackOffset, duration)
                .meas;
  } else {
    Time t = t_lookup + rpc;
    // One simultaneous phase with bounded retry; on success the two
    // measurements land in (out1, out2).
    auto run_pair_phase = [&](bool inverted, const char* what,
                              netsim::ReplayMeasurement& out1,
                              netsim::ReplayMeasurement& out2) {
      Time backoff = base_backoff;
      for (int attempt = 1; attempt <= max_replay_attempts; ++attempt) {
        arm_cut(1);
        const int id1 = start_replay(1, inverted, t);
        arm_cut(2);
        const int id2 = start_replay(2, inverted, t + kBackToBackOffset);
        result.replay_attempts.push_back(
            {"replay_attempt", t, t + kBackToBackOffset + duration, -1.0});
        sim.run(t + kBackToBackOffset + duration);
        if (sim.budget_exhausted()) return false;
        const auto r1 = net.report(id1, t, duration);
        const auto r2 = net.report(id2, t + kBackToBackOffset, duration);
        log(t, std::string("s1+s2: ") + what + " simultaneous replay");
        if (!r1.aborted && !r2.aborted) {
          out1 = r1.meas;
          out2 = r2.meas;
          t += duration + gap;
          return true;
        }
        log(r1.aborted ? r1.aborted_at : r2.aborted_at,
            std::string(r1.aborted ? "s1" : "s2") + ": " + what +
                " replay aborted mid-stream");
        if (attempt < max_replay_attempts) {
          ++result.replay_retries;
          log(sim.now(), "s1+s2: retrying after backoff");
        }
        t += duration + backoff;
        backoff *= 2;
      }
      return false;
    };
    bool phases_done = false;
    for (int pair_attempt = 1; pair_attempt <= cfg.max_pair_attempts;
         ++pair_attempt) {
      if (run_pair_phase(false, "original", m_p1o, m_p2o) &&
          run_pair_phase(true, "bit-inverted", m_p1i, m_p2i)) {
        phases_done = true;
        break;
      }
      if (sim.budget_exhausted()) break;
      if (pair_attempt >= cfg.max_pair_attempts) break;
      // §3.4 fallback: ask the topology database for a different suitable
      // pair and restart the simultaneous phases against it.
      const auto candidates = db.lookup(kClientIp);
      const auto alt = std::find_if(
          candidates.begin(), candidates.end(),
          [&](const topology::ServerPair& p) {
            return p.server1 != pair->server1 || p.server2 != pair->server2;
          });
      if (alt == candidates.end()) {
        log(sim.now(), "topology DB: no alternate server pair available");
        break;
      }
      pair = *alt;
      result.pair = *pair;
      ++result.pair_fallbacks;
      log(sim.now(), "falling back to fresh server pair " + pair->server1 +
                         " + " + pair->server2);
    }
    if (!phases_done) {
      if (sim.budget_exhausted()) {
        log(sim.now(), std::string("trial budget exhausted (") +
                           sim.budget_reason() + "); session ends");
        budget_bail();
        return result;
      }
      log(sim.now(), "simultaneous replay retries exhausted; session ends");
      result.outcome = SessionOutcome::ReplayRetriesExhausted;
      result.finished_at = sim.now();
      return result;
    }
    t_end = sim.now() + seconds(3);
    sim.run(t_end);
    if (sim.budget_exhausted()) {
      log(sim.now(), std::string("trial budget exhausted (") +
                         sim.budget_reason() + "); session ends");
      budget_bail();
      return result;
    }
  }

  // --- End-of-replay traceroutes, gathered at s1 (§3.4 steps 3-4). ---
  replays_done = t_end;
  if (wall_on) replays_wall = wall_now();
  Time t_gather = t_end + 2 * rpc;
  if (!control_exchange(t_gather, "measurement gathering")) {
    result.outcome = SessionOutcome::ControlPlaneUnreachable;
    result.finished_at = t_gather;
    return result;
  }
  auto tr1 = net.traceroute(1);
  auto tr2 = net.traceroute(2);
  if (injector.enabled()) {
    // The topology query itself can come back damaged: probes black-holed
    // near the client or hops reporting aliased addresses.
    bool damaged = injector.on_traceroute(1, tr1);
    damaged |= injector.on_traceroute(2, tr2);
    if (damaged) log(t_gather, "gathering-step traceroutes arrived damaged");
  }
  // Re-apply the §3.3 filter conditions before the pair check: a record
  // that fails them says nothing about the topology (the *query* failed),
  // so the pair is kept in the database and the session ends with its own
  // outcome instead of TopologyNoLongerSuitable.
  const bool tr_usable =
      tr1.last_hop_matches_dst_asn() && tr1.alias_consistent() &&
      tr2.last_hop_matches_dst_asn() && tr2.alias_consistent();
  if (!tr_usable) {
    log(t_gather,
        "end-of-replay traceroutes unusable (dropped or aliased hops); "
        "measurements discarded");
    result.outcome = SessionOutcome::TracerouteFailed;
    result.finished_at = t_gather;
    return result;
  }
  std::string convergence;
  const bool still_suitable = topology::suitable_pair(
      tr1, tr2, FigureOneNetwork::kClientAsn, &convergence);
  if (!still_suitable) {
    log(t_gather,
        "end-of-replay traceroutes: paths no longer converge only inside "
        "the ISP; measurements discarded, topology DB updated");
    db.invalidate(kClientIp, *pair);
    result.outcome = SessionOutcome::TopologyNoLongerSuitable;
    result.finished_at = t_gather;
    return result;
  }
  log(t_gather, "end-of-replay traceroutes: topology still suitable "
                "(converging at " + convergence + ")");
  gather_done = t_gather;
  if (wall_on) gather_wall = wall_now();

  // --- Analyses (§3.1 operations 3 and 4), run at the gathering server. ---
  core::LocalizationInput input;
  input.p0_original = p0_orig.meas;
  input.p0_inverted = p0_inv.meas;
  input.p1_original = std::move(m_p1o);
  input.p2_original = std::move(m_p2o);
  input.p1_inverted = std::move(m_p1i);
  input.p2_inverted = std::move(m_p2i);
  if (injector.enabled()) {
    // The servers upload their measurement series to the gathering server;
    // a fault can truncate, corrupt or clock-skew an upload in flight.
    bool damaged = injector.on_measurement_upload(1, input.p1_original);
    damaged |= injector.on_measurement_upload(2, input.p2_original);
    damaged |= injector.on_measurement_upload(1, input.p1_inverted);
    damaged |= injector.on_measurement_upload(2, input.p2_inverted);
    if (damaged) log(t_gather, "uploaded measurement series arrived damaged");
  }
  input.t_diff_history = cfg.t_diff_history;
  input.base_rtt = std::max(milliseconds(scenario.rtt1_ms),
                            milliseconds(scenario.rtt2_ms));

  Rng analysis_rng(scenario.seed * 2654435761ULL + 9);
  result.localization = core::localize(input, analysis_rng);
  result.finished_at = t_gather;
  if (result.localization.verdict ==
      core::Verdict::EvidenceWithinTargetArea) {
    result.outcome = SessionOutcome::LocalizedWithinIsp;
    log(t_gather,
        result.localization.mechanism ==
                core::Mechanism::PerClientThrottling
            ? "verdict: localized (per-client throttling)"
            : "verdict: localized (collective throttling)");
  } else if (result.localization.verdict == core::Verdict::Inconclusive) {
    result.outcome = SessionOutcome::InconclusiveMeasurements;
    log(t_gather,
        std::string("verdict: inconclusive (") +
            core::to_string(result.localization.inconclusive_reason) + ")");
  } else {
    result.outcome = SessionOutcome::NoEvidence;
    log(t_gather, "verdict: no evidence beyond WeHe's detection");
  }
  return result;
}

obs::RunReport make_run_report(const SessionConfig& cfg,
                               const SessionResult& result,
                               const std::string& run_name) {
  obs::RunReport report;
  report.run = run_name;
  report.seed = cfg.scenario.seed;
  report.fault_plan = cfg.fault_plan.name;
  report.verdict = to_string(result.outcome);
  if (result.outcome == SessionOutcome::InconclusiveMeasurements) {
    report.reason =
        core::to_string(result.localization.inconclusive_reason);
  } else if (result.outcome == SessionOutcome::BudgetExhausted) {
    report.reason = std::string("budget:") + result.budget_reason;
  }
  // v4 verdict provenance. Sessions that never reached localize()
  // (budget-exhausted, pre-analysis aborts) carry the default trace,
  // which serializes as the empty-but-valid decision block.
  report.decision = experiments::decision_section(result.localization.trace);
  // v5: the session's ground truth comes from its scenario's limiter
  // placement; sessions that never reached a verdict (budget) audit as
  // skipped.
  report.ground_truth = experiments::ground_truth_section(
      cfg.scenario, experiments::derive(cfg.scenario));
  report.audit = obs::classify_audit(
      report.ground_truth,
      result.outcome == SessionOutcome::LocalizedWithinIsp,
      /*mechanism_mismatch=*/false,
      result.outcome == SessionOutcome::BudgetExhausted, report.decision);
  report.stages = result.stages;
  // v3 profile: the five stages tile the session's sim timeline on one
  // track; replay-attempt windows nest inside their stage, so a stage's
  // self time is what it spent outside actual replay traffic.
  std::vector<obs::ProfileSpan> spans;
  for (const auto& st : result.stages) {
    spans.push_back({0, st.name, st.sim_start, st.sim_end, st.wall_ms});
  }
  for (const auto& st : result.replay_attempts) {
    spans.push_back({0, st.name, st.sim_start, st.sim_end, st.wall_ms});
  }
  report.profile = obs::profile_from_spans(std::move(spans));
  report.values["replay_retries"] = result.replay_retries;
  report.values["control_retries"] = result.control_retries;
  report.values["pair_fallbacks"] = result.pair_fallbacks;
  report.values["finished_at_ms"] =
      static_cast<double>(result.finished_at) / kMillisecond;
  report.values["events_logged"] =
      static_cast<double>(result.events.size());
  for (const auto& [kind, count] : result.injection.by_kind()) {
    report.injection[kind] = count;
  }
  return report;
}

}  // namespace wehey::replay
