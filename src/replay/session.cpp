#include "replay/session.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "topology/construction.hpp"
#include "trace/apps.hpp"
#include "trace/background.hpp"

namespace wehey::replay {

using experiments::FigureOneNetwork;
using experiments::Phase;

namespace {

constexpr Time kBackToBackOffset = milliseconds(5);

/// The session's client address (the traceroute destination of the
/// Figure-1 network).
const char* kClientIp = "100.0.1.77";

trace::AppTrace session_base_trace(const experiments::ScenarioConfig& cfg) {
  Rng trace_rng(cfg.seed * 0x9e3779b9ULL + 17);
  if (cfg.app == "Netflix") {
    return trace::make_tcp_app_trace(cfg.base_trace_duration, trace_rng);
  }
  return trace::make_udp_app_trace(cfg.app, cfg.base_trace_duration,
                                   trace_rng);
}

trace::AppTrace prepare_replay(const trace::AppTrace& t,
                               const experiments::ScenarioConfig& cfg,
                               bool inverted, Rng& rng) {
  trace::AppTrace out = inverted ? trace::bit_invert(t) : t;
  out = trace::extend(out, cfg.replay_duration);
  if (cfg.modified_traces && out.transport == trace::Transport::Udp) {
    out = trace::poissonize(out, rng);
  }
  return out;
}

}  // namespace

const char* to_string(SessionOutcome outcome) {
  switch (outcome) {
    case SessionOutcome::NoDifferentiationDetected:
      return "no differentiation detected";
    case SessionOutcome::UserDeclined: return "user declined";
    case SessionOutcome::NoSuitableTopology: return "no suitable topology";
    case SessionOutcome::TopologyNoLongerSuitable:
      return "topology no longer suitable";
    case SessionOutcome::NoEvidence: return "no evidence";
    case SessionOutcome::LocalizedWithinIsp: return "localized within ISP";
  }
  return "?";
}

void seed_topology_database(const experiments::ScenarioConfig& scenario,
                            topology::TopologyDatabase& db) {
  // The daily TC ingest (§3.3), fed by the servers' traceroutes.
  netsim::Simulator sim;
  Rng rng(scenario.seed);
  const auto derived = experiments::derive(scenario);
  FigureOneNetwork net(sim, derived.net, rng);
  topology::TopologyConstructor tc;
  db.ingest(tc.construct({net.traceroute(1), net.traceroute(2)}));
}

SessionResult run_session(const SessionConfig& cfg,
                          topology::TopologyDatabase& db) {
  const auto& scenario = cfg.scenario;
  const Time duration = scenario.replay_duration;
  const Time gap = cfg.inter_replay_gap;
  const Time rpc = cfg.control_latency;

  SessionResult result;
  auto log = [&](Time at, std::string what) {
    result.events.push_back({at, std::move(what)});
  };

  netsim::Simulator sim;
  Rng rng(scenario.seed * 1000003ULL + 77);
  const auto derived = experiments::derive(scenario);
  FigureOneNetwork net(sim, derived.net, rng);

  // Background spans the whole session (all four replays plus gaps).
  const Time horizon = 4 * (duration + gap) + 12 * rpc + seconds(10);
  trace::BackgroundConfig bg;
  bg.target_rate = scenario.bg_rate_per_path;
  bg.duration = horizon;
  bg.flows_per_second =
      std::max(1.5, scenario.bg_rate_per_path / mbps(1.0) * 1.2);
  for (int path = 1; path <= 2; ++path) {
    auto flows = trace::generate_background(bg, rng);
    trace::mark_differentiated(flows, scenario.bg_diff_fraction, rng);
    net.attach_background(path, flows);
  }

  const auto base = session_base_trace(scenario);
  transport::TcpConfig tcp;
  tcp.pacing = scenario.modified_traces;
  tcp.cc = scenario.tcp_cc;
  auto start_replay = [&](int path, bool inverted, Time at) {
    const auto replay = prepare_replay(base, scenario, inverted, rng);
    if (replay.transport == trace::Transport::Tcp) {
      return net.start_tcp_replay(path, replay, at, tcp,
                                  scenario.tcp_connections);
    }
    return net.start_udp_replay(path, replay, at);
  };

  // --- Phase 1: the standard WeHe test against s0 (= path 1). ---
  const Time t_orig = rpc;
  log(0, "client -> s0: run WeHe test");
  const int id_p0_orig = start_replay(1, false, t_orig);
  const Time t_inv = t_orig + duration + gap;
  const int id_p0_inv = start_replay(1, true, t_inv);
  const Time t_analysis = t_inv + duration + rpc;
  sim.run(t_analysis);
  log(t_orig, "s0: original single replay");
  log(t_inv, "s0: bit-inverted single replay");

  const auto p0_orig = net.report(id_p0_orig, t_orig, duration);
  const auto p0_inv = net.report(id_p0_inv, t_inv, duration);
  result.initial_wehe =
      core::detect_differentiation(p0_orig.meas, p0_inv.meas);
  if (!result.initial_wehe.differentiation) {
    log(t_analysis, "WeHe: no differentiation; session ends");
    result.outcome = SessionOutcome::NoDifferentiationDetected;
    result.finished_at = t_analysis;
    return result;
  }
  log(t_analysis, "WeHe: differentiation detected (KS p=" +
                      std::to_string(result.initial_wehe.p_value) + ")");

  // --- User consent (§3.4: the client asks the user). ---
  if (!cfg.user_consents) {
    log(t_analysis, "user declined the localization test");
    result.outcome = SessionOutcome::UserDeclined;
    result.finished_at = t_analysis;
    return result;
  }

  // --- Topology query (one control round-trip to the DB). ---
  const Time t_lookup = t_analysis + 2 * rpc;
  const auto pair = db.pick(kClientIp);
  if (!pair.has_value()) {
    log(t_lookup, "topology DB: no suitable server pair for this client");
    result.outcome = SessionOutcome::NoSuitableTopology;
    result.finished_at = t_lookup;
    return result;
  }
  result.pair = *pair;
  log(t_lookup, "topology DB: selected servers " + pair->server1 + " + " +
                    pair->server2 + " (converge at " +
                    pair->convergence_ip + ")");

  if (cfg.route_churn) {
    net.set_route_churn(true);
    // The detour is silent: nothing in the control plane notices until
    // the end-of-replay traceroutes.
  }

  // --- Phase 2: simultaneous replays, started back-to-back. ---
  const Time t_sim_orig = t_lookup + rpc;
  const int id_p1_orig = start_replay(1, false, t_sim_orig);
  const int id_p2_orig =
      start_replay(2, false, t_sim_orig + kBackToBackOffset);
  const Time t_sim_inv = t_sim_orig + duration + gap;
  const int id_p1_inv = start_replay(1, true, t_sim_inv);
  const int id_p2_inv = start_replay(2, true, t_sim_inv + kBackToBackOffset);
  const Time t_end = t_sim_inv + duration + seconds(3);
  sim.run(t_end);
  log(t_sim_orig, "s1+s2: original simultaneous replay");
  log(t_sim_inv, "s1+s2: bit-inverted simultaneous replay");

  // --- End-of-replay traceroutes, gathered at s1 (§3.4 steps 3-4). ---
  const Time t_gather = t_end + 2 * rpc;
  const auto tr1 = net.traceroute(1);
  const auto tr2 = net.traceroute(2);
  std::string convergence;
  const bool still_suitable = topology::suitable_pair(
      tr1, tr2, FigureOneNetwork::kClientAsn, &convergence);
  if (!still_suitable) {
    log(t_gather,
        "end-of-replay traceroutes: paths no longer converge only inside "
        "the ISP; measurements discarded, topology DB updated");
    db.invalidate(kClientIp, *pair);
    result.outcome = SessionOutcome::TopologyNoLongerSuitable;
    result.finished_at = t_gather;
    return result;
  }
  log(t_gather, "end-of-replay traceroutes: topology still suitable "
                "(converging at " + convergence + ")");

  // --- Analyses (§3.1 operations 3 and 4), run at the gathering server. ---
  core::LocalizationInput input;
  input.p0_original = p0_orig.meas;
  input.p0_inverted = p0_inv.meas;
  input.p1_original = net.report(id_p1_orig, t_sim_orig, duration).meas;
  input.p2_original =
      net.report(id_p2_orig, t_sim_orig + kBackToBackOffset, duration).meas;
  input.p1_inverted = net.report(id_p1_inv, t_sim_inv, duration).meas;
  input.p2_inverted =
      net.report(id_p2_inv, t_sim_inv + kBackToBackOffset, duration).meas;
  input.t_diff_history = cfg.t_diff_history;
  input.base_rtt = std::max(milliseconds(scenario.rtt1_ms),
                            milliseconds(scenario.rtt2_ms));

  Rng analysis_rng(scenario.seed * 2654435761ULL + 9);
  result.localization = core::localize(input, analysis_rng);
  result.finished_at = t_gather;
  if (result.localization.verdict ==
      core::Verdict::EvidenceWithinTargetArea) {
    result.outcome = SessionOutcome::LocalizedWithinIsp;
    log(t_gather,
        result.localization.mechanism ==
                core::Mechanism::PerClientThrottling
            ? "verdict: localized (per-client throttling)"
            : "verdict: localized (collective throttling)");
  } else {
    result.outcome = SessionOutcome::NoEvidence;
    log(t_gather, "verdict: no evidence beyond WeHe's detection");
  }
  return result;
}

}  // namespace wehey::replay
