#include "parallel/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace wehey::parallel {
namespace {

/// Set while a pool worker (or a thread already inside parallel_for) is
/// running chunks; nested parallel_for calls from such threads run the
/// loop serially instead of re-entering the pool.
thread_local bool t_in_parallel_region = false;

unsigned resolve_configured_threads() {
  if (const char* env = std::getenv("WEHEY_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

unsigned configured_threads() {
  static const unsigned threads = resolve_configured_threads();
  return threads;
}

struct ThreadPool::Job {
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  const std::function<void(std::size_t)>* fn = nullptr;
  unsigned max_helpers = 0;            ///< workers allowed on this job
  std::uint64_t submit_ns = 0;         ///< runtime-telemetry submit stamp
  std::atomic<unsigned> joined{0};     ///< workers that picked the job up
  std::mutex error_mu;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = configured_threads();
  const unsigned workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::run_chunks(Job& job) {
  const bool profiled = obs::runtime::enabled();
  // Bracket the whole claim loop: a nested serial fallback inside fn must
  // not re-charge these nanoseconds as busy time.
  obs::runtime::ScopedBusy busy;
  for (;;) {
    const std::size_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) return;
    const std::size_t end = std::min(begin + job.chunk, job.n);
    const std::uint64_t t0 = profiled ? obs::runtime::now_ns() : 0;
    try {
      for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
      job.next.store(job.n, std::memory_order_relaxed);  // drain remaining
      return;
    }
    if (profiled) {
      obs::runtime::note_chunk(obs::runtime::now_ns() - t0, end - begin);
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const bool profiled = obs::runtime::enabled();
      const std::uint64_t t0 = profiled ? obs::runtime::now_ns() : 0;
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (profiled) obs::runtime::note_idle(obs::runtime::now_ns() - t0);
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      if (job->joined.fetch_add(1, std::memory_order_relaxed) >=
          job->max_helpers) {
        continue;  // this job is capped below the full pool width
      }
      ++active_workers_;
    }
    if (obs::runtime::enabled()) {
      // Register before the first chunk so this thread's slot carries the
      // worker kind even when the profiler came up mid-run.
      obs::runtime::register_thread(obs::runtime::ThreadKind::kWorker);
      if (job->submit_ns != 0) {
        obs::runtime::note_submit_to_start(obs::runtime::now_ns() -
                                           job->submit_ns);
      }
    }
    t_in_parallel_region = true;
    run_chunks(*job);
    t_in_parallel_region = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              unsigned max_threads) {
  if (n == 0) return;
  const unsigned width =
      max_threads == 0 ? size() : std::min(max_threads, size());
  if (width <= 1 || n == 1 || workers_.empty() || t_in_parallel_region) {
    if (obs::runtime::enabled()) {
      obs::runtime::ScopedBusy busy;
      const std::uint64_t t0 = obs::runtime::now_ns();
      for (std::size_t i = 0; i < n; ++i) fn(i);
      obs::runtime::note_serial_tasks(n, obs::runtime::now_ns() - t0);
    } else {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    }
    return;
  }

  Job job;
  job.n = n;
  // ~4 chunks per context keeps the tail balanced without hammering the
  // shared cursor when trials are fast.
  job.chunk = std::max<std::size_t>(1, n / (4 * width));
  job.fn = &fn;
  job.max_helpers = width - 1;
  const bool profiled = obs::runtime::enabled();
  if (profiled) {
    obs::runtime::note_job(n);
    job.submit_ns = obs::runtime::now_ns();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();

  t_in_parallel_region = true;
  run_chunks(job);
  t_in_parallel_region = false;

  {
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;
    // Wait until every worker that joined this job has left run_chunks —
    // `job` lives on this stack frame.
    const std::uint64_t t0 = profiled ? obs::runtime::now_ns() : 0;
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    if (profiled) {
      obs::runtime::note_drain_wait(obs::runtime::now_ns() - t0);
    }
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace wehey::parallel
