// Trial supervision: deterministic per-trial resource budgets.
//
// A runaway trial (e.g. a fault-induced retransmit livelock — see the
// `event-storm` chaos plan) would otherwise wedge its worker thread and,
// with it, the whole sweep. The supervisor bounds every trial simulator
// by two pure *sim* quantities — dispatched event count and absolute sim
// time — so a runaway trial terminates with a machine-readable
// `BudgetExhausted` outcome instead of hanging the pool, and the verdict
// is byte-identical across WEHEY_THREADS and host speeds (a wall-clock
// watchdog could never promise that).
//
// Environment knobs (parsed per call, so tests can flip them between
// trials):
//   WEHEY_TRIAL_MAX_EVENTS   dispatched-event ceiling per trial
//                            simulator (default 20'000'000 — ~85x the
//                            busiest committed-grid trial; 0 disables)
//   WEHEY_TRIAL_MAX_SIM_MS   absolute sim-clock ceiling in milliseconds
//                            (default 3'600'000 = one sim hour; the
//                            longest legitimate faulted session horizon
//                            is ~1000 s; 0 disables)
//
// Every trial runner (replay session, scenario phase, wild phase) calls
// install_trial_budget() right after constructing its Simulator; raw
// microbenches and non-trial simulators stay unbudgeted.
#pragma once

#include "netsim/simulator.hpp"

namespace wehey::parallel {

/// The per-trial budget the environment asks for (defaults above).
netsim::TrialBudget trial_budget_from_env();

/// Resolve the environment budget and install it on `sim`.
void install_trial_budget(netsim::Simulator& sim);

}  // namespace wehey::parallel
