// Fixed thread pool with a chunked work queue — the execution engine the
// bench binaries use to sweep ScenarioConfig grids across cores.
//
// Model: one process-wide pool (ThreadPool::global(), sized from the
// WEHEY_THREADS environment variable, default hardware concurrency).
// parallel_for(n, fn) partitions [0, n) into chunks claimed from a shared
// atomic cursor; the calling thread always participates, idle workers
// help. Because every trial writes only its own result slot, output
// ordering is by index — stable and independent of thread count — and
// each trial's determinism comes from its own seeded Rng + Simulator.
//
// Nested calls (a parallel_for issued from inside a worker) degrade to the
// serial path rather than deadlocking, so library code can parallelize
// internally (e.g. the four phases of run_full_experiment) and still be
// called from a parallel grid sweep.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/recorder.hpp"
#include "obs/runtime.hpp"

namespace wehey::parallel {

/// Worker-thread budget resolved from the environment: WEHEY_THREADS if
/// set to a positive integer, else std::thread::hardware_concurrency().
/// WEHEY_THREADS=1 forces the fully serial path (no pool threads touched).
/// Read once and cached — safe to call from any thread afterwards.
unsigned configured_threads();

class ThreadPool {
 public:
  /// A pool with `threads` total execution contexts (including the
  /// caller); spawns threads-1 workers. threads == 0 means
  /// configured_threads().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution contexts (workers + calling thread).
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(i) for every i in [0, n), spread over the pool. Blocks until
  /// all iterations finish. `max_threads` caps the number of contexts used
  /// for this call (0 = all). Exceptions from fn are rethrown (first one
  /// wins) after the loop drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    unsigned max_threads = 0);

  /// The shared process-wide pool, created on first use with
  /// configured_threads() contexts.
  static ThreadPool& global();

 private:
  struct Job;

  void worker_loop();
  static void run_chunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: new job / stop
  std::condition_variable done_cv_;   ///< signals caller: workers drained
  Job* job_ = nullptr;                ///< current broadcast job (or null)
  std::uint64_t generation_ = 0;      ///< bumped per job, wakes workers
  unsigned active_workers_ = 0;
  bool stop_ = false;
};

namespace detail {

/// parallel_map's trial loop: pooled when `threads > 1 && n > 1`, serial
/// bypass otherwise. With runtime telemetry enabled, wraps every trial in
/// wall-time measurement (runtime::note_trial) and counts the serial
/// bypass's iterations too, so trials.count and tasks stay exact across
/// thread counts.
inline void map_loop(std::size_t n,
                     const std::function<void(std::size_t)>& body,
                     unsigned threads) {
  if (!obs::runtime::enabled()) {
    if (threads <= 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
    } else {
      ThreadPool::global().parallel_for(n, body, threads);
    }
    return;
  }
  const std::function<void(std::size_t)> timed = [&](std::size_t i) {
    const std::uint64_t t0 = obs::runtime::now_ns();
    body(i);
    obs::runtime::note_trial(
        static_cast<double>(obs::runtime::now_ns() - t0) / 1e6);
  };
  if (threads <= 1 || n <= 1) {
    obs::runtime::ScopedBusy busy;
    const std::uint64_t t0 = obs::runtime::now_ns();
    for (std::size_t i = 0; i < n; ++i) timed(i);
    obs::runtime::note_serial_tasks(n, obs::runtime::now_ns() - t0);
  } else {
    ThreadPool::global().parallel_for(n, timed, threads);
  }
}

}  // namespace detail

/// Run fn(i) for i in [0, n) on the global pool and collect the results in
/// index order. `threads` == 0 uses the configured default; == 1 runs
/// serially on the calling thread.
///
/// When an obs::Recorder is bound to the calling thread, every trial gets
/// its own child recorder bound around fn(i), and the children are folded
/// back into the parent in index order after the loop — the serial path
/// does exactly the same, so merged metrics and timelines are bit-identical
/// across WEHEY_THREADS settings.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, unsigned threads = 0)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  static_assert(std::is_default_constructible_v<R>,
                "parallel_map results must be default-constructible");
  std::vector<R> results(n);
  if (threads == 0) threads = configured_threads();
  obs::Recorder* parent = obs::Recorder::current();
  if (parent == nullptr) {
    detail::map_loop(
        n, [&](std::size_t i) { results[i] = fn(i); }, threads);
    return results;
  }
  std::vector<obs::Recorder> children;
  children.reserve(n);
  for (std::size_t i = 0; i < n; ++i) children.push_back(parent->child());
  detail::map_loop(
      n,
      [&](std::size_t i) {
        obs::ScopedRecorder bind(&children[i]);
        results[i] = fn(i);
      },
      threads);
  for (std::size_t i = 0; i < n; ++i) {
    parent->absorb(std::move(children[i]), "trial " + std::to_string(i));
  }
  return results;
}

}  // namespace wehey::parallel
