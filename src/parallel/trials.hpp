// run_trials — the typed front door of the parallel engine for experiment
// sweeps: evaluate one function over a span of ScenarioConfigs and return
// the results in config order.
//
// Guarantees:
//  * deterministic per-seed results — each trial builds its own Simulator,
//    Rng and network from its config, and shares no mutable state with its
//    neighbours;
//  * stable output ordering — results[i] always corresponds to configs[i],
//    regardless of thread count or scheduling;
//  * WEHEY_THREADS=1 (or threads=1) takes the plain serial loop, so the
//    parallel engine can be ruled out when bisecting a result change.
//
// The determinism test (tests/test_parallel.cpp) asserts bit-identical
// PhaseReports between WEHEY_THREADS=1 and =8.
#pragma once

#include <span>
#include <type_traits>
#include <vector>

#include "experiments/scenario.hpp"
#include "parallel/thread_pool.hpp"

namespace wehey::parallel {

template <typename Fn>
auto run_trials(std::span<const experiments::ScenarioConfig> configs, Fn&& fn,
                unsigned threads = 0)
    -> std::vector<
        std::invoke_result_t<Fn&, const experiments::ScenarioConfig&>> {
  return parallel_map(
      configs.size(), [&](std::size_t i) { return fn(configs[i]); }, threads);
}

}  // namespace wehey::parallel
