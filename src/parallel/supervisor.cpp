#include "parallel/supervisor.hpp"

#include <cstdint>
#include <cstdlib>

#include "obs/runtime.hpp"

namespace wehey::parallel {
namespace {

constexpr std::uint64_t kDefaultMaxEvents = 20'000'000;
constexpr Time kDefaultMaxSimTime = Time{3'600'000} * kMillisecond;

/// Non-negative integer env var; `fallback` when unset or unparseable.
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == 0) return fallback;
  char* after = nullptr;
  const unsigned long long v = std::strtoull(raw, &after, 10);
  if (after == raw || *after != 0) return fallback;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

netsim::TrialBudget trial_budget_from_env() {
  netsim::TrialBudget budget;
  budget.max_events = env_u64("WEHEY_TRIAL_MAX_EVENTS", kDefaultMaxEvents);
  budget.max_sim_time =
      static_cast<Time>(env_u64(
          "WEHEY_TRIAL_MAX_SIM_MS",
          static_cast<std::uint64_t>(kDefaultMaxSimTime / kMillisecond))) *
      kMillisecond;
  return budget;
}

void install_trial_budget(netsim::Simulator& sim) {
  sim.set_trial_budget(trial_budget_from_env());
  if (obs::runtime::enabled()) obs::runtime::note_trial_supervised();
}

}  // namespace wehey::parallel
