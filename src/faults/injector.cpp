#include "faults/injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wehey::faults {

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed * 0x9e3779b97f4a7c15ULL + 0xFA17ULL) {
  budget_.reserve(plan_.faults.size());
  for (const auto& spec : plan_.faults) budget_.push_back(spec.count);
}

bool FaultInjector::fire(std::size_t i, int path) {
  const auto& spec = plan_.faults[i];
  if (spec.path != 0 && path != 0 && spec.path != path) return false;
  if (budget_[i] == 0) return false;
  // Draw even at probability 1.0 so the consumed stream depends only on
  // the opportunity sequence, not on the plan's probabilities.
  const bool hit = rng_.uniform() < spec.probability;
  if (!hit) return false;
  if (budget_[i] > 0) --budget_[i];
  return true;
}

ReplayFault FaultInjector::on_replay_start(int path) {
  ReplayFault fault;
  if (!enabled()) return fault;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const auto& spec = plan_.faults[i];
    if (spec.kind == FaultKind::ReplayAbort) {
      // First firing abort wins; later abort specs draw no RNG.
      if (fault.abort || !fire(i, path)) continue;
      fault.abort = true;
      fault.at_fraction = spec.at_fraction;
      fault.after_bytes = spec.after_bytes;
      ++stats_.replays_aborted;
    } else if (spec.kind == FaultKind::EventStorm) {
      if (fault.storm || !fire(i, path)) continue;
      fault.storm = true;
      fault.storm_at_fraction = spec.at_fraction;
      fault.storm_interval = spec.storm_interval;
      ++stats_.event_storms;
    }
  }
  return fault;
}

ControlFault FaultInjector::on_control_exchange() {
  ControlFault fault;
  if (!enabled()) return fault;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const auto kind = plan_.faults[i].kind;
    if (kind == FaultKind::ControlDrop && !fault.dropped && fire(i, 0)) {
      fault.dropped = true;
      ++stats_.controls_dropped;
    } else if (kind == FaultKind::ControlDelay && fire(i, 0)) {
      fault.extra_delay += plan_.faults[i].delay;
      ++stats_.controls_delayed;
    }
  }
  return fault;
}

bool FaultInjector::on_topology_lookup() {
  if (!enabled()) return false;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    if (plan_.faults[i].kind != FaultKind::TopologyUnavailable) continue;
    if (fire(i, 0)) {
      ++stats_.topology_unavailable;
      return true;
    }
  }
  return false;
}

bool FaultInjector::on_measurement_upload(int path,
                                          netsim::ReplayMeasurement& m) {
  if (!enabled()) return false;
  bool touched = false;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const auto& spec = plan_.faults[i];
    switch (spec.kind) {
      case FaultKind::MeasurementTruncate:
        if (fire(i, path)) {
          truncate_measurement(m, spec.keep_fraction);
          ++stats_.measurements_truncated;
          touched = true;
        }
        break;
      case FaultKind::MeasurementCorrupt:
        if (fire(i, path)) {
          corrupt_measurement(m, spec.corrupt_fraction, rng_);
          ++stats_.measurements_corrupted;
          touched = true;
        }
        break;
      case FaultKind::ClockSkew:
        if (fire(i, path)) {
          skew_measurement(m, spec.delay);
          ++stats_.clocks_skewed;
          touched = true;
        }
        break;
      default: break;
    }
  }
  return touched;
}

bool FaultInjector::on_traceroute(int path,
                                  topology::TracerouteRecord& record) {
  if (!enabled() || record.hops.empty()) return false;
  bool touched = false;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const auto& spec = plan_.faults[i];
    if (spec.kind == FaultKind::TracerouteDrop) {
      if (!fire(i, path)) continue;
      // An ICMP black hole near the client: the tail of the path stops
      // responding, so the last *responding* hop no longer carries the
      // destination's ASN (filter condition (a)).
      const double frac = std::clamp(spec.hop_fraction, 0.0, 1.0);
      const auto n = record.hops.size();
      auto dropped = static_cast<std::size_t>(
          std::ceil(static_cast<double>(n) * frac));
      dropped = std::clamp<std::size_t>(dropped, 1, n);
      for (std::size_t h = n - dropped; h < n; ++h) {
        record.hops[h].responded = false;
      }
      ++stats_.traceroutes_dropped;
      touched = true;
    } else if (spec.kind == FaultKind::TracerouteGarble) {
      if (!fire(i, path)) continue;
      // One hop answers with a second address across probes (IP
      // aliasing), violating filter condition (b).
      const auto h = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<int>(record.hops.size()) - 1));
      auto& hop = record.hops[h];
      if (!hop.reported_ips.empty()) {
        hop.reported_ips.push_back(hop.reported_ips.front() + "/alias");
      }
      ++stats_.traceroutes_garbled;
      touched = true;
    }
  }
  return touched;
}

void truncate_measurement(netsim::ReplayMeasurement& m,
                          double keep_fraction) {
  keep_fraction = std::clamp(keep_fraction, 0.0, 1.0);
  const Time cut =
      m.start + static_cast<Time>(static_cast<double>(m.duration()) *
                                  keep_fraction);
  auto drop_after = [cut](std::vector<Time>& ts) {
    ts.erase(std::remove_if(ts.begin(), ts.end(),
                            [cut](Time t) { return t > cut; }),
             ts.end());
  };
  drop_after(m.tx_times);
  drop_after(m.loss_times);
  m.deliveries.erase(
      std::remove_if(m.deliveries.begin(), m.deliveries.end(),
                     [cut](const netsim::Delivery& d) { return d.at > cut; }),
      m.deliveries.end());
  // Latency samples arrive in series order: the same prefix survives.
  const auto keep_rtt = static_cast<std::size_t>(
      static_cast<double>(m.rtt_ms.size()) * keep_fraction);
  m.rtt_ms.resize(std::min(m.rtt_ms.size(), keep_rtt));
  m.end = cut;
}

void corrupt_measurement(netsim::ReplayMeasurement& m, double fraction,
                         Rng& rng) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  for (auto& sample : m.rtt_ms) {
    if (rng.uniform() >= fraction) continue;
    switch (rng.uniform_int(0, 2)) {
      case 0: sample = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: sample = std::numeric_limits<double>::infinity(); break;
      default: sample = -sample; break;
    }
  }
  // A slice of event timestamps lands far outside the replay window, as
  // a buggy uploader emitting uninitialized fields would produce.
  const Time far = m.end + 1000 * (m.end - m.start + 1);
  for (auto& t : m.tx_times) {
    if (rng.uniform() < fraction * 0.25) t = far;
  }
  for (auto& d : m.deliveries) {
    if (rng.uniform() < fraction * 0.25) d.at = far;
  }
}

void skew_measurement(netsim::ReplayMeasurement& m, Time skew) {
  m.start += skew;
  m.end += skew;
  for (auto& t : m.tx_times) t += skew;
  for (auto& t : m.loss_times) t += skew;
  for (auto& d : m.deliveries) d.at += skew;
}

}  // namespace wehey::faults
