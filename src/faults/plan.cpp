#include "faults/plan.hpp"

#include "common/check.hpp"

namespace wehey::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::ReplayAbort: return "replay-abort";
    case FaultKind::ControlDrop: return "control-drop";
    case FaultKind::ControlDelay: return "control-delay";
    case FaultKind::MeasurementTruncate: return "measurement-truncate";
    case FaultKind::MeasurementCorrupt: return "measurement-corrupt";
    case FaultKind::ClockSkew: return "clock-skew";
    case FaultKind::TopologyUnavailable: return "topology-unavailable";
    case FaultKind::TracerouteDrop: return "traceroute-drop";
    case FaultKind::TracerouteGarble: return "traceroute-garble";
    case FaultKind::EventStorm: return "event-storm";
  }
  return "?";
}

std::vector<std::string> shipped_plan_names() {
  return {"replay-abort",    "replay-abort-hard", "control-flaky",
          "control-dead",    "truncated-upload",  "corrupt-samples",
          "clock-skew",      "topology-flap",     "traceroute-damage",
          "kitchen-sink",    "event-storm"};
}

FaultPlan shipped_plan(const std::string& name, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.name = name;
  auto add = [&plan](FaultSpec spec) { plan.faults.push_back(spec); };

  if (name == "replay-abort") {
    // Occasional mid-stream server death; retries usually recover.
    FaultSpec s;
    s.kind = FaultKind::ReplayAbort;
    s.probability = 0.4;
    s.at_fraction = 0.5;
    add(s);
  } else if (name == "replay-abort-hard") {
    // Every replay dies early: exercises retry exhaustion and the
    // fallback to a fresh server pair.
    FaultSpec s;
    s.kind = FaultKind::ReplayAbort;
    s.probability = 1.0;
    s.at_fraction = 0.25;
    add(s);
  } else if (name == "control-flaky") {
    // Lossy, slow control plane; bounded retries should always get
    // through eventually.
    FaultSpec drop;
    drop.kind = FaultKind::ControlDrop;
    drop.probability = 0.35;
    add(drop);
    FaultSpec delay;
    delay.kind = FaultKind::ControlDelay;
    delay.probability = 0.5;
    delay.delay = milliseconds(300);
    add(delay);
  } else if (name == "control-dead") {
    // The control plane never answers: the session must give up with a
    // defined outcome instead of hanging or crashing.
    FaultSpec s;
    s.kind = FaultKind::ControlDrop;
    s.probability = 1.0;
    add(s);
  } else if (name == "truncated-upload") {
    // Path 2's uploads lose their tail (interrupted transfer).
    FaultSpec s;
    s.kind = FaultKind::MeasurementTruncate;
    s.path = 2;
    s.keep_fraction = 0.35;
    add(s);
  } else if (name == "corrupt-samples") {
    // Both paths upload partially garbled series.
    FaultSpec s;
    s.kind = FaultKind::MeasurementCorrupt;
    s.corrupt_fraction = 0.2;
    add(s);
  } else if (name == "clock-skew") {
    // Server 2's clock runs seconds ahead of server 1's.
    FaultSpec s;
    s.kind = FaultKind::ClockSkew;
    s.path = 2;
    s.delay = seconds(4);
    add(s);
  } else if (name == "topology-flap") {
    // The first lookups hit a pair that is down; replays also wobble.
    FaultSpec topo;
    topo.kind = FaultKind::TopologyUnavailable;
    topo.count = 2;
    add(topo);
    FaultSpec abort;
    abort.kind = FaultKind::ReplayAbort;
    abort.probability = 0.25;
    add(abort);
  } else if (name == "traceroute-damage") {
    // The gathering-step topology query comes back unusable: path 1's
    // traceroute loses its tail hops (ICMP black hole), path 2's reports
    // an aliased hop. Exercises the §3.3-filter re-check in the session.
    FaultSpec drop;
    drop.kind = FaultKind::TracerouteDrop;
    drop.path = 1;
    drop.hop_fraction = 0.6;
    add(drop);
    FaultSpec garble;
    garble.kind = FaultKind::TracerouteGarble;
    garble.path = 2;
    add(garble);
  } else if (name == "kitchen-sink") {
    // A bit of everything at once, at moderate rates.
    FaultSpec abort;
    abort.kind = FaultKind::ReplayAbort;
    abort.probability = 0.2;
    add(abort);
    FaultSpec drop;
    drop.kind = FaultKind::ControlDrop;
    drop.probability = 0.2;
    add(drop);
    FaultSpec trunc;
    trunc.kind = FaultKind::MeasurementTruncate;
    trunc.path = 2;
    trunc.probability = 0.5;
    trunc.keep_fraction = 0.5;
    add(trunc);
    FaultSpec corrupt;
    corrupt.kind = FaultKind::MeasurementCorrupt;
    corrupt.probability = 0.5;
    corrupt.corrupt_fraction = 0.1;
    add(corrupt);
    FaultSpec skew;
    skew.kind = FaultKind::ClockSkew;
    skew.path = 2;
    skew.probability = 0.5;
    skew.delay = seconds(2);
    add(skew);
    FaultSpec topo;
    topo.kind = FaultKind::TopologyUnavailable;
    topo.count = 1;
    add(topo);
  } else if (name == "event-storm") {
    // A retransmit livelock: path 1's replay wedges into a
    // microsecond-period timer chain that floods the event heap without
    // ever advancing the transfer. Nothing in the protocol terminates
    // it; only the supervisor's per-trial budget does, so this plan must
    // end in a BudgetExhausted outcome, never a hang.
    FaultSpec s;
    s.kind = FaultKind::EventStorm;
    s.path = 1;
    s.probability = 1.0;
    s.at_fraction = 0.1;
    s.storm_interval = microseconds(1);
    add(s);
  } else {
    WEHEY_EXPECTS(!"unknown shipped fault plan name");
  }
  return plan;
}

}  // namespace wehey::faults
