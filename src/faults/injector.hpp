// The FaultInjector interprets a FaultPlan at the pipeline's decision
// points: replay starts, control-plane exchanges, measurement uploads and
// topology lookups. The session coordinator and the scenario/wild phase
// runners consult it; with an empty plan every hook is an inlineable
// no-op, so the robustness layer is zero-cost when off.
//
// Determinism: the injector owns its own Rng seeded from the plan, so
// fault decisions never perturb the simulation's random streams — a
// faulted run and a clean run of the same scenario share every simulated
// packet up to the first injected fault.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "faults/plan.hpp"
#include "netsim/measure.hpp"
#include "topology/traceroute.hpp"

namespace wehey::faults {

/// Decision for one replay start.
struct ReplayFault {
  bool abort = false;
  double at_fraction = 0.5;        ///< where the server dies (fraction)
  std::int64_t after_bytes = -1;   ///< byte offset; >= 0 wins

  /// EventStorm: the replay wedges into a self-perpetuating timer chain
  /// (retransmit livelock) `storm_at_fraction` into the replay, firing
  /// every `storm_interval`. The chain never ends on its own; the
  /// supervisor's per-trial budget is what stops the run.
  bool storm = false;
  double storm_at_fraction = 0.1;
  Time storm_interval = 0;
};

/// Decision for one control-plane exchange.
struct ControlFault {
  bool dropped = false;
  Time extra_delay = 0;
};

/// What the injector did so far (for session results and the bench).
struct InjectionStats {
  int replays_aborted = 0;
  int controls_dropped = 0;
  int controls_delayed = 0;
  int measurements_truncated = 0;
  int measurements_corrupted = 0;
  int clocks_skewed = 0;
  int topology_unavailable = 0;
  int traceroutes_dropped = 0;
  int traceroutes_garbled = 0;
  int event_storms = 0;

  int total() const {
    return replays_aborted + controls_dropped + controls_delayed +
           measurements_truncated + measurements_corrupted + clocks_skewed +
           topology_unavailable + traceroutes_dropped + traceroutes_garbled +
           event_storms;
  }

  /// Field-by-field accumulation (per-phase stats into a run total).
  InjectionStats& operator+=(const InjectionStats& o) {
    replays_aborted += o.replays_aborted;
    controls_dropped += o.controls_dropped;
    controls_delayed += o.controls_delayed;
    measurements_truncated += o.measurements_truncated;
    measurements_corrupted += o.measurements_corrupted;
    clocks_skewed += o.clocks_skewed;
    topology_unavailable += o.topology_unavailable;
    traceroutes_dropped += o.traceroutes_dropped;
    traceroutes_garbled += o.traceroutes_garbled;
    event_storms += o.event_storms;
    return *this;
  }

  /// Stable name -> count view for report writers (every kind listed,
  /// zeros included, in declaration order).
  std::vector<std::pair<const char*, int>> by_kind() const {
    return {{"replays_aborted", replays_aborted},
            {"controls_dropped", controls_dropped},
            {"controls_delayed", controls_delayed},
            {"measurements_truncated", measurements_truncated},
            {"measurements_corrupted", measurements_corrupted},
            {"clocks_skewed", clocks_skewed},
            {"topology_unavailable", topology_unavailable},
            {"traceroutes_dropped", traceroutes_dropped},
            {"traceroutes_garbled", traceroutes_garbled},
            {"event_storms", event_storms}};
  }
};

class FaultInjector {
 public:
  /// Disabled injector: every hook reports "no fault".
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan);

  bool enabled() const { return !plan_.faults.empty(); }
  const FaultPlan& plan() const { return plan_; }

  /// Consulted when a replay is about to start on `path`.
  ReplayFault on_replay_start(int path);

  /// Consulted per control-plane exchange attempt.
  ControlFault on_control_exchange();

  /// Consulted per topology-database lookup; true = the returned pair is
  /// transiently unavailable and the lookup must be retried.
  bool on_topology_lookup();

  /// Applies truncate/corrupt/skew faults for `path` to the uploaded
  /// measurement in place. Returns true if anything was modified.
  bool on_measurement_upload(int path, netsim::ReplayMeasurement& m);

  /// Consulted per traceroute issued during the gathering step's topology
  /// query. Damages `record` in place — TracerouteDrop marks tail hops
  /// unresponsive (ICMP black hole), TracerouteGarble makes a hop report
  /// a second IP (alias) — so the record fails the §3.3 filter conditions
  /// downstream. Returns true if the record was modified.
  bool on_traceroute(int path, topology::TracerouteRecord& record);

  const InjectionStats& stats() const { return stats_; }

 private:
  /// Probability + remaining-count bookkeeping for spec `i`.
  bool fire(std::size_t i, int path);

  FaultPlan plan_;
  std::vector<int> budget_;  ///< per-spec remaining fires; -1 = unlimited
  Rng rng_;
  InjectionStats stats_;
};

// Measurement mutations, exposed for tests and for applying fault plans
// to offline measurement bundles.

/// Cut the uploaded series: only [start, start + keep_fraction * duration)
/// survives; end is moved to the cut (the gatherer knows only that much
/// arrived).
void truncate_measurement(netsim::ReplayMeasurement& m, double keep_fraction);

/// Garble ~`fraction` of the latency samples (non-finite or negative
/// values) and displace some event timestamps outside the replay window.
void corrupt_measurement(netsim::ReplayMeasurement& m, double fraction,
                         Rng& rng);

/// Offset every timestamp by `skew` (a server clock disagreement).
void skew_measurement(netsim::ReplayMeasurement& m, Time skew);

}  // namespace wehey::faults
