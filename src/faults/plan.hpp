// Deterministic fault injection for the WeHeY measurement pipeline.
//
// A FaultPlan is a seeded, declarative list of the operational failure
// modes documented for deployed Wehe-style tooling: replays that abort
// mid-stream, control-plane messages that are lost or delayed, measurement
// uploads that arrive truncated or corrupted, server clocks that disagree,
// and topology-database server pairs that are transiently unavailable.
//
// The plan is pure data; the FaultInjector (injector.hpp) interprets it at
// the pipeline's decision points. Everything is deterministic in
// (plan.seed, call sequence), so a chaos run is exactly reproducible and a
// robustness regression bisects like a performance one. An empty plan is
// the disabled state and costs nothing on the hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace wehey::faults {

enum class FaultKind {
  ReplayAbort,          ///< the server process dies mid-replay
  ControlDrop,          ///< a control-plane exchange is lost
  ControlDelay,         ///< a control-plane exchange is delayed
  MeasurementTruncate,  ///< a path's uploaded series is cut short
  MeasurementCorrupt,   ///< a path's uploaded samples are garbled
  ClockSkew,            ///< one server's timestamps are offset
  TopologyUnavailable,  ///< the topology DB's pair is transiently down
  TracerouteDrop,       ///< hops in the topology query stop responding
  TracerouteGarble,     ///< a hop reports aliased (multiple) IPs
  EventStorm,           ///< a replay wedges into a retransmit livelock
};

const char* to_string(FaultKind kind);

/// One configured fault. Fields are interpreted per kind; unrelated
/// fields are ignored.
struct FaultSpec {
  FaultKind kind = FaultKind::ReplayAbort;

  /// Which path's replays/uploads the fault targets (1 or 2); 0 = any.
  int path = 0;

  /// Chance the fault fires at each opportunity (replay start, control
  /// exchange, upload, lookup). 1.0 = always.
  double probability = 1.0;

  /// How many times this fault may fire in total; -1 = unlimited.
  int count = -1;

  /// ReplayAbort: the server dies this far into the replay, as a fraction
  /// of the replay duration.
  double at_fraction = 0.5;
  /// ReplayAbort: byte offset of the abort; >= 0 overrides at_fraction.
  std::int64_t after_bytes = -1;

  /// ControlDelay: extra one-way latency. ClockSkew: the clock offset.
  Time delay = milliseconds(400);

  /// MeasurementTruncate: fraction of the series that survives the upload.
  double keep_fraction = 0.4;

  /// MeasurementCorrupt: fraction of samples garbled.
  double corrupt_fraction = 0.15;

  /// TracerouteDrop: fraction of a record's hops that stop responding
  /// (at least one hop, drawn from the tail of the path where the §3.3
  /// filters bite). TracerouteGarble ignores it (one hop per fire).
  double hop_fraction = 0.4;

  /// EventStorm: period of the livelocked timer chain. The storm starts
  /// `at_fraction` into the replay and never terminates on its own —
  /// only the supervisor's per-trial budget ends the run.
  Time storm_interval = microseconds(1);
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::string name;  ///< for logs and the robustness bench
  std::vector<FaultSpec> faults;

  bool enabled() const { return !faults.empty(); }
};

/// Names of the shipped chaos plans, in a stable order. Every name is
/// accepted by shipped_plan(); the chaos test suite and bench_robustness
/// sweep all of them.
std::vector<std::string> shipped_plan_names();

/// Build a shipped plan by name (aborts on unknown names: passing one is
/// a programming error; the set is compiled in).
FaultPlan shipped_plan(const std::string& name, std::uint64_t seed);

}  // namespace wehey::faults
