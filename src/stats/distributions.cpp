#include "stats/distributions.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace wehey::stats {
namespace {

constexpr double kSqrt2 = 1.41421356237309504880;

// Continued-fraction part of the incomplete beta function (Numerical
// Recipes-style modified Lentz algorithm).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double normal_cdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double normal_sf(double x) { return 0.5 * std::erfc(x / kSqrt2); }

double normal_quantile(double p) {
  WEHEY_EXPECTS(p > 0.0 && p < 1.0);
  // Peter Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > p_high) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double incomplete_beta(double a, double b, double x) {
  WEHEY_EXPECTS(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta =
      std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front =
      std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  // Use the continued fraction directly when it converges fast, i.e. when
  // x < (a+1)/(a+b+2); otherwise use the symmetry relation.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  WEHEY_EXPECTS(df > 0.0);
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = df / (df + t * t);
  const double tail = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double student_t_two_sided_p(double t, double df) {
  const double x = df / (df + t * t);
  return incomplete_beta(df / 2.0, 0.5, x);
}

double kolmogorov_sf(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 101; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12 * std::fabs(sum) || term == 0.0) break;
    sign = -sign;
  }
  const double p = 2.0 * sum;
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

}  // namespace wehey::stats
