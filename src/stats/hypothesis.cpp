#include "stats/hypothesis.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/ranks.hpp"

namespace wehey::stats {

TestResult mann_whitney_u(std::span<const double> xs,
                          std::span<const double> ys, Alternative alt) {
  TestResult res;
  const double n1 = static_cast<double>(xs.size());
  const double n2 = static_cast<double>(ys.size());
  if (xs.empty() || ys.empty()) return res;

  std::vector<double> pooled;
  pooled.reserve(xs.size() + ys.size());
  pooled.insert(pooled.end(), xs.begin(), xs.end());
  pooled.insert(pooled.end(), ys.begin(), ys.end());
  const auto r = ranks(pooled);

  double rank_sum1 = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) rank_sum1 += r[i];
  const double u1 = rank_sum1 - n1 * (n1 + 1.0) / 2.0;

  const double n = n1 + n2;
  const double tie_term = tie_correction_term(pooled);
  const double mu = n1 * n2 / 2.0;
  const double sigma2 =
      n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (sigma2 <= 0.0) {
    // All pooled values identical: no evidence either way.
    res.statistic = u1;
    res.p_value = 1.0;
    res.valid = true;
    return res;
  }
  const double sigma = std::sqrt(sigma2);

  res.statistic = u1;
  res.valid = true;
  // Continuity-corrected z, direction depending on the alternative.
  switch (alt) {
    case Alternative::Greater: {
      const double z = (u1 - mu - 0.5) / sigma;
      res.p_value = normal_sf(z);
      break;
    }
    case Alternative::Less: {
      const double z = (u1 - mu + 0.5) / sigma;
      res.p_value = normal_cdf(z);
      break;
    }
    case Alternative::TwoSided: {
      const double z = (std::fabs(u1 - mu) - 0.5) / sigma;
      res.p_value = std::min(1.0, 2.0 * normal_sf(z));
      break;
    }
  }
  return res;
}

TestResult ks_two_sample(std::span<const double> xs,
                         std::span<const double> ys) {
  TestResult res;
  if (xs.empty() || ys.empty()) return res;
  std::vector<double> a(xs.begin(), xs.end());
  std::vector<double> b(ys.begin(), ys.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    const double f1 = static_cast<double>(i) / n1;
    const double f2 = static_cast<double>(j) / n2;
    d = std::max(d, std::fabs(f1 - f2));
  }

  const double ne = n1 * n2 / (n1 + n2);
  const double sqrt_ne = std::sqrt(ne);
  const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  res.statistic = d;
  res.p_value = kolmogorov_sf(lambda);
  res.valid = true;
  return res;
}

TestResult welch_t(std::span<const double> xs, std::span<const double> ys,
                   Alternative alt) {
  TestResult res;
  if (xs.size() < 2 || ys.size() < 2) return res;
  const double m1 = mean(xs), m2 = mean(ys);
  const double v1 = variance(xs), v2 = variance(ys);
  const double n1 = static_cast<double>(xs.size());
  const double n2 = static_cast<double>(ys.size());
  const double se2 = v1 / n1 + v2 / n2;
  if (se2 <= 0.0) {
    res.statistic = 0.0;
    res.p_value = m1 == m2 ? 1.0 : 0.0;
    res.valid = true;
    return res;
  }
  const double t = (m1 - m2) / std::sqrt(se2);
  const double df = se2 * se2 /
                    (v1 * v1 / (n1 * n1 * (n1 - 1.0)) +
                     v2 * v2 / (n2 * n2 * (n2 - 1.0)));
  res.statistic = t;
  res.valid = true;
  switch (alt) {
    case Alternative::TwoSided: res.p_value = student_t_two_sided_p(t, df); break;
    case Alternative::Greater: res.p_value = 1.0 - student_t_cdf(t, df); break;
    case Alternative::Less: res.p_value = student_t_cdf(t, df); break;
  }
  return res;
}

}  // namespace wehey::stats
