// Probability distributions needed by the hypothesis tests: the standard
// normal, Student's t (via the regularized incomplete beta function), and
// the Kolmogorov distribution used for KS-test p-values.
#pragma once

namespace wehey::stats {

/// Standard normal CDF Phi(x).
double normal_cdf(double x);
/// Standard normal survival function 1 - Phi(x), computed without
/// cancellation for large x.
double normal_sf(double x);
/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9).
double normal_quantile(double p);

/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// evaluation (Lentz's method).
double incomplete_beta(double a, double b, double x);

/// Student's t CDF with `df` degrees of freedom.
double student_t_cdf(double t, double df);
/// Two-sided p-value for a t statistic.
double student_t_two_sided_p(double t, double df);

/// Kolmogorov distribution survival function
/// Q(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
double kolmogorov_sf(double lambda);

}  // namespace wehey::stats
