// Rank transforms with midrank tie handling — shared by the Spearman and
// Mann-Whitney tests.
#pragma once

#include <span>
#include <vector>

namespace wehey::stats {

/// Ranks (1-based) of each element, ties receiving the average of the ranks
/// they span (midranks), as in scipy.stats.rankdata(method="average").
std::vector<double> ranks(std::span<const double> xs);

/// Sum over tie groups of (t^3 - t), where t is the size of each group.
/// Used in tie corrections for rank tests.
double tie_correction_term(std::span<const double> xs);

}  // namespace wehey::stats
