// Empirical distributions: sorted-sample CDF/quantile/sampling, fixed-bin
// histograms, and a Gaussian kernel density estimate (used to render the
// Figure-2 style PDF curves of O_diff and T_diff).
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"

namespace wehey::stats {

/// Immutable empirical distribution built from a sample.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  std::span<const double> samples() const { return sorted_; }

  /// Empirical CDF F(x) = fraction of samples <= x.
  double cdf(double x) const;
  /// Linear-interpolation quantile, q in [0,1].
  double quantile(double q) const;
  double mean() const { return mean_; }
  double stddev() const;

  /// Draw one sample uniformly from the stored values (bootstrap draw).
  double sample(Rng& rng) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<double> counts;     ///< per-bin counts
  std::vector<double> densities;  ///< counts normalized to integrate to 1

  double bin_width() const {
    return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
  }
  double bin_center(std::size_t i) const {
    return lo + (static_cast<double>(i) + 0.5) * bin_width();
  }
};

Histogram histogram(std::span<const double> xs, std::size_t bins);
Histogram histogram(std::span<const double> xs, std::size_t bins, double lo,
                    double hi);

/// Gaussian KDE evaluated on an evenly spaced grid. `bandwidth <= 0` selects
/// Silverman's rule of thumb.
struct KdeCurve {
  std::vector<double> xs;
  std::vector<double> densities;
};

KdeCurve kde(std::span<const double> samples, std::size_t grid_points = 128,
             double bandwidth = 0.0);

}  // namespace wehey::stats
