#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/ranks.hpp"

namespace wehey::stats {
namespace {

double p_from_t(double t, double df, Alternative alt) {
  switch (alt) {
    case Alternative::TwoSided: return student_t_two_sided_p(t, df);
    case Alternative::Greater: return 1.0 - student_t_cdf(t, df);
    case Alternative::Less: return student_t_cdf(t, df);
  }
  return 1.0;
}

CorrelationResult correlate(std::span<const double> xs,
                            std::span<const double> ys, Alternative alt) {
  CorrelationResult res;
  const std::size_t n = xs.size();
  if (n < 3) return res;

  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return res;  // constant series: undefined

  double r = sxy / std::sqrt(sxx * syy);
  // Clamp tiny numeric excursions outside [-1, 1].
  if (r > 1.0) r = 1.0;
  if (r < -1.0) r = -1.0;

  res.coefficient = r;
  res.valid = true;
  const double df = static_cast<double>(n - 2);
  if (std::fabs(r) == 1.0) {
    // Perfect correlation: the t statistic diverges.
    const bool positive = r > 0.0;
    switch (alt) {
      case Alternative::TwoSided: res.p_value = 0.0; break;
      case Alternative::Greater: res.p_value = positive ? 0.0 : 1.0; break;
      case Alternative::Less: res.p_value = positive ? 1.0 : 0.0; break;
    }
    return res;
  }
  const double t = r * std::sqrt(df / (1.0 - r * r));
  res.p_value = p_from_t(t, df, alt);
  return res;
}

}  // namespace

CorrelationResult pearson(std::span<const double> xs,
                          std::span<const double> ys, Alternative alt) {
  WEHEY_EXPECTS(xs.size() == ys.size());
  return correlate(xs, ys, alt);
}

CorrelationResult spearman(std::span<const double> xs,
                           std::span<const double> ys, Alternative alt) {
  WEHEY_EXPECTS(xs.size() == ys.size());
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return correlate(rx, ry, alt);
}

CorrelationResult kendall(std::span<const double> xs,
                          std::span<const double> ys, Alternative alt) {
  WEHEY_EXPECTS(xs.size() == ys.size());
  CorrelationResult res;
  const std::size_t n = xs.size();
  if (n < 3) return res;

  std::int64_t concordant = 0, discordant = 0;
  std::int64_t ties_x = 0, ties_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      // tau-b: pairs tied in x count toward T_x, tied in y toward T_y
      // (a pair tied in both counts toward both); only pairs untied in
      // both are concordant or discordant.
      if (dx == 0.0) ++ties_x;
      if (dy == 0.0) ++ties_y;
      if (dx == 0.0 || dy == 0.0) continue;
      if ((dx > 0) == (dy > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(n) * (n - 1) / 2.0;
  const double denom = std::sqrt((n0 - ties_x) * (n0 - ties_y));
  if (denom <= 0.0) return res;  // a constant series

  double tau = static_cast<double>(concordant - discordant) / denom;
  tau = std::clamp(tau, -1.0, 1.0);
  res.coefficient = tau;
  res.valid = true;

  // Normal approximation under H0 (no ties term beyond tau-b's
  // normalization; adequate for n >= ~10, which Alg. 1's series satisfy).
  const double var =
      (2.0 * (2.0 * n + 5.0)) / (9.0 * n * (n - 1.0));
  const double z = tau / std::sqrt(var);
  switch (alt) {
    case Alternative::TwoSided:
      res.p_value = std::min(1.0, 2.0 * normal_sf(std::fabs(z)));
      break;
    case Alternative::Greater: res.p_value = normal_sf(z); break;
    case Alternative::Less: res.p_value = normal_cdf(z); break;
  }
  return res;
}

CorrelationResult spearman_permutation(std::span<const double> xs,
                                       std::span<const double> ys, Rng& rng,
                                       std::size_t iterations,
                                       Alternative alt) {
  WEHEY_EXPECTS(xs.size() == ys.size());
  WEHEY_EXPECTS(iterations > 0);
  CorrelationResult res = spearman(xs, ys, alt);
  if (!res.valid) return res;
  const double observed = res.coefficient;

  const auto rx = ranks(xs);
  auto ry = ranks(ys);
  std::size_t at_least_as_extreme = 0;
  for (std::size_t it = 0; it < iterations; ++it) {
    // Fisher-Yates shuffle of the y-ranks.
    for (std::size_t i = ry.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(ry[i - 1], ry[j]);
    }
    const auto perm = pearson(rx, ry, Alternative::TwoSided);
    if (!perm.valid) continue;
    switch (alt) {
      case Alternative::TwoSided:
        at_least_as_extreme +=
            std::fabs(perm.coefficient) >= std::fabs(observed);
        break;
      case Alternative::Greater:
        at_least_as_extreme += perm.coefficient >= observed;
        break;
      case Alternative::Less:
        at_least_as_extreme += perm.coefficient <= observed;
        break;
    }
  }
  // Add-one smoothing keeps the estimate strictly positive (the observed
  // arrangement is itself one permutation).
  res.p_value = (static_cast<double>(at_least_as_extreme) + 1.0) /
                (static_cast<double>(iterations) + 1.0);
  return res;
}

}  // namespace wehey::stats
