// Correlation tests. The loss-trend correlation algorithm (Alg. 1 in the
// paper) uses Spearman's rank correlation because it captures trend rather
// than absolute-value similarity and is robust to outliers.
#pragma once

#include <cstddef>
#include <span>

#include "common/rng.hpp"

namespace wehey::stats {

enum class Alternative { TwoSided, Greater, Less };

struct CorrelationResult {
  double coefficient = 0.0;  ///< rho (Spearman) or r (Pearson)
  double p_value = 1.0;      ///< under H0: no correlation
  bool valid = false;        ///< false when the test is degenerate (n < 3 or
                             ///< a constant series)
};

/// Pearson product-moment correlation with a t-distribution p-value.
CorrelationResult pearson(std::span<const double> xs,
                          std::span<const double> ys,
                          Alternative alt = Alternative::TwoSided);

/// Spearman rank correlation: Pearson correlation of the midranks, with the
/// standard t-approximation p-value (as scipy.stats.spearmanr).
CorrelationResult spearman(std::span<const double> xs,
                           std::span<const double> ys,
                           Alternative alt = Alternative::TwoSided);

/// Kendall's tau-b (tie-corrected) with the normal-approximation p-value.
/// O(n^2); fine for the series lengths WeHeY produces.
CorrelationResult kendall(std::span<const double> xs,
                          std::span<const double> ys,
                          Alternative alt = Alternative::TwoSided);

/// Monte-Carlo permutation p-value for Spearman's rho: the fraction of
/// label permutations with a coefficient at least as extreme. Exact in the
/// limit of iterations; preferable to the t-approximation for short series
/// (the coarsest interval sizes of Alg. 1).
CorrelationResult spearman_permutation(std::span<const double> xs,
                                       std::span<const double> ys, Rng& rng,
                                       std::size_t iterations = 2000,
                                       Alternative alt = Alternative::TwoSided);

}  // namespace wehey::stats
