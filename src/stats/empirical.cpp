#include "stats/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "stats/descriptive.hpp"

namespace wehey::stats {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = stats::mean(sorted_);
}

double EmpiricalDistribution::cdf(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::quantile(double q) const {
  WEHEY_EXPECTS(!sorted_.empty());
  WEHEY_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double EmpiricalDistribution::stddev() const { return stats::stddev(sorted_); }

double EmpiricalDistribution::sample(Rng& rng) const {
  WEHEY_EXPECTS(!sorted_.empty());
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(sorted_.size()) - 1));
  return sorted_[i];
}

Histogram histogram(std::span<const double> xs, std::size_t bins) {
  WEHEY_EXPECTS(!xs.empty());
  return histogram(xs, bins, min(xs), max(xs));
}

Histogram histogram(std::span<const double> xs, std::size_t bins, double lo,
                    double hi) {
  WEHEY_EXPECTS(bins > 0);
  WEHEY_EXPECTS(hi >= lo);
  Histogram h;
  h.lo = lo;
  h.hi = hi == lo ? lo + 1.0 : hi;  // degenerate range: one wide bin
  h.counts.assign(bins, 0.0);
  const double width = (h.hi - h.lo) / static_cast<double>(bins);
  for (double x : xs) {
    if (x < h.lo || x > h.hi) continue;
    auto idx = static_cast<std::size_t>((x - h.lo) / width);
    if (idx >= bins) idx = bins - 1;  // x == hi lands in the last bin
    h.counts[idx] += 1.0;
  }
  h.densities.resize(bins);
  const double total = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < bins; ++i) {
    h.densities[i] = total > 0.0 ? h.counts[i] / (total * width) : 0.0;
  }
  return h;
}

KdeCurve kde(std::span<const double> samples, std::size_t grid_points,
             double bandwidth) {
  KdeCurve curve;
  if (samples.empty() || grid_points < 2) return curve;
  const double sd = stddev(samples);
  const double n = static_cast<double>(samples.size());
  double h = bandwidth;
  if (h <= 0.0) {
    // Silverman's rule; fall back to a small constant for constant samples.
    h = sd > 0.0 ? 1.06 * sd * std::pow(n, -0.2) : 1e-3;
  }
  const double lo = min(samples) - 3.0 * h;
  const double hi = max(samples) + 3.0 * h;
  const double step = (hi - lo) / static_cast<double>(grid_points - 1);
  curve.xs.resize(grid_points);
  curve.densities.resize(grid_points);
  const double norm = 1.0 / (n * h * std::sqrt(2.0 * 3.14159265358979323846));
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double x = lo + static_cast<double>(i) * step;
    double density = 0.0;
    for (double s : samples) {
      const double z = (x - s) / h;
      density += std::exp(-0.5 * z * z);
    }
    curve.xs[i] = x;
    curve.densities[i] = density * norm;
  }
  return curve;
}

}  // namespace wehey::stats
