// Descriptive statistics over samples held in std::vector<double> /
// std::span<const double>. All functions treat the input as an unordered
// sample; functions that need sorted data sort a copy.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wehey::stats {

double mean(std::span<const double> xs);
/// Unbiased (n-1) sample variance; 0 for fewer than two samples.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double min(std::span<const double> xs);
double max(std::span<const double> xs);
double median(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0,1] (same convention as
/// numpy.quantile's default).
double quantile(std::span<const double> xs, double q);

/// Five-number summary plus mean — handy for the Figure-5 style boxplots.
struct Summary {
  std::size_t n = 0;
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace wehey::stats
