#include "stats/ranks.hpp"

#include <algorithm>
#include <numeric>

namespace wehey::stats {

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Elements order[i..j] are tied; assign the midrank.
    const double midrank = (static_cast<double>(i + 1) +
                            static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = midrank;
    i = j + 1;
  }
  return out;
}

double tie_correction_term(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  std::size_t i = 0;
  const std::size_t n = sorted.size();
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && sorted[j + 1] == sorted[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    sum += t * t * t - t;
    i = j + 1;
  }
  return sum;
}

}  // namespace wehey::stats
