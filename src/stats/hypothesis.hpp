// Two-sample location / distribution tests:
//   - Mann-Whitney U (Wilcoxon rank-sum) — used by the throughput-comparison
//     algorithm (§4.1) with the one-sided alternative "sample 1 has smaller
//     rank sum".
//   - Two-sample Kolmogorov-Smirnov — used by the WeHe detector to compare
//     throughput CDFs of the original vs bit-inverted replay.
#pragma once

#include <span>

#include "stats/correlation.hpp"  // Alternative

namespace wehey::stats {

struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;
  bool valid = false;
};

/// Mann-Whitney U test with midrank tie correction and continuity
/// correction, normal approximation (appropriate for the sample sizes WeHeY
/// uses, which are in the hundreds). `alt` refers to sample 1 relative to
/// sample 2 (Less: values in xs tend to be smaller than in ys).
TestResult mann_whitney_u(std::span<const double> xs,
                          std::span<const double> ys,
                          Alternative alt = Alternative::TwoSided);

/// Two-sample Kolmogorov-Smirnov test; statistic is the sup-distance D
/// between the two empirical CDFs, p-value from the asymptotic Kolmogorov
/// distribution with the small-sample correction of Stephens.
TestResult ks_two_sample(std::span<const double> xs,
                         std::span<const double> ys);

/// Welch's unequal-variance t-test (kept for the §4.1 ablation: the paper
/// explains why it is *not* used).
TestResult welch_t(std::span<const double> xs, std::span<const double> ys,
                   Alternative alt = Alternative::TwoSided);

}  // namespace wehey::stats
