#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace wehey::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  WEHEY_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  WEHEY_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  WEHEY_EXPECTS(!xs.empty());
  WEHEY_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = min(xs);
  s.q1 = quantile(xs, 0.25);
  s.median = quantile(xs, 0.5);
  s.q3 = quantile(xs, 0.75);
  s.max = max(xs);
  s.mean = mean(xs);
  return s;
}

}  // namespace wehey::stats
