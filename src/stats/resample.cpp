#include "stats/resample.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "stats/descriptive.hpp"

namespace wehey::stats {

std::vector<double> random_half(std::span<const double> xs, Rng& rng) {
  std::vector<double> pool(xs.begin(), xs.end());
  const std::size_t take = pool.size() / 2;
  // Partial Fisher-Yates: after i swaps, pool[0..i) is a uniform sample.
  for (std::size_t i = 0; i < take; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(take);
  return pool;
}

std::vector<double> bootstrap(
    std::span<const double> xs, std::size_t iterations,
    const std::function<double(std::span<const double>)>& statistic,
    Rng& rng) {
  WEHEY_EXPECTS(!xs.empty());
  std::vector<double> out;
  out.reserve(iterations);
  std::vector<double> resample(xs.size());
  for (std::size_t it = 0; it < iterations; ++it) {
    for (auto& v : resample) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1));
      v = xs[i];
    }
    out.push_back(statistic(resample));
  }
  return out;
}

double relative_mean_difference(std::span<const double> a,
                                std::span<const double> b) {
  const double ma = mean(a);
  const double mb = mean(b);
  const double denom = std::max(ma, mb);
  if (denom == 0.0) return 0.0;
  return (ma - mb) / denom;
}

std::vector<double> half_sample_mean_difference(std::span<const double> xs,
                                                std::span<const double> ys,
                                                std::size_t iterations,
                                                Rng& rng) {
  WEHEY_EXPECTS(xs.size() >= 2 && ys.size() >= 2);
  std::vector<double> out;
  out.reserve(iterations);
  for (std::size_t it = 0; it < iterations; ++it) {
    const auto xh = random_half(xs, rng);
    const auto yh = random_half(ys, rng);
    out.push_back(relative_mean_difference(xh, yh));
  }
  return out;
}

std::vector<double> jackknife(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic) {
  WEHEY_EXPECTS(xs.size() >= 2);
  std::vector<double> out;
  out.reserve(xs.size());
  std::vector<double> rest(xs.size() - 1);
  for (std::size_t leave = 0; leave < xs.size(); ++leave) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i != leave) rest[w++] = xs[i];
    }
    out.push_back(statistic(rest));
  }
  return out;
}

double jackknife_stderr(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic) {
  const auto reps = jackknife(xs, statistic);
  const double n = static_cast<double>(reps.size());
  const double m = mean(reps);
  double ss = 0.0;
  for (double r : reps) ss += (r - m) * (r - m);
  return std::sqrt((n - 1.0) / n * ss);
}

Interval wilson_interval(std::size_t successes, std::size_t trials,
                         double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

}  // namespace wehey::stats
