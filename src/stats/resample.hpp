// Resampling utilities: the Monte-Carlo half-sampling used to build O_diff
// in the throughput-comparison algorithm (§4.1), plus a generic bootstrap.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace wehey::stats {

/// A uniformly random subset of floor(xs.size()/2) elements of xs (sampling
/// without replacement; partial Fisher-Yates).
std::vector<double> random_half(std::span<const double> xs, Rng& rng);

/// Bootstrap: `iterations` draws of a statistic over with-replacement
/// resamples of xs.
std::vector<double> bootstrap(
    std::span<const double> xs, std::size_t iterations,
    const std::function<double(std::span<const double>)>& statistic,
    Rng& rng);

/// The relative mean difference used throughout §4.1:
/// (mean(a) - mean(b)) / max(mean(a), mean(b)); 0 when both means are 0.
double relative_mean_difference(std::span<const double> a,
                                std::span<const double> b);

/// Monte-Carlo distribution of the relative mean difference between random
/// halves of X and Y (the O_diff construction of §4.1).
std::vector<double> half_sample_mean_difference(std::span<const double> xs,
                                                std::span<const double> ys,
                                                std::size_t iterations,
                                                Rng& rng);

/// Jackknife (leave-one-out) replicates of a statistic — the classic
/// bias/variance mitigation §3.4's footnote points to (as in NetPolice and
/// WeHe's own analyses). Returns one value per left-out sample.
std::vector<double> jackknife(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic);

/// Jackknife standard-error estimate of the statistic.
double jackknife_stderr(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic);

/// Wilson score interval for a binomial proportion (successes/trials) at
/// confidence z (1.96 = 95%). Well-behaved for the small trial counts the
/// FAST bench grids produce.
struct Interval {
  double low = 0.0;
  double high = 1.0;
};
Interval wilson_interval(std::size_t successes, std::size_t trials,
                         double z = 1.96);

}  // namespace wehey::stats
