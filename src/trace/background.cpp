#include "trace/background.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace wehey::trace {

std::vector<BackgroundFlow> generate_background(const BackgroundConfig& cfg,
                                                Rng& rng) {
  WEHEY_EXPECTS(cfg.flows_per_second > 0.0);
  WEHEY_EXPECTS(cfg.duration > 0);

  // Choose the mean flow size so that arrival_rate * mean_size * 8 equals
  // the target rate. The mixture is log-normal (body) + Pareto (tail); we
  // first compute the unscaled mixture mean, then scale sizes.
  const double target_mean_bytes =
      cfg.target_rate / 8.0 / cfg.flows_per_second;

  // Unscaled components: log-normal with median ~20 KB, sigma 1.2;
  // Pareto tail starting at 200 KB.
  const double ln_mu = std::log(20e3);
  const double ln_sigma = 1.2;
  const double ln_mean = std::exp(ln_mu + ln_sigma * ln_sigma / 2.0);
  const double pareto_scale = 200e3;
  const double pareto_mean =
      cfg.pareto_shape > 1.0
          ? pareto_scale * cfg.pareto_shape / (cfg.pareto_shape - 1.0)
          : pareto_scale * 10.0;  // truncated-mean stand-in for alpha<=1
  const double mixture_mean = (1.0 - cfg.pareto_tail_prob) * ln_mean +
                              cfg.pareto_tail_prob * pareto_mean;
  const double scale = target_mean_bytes / mixture_mean;

  // Two-layer piecewise-constant arrival-intensity modulation (a fast
  // layer at the configured period and a slow layer at 4x that period),
  // approximating the multi-timescale burstiness of long-range-dependent
  // backbone traffic. Each layer is lognormal with sigma/sqrt(2) so the
  // product has the configured overall sigma; normalization keeps the
  // long-run mean intensity at flows_per_second.
  std::vector<double> fast_layer, slow_layer;
  if (cfg.modulation_sigma > 0.0 && cfg.modulation_period > 0) {
    const double layer_sigma = cfg.modulation_sigma / std::sqrt(2.0);
    const double mean_factor =
        std::exp(layer_sigma * layer_sigma / 2.0);
    const auto fast_n = static_cast<std::size_t>(
        cfg.duration / cfg.modulation_period + 1);
    const auto slow_n = static_cast<std::size_t>(
        cfg.duration / (4 * cfg.modulation_period) + 1);
    for (std::size_t i = 0; i < fast_n; ++i) {
      fast_layer.push_back(
          std::min(4.0, std::max(0.25, rng.lognormal(0.0, layer_sigma))) /
          mean_factor);
    }
    for (std::size_t i = 0; i < slow_n; ++i) {
      slow_layer.push_back(
          std::min(4.0, std::max(0.25, rng.lognormal(0.0, layer_sigma))) /
          mean_factor);
    }
  }
  auto intensity_at = [&](Time t) {
    if (fast_layer.empty()) return 1.0;
    auto fi = static_cast<std::size_t>(t / cfg.modulation_period);
    if (fi >= fast_layer.size()) fi = fast_layer.size() - 1;
    auto si = static_cast<std::size_t>(t / (4 * cfg.modulation_period));
    if (si >= slow_layer.size()) si = slow_layer.size() - 1;
    return fast_layer[fi] * slow_layer[si];
  };
  std::vector<double> intensity;  // sampled per fast period, for the max
  for (std::size_t i = 0; i < fast_layer.size(); ++i) {
    intensity.push_back(
        intensity_at(static_cast<Time>(i) * cfg.modulation_period));
  }
  double max_intensity = 1.0;
  for (double v : intensity) max_intensity = std::max(max_intensity, v);

  // Non-homogeneous Poisson by thinning: candidates arrive at the peak
  // rate and are kept with probability intensity(t) / max_intensity.
  std::vector<BackgroundFlow> flows;
  const double mean_gap = 1.0 / (cfg.flows_per_second * max_intensity);
  Time at = seconds(rng.exponential(mean_gap));
  while (at < cfg.duration) {
    if (!intensity.empty() &&
        !rng.bernoulli(intensity_at(at) / max_intensity)) {
      at += seconds(rng.exponential(mean_gap));
      continue;
    }
    double bytes;
    if (rng.bernoulli(cfg.pareto_tail_prob)) {
      bytes = rng.pareto(pareto_scale, cfg.pareto_shape);
      // Truncate the tail so one monster flow cannot dominate a short
      // experiment (CAIDA segments are similarly bounded in time).
      bytes = std::min(bytes, 40.0 * pareto_scale);
    } else {
      bytes = rng.lognormal(ln_mu, ln_sigma);
    }
    BackgroundFlow f;
    f.start = at;
    f.bytes = std::max<std::int64_t>(400, static_cast<std::int64_t>(bytes * scale));
    flows.push_back(f);
    at += seconds(rng.exponential(mean_gap));
  }
  return flows;
}

void mark_differentiated(std::vector<BackgroundFlow>& flows, double fraction,
                         Rng& rng) {
  WEHEY_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  for (auto& f : flows) f.differentiated = rng.bernoulli(fraction);
}

std::int64_t total_bytes(const std::vector<BackgroundFlow>& flows) {
  std::int64_t sum = 0;
  for (const auto& f : flows) sum += f.bytes;
  return sum;
}

}  // namespace wehey::trace
