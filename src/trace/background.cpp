#include "trace/background.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/check.hpp"

namespace wehey::trace {

std::vector<BackgroundFlow> generate_background(const BackgroundConfig& cfg,
                                                Rng& rng) {
  WEHEY_EXPECTS(cfg.flows_per_second > 0.0);
  WEHEY_EXPECTS(cfg.duration > 0);

  // Choose the mean flow size so that arrival_rate * mean_size * 8 equals
  // the target rate. The mixture is log-normal (body) + Pareto (tail); we
  // first compute the unscaled mixture mean, then scale sizes.
  const double target_mean_bytes =
      cfg.target_rate / 8.0 / cfg.flows_per_second;

  // Unscaled components: log-normal with median ~20 KB, sigma 1.2;
  // Pareto tail starting at 200 KB.
  const double ln_mu = std::log(20e3);
  const double ln_sigma = 1.2;
  const double ln_mean = std::exp(ln_mu + ln_sigma * ln_sigma / 2.0);
  const double pareto_scale = 200e3;
  const double pareto_mean =
      cfg.pareto_shape > 1.0
          ? pareto_scale * cfg.pareto_shape / (cfg.pareto_shape - 1.0)
          : pareto_scale * 10.0;  // truncated-mean stand-in for alpha<=1
  const double mixture_mean = (1.0 - cfg.pareto_tail_prob) * ln_mean +
                              cfg.pareto_tail_prob * pareto_mean;
  const double scale = target_mean_bytes / mixture_mean;

  // Two-layer piecewise-constant arrival-intensity modulation (a fast
  // layer at the configured period and a slow layer at 4x that period),
  // approximating the multi-timescale burstiness of long-range-dependent
  // backbone traffic. Each layer is lognormal with sigma/sqrt(2) so the
  // product has the configured overall sigma; normalization keeps the
  // long-run mean intensity at flows_per_second.
  std::vector<double> fast_layer, slow_layer;
  if (cfg.modulation_sigma > 0.0 && cfg.modulation_period > 0) {
    const double layer_sigma = cfg.modulation_sigma / std::sqrt(2.0);
    const double mean_factor =
        std::exp(layer_sigma * layer_sigma / 2.0);
    const auto fast_n = static_cast<std::size_t>(
        cfg.duration / cfg.modulation_period + 1);
    const auto slow_n = static_cast<std::size_t>(
        cfg.duration / (4 * cfg.modulation_period) + 1);
    for (std::size_t i = 0; i < fast_n; ++i) {
      fast_layer.push_back(
          std::min(4.0, std::max(0.25, rng.lognormal(0.0, layer_sigma))) /
          mean_factor);
    }
    for (std::size_t i = 0; i < slow_n; ++i) {
      slow_layer.push_back(
          std::min(4.0, std::max(0.25, rng.lognormal(0.0, layer_sigma))) /
          mean_factor);
    }
  }
  auto intensity_at = [&](Time t) {
    if (fast_layer.empty()) return 1.0;
    auto fi = static_cast<std::size_t>(t / cfg.modulation_period);
    if (fi >= fast_layer.size()) fi = fast_layer.size() - 1;
    auto si = static_cast<std::size_t>(t / (4 * cfg.modulation_period));
    if (si >= slow_layer.size()) si = slow_layer.size() - 1;
    return fast_layer[fi] * slow_layer[si];
  };
  std::vector<double> intensity;  // sampled per fast period, for the max
  for (std::size_t i = 0; i < fast_layer.size(); ++i) {
    intensity.push_back(
        intensity_at(static_cast<Time>(i) * cfg.modulation_period));
  }
  double max_intensity = 1.0;
  for (double v : intensity) max_intensity = std::max(max_intensity, v);

  // Non-homogeneous Poisson by thinning: candidates arrive at the peak
  // rate and are kept with probability intensity(t) / max_intensity.
  std::vector<BackgroundFlow> flows;
  const double mean_gap = 1.0 / (cfg.flows_per_second * max_intensity);
  Time at = seconds(rng.exponential(mean_gap));
  while (at < cfg.duration) {
    if (!intensity.empty() &&
        !rng.bernoulli(intensity_at(at) / max_intensity)) {
      at += seconds(rng.exponential(mean_gap));
      continue;
    }
    double bytes;
    if (rng.bernoulli(cfg.pareto_tail_prob)) {
      bytes = rng.pareto(pareto_scale, cfg.pareto_shape);
      // Truncate the tail so one monster flow cannot dominate a short
      // experiment (CAIDA segments are similarly bounded in time).
      bytes = std::min(bytes, 40.0 * pareto_scale);
    } else {
      bytes = rng.lognormal(ln_mu, ln_sigma);
    }
    BackgroundFlow f;
    f.start = at;
    f.bytes = std::max<std::int64_t>(400, static_cast<std::int64_t>(bytes * scale));
    flows.push_back(f);
    at += seconds(rng.exponential(mean_gap));
  }
  return flows;
}

void mark_differentiated(std::vector<BackgroundFlow>& flows, double fraction,
                         Rng& rng) {
  WEHEY_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  for (auto& f : flows) f.differentiated = rng.bernoulli(fraction);
}

std::int64_t total_bytes(const std::vector<BackgroundFlow>& flows) {
  std::int64_t sum = 0;
  for (const auto& f : flows) sum += f.bytes;
  return sum;
}

BackgroundMode background_mode_from_env() {
  const char* v = std::getenv("WEHEY_BG_MODE");
  if (v == nullptr || v[0] == 0) return BackgroundMode::kPacket;
  const std::string s(v);
  if (s == "fluid") return BackgroundMode::kFluid;
  return BackgroundMode::kPacket;
}

BackgroundMode resolve_background_mode(BackgroundMode mode) {
  return mode == BackgroundMode::kEnv ? background_mode_from_env() : mode;
}

std::int64_t FluidProfile::total_bytes() const {
  const double dt = to_seconds(step);
  double bits = 0.0;
  for (const double r : dflt) bits += r * dt;
  for (const double r : diff) bits += r * dt;
  double bytes = bits / 8.0;
  for (const double b : burst_dflt) bytes += b;
  for (const double b : burst_diff) bytes += b;
  return static_cast<std::int64_t>(std::llround(bytes));
}

FluidProfile fluid_profile(const std::vector<BackgroundFlow>& flows,
                           const BackgroundConfig& cfg, Time step) {
  WEHEY_EXPECTS(step > 0);
  FluidProfile out;
  out.step = step;
  const auto segments =
      static_cast<std::size_t>((cfg.duration + step - 1) / step);
  out.dflt.assign(segments, 0.0);
  out.diff.assign(segments, 0.0);
  out.burst_dflt.assign(segments, 0.0);
  out.burst_diff.assign(segments, 0.0);
  if (segments == 0) return out;

  // Slow-start head: a TCP flow's first bytes hit the bottleneck as
  // back-to-back windows before ACK clocking paces it, and that burst —
  // not the flow's average rate — is what delays competing traffic. Up to
  // this much of each flow is delivered as an unpaced burst at the flow's
  // start; the remainder is paced below. 80 KB ≈ the exponential-growth
  // window a flow reaches before its first loss at these bandwidth-delay
  // products, calibrated so fluid-mode grid verdict tallies track the
  // packet backend on the Table 1 wild grid.
  const double burst_head = 80.0 * 1024.0;

  // Per-flow pacing: a flow's bytes enter the network over a window sized
  // by this rate, standing in for its TCP ramp. Mice fit in one segment;
  // elephants stretch across many, so the profile keeps the long-timescale
  // intensity trend of the flow-level workload.
  const double pace = std::max(cfg.target_rate * 0.25, mbps(1.0));
  const double step_s = to_seconds(step);
  const double end_s = static_cast<double>(segments) * step_s;

  for (const auto& f : flows) {
    auto& cls = f.differentiated ? out.diff : out.dflt;
    auto& burst_cls = f.differentiated ? out.burst_diff : out.burst_dflt;
    double bytes = static_cast<double>(f.bytes);
    double s0 = to_seconds(f.start);
    if (s0 >= end_s) s0 = end_s - step_s;  // clamp into the last segment
    const auto start_seg = std::min(
        static_cast<std::size_t>(s0 / step_s), segments - 1);
    const double head = std::min(bytes, burst_head);
    burst_cls[start_seg] += head;
    bytes -= head;
    if (bytes <= 0.0) continue;
    const double window = std::max(step_s, bytes * 8.0 / pace);
    // Truncate the spread window at the profile end: the tail mass folds
    // back proportionally so bytes are conserved exactly.
    const double s1 = std::min(s0 + window, end_s);
    const double span = std::max(s1 - s0, step_s * 1e-6);
    // Distribute bytes over the overlapped segments, proportional to
    // overlap; add as rate (bits/sec over the segment).
    const auto first = static_cast<std::size_t>(s0 / step_s);
    auto last = static_cast<std::size_t>(s1 / step_s);
    if (last >= segments) last = segments - 1;
    double assigned = 0.0;
    for (std::size_t i = first; i <= last; ++i) {
      const double lo = std::max(s0, static_cast<double>(i) * step_s);
      const double hi =
          std::min(s1, static_cast<double>(i + 1) * step_s);
      if (hi <= lo) continue;
      const double share = bytes * (hi - lo) / span;
      cls[i] += share * 8.0 / step_s;
      assigned += share;
    }
    // Rounding leftovers (and the truncated tail) land in the last
    // overlapped segment.
    if (assigned < bytes) cls[last] += (bytes - assigned) * 8.0 / step_s;
  }
  return out;
}

}  // namespace wehey::trace
