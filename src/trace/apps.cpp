#include "trace/apps.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace wehey::trace {
namespace {

struct UdpAppModel {
  const char* name;
  const char* service;
  double frame_interval_ms;  ///< media frame period
  double frame_bytes_mean;   ///< bytes per frame (split into packets)
  double frame_bytes_jitter; ///< multiplicative jitter stddev
  double keyframe_every_s;   ///< large-frame period (0: none)
  double keyframe_factor;    ///< keyframe size multiplier
  std::uint32_t max_packet;  ///< MTU-ish packet split size
};

// Rates: Skype ~0.7 Mbps, WhatsApp voice ~0.045 Mbps, Teams ~1.2 Mbps,
// Zoom ~1.0 Mbps, Webex ~0.8 Mbps — in line with the medium-quality video /
// voice settings of WeHe's recorded traces.
constexpr UdpAppModel kUdpApps[] = {
    {"Skype", "skype.com", 33.3, 2900.0, 0.25, 2.0, 2.5, 1200},
    {"WhatsApp", "whatsapp.net", 30.0, 170.0, 0.15, 0.0, 1.0, 1200},
    {"MSTeams", "teams.microsoft.com", 33.3, 5000.0, 0.25, 2.5, 2.0, 1200},
    {"Zoom", "zoom.us", 33.3, 4200.0, 0.20, 2.0, 2.2, 1150},
    {"Webex", "webex.com", 33.3, 3300.0, 0.22, 3.0, 2.0, 1200},
};

const UdpAppModel* find_udp_app(const std::string& app) {
  for (const auto& m : kUdpApps) {
    if (app == m.name) return &m;
  }
  return nullptr;
}

}  // namespace

const std::vector<std::string>& udp_app_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& m : kUdpApps) v.emplace_back(m.name);
    return v;
  }();
  return names;
}

AppTrace make_udp_app_trace(const std::string& app, Time duration, Rng& rng) {
  const UdpAppModel* m = find_udp_app(app);
  WEHEY_EXPECTS(m != nullptr);

  AppTrace t;
  t.app = m->name;
  t.service = m->service;
  t.transport = Transport::Udp;

  const Time frame_interval = milliseconds(m->frame_interval_ms);
  const Time keyframe_every =
      m->keyframe_every_s > 0 ? seconds(m->keyframe_every_s) : 0;
  Time next_keyframe = keyframe_every;
  for (Time at = 0; at <= duration; at += frame_interval) {
    double bytes = m->frame_bytes_mean *
                   std::max(0.2, rng.normal(1.0, m->frame_bytes_jitter));
    if (keyframe_every > 0 && at >= next_keyframe) {
      bytes *= m->keyframe_factor;
      next_keyframe += keyframe_every;
    }
    // Split the frame into MTU-sized packets sent back-to-back with a tiny
    // serialization spacing, like a real video encoder's output burst.
    auto remaining = static_cast<std::int64_t>(bytes);
    Time pkt_at = at;
    while (remaining > 0) {
      const auto size = static_cast<std::uint32_t>(
          std::min<std::int64_t>(remaining, m->max_packet));
      t.packets.push_back({pkt_at, size});
      remaining -= size;
      pkt_at += microseconds(100);
    }
  }
  return t;
}

struct TcpAppModel {
  const char* name;
  const char* service;
  double segment_period_s;   ///< media segment fetch period
  double segment_bytes_mean; ///< bytes per segment
  double segment_jitter;     ///< relative stddev of segment sizes
  int startup_segments;      ///< segments buffered at startup (burst)
};

// All five stream at roughly 3.5-4.5 Mbps on average but with different
// chunking: Netflix/Prime fetch ~4 s DASH segments, YouTube shorter ones,
// Disney+ longer, Twitch (live HLS) arrives in steady 2 s chunks with no
// startup burst.
constexpr TcpAppModel kTcpApps[] = {
    {"Netflix", "nflxvideo.net", 4.0, 2.0e6, 0.25, 3},
    {"YouTube", "googlevideo.com", 2.5, 1.3e6, 0.30, 4},
    {"Disney+", "dssott.com", 6.0, 3.0e6, 0.20, 2},
    {"AmazonPrime", "aiv-cdn.net", 4.0, 1.9e6, 0.25, 3},
    {"Twitch", "ttvnw.net", 2.0, 1.1e6, 0.15, 1},
};

const TcpAppModel* find_tcp_app(const std::string& app) {
  for (const auto& m : kTcpApps) {
    if (app == m.name) return &m;
  }
  return nullptr;
}

const std::vector<std::string>& tcp_app_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& m : kTcpApps) v.emplace_back(m.name);
    return v;
  }();
  return names;
}

AppTrace make_tcp_app_trace(const std::string& app, Time duration,
                            Rng& rng) {
  const TcpAppModel* m = find_tcp_app(app);
  WEHEY_EXPECTS(m != nullptr);
  AppTrace t;
  t.app = m->name;
  t.service = m->service;
  t.transport = Transport::Tcp;

  // Chunked adaptive streaming: one segment per period; the schedule below
  // is the byte-availability schedule, not the wire timing — the TCP
  // replay's congestion control sets the wire timing (§3.4). The first
  // `startup_segments` segments are requested back-to-back (buffering).
  const Time segment_period = seconds(m->segment_period_s);
  int segment_index = 0;
  for (Time at = 0; at <= duration; at += segment_period, ++segment_index) {
    const double segment_bytes = std::max(
        0.1 * m->segment_bytes_mean,
        rng.normal(m->segment_bytes_mean,
                   m->segment_jitter * m->segment_bytes_mean));
    // Startup burst: early segments become available immediately.
    const Time base =
        segment_index < m->startup_segments ? Time{0} : at;
    auto remaining = static_cast<std::int64_t>(segment_bytes);
    Time pkt_at = base;
    while (remaining > 0) {
      const auto size = static_cast<std::uint32_t>(
          std::min<std::int64_t>(remaining, 1448));
      t.packets.push_back({pkt_at, size});
      remaining -= size;
      // Spacing within a segment is nominal; TCP replay ignores it.
      pkt_at += microseconds(50);
    }
  }
  std::sort(t.packets.begin(), t.packets.end(),
            [](const TracePacket& a, const TracePacket& b) {
              return a.offset < b.offset;
            });
  return t;
}

AppTrace make_tcp_app_trace(Time duration, Rng& rng) {
  return make_tcp_app_trace("Netflix", duration, rng);
}

std::vector<AppTrace> all_app_traces(Time duration, Rng& rng) {
  std::vector<AppTrace> traces;
  traces.push_back(make_tcp_app_trace(duration, rng));
  for (const auto& name : udp_app_names()) {
    traces.push_back(make_udp_app_trace(name, duration, rng));
  }
  return traces;
}

}  // namespace wehey::trace
