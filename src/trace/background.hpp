// Synthetic background traffic standing in for the CAIDA equinix-chicago
// trace segments used in §6.1 ("average rate 168 Mbps with ~400 active TCP
// flows every second", replayed at the application layer).
//
// We generate a flow-level workload with Poisson flow arrivals and
// heavy-tailed (log-normal body + Pareto tail) flow sizes, which matches
// the well-known mix of short mice and long elephants in backbone traces.
// Flows are handed to real TCP senders in the simulator, so their packet
// dynamics (burstiness, loss response) come from congestion control, just
// like the paper's application-layer replay.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace wehey::trace {

/// One background TCP flow: starts at `start`, transfers `bytes`.
struct BackgroundFlow {
  Time start = 0;
  std::int64_t bytes = 0;
  bool differentiated = false;  ///< assigned dscp=1 (same class as the
                                ///< original trace) by the scenario
};

struct BackgroundConfig {
  Rate target_rate = mbps(20);  ///< long-run average offered load
  Time duration = seconds(60);
  double flows_per_second = 40;   ///< Poisson arrival rate (before modulation)
  double pareto_tail_prob = 0.1;  ///< fraction of flows drawn from the tail
  double pareto_shape = 1.3;      ///< heavy tail (infinite variance) like
                                  ///< measured internet flow sizes
  /// Long-timescale intensity modulation: real backbone traffic is
  /// self-similar, with offered load trending up and down over seconds —
  /// the very arrival-rate trend loss-trend correlation keys on. The
  /// arrival intensity is multiplied by a piecewise-constant lognormal
  /// factor redrawn every `modulation_period` (0 sigma disables).
  double modulation_sigma = 0.8;
  Time modulation_period = seconds(2);
};

/// Generate a background workload. The size distribution is scaled so the
/// expected aggregate offered rate matches `cfg.target_rate`.
std::vector<BackgroundFlow> generate_background(const BackgroundConfig& cfg,
                                                Rng& rng);

/// Mark a uniformly-random `fraction` of the flows as differentiated
/// (directed through the rate-limiter together with the original trace,
/// per §6.1 "% of background").
void mark_differentiated(std::vector<BackgroundFlow>& flows, double fraction,
                         Rng& rng);

/// Total bytes across all flows.
std::int64_t total_bytes(const std::vector<BackgroundFlow>& flows);

// ---------------------------------------------------------------------------
// Hybrid fluid/packet simulation: the fluid backend models the background
// aggregate as a piecewise-constant offered-rate process instead of real
// per-flow TCP senders. The workload below is derived from the *same*
// generate_background / mark_differentiated draws as the packet backend,
// so switching modes consumes identical RNG streams and leaves every
// downstream draw (replay re-timing, access-link jitter, ...) unchanged.

/// Which backend carries the background aggregate of a scenario.
enum class BackgroundMode {
  kEnv,     ///< resolve from WEHEY_BG_MODE at run time (the default)
  kPacket,  ///< one real TCP sender per flow (full packet fidelity)
  kFluid,   ///< aggregate fluid-rate model (hybrid simulation)
};

/// Parse WEHEY_BG_MODE: "packet" (default) or "fluid".
BackgroundMode background_mode_from_env();

/// Resolve kEnv against the environment; kPacket/kFluid pass through.
BackgroundMode resolve_background_mode(BackgroundMode mode);

/// Piecewise-constant per-class offered rate derived from a flow-level
/// workload: segment i covers [i*step, (i+1)*step). Byte-conserving —
/// the segment integral equals the flows' total bytes per class.
struct FluidProfile {
  Time step = 100 * kMillisecond;
  std::vector<Rate> dflt;  ///< default-class offered rate per segment
  std::vector<Rate> diff;  ///< differentiated-class offered rate per segment
  /// Unpaced head-of-flow bytes landing at the start of each segment: the
  /// slow-start burst every TCP flow fires before ACK clocking paces it.
  /// Carried separately from the rates because the burst's effect on
  /// packet traffic is queueing delay (a brief link busy period), not a
  /// sustained capacity share.
  std::vector<double> burst_dflt;
  std::vector<double> burst_diff;
  /// Integral of both classes over all segments (rates and bursts), bytes.
  std::int64_t total_bytes() const;
  bool empty() const { return dflt.empty() && diff.empty(); }
};

/// Convert a flow workload into a FluidProfile. Each flow's bytes are
/// spread from its start time at a pacing rate of max(target_rate / 4,
/// 1 Mbps) — mice land inside one segment, elephants ramp over several,
/// which preserves the arrival-intensity modulation trend the loss-trend
/// correlation keys on. Mass past `cfg.duration` folds into the last
/// segment so the profile conserves bytes exactly.
FluidProfile fluid_profile(const std::vector<BackgroundFlow>& flows,
                           const BackgroundConfig& cfg,
                           Time step = 100 * kMillisecond);

}  // namespace wehey::trace
