#include "trace/trace.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace wehey::trace {

std::int64_t AppTrace::total_bytes() const {
  std::int64_t sum = 0;
  for (const auto& p : packets) sum += p.size;
  return sum;
}

Rate AppTrace::average_rate() const {
  const Time d = duration();
  if (d <= 0) return 0.0;
  return rate_of(total_bytes(), d);
}

AppTrace bit_invert(const AppTrace& t) {
  AppTrace inv = t;
  inv.carries_sni = false;
  return inv;
}

AppTrace poissonize(const AppTrace& t, Rng& rng) {
  AppTrace out = t;
  out.timing = Timing::Poisson;
  if (t.packets.size() < 2) return out;
  const double mean_gap =
      to_seconds(t.duration()) / static_cast<double>(t.packets.size() - 1);
  Time at = 0;
  for (std::size_t i = 0; i < out.packets.size(); ++i) {
    out.packets[i].offset = at;
    at += seconds(rng.exponential(mean_gap));
  }
  return out;
}

AppTrace extend(const AppTrace& t, Time min_duration) {
  WEHEY_EXPECTS(!t.packets.empty());
  AppTrace out = t;
  const Time period = std::max<Time>(t.duration(), kMillisecond);
  // Leave one average inter-packet gap between repetitions so the repeat
  // boundary does not create an artificial back-to-back burst.
  const Time gap = period / static_cast<Time>(t.packets.size());
  Time base = period + gap;
  while (out.duration() < min_duration) {
    for (const auto& p : t.packets) {
      out.packets.push_back({base + p.offset, p.size});
    }
    base += period + gap;
  }
  return out;
}

AppTrace cut(const AppTrace& t, Time offset, std::int64_t after_bytes) {
  AppTrace out = t;
  out.packets.clear();
  std::int64_t sent = 0;
  for (const auto& p : t.packets) {
    if (p.offset > offset) break;
    if (after_bytes >= 0 && sent + p.size > after_bytes) break;
    out.packets.push_back(p);
    sent += p.size;
  }
  return out;
}

}  // namespace wehey::trace
