// Application traces, modelled after WeHe's pre-recorded replay traces.
//
// A trace is the server-to-client packet schedule of one application
// session: packet sizes and transmit-time offsets. Two properties of the
// real traces matter to WeHeY and are modelled explicitly:
//
//  * whether the payload still carries the service identifier a DPI box
//    keys on (the SNI) — captured by `carries_sni`. The "bit-inverted"
//    transform clears it, exactly like WeHe's control replays.
//  * the timing discipline — as recorded, or re-timed to a Poisson process
//    (for UDP replays, to benefit from the PASTA property, §3.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace wehey::trace {

enum class Transport { Tcp, Udp };

enum class Timing {
  AsRecorded,  ///< original inter-arrival times
  Poisson,     ///< exponential inter-arrivals with the original mean rate
};

struct TracePacket {
  Time offset = 0;          ///< transmit time relative to trace start
  std::uint32_t size = 0;   ///< payload bytes
};

/// One replayable application trace.
struct AppTrace {
  std::string app;          ///< e.g. "Netflix", "Skype"
  std::string service;      ///< SNI-visible service name
  Transport transport = Transport::Udp;
  bool carries_sni = true;  ///< false after bit inversion
  Timing timing = Timing::AsRecorded;
  std::vector<TracePacket> packets;

  Time duration() const {
    return packets.empty() ? 0 : packets.back().offset;
  }
  std::int64_t total_bytes() const;
  /// Average rate over the trace duration (bits/sec).
  Rate average_rate() const;
};

/// WeHe's control transform: identical sizes and timings, payload bits
/// inverted so no DPI signature survives.
AppTrace bit_invert(const AppTrace& t);

/// Re-time the packets as a Poisson process with the trace's original
/// average packet rate, keeping sizes and total count (§3.4, UDP replay).
AppTrace poissonize(const AppTrace& t, Rng& rng);

/// Repeat the trace back-to-back until it lasts at least `min_duration`
/// (§3.4: replays are extended to >= 45 s to yield enough loss samples).
AppTrace extend(const AppTrace& t, Time min_duration);

/// Cut the trace at a mid-stream abort point: packets after `offset` are
/// dropped, and — when `after_bytes` >= 0 — so is everything beyond that
/// many cumulative payload bytes. Models a replay server dying mid-replay
/// (fault injection); the result may be empty.
AppTrace cut(const AppTrace& t, Time offset,
             std::int64_t after_bytes = -1);

}  // namespace wehey::trace
