// Synthetic models of the application traces WeHe replays (§6.1): one TCP
// streaming trace and five UDP real-time apps (Skype, WhatsApp, MS Teams,
// Zoom, Webex).
//
// The paper's evaluation only depends on the traces' packet sizes, timings
// and average rates (content matters solely as the DPI key, which we model
// with `carries_sni`), so each generator reproduces the app's
// characteristic traffic *shape*: frame-periodic video with size jitter,
// low-rate CBR voice, or chunked TCP streaming.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "trace/trace.hpp"

namespace wehey::trace {

/// Names of the five UDP apps evaluated in the paper, in paper order.
const std::vector<std::string>& udp_app_names();

/// A UDP app trace of roughly `duration` (video-conference style: periodic
/// frames split into MTU-sized packets, size jitter, occasional keyframes).
AppTrace make_udp_app_trace(const std::string& app, Time duration, Rng& rng);

/// The names of the TCP streaming services modelled (the five the wild
/// evaluation replays: Netflix, YouTube, Disney+, Amazon Prime, Twitch).
const std::vector<std::string>& tcp_app_names();

/// A TCP streaming trace: the byte schedule of a chunked video stream.
/// For TCP replays only the payload amount and chunking matter;
/// transmission times come from congestion control (§3.4). Each service
/// has its own segment length, bitrate and startup-burst profile.
AppTrace make_tcp_app_trace(const std::string& app, Time duration, Rng& rng);

/// Netflix-profile shorthand (the §6 testbed's TCP trace).
AppTrace make_tcp_app_trace(Time duration, Rng& rng);

/// All six (original) trace models at the default duration used in our
/// experiments.
std::vector<AppTrace> all_app_traces(Time duration, Rng& rng);

}  // namespace wehey::trace
