// Classic binary loss tomography on the Figure-1 topology, and the
// intermediate detector designs the paper evolved through (§4.3,
// Appendix B). These are WeHeY's *baselines*: they are what Figure 6
// compares the final loss-trend correlation algorithm against.
//
//  * BinLossTomo (Alg. 2) — the full-rank system of equations of Ghita et
//    al.: label each path lossy/non-lossy per interval against a loss
//    threshold tau, estimate path performance y_i = P(non-lossy) and joint
//    performance y_12, and solve System 1 for the link-sequence
//    performances (x_c, x_1, x_2).
//    Note: the paper's pseudo-code prints y_i as the sum of LossStatus;
//    System 1 and the surrounding text define y_i as the probability of
//    being NON-lossy, which is what the closed-form solution on line 9
//    requires — we implement the latter.
//  * BinLossTomo++ (Alg. 3) — detect a common bottleneck iff the common
//    link sequence has worse inferred performance than both non-common
//    ones.
//  * BinLossTomoNoParams (Alg. 4) — sweep all reasonable interval sizes
//    and loss thresholds (those keeping 0.1 <= y_i <= 0.9) and require the
//    average performance gap to be positive for both non-common links.
//  * LossTrendTomo (the "V2" design) — replaces the loss threshold with
//    "loss rate increased relative to the previous interval".
#pragma once

#include <optional>
#include <vector>

#include "common/time.hpp"
#include "core/loss_series.hpp"
#include "netsim/measure.hpp"

namespace wehey::core {

/// Inferred probability of each link sequence being non-lossy.
struct LinkPerformance {
  double x_c = 1.0;  ///< common link sequence
  double x_1 = 1.0;  ///< non-common sequence of p1
  double x_2 = 1.0;  ///< non-common sequence of p2
  bool valid = false;
};

struct TomographyOptions {
  std::uint64_t min_packets_per_interval = 10;
};

/// Algorithm 2. `sigma` is the interval size, `tau` the loss threshold.
LinkPerformance bin_loss_tomo(const netsim::ReplayMeasurement& m1,
                              const netsim::ReplayMeasurement& m2,
                              Time sigma, double tau,
                              const TomographyOptions& opt = {});

/// Algorithm 2 on precomputed loss-rate series (exposed for the Figure-3
/// threshold sweep and for tests).
LinkPerformance bin_loss_tomo_series(const std::vector<double>& loss1,
                                     const std::vector<double>& loss2,
                                     double tau);

/// Algorithm 3: common bottleneck iff x_1 > x_c and x_2 > x_c.
bool bin_loss_tomo_plus_plus(const netsim::ReplayMeasurement& m1,
                             const netsim::ReplayMeasurement& m2, Time sigma,
                             double tau, const TomographyOptions& opt = {});

struct NoParamsConfig {
  int interval_sizes = 9;
  int min_interval_rtts = 10;
  int max_interval_rtts = 50;
  /// Quantile grid from which candidate loss thresholds are drawn.
  int threshold_candidates = 9;
  /// Thresholds must keep every path's performance within this band
  /// ("none of the paths is found lossy too often or too rarely").
  double y_min = 0.1;
  double y_max = 0.9;
  std::uint64_t min_packets_per_interval = 10;
};

struct NoParamsResult {
  bool common_bottleneck = false;
  double avg_gap_1 = 0.0;  ///< average of x_1 - x_c over the sweep
  double avg_gap_2 = 0.0;
  std::size_t combinations = 0;  ///< (sigma, tau) pairs actually used
};

/// Algorithm 4. `base_rtt` scales the interval-size sweep.
NoParamsResult bin_loss_tomo_no_params(const netsim::ReplayMeasurement& m1,
                                       const netsim::ReplayMeasurement& m2,
                                       Time base_rtt,
                                       const NoParamsConfig& cfg = {});

/// The V2 intermediate design: binary tomography where "lossy" means the
/// loss rate increased relative to the previous interval; common
/// bottleneck iff x_1 > x_c and x_2 > x_c averaged over the size sweep.
struct LossTrendTomoResult {
  bool common_bottleneck = false;
  double avg_gap_1 = 0.0;
  double avg_gap_2 = 0.0;
  std::size_t sizes_used = 0;
};

LossTrendTomoResult loss_trend_tomography(
    const netsim::ReplayMeasurement& m1, const netsim::ReplayMeasurement& m2,
    Time base_rtt, const NoParamsConfig& cfg = {});

}  // namespace wehey::core
