// Construction of the aligned per-path loss-rate time series that all the
// common-bottleneck detectors (Alg. 1-4) operate on.
//
// "Create time series from M, sigma" (Alg. 1 line 4): divide time into
// intervals of size sigma; per interval and per path count transmitted and
// lost packets; discard intervals where one or both paths transmitted
// fewer than a minimum number of packets, or where neither path lost any
// packets.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "netsim/measure.hpp"

namespace wehey::core {

struct LossRateSeries {
  std::vector<double> path1;  ///< loss rate per retained interval
  std::vector<double> path2;
  std::size_t total_intervals = 0;     ///< before filtering
  std::size_t retained_intervals = 0;  ///< after filtering
};

struct SeriesOptions {
  std::uint64_t min_packets_per_interval = 10;
  /// Drop intervals in which neither path lost anything (Alg. 1 line 4).
  bool require_some_loss = true;
};

LossRateSeries make_loss_rate_series(const netsim::ReplayMeasurement& m1,
                                     const netsim::ReplayMeasurement& m2,
                                     Time sigma,
                                     const SeriesOptions& opt = {});

/// The interval-size sweep of Alg. 1 line 2: sizes sigma with
/// 10 <= sigma / base_rtt <= 50, evenly spaced, `count` of them.
std::vector<Time> interval_size_sweep(Time base_rtt, int count = 9,
                                      int min_rtts = 10, int max_rtts = 50);

}  // namespace wehey::core
