// The second common-bottleneck detector: loss-trend correlation
// (Algorithm 1, §4.2).
//
// For every interval size sigma in a 10-50 RTT sweep, build the aligned
// loss-rate time series of the two paths and test the Spearman correlation
// p-value against the acceptable false-positive rate FP. Output "common
// bottleneck" iff more than a (1 - FP) fraction of the interval sizes show
// significant correlation — the conservative aggregation the paper found
// necessary to hold the target FP.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "core/loss_series.hpp"
#include "netsim/measure.hpp"
#include "stats/correlation.hpp"

namespace wehey::core {

/// Correlation statistic used per interval size. The paper argues for
/// Spearman ("normalized ... least sensitive to strong outliers", §4.2);
/// the alternatives exist for the ablation bench.
enum class CorrelationMethod {
  Spearman,
  Pearson,
  Kendall,
  SpearmanPermutation,  ///< Monte-Carlo permutation p (short series)
};

struct LossCorrelationConfig {
  double fp = 0.05;  ///< acceptable false-positive rate
  int interval_sizes = 9;
  int min_interval_rtts = 10;
  int max_interval_rtts = 50;
  std::uint64_t min_packets_per_interval = 10;
  /// Loss rates of flows over a shared bottleneck rise and fall together,
  /// so the one-sided (positive) alternative is the appropriate test.
  stats::Alternative alternative = stats::Alternative::Greater;
  CorrelationMethod method = CorrelationMethod::Spearman;
  std::size_t permutation_iterations = 2000;
  std::uint64_t permutation_seed = 1;
};

struct IntervalOutcome {
  Time sigma = 0;
  std::size_t retained_intervals = 0;
  double rho = 0.0;
  double p_value = 1.0;
  bool correlated = false;
  /// Whether the correlation test could run at all for this size (enough
  /// retained intervals, non-constant series).
  bool valid = false;
};

struct LossCorrelationResult {
  bool common_bottleneck = false;
  std::size_t sizes_tested = 0;
  std::size_t sizes_correlated = 0;
  /// Sizes whose correlation test was statistically valid; 0 means the
  /// detector never actually ran, so `common_bottleneck == false` is
  /// "untested", not "tested negative".
  std::size_t sizes_valid = 0;
  std::vector<IntervalOutcome> per_size;
  /// Ok, or the recoverable reason no size could be tested.
  Status status;
};

/// `base_rtt` is max_i { p_i's min RTT } (Alg. 1 line 2) — the interval
/// sizes sweep 10-50 multiples of it. A non-positive `base_rtt` or empty
/// measurements yield an untested result (status set) rather than a
/// contract violation: degraded sessions reach this code with data-shaped
/// garbage.
LossCorrelationResult loss_trend_correlation(
    const netsim::ReplayMeasurement& m1, const netsim::ReplayMeasurement& m2,
    Time base_rtt, const LossCorrelationConfig& cfg = {});

}  // namespace wehey::core
