// WeHeY's end-to-end decision pipeline (§3.1, operations 3 and 4).
//
// Input: measurements from the p0 single replays (original and
// bit-inverted) and from the simultaneous replays along p1/p2, plus the
// historical T_diff data. Output: either concrete evidence that the
// differentiation happens inside the target network area, or "no
// evidence" (in which case WeHeY adds nothing beyond WeHe).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "core/loss_correlation.hpp"
#include "core/throughput_comparison.hpp"
#include "core/wehe.hpp"
#include "netsim/measure.hpp"

namespace wehey::core {

enum class Verdict {
  NoEvidence,                ///< cannot attribute beyond WeHe's detection
  EvidenceWithinTargetArea,  ///< differentiation localized to the target
  /// The inputs were degraded (aborted replays, damaged uploads, skewed
  /// clocks) badly enough that *neither* detector could validly run — the
  /// honest answer is "this session measured nothing", not "no evidence".
  Inconclusive,
};

/// Machine-readable cause attached to an Inconclusive verdict.
enum class InconclusiveReason {
  None,
  EmptyMeasurement,            ///< a simultaneous measurement carried no data
  NonOverlappingMeasurements,  ///< p1/p2 windows share too little time
  InsufficientLossIntervals,   ///< loss series too short even after shrinking
  ShortTDiffHistory,           ///< too little history for the MWU comparison
};

const char* to_string(Verdict verdict);
const char* to_string(InconclusiveReason reason);

enum class Mechanism {
  None,
  PerClientThrottling,   ///< detected by throughput comparison (§4.1)
  CollectiveThrottling,  ///< detected by loss-trend correlation (§4.2)
};

struct LocalizationInput {
  // Single replays along p0 (a standard WeHe test).
  netsim::ReplayMeasurement p0_original;
  netsim::ReplayMeasurement p0_inverted;
  // Simultaneous replays along p1 and p2.
  netsim::ReplayMeasurement p1_original;
  netsim::ReplayMeasurement p2_original;
  netsim::ReplayMeasurement p1_inverted;
  netsim::ReplayMeasurement p2_inverted;
  /// Historical relative throughput differences between back-to-back WeHe
  /// tests (the T_diff source, §4.1).
  std::vector<double> t_diff_history;
  /// max_i { p_i's minimum RTT }; 0 lets the localizer estimate it from
  /// the measurements' RTT samples.
  Time base_rtt = 0;
};

struct LocalizerConfig {
  WeheConfig wehe;
  ThroughputComparisonConfig throughput;
  LossCorrelationConfig loss;
  Time fallback_rtt = milliseconds(35);  ///< when no RTT samples exist

  // Graceful-degradation knobs. They only engage once a degradation is
  // *detected* (scrubbed samples, desynchronized windows, empty series),
  // so a clean run never enters any of these paths.
  /// Start-time disagreement between the simultaneous measurements beyond
  /// which they are trimmed to their overlapping window (a clean
  /// back-to-back start differs by ~5 ms; a skewed server clock by
  /// seconds).
  Time desync_tolerance = milliseconds(500);
  /// Overlap (as a fraction of the longer window) below which the loss
  /// pair is unusable.
  double min_overlap_fraction = 0.2;
  /// When shrinking the Alg. 1 sweep, keep interval sizes that fit at
  /// least this many intervals into the measured window.
  int min_intervals_per_size = 8;
  /// Minimum T_diff history for the §4.1 comparison to mean anything.
  std::size_t min_t_diff = 8;
};

/// One detector comparison recorded in a DecisionTrace: the statistic
/// that was tested, the threshold it was tested against, and a signed,
/// normalized margin. The margin is oriented by the recorded outcome bit:
/// positive means the statistic sits on the same side of the boundary as
/// the outcome, negative means the statistic alone would flip it (which
/// only happens when a secondary gate — KS validity, minimum effect size —
/// decided). |margin| is the normalized distance to the decision boundary,
/// so small |margin| identifies knife-edge decisions.
struct DecisionEntry {
  std::string detector;    ///< "confirmation.p1", "throughput.mwu", "loss.s01", ...
  double statistic = 0.0;  ///< the compared p-value
  double threshold = 0.0;  ///< alpha / fp it was compared against
  double margin = 0.0;
  bool outcome = false;  ///< the decision bit this comparison produced
  bool valid = false;    ///< whether the underlying test could run
  // Loss-size rows only: the Spearman rho and the interval size.
  double rho = 0.0;
  double sigma_ms = 0.0;
  bool is_loss_size = false;
};

/// Algorithm 1's conservative aggregation: common bottleneck iff
/// sizes_correlated > (1 - fp) * sizes_tested. The margin is the signed
/// count-space distance to that threshold, normalized by sizes_tested and
/// oriented by the outcome (same convention as DecisionEntry).
struct DecisionAggregation {
  bool present = false;  ///< the loss detector tested at least one size
  std::size_t sizes_tested = 0;
  std::size_t sizes_correlated = 0;
  std::size_t sizes_valid = 0;
  double threshold = 0.0;  ///< (1 - fp) * sizes_tested
  double margin = 0.0;
  bool outcome = false;
};

/// Deterministic provenance of one localize() verdict: every statistic the
/// pipeline compared against a threshold, in evaluation order, plus the
/// degradation paths that engaged and a single run-level verdict margin —
/// the normalized distance to the nearest event that would flip the final
/// verdict (the quantity the sweep-level knife-edge gate aggregates).
/// `evaluated` is false only on a default-constructed result (a session
/// that never reached analysis), which still serializes as an
/// empty-but-valid decision block.
struct DecisionTrace {
  bool evaluated = false;
  std::vector<DecisionEntry> detectors;
  DecisionAggregation aggregation;
  /// Degradation paths that engaged, in engagement order: "scrub",
  /// "desync_trim", "shrunk_sweep", "short_t_diff".
  std::vector<std::string> degradations;
  double verdict_margin = 0.0;
  bool has_verdict_margin = false;
};

struct LocalizationResult {
  Verdict verdict = Verdict::NoEvidence;
  Mechanism mechanism = Mechanism::None;
  WeheResult p1_confirmation;
  WeheResult p2_confirmation;
  bool confirmation_passed = false;
  ThroughputComparisonResult throughput;
  LossCorrelationResult loss;
  Time base_rtt_used = 0;
  /// True when the inputs needed scrubbing/trimming/shrinking. A verdict
  /// can still be reached on degraded inputs; Inconclusive means it could
  /// not.
  bool degraded = false;
  InconclusiveReason inconclusive_reason = InconclusiveReason::None;
  /// Ok, or the recoverable failure that made the verdict Inconclusive.
  Status status;
  /// Why the verdict is what it is (statistics, thresholds, margins).
  DecisionTrace trace;
};

/// Estimate the Alg. 1 base RTT from measurement latency samples: the
/// maximum over paths of each path's minimum RTT. Non-finite and
/// non-positive samples are ignored; if either path then has no usable
/// samples, or every remaining sample is one repeated value (a degenerate
/// upload, not a credible RTT floor), the estimate falls back to
/// `fallback`.
Time estimate_base_rtt(const netsim::ReplayMeasurement& m1,
                       const netsim::ReplayMeasurement& m2, Time fallback);

LocalizationResult localize(const LocalizationInput& input, Rng& rng,
                            const LocalizerConfig& cfg = {});

}  // namespace wehey::core
