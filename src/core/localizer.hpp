// WeHeY's end-to-end decision pipeline (§3.1, operations 3 and 4).
//
// Input: measurements from the p0 single replays (original and
// bit-inverted) and from the simultaneous replays along p1/p2, plus the
// historical T_diff data. Output: either concrete evidence that the
// differentiation happens inside the target network area, or "no
// evidence" (in which case WeHeY adds nothing beyond WeHe).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/loss_correlation.hpp"
#include "core/throughput_comparison.hpp"
#include "core/wehe.hpp"
#include "netsim/measure.hpp"

namespace wehey::core {

enum class Verdict {
  NoEvidence,               ///< cannot attribute beyond WeHe's detection
  EvidenceWithinTargetArea  ///< differentiation localized to the target
};

enum class Mechanism {
  None,
  PerClientThrottling,   ///< detected by throughput comparison (§4.1)
  CollectiveThrottling,  ///< detected by loss-trend correlation (§4.2)
};

struct LocalizationInput {
  // Single replays along p0 (a standard WeHe test).
  netsim::ReplayMeasurement p0_original;
  netsim::ReplayMeasurement p0_inverted;
  // Simultaneous replays along p1 and p2.
  netsim::ReplayMeasurement p1_original;
  netsim::ReplayMeasurement p2_original;
  netsim::ReplayMeasurement p1_inverted;
  netsim::ReplayMeasurement p2_inverted;
  /// Historical relative throughput differences between back-to-back WeHe
  /// tests (the T_diff source, §4.1).
  std::vector<double> t_diff_history;
  /// max_i { p_i's minimum RTT }; 0 lets the localizer estimate it from
  /// the measurements' RTT samples.
  Time base_rtt = 0;
};

struct LocalizerConfig {
  WeheConfig wehe;
  ThroughputComparisonConfig throughput;
  LossCorrelationConfig loss;
  Time fallback_rtt = milliseconds(35);  ///< when no RTT samples exist
};

struct LocalizationResult {
  Verdict verdict = Verdict::NoEvidence;
  Mechanism mechanism = Mechanism::None;
  WeheResult p1_confirmation;
  WeheResult p2_confirmation;
  bool confirmation_passed = false;
  ThroughputComparisonResult throughput;
  LossCorrelationResult loss;
  Time base_rtt_used = 0;
};

/// Estimate the Alg. 1 base RTT from measurement latency samples: the
/// maximum over paths of each path's minimum RTT.
Time estimate_base_rtt(const netsim::ReplayMeasurement& m1,
                       const netsim::ReplayMeasurement& m2, Time fallback);

LocalizationResult localize(const LocalizationInput& input, Rng& rng,
                            const LocalizerConfig& cfg = {});

}  // namespace wehey::core
