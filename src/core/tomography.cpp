#include "core/tomography.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "stats/descriptive.hpp"

namespace wehey::core {
namespace {

/// Solve System 1 from per-interval binary loss statuses (true = lossy).
LinkPerformance solve_system(const std::vector<char>& lossy1,
                             const std::vector<char>& lossy2) {
  LinkPerformance perf;
  const std::size_t t_count = lossy1.size();
  if (t_count == 0 || lossy1.size() != lossy2.size()) return perf;

  double non_lossy_1 = 0, non_lossy_2 = 0, non_lossy_both = 0;
  for (std::size_t t = 0; t < t_count; ++t) {
    if (!lossy1[t]) ++non_lossy_1;
    if (!lossy2[t]) ++non_lossy_2;
    if (!lossy1[t] && !lossy2[t]) ++non_lossy_both;
  }
  const double T = static_cast<double>(t_count);
  const double y1 = non_lossy_1 / T;
  const double y2 = non_lossy_2 / T;
  const double y12 = non_lossy_both / T;
  if (y12 <= 0.0 || y1 <= 0.0 || y2 <= 0.0) return perf;  // unsolvable

  auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };
  // System 1: y1 = x_c x_1, y2 = x_c x_2, y12 = x_c x_1 x_2.
  perf.x_c = clamp01(y1 * y2 / y12);
  perf.x_1 = clamp01(y12 / y2);
  perf.x_2 = clamp01(y12 / y1);
  perf.valid = true;
  return perf;
}

std::vector<char> threshold_status(const std::vector<double>& loss,
                                   double tau) {
  std::vector<char> out(loss.size());
  for (std::size_t t = 0; t < loss.size(); ++t) out[t] = loss[t] > tau;
  return out;
}

/// V2 labelling: lossy when the loss rate increased vs the previous
/// interval (the first interval is unlabelled and skipped).
std::vector<char> trend_status(const std::vector<double>& loss) {
  if (loss.size() < 2) return {};
  std::vector<char> out(loss.size() - 1);
  for (std::size_t t = 1; t < loss.size(); ++t) {
    out[t - 1] = loss[t] > loss[t - 1];
  }
  return out;
}

}  // namespace

LinkPerformance bin_loss_tomo_series(const std::vector<double>& loss1,
                                     const std::vector<double>& loss2,
                                     double tau) {
  WEHEY_EXPECTS(loss1.size() == loss2.size());
  return solve_system(threshold_status(loss1, tau),
                      threshold_status(loss2, tau));
}

LinkPerformance bin_loss_tomo(const netsim::ReplayMeasurement& m1,
                              const netsim::ReplayMeasurement& m2,
                              Time sigma, double tau,
                              const TomographyOptions& opt) {
  SeriesOptions sopt;
  sopt.min_packets_per_interval = opt.min_packets_per_interval;
  const auto series = make_loss_rate_series(m1, m2, sigma, sopt);
  return bin_loss_tomo_series(series.path1, series.path2, tau);
}

bool bin_loss_tomo_plus_plus(const netsim::ReplayMeasurement& m1,
                             const netsim::ReplayMeasurement& m2, Time sigma,
                             double tau, const TomographyOptions& opt) {
  const auto perf = bin_loss_tomo(m1, m2, sigma, tau, opt);
  return perf.valid && perf.x_1 > perf.x_c && perf.x_2 > perf.x_c;
}

NoParamsResult bin_loss_tomo_no_params(const netsim::ReplayMeasurement& m1,
                                       const netsim::ReplayMeasurement& m2,
                                       Time base_rtt,
                                       const NoParamsConfig& cfg) {
  WEHEY_EXPECTS(base_rtt > 0);
  NoParamsResult res;
  double gap1_sum = 0.0, gap2_sum = 0.0;

  const auto sigmas = interval_size_sweep(
      base_rtt, cfg.interval_sizes, cfg.min_interval_rtts,
      cfg.max_interval_rtts);
  SeriesOptions sopt;
  sopt.min_packets_per_interval = cfg.min_packets_per_interval;

  for (Time sigma : sigmas) {
    const auto series = make_loss_rate_series(m1, m2, sigma, sopt);
    if (series.path1.size() < 3) continue;

    // Candidate loss thresholds: quantiles of the pooled loss rates, then
    // filtered so that neither path is "lossy" too often or too rarely
    // (0.1 <= y_i <= 0.9, §4.3 "V1").
    std::vector<double> pooled = series.path1;
    pooled.insert(pooled.end(), series.path2.begin(), series.path2.end());
    for (int k = 1; k <= cfg.threshold_candidates; ++k) {
      const double q = static_cast<double>(k) /
                       static_cast<double>(cfg.threshold_candidates + 1);
      const double tau = stats::quantile(pooled, q);

      auto y_of = [&](const std::vector<double>& loss) {
        double non_lossy = 0;
        for (double v : loss) {
          if (v <= tau) ++non_lossy;
        }
        return non_lossy / static_cast<double>(loss.size());
      };
      const double y1 = y_of(series.path1);
      const double y2 = y_of(series.path2);
      if (y1 < cfg.y_min || y1 > cfg.y_max || y2 < cfg.y_min ||
          y2 > cfg.y_max) {
        continue;
      }
      const auto perf =
          bin_loss_tomo_series(series.path1, series.path2, tau);
      if (!perf.valid) continue;
      gap1_sum += perf.x_1 - perf.x_c;
      gap2_sum += perf.x_2 - perf.x_c;
      ++res.combinations;
    }
  }
  if (res.combinations > 0) {
    res.avg_gap_1 = gap1_sum / static_cast<double>(res.combinations);
    res.avg_gap_2 = gap2_sum / static_cast<double>(res.combinations);
    res.common_bottleneck = res.avg_gap_1 > 0.0 && res.avg_gap_2 > 0.0;
  }
  return res;
}

LossTrendTomoResult loss_trend_tomography(
    const netsim::ReplayMeasurement& m1, const netsim::ReplayMeasurement& m2,
    Time base_rtt, const NoParamsConfig& cfg) {
  WEHEY_EXPECTS(base_rtt > 0);
  LossTrendTomoResult res;
  double gap1_sum = 0.0, gap2_sum = 0.0;

  const auto sigmas = interval_size_sweep(
      base_rtt, cfg.interval_sizes, cfg.min_interval_rtts,
      cfg.max_interval_rtts);
  SeriesOptions sopt;
  sopt.min_packets_per_interval = cfg.min_packets_per_interval;

  for (Time sigma : sigmas) {
    const auto series = make_loss_rate_series(m1, m2, sigma, sopt);
    const auto s1 = trend_status(series.path1);
    const auto s2 = trend_status(series.path2);
    if (s1.size() < 3) continue;
    const auto perf = solve_system(s1, s2);
    if (!perf.valid) continue;
    gap1_sum += perf.x_1 - perf.x_c;
    gap2_sum += perf.x_2 - perf.x_c;
    ++res.sizes_used;
  }
  if (res.sizes_used > 0) {
    res.avg_gap_1 = gap1_sum / static_cast<double>(res.sizes_used);
    res.avg_gap_2 = gap2_sum / static_cast<double>(res.sizes_used);
    res.common_bottleneck = res.avg_gap_1 > 0.0 && res.avg_gap_2 > 0.0;
  }
  return res;
}

}  // namespace wehey::core
