#include "core/localizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.hpp"
#include "stats/descriptive.hpp"

namespace wehey::core {

namespace {

/// A measurement that cannot support any analysis: no time window or no
/// delivered data at all (e.g. a replay that died before its first byte).
bool unusable(const netsim::ReplayMeasurement& m) {
  return m.duration() <= 0 || m.deliveries.empty();
}

bool bad_rtt_sample(double r) { return !std::isfinite(r) || r <= 0.0; }

/// Whether a damaged upload left samples a clean measurement can never
/// contain: non-finite/non-positive RTTs, or events displaced far outside
/// the replay window (clean drain events trail the window by seconds, not
/// by multiples of it).
bool needs_scrub(const netsim::ReplayMeasurement& m) {
  const Time margin = std::max<Time>(m.duration(), seconds(5));
  const Time lo = m.start - margin;
  const Time hi = m.end + margin;
  const auto time_bad = [&](Time t) { return t < lo || t > hi; };
  return std::any_of(m.rtt_ms.begin(), m.rtt_ms.end(), bad_rtt_sample) ||
         std::any_of(m.tx_times.begin(), m.tx_times.end(), time_bad) ||
         std::any_of(m.loss_times.begin(), m.loss_times.end(), time_bad) ||
         std::any_of(m.deliveries.begin(), m.deliveries.end(),
                     [&](const netsim::Delivery& d) { return time_bad(d.at); });
}

void scrub(netsim::ReplayMeasurement& m) {
  const Time margin = std::max<Time>(m.duration(), seconds(5));
  const Time lo = m.start - margin;
  const Time hi = m.end + margin;
  const auto time_bad = [&](Time t) { return t < lo || t > hi; };
  std::erase_if(m.rtt_ms, bad_rtt_sample);
  std::erase_if(m.tx_times, time_bad);
  std::erase_if(m.loss_times, time_bad);
  std::erase_if(m.deliveries,
                [&](const netsim::Delivery& d) { return time_bad(d.at); });
}

/// Restrict a measurement to [lo, hi] (the overlap window of a
/// desynchronized pair).
netsim::ReplayMeasurement trimmed(const netsim::ReplayMeasurement& m, Time lo,
                                  Time hi) {
  netsim::ReplayMeasurement out = m;
  out.start = std::max(m.start, lo);
  out.end = std::min(m.end, hi);
  const auto outside = [&](Time t) { return t < out.start || t > out.end; };
  std::erase_if(out.tx_times, outside);
  std::erase_if(out.loss_times, outside);
  std::erase_if(out.deliveries,
                [&](const netsim::Delivery& d) { return outside(d.at); });
  return out;
}

/// Signed, normalized distance of a p-value to its threshold, oriented by
/// the recorded outcome bit (positive = the statistic supports the
/// outcome). Each side is normalized by its own span — threshold on the
/// detect side, 1 - threshold on the clear side — so both sides cover
/// [0, 1] and margins are comparable across detectors.
double p_margin(double p, double threshold, bool outcome) {
  const double d = p < threshold
                       ? (threshold - p) / threshold
                       : -((p - threshold) / (1.0 - threshold));
  return outcome ? d : -d;
}

/// The smallest integer count that satisfies "count > threshold" — the
/// number of correlated sizes Alg. 1's aggregation requires.
std::size_t required_correlated(double threshold) {
  const double floor = std::floor(threshold);
  const double required = floor == threshold ? threshold + 1.0 : floor + 1.0;
  return required < 0.0 ? 0 : static_cast<std::size_t>(required);
}

}  // namespace

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::NoEvidence: return "no evidence";
    case Verdict::EvidenceWithinTargetArea:
      return "evidence within target area";
    case Verdict::Inconclusive: return "inconclusive";
  }
  return "?";
}

const char* to_string(InconclusiveReason reason) {
  switch (reason) {
    case InconclusiveReason::None: return "none";
    case InconclusiveReason::EmptyMeasurement: return "empty measurement";
    case InconclusiveReason::NonOverlappingMeasurements:
      return "non-overlapping measurements";
    case InconclusiveReason::InsufficientLossIntervals:
      return "insufficient loss intervals";
    case InconclusiveReason::ShortTDiffHistory:
      return "short t_diff history";
  }
  return "?";
}

Time estimate_base_rtt(const netsim::ReplayMeasurement& m1,
                       const netsim::ReplayMeasurement& m2, Time fallback) {
  double min1 = 0, min2 = 0, all_min = 0, all_max = 0;
  bool any1 = false, any2 = false;
  auto scan = [&](const netsim::ReplayMeasurement& m, double& lo, bool& any) {
    for (double r : m.rtt_ms) {
      if (bad_rtt_sample(r)) continue;
      if (!any || r < lo) lo = r;
      if (!(any1 || any2) || r < all_min) all_min = r;
      if (!(any1 || any2) || r > all_max) all_max = r;
      any = true;
    }
  };
  scan(m1, min1, any1);
  scan(m2, min2, any2);
  // A blind path leaves no credible max-of-mins; a zero-spread sample set
  // is a constant filler, not a measured RTT floor.
  if (!any1 || !any2) return fallback;
  if (all_min == all_max) return fallback;
  return std::max(milliseconds(min1), milliseconds(min2));
}

LocalizationResult localize(const LocalizationInput& input, Rng& rng,
                            const LocalizerConfig& cfg) {
  LocalizationResult res;
  auto note = [&](InconclusiveReason reason) {
    res.degraded = true;
    if (res.inconclusive_reason == InconclusiveReason::None) {
      res.inconclusive_reason = reason;
    }
  };
  auto engage = [&](const char* path) {
    res.degraded = true;
    res.trace.degradations.emplace_back(path);
  };
  // Whether op-4a's MWU comparison actually ran (vs a default-constructed
  // ThroughputComparisonResult after a confirmation failure).
  bool throughput_ran = false;

  // Builds res.trace from whatever the pipeline computed so far; called
  // immediately before every return so the trace is coherent on every
  // path, early returns included.
  const auto finish_trace = [&] {
    DecisionTrace& tr = res.trace;
    tr.evaluated = true;
    const auto add_p = [&](const char* name, double p, double threshold,
                           bool outcome, bool valid) -> DecisionEntry& {
      DecisionEntry e;
      e.detector = name;
      e.statistic = p;
      e.threshold = threshold;
      e.margin = p_margin(p, threshold, outcome);
      e.outcome = outcome;
      e.valid = valid;
      tr.detectors.push_back(std::move(e));
      return tr.detectors.back();
    };
    // Operation 3: the two confirmation KS tests (always computed). A
    // confirmation is "valid" when its series carried data at all.
    add_p("confirmation.p1", res.p1_confirmation.p_value, cfg.wehe.alpha,
          res.p1_confirmation.differentiation,
          res.p1_confirmation.original_mean_bps > 0.0 ||
              res.p1_confirmation.inverted_mean_bps > 0.0);
    add_p("confirmation.p2", res.p2_confirmation.p_value, cfg.wehe.alpha,
          res.p2_confirmation.differentiation,
          res.p2_confirmation.original_mean_bps > 0.0 ||
              res.p2_confirmation.inverted_mean_bps > 0.0);
    // Operation 4a: the MWU throughput comparison, when it ran.
    if (throughput_ran) {
      add_p("throughput.mwu", res.throughput.p_value, cfg.throughput.alpha,
            res.throughput.common_bottleneck, res.throughput.valid);
    }
    // Operation 4b: one row per Alg. 1 interval size, plus the
    // conservative aggregation.
    char name[32];
    for (std::size_t i = 0; i < res.loss.per_size.size(); ++i) {
      const IntervalOutcome& o = res.loss.per_size[i];
      std::snprintf(name, sizeof(name), "loss.s%02u",
                    static_cast<unsigned>(i + 1));
      DecisionEntry& e =
          add_p(name, o.p_value, cfg.loss.fp, o.correlated, o.valid);
      e.rho = o.rho;
      e.sigma_ms = to_milliseconds(o.sigma);
      e.is_loss_size = true;
    }
    if (res.loss.sizes_tested > 0) {
      DecisionAggregation& agg = tr.aggregation;
      agg.present = true;
      agg.sizes_tested = res.loss.sizes_tested;
      agg.sizes_correlated = res.loss.sizes_correlated;
      agg.sizes_valid = res.loss.sizes_valid;
      agg.threshold =
          (1.0 - cfg.loss.fp) * static_cast<double>(res.loss.sizes_tested);
      const double d = (static_cast<double>(res.loss.sizes_correlated) -
                        agg.threshold) /
                       static_cast<double>(res.loss.sizes_tested);
      agg.outcome = res.loss.common_bottleneck;
      agg.margin = agg.outcome ? d : -d;
    }

    // Run-level verdict margin: normalized distance to the nearest event
    // that would flip the final verdict. k-th smallest per-size margins
    // capture that flipping the aggregation takes k sizes to cross their
    // own boundaries.
    const std::size_t required = required_correlated(
        (1.0 - cfg.loss.fp) * static_cast<double>(res.loss.sizes_tested));
    const auto kth_size_margin = [&](bool correlated_side,
                                     std::size_t k) -> std::vector<double> {
      std::vector<double> margins;
      for (const DecisionEntry& e : tr.detectors) {
        if (!e.is_loss_size || !e.valid) continue;
        if (e.outcome != correlated_side) continue;
        margins.push_back(e.margin < 0.0 ? 0.0 : e.margin);
      }
      std::sort(margins.begin(), margins.end());
      if (k == 0 || margins.size() < k) return {};
      return {margins[k - 1]};
    };
    double margin = 0.0;
    bool has_margin = false;
    const auto propose = [&](double m) {
      if (!has_margin || m < margin) margin = m;
      has_margin = true;
    };
    if (res.verdict == Verdict::EvidenceWithinTargetArea) {
      if (res.mechanism == Mechanism::PerClientThrottling) {
        // The verdict rests on the MWU detection alone.
        if (res.throughput.valid) {
          propose(p_margin(res.throughput.p_value, cfg.throughput.alpha, true));
        }
      } else if (res.loss.sizes_tested > 0) {
        // Losing (sizes_correlated - required + 1) sizes undoes the
        // aggregation; the k weakest correlated sizes are the flip path.
        const std::size_t k = res.loss.sizes_correlated >= required
                                  ? res.loss.sizes_correlated - required + 1
                                  : 1;
        for (double m : kth_size_margin(true, k)) propose(m);
      }
    } else if (res.verdict == Verdict::NoEvidence && res.confirmation_passed) {
      // Either detector firing would flip the verdict to evidence.
      if (throughput_ran && res.throughput.valid) {
        propose(p_margin(res.throughput.p_value, cfg.throughput.alpha,
                         res.throughput.common_bottleneck));
      }
      if (res.loss.sizes_tested > 0 && required > res.loss.sizes_correlated) {
        const std::size_t k = required - res.loss.sizes_correlated;
        for (double m : kth_size_margin(false, k)) propose(m);
      }
    } else if (res.verdict == Verdict::NoEvidence) {
      // Confirmation failed: every failing path must flip, so the farthest
      // failing confirmation binds. Negative margins (a secondary gate
      // held the bit at the boundary) clamp to zero distance.
      double worst = 0.0;
      bool any = false;
      for (const DecisionEntry& e : tr.detectors) {
        if (e.detector.rfind("confirmation.", 0) != 0 || e.outcome) continue;
        const double m = e.margin < 0.0 ? 0.0 : e.margin;
        if (!any || m > worst) worst = m;
        any = true;
      }
      if (any) propose(worst);
    }
    // Inconclusive: the session measured nothing; no margin to report.
    tr.verdict_margin = has_margin ? margin : 0.0;
    tr.has_verdict_margin = has_margin;
  };

  // Input validation (degraded-upload hardening). The four simultaneous
  // measurements are the ones a faulty session can damage; scrub lazily so
  // a clean run never copies.
  const netsim::ReplayMeasurement* p1o = &input.p1_original;
  const netsim::ReplayMeasurement* p2o = &input.p2_original;
  const netsim::ReplayMeasurement* p1i = &input.p1_inverted;
  const netsim::ReplayMeasurement* p2i = &input.p2_inverted;
  netsim::ReplayMeasurement scrubbed[4];
  const netsim::ReplayMeasurement** sims[4] = {&p1o, &p2o, &p1i, &p2i};
  bool scrub_engaged = false;
  for (int i = 0; i < 4; ++i) {
    if (!needs_scrub(**sims[i])) continue;
    scrubbed[i] = **sims[i];
    scrub(scrubbed[i]);
    *sims[i] = &scrubbed[i];
    if (!scrub_engaged) engage("scrub");
    scrub_engaged = true;
  }
  const bool any_empty =
      unusable(*p1o) || unusable(*p2o) || unusable(*p1i) || unusable(*p2i);
  if (any_empty) note(InconclusiveReason::EmptyMeasurement);

  // Desynchronized loss pair (e.g. a skewed server clock): trim the two
  // original measurements to their overlapping window so Alg. 1's bins
  // stay aligned. A clean back-to-back start differs by ~5 ms and never
  // trips this.
  const netsim::ReplayMeasurement* loss1 = p1o;
  const netsim::ReplayMeasurement* loss2 = p2o;
  netsim::ReplayMeasurement trim1, trim2;
  bool loss_testable = !any_empty;
  if (loss_testable &&
      std::llabs(p1o->start - p2o->start) > cfg.desync_tolerance) {
    res.degraded = true;
    const Time lo = std::max(p1o->start, p2o->start);
    const Time hi = std::min(p1o->end, p2o->end);
    const Time longest = std::max(p1o->duration(), p2o->duration());
    if (hi - lo < static_cast<Time>(cfg.min_overlap_fraction *
                                    static_cast<double>(longest))) {
      note(InconclusiveReason::NonOverlappingMeasurements);
      loss_testable = false;
    } else {
      engage("desync_trim");
      trim1 = trimmed(*p1o, lo, hi);
      trim2 = trimmed(*p2o, lo, hi);
      loss1 = &trim1;
      loss2 = &trim2;
    }
  }

  // Operation 3 (§3.1): differentiation confirmation on both paths, using
  // WeHe's own throughput-based detector. Unless *both* paths
  // differentiated, WeHeY reports no evidence.
  res.p1_confirmation = detect_differentiation(*p1o, *p1i, cfg.wehe);
  res.p2_confirmation = detect_differentiation(*p2o, *p2i, cfg.wehe);
  res.confirmation_passed = res.p1_confirmation.differentiation &&
                            res.p2_confirmation.differentiation;
  if (any_empty) {
    // Confirmation against a blank series is vacuous either way (zero-filled
    // throughput samples "differ" from anything): the session measured
    // nothing, which is not the same as measuring and finding nothing.
    res.verdict = Verdict::Inconclusive;
    res.status = Status::insufficient_data(
        std::string("localize: ") + to_string(res.inconclusive_reason));
    finish_trace();
    return res;
  }
  if (!res.confirmation_passed) {
    LOG_DEBUG("localizer: differentiation not confirmed on both paths");
    finish_trace();
    return res;
  }

  // Operation 4a: throughput comparison — per-client throttling check.
  const auto x = input.p0_original.throughput_samples(cfg.wehe.intervals);
  const auto y1 = p1o->throughput_samples(cfg.wehe.intervals);
  const auto y2 = p2o->throughput_samples(cfg.wehe.intervals);
  const auto y = aggregate_samples(y1, y2);
  res.throughput =
      throughput_comparison(x, y, input.t_diff_history, rng, cfg.throughput);
  throughput_ran = true;
  if (res.throughput.common_bottleneck) {
    res.verdict = Verdict::EvidenceWithinTargetArea;
    res.mechanism = Mechanism::PerClientThrottling;
    finish_trace();
    return res;
  }
  if (res.degraded && !res.throughput.valid &&
      input.t_diff_history.size() < cfg.min_t_diff) {
    // Only worth flagging on damaged inputs: with clean measurements a
    // short history leaves the loss detector fully able to decide.
    note(InconclusiveReason::ShortTDiffHistory);
    res.trace.degradations.emplace_back("short_t_diff");
  }

  // Operation 4b: loss-trend correlation — collective throttling check.
  res.base_rtt_used =
      input.base_rtt > 0 ? input.base_rtt
                         : estimate_base_rtt(*loss1, *loss2, cfg.fallback_rtt);
  LossCorrelationConfig loss_cfg = cfg.loss;
  if (res.degraded && loss_testable) {
    // Shrink the Alg. 1 sweep so every interval size still fits a
    // meaningful number of intervals into the (possibly trimmed) window.
    // Clean 45 s / 35 ms windows fit 50-RTT intervals with room to spare,
    // so this only engages on genuinely shortened measurements.
    const Time span = std::min(loss1->duration(), loss2->duration());
    const auto cap = static_cast<int>(
        span / (res.base_rtt_used *
                static_cast<Time>(cfg.min_intervals_per_size)));
    if (cap < loss_cfg.max_interval_rtts) {
      loss_cfg.max_interval_rtts = cap;
      res.trace.degradations.emplace_back("shrunk_sweep");
      if (cap < loss_cfg.min_interval_rtts) {
        note(InconclusiveReason::InsufficientLossIntervals);
        loss_testable = false;
      }
    }
  }
  if (loss_testable) {
    res.loss =
        loss_trend_correlation(*loss1, *loss2, res.base_rtt_used, loss_cfg);
    if (res.degraded && res.loss.sizes_valid == 0) {
      note(InconclusiveReason::InsufficientLossIntervals);
    }
  }
  if (res.loss.common_bottleneck) {
    res.verdict = Verdict::EvidenceWithinTargetArea;
    res.mechanism = Mechanism::CollectiveThrottling;
    finish_trace();
    return res;
  }

  // Degraded inputs and neither detector validly ran: the session measured
  // nothing, which is different from having measured and found nothing.
  if (res.degraded && !res.throughput.valid && res.loss.sizes_valid == 0) {
    if (res.inconclusive_reason == InconclusiveReason::None) {
      res.inconclusive_reason = InconclusiveReason::InsufficientLossIntervals;
    }
    res.verdict = Verdict::Inconclusive;
    res.status = Status::insufficient_data(
        std::string("localize: ") + to_string(res.inconclusive_reason));
  }
  finish_trace();
  return res;
}

}  // namespace wehey::core
