#include "core/localizer.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "stats/descriptive.hpp"

namespace wehey::core {

Time estimate_base_rtt(const netsim::ReplayMeasurement& m1,
                       const netsim::ReplayMeasurement& m2, Time fallback) {
  auto min_rtt = [](const netsim::ReplayMeasurement& m) -> Time {
    if (m.rtt_ms.empty()) return 0;
    return milliseconds(stats::min(m.rtt_ms));
  };
  const Time r1 = min_rtt(m1);
  const Time r2 = min_rtt(m2);
  const Time base = std::max(r1, r2);
  return base > 0 ? base : fallback;
}

LocalizationResult localize(const LocalizationInput& input, Rng& rng,
                            const LocalizerConfig& cfg) {
  LocalizationResult res;

  // Operation 3 (§3.1): differentiation confirmation on both paths, using
  // WeHe's own throughput-based detector. Unless *both* paths
  // differentiated, WeHeY reports no evidence.
  res.p1_confirmation =
      detect_differentiation(input.p1_original, input.p1_inverted, cfg.wehe);
  res.p2_confirmation =
      detect_differentiation(input.p2_original, input.p2_inverted, cfg.wehe);
  res.confirmation_passed = res.p1_confirmation.differentiation &&
                            res.p2_confirmation.differentiation;
  if (!res.confirmation_passed) {
    LOG_DEBUG("localizer: differentiation not confirmed on both paths");
    return res;
  }

  // Operation 4a: throughput comparison — per-client throttling check.
  const auto x = input.p0_original.throughput_samples(cfg.wehe.intervals);
  const auto y1 = input.p1_original.throughput_samples(cfg.wehe.intervals);
  const auto y2 = input.p2_original.throughput_samples(cfg.wehe.intervals);
  const auto y = aggregate_samples(y1, y2);
  res.throughput =
      throughput_comparison(x, y, input.t_diff_history, rng, cfg.throughput);
  if (res.throughput.common_bottleneck) {
    res.verdict = Verdict::EvidenceWithinTargetArea;
    res.mechanism = Mechanism::PerClientThrottling;
    return res;
  }

  // Operation 4b: loss-trend correlation — collective throttling check.
  res.base_rtt_used =
      input.base_rtt > 0
          ? input.base_rtt
          : estimate_base_rtt(input.p1_original, input.p2_original,
                              cfg.fallback_rtt);
  res.loss = loss_trend_correlation(input.p1_original, input.p2_original,
                                    res.base_rtt_used, cfg.loss);
  if (res.loss.common_bottleneck) {
    res.verdict = Verdict::EvidenceWithinTargetArea;
    res.mechanism = Mechanism::CollectiveThrottling;
  }
  return res;
}

}  // namespace wehey::core
